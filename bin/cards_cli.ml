(* The `cards` command-line driver.

     cards compile FILE.mc [--dump STAGE] [--table]
     cards run FILE.mc [--system S] [--policy P] [--k F] [--local N]
                       [--remotable N] [--prefetch M] [--report]
     cards workload NAME [--scale N]    (emit a bundled workload's MiniC)

   `cards run --system trackfm` and `--system mira` run the baseline
   models; `--system plain` runs the guard-free all-local upper bound. *)

module R = Cards_runtime
module P = Cards.Pipeline
module W = Cards_workloads
module B = Cards_baselines
module T = Cards_util.Table
module O = Cards_obs

open Cmdliner

(* ---------- shared helpers ---------- *)

let read_source path =
  if Filename.check_suffix path ".mc" || Filename.check_suffix path ".c" then begin
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  end
  else failwith (path ^ ": expected a .mc MiniC source file")

let with_errors f =
  try f () with
  | Cards_ir.Ast.Syntax_error (pos, msg) ->
    Printf.eprintf "syntax error: line %d, col %d: %s\n" pos.line pos.col msg;
    exit 1
  | Cards_interp.Machine.Trap msg ->
    Printf.eprintf "trap: %s\n" msg;
    exit 2
  | R.Runtime.Runtime_error msg ->
    Printf.eprintf "runtime error: %s\n" msg;
    exit 2
  | Failure msg ->
    Printf.eprintf "error: %s\n" msg;
    exit 1

let print_static_table infos =
  let t =
    T.create ~title:"Static data-structure table"
      ~header:[ "sid"; "name"; "object"; "prefetch"; "use"; "reach"; "recursive" ]
  in
  Array.iter
    (fun (i : R.Static_info.t) ->
      T.add_row t
        [ string_of_int i.sid; i.name; string_of_int i.obj_size;
          R.Static_info.prefetch_class_name i.prefetch;
          string_of_int i.score_use; string_of_int i.score_reach;
          string_of_bool i.recursive ])
    infos;
  T.print t

(* ---------- cards compile ---------- *)

let dump_stage =
  let stages = [ ("source", `Source); ("pooled", `Pooled); ("final", `Final) ] in
  Arg.(value & opt (some (enum stages)) None
       & info [ "dump" ] ~docv:"STAGE"
           ~doc:"Print the IR at a pipeline stage: $(b,source) (after the \
                 frontend), $(b,pooled) (after pool allocation), or \
                 $(b,final) (guards + versioning).")

let show_table =
  Arg.(value & flag
       & info [ "table" ] ~doc:"Print the static data-structure table.")

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.mc")

let factorize_arg =
  Arg.(value & flag
       & info [ "factorize" ]
           ~doc:"Run the layout-factorization pass: split rarely-read \
                 fields of recursive structures into a compiled side \
                 pool (the hot node shrinks to its frequently-accessed \
                 fields plus an index) and rewrite eligible row-major \
                 record arrays to column-major (AoS to SoA).  Program \
                 output is unchanged; fetched bytes shrink when the \
                 access pattern is skewed.")

let compile_cmd =
  let run file dump table factorize =
    with_errors (fun () ->
        let options = { P.cards_options with factorize } in
        let compiled = P.compile_source ~options (read_source file) in
        Printf.printf
          "%d data structures, %d guards (after removing %d), %d loops versioned\n"
          (Array.length compiled.infos) compiled.static_guards
          compiled.guards_removed compiled.versioned_loops;
        if factorize then
          Printf.printf
            "layout factorization: %d hot/cold splits, %d AoS-to-SoA rewrites\n"
            (Cards_transform.Factorize.splits_last_run ())
            (Cards_transform.Factorize.soa_last_run ());
        if table then print_static_table compiled.infos;
        match dump with
        | Some `Source ->
          print_string (Cards_ir.Printer.module_to_string compiled.source)
        | Some `Pooled ->
          print_string (Cards_ir.Printer.module_to_string compiled.plain)
        | Some `Final ->
          print_string (Cards_ir.Printer.module_to_string compiled.instrumented)
        | None -> ())
  in
  Cmd.v (Cmd.info "compile" ~doc:"Compile a MiniC file with the CaRDS pipeline")
    Term.(const run $ file_arg $ dump_stage $ show_table $ factorize_arg)

(* ---------- cards run ---------- *)

let policy_conv =
  let policies =
    [ ("linear", R.Policy.Linear); ("random", R.Policy.Random 7);
      ("max-use", R.Policy.Max_use); ("max-reach", R.Policy.Max_reach);
      ("all-remotable", R.Policy.All_remotable); ("all-local", R.Policy.All_local) ]
  in
  Arg.enum policies

let policy_arg =
  Arg.(value & opt policy_conv R.Policy.Linear
       & info [ "policy" ] ~docv:"POLICY"
           ~doc:"Remoting policy: $(b,linear), $(b,random), $(b,max-use), \
                 $(b,max-reach), $(b,all-remotable), $(b,all-local).")

let k_arg =
  Arg.(value & opt float 1.0
       & info [ "k" ] ~docv:"FRACTION"
           ~doc:"Fraction of data structures preferring pinned memory.")

let bytes_conv =
  let parse s =
    let mult, digits =
      let n = String.length s in
      if n = 0 then (1, s)
      else
        match s.[n - 1] with
        | 'k' | 'K' -> (1024, String.sub s 0 (n - 1))
        | 'm' | 'M' -> (1024 * 1024, String.sub s 0 (n - 1))
        | 'g' | 'G' -> (1024 * 1024 * 1024, String.sub s 0 (n - 1))
        | _ -> (1, s)
    in
    match int_of_string_opt digits with
    | Some v -> Ok (v * mult)
    | None -> Error (`Msg (s ^ ": not a size (use e.g. 64M, 512K)"))
  in
  Arg.conv (parse, fun fmt v -> Format.fprintf fmt "%d" v)

let local_arg =
  Arg.(value & opt bytes_conv (64 * 1024 * 1024)
       & info [ "local" ] ~docv:"BYTES" ~doc:"Local memory size (e.g. 64M).")

let remot_arg =
  Arg.(value & opt bytes_conv (8 * 1024 * 1024)
       & info [ "remotable" ] ~docv:"BYTES"
           ~doc:"Remotable-cache share of local memory (e.g. 8M).")

let prefetch_arg =
  let modes =
    [ ("per-class", R.Runtime.Pf_per_class);
      ("adaptive", R.Runtime.Pf_adaptive);
      ("stride-only", R.Runtime.Pf_stride_only);
      ("none", R.Runtime.Pf_none) ]
  in
  Arg.(value & opt (enum modes) R.Runtime.Pf_per_class
       & info [ "prefetch" ] ~docv:"MODE"
           ~doc:"Prefetch mode: $(b,per-class), $(b,adaptive), \
                 $(b,stride-only), $(b,none).")

let system_arg =
  Arg.(value & opt (enum [ ("cards", `Cards); ("trackfm", `Trackfm);
                           ("mira", `Mira); ("plain", `Plain) ]) `Cards
       & info [ "system" ] ~docv:"SYSTEM"
           ~doc:"Which system to run: $(b,cards) (default), $(b,trackfm), \
                 $(b,mira) (profile-guided), $(b,plain) (all-local, no \
                 guards).")

let report_arg =
  Arg.(value & flag & info [ "report" ] ~doc:"Print the per-structure report.")

let engine_arg =
  Arg.(value
       & opt (enum [ ("decoded", Cards_interp.Machine.Decoded);
                     ("ref", Cards_interp.Machine.Reference) ])
           Cards_interp.Machine.Decoded
       & info [ "engine" ] ~docv:"ENGINE"
           ~doc:"Execution engine: $(b,decoded) (default; functions \
                 pre-compiled to closure arrays at load time) or $(b,ref) \
                 (the reference tree-walking interpreter).  Both are \
                 bit-identical in output, cycles, and statistics; only \
                 wall-clock speed differs.")

let prefetch_bytes_arg =
  Arg.(value & opt (some bytes_conv) None
       & info [ "prefetch-bytes" ] ~docv:"BYTES"
           ~doc:"Per-structure prefetch budget in bytes (e.g. 64K): the \
                 run-ahead depth becomes $(i,BYTES) / object size, clamped \
                 to [1,64], so factorized hot pools with small objects run \
                 proportionally deeper.  Overrides the fixed depth.")

let domains_arg =
  Arg.(value & opt int 1
       & info [ "domains" ] ~docv:"N"
           ~doc:"Worker domains (OCaml 5 parallelism).  Output, cycle \
                 counts and every ledger are bit-identical for any count; \
                 only wall-clock time changes.")

let qp_arg =
  Arg.(value & opt int
         R.Runtime.default_config.fabric_config.Cards_net.Fabric.qp_count
       & info [ "qp" ] ~docv:"N"
           ~doc:"Inbound fabric queue pairs with least-loaded dispatch \
                 (cards system; TrackFM is single-queue by design).")

let no_batching_arg =
  Arg.(value & flag
       & info [ "no-batching" ]
           ~doc:"Disable request batching: prefetch targets and eviction \
                 writebacks go out one object at a time, each paying the \
                 full protocol cost (cards system).")

(* ---------- fault-injection flags ---------- *)

let fault_rate_arg =
  Arg.(value & opt float 0.0
       & info [ "fault-rate" ] ~docv:"P"
           ~doc:"Per-transfer fault probability in [0,1] (cards system). \
                 The runtime retries with exponential backoff, escalates \
                 to a reliable channel when retries run out, and narrows \
                 prefetching while the observed rate stays high.  Faults \
                 perturb timing only: program output is unchanged.")

let fault_seed_arg =
  Arg.(value & opt int 1
       & info [ "fault-seed" ] ~docv:"SEED"
           ~doc:"Seed for the deterministic fault schedule: same seed, \
                 same faults, same cycle count.")

let retry_max_arg =
  Arg.(value & opt int R.Runtime.default_config.retry_max
       & info [ "retry-max" ] ~docv:"N"
           ~doc:"Demand-fetch retries before escalating to the reliable \
                 channel.")

let fault_kinds_conv =
  let parse s =
    let kind_of = function
      | "transient" -> Ok Cards_net.Fabric.Transient
      | "late" -> Ok Cards_net.Fabric.Late
      | "duplicate" -> Ok Cards_net.Fabric.Duplicate
      | other ->
        Error (`Msg (other ^ ": unknown fault kind (transient|late|duplicate)"))
    in
    String.split_on_char ',' s
    |> List.fold_left
         (fun acc part ->
           match (acc, kind_of (String.trim part)) with
           | (Error _ as e), _ -> e
           | _, (Error _ as e) -> e
           | Ok ks, Ok k -> Ok (ks @ [ k ]))
         (Ok [])
  in
  let print fmt ks =
    Format.fprintf fmt "%s"
      (String.concat "," (List.map Cards_net.Fabric.fault_kind_name ks))
  in
  Arg.conv (parse, print)

let fault_kinds_arg =
  Arg.(value
       & opt fault_kinds_conv Cards_net.Fabric.no_faults.Cards_net.Fabric.fault_kinds
       & info [ "fault-kinds" ] ~docv:"KINDS"
           ~doc:"Comma-separated fault kinds to inject: $(b,transient) \
                 (NACKed transfer), $(b,late) (congested completion), \
                 $(b,duplicate) (duplicated completion).  Default: all \
                 three.")

(* ---------- observability flags ---------- *)

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a Chrome trace_event JSON file (load it in \
                 chrome://tracing or Perfetto): faults and late \
                 prefetches as duration spans per structure, the \
                 interpreter call stack on thread 0.")

let events_arg =
  Arg.(value & opt (some string) None
       & info [ "events" ] ~docv:"FILE"
           ~doc:"Write the raw event ring as JSON-lines (one event \
                 per line, oldest first).")

let trace_cap_arg =
  Arg.(value & opt int 1_048_576
       & info [ "trace-capacity" ] ~docv:"N"
           ~doc:"Event-ring capacity; beyond it the oldest events are \
                 dropped (the exporters report the drop count).")

let metrics_arg =
  Arg.(value & flag
       & info [ "metrics" ]
           ~doc:"Sample per-structure metrics every \
                 $(b,--metrics-interval) cycles and print the \
                 time-series table.")

let metrics_interval_arg =
  Arg.(value & opt int O.Metrics.default_interval
       & info [ "metrics-interval" ] ~docv:"CYCLES"
           ~doc:"Sampling period for $(b,--metrics).")

let profile_arg =
  Arg.(value & flag
       & info [ "profile" ]
           ~doc:"Print the cycle-attribution profile (guard / demand \
                 stall / queueing / prefetch stall / trap / alloc per \
                 structure, buckets summing to total cycles), the stall \
                 root-cause tables (per structure and per access site, \
                 causes summing to total stall), and the fetch-latency \
                 histogram with p50/p90/p99/p999 percentiles.")

let spans_arg =
  Arg.(value & opt (some string) None
       & info [ "spans" ] ~docv:"FILE"
           ~doc:"Record causal spans (one per fabric transfer, with \
                 parent edges: prefetch to the access it satisfied, \
                 retry to its demand fetch, batch to its members, trap \
                 to the fetch it forced) and write them to $(docv) — \
                 JSON-lines if the name ends in $(b,.jsonl), otherwise \
                 a Chrome trace_event file with flow arrows along every \
                 edge.  Also prints the critical-path table (the \
                 heaviest causal chain).")

let span_rate_arg =
  Arg.(value & opt float 1.0
       & info [ "span-rate" ] ~docv:"RATE"
           ~doc:"Span sampling rate in [0,1] (deterministic, not \
                 random): 1.0 records every fetch; 0.1 records one \
                 occasion in ten.  At 1.0 the recorded spans' phase \
                 cycles reconcile exactly with the stall-attribution \
                 ledger.")

let postmortem_arg =
  Arg.(value & flag
       & info [ "postmortem" ]
           ~doc:"Keep a bounded flight recorder of recent spans \
                 (retried/escalated/trapped chains retained in full) \
                 and dump a human-readable post-mortem to stderr if \
                 the program traps or a fetch escalates to the \
                 reliable channel.  Implies span recording.")

let whatif_arg =
  Arg.(value & flag
       & info [ "whatif" ]
           ~doc:"Causal what-if profile: record causal spans, replay \
                 them under a catalog of virtual optimizations (protocol \
                 cost halved, serialization free, infinite queue pairs, \
                 perfect prefetch, fault-free fabric, per-structure \
                 variants) and print the scenarios ranked by predicted \
                 cycles saved — the \"what should we optimize next?\" \
                 report.  Implies span recording at rate 1.0.")

let whatif_validate_arg =
  Arg.(value & flag
       & info [ "whatif-validate" ]
           ~doc:"Validate the $(b,--whatif) predictions: re-execute the \
                 program once per scenario with the corresponding runtime \
                 knob actually changed (deterministically, program output \
                 bit-identical) and add measured cycles and relative \
                 error columns to the report.  Implies $(b,--whatif); \
                 cards system only.")

let metrics_csv_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics-csv" ] ~docv:"FILE"
           ~doc:"Write the per-structure metric samples as CSV (header \
                 plus one row per sample).  Implies metric sampling at \
                 $(b,--metrics-interval) without the printed table.")

(* All the CLI's human-readable summaries flow through one reporter —
   the same one the sink carries, so library-side reports (the fault
   post-mortem) and driver-side summaries cannot interleave with
   machine-readable stdout or with each other mid-line. *)
let reporter = O.Reporter.stderr_reporter

let make_sink ~trace ~events ~trace_cap ~metrics ~metrics_interval ~spans
    ~span_rate ~postmortem ~whatif =
  if
    trace = None && events = None && (not metrics) && spans = None
    && (not postmortem) && not whatif
  then None
  else
    Some
      (O.Sink.create
         ?trace_capacity:
           (if trace <> None || events <> None then Some trace_cap else None)
         ?metrics_interval:(if metrics then Some metrics_interval else None)
         ?span_rate:
           (if spans <> None || postmortem || whatif then Some span_rate
            else None)
         ~postmortem ~reporter ())

let export_obs rt obs ~trace ~events ~metrics ~metrics_csv ~spans =
  let names = R.Runtime.ds_name rt in
  Option.iter
    (fun sink ->
      (match (O.Sink.trace sink : O.Trace.t option) with
       | Some tr ->
         Option.iter
           (fun path ->
             O.Export.write_file path (O.Export.chrome_trace_string ~names tr);
             O.Reporter.linef reporter "-- trace: %d events to %s (%d dropped)"
               (O.Trace.length tr) path (O.Trace.dropped tr))
           trace;
         Option.iter
           (fun path -> O.Export.write_file path (O.Export.events_jsonl tr))
           events
       | None -> ());
      (match O.Sink.spans sink with
       | Some c ->
         (match O.Critical_path.analyze c with
          | Some r -> T.print (O.Export.critical_path_table ~names r)
          | None -> ());
         Option.iter
           (fun path ->
             let contents =
               if Filename.check_suffix path ".jsonl" then
                 O.Export.spans_jsonl c
               else if Filename.check_suffix path ".folded" then
                 O.Export.spans_folded ~names c
               else O.Export.spans_chrome_trace_string ~names c
             in
             O.Export.write_file path contents;
             O.Reporter.linef reporter "-- spans: %d to %s" (O.Span.length c)
               path)
           spans
       | None -> ());
      (match O.Sink.metrics sink with
       | Some m ->
         if metrics then T.print (O.Export.metrics_table m);
         Option.iter
           (fun path ->
             O.Export.write_file path (O.Export.metrics_csv m);
             O.Reporter.linef reporter "-- metrics: %d samples to %s"
               (O.Metrics.n_samples m) path)
           metrics_csv
       | None -> ()))
    obs

let print_profile rt total =
  let names = R.Runtime.ds_name rt in
  let prof = R.Runtime.profile rt in
  let attr = R.Runtime.attribution rt in
  T.print (O.Export.profile_table ~names ~total prof);
  T.print (O.Export.attribution_table ~names attr);
  T.print (O.Export.attribution_sites_table ~names attr);
  T.print (O.Export.latency_table prof);
  T.print (O.Export.latency_percentiles_table ~names prof);
  let per_ds =
    List.map
      (fun (r : R.Runtime.ds_report) ->
        (r.r_name, r.r_stats.R.Rt_stats.fetched_bytes))
      (R.Runtime.report rt)
  in
  T.print
    (O.Export.fabric_table
       ~over_budget:(R.Rt_stats.over_budget (R.Runtime.stats rt))
       ~per_ds
       (R.Runtime.fabric_stats rt))

let print_report rt =
  let t =
    T.create ~title:"Per-structure report"
      ~header:[ "structure"; "pinned"; "bytes"; "fetched"; "guards"; "hits";
                "faults"; "clean faults"; "pf issued"; "pf used";
                "evictions" ]
  in
  List.iter
    (fun (r : R.Runtime.ds_report) ->
      T.add_row t
        [ r.r_name; (if r.r_pinned then "yes" else "no");
          T.fmt_bytes (float_of_int r.r_bytes);
          T.fmt_bytes (float_of_int r.r_stats.fetched_bytes);
          string_of_int r.r_stats.guards;
          string_of_int r.r_stats.guard_hits;
          string_of_int r.r_stats.remote_faults;
          string_of_int r.r_stats.clean_faults;
          string_of_int r.r_stats.prefetch_issued;
          string_of_int r.r_stats.prefetch_used;
          string_of_int r.r_stats.evictions ])
    (R.Runtime.report rt);
  T.print t

(* Probability-valued flags are validated up front: a typo'd
   [--fault-rate 1.5] must die with a usage error, not silently clamp
   or corrupt the deterministic fault schedule. *)
let check_unit_interval flag v =
  if Float.is_nan v || v < 0.0 || v > 1.0 then
    failwith (Printf.sprintf "--%s %g: expected a probability in [0,1]" flag v)

(* Domain counts are validated the same way: a bad value dies with a
   usage error, while merely-ambitious ones (more domains than the host
   has cores) warn and proceed — the result is bit-identical either
   way, only the wall-clock gain saturates. *)
let check_domains domains =
  if domains < 1 then
    failwith (Printf.sprintf "--domains %d: need at least one" domains);
  let cores = Domain.recommended_domain_count () in
  if domains > cores then
    O.Reporter.linef reporter
      "-- warning: --domains %d exceeds the %d core(s) this host reports; \
       results are unchanged but wall-clock gains stop at the core count"
      domains cores

let run_cmd =
  let run file system engine policy k local remotable prefetch prefetch_bytes
      report qp no_batching fault_rate fault_seed retry_max fault_kinds
      trace events trace_cap metrics metrics_interval metrics_csv profile
      spans span_rate postmortem whatif whatif_validate factorize domains =
    with_errors (fun () ->
        check_unit_interval "fault-rate" fault_rate;
        check_unit_interval "span-rate" span_rate;
        check_domains domains;
        Option.iter
          (fun b ->
            if b < 1 then
              failwith
                (Printf.sprintf "--prefetch-bytes %d: need a positive budget"
                   b))
          prefetch_bytes;
        let whatif = whatif || whatif_validate in
        (* A sampling rate without a span consumer is almost always a
           forgotten --spans; warn rather than fail so scripted sweeps
           that toggle --spans independently keep working. *)
        if span_rate <> 1.0 && spans = None && (not postmortem) && not whatif
        then
          O.Reporter.linef reporter
            "-- warning: --span-rate %g has no effect without --spans or \
             --postmortem" span_rate;
        (* The what-if replay's exactness contract (identity predicts the
           measured run to the cycle) needs every occasion recorded. *)
        let span_rate =
          if whatif && span_rate <> 1.0 then begin
            O.Reporter.linef reporter
              "-- warning: --whatif forces --span-rate 1.0 (was %g)"
              span_rate;
            1.0
          end
          else span_rate
        in
        let src = read_source file in
        let obs =
          make_sink ~trace ~events ~trace_cap
            ~metrics:(metrics || metrics_csv <> None)
            ~metrics_interval ~spans ~span_rate ~postmortem ~whatif
        in
        let options = { P.cards_options with factorize } in
        let res, rt, whatif_rerun =
          match system with
          | `Cards ->
            let compiled = P.compile_source ~options src in
            let cfg =
              { R.Runtime.default_config with
                policy; k; local_bytes = local; remotable_bytes = remotable;
                prefetch_mode = prefetch; prefetch_bytes;
                fabric_config =
                  { R.Runtime.default_config.fabric_config with
                    Cards_net.Fabric.qp_count = qp;
                    faults =
                      { Cards_net.Fabric.fault_rate; fault_seed;
                        fault_kinds } };
                batching = not no_batching;
                retry_max }
            in
            let res, rt = P.run ~engine ?obs compiled cfg in
            (* Validation re-runs carry no sink: the baseline run owns
               the one-shot post-mortem latch and all reporter output, so
               a re-executed scenario can never interleave with (or
               re-fire) the baseline's reports mid-table. *)
            let rerun exec =
              match R.Runtime.whatif_config cfg exec with
              | None -> None
              | Some cfg' ->
                let res', _ = P.run ~engine compiled cfg' in
                if res'.Cards_interp.Machine.output <> res.output then
                  failwith
                    "what-if validation: perturbed run diverged in output";
                Some res'.Cards_interp.Machine.cycles
            in
            (res, rt, Some rerun)
          | `Trackfm ->
            let compiled = B.Trackfm.compile_source src in
            let res, rt = B.Trackfm.run ~engine ?obs compiled ~local_bytes:local in
            (res, rt, None)
          | `Mira ->
            let compiled = P.compile_source ~options src in
            let res, rt =
              B.Mira.run ~engine ?obs compiled ~local_bytes:local
                ~remotable_bytes:remotable
            in
            (res, rt, None)
          | `Plain ->
            let compiled = P.compile_source ~options src in
            let res, rt = B.Noguard.run ~engine ?obs compiled in
            (res, rt, None)
        in
        List.iter print_endline res.output;
        let tot = R.Rt_stats.total (R.Runtime.stats rt) in
        let fs = R.Runtime.fabric_stats rt in
        O.Reporter.linef reporter
          "-- %s cycles, %d instructions, %d guards (%d hits), %d remote \
           faults, %s over the fabric"
          (T.fmt_cycles (float_of_int res.cycles))
          res.instructions tot.guards tot.guard_hits tot.remote_faults
          (T.fmt_bytes (float_of_int fs.fetched_bytes));
        if fault_rate > 0.0 then begin
          let st = R.Runtime.stats rt in
          O.Reporter.linef reporter
            "-- faults: %d injected (%d transient, %d late, %d duplicate), \
             %d retries, %d timeouts, %d escalations, degrade level %d"
            (Cards_net.Fabric.faults_injected fs)
            fs.faults_transient fs.faults_late fs.faults_dup
            (R.Rt_stats.retries st) (R.Rt_stats.timeouts st)
            (R.Rt_stats.escalations st) (R.Runtime.degrade_level rt)
        end;
        (* Under --profile the resilience table renders even with fault
           injection off — an all-quiet table diffs cleanly against a
           faulty run's, where a missing table would not.  Like the
           fault summary above and the what-if report below it goes
           through the reporter (one Sink-gated stderr path), so none
           of the three can interleave with the other mid-table. *)
        if profile then begin
          let st = R.Runtime.stats rt in
          O.Reporter.text reporter
            (T.render
               (O.Export.resilience_table
                  ~retries:(R.Rt_stats.retries st)
                  ~timeouts:(R.Rt_stats.timeouts st)
                  ~escalations:(R.Rt_stats.escalations st)
                  ~pf_failed:(R.Rt_stats.pf_failed st)
                  ~pf_suppressed:(R.Rt_stats.pf_suppressed st)
                  ~degrade_steps:(R.Rt_stats.degrade_steps st)
                  ~recover_steps:(R.Rt_stats.recover_steps st)
                  ~degrade_level:(R.Runtime.degrade_level rt) ()))
        end;
        if report then print_report rt;
        if profile then print_profile rt res.cycles;
        export_obs rt obs ~trace ~events ~metrics ~metrics_csv ~spans;
        if whatif then begin
          match Option.bind obs O.Sink.spans with
          | None -> ()
          | Some col ->
            let names = R.Runtime.ds_name rt in
            let scenarios = O.Whatif.catalog ~names col in
            let ranked = O.Whatif.rank ~total:res.cycles col scenarios in
            (if whatif_validate && whatif_rerun = None then
               O.Reporter.line reporter
                 "-- warning: --whatif-validate needs --system cards; \
                  printing predictions only");
            (* Each validation re-run is an independent, sinkless
               re-execution, so under --domains N the scenarios fan out
               over a work-stealing pool of N domains.  Results land in
               a slot per scenario — the table order (and, scenarios
               being deterministic, every measured number) is identical
               to the sequential path. *)
            let measured_for ranked =
              match whatif_rerun with
              | Some f when whatif_validate ->
                let scen =
                  Array.of_list
                    (List.map
                       (fun (p : O.Whatif.prediction) ->
                         p.p_scenario.O.Whatif.sc_exec)
                       ranked)
                in
                let out = Array.make (Array.length scen) None in
                let pool = min domains (max 1 (Array.length scen)) in
                if pool <= 1 then
                  Array.iteri (fun i s -> out.(i) <- f s) scen
                else begin
                  let next = Atomic.make 0 in
                  let worker () =
                    let rec loop () =
                      let i = Atomic.fetch_and_add next 1 in
                      if i < Array.length scen then begin
                        out.(i) <- f scen.(i);
                        loop ()
                      end
                    in
                    loop ()
                  in
                  let helpers =
                    Array.init (pool - 1) (fun _ -> Domain.spawn worker)
                  in
                  let first_err =
                    match worker () with
                    | () -> None
                    | exception e -> Some e
                  in
                  let err =
                    Array.fold_left
                      (fun err d ->
                        match Domain.join d with
                        | () -> err
                        | exception e -> if err = None then Some e else err)
                      first_err helpers
                  in
                  Option.iter raise err
                end;
                Array.to_list out
              | _ -> List.map (fun _ -> None) ranked
            in
            let rows = List.combine ranked (measured_for ranked) in
            O.Reporter.text reporter (T.render (O.Export.whatif_table rows))
        end)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Compile and execute a MiniC file on far memory")
    Term.(const run $ file_arg $ system_arg $ engine_arg $ policy_arg
          $ k_arg $ local_arg
          $ remot_arg $ prefetch_arg $ prefetch_bytes_arg $ report_arg
          $ qp_arg $ no_batching_arg
          $ fault_rate_arg $ fault_seed_arg $ retry_max_arg $ fault_kinds_arg
          $ trace_arg $ events_arg $ trace_cap_arg $ metrics_arg
          $ metrics_interval_arg $ metrics_csv_arg $ profile_arg
          $ spans_arg $ span_rate_arg $ postmortem_arg $ whatif_arg
          $ whatif_validate_arg $ factorize_arg $ domains_arg)

(* ---------- cards serve ---------- *)

let serve_cmd =
  let module S = Cards_serve.Serve in
  let module Stats = Cards_util.Stats in
  let tenants_arg =
    Arg.(value & opt int 4
         & info [ "tenants" ] ~docv:"N" ~doc:"Tenants in the Zipf mix.")
  in
  let requests_arg =
    Arg.(value & opt int 120
         & info [ "requests" ] ~docv:"N"
             ~doc:"Requests per kv tenant (analytics tenants offer \
                   proportionally fewer, heavier queries).")
  in
  let seed_arg =
    Arg.(value & opt int 7
         & info [ "seed" ] ~docv:"SEED"
             ~doc:"Mix seed: tenant arrival streams, request contents \
                   and fault schedules all derive from it.")
  in
  let quantum_arg =
    Arg.(value & opt int S.default_config.S.quantum
         & info [ "quantum" ] ~docv:"CYCLES"
             ~doc:"Deficit-round-robin replenishment per round.")
  in
  let gap_arg =
    Arg.(value & opt float 40_000.0
         & info [ "gap" ] ~docv:"CYCLES"
             ~doc:"Mean inter-arrival gap of tenant 0; tenant i offers \
                   load proportional to 1/(i+1).")
  in
  let pin_budget_arg =
    Arg.(value & opt bytes_conv S.default_config.S.pin_budget
         & info [ "pin-budget" ] ~docv:"BYTES"
             ~doc:"Shared pinned-memory budget split across tenants by \
                   admission control (e.g. 256K).")
  in
  let faulty_arg =
    Arg.(value & opt (some int) None
         & info [ "faulty" ] ~docv:"TENANT"
             ~doc:"Give this tenant a faulty fabric slice at \
                   $(b,--fault-rate).")
  in
  let serve_fault_rate_arg =
    Arg.(value & opt float 0.2
         & info [ "fault-rate" ] ~docv:"P"
             ~doc:"Per-transfer fault probability for the $(b,--faulty) \
                   tenant's fabric slice.")
  in
  let run tenants requests seed quantum gap pin_budget faulty fault_rate
      engine domains =
    with_errors (fun () ->
        check_unit_interval "fault-rate" fault_rate;
        if tenants <= 0 then failwith "--tenants: need at least one";
        check_domains domains;
        Option.iter
          (fun i ->
            if i < 0 || i >= tenants then
              failwith
                (Printf.sprintf "--faulty %d: no such tenant (mix has %d)"
                   i tenants))
          faulty;
        let cfg = { S.default_config with S.quantum; pin_budget; engine } in
        let faulty = Option.map (fun i -> (i, fault_rate)) faulty in
        let specs =
          S.zipf_mix ?faulty ~n:tenants ~seed ~requests ~base_gap:gap ()
        in
        let r =
          if domains > 1 then Cards_par.Engine.run ~domains cfg specs
          else S.run cfg specs
        in
        (* Tenant→domain pinning is deterministic, so the report can say
           which worker domain served whom; with one domain the column
           (and the @d labels below) would be all-zero noise. *)
        let assign = Cards_par.Engine.assignment ~n:tenants ~domains in
        let dom_label i =
          if domains > 1 then Printf.sprintf "@d%d" assign.(i) else ""
        in
        let t =
          T.create ~title:"Tenants"
            ~header:
              ((if domains > 1 then [ "tenant"; "dom" ] else [ "tenant" ])
               @ [ "served"; "pinned"; "setup"; "service";
                   "stall"; "wait"; "degrade"; "deficit" ])
        in
        Array.iteri
          (fun i (tr : S.tenant_result) ->
            T.add_row t
              ((if domains > 1 then
                  [ tr.S.tr_name; string_of_int assign.(i) ]
                else [ tr.S.tr_name ])
               @ [ string_of_int tr.S.tr_served;
                   T.fmt_bytes (float_of_int tr.S.tr_pinned_granted);
                   T.fmt_cycles (float_of_int tr.S.tr_setup_cycles);
                   T.fmt_cycles (float_of_int tr.S.tr_service_cycles);
                   T.fmt_cycles (float_of_int tr.S.tr_stall_cycles);
                   T.fmt_cycles (float_of_int tr.S.tr_wait_cycles);
                   string_of_int tr.S.tr_degrade_level;
                   string_of_int tr.S.tr_deficit_end ]))
          r.S.tenants;
        T.print t;
        T.print
          (O.Export.serve_latency_table
             (Array.to_list r.S.tenants
              |> List.map (fun (tr : S.tenant_result) ->
                     (tr.S.tr_name, tr.S.tr_latency, tr.S.tr_served))));
        (* The interference matrix: who waited behind whom. *)
        let steal =
          T.create ~title:"Interference (cycles victim spent queued behind culprit)"
            ~header:
              ("victim \\ culprit"
               :: (Array.to_list r.S.tenants
                   |> List.mapi (fun i (tr : S.tenant_result) ->
                          tr.S.tr_name ^ dom_label i)))
        in
        Array.iteri
          (fun v row ->
            T.add_row steal
              ((r.S.tenants.(v).S.tr_name ^ dom_label v)
               :: (Array.to_list row
                   |> List.map (fun c -> T.fmt_cycles (float_of_int c)))))
          r.S.stolen;
        T.print steal;
        O.Reporter.linef reporter
          "-- %s cycles total (%s busy, %s idle), %d DRR rounds; \
           credit: %d granted - %d charged - %d forfeited; \
           pinned %s of %s admitted"
          (T.fmt_cycles (float_of_int r.S.total_cycles))
          (T.fmt_cycles (float_of_int r.S.busy_cycles))
          (T.fmt_cycles (float_of_int r.S.idle_cycles))
          r.S.rounds r.S.granted r.S.charged r.S.forfeited
          (T.fmt_bytes (float_of_int r.S.pin_admitted))
          (T.fmt_bytes (float_of_int r.S.pin_budget));
        if domains > 1 then
          O.Reporter.linef reporter
            "-- served on %d worker domains under deterministic virtual \
             time (bit-identical to --domains 1)"
            (Array.fold_left max 0 assign + 1))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve a seeded Zipf mix of kv and analytics tenants under \
             deficit-round-robin fairness")
    Term.(const run $ tenants_arg $ requests_arg $ seed_arg $ quantum_arg
          $ gap_arg $ pin_budget_arg $ faulty_arg $ serve_fault_rate_arg
          $ engine_arg $ domains_arg)

(* ---------- cards workload ---------- *)

let workload_cmd =
  let names =
    [ "listing1"; "analytics"; "ftfdapml"; "bfs"; "pc-array"; "pc-vector";
      "pc-list"; "pc-map"; "pc-hash"; "pc-tree" ]
  in
  let name_arg =
    Arg.(required & pos 0 (some (enum (List.map (fun n -> (n, n)) names))) None
         & info [] ~docv:"NAME")
  in
  let scale_arg =
    Arg.(value & opt int 10_000
         & info [ "scale" ] ~docv:"N" ~doc:"Workload size parameter.")
  in
  let run name scale =
    let src =
      match name with
      | "listing1" -> W.Listing1.source ~elems:scale ~ntimes:10
      | "analytics" -> W.Analytics.source ~trips:scale ~query_passes:2
      | "ftfdapml" ->
        let d = max 4 (int_of_float (Float.cbrt (float_of_int scale))) in
        W.Ftfdapml.source ~cz:d ~cym:(3 * d) ~cxm:(3 * d) ~steps:4
      | "bfs" -> W.Bfs.source ~nodes:scale ~edges:(5 * scale) ~sources:2
      | other ->
        let variant = String.sub other 3 (String.length other - 3) in
        W.Pointer_chase.source ~variant ~scale ~passes:2
    in
    print_string src
  in
  Cmd.v
    (Cmd.info "workload"
       ~doc:"Emit a bundled benchmark's MiniC source to stdout")
    Term.(const run $ name_arg $ scale_arg)

(* ---------- entry ---------- *)

let () =
  let doc = "CaRDS: compiler-aided remote data structures" in
  let info = Cmd.info "cards" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ compile_cmd; run_cmd; serve_cmd; workload_cmd ]))
