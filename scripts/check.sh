#!/bin/sh
# Tier-1 gate: the whole build, the whole test suite, and an
# observability smoke run (compile + execute a bundled example with
# tracing, metrics, and the cycle-attribution profile on, then make
# sure the emitted Chrome trace is non-empty).
#
#   scripts/check.sh
#
# Exits non-zero on the first failure.
set -eu
cd "$(dirname "$0")/.."

echo "== dune build"
dune build

echo "== dune runtest"
dune runtest

echo "== smoke: cards run with --trace/--metrics/--profile"
trace=$(mktemp /tmp/cards-trace.XXXXXX.json)
trap 'rm -f "$trace"' EXIT
dune exec --no-build bin/cards_cli.exe -- run examples/minic/listing1.mc \
  --policy all-remotable --local 1M --remotable 256K \
  --trace "$trace" --metrics --profile > /dev/null
test -s "$trace" || { echo "check.sh: empty trace file" >&2; exit 1; }
grep -q traceEvents "$trace" || {
  echo "check.sh: trace is not a Chrome trace_event file" >&2; exit 1; }

echo "== bench: fabric batching snapshot (BENCH_fabric.json)"
# The fabric section is itself an assertion: it exits non-zero if the
# batched transport fails to beat per-object requests or if outputs
# diverge.  The JSON snapshot stays in the tree so successive PRs have
# comparable perf records.
dune exec --no-build bench/main.exe -- fabric --json BENCH_fabric.json \
  > /dev/null
test -s BENCH_fabric.json || {
  echo "check.sh: empty BENCH_fabric.json" >&2; exit 1; }
grep -q '"batches"' BENCH_fabric.json || {
  echo "check.sh: BENCH_fabric.json has no fabric stats" >&2; exit 1; }

echo "== check.sh: all green"
