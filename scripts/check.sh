#!/bin/sh
# Tier-1 gate: the whole build, the whole test suite, an
# observability smoke run (compile + execute a bundled example with
# tracing, metrics, and the cycle-attribution profile on, then make
# sure the emitted Chrome trace is non-empty), and the bench
# regression gates: fabric, attribution, fault-injection, causal-span
# and execution-engine experiments are diffed against the committed
# BENCH_fabric.json / BENCH_attr.json / BENCH_faults.json /
# BENCH_spans.json / BENCH_host.json baselines (2% relative
# tolerance) and the snapshots refreshed on a clean pass.  The bench
# gates run from a release build: the host gate asserts a wall-clock
# speedup of the pre-decoded engine over the reference interpreter,
# which only means anything with optimizations on (the cycle gates
# are deterministic and profile-independent, so sharing the binary
# costs nothing).
#
#   scripts/check.sh           # everything
#   scripts/check.sh --quick   # build + tests + smoke only: skips the
#                              # release build and the bench regression
#                              # gates (the slow half) for inner-loop use
#
# Exits non-zero on the first failure.  A regression-gate failure
# names the experiment, metric, baseline, and observed value on
# stderr; if the change is intentional, commit the refreshed
# BENCH_*.json alongside it.
set -eu
cd "$(dirname "$0")/.."

quick=no
case "${1:-}" in
  --quick) quick=yes ;;
  "") ;;
  *) echo "usage: scripts/check.sh [--quick]" >&2; exit 2 ;;
esac

echo "== dune build"
dune build

echo "== dune runtest"
dune runtest

echo "== per-suite test counts"
dune exec --no-build test/test_main.exe -- list --color=never 2>/dev/null \
  | awk '$2 ~ /^[0-9]+$/ { n[$1]++ } END { for (s in n) printf "  %-14s %d\n", s, n[s] }' \
  | sort

echo "== differential oracle (qp x batching x fault rate, incl. slow)"
# The fault-injection differential suite, with its full-matrix pinned
# seeds (registered `Slow`, so plain runtest skips them) forced on.
dune exec --no-build test/test_main.exe -- test differential -e > /dev/null

echo "== smoke: cards run with --trace/--metrics/--profile"
trace=$(mktemp /tmp/cards-trace.XXXXXX.json)
trap 'rm -f "$trace"' EXIT
dune exec --no-build bin/cards_cli.exe -- run examples/minic/listing1.mc \
  --policy all-remotable --local 1M --remotable 256K \
  --trace "$trace" --metrics --profile > /dev/null
test -s "$trace" || { echo "check.sh: empty trace file" >&2; exit 1; }
grep -q traceEvents "$trace" || {
  echo "check.sh: trace is not a Chrome trace_event file" >&2; exit 1; }

if [ "$quick" = yes ]; then
  echo "== check.sh: quick pass green (bench gates skipped)"
  exit 0
fi

echo "== dune build (release, for the bench gates)"
dune build --profile release bench/main.exe
BENCH=_build/default/bench/main.exe

echo "== bench: fabric batching gate (BENCH_fabric.json, 2% tolerance)"
# The fabric section is itself an assertion: it exits non-zero if the
# batched transport fails to beat per-object requests or if outputs
# diverge.  --compare reads the committed baseline before --json
# refreshes it, so one run both gates and updates the snapshot.
"$BENCH" fabric \
  --json BENCH_fabric.json --compare BENCH_fabric.json --tolerance 0.02 \
  > /dev/null
test -s BENCH_fabric.json || {
  echo "check.sh: empty BENCH_fabric.json" >&2; exit 1; }
grep -q '"batches"' BENCH_fabric.json || {
  echo "check.sh: BENCH_fabric.json has no fabric stats" >&2; exit 1; }

echo "== bench: stall-attribution gate (BENCH_attr.json, 2% tolerance)"
# The attr section hard-asserts the ledger exactness invariant
# (sum of per-cause stalls = cycles - compute) on the fig8/fig9
# workloads, then the gate diffs cycles and fabric counters against
# the committed baseline.
"$BENCH" attr \
  --json BENCH_attr.json --compare BENCH_attr.json --tolerance 0.02 \
  > /dev/null
test -s BENCH_attr.json || {
  echo "check.sh: empty BENCH_attr.json" >&2; exit 1; }
grep -q '"experiments"' BENCH_attr.json || {
  echo "check.sh: BENCH_attr.json has no experiments" >&2; exit 1; }

echo "== bench: fault-injection gate (BENCH_faults.json, 2% tolerance)"
# The faults section hard-asserts output invariance vs the fault-free
# run, profiler/ledger exactness (Retry bucket included), a bounded
# slowdown under degradation, and same-seed determinism; the gate
# then diffs cycles and fabric/fault counters against the baseline.
"$BENCH" faults \
  --json BENCH_faults.json --compare BENCH_faults.json --tolerance 0.02 \
  > /dev/null
test -s BENCH_faults.json || {
  echo "check.sh: empty BENCH_faults.json" >&2; exit 1; }
grep -q '"faults_transient"' BENCH_faults.json || {
  echo "check.sh: BENCH_faults.json has no fault counters" >&2; exit 1; }

echo "== bench: causal-span gate (BENCH_spans.json, 2% tolerance)"
# The spans section hard-asserts that span recording is read-only
# (traced runs bit-identical to bare runs), that the span graph is
# acyclic, that at rate 1.0 every span phase reconciles exactly with
# the stall ledger, and that the critical-path analyzer finds a
# nonzero chain; the gate then diffs each run's cycles and its
# critical-path length against the baseline.
"$BENCH" spans \
  --json BENCH_spans.json --compare BENCH_spans.json --tolerance 0.02 \
  > /dev/null
test -s BENCH_spans.json || {
  echo "check.sh: empty BENCH_spans.json" >&2; exit 1; }
grep -q '"spans-pc-list-critical-path"' BENCH_spans.json || {
  echo "check.sh: BENCH_spans.json has no critical-path experiments" >&2
  exit 1; }

echo "== bench: engine speedup gate (BENCH_host.json, 2% tolerance)"
# The host section hard-asserts that the pre-decoded engine is
# bit-identical to the reference interpreter (arithmetic and pc-list
# workloads, whole result records) and at least 2x faster in
# instructions per host second; the gate then diffs the simulated
# cycles of both workloads against the baseline.  The wall-clock
# ratio itself is asserted in-process, never gated from JSON.
"$BENCH" host \
  --json BENCH_host.json --compare BENCH_host.json --tolerance 0.02 \
  > /dev/null
test -s BENCH_host.json || {
  echo "check.sh: empty BENCH_host.json" >&2; exit 1; }
grep -q '"host-arith"' BENCH_host.json || {
  echo "check.sh: BENCH_host.json has no engine experiments" >&2; exit 1; }

echo "== check.sh: all green"
