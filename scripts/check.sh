#!/bin/sh
# Tier-1 gate: the whole build, the whole test suite, an
# observability smoke run (compile + execute a bundled example with
# tracing, metrics, and the cycle-attribution profile on, then make
# sure the emitted Chrome trace is non-empty), and the bench
# regression gates: fabric, attribution, fault-injection, causal-span,
# what-if prediction, execution-engine, layout-factorization and
# many-tenant serving experiments are diffed against the committed
# BENCH_fabric.json / BENCH_attr.json / BENCH_faults.json /
# BENCH_spans.json / BENCH_whatif.json / BENCH_host.json /
# BENCH_layout.json / BENCH_serve.json baselines (2% relative
# tolerance) and the
# snapshots refreshed on a clean pass.  The bench gates run from a
# release build: the host gate asserts a wall-clock speedup of the
# pre-decoded engine over the reference interpreter, which only means
# anything with optimizations on (the cycle gates are deterministic
# and profile-independent, so sharing the binary costs nothing).
#
# Snapshot refresh is atomic across the whole run: every gate writes
# its fresh snapshot to a temp directory while comparing against the
# committed baseline, and the temps move into place only after ALL
# gates have passed.  A failure partway — even in the last gate —
# leaves every committed BENCH_*.json exactly as it was.
#
#   scripts/check.sh           # everything
#   scripts/check.sh --quick   # build + tests + smoke only: skips the
#                              # release build and the bench regression
#                              # gates (the slow half) for inner-loop
#                              # use; never touches any BENCH_*.json
#
# Exits non-zero on the first failure.  A regression-gate failure
# names the experiment, metric, baseline, and observed value on
# stderr; if the change is intentional, delete the stale BENCH_*.json
# and re-run to regenerate, or commit an intentionally refreshed one.
set -eu
cd "$(dirname "$0")/.."

quick=no
case "${1:-}" in
  --quick) quick=yes ;;
  "") ;;
  *) echo "usage: scripts/check.sh [--quick]" >&2; exit 2 ;;
esac

# The parallel serving engine runs tenants on OCaml 5 domains; on an
# older compiler the build would die pages deep in Domain/Atomic
# errors, so fail fast with the actual requirement instead.
ocaml_ver=$(ocamlc -version 2>/dev/null || echo none)
case "$ocaml_ver" in
  [5-9].*) ;;
  *) echo "check.sh: OCaml >= 5.0 required for domain parallelism \
(ocamlc -version says: $ocaml_ver)" >&2
     exit 1 ;;
esac

echo "== dune build"
dune build

echo "== dune runtest"
dune runtest

echo "== per-suite test counts"
dune exec --no-build test/test_main.exe -- list --color=never 2>/dev/null \
  | awk '$2 ~ /^[0-9]+$/ { n[$1]++ } END { for (s in n) printf "  %-14s %d\n", s, n[s] }' \
  | sort

echo "== differential oracle (qp x batching x fault rate, incl. slow)"
# The fault-injection differential suite, with its full-matrix pinned
# seeds (registered `Slow`, so plain runtest skips them) forced on.
dune exec --no-build test/test_main.exe -- test differential -e > /dev/null

echo "== slow transform tests (factorize chunk boundaries)"
dune exec --no-build test/test_main.exe -- test transform -e > /dev/null

echo "== serving-layer suite (tenant-isolation matrix, incl. slow)"
# The tenant-isolation differential oracle over the full
# qp x batching x fault-rate matrix (registered Slow), plus the DRR /
# admission property tests and the load-generator determinism suite.
dune exec --no-build test/test_main.exe -- test serve -e > /dev/null

echo "== parallel-engine suite (domain matrix + perturbation stress, incl. slow)"
# The domain-parallel engine's differential battery — bit-identicality
# against the sequential scheduler across domain counts, the
# scheduler-perturbation stress matrix (registered Slow), and the
# barrier/mailbox/vclock property tests — forced on.
dune exec --no-build test/test_main.exe -- test par -e > /dev/null

echo "== smoke: cards run with --trace/--metrics/--profile"
trace=$(mktemp /tmp/cards-trace.XXXXXX.json)
tmpdir=$(mktemp -d /tmp/cards-bench.XXXXXX)
trap 'rm -f "$trace"; rm -rf "$tmpdir"' EXIT
dune exec --no-build bin/cards_cli.exe -- run examples/minic/listing1.mc \
  --policy all-remotable --local 1M --remotable 256K \
  --trace "$trace" --metrics --profile > /dev/null
test -s "$trace" || { echo "check.sh: empty trace file" >&2; exit 1; }
grep -q traceEvents "$trace" || {
  echo "check.sh: trace is not a Chrome trace_event file" >&2; exit 1; }

if [ "$quick" = yes ]; then
  echo "== check.sh: quick pass green (bench gates skipped)"
  exit 0
fi

echo "== dune build (release, for the bench gates)"
dune build --profile release bench/main.exe
BENCH=_build/default/bench/main.exe

# gate SECTION BASELINE PATTERN — run one bench section, comparing its
# experiments against the committed BASELINE (which must exist and
# stays untouched here) and writing the fresh snapshot to the temp
# directory; PATTERN is a sanity grep proving the snapshot carries the
# section's counters.  Refreshed snapshots land in $refreshed and move
# into place only after every gate is green.
refreshed=""
gate() {
  section=$1; base=$2; pattern=$3
  "$BENCH" --only "$section" \
    --json "$tmpdir/$base" --compare "$base" --tolerance 0.02 \
    > /dev/null
  test -s "$tmpdir/$base" || {
    echo "check.sh: empty $base from the $section gate" >&2; exit 1; }
  grep -q "$pattern" "$tmpdir/$base" || {
    echo "check.sh: $base has no $pattern entries" >&2; exit 1; }
  refreshed="$refreshed $base"
}

echo "== bench: fabric batching gate (BENCH_fabric.json, 2% tolerance)"
# The fabric section is itself an assertion: it exits non-zero if the
# batched transport fails to beat per-object requests or if outputs
# diverge.
gate fabric BENCH_fabric.json '"batches"'

echo "== bench: stall-attribution gate (BENCH_attr.json, 2% tolerance)"
# The attr section hard-asserts the ledger exactness invariant
# (sum of per-cause stalls = cycles - compute) on the fig8/fig9
# workloads, then the gate diffs cycles and fabric counters against
# the committed baseline.
gate attr BENCH_attr.json '"experiments"'

echo "== bench: fault-injection gate (BENCH_faults.json, 2% tolerance)"
# The faults section hard-asserts output invariance vs the fault-free
# run, profiler/ledger exactness (Retry bucket included), a bounded
# slowdown under degradation, and same-seed determinism; the gate
# then diffs cycles and fabric/fault counters against the baseline.
gate faults BENCH_faults.json '"faults_transient"'

echo "== bench: causal-span gate (BENCH_spans.json, 2% tolerance)"
# The spans section hard-asserts that span recording is read-only
# (traced runs bit-identical to bare runs), that the span graph is
# acyclic, that at rate 1.0 every span phase reconciles exactly with
# the stall ledger, and that the critical-path analyzer finds a
# nonzero chain; the gate then diffs each run's cycles and its
# critical-path length against the baseline.
gate spans BENCH_spans.json '"spans-pc-list-critical-path"'

echo "== bench: what-if prediction gate (BENCH_whatif.json, 2% tolerance)"
# The whatif section hard-asserts that the span-graph replay's
# identity scenario reproduces the measured run and the critical-path
# chain to the cycle, that every catalog scenario re-executed with the
# real runtime knob keeps program outputs bit-identical, that
# predicted-faster implies measured-faster, and that predictions land
# within 15% of the re-run; the gate then diffs both the measured and
# the predicted cycles of every scenario against the baseline, so the
# predictor itself is regression-gated.
gate whatif BENCH_whatif.json '"whatif-fig9-list-identity-pred"'

echo "== bench: layout-factorization gate (BENCH_layout.json, 2% tolerance)"
# The layout section hard-asserts that --factorize leaves program
# outputs bit-identical while strictly shrinking both fetched bytes
# and cycles on the fig9 list chase and the AoS analytics table, that
# per-structure fetched-bytes counters sum exactly to the fabric's,
# and that both engines agree across qp x batching x fault rate on
# the transformed modules; the gate then diffs the before/after
# cycles and fabric counters against the baseline.
gate layout BENCH_layout.json '"layout-fig9-list-fact"'

echo "== bench: engine speedup gate (BENCH_host.json, 2% tolerance)"
# The host section hard-asserts that the pre-decoded engine is
# bit-identical to the reference interpreter (arithmetic and pc-list
# workloads, whole result records) and at least 2x faster in
# instructions per host second; the gate then diffs the simulated
# cycles of both workloads against the baseline.  The wall-clock
# ratio itself is asserted in-process, never gated from JSON.
gate host BENCH_host.json '"host-arith"'

echo "== bench: serving fairness/isolation gate (BENCH_serve.json, 2% tolerance)"
# The serve section hard-asserts the serving-clock and fabric
# decompositions exactly, same-seed determinism of whole runs,
# output invariance under a faulty tenant, the 1.5x healthy-p99
# fairness bound with the faulty tenant strictly degrading; the gate
# then diffs every tenant's service cycles, p99 latency and fabric
# counters (clean and faulty runs) against the baseline.
gate serve BENCH_serve.json '"serve-faulty-t1-an-p99"'

echo "== bench: parallel-serving gate (BENCH_par.json, 2% tolerance)"
# The par section hard-asserts that the domain-parallel engine is
# bit-identical to the sequential scheduler — whole result records,
# for 1/2/4 domains, clean and with a faulty tenant, plus a same-count
# rerun — and re-checks the serving-clock and fetched-bytes
# decompositions; on hosts reporting >= 4 cores it also asserts a
# >= 2.5x wall-clock speedup at 4 domains (reported, not asserted,
# on smaller hosts).  The gate then diffs the deterministic per-tenant
# service cycles and fabric counters against the baseline; the
# wall-clock entry carries no gated fields by construction.
gate par BENCH_par.json '"par-total"'

echo "== full suite at both ends of the domain matrix"
# The whole test binary twice, with the par differential tests pinned
# to one domain count per pass: serving results must not depend on the
# pool size anywhere in the suite, not just inside the par section.
CARDS_TEST_DOMAINS=1 dune exec --no-build test/test_main.exe > /dev/null
CARDS_TEST_DOMAINS=4 dune exec --no-build test/test_main.exe > /dev/null

# Every gate is green: only now do the fresh snapshots replace the
# committed ones.
for base in $refreshed; do
  mv "$tmpdir/$base" "$base"
done
echo "== check.sh: all green (refreshed:$refreshed)"
