(* The paper's analytics workload, end to end: generate a synthetic
   NYC-taxi-style trip table, run the query battery under several
   remoting policies, and print a per-structure report — which columns
   the policy pinned, who faulted, what prefetching did.

     dune exec examples/taxi_analytics.exe *)

module R = Cards_runtime
module P = Cards.Pipeline
module W = Cards_workloads
module B = Cards_baselines
module T = Cards_util.Table

let kb x = x * 1024

let () =
  let src = W.Analytics.source ~trips:30000 ~query_passes:2 in
  let compiled = P.compile_source src in
  Printf.printf "analytics: %d disjoint data structures identified (paper: 22)\n\n"
    (Array.length compiled.infos);
  (* Memory: 50%% of the working set, small remotable cache. *)
  let prof = B.Mira.profile compiled in
  let wss = Array.fold_left ( + ) 0 prof.B.Mira.per_sid_bytes in
  let remot = kb 256 in
  let local = (wss / 2) + remot in
  Printf.printf "working set %s, local memory %s (remotable cache %s)\n"
    (T.fmt_bytes (float_of_int wss))
    (T.fmt_bytes (float_of_int local))
    (T.fmt_bytes (float_of_int remot));
  let table =
    T.create ~title:"\nPolicy comparison at 50% local memory"
      ~header:[ "policy"; "Mcycles"; "guards"; "remote faults"; "pinned bytes" ]
  in
  let detail = ref None in
  List.iter
    (fun (name, policy, k) ->
      let res, rt =
        P.run compiled
          { R.Runtime.default_config with
            policy; k; local_bytes = local; remotable_bytes = remot }
      in
      let tot = R.Rt_stats.total (R.Runtime.stats rt) in
      T.add_row table
        [ name;
          Printf.sprintf "%.1f" (float_of_int res.cycles /. 1e6);
          string_of_int tot.guards;
          string_of_int tot.remote_faults;
          T.fmt_bytes (float_of_int (R.Runtime.pinned_bytes rt)) ];
      if name = "max-use" then detail := Some rt)
    [ ("linear", R.Policy.Linear, 0.5);
      ("random", R.Policy.Random 7, 0.5);
      ("max-reach", R.Policy.Max_reach, 0.5);
      ("max-use", R.Policy.Max_use, 0.5);
      ("all-remotable", R.Policy.All_remotable, 0.0) ];
  T.print table;
  (* Per-structure drill-down for the max-use run. *)
  match !detail with
  | None -> ()
  | Some rt ->
    let t =
      T.create ~title:"Per-structure report (max-use, k = 0.5)"
        ~header:[ "structure"; "pinned"; "bytes"; "guards"; "faults";
                  "pf acc"; "pf cov" ]
    in
    List.iter
      (fun (r : R.Runtime.ds_report) ->
        T.add_row t
          [ r.r_name;
            (if r.r_pinned then "yes" else "no");
            T.fmt_bytes (float_of_int r.r_bytes);
            string_of_int r.r_stats.guards;
            string_of_int r.r_stats.remote_faults;
            T.fmt_ratio_opt (R.Rt_stats.prefetch_accuracy r.r_stats);
            Printf.sprintf "%.2f" (R.Rt_stats.prefetch_coverage r.r_stats) ])
      (R.Runtime.report rt);
    T.print t;
    print_endline
      "Max-use pins the small, hot aggregation tables (high Equation-1\n\
       scores) and leaves cold columns like vendor/passengers remote."
