(* Prefetcher laboratory: the same pointer-chase traversal under every
   prefetch mode, with per-structure accuracy/coverage metrics — the
   "standard prefetching metrics" CaRDS uses to evaluate its policy
   assignments (paper section 4.2).

     dune exec examples/prefetch_lab.exe [variant]   (default: list) *)

module R = Cards_runtime
module P = Cards.Pipeline
module W = Cards_workloads
module B = Cards_baselines
module T = Cards_util.Table

let () =
  let variant =
    if Array.length Sys.argv > 1 then Sys.argv.(1) else "list"
  in
  if not (List.mem variant W.Pointer_chase.variants) then begin
    Printf.eprintf "unknown variant %s (have: %s)\n" variant
      (String.concat " " W.Pointer_chase.variants);
    exit 1
  end;
  let src = W.Pointer_chase.source ~variant ~scale:8192 ~passes:3 in
  let compiled = P.compile_source src in
  Printf.printf "%s: compiler prefetch classes per structure:\n" variant;
  Array.iter
    (fun (i : R.Static_info.t) ->
      Printf.printf "  %-8s -> %s (object %dB%s)\n" i.name
        (R.Static_info.prefetch_class_name i.prefetch)
        i.obj_size
        (if i.recursive then ", recursive" else ""))
    compiled.infos;
  let prof = B.Mira.profile compiled in
  let wss = Array.fold_left ( + ) 0 prof.B.Mira.per_sid_bytes in
  let local = wss / 2 in
  let remot = local / 4 in
  let t =
    T.create
      ~title:(Printf.sprintf "\n%s at 50%% local memory (%s WSS)" variant
                (T.fmt_bytes (float_of_int wss)))
      ~header:[ "prefetch mode"; "Mcycles"; "faults"; "issued"; "used";
                "late"; "accuracy"; "coverage" ]
  in
  List.iter
    (fun (name, mode) ->
      let res, rt =
        P.run compiled
          { R.Runtime.default_config with
            policy = R.Policy.Linear; k = 1.0;
            local_bytes = local; remotable_bytes = remot;
            prefetch_mode = mode }
      in
      let tot = R.Rt_stats.total (R.Runtime.stats rt) in
      T.add_row t
        [ name;
          Printf.sprintf "%.1f" (float_of_int res.cycles /. 1e6);
          string_of_int tot.remote_faults;
          string_of_int tot.prefetch_issued;
          string_of_int tot.prefetch_used;
          string_of_int tot.prefetch_late;
          T.fmt_ratio_opt (R.Rt_stats.prefetch_accuracy tot);
          Printf.sprintf "%.2f" (R.Rt_stats.prefetch_coverage tot) ])
    [ ("per-class (CaRDS)", R.Runtime.Pf_per_class);
      ("adaptive (CaRDS dynamic)", R.Runtime.Pf_adaptive);
      ("stride-only (TrackFM)", R.Runtime.Pf_stride_only);
      ("none", R.Runtime.Pf_none) ];
  T.print t;
  print_endline
    "Accuracy = prefetched objects actually used; coverage = fraction\n\
     of would-be misses absorbed.  The class chosen by the compiler\n\
     (jump pointers for lists, greedy for trees, stride for arrays)\n\
     should dominate the generic stride prefetcher on chasing code."
