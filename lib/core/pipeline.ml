module Irmod = Cards_ir.Irmod
module A = Cards_analysis
module T = Cards_transform
module R = Cards_runtime

type options = {
  guard_elim_level : T.Guard_elim.level;
  versioning : bool;
  presimplify : bool;
  factorize : bool;
}

let cards_options =
  { guard_elim_level = T.Guard_elim.Lcards; versioning = true;
    presimplify = false; factorize = false }

let trackfm_options =
  { guard_elim_level = T.Guard_elim.Ltrackfm; versioning = false;
    presimplify = false; factorize = false }

type compiled = {
  source : Irmod.t;
  plain : Irmod.t;
  instrumented : Irmod.t;
  infos : R.Static_info.t array;
  static_guards : int;
  guards_removed : int;
  versioned_loops : int;
  fn_arg_sids : (string * int list) list;
}

let to_rt_class = function
  | T.Prefetch_hints.No_prefetch -> R.Static_info.No_prefetch
  | T.Prefetch_hints.Stride -> R.Static_info.Stride
  | T.Prefetch_hints.Greedy_recursive -> R.Static_info.Greedy_recursive
  | T.Prefetch_hints.Jump_pointer -> R.Static_info.Jump_pointer

let static_table m dsa =
  let use = A.Scores.max_use m dsa in
  let reach = A.Scores.max_reach m dsa in
  let descs = A.Dsa.descriptors dsa in
  Array.of_list
    (List.map
       (fun (d : A.Dsa.desc_info) ->
         { R.Static_info.sid = d.desc_id;
           name = Printf.sprintf "%s#%d" d.desc_init_func d.desc_id;
           obj_size = T.Prefetch_hints.object_size d;
           prefetch = to_rt_class (T.Prefetch_hints.classify d);
           score_use = use.(d.desc_id);
           score_reach = reach.(d.desc_id);
           recursive = d.desc_recursive;
           elem_size = d.desc_elem_size })
       descs)

let compile ?(options = cards_options) (m : Irmod.t) =
  Cards_ir.Verify.check_exn m;
  let m = if options.presimplify then T.Simplify.run m else m in
  (* Layout factorization runs first: the re-analysis below then sizes
     descriptors, pools and prefetch classes from the new layouts. *)
  let m =
    if options.factorize then T.Factorize.run m (A.Dsa.analyze m) else m
  in
  let dsa1 = A.Dsa.analyze m in
  let infos = static_table m dsa1 in
  (* Handle-plan metadata for external callers (the serving layer): a
     transformed function's appended I64 handle parameters, in order,
     as the descriptor ids a driver must [ds_init] to call it directly.
     -1 marks an argnode no descriptor covers (never hit by functions a
     driver should call). *)
  let fn_arg_sids =
    let sid_of = Hashtbl.create 16 in
    List.iter
      (fun (d : A.Dsa.desc_info) ->
        Hashtbl.replace sid_of (A.Dsa.canonical dsa1 d.desc_node) d.desc_id)
      (A.Dsa.descriptors dsa1);
    List.map
      (fun (f : Cards_ir.Func.t) ->
        ( f.name,
          List.map
            (fun n ->
              match Hashtbl.find_opt sid_of (A.Dsa.canonical dsa1 n) with
              | Some sid -> sid
              | None -> -1)
            (A.Dsa.argnodes dsa1 f.name) ))
      m.funcs
  in
  let pooled = T.Pool_alloc.run m dsa1 in
  let dsa2 = A.Dsa.analyze pooled in
  let guarded = T.Guards.run pooled dsa2 in
  let dsa3 = A.Dsa.analyze guarded in
  let slimmed = T.Guard_elim.run guarded dsa3 ~level:options.guard_elim_level in
  let guards_removed = T.Guard_elim.removed_last_run () in
  let final, versioned_loops =
    if options.versioning then begin
      let dsa4 = A.Dsa.analyze slimmed in
      let v = T.Versioning.run slimmed dsa4 in
      (v, T.Versioning.versioned_loops_last_run ())
    end
    else (slimmed, 0)
  in
  { source = m;
    plain = pooled;
    instrumented = final;
    infos;
    static_guards = T.Guards.count_guards final;
    guards_removed;
    versioned_loops;
    fn_arg_sids }

let compile_source ?options src = compile ?options (Cards_ir.Minic.compile src)

let run ?fuel ?engine ?obs c (cfg : R.Runtime.config) =
  let rt = R.Runtime.create ?obs cfg c.infos in
  let res = Cards_interp.Machine.run ?fuel ?engine c.instrumented rt in
  (res, rt)

let run_plain ?fuel ?engine ?obs c (cfg : R.Runtime.config) =
  let rt = R.Runtime.create ?obs cfg c.infos in
  let res = Cards_interp.Machine.run ?fuel ?engine c.plain rt in
  (res, rt)
