(** The CaRDS compiler pipeline — the paper's Figure 1, end to end:

    {v
    MiniC ──frontend──► IR
      ├─ DSA (SeaDSA-style, context-sensitive)        §4.1
      ├─ pool allocation (Algorithm 1)                 §4.1
      ├─ guard insertion + redundant guard elimination §4.1
      ├─ code versioning (selective remoting)          §4.1
      └─ static descriptor table (scores, prefetch classes, object
         sizes) handed to the runtime                  §4.2
    v}

    [compile] produces a transformed module plus the static descriptor
    table; [run] executes it on a configured runtime and returns the
    simulated cycle count and per-structure statistics. *)

type options = {
  guard_elim_level : Cards_transform.Guard_elim.level;
  versioning : bool;
  presimplify : bool;
      (** run {!Cards_transform.Simplify} (constant folding / copy
          propagation / DCE) before the CaRDS passes; off by default so
          measured instruction mixes stay comparable across options *)
  factorize : bool;
      (** run {!Cards_transform.Factorize} (hot/cold splitting,
          AoS→SoA) before everything else, so descriptors, pools and
          prefetch classes are derived from the transformed layouts;
          off by default *)
}

val cards_options : options
(** Full CaRDS: object-window + loop-invariant guard elimination, code
    versioning on. *)

val trackfm_options : options
(** TrackFM-style conservative compilation: syntactic guard dedup only,
    no code versioning. *)

type compiled = {
  source : Cards_ir.Irmod.t;     (** the verified input module *)
  plain : Cards_ir.Irmod.t;      (** pool-allocated, no guards (upper bound) *)
  instrumented : Cards_ir.Irmod.t; (** the module the runtime executes *)
  infos : Cards_runtime.Static_info.t array; (** static descriptor table *)
  static_guards : int;           (** guards remaining after elimination *)
  guards_removed : int;
  versioned_loops : int;
  fn_arg_sids : (string * int list) list;
      (** per-function handle plan: the descriptor ids behind the I64
          handle parameters pool allocation appended to each function,
          in parameter order.  A driver calling a transformed function
          directly (e.g. the serving layer dispatching requests into a
          live session) must [ds_init] each listed sid once and append
          the returned handles to the call's arguments.  [main] maps to
          [[]]; an argnode outside every descriptor maps to [-1]. *)
}

val compile : ?options:options -> Cards_ir.Irmod.t -> compiled

val compile_source : ?options:options -> string -> compiled
(** MiniC source → [compile]. *)

val run :
  ?fuel:int ->
  ?engine:Cards_interp.Machine.engine ->
  ?obs:Cards_obs.Sink.t ->
  compiled ->
  Cards_runtime.Runtime.config ->
  Cards_interp.Machine.result * Cards_runtime.Runtime.t
(** Instantiate a runtime with the compiled descriptor table and
    execute the instrumented module.  [obs] forwards to
    {!Cards_runtime.Runtime.create}: attach a sink to collect traces
    and epoch metrics without perturbing simulated time.  [engine]
    selects the execution engine (default
    {!Cards_interp.Machine.Decoded}); both are bit-identical. *)

val run_plain :
  ?fuel:int ->
  ?engine:Cards_interp.Machine.engine ->
  ?obs:Cards_obs.Sink.t ->
  compiled ->
  Cards_runtime.Runtime.config ->
  Cards_interp.Machine.result * Cards_runtime.Runtime.t
(** Execute the guard-free module (used for the all-local upper bound
    and for output-equivalence tests). *)
