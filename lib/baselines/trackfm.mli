(** TrackFM baseline (Tauro et al., ASPLOS '24), as the paper models
    it: a conservative far-memory compiler where "all objects are
    assumed to be remotable, since the compiler is unable to predict
    locality of access statically".

    Concretely: guard every managed access with only syntactic
    redundancy elimination, no code versioning, the {e all-remotable}
    policy (no pinned memory), induction-variable-only (stride)
    prefetching, and TrackFM's measured guard costs from Table 1. *)

val options : Cards.Pipeline.options

val compile : Cards_ir.Irmod.t -> Cards.Pipeline.compiled
val compile_source : string -> Cards.Pipeline.compiled

val run_config :
  local_bytes:int -> remotable_bytes:int -> Cards_runtime.Runtime.config
(** TrackFM treats all local memory as one object cache, so
    [remotable_bytes] should normally equal [local_bytes]; both are
    exposed for experiments. *)

val run :
  ?fuel:int ->
  ?engine:Cards_interp.Machine.engine ->
  ?obs:Cards_obs.Sink.t ->
  Cards.Pipeline.compiled ->
  local_bytes:int ->
  Cards_interp.Machine.result * Cards_runtime.Runtime.t
