module P = Cards.Pipeline
module R = Cards_runtime

let run_config () =
  { R.Runtime.default_config with
    policy = R.Policy.All_local;
    k = 1.0;
    local_bytes = max_int / 2;
    remotable_bytes = 0 }

let run ?fuel ?engine ?obs compiled =
  P.run_plain ?fuel ?engine ?obs compiled (run_config ())
