module P = Cards.Pipeline
module R = Cards_runtime

type profile = {
  per_sid_bytes : int array;
  per_sid_accesses : int array;
  profiling_cycles : int;
}

let profile ?fuel (compiled : P.compiled) =
  let n = Array.length compiled.infos in
  (* Profile with everything tagged (all-remotable) but an ample cache,
     so every access is attributable to its data structure and the
     profile sees true sizes — the moral equivalent of Mira's memory
     profiler pass. *)
  let cfg =
    { R.Runtime.default_config with
      policy = R.Policy.All_remotable;
      k = 0.0;
      local_bytes = max_int / 2;
      remotable_bytes = max_int / 2 }
  in
  let res, rt = P.run ?fuel compiled cfg in
  let per_sid_bytes = Array.make n 0 in
  let per_sid_accesses = Array.make n 0 in
  List.iter
    (fun (r : R.Runtime.ds_report) ->
      if r.r_sid >= 0 && r.r_sid < n then begin
        per_sid_bytes.(r.r_sid) <- per_sid_bytes.(r.r_sid) + r.r_bytes;
        per_sid_accesses.(r.r_sid) <-
          per_sid_accesses.(r.r_sid) + r.r_stats.plain_accesses
      end)
    (R.Runtime.report rt);
  { per_sid_bytes; per_sid_accesses; profiling_cycles = res.cycles }

let pinned_set p ~pinned_budget =
  let n = Array.length p.per_sid_bytes in
  let density sid =
    let b = p.per_sid_bytes.(sid) in
    if b = 0 then 0.0
    else float_of_int p.per_sid_accesses.(sid) /. float_of_int b
  in
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      let c = compare (density b) (density a) in
      if c <> 0 then c else compare a b)
    order;
  let pinned = Array.make n false in
  let budget = ref pinned_budget in
  Array.iter
    (fun sid ->
      let sz = p.per_sid_bytes.(sid) in
      if sz > 0 && sz <= !budget && p.per_sid_accesses.(sid) > 0 then begin
        pinned.(sid) <- true;
        budget := !budget - sz
      end)
    order;
  pinned

let run_config ~pinned ~local_bytes ~remotable_bytes =
  { R.Runtime.default_config with
    policy = R.Policy.Explicit pinned;
    k = 1.0;
    local_bytes;
    remotable_bytes;
    cost = R.Cost.cards;
    (* Same transport as CaRDS (batched, two QPs): Mira differs in
       placement policy, not in the fabric. *)
    fabric_config = R.Runtime.default_config.fabric_config;
    prefetch_mode = R.Runtime.Pf_per_class;
    prefetch_depth = 4;
    batching = true }

let run ?fuel ?engine ?obs compiled ~local_bytes ~remotable_bytes =
  let p = profile ?fuel compiled in
  let pinned = pinned_set p ~pinned_budget:(local_bytes - remotable_bytes) in
  (* Only the measured run is observed; the profiling pass stays dark
     so its events do not pollute the trace. *)
  P.run ?fuel ?engine ?obs compiled
    (run_config ~pinned ~local_bytes ~remotable_bytes)
