(** The all-local upper bound: the pool-allocated program with no
    guards and every structure pinned — what the application would cost
    on a machine with enough local DRAM.  Figures 5–7 normalize against
    configurations like this, and output-equivalence tests compare
    every system's results to it. *)

val run_config : unit -> Cards_runtime.Runtime.config

val run :
  ?fuel:int ->
  ?engine:Cards_interp.Machine.engine ->
  ?obs:Cards_obs.Sink.t ->
  Cards.Pipeline.compiled ->
  Cards_interp.Machine.result * Cards_runtime.Runtime.t
