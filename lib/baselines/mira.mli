(** Mira baseline (Guo et al., SOSP '23), as the paper models it: a
    {e profile-guided} far-memory compiler.  "In Mira, a memory
    profiler is used to determine allocation sizes, and only those
    objects with large sizes are further analyzed to decide on the
    appropriate far memory policies."

    The model: one profiling execution with ample local memory records
    per-structure sizes and access counts; a greedy density knapsack
    (accesses per byte) then picks the pinned set that exactly fits the
    pinned budget.  Because Mira knows {e sizes}, it never overshoots
    the way CaRDS's size-oblivious k-fraction can — which is why Mira
    pulls ahead once local memory is plentiful (paper Fig. 8), while
    CaRDS stays within ~20–25 % when memory is scarce.

    The profiling run's cost is not charged (the paper compares steady
    state), but it is reported so the "profiling is expensive" argument
    stays visible. *)

type profile = {
  per_sid_bytes : int array;
  per_sid_accesses : int array;
  profiling_cycles : int;  (** what the profiling run itself cost *)
}

val profile : ?fuel:int -> Cards.Pipeline.compiled -> profile
(** Run the instrumented program once with everything local. *)

val pinned_set : profile -> pinned_budget:int -> bool array
(** Greedy access-density knapsack under the byte budget. *)

val run_config :
  pinned:bool array ->
  local_bytes:int ->
  remotable_bytes:int ->
  Cards_runtime.Runtime.config

val run :
  ?fuel:int ->
  ?engine:Cards_interp.Machine.engine ->
  ?obs:Cards_obs.Sink.t ->
  Cards.Pipeline.compiled ->
  local_bytes:int ->
  remotable_bytes:int ->
  Cards_interp.Machine.result * Cards_runtime.Runtime.t
(** Profile, pick the pinned set for [local_bytes - remotable_bytes],
    then run. *)
