module P = Cards.Pipeline
module R = Cards_runtime

let options = P.trackfm_options

let compile m = P.compile ~options m
let compile_source src = P.compile_source ~options src

let run_config ~local_bytes ~remotable_bytes =
  { R.Runtime.default_config with
    policy = R.Policy.All_remotable;
    k = 0.0;
    local_bytes;
    remotable_bytes;
    cost = R.Cost.trackfm;
    fabric_config = Cards_net.Fabric.trackfm_config;
    prefetch_mode = R.Runtime.Pf_stride_only;
    prefetch_depth = 4;
    (* TrackFM swaps per object over a single queue: its leaner
       protocol path never aggregates requests, which is exactly the
       Fig. 8 contrast against CaRDS's batched fabric. *)
    batching = false }

let run ?fuel ?engine ?obs compiled ~local_bytes =
  P.run ?fuel ?engine ?obs compiled
    (run_config ~local_bytes ~remotable_bytes:local_bytes)
