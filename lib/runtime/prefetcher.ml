type target = { t_ds : int; t_obj : int; t_len : int }

type stride_state = {
  s_depth : int;
  mutable last : int;
  mutable have_last : bool;
  deltas : int array;          (* ring of recent deltas *)
  mutable n_deltas : int;
  mutable next_slot : int;
  mutable locked : int;        (* 0 = unlocked *)
  mutable frontier : int;      (* first object not yet covered by an
                                  emitted run (unit-stride mode only) *)
}

type jump_state = {
  j_jump : int;
  j_depth : int;
  table : (int, int) Hashtbl.t;   (* obj -> obj seen [jump] steps later *)
  ring : int array;               (* last [jump] objects *)
  mutable ring_n : int;
  mutable ring_pos : int;
  mutable since_chase : int;      (* accesses since the last chase *)
}

type kind =
  | Stride of stride_state
  | Greedy of int
  | Jump of jump_state

(* Observability wrapper: every prefetcher counts its invocations and
   emitted targets, so epoch metrics can report per-policy activity
   without the runtime re-deriving it. *)
type t = {
  k : kind;
  mutable calls : int;
  mutable emitted : int;
}

let wrap k = { k; calls = 0; emitted = 0 }

let stride ~depth =
  wrap
    (Stride
       { s_depth = depth; last = 0; have_last = false;
         deltas = Array.make 8 0; n_deltas = 0; next_slot = 0; locked = 0;
         frontier = 0 })

let greedy ~fanout = wrap (Greedy fanout)

let jump ~jump ~depth =
  wrap
    (Jump
       { j_jump = jump; j_depth = depth; table = Hashtbl.create 256;
         ring = Array.make jump 0; ring_n = 0; ring_pos = 0;
         since_chase = 0 })

let of_class cls ~depth =
  match (cls : Static_info.prefetch_class) with
  | No_prefetch -> None
  | Stride -> Some (stride ~depth)
  | Greedy_recursive -> Some (greedy ~fanout:depth)
  | Jump_pointer ->
    (* Jump pointers exist to tolerate latency on linear chains (Luk &
       Mowry): each table hop advances [jump] positions, so chasing
       [4·depth] hops runs far enough ahead of the traversal to cover a
       full remote fetch. *)
    Some (jump ~jump:8 ~depth:(4 * depth))

(* Majority vote over the delta window. *)
let majority_delta st =
  let n = st.n_deltas in
  if n < 4 then 0
  else begin
    let best = ref 0 and best_count = ref 0 in
    for i = 0 to n - 1 do
      let d = st.deltas.(i) in
      let c = ref 0 in
      for j = 0 to n - 1 do
        if st.deltas.(j) = d then incr c
      done;
      if !c > !best_count then begin
        best := d;
        best_count := !c
      end
    done;
    if 2 * !best_count > n && !best <> 0 then !best else 0
  end

let on_access_kind t ~obj ~missed ~scan =
  match t with
  | Stride st ->
    let out =
      if st.have_last then begin
        let d = obj - st.last in
        if d <> 0 then begin
          st.deltas.(st.next_slot) <- d;
          st.next_slot <- (st.next_slot + 1) mod Array.length st.deltas;
          if st.n_deltas < Array.length st.deltas then
            st.n_deltas <- st.n_deltas + 1;
          let was = st.locked in
          st.locked <- majority_delta st;
          if st.locked <> was then st.frontier <- 0
        end;
        if st.locked = 1 then begin
          (* Unit stride: emit the window as contiguous runs with
             hysteresis.  Topping the window up only when the issued
             frontier falls within [depth] of the access point means
             each top-up covers ~[depth] fresh objects — one wire
             request per window chunk instead of one per object. *)
          (* A seek backwards (typically a new pass over the same
             array) strands the frontier beyond anything we would emit
             again; snap it back so the re-traversal prefetches like
             the first pass did. *)
          if st.frontier > obj + (2 * st.s_depth) + 1 then
            st.frontier <- obj + 1;
          if st.frontier - obj <= st.s_depth then begin
            let lo = max st.frontier (obj + 1) in
            let hi = obj + (2 * st.s_depth) in
            st.frontier <- hi + 1;
            if hi >= lo then [ { t_ds = 0; t_obj = lo; t_len = hi - lo + 1 } ]
            else []
          end
          else []
        end
        else if st.locked <> 0 then
          List.init st.s_depth (fun i ->
              { t_ds = 0; t_obj = obj + (st.locked * (i + 1)); t_len = 1 })
          |> List.filter (fun tg -> tg.t_obj >= 0)
        else []
      end
      else []
    in
    st.last <- obj;
    st.have_last <- true;
    out
  | Greedy fanout ->
    if missed then begin
      let ptrs = scan () in
      let rec take n = function
        | [] -> []
        | _ when n = 0 -> []
        | x :: rest -> x :: take (n - 1) rest
      in
      take fanout ptrs
    end
    else []
  | Jump st ->
    (* Record: the object seen [jump] accesses ago now maps to us. *)
    let out =
      if st.ring_n >= st.j_jump then begin
        let victim = st.ring.(st.ring_pos) in
        Hashtbl.replace st.table victim obj;
        (* Chase on a cadence, not every access: re-chasing from every
           position re-emits yesterday's window and nets one fresh
           object per call — a stream of single-object requests each
           paying the full protocol cost.  Chasing every [jump]
           accesses (immediately on a miss, when the window collapsed)
           advances the frontier by ~[jump] objects at a time, which a
           batching fabric carries as one request. *)
        st.since_chase <- st.since_chase + 1;
        if missed || st.since_chase >= st.j_jump then begin
          st.since_chase <- 0;
          (* Fetch ahead through the jump table. *)
          let rec chase from depth acc =
            if depth = 0 then acc
            else
              match Hashtbl.find_opt st.table from with
              | Some next ->
                chase next (depth - 1)
                  ({ t_ds = 0; t_obj = next; t_len = 1 } :: acc)
              | None -> acc
          in
          chase obj st.j_depth []
        end
        else []
      end
      else []
    in
    st.ring.(st.ring_pos) <- obj;
    st.ring_pos <- (st.ring_pos + 1) mod st.j_jump;
    if st.ring_n < st.j_jump then st.ring_n <- st.ring_n + 1;
    out

let on_access t ~obj ~missed ~scan =
  t.calls <- t.calls + 1;
  let out = on_access_kind t.k ~obj ~missed ~scan in
  t.emitted <- t.emitted + List.fold_left (fun acc tg -> acc + tg.t_len) 0 out;
  out

let kind_name t =
  match t.k with
  | Stride _ -> "stride"
  | Greedy _ -> "greedy"
  | Jump _ -> "jump"

let calls t = t.calls
let targets_emitted t = t.emitted
