type target = { t_ds : int; t_obj : int }

type stride_state = {
  s_depth : int;
  mutable last : int;
  mutable have_last : bool;
  deltas : int array;          (* ring of recent deltas *)
  mutable n_deltas : int;
  mutable next_slot : int;
  mutable locked : int;        (* 0 = unlocked *)
}

type jump_state = {
  j_jump : int;
  j_depth : int;
  table : (int, int) Hashtbl.t;   (* obj -> obj seen [jump] steps later *)
  ring : int array;               (* last [jump] objects *)
  mutable ring_n : int;
  mutable ring_pos : int;
}

type kind =
  | Stride of stride_state
  | Greedy of int
  | Jump of jump_state

(* Observability wrapper: every prefetcher counts its invocations and
   emitted targets, so epoch metrics can report per-policy activity
   without the runtime re-deriving it. *)
type t = {
  k : kind;
  mutable calls : int;
  mutable emitted : int;
}

let wrap k = { k; calls = 0; emitted = 0 }

let stride ~depth =
  wrap
    (Stride
       { s_depth = depth; last = 0; have_last = false;
         deltas = Array.make 8 0; n_deltas = 0; next_slot = 0; locked = 0 })

let greedy ~fanout = wrap (Greedy fanout)

let jump ~jump ~depth =
  wrap
    (Jump
       { j_jump = jump; j_depth = depth; table = Hashtbl.create 256;
         ring = Array.make jump 0; ring_n = 0; ring_pos = 0 })

let of_class cls ~depth =
  match (cls : Static_info.prefetch_class) with
  | No_prefetch -> None
  | Stride -> Some (stride ~depth)
  | Greedy_recursive -> Some (greedy ~fanout:depth)
  | Jump_pointer ->
    (* Jump pointers exist to tolerate latency on linear chains (Luk &
       Mowry): each table hop advances [jump] positions, so chasing
       [4·depth] hops runs far enough ahead of the traversal to cover a
       full remote fetch. *)
    Some (jump ~jump:8 ~depth:(4 * depth))

(* Majority vote over the delta window. *)
let majority_delta st =
  let n = st.n_deltas in
  if n < 4 then 0
  else begin
    let best = ref 0 and best_count = ref 0 in
    for i = 0 to n - 1 do
      let d = st.deltas.(i) in
      let c = ref 0 in
      for j = 0 to n - 1 do
        if st.deltas.(j) = d then incr c
      done;
      if !c > !best_count then begin
        best := d;
        best_count := !c
      end
    done;
    if 2 * !best_count > n && !best <> 0 then !best else 0
  end

let on_access_kind t ~obj ~missed ~scan =
  match t with
  | Stride st ->
    let out =
      if st.have_last then begin
        let d = obj - st.last in
        if d <> 0 then begin
          st.deltas.(st.next_slot) <- d;
          st.next_slot <- (st.next_slot + 1) mod Array.length st.deltas;
          if st.n_deltas < Array.length st.deltas then
            st.n_deltas <- st.n_deltas + 1;
          st.locked <- majority_delta st
        end;
        if st.locked <> 0 then
          List.init st.s_depth (fun i ->
              { t_ds = 0; t_obj = obj + (st.locked * (i + 1)) })
          |> List.filter (fun tg -> tg.t_obj >= 0)
        else []
      end
      else []
    in
    st.last <- obj;
    st.have_last <- true;
    out
  | Greedy fanout ->
    if missed then begin
      let ptrs = scan () in
      let rec take n = function
        | [] -> []
        | _ when n = 0 -> []
        | x :: rest -> x :: take (n - 1) rest
      in
      take fanout ptrs
    end
    else []
  | Jump st ->
    (* Record: the object seen [jump] accesses ago now maps to us. *)
    let out =
      if st.ring_n >= st.j_jump then begin
        let victim = st.ring.(st.ring_pos) in
        Hashtbl.replace st.table victim obj;
        (* Fetch ahead through the jump table. *)
        let rec chase from depth acc =
          if depth = 0 then acc
          else
            match Hashtbl.find_opt st.table from with
            | Some next -> chase next (depth - 1) ({ t_ds = 0; t_obj = next } :: acc)
            | None -> acc
        in
        chase obj st.j_depth []
      end
      else []
    in
    st.ring.(st.ring_pos) <- obj;
    st.ring_pos <- (st.ring_pos + 1) mod st.j_jump;
    if st.ring_n < st.j_jump then st.ring_n <- st.ring_n + 1;
    out

let on_access t ~obj ~missed ~scan =
  t.calls <- t.calls + 1;
  let out = on_access_kind t.k ~obj ~missed ~scan in
  t.emitted <- t.emitted + List.length out;
  out

let kind_name t =
  match t.k with
  | Stride _ -> "stride"
  | Greedy _ -> "greedy"
  | Jump _ -> "jump"

let calls t = t.calls
let targets_emitted t = t.emitted
