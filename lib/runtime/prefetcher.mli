(** Per-data-structure prefetchers (paper §4.2, "Prefetching Policy
    Selection"): a majority stride-based prefetcher, a greedy recursive
    prefetcher, and a jump-pointer prefetcher.

    A prefetcher observes the object-index stream of one data structure
    and returns the objects to fetch ahead.  Greedy and jump-pointer
    prefetchers may target other structures (a node can point into a
    different pool), so targets carry a handle.

    - {e Stride}: keeps a small window of recent index deltas; when a
      majority agree it locks that stride and fetches [depth] objects
      ahead.  At unit stride it emits {e contiguous runs}: the ahead
      window is topped up in ~[depth]-object chunks, so a batching
      fabric can carry a whole chunk in one request instead of paying
      the protocol cost per object.
    - {e Greedy recursive}: when an object is (re)fetched, scans its
      contents for tagged pointers and fetches their objects — one
      level of fan-out, good for trees.
    - {e Jump pointer}: remembers, per object, the object the traversal
      visited [jump] steps later, and fetches through that table —
      effective for linear chains from the second traversal on. *)

type target = { t_ds : int; t_obj : int; t_len : int }
(** [t_ds = 0] means "this structure".  A target names the contiguous
    ascending run of [t_len] objects starting at [t_obj] ([t_len = 1]
    for a single object); runs never span structures. *)

type t

val stride : depth:int -> t
val greedy : fanout:int -> t
val jump : jump:int -> depth:int -> t

val of_class : Static_info.prefetch_class -> depth:int -> t option
(** The paper's class→prefetcher mapping; [No_prefetch] gives [None]. *)

val on_access :
  t -> obj:int -> missed:bool -> scan:(unit -> target list) -> target list
(** Feed one access; [scan] lazily reads the object's pointer slots
    (only called by the greedy prefetcher, and only on misses).
    Returns prefetch candidates (possibly already resident — the
    runtime filters). *)

val kind_name : t -> string

val calls : t -> int
(** Accesses observed (observability counter). *)

val targets_emitted : t -> int
(** Prefetch candidate {e objects} returned over the prefetcher's
    lifetime (runs count their length) — before the runtime's
    residency/window filtering. *)
