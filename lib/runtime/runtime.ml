module Fabric = Cards_net.Fabric
module Vec = Cards_util.Vec
module Sink = Cards_obs.Sink
module Event = Cards_obs.Event
module Profile = Cards_obs.Profile
module Metrics = Cards_obs.Metrics
module Attribution = Cards_obs.Attribution
module Span = Cards_obs.Span
module Recorder = Cards_obs.Recorder
module Reporter = Cards_obs.Reporter

type prefetch_mode = Pf_none | Pf_stride_only | Pf_per_class | Pf_adaptive

type config = {
  policy : Policy.t;
  k : float;
  local_bytes : int;
  remotable_bytes : int;
  cost : Cost.t;
  fabric_config : Fabric.config;
  prefetch_mode : prefetch_mode;
  prefetch_depth : int;
  (* Layout-aware sizing: when set, each structure's window depth is
     derived from this wire budget in bytes and its own object size
     ([budget / obj_size], clamped to [1, 64]), so a factorized hot
     pool earns a proportionally deeper run.  [None] keeps the fixed
     object-count [prefetch_depth] for every structure. *)
  prefetch_bytes : int option;
  batching : bool;
  (* Fault survival (only exercised when the fabric injects faults):
     a demand fetch is retried after a transient failure or a
     timed-out late completion, waiting an exponentially growing
     backoff between attempts; once [retry_max] retries are spent, it
     escalates to the fabric's reliable channel, which cannot fault. *)
  retry_max : int;
  retry_backoff_cycles : int;     (* first backoff; doubles per retry *)
  fetch_timeout_cycles : int;     (* per-attempt budget for late completions *)
  (* What-if execution knobs (Whatif.exec -> config via
     [whatif_config]): scaled fabric costs for inbound fetches,
     globally and per structure (static name, resolved at ds_init), and
     instant prefetch arrival.  All timing-only: outputs are invariant
     under any setting, which is what lets the whatif bench validate
     predictions against re-executed reality. *)
  cost_scale : Fabric.scale;
  ds_cost_scales : (string * Fabric.scale) list;
  pf_instant : bool;              (* prefetches land at issue time *)
  (* Tenant handle namespace (the serving layer, lib/serve): a
     non-empty namespace prefixes every structure name this runtime
     reports ("tenant/name#sid"), so per-tenant stats, attribution
     rows and exports stay collision-free when a serving driver
     aggregates many tenant runtimes into one view.  Handles remain
     runtime-local: a pointer can never cross namespaces because the
     handle bits only resolve against this runtime's table. *)
  namespace : string;
}

let default_config =
  { policy = Policy.Linear;
    k = 1.0;
    local_bytes = 64 * 1024 * 1024;
    remotable_bytes = 8 * 1024 * 1024;
    cost = Cost.cards;
    (* Two inbound QPs: demand faults dispatch least-loaded, so a miss
       is not queued behind a streaming prefetch window. *)
    fabric_config = { Fabric.default_config with qp_count = 2 };
    prefetch_mode = Pf_per_class;
    prefetch_depth = 4;
    prefetch_bytes = None;
    batching = true;
    retry_max = 4;
    retry_backoff_cycles = 4_096;
    (* ~2.7x a nominal 4 KiB fetch: legitimate queueing never trips it
       (the timeout only ever engages on late-faulted completions). *)
    fetch_timeout_cycles = 150_000;
    cost_scale = Fabric.unit_scale;
    ds_cost_scales = [];
    pf_instant = false;
    namespace = "" }

(* Map an executable what-if scenario onto a perturbed copy of [cfg],
   so a prediction made from the span graph can be checked by actually
   re-running the program under the changed parameter.  [None] means
   the scenario has no runtime knob.  Per-structure scales are keyed
   by static name and *prepended*, so a scenario overrides any
   existing entry for the same structure. *)
let whatif_config cfg (exec : Cards_obs.Whatif.exec) =
  match exec with
  | Cards_obs.Whatif.Exec_none -> None
  | Cards_obs.Whatif.Exec_scale { eds; proto; wire } ->
    let scale = { Fabric.s_proto = proto; s_wire = wire } in
    (match eds with
     | None -> Some { cfg with cost_scale = scale }
     | Some name ->
       Some { cfg with ds_cost_scales = (name, scale) :: cfg.ds_cost_scales })
  | Cards_obs.Whatif.Exec_qp n ->
    Some { cfg with fabric_config = { cfg.fabric_config with Fabric.qp_count = n } }
  | Cards_obs.Whatif.Exec_fault_free ->
    Some
      { cfg with
        fabric_config = { cfg.fabric_config with Fabric.faults = Fabric.no_faults } }
  | Cards_obs.Whatif.Exec_instant_prefetch -> Some { cfg with pf_instant = true }

exception Runtime_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

(* Object state bits. *)
let b_resident = 1
let b_dirty = 2
let b_ref = 4
let b_prefetched = 8
let b_inflight = 16
let b_inclock = 32

let segv_penalty = 2_000 (* trap + handler on the unguarded fallback path *)

type ds = {
  handle : int;
  info : Static_info.t;
  obj_shift : int;
  mutable pinned : bool;
      (* Pinned structures allocate *untagged* pointers straight out of
         local memory: the custody check (shr+jz, Fig. 3) falls through
         in 3 cycles, which is how per-access guard elision works.
         When the structure stops fitting, the runtime overrides the
         hint ([pinned] flips to false) and *future* allocations are
         tagged/remotable; already-issued untagged pointers stay local
         forever, as they must. *)
  mutable pinned_bytes : int;     (* untagged bytes issued while pinned *)
  mutable resident_bytes : int;   (* bytes currently in the remotable cache *)
  mutable data : Bytes.t;
  mutable pool_used : int;
  mutable objs : int array;       (* state flags per object *)
  mutable arrivals : int array;   (* completion time while in flight *)
  mutable pf : Prefetcher.t option;
  (* Adaptive prefetch selection (§4.2: "standard prefetching metrics,
     such as accuracy and coverage, are used to evaluate the
     effectiveness of each prefetching policy"): per-epoch counters and
     the list of prefetchers still worth trying. *)
  mutable pf_candidates : Static_info.prefetch_class list;
  pf_order : Static_info.prefetch_class list;
      (* full candidate cycle, for re-exploration after a cool-down *)
  mutable pf_cooldown : int;      (* epochs to stay off before retrying *)
  mutable epoch_accesses : int;
  mutable epoch_issued : int;
  mutable epoch_used : int;
  mutable epoch_faults : int;
  mutable pf_switches : int;
  scale : Fabric.scale;           (* what-if cost scale, fixed at init *)
  st : Rt_stats.ds;
  prof : Profile.buckets;         (* cycle-attribution buckets *)
}

type t = {
  cfg : config;
  pinned_budget : int;
  mutable clock : int;
  fabric : Fabric.t;
  infos : Static_info.t array;
  pref : bool array;              (* per sid: pinned preference *)
  dss : ds Vec.t;                 (* handle h lives at index h-1 *)
  tc : ds option array;           (* direct-mapped handle -> ds translation
                                     cache for the guarded-access fast path.
                                     Never invalidated: handles are stable
                                     and structure records are never
                                     replaced, so an entry can only be
                                     missing, not stale. *)
  mutable unmanaged_data : Bytes.t;
  mutable unmanaged_used : int;
  mutable pinned_used : int;
  mutable remotable_used : int;
  clockq : (int * int) Queue.t;   (* CLOCK over remotable residents *)
  (* Graceful degradation: a sliding window of recent transfer
     outcomes (1 byte each: did the attempt fault?).  When the
     observed fault rate over the window crosses the degrade
     threshold, the prefetch window narrows one step (effective depth
     halves); when the fabric recovers it re-widens.  All dormant —
     zero cost and zero behaviour change — unless the fabric was
     created with a nonzero fault rate ([fault_accounting]). *)
  fault_accounting : bool;
  fw : Bytes.t;                   (* outcome ring, [fault_window] slots *)
  mutable fw_len : int;
  mutable fw_pos : int;
  mutable fw_faults : int;
  mutable degrade : int;          (* 0 = full prefetch width *)
  mutable degrade_cooldown : int; (* outcomes to wait between steps *)
  stats : Rt_stats.t;
  obs : Sink.t;
  prof : Profile.t;
  prof0 : Profile.buckets;        (* handle-0 bucket, cached off the hot path *)
  attr : Attribution.t;
  (* Current access site (function, block, instruction), stamped by the
     interpreter before each runtime-entering instruction so stall
     charges land on the instruction that paid them.  Direct API users
     (benches, tests) stay on [Attribution.unknown_site]. *)
  mutable site_fn : string;
  mutable site_block : int;
  mutable site_instr : int;
  (* Causal span layer.  [spans] is the sink's collector, cached so
     every hook is one [match] on an immutable field — [None] means
     spans are off and the hook is a no-op costing one branch, which
     is how tracing off stays the seed fast path.  [cur_span] is the
     id of the current access's span (demand completion, settle, or
     timely hit), the [E_trigger] parent for any prefetch the access
     sets off; -1 between spanned accesses.  Span recording never
     touches [clock], so spanning on is cycle-identical by
     construction. *)
  spans : Span.collector option;
  mutable cur_span : int;
}

let log2_exact x =
  let rec go p n = if 1 lsl p >= n then p else go (p + 1) n in
  go 3 x

(* Degradation window: judged over the last [fault_window] transfer
   attempts once at least [fault_window_min] are in hand.  Integer
   ratios keep the policy exact and branch-cheap: degrade one step
   above 1/8 observed faults (12.5%), re-widen below 1/32 (3.1%), and
   wait [degrade_cooldown_len] further outcomes between steps so one
   burst cannot slam the window shut and open again. *)
let fault_window = 64
let fault_window_min = 32
let degrade_max = 6
let degrade_cooldown_len = 32

let tc_slots = 64
let tc_mask = tc_slots - 1

let create ?(obs = Sink.null) cfg infos =
  if cfg.remotable_bytes > cfg.local_bytes then
    fail "remotable region (%d) exceeds local memory (%d)" cfg.remotable_bytes
      cfg.local_bytes;
  Array.iteri
    (fun i (inf : Static_info.t) ->
      if inf.sid <> i then fail "static descriptor %d out of order" inf.sid)
    infos;
  let check_scale what (s : Fabric.scale) =
    let bad f = not (Float.is_finite f) || f < 0.0 in
    if bad s.Fabric.s_proto || bad s.Fabric.s_wire then
      fail "%s: cost scale factors must be finite and non-negative" what
  in
  check_scale "cost_scale" cfg.cost_scale;
  List.iter
    (fun (n, s) -> check_scale ("ds_cost_scales." ^ n) s)
    cfg.ds_cost_scales;
  let prof = Profile.create () in
  let fabric = Fabric.create cfg.fabric_config in
  { cfg;
    pinned_budget = cfg.local_bytes - cfg.remotable_bytes;
    clock = 0;
    fabric;
    infos;
    pref = Policy.pinned_preference cfg.policy ~infos ~k:cfg.k;
    dss = Vec.create ();
    tc = Array.make tc_slots None;
    unmanaged_data = Bytes.create 4096;
    unmanaged_used = 0;
    pinned_used = 0;
    remotable_used = 0;
    clockq = Queue.create ();
    fault_accounting = Fabric.faults_configured fabric;
    fw = Bytes.make fault_window '\000';
    fw_len = 0;
    fw_pos = 0;
    fw_faults = 0;
    degrade = 0;
    degrade_cooldown = 0;
    stats = Rt_stats.create ();
    obs;
    prof;
    prof0 = Profile.buckets prof 0;
    attr = Attribution.create ();
    site_fn = Attribution.unknown_site.Attribution.s_fn;
    site_block = Attribution.unknown_site.Attribution.s_block;
    site_instr = Attribution.unknown_site.Attribution.s_instr;
    spans = Sink.spans obs;
    cur_span = -1 }

let now t = t.clock

(* Every clock advance is attributed to exactly one profiler bucket, so
   [Profile.attributed t.prof = t.clock] holds at all times (the
   invariant test/test_obs.ml asserts).  [charge] is the public
   interpreter entry point and feeds the compute bucket; internal
   runtime costs advance the clock with [spend] and attribute the same
   cycles to a specific bucket at the call site.  Attribution never
   feeds back into the clock, so profiled and unprofiled runs produce
   bit-identical cycle counts. *)
let charge t c =
  t.clock <- t.clock + c;
  Profile.add_compute t.prof c

let spend t c = t.clock <- t.clock + c

(* Every [spend] pairs with one ledger charge: the same cycles, the
   same call site, one root cause — so [Attribution.total t.attr]
   equals [t.clock - Profile.compute t.prof] at all times (the stall
   side of the attribution invariant).  Like the profiler, the ledger
   is write-only with respect to the clock. *)
let attr_charge t ~ds cause c =
  Attribution.charge t.attr ~ds ~fn:t.site_fn ~block:t.site_block
    ~instr:t.site_instr cause c

let set_site t ~fn ~block ~instr =
  t.site_fn <- fn;
  t.site_block <- block;
  t.site_instr <- instr

let n_ds t = Vec.length t.dss

let get_ds t handle =
  if handle < 1 || handle > Vec.length t.dss then fail "bad handle %d" handle;
  Vec.get t.dss (handle - 1)

let namespace t = t.cfg.namespace

let ds_name t handle =
  let bare =
    if handle >= 1 && handle <= Vec.length t.dss then
      (Vec.get t.dss (handle - 1)).info.name
    else "(unmanaged)"
  in
  if t.cfg.namespace = "" then bare else t.cfg.namespace ^ "/" ^ bare

(* Span constructor stamped with the current access site; phase fields
   default to zero so each emission site names only what it explains. *)
let mk_span t ~id ~kind ~parent ?edge ~ds ~obj ~issued ~start ~complete
    ?(queued = 0) ?(proto = 0) ?(wire = 0) ?(retry = 0) ?(pf_wait = 0)
    ?(trap = 0) ?(qp = -1) ~bytes ?fault () =
  { Span.sp_id = id; sp_kind = kind; sp_parent = parent; sp_edge = edge;
    sp_ds = ds; sp_obj = obj; sp_fn = t.site_fn; sp_block = t.site_block;
    sp_instr = t.site_instr; sp_issued = issued; sp_start = start;
    sp_complete = complete; sp_queued = queued; sp_proto = proto;
    sp_wire = wire; sp_retry = retry; sp_pf_wait = pf_wait; sp_trap = trap;
    sp_qp = qp; sp_bytes = bytes; sp_fault = fault }

(* One-shot post-mortem dump through the sink's reporter; armed by
   [Sink.create ~postmortem:true], consumed by the first trap or
   reliable-channel escalation. *)
let maybe_postmortem t ~reason =
  if Sink.take_postmortem t.obs then
    match Sink.recorder t.obs with
    | Some r ->
      Reporter.text (Sink.reporter t.obs)
        (Recorder.postmortem ~reason ~degrade_level:t.degrade
           ~names:(ds_name t) r)
    | None -> ()

(* ---------- metrics sampling ---------- *)

let pf_name (d : ds) =
  match d.pf with Some p -> Prefetcher.kind_name p | None -> "off"

let sample_all t m =
  let cycle = t.clock in
  Vec.iteri
    (fun _ (d : ds) ->
      Metrics.record m
        { Metrics.m_cycle = cycle;
          m_ds = d.handle;
          m_name = d.info.name;
          m_resident_bytes = d.pinned_bytes + d.resident_bytes;
          m_guards = d.st.guards;
          m_guard_hits = d.st.guard_hits;
          m_remote_faults = d.st.remote_faults;
          m_clean_faults = d.st.clean_faults;
          m_pf_issued = d.st.prefetch_issued;
          m_pf_used = d.st.prefetch_used;
          m_pf_late = d.st.prefetch_late;
          m_evictions = d.st.evictions;
          m_fetched_bytes = d.st.fetched_bytes;
          m_prefetcher = pf_name d;
          m_pf_switches = d.pf_switches })
    t.dss;
  Metrics.catch_up m ~now:cycle

let maybe_sample t =
  if Sink.sampling t.obs && Sink.metrics_due t.obs ~now:t.clock then
    match Sink.metrics t.obs with
    | Some m -> sample_all t m
    | None -> ()

(* ---------- CLOCK eviction over the remotable region ---------- *)

let obj_size (d : ds) = 1 lsl d.obj_shift

let evict_until_fits t =
  let budget = t.cfg.remotable_bytes in
  let spins = ref (2 * Queue.length t.clockq + 2) in
  (* Eviction bursts coalesce their dirty writebacks into one posted
     request when batching is on; the per-object count/bytes accumulate
     here and hit the fabric once after the scan. *)
  let wb_count = ref 0 in
  let wb_bytes = ref 0 in
  while t.remotable_used > budget && !spins > 0 && not (Queue.is_empty t.clockq) do
    decr spins;
    let h, o = Queue.pop t.clockq in
    let d = get_ds t h in
    let st = if o < Array.length d.objs then d.objs.(o) else 0 in
    let st =
      (* A transfer that already landed is no longer in flight, even if
         nothing touched the object since; otherwise stale prefetches
         would clog the ring as unevictable residents. *)
      if st land b_inflight <> 0 && d.arrivals.(o) <= t.clock then begin
        d.objs.(o) <- st land lnot b_inflight;
        d.objs.(o)
      end
      else st
    in
    if st land b_inclock = 0 || d.pinned then
      () (* stale entry *)
    else if st land b_inflight <> 0 then
      (* never evict data still on the wire; give it a second chance *)
      Queue.push (h, o) t.clockq
    else if st land b_ref <> 0 then begin
      d.objs.(o) <- st land lnot b_ref;
      Queue.push (h, o) t.clockq
    end
    else begin
      (* evict *)
      let dirty = st land b_dirty <> 0 in
      if dirty then begin
        if t.cfg.batching then begin
          incr wb_count;
          wb_bytes := !wb_bytes + obj_size d
        end
        else Fabric.writeback t.fabric ~now:t.clock ~bytes:(obj_size d);
        if Sink.tracing t.obs then
          Sink.emit t.obs
            (Event.make ~cycle:t.clock ~ds:h ~obj:o
               (Event.Writeback { bytes = obj_size d }))
      end;
      d.objs.(o) <- 0;
      t.remotable_used <- t.remotable_used - obj_size d;
      d.resident_bytes <- d.resident_bytes - obj_size d;
      d.st.evictions <- d.st.evictions + 1;
      if Sink.tracing t.obs then
        Sink.emit t.obs
          (Event.make ~cycle:t.clock ~ds:h ~obj:o (Event.Evict { dirty }))
    end
  done;
  if !wb_count > 0 then
    Fabric.writeback_many t.fabric ~now:t.clock ~count:!wb_count
      ~bytes:!wb_bytes;
  (* With everything left in the ring on the wire (or the spin bound
     exhausted) the cache can stay transiently above budget; count it
     instead of silently ignoring it. *)
  if t.remotable_used > budget then Rt_stats.note_over_budget t.stats

let clock_insert t (d : ds) o =
  if not d.pinned && d.objs.(o) land b_inclock = 0 then begin
    (* New arrivals enter referenced, or the eviction scan triggered by
       their own insertion would reclaim them before first use. *)
    d.objs.(o) <- d.objs.(o) lor b_inclock lor b_ref;
    Queue.push (d.handle, o) t.clockq;
    t.remotable_used <- t.remotable_used + obj_size d;
    d.resident_bytes <- d.resident_bytes + obj_size d;
    evict_until_fits t
  end

(* ---------- allocation ---------- *)

let grow_bytes data needed =
  let cur = Bytes.length data in
  if needed <= cur then data
  else begin
    let ncap = ref (max cur 4096) in
    while !ncap < needed do
      ncap := !ncap * 2
    done;
    let nd = Bytes.make !ncap '\000' in
    Bytes.blit data 0 nd 0 cur;
    nd
  end

let grow_objs (d : ds) nobjs =
  let cur = Array.length d.objs in
  if nobjs > cur then begin
    let ncap = max nobjs (max 16 (2 * cur)) in
    let no = Array.make ncap 0 in
    let na = Array.make ncap 0 in
    Array.blit d.objs 0 no 0 cur;
    Array.blit d.arrivals 0 na 0 cur;
    d.objs <- no;
    d.arrivals <- na
  end

let pow2_ceil x =
  let rec go p = if p >= x then p else go (p * 2) in
  go 8

let align_up x a = (x + a - 1) land lnot (a - 1)

(* Per-structure window depth.  In byte-budget mode the depth is a
   pure function of the structure's (static) object size, so it is as
   deterministic as the fixed depth — smaller objects, deeper runs,
   same bytes in flight. *)
let info_prefetch_depth t (info : Static_info.t) =
  match t.cfg.prefetch_bytes with
  | None -> t.cfg.prefetch_depth
  | Some budget -> max 1 (min 64 (budget / info.Static_info.obj_size))

let ds_init t ~sid =
  if sid < 0 || sid >= Array.length t.infos then fail "ds_init: bad sid %d" sid;
  let info = t.infos.(sid) in
  let handle = Vec.length t.dss + 1 in
  if handle > Addr.max_handle then fail "too many data structures";
  let prof = Profile.buckets t.prof handle in
  spend t t.cfg.cost.ds_init;
  prof.Profile.p_alloc <- prof.Profile.p_alloc + t.cfg.cost.ds_init;
  attr_charge t ~ds:handle Attribution.Bookkeeping t.cfg.cost.ds_init;
  let pf, candidates =
    let depth = info_prefetch_depth t info in
    match t.cfg.prefetch_mode with
    | Pf_none -> (None, [])
    | Pf_stride_only -> (Some (Prefetcher.stride ~depth), [])
    | Pf_per_class -> (Prefetcher.of_class info.prefetch ~depth, [])
    | Pf_adaptive ->
      (* Start from the compiler's class, keep the other classes as
         fallbacks, and allow switching off entirely. *)
      let all =
        Static_info.[ Stride; Jump_pointer; Greedy_recursive ]
      in
      let rest = List.filter (fun c -> c <> info.prefetch) all in
      let order =
        (if info.prefetch = Static_info.No_prefetch then all
         else info.prefetch :: rest)
        @ [ Static_info.No_prefetch ]
      in
      (match order with
       | first :: fallbacks -> (Prefetcher.of_class first ~depth, fallbacks)
       | [] -> (None, []))
  in
  let order_of_candidates =
    match t.cfg.prefetch_mode with
    | Pf_adaptive -> begin
      match pf with
      | Some p ->
        let cur =
          match Prefetcher.kind_name p with
          | "stride" -> Static_info.Stride
          | "jump" -> Static_info.Jump_pointer
          | _ -> Static_info.Greedy_recursive
        in
        cur :: candidates
      | None -> candidates
    end
    | _ -> []
  in
  let d =
    { handle; info; obj_shift = log2_exact info.obj_size;
      pinned = t.pref.(sid); pinned_bytes = 0; resident_bytes = 0;
      data = Bytes.create 0; pool_used = 0; objs = [||]; arrivals = [||];
      pf; pf_candidates = candidates; pf_order = order_of_candidates;
      pf_cooldown = 0;
      epoch_accesses = 0; epoch_issued = 0; epoch_used = 0; epoch_faults = 0;
      pf_switches = 0;
      scale =
        (match List.assoc_opt info.name t.cfg.ds_cost_scales with
         | Some s -> s
         | None -> t.cfg.cost_scale);
      st = Rt_stats.ds_stats t.stats handle;
      prof }
  in
  ignore (Vec.push t.dss d);
  handle

let alloc_unmanaged t ~size =
  let off = align_up t.unmanaged_used 8 in
  t.unmanaged_data <- grow_bytes t.unmanaged_data (off + size);
  t.unmanaged_used <- off + size;
  Addr.unmanaged ~offset:off

let ds_alloc t ~handle ~size =
  spend t t.cfg.cost.ds_alloc;
  let ab = if handle = 0 then t.prof0 else (get_ds t handle).prof in
  ab.Profile.p_alloc <- ab.Profile.p_alloc + t.cfg.cost.ds_alloc;
  attr_charge t ~ds:handle Attribution.Bookkeeping t.cfg.cost.ds_alloc;
  if size <= 0 then fail "dsalloc: non-positive size %d" size;
  if handle = 0 then alloc_unmanaged t ~size
  else begin
    let d = get_ds t handle in
    (* Runtime override of the static hint (paper §4.2): once the
       structure stops fitting in pinned memory, remote its future
       allocations.  Untagged pointers already issued stay local. *)
    if d.pinned && t.pinned_used + size > t.pinned_budget then begin
      d.pinned <- false;
      d.st.demotions <- d.st.demotions + 1
    end;
    if d.pinned then begin
      (* Pinned path: untagged local memory; the custody check will
         fall through on every access. *)
      t.pinned_used <- t.pinned_used + size;
      d.pinned_bytes <- d.pinned_bytes + size;
      d.st.alloc_bytes <- d.st.alloc_bytes + size;
      alloc_unmanaged t ~size
    end
    else begin
      let osz = obj_size d in
      let align = if size >= osz then osz else pow2_ceil size in
      let off = align_up d.pool_used align in
      let finish = off + size in
      d.data <- grow_bytes d.data finish;
      let was = d.pool_used in
      d.pool_used <- finish;
      let first_obj = off lsr d.obj_shift in
      let last_obj = (finish - 1) lsr d.obj_shift in
      grow_objs d (last_obj + 1);
      d.st.alloc_bytes <- d.st.alloc_bytes + (finish - was);
      for o = first_obj to last_obj do
        if d.objs.(o) land b_resident = 0 then begin
          d.objs.(o) <- d.objs.(o) lor b_resident;
          clock_insert t d o
        end
      done;
      Addr.encode ~ds:handle ~offset:off
    end
  end

let free t addr = ignore t; ignore addr (* pool-based lifetime *)

(* ---------- prefetch issue ---------- *)

let scan_object_pointers t (d : ds) o =
  let osz = obj_size d in
  let base = o lsl d.obj_shift in
  let stop = min (base + osz) d.pool_used in
  let acc = ref [] in
  let w = ref base in
  while !w + 8 <= stop do
    let v = Int64.to_int (Bytes.get_int64_le d.data !w) in
    if v > 0 && Addr.is_managed v then begin
      let h = Addr.ds_of v in
      if h >= 1 && h <= Vec.length t.dss then begin
        let td = Vec.get t.dss (h - 1) in
        let off = Addr.offset_of v in
        if off < td.pool_used then
          acc :=
            { Prefetcher.t_ds = h; t_obj = off lsr td.obj_shift; t_len = 1 }
            :: !acc
      end
    end;
    w := !w + 8
  done;
  List.rev !acc

(* Runs are a prefetcher-side compression; the runtime filters and
   marks per object, so expand them before viability checks. *)
let expand_targets targets =
  List.concat_map
    (fun (tg : Prefetcher.target) ->
      if tg.Prefetcher.t_len <= 1 then [ tg ]
      else
        List.init tg.Prefetcher.t_len (fun i ->
            { tg with Prefetcher.t_obj = tg.Prefetcher.t_obj + i; t_len = 1 }))
    targets

(* Would this target actually go on the wire?  Returns its structure
   and object when yes.  The flag array is grown *before* it is read:
   jump/greedy prefetchers can emit indices beyond the grown portion of
   a target structure's arrays. *)
let prefetch_viable t (tg : Prefetcher.target) (d : ds) =
  let td = if tg.Prefetcher.t_ds = 0 then d else get_ds t tg.Prefetcher.t_ds in
  let o = tg.Prefetcher.t_obj in
  (* Throttle: prefetching into a cache that cannot hold the prefetch
     window alongside the working objects only evicts what the demand
     stream is about to use. *)
  let window_fits =
    t.cfg.remotable_bytes / obj_size td
    >= 2 * (info_prefetch_depth t td.info + 1)
  in
  if window_fits && (not td.pinned) && o >= 0 && o lsl td.obj_shift < td.pool_used
  then begin
    grow_objs td (o + 1);
    if td.objs.(o) land (b_resident lor b_inflight) = 0 then Some (td, o)
    else None
  end
  else None

(* [span] is the in-flight object's prefetch span (-1 when the issue
   occasion was unsampled): the eventual settle or timely hit will
   claim it as an [E_satisfy] parent. *)
let mark_prefetched t (d : ds) ~origin_obj (td : ds) o ~completion ~span =
  (match t.spans with
  | Some c when span >= 0 ->
    Span.note_inflight c ~ds:td.handle ~obj:o ~span
  | _ -> ());
  (* Perfect-prefetch what-if: the transfer still occupies the fabric
     exactly as issued (occupancy and counters unchanged), but the
     data is usable immediately, so settles never wait.  Prefetcher
     decisions are access-pattern-driven, so the fetch sequence — and
     therefore the program output — is unchanged. *)
  let completion = if t.cfg.pf_instant then t.clock else completion in
  td.objs.(o) <- td.objs.(o) lor b_inflight lor b_prefetched lor b_resident;
  td.arrivals.(o) <- completion;
  td.st.prefetch_issued <- td.st.prefetch_issued + 1;
  (* Adaptation is judged at the *originating* structure — its
     prefetcher made the call, even for cross-structure targets. *)
  d.epoch_issued <- d.epoch_issued + 1;
  if Sink.tracing t.obs then
    Sink.emit t.obs
      (Event.make ~cycle:t.clock ~ds:td.handle ~obj:o
         (Event.Prefetch_issue
            { origin_ds = d.handle; origin_obj }));
  clock_insert t td o

(* One QP occupancy span per fabric request, on the queue pair's own
   Chrome-trace row: when it picked the transfer up and how long it
   held the link (protocol + serialization; queueing is the gap before
   [t_start]).  [ds] is the structure whose access put it on the wire. *)
let emit_qp_busy t ~ds ~obj (tr : Fabric.transfer) =
  if Sink.tracing t.obs then
    Sink.emit t.obs
      (Event.make ~cycle:tr.Fabric.t_start ~ds ~obj
         (Event.Qp_busy
            { qp = tr.Fabric.t_qp;
              busy = tr.Fabric.t_proto + tr.Fabric.t_ser }))

(* ---------- fault-rate tracking and graceful degradation ---------- *)

let emit_fault_inject t ~ds ~obj kind =
  if Sink.tracing t.obs then
    Sink.emit t.obs
      (Event.make ~cycle:t.clock ~ds ~obj
         (Event.Fault_inject { kind = Fabric.fault_kind_name kind }))

(* Record one transfer-attempt outcome in the sliding window and move
   the degradation level when the observed rate has crossed a
   threshold.  Pure bookkeeping: never touches the clock, so the
   attribution invariants are untouched by construction. *)
let note_fault_outcome t faulted =
  if t.fault_accounting then begin
    let old = Bytes.get_uint8 t.fw t.fw_pos in
    let v = if faulted then 1 else 0 in
    if t.fw_len = fault_window then t.fw_faults <- t.fw_faults - old
    else t.fw_len <- t.fw_len + 1;
    Bytes.set_uint8 t.fw t.fw_pos v;
    t.fw_faults <- t.fw_faults + v;
    t.fw_pos <- (t.fw_pos + 1) mod fault_window;
    if t.degrade_cooldown > 0 then
      t.degrade_cooldown <- t.degrade_cooldown - 1
    else if t.fw_len >= fault_window_min then begin
      let step delta note =
        t.degrade <- t.degrade + delta;
        t.degrade_cooldown <- degrade_cooldown_len;
        note t.stats;
        if Sink.tracing t.obs then
          Sink.emit t.obs
            (Event.make ~cycle:t.clock ~ds:0 ~obj:0
               (Event.Degrade
                  { level = t.degrade;
                    observed_pct = 100 * t.fw_faults / t.fw_len }))
      in
      if t.fw_faults * 8 > t.fw_len && t.degrade < degrade_max then
        step 1 Rt_stats.note_degrade_step
      else if t.fw_faults * 32 < t.fw_len && t.degrade > 0 then
        step (-1) Rt_stats.note_recover_step
    end
  end

(* Effective prefetch fan-out after degradation: each step halves the
   structure's configured depth (its byte-derived depth in byte-budget
   mode, so degradation also operates on the wire budget); at zero the
   runtime is demand-only until the window recovers. *)
let effective_prefetch_limit t (d : ds) =
  if t.degrade = 0 then max_int
  else info_prefetch_depth t d.info asr t.degrade

(* A prefetch transfer's span carries the fabric occupancy split
   (queued/proto/wire on its QP) for the timeline, but none of it is
   CPU stall — the clock never waited — so prefetch/batch spans are
   excluded from the span/ledger reconciliation (Span.cpu_totals). *)
let prefetch_span t (td : ds) o (tr : Fabric.transfer) =
  match t.spans with
  | Some c when Span.sampled c ->
    let id = Span.fresh c in
    Span.add c
      (mk_span t ~id ~kind:Span.Prefetch ~parent:t.cur_span
         ?edge:(if t.cur_span >= 0 then Some Span.E_trigger else None)
         ~ds:td.handle ~obj:o ~issued:t.clock ~start:tr.Fabric.t_start
         ~complete:tr.Fabric.t_complete ~queued:tr.Fabric.t_queued
         ~proto:tr.Fabric.t_proto ~wire:tr.Fabric.t_ser ~qp:tr.Fabric.t_qp
         ~bytes:(obj_size td)
         ?fault:(Option.map Fabric.fault_kind_name tr.Fabric.t_fault) ());
    id
  | _ -> -1

let issue_prefetch t (d : ds) ~origin_obj (tg : Prefetcher.target) =
  match prefetch_viable t tg d with
  | None -> ()
  | Some (td, o) -> (
    match Fabric.fetch_attempt t.fabric ~scale:td.scale ~now:t.clock ~bytes:(obj_size td) with
    | Error _ ->
      (* Prefetches are speculative: a NACKed one is simply dropped —
         the demand path re-fetches the object if it is ever needed.
         The CPU never waited, so no cycles are spent or attributed. *)
      Rt_stats.note_pf_failed t.stats;
      note_fault_outcome t true;
      emit_fault_inject t ~ds:td.handle ~obj:o Fabric.Transient
    | Ok tr ->
      td.st.fetched_bytes <- td.st.fetched_bytes + obj_size td;
      (match tr.Fabric.t_fault with
       | Some k ->
         note_fault_outcome t true;
         emit_fault_inject t ~ds:td.handle ~obj:o k
       | None -> note_fault_outcome t false);
      emit_qp_busy t ~ds:d.handle ~obj:origin_obj tr;
      let span = prefetch_span t td o tr in
      mark_prefetched t d ~origin_obj td o ~completion:tr.Fabric.t_complete
        ~span)

(* Batched issue: everything one prefetcher call produced — expanded
   runs and cross-structure fanout alike — goes to the fabric as a
   single request.  Targets are sorted by (structure, object) so
   adjacent objects serialize back to back, and deduplicated so a
   prefetcher repeating itself cannot double-mark.  A batch of one
   takes the plain fetch path and stays bit-identical to unbatched
   mode. *)
let issue_prefetch_batch t (d : ds) ~origin_obj targets =
  let viable = List.filter_map (fun tg -> prefetch_viable t tg d) targets in
  let viable =
    List.sort_uniq
      (fun ((a : ds), ao) ((b : ds), bo) ->
        let c = compare a.handle b.handle in
        if c <> 0 then c else compare ao bo)
      viable
  in
  match viable with
  | [] -> ()
  | [ (td, o) ] -> (
    match Fabric.fetch_attempt t.fabric ~scale:td.scale ~now:t.clock ~bytes:(obj_size td) with
    | Error _ ->
      Rt_stats.note_pf_failed t.stats;
      note_fault_outcome t true;
      emit_fault_inject t ~ds:td.handle ~obj:o Fabric.Transient
    | Ok tr ->
      td.st.fetched_bytes <- td.st.fetched_bytes + obj_size td;
      (match tr.Fabric.t_fault with
       | Some k ->
         note_fault_outcome t true;
         emit_fault_inject t ~ds:td.handle ~obj:o k
       | None -> note_fault_outcome t false);
      emit_qp_busy t ~ds:d.handle ~obj:origin_obj tr;
      let span = prefetch_span t td o tr in
      mark_prefetched t d ~origin_obj td o ~completion:tr.Fabric.t_complete
        ~span)
  | items -> (
    let sizes = Array.of_list (List.map (fun (td, _) -> obj_size td) items) in
    match Fabric.fetch_many_attempt t.fabric ~scale:d.scale ~now:t.clock ~sizes with
    | Error _ ->
      (* The whole coalesced request was NACKed: every target dropped. *)
      Rt_stats.note_pf_failed t.stats;
      note_fault_outcome t true;
      emit_fault_inject t ~ds:d.handle ~obj:origin_obj Fabric.Transient
    | Ok (tr, completions) ->
      List.iter
        (fun ((td : ds), _) ->
          td.st.fetched_bytes <- td.st.fetched_bytes + obj_size td)
        items;
      (match tr.Fabric.t_fault with
       | Some k ->
         note_fault_outcome t true;
         emit_fault_inject t ~ds:d.handle ~obj:origin_obj k
       | None -> note_fault_outcome t false);
      emit_qp_busy t ~ds:d.handle ~obj:origin_obj tr;
      if Sink.tracing t.obs then
        Sink.emit t.obs
          (Event.make ~cycle:t.clock ~ds:d.handle ~obj:origin_obj
             (Event.Batch_fetch
                { count = Array.length sizes;
                  bytes = Array.fold_left ( + ) 0 sizes }));
      (* One batch span carrying the request's fabric occupancy, then
         one zero-phase member span per object (the batch already
         accounts for the wire; members exist for the causal chain and
         per-object completion times).  Batch id precedes member ids,
         preserving parent < child. *)
      let batch_sp, sc =
        match t.spans with
        | Some c when Span.sampled c ->
          let id = Span.fresh c in
          Span.add c
            (mk_span t ~id ~kind:Span.Batch ~parent:t.cur_span
               ?edge:(if t.cur_span >= 0 then Some Span.E_trigger else None)
               ~ds:d.handle ~obj:origin_obj ~issued:t.clock
               ~start:tr.Fabric.t_start ~complete:tr.Fabric.t_complete
               ~queued:tr.Fabric.t_queued ~proto:tr.Fabric.t_proto
               ~wire:tr.Fabric.t_ser ~qp:tr.Fabric.t_qp
               ~bytes:(Array.fold_left ( + ) 0 sizes)
               ?fault:(Option.map Fabric.fault_kind_name tr.Fabric.t_fault)
               ());
          (id, Some c)
        | _ -> (-1, None)
      in
      List.iteri
        (fun i (td, o) ->
          let span =
            match sc with
            | Some c ->
              let id = Span.fresh c in
              Span.add c
                (mk_span t ~id ~kind:Span.Prefetch ~parent:batch_sp
                   ~edge:Span.E_member ~ds:td.handle ~obj:o ~issued:t.clock
                   ~start:tr.Fabric.t_start ~complete:completions.(i)
                   ~qp:tr.Fabric.t_qp ~bytes:(obj_size td) ());
              id
            | None -> -1
          in
          mark_prefetched t d ~origin_obj td o ~completion:completions.(i)
            ~span)
        items)

let epoch_len = 1024
let epoch_min_issued = 64
let epoch_min_accuracy = 0.25
let epoch_min_signal = 32     (* misses+uses needed to judge coverage *)
let epoch_min_coverage = 0.25
let reexplore_cooldown = 4 (* epochs spent off before retrying *)

let emit_policy_switch t (d : ds) ~from_pf =
  if Sink.tracing t.obs then
    Sink.emit t.obs
      (Event.make ~cycle:t.clock ~ds:d.handle ~obj:0
         (Event.Policy_switch { from_pf; to_pf = pf_name d }))

(* Adaptive mode (paper: "standard prefetching metrics, such as
   accuracy and coverage, are used to evaluate the effectiveness of
   each prefetching policy"): at each epoch boundary, drop a prefetcher
   that is either inaccurate (issues a lot, little of it used in time)
   or has poor coverage (misses abound while it stays silent or late),
   and move to the next candidate.  When every candidate has failed,
   turn prefetching off for a cool-down and then re-explore — access
   patterns change between phases (a structure built in random order
   may still be chased linearly later), so a verdict is never final. *)
let adapt_prefetcher t (d : ds) =
  d.epoch_accesses <- d.epoch_accesses + 1;
  if
    t.cfg.prefetch_mode = Pf_adaptive
    && d.epoch_accesses >= epoch_len
  then begin
    if Sink.tracing t.obs then
      Sink.emit t.obs
        (Event.make ~cycle:t.clock ~ds:d.handle ~obj:0 Event.Epoch_mark);
    (match d.pf with
     | None ->
       if d.pf_cooldown > 0 then begin
         d.pf_cooldown <- d.pf_cooldown - 1;
         if d.pf_cooldown = 0 then begin
           match d.pf_order with
           | first :: rest ->
             d.pf <- Prefetcher.of_class first
                       ~depth:(info_prefetch_depth t d.info);
             d.pf_candidates <- rest;
             d.pf_switches <- d.pf_switches + 1;
             emit_policy_switch t d ~from_pf:"off"
           | [] -> ()
         end
       end
     | Some _ ->
       let accuracy =
         if d.epoch_issued = 0 then 1.0
         else float_of_int d.epoch_used /. float_of_int d.epoch_issued
       in
       let signal = d.epoch_faults + d.epoch_used in
       let coverage =
         if signal = 0 then 1.0
         else float_of_int d.epoch_used /. float_of_int signal
       in
       let inaccurate =
         d.epoch_issued >= epoch_min_issued && accuracy < epoch_min_accuracy
       in
       let uncovering =
         signal >= epoch_min_signal && coverage < epoch_min_coverage
       in
       if inaccurate || uncovering then begin
         let from_pf = pf_name d in
         d.pf_switches <- d.pf_switches + 1;
         (match d.pf_candidates with
          | [] ->
            d.pf <- None;
            d.pf_cooldown <- reexplore_cooldown
          | next :: rest ->
            d.pf <- Prefetcher.of_class next
                      ~depth:(info_prefetch_depth t d.info);
            d.pf_candidates <- rest);
         emit_policy_switch t d ~from_pf
       end);
    d.epoch_accesses <- 0;
    d.epoch_issued <- 0;
    d.epoch_used <- 0;
    d.epoch_faults <- 0
  end

let run_prefetcher t (d : ds) ~obj ~missed =
  (match d.pf with
   | None -> ()
   | Some pf ->
     let targets =
       Prefetcher.on_access pf ~obj ~missed ~scan:(fun () ->
           scan_object_pointers t d obj)
     in
     let targets = expand_targets targets in
     (* Graceful degradation: under a faulty fabric each degradation
        step halves the prefetch fan-out per access, down to
        demand-only at the floor — fewer speculative transfers on a
        link that is failing them.  Recovery re-widens the window. *)
     let targets =
       if t.fault_accounting && t.degrade > 0 then begin
         let limit = effective_prefetch_limit t d in
         let n = List.length targets in
         if n > limit then begin
           Rt_stats.note_pf_suppressed t.stats (n - limit);
           List.filteri (fun i _ -> i < limit) targets
         end
         else targets
       end
       else targets
     in
     if t.cfg.batching then issue_prefetch_batch t d ~origin_obj:obj targets
     else List.iter (issue_prefetch t d ~origin_obj:obj) targets);
  if t.cfg.prefetch_mode = Pf_adaptive then adapt_prefetcher t d

(* ---------- the guard (cards_deref) ---------- *)

let locate t addr =
  let h = Addr.ds_of addr in
  let d = get_ds t h in
  let off = Addr.offset_of addr in
  if off >= d.pool_used then
    fail "wild pointer: ds %d offset %d beyond pool (%d bytes)" h off d.pool_used;
  (d, off lsr d.obj_shift)

(* Wait for an in-flight object to land; returns true when the data
   was already there (the prefetch was timely). *)
let settle_inflight t (d : ds) o =
  let st = d.objs.(o) in
  if st land b_inflight <> 0 then begin
    let wait = d.arrivals.(o) - t.clock in
    d.objs.(o) <- st land lnot b_inflight;
    if wait > 0 then begin
      let start = t.clock in
      spend t wait;
      d.prof.Profile.p_pf_stall <- d.prof.Profile.p_pf_stall + wait;
      attr_charge t ~ds:d.handle Attribution.Pf_wait wait;
      Profile.record_latency d.prof wait;
      d.st.prefetch_late <- d.st.prefetch_late + 1;
      if Sink.tracing t.obs then
        Sink.emit t.obs
          (Event.make ~cycle:start ~ds:d.handle ~obj:o
             (Event.Prefetch_late { wait }));
      (* The late-settle span owns the whole Pf_wait charge and claims
         the in-flight prefetch span as its [E_satisfy] parent. *)
      (match t.spans with
      | Some c when Span.sampled c ->
        let parent = Span.take_inflight c ~ds:d.handle ~obj:o in
        let id = Span.fresh c in
        Span.add c
          (mk_span t ~id ~kind:Span.Pf_settle ~parent
             ?edge:(if parent >= 0 then Some Span.E_satisfy else None)
             ~ds:d.handle ~obj:o ~issued:start ~start ~complete:t.clock
             ~pf_wait:wait ~bytes:(obj_size d) ());
        t.cur_span <- id
      | _ -> ());
      false
    end
    else true
  end
  else true

(* [span_parent >= 0] names the trap span whose handler issued this
   fetch (the clean-fault path); the completion span then carries an
   [E_trap] edge. *)
let demand_fetch ?(span_parent = -1) t (d : ds) o =
  let start = t.clock in
  let osz = obj_size d in
  (* One sampling decision covers the whole occasion — the completion
     span and every retry child — so chains are never half-recorded.
     The root id is allocated up front: retry spans complete (and are
     added) before the fetch they delayed, but must point forward at
     it, and parent < child keeps the edge relation acyclic. *)
  let sc =
    match t.spans with Some c when Span.sampled c -> Some c | _ -> None
  in
  let root = match sc with Some c -> Span.fresh c | None -> -1 in
  let att_start = ref start in
  let att_retry = ref 0 in
  let att_fault = ref None in
  let escalated = ref false in
  (* Cycles burned off the happy path — NACK turnarounds, abandoned
     late completions, backoff waits — are real CPU stall and land in
     their own profiler bucket and ledger cause, so the exactness
     invariants keep holding under any fault rate. *)
  let retry_spend c =
    if c > 0 then begin
      spend t c;
      d.prof.Profile.p_retry <- d.prof.Profile.p_retry + c;
      attr_charge t ~ds:d.handle Attribution.Retry c;
      att_retry := !att_retry + c
    end
  in
  (* Close one failed attempt as a Retry span: every cycle
     [retry_spend] charged since the previous flush, which is exactly
     the ledger's Retry charges — the reconciliation is per-cycle. *)
  let flush_retry () =
    (match sc with
    | Some c when !att_retry > 0 ->
      let id = Span.fresh c in
      Span.add c
        (mk_span t ~id ~kind:Span.Retry ~parent:root ~edge:Span.E_retry
           ~ds:d.handle ~obj:o ~issued:!att_start ~start:!att_start
           ~complete:t.clock ~retry:!att_retry ~bytes:osz ?fault:!att_fault
           ())
    | _ -> ());
    att_retry := 0;
    att_fault := None;
    att_start := t.clock
  in
  (* The attempt that delivered the data: its queued + proto + ser
     (+ mapping) decomposition accounts for this clock advance exactly,
     as in the fault-free path. *)
  let finish (tr : Fabric.transfer) =
    let anow = t.clock in
    t.clock <- tr.Fabric.t_complete + t.cfg.cost.deref_map;
    let attempt_stall = t.clock - anow in
    let queued = tr.Fabric.t_queued in
    d.prof.Profile.p_queue <- d.prof.Profile.p_queue + queued;
    d.prof.Profile.p_demand <- d.prof.Profile.p_demand + (attempt_stall - queued);
    (* The root-cause split of the same stall: queued + proto + ser
       account for the fabric's [t_complete - anow]; address-to-object
       mapping rides with the protocol overhead. *)
    attr_charge t ~ds:d.handle (Attribution.Queue tr.Fabric.t_qp) queued;
    attr_charge t ~ds:d.handle Attribution.Proto
      (tr.Fabric.t_proto + t.cfg.cost.deref_map);
    attr_charge t ~ds:d.handle Attribution.Wire tr.Fabric.t_ser;
    (* Latency is end-to-end: failed attempts and backoffs included. *)
    let stall = t.clock - start in
    Profile.record_latency d.prof stall;
    d.objs.(o) <- d.objs.(o) lor b_resident;
    d.st.remote_faults <- d.st.remote_faults + 1;
    d.epoch_faults <- d.epoch_faults + 1;
    if Sink.tracing t.obs then
      Sink.emit t.obs
        (Event.make ~cycle:start ~ds:d.handle ~obj:o
           (Event.Remote_fault { queued; stall }));
    emit_qp_busy t ~ds:d.handle ~obj:o tr;
    (* The completion span mirrors the three ledger charges above
       field for field: queued -> Queue t_qp, proto + mapping ->
       Proto, ser -> Wire. *)
    (match sc with
    | Some c ->
      Span.add c
        (mk_span t ~id:root
           ~kind:(if !escalated then Span.Escalated else Span.Demand)
           ~parent:span_parent
           ?edge:(if span_parent >= 0 then Some Span.E_trap else None)
           ~ds:d.handle ~obj:o ~issued:start ~start:tr.Fabric.t_start
           ~complete:t.clock ~queued
           ~proto:(tr.Fabric.t_proto + t.cfg.cost.deref_map)
           ~wire:tr.Fabric.t_ser ~qp:tr.Fabric.t_qp ~bytes:osz
           ?fault:(Option.map Fabric.fault_kind_name tr.Fabric.t_fault) ());
      t.cur_span <- root
    | None -> ());
    clock_insert t d o
  in
  let rec attempt n =
    match Fabric.fetch_attempt t.fabric ~scale:d.scale ~now:t.clock ~bytes:osz with
    | Error f ->
      (* The CPU waited for the NACK: queueing + protocol turnaround. *)
      retry_spend (f.Fabric.f_fail - t.clock);
      if sc <> None then att_fault := Some "transient";
      note_fault_outcome t true;
      emit_fault_inject t ~ds:d.handle ~obj:o Fabric.Transient;
      backoff n
    | Ok tr -> (
      (* The fabric counted this transfer's bytes the moment it
         completed [Ok] — even a late completion we abandon below
         still crossed the wire — so the per-structure mirror bumps
         here, not in [finish]. *)
      d.st.fetched_bytes <- d.st.fetched_bytes + osz;
      match tr.Fabric.t_fault with
      | Some Fabric.Late
        when n < t.cfg.retry_max
             && tr.Fabric.t_complete - t.clock > t.cfg.fetch_timeout_cycles ->
        (* The congested completion blew the per-fetch budget: give up
           on it after [fetch_timeout_cycles] and re-issue.  Only
           late-faulted attempts can time out — legitimate queueing
           never trips this, so a healthy loaded fabric cannot start a
           retry storm. *)
        note_fault_outcome t true;
        Rt_stats.note_timeout t.stats;
        emit_fault_inject t ~ds:d.handle ~obj:o Fabric.Late;
        if Sink.tracing t.obs then
          Sink.emit t.obs
            (Event.make ~cycle:t.clock ~ds:d.handle ~obj:o
               (Event.Fetch_timeout { budget = t.cfg.fetch_timeout_cycles }));
        retry_spend t.cfg.fetch_timeout_cycles;
        if sc <> None then att_fault := Some "late";
        backoff n
      | fault ->
        (match fault with
         | Some k ->
           note_fault_outcome t true;
           emit_fault_inject t ~ds:d.handle ~obj:o k
         | None -> note_fault_outcome t false);
        finish tr)
  and backoff n =
    if n >= t.cfg.retry_max then begin
      (* Retries exhausted: the reliable channel cannot fault, so
         forward progress is guaranteed at any fault rate. *)
      Rt_stats.note_escalation t.stats;
      flush_retry ();
      escalated := true;
      d.st.fetched_bytes <- d.st.fetched_bytes + osz;
      finish (Fabric.fetch_reliable t.fabric ~scale:d.scale ~now:t.clock ~bytes:osz)
    end
    else begin
      let wait = t.cfg.retry_backoff_cycles lsl min n 6 in
      Rt_stats.note_retry t.stats;
      if Sink.tracing t.obs then
        Sink.emit t.obs
          (Event.make ~cycle:t.clock ~ds:d.handle ~obj:o
             (Event.Retry_backoff { attempt = n + 1; wait }));
      retry_spend wait;
      flush_retry ();
      attempt (n + 1)
    end
  in
  attempt 0;
  if !escalated then
    maybe_postmortem t ~reason:"demand fetch escalated to the reliable channel"

let note_prefetch_hit t (d : ds) o ~timely =
  let st = d.objs.(o) in
  if st land b_prefetched <> 0 then begin
    d.objs.(o) <- st land lnot b_prefetched;
    d.st.prefetch_used <- d.st.prefetch_used + 1;
    (* Adaptation only credits *timely* prefetches: a prediction that
       arrives after the access wanted it hid no latency, however
       accurate it was (greedy one-hop lookahead on a chase is the
       textbook case). *)
    if timely then begin
      d.epoch_used <- d.epoch_used + 1;
      (* Informational bucket: the demand stall this prefetch avoided
         (uncontended fetch + mapping) — what the access would have
         cost as a fault.  Not part of the wall-clock identity. *)
      d.prof.Profile.p_hidden <-
        d.prof.Profile.p_hidden
        + Fabric.nominal_fetch_cycles t.fabric ~bytes:(obj_size d)
        + t.cfg.cost.deref_map;
      (* Zero-stall use: recorded purely for the causal chain (the
         prefetch paid off).  A *late* use settles above instead and
         its mapping was already consumed there. *)
      match t.spans with
      | Some c when Span.sampled c ->
        let parent = Span.take_inflight c ~ds:d.handle ~obj:o in
        let id = Span.fresh c in
        Span.add c
          (mk_span t ~id ~kind:Span.Pf_hit ~parent
             ?edge:(if parent >= 0 then Some Span.E_satisfy else None)
             ~ds:d.handle ~obj:o ~issued:t.clock ~start:t.clock
             ~complete:t.clock ~bytes:(obj_size d) ());
        t.cur_span <- id
      | _ -> ()
    end;
    if Sink.tracing t.obs then
      Sink.emit t.obs
        (Event.make ~cycle:t.clock ~ds:d.handle ~obj:o
           (Event.Prefetch_use { timely }))
  end

let guard t ~write addr =
  if not (Addr.is_managed addr) then begin
    spend t t.cfg.cost.guard_unmanaged;
    t.prof0.Profile.p_guard <- t.prof0.Profile.p_guard + t.cfg.cost.guard_unmanaged;
    attr_charge t ~ds:0 Attribution.Guard_exec t.cfg.cost.guard_unmanaged
  end
  else if
    (* Guards may be hoisted to loop preheaders and thus run
       speculatively (e.g. ahead of a zero-trip loop) with an address
       the loop would never dereference.  A managed address beyond its
       pool is then benign: pay the custody check and fall through.
       Real accesses still fault on wild pointers (see [resolve]). *)
    (let h = addr lsr Addr.offset_bits in
     h > Vec.length t.dss
     || Addr.offset_of addr >= (Vec.get t.dss (h - 1)).pool_used)
  then begin
    spend t t.cfg.cost.guard_unmanaged;
    t.prof0.Profile.p_guard <- t.prof0.Profile.p_guard + t.cfg.cost.guard_unmanaged;
    attr_charge t ~ds:0 Attribution.Guard_exec t.cfg.cost.guard_unmanaged
  end
  else begin
    let d, o = locate t addr in
    d.st.guards <- d.st.guards + 1;
    (* Each access starts a fresh causal context: [cur_span] is set by
       the demand/settle/hit span this access produces (if any) and
       read by [run_prefetcher] as the E_trigger parent below. *)
    (match t.spans with Some _ -> t.cur_span <- -1 | None -> ());
    let local_cost =
      if write then t.cfg.cost.guard_local_write else t.cfg.cost.guard_local_read
    in
    let st = d.objs.(o) in
    let missed =
      if st land b_resident <> 0 then begin
        let timely = settle_inflight t d o in
        note_prefetch_hit t d o ~timely;
        spend t local_cost;
        d.prof.Profile.p_guard <- d.prof.Profile.p_guard + local_cost;
        attr_charge t ~ds:d.handle Attribution.Guard_exec local_cost;
        d.st.guard_hits <- d.st.guard_hits + 1;
        if Sink.tracing t.obs then
          Sink.emit t.obs
            (Event.make ~cycle:t.clock ~ds:d.handle ~obj:o Event.Guard_hit);
        false
      end
      else begin
        spend t local_cost;
        d.prof.Profile.p_guard <- d.prof.Profile.p_guard + local_cost;
        attr_charge t ~ds:d.handle Attribution.Guard_exec local_cost;
        if Sink.tracing t.obs then
          Sink.emit t.obs
            (Event.make ~cycle:t.clock ~ds:d.handle ~obj:o Event.Guard_miss);
        demand_fetch t d o;
        true
      end
    in
    let bits = if write then b_ref lor b_dirty else b_ref in
    d.objs.(o) <- d.objs.(o) lor bits;
    run_prefetcher t d ~obj:o ~missed;
    maybe_sample t
  end

let loop_check t addrs =
  (* A base pointer is clean-runnable iff it is untagged: untagged
     allocations are pinned local memory that can never be evicted.
     A tagged base could lose residency mid-loop, so it forces the
     instrumented version. *)
  let ok = ref true in
  List.iter
    (fun addr ->
      spend t t.cfg.cost.loop_check_per_ds;
      t.prof0.Profile.p_alloc <-
        t.prof0.Profile.p_alloc + t.cfg.cost.loop_check_per_ds;
      attr_charge t ~ds:0 Attribution.Bookkeeping t.cfg.cost.loop_check_per_ds;
      if Addr.is_managed addr then ok := false)
    addrs;
  if Sink.tracing t.obs then
    Sink.emit t.obs
      (Event.make ~cycle:t.clock ~ds:0 ~obj:0 (Event.Loop_version { clean = !ok }));
  !ok

(* ---------- data accesses ---------- *)

(* Unguarded fallback: trap, then behave like a demand fault. *)
let clean_fault t (d : ds) o ~write =
  let start = t.clock in
  let c =
    segv_penalty
    + (if write then t.cfg.cost.guard_local_write
       else t.cfg.cost.guard_local_read)
  in
  spend t c;
  d.prof.Profile.p_trap <- d.prof.Profile.p_trap + c;
  attr_charge t ~ds:d.handle Attribution.Trap c;
  (* The trap span owns exactly the Trap charge above; the nested
     demand fetch (if any) becomes its child via [E_trap], with the
     trap id allocated first so parent < child holds. *)
  let trap_sp =
    match t.spans with
    | Some col when Span.sampled col ->
      let id = Span.fresh col in
      Span.add col
        (mk_span t ~id ~kind:Span.Trap ~parent:(-1) ~ds:d.handle ~obj:o
           ~issued:start ~start ~complete:t.clock ~trap:c ~bytes:(obj_size d)
           ());
      id
    | _ -> -1
  in
  ignore (settle_inflight t d o);
  if d.objs.(o) land b_resident = 0 then
    demand_fetch ~span_parent:trap_sp t d o;
  d.st.clean_faults <- d.st.clean_faults + 1;
  (* The span covers trap + settle + fetch; a nested [Remote_fault]
     span appears inside it when the object had to be demand-fetched. *)
  if Sink.tracing t.obs then
    Sink.emit t.obs
      (Event.make ~cycle:start ~ds:d.handle ~obj:o
         (Event.Clean_fault { stall = t.clock - start }))

let resolve t addr ~write =
  if Addr.is_managed addr then begin
    let d, o = locate t addr in
    d.st.plain_accesses <- d.st.plain_accesses + 1;
    let st = d.objs.(o) in
    if st land b_resident = 0 then clean_fault t d o ~write
    else if st land b_inflight <> 0 then begin
      let timely = settle_inflight t d o in
      note_prefetch_hit t d o ~timely
    end;
    charge t t.cfg.cost.mem_access;
    let bits = if write then b_ref lor b_dirty else b_ref in
    d.objs.(o) <- d.objs.(o) lor bits;
    maybe_sample t;
    (d.data, Addr.offset_of addr)
  end
  else begin
    let off = Addr.offset_of addr in
    if off + 8 > t.unmanaged_used then
      fail "wild unmanaged pointer: offset %d (segment %d bytes)" off
        t.unmanaged_used;
    Rt_stats.(
      let u = unmanaged_bucket t.stats in
      u.plain_accesses <- u.plain_accesses + 1);
    charge t t.cfg.cost.mem_access;
    maybe_sample t;
    (t.unmanaged_data, off)
  end

let read_i64 t addr =
  let data, off = resolve t addr ~write:false in
  Int64.to_int (Bytes.get_int64_le data off)

let write_i64 t addr v =
  let data, off = resolve t addr ~write:true in
  Bytes.set_int64_le data off (Int64.of_int v)

let read_f64 t addr =
  let data, off = resolve t addr ~write:false in
  Int64.float_of_bits (Bytes.get_int64_le data off)

let write_f64 t addr v =
  let data, off = resolve t addr ~write:true in
  Bytes.set_int64_le data off (Int64.bits_of_float v)

(* ---------- the decoded engine's access fast path ---------- *)

(* The CaRDS idea applied to the simulator itself: [resolve] re-does
   per access work whose answer cannot change — the handle -> structure
   mapping.  The fast path answers it from a small direct-mapped
   translation cache and inlines the one dynamic decision that remains,
   the residency check; a resident local hit then costs one probe, one
   flag check and the same accounting as [resolve]'s happy case.
   Anything else — non-resident, in flight, beyond the pool, a wild
   unmanaged offset — falls back to the canonical path *before touching
   any counter or the clock*, so cycles, stats and attribution are
   bit-identical by construction whichever path an access takes.

   Cache safety: handles are dense and stable, structure records are
   created once and never replaced, and a pool only grows — so a cached
   entry can be missing but never stale, and residency/in-flight state
   is read fresh from [objs] on every access. *)

let tc_find t h =
  let slot = h land tc_mask in
  match t.tc.(slot) with
  | Some d when d.handle = h -> Some d
  | _ ->
    if h >= 1 && h <= Vec.length t.dss then begin
      let d = Vec.get t.dss (h - 1) in
      t.tc.(slot) <- Some d;
      Some d
    end
    else None

(* Returns the backing bytes and offset for a local hit; [None] means
   "take the slow path", with no observable action performed yet. *)
let resolve_fast t addr ~write =
  if Addr.is_managed addr then
    match tc_find t (Addr.ds_of addr) with
    | None -> None
    | Some d ->
      let off = Addr.offset_of addr in
      if off >= d.pool_used then None
      else begin
        let o = off lsr d.obj_shift in
        let st = d.objs.(o) in
        if st land (b_resident lor b_inflight) = b_resident then begin
          d.st.plain_accesses <- d.st.plain_accesses + 1;
          charge t t.cfg.cost.mem_access;
          d.objs.(o) <-
            st lor (if write then b_ref lor b_dirty else b_ref);
          maybe_sample t;
          Some (d.data, off)
        end
        else None
      end
  else begin
    let off = Addr.offset_of addr in
    if off + 8 > t.unmanaged_used then None
    else begin
      Rt_stats.(
        let u = unmanaged_bucket t.stats in
        u.plain_accesses <- u.plain_accesses + 1);
      charge t t.cfg.cost.mem_access;
      maybe_sample t;
      Some (t.unmanaged_data, off)
    end
  end

let read_i64_fast t addr =
  match resolve_fast t addr ~write:false with
  | Some (data, off) -> Int64.to_int (Bytes.get_int64_le data off)
  | None -> read_i64 t addr

let write_i64_fast t addr v =
  match resolve_fast t addr ~write:true with
  | Some (data, off) -> Bytes.set_int64_le data off (Int64.of_int v)
  | None -> write_i64 t addr v

let read_f64_fast t addr =
  match resolve_fast t addr ~write:false with
  | Some (data, off) -> Int64.float_of_bits (Bytes.get_int64_le data off)
  | None -> read_f64 t addr

let write_f64_fast t addr v =
  match resolve_fast t addr ~write:true with
  | Some (data, off) -> Bytes.set_int64_le data off (Int64.bits_of_float v)
  | None -> write_f64 t addr v

(* ---------- introspection ---------- *)

type ds_report = {
  r_handle : int;
  r_sid : int;
  r_name : string;
  r_pinned : bool;
  r_bytes : int;
  r_objects : int;
  r_resident_bytes : int;    (* pinned + currently cache-resident *)
  r_prefetcher : string;     (* currently active prefetcher *)
  r_pf_calls : int;          (* accesses the active prefetcher observed *)
  r_pf_targets : int;        (* candidates it emitted (pre-filtering) *)
  r_pf_switches : int;       (* adaptive-mode policy switches *)
  r_stats : Rt_stats.ds;
}

let report t =
  List.map
    (fun (d : ds) ->
      { r_handle = d.handle;
        r_sid = d.info.sid;
        r_name = d.info.name;
        r_pinned = d.pinned;
        r_bytes = d.pool_used + d.pinned_bytes;
        r_objects = (d.pool_used + obj_size d - 1) lsr d.obj_shift;
        r_resident_bytes = d.pinned_bytes + d.resident_bytes;
        r_prefetcher = pf_name d;
        r_pf_calls = (match d.pf with Some p -> Prefetcher.calls p | None -> 0);
        r_pf_targets =
          (match d.pf with Some p -> Prefetcher.targets_emitted p | None -> 0);
        r_pf_switches = d.pf_switches;
        r_stats = d.st })
    (Vec.to_list t.dss)

let stats t = t.stats
let fabric_stats t = Fabric.stats t.fabric

let set_fabric_port t p = Fabric.set_port t.fabric p
let degrade_level t = t.degrade
let set_fault_rate t rate = Fabric.set_fault_rate t.fabric rate
let pinned_bytes t = t.pinned_used
let remotable_resident_bytes t = t.remotable_used
let pinned_preference t = Array.copy t.pref
let sink t = t.obs
let profile t = t.prof
let attribution t = t.attr
