(** Runtime event counters, per data structure and aggregated.

    CaRDS "monitors cache hits and misses for each memory object,
    leveraging these statistics on a per-data structure basis" (§4.2);
    the benchmark harness reads them to report guard counts, fault
    counts, prefetch accuracy and coverage. *)

type ds = {
  mutable guards : int;          (** guard executions *)
  mutable guard_hits : int;      (** guards finding the object resident *)
  mutable remote_faults : int;   (** demand fetches *)
  mutable clean_faults : int;    (** fallback faults on unguarded paths *)
  mutable plain_accesses : int;  (** data accesses (loads/stores) *)
  mutable prefetch_issued : int;
  mutable prefetch_used : int;   (** prefetched object later accessed *)
  mutable prefetch_late : int;   (** access arrived before the data did *)
  mutable evictions : int;
  mutable alloc_bytes : int;
  mutable demotions : int;       (** runtime overrides of a pinned hint *)
  mutable fetched_bytes : int;
      (** bytes this structure pulled over the fabric — demand
          fetches, prefetches and retries alike.  Summed over every
          handle it equals {!Cards_net.Fabric.stats.fetched_bytes}
          exactly (the fabric counts a transfer's bytes whenever it
          completes [Ok], including late completions the runtime
          abandoned; the runtime mirrors that rule per handle). *)
}

val make_ds : unit -> ds

type t

val create : unit -> t

val ds_stats : t -> int -> ds
(** Stats bucket for a runtime handle (auto-created). *)

val total : t -> ds
(** Sum over all handles plus the unmanaged bucket. *)

val unmanaged_bucket : t -> ds

val prefetch_accuracy : ds -> float option
(** used / issued; [None] when nothing was issued (no data — render
    as ["-"], see {!Cards_util.Table.fmt_ratio_opt}). *)

val prefetch_coverage : ds -> float
(** Fraction of would-be misses that prefetching absorbed:
    used / (used + remote_faults). *)

val note_over_budget : t -> unit
(** Record an occupancy overflow: eviction gave up (everything left in
    the ring was in flight or exhausted its spin bound) with the
    remotable cache still above budget. *)

val over_budget : t -> int
(** Times eviction left the cache over budget — transient overshoot
    from deep in-flight prefetch windows, surfaced instead of silently
    ignored. *)

(** {2 Resilience counters}

    Runtime-wide (not per structure): retry/degradation policy is a
    global response to fabric health.  All stay zero when fault
    injection is off. *)

val note_retry : t -> unit
val retries : t -> int
(** Demand-fetch attempts re-issued after a transient failure or a
    timeout. *)

val note_timeout : t -> unit
val timeouts : t -> int
(** Late completions that blew the per-fetch timeout budget. *)

val note_escalation : t -> unit
val escalations : t -> int
(** Fetches that exhausted their retries and fell back to the
    reliable channel ({!Cards_net.Fabric.fetch_reliable}). *)

val note_pf_failed : t -> unit
val pf_failed : t -> int
(** Prefetch requests NACKed by the fabric and dropped (prefetches
    are speculative; the demand path re-fetches if needed). *)

val note_pf_suppressed : t -> int -> unit
val pf_suppressed : t -> int
(** Prefetch targets not issued because graceful degradation narrowed
    the window. *)

val note_degrade_step : t -> unit
val degrade_steps : t -> int
(** Times the observed fault rate pushed the prefetch window one step
    narrower. *)

val note_recover_step : t -> unit
val recover_steps : t -> int
(** Times a recovered fabric let the window re-widen one step. *)

val handles : t -> int list
