(** The CaRDS far-memory runtime (paper §4.2): a modified-AIFM-style
    object runtime managing far memory at data-structure granularity.

    Local memory is split into {e pinned} memory (data structures the
    policy localized; never evicted) and {e remotable} memory (a
    CLOCK-managed cache of remote objects).  Every pointer carries its
    data-structure handle in the non-canonical bits ({!Addr});
    [cards_deref] (here {!guard}) maps an address to its object, checks
    residency, and fetches over the {!Cards_net.Fabric} on a miss
    (paper Listing 4).

    Time is a shared cycle counter: the interpreter charges instruction
    costs, the runtime charges guard/fault/network costs, and the
    fabric adds queueing — the sum is the simulated execution time that
    every figure reports.

    Safety fallback: an {e unguarded} access that reaches a non-resident
    object (possible after guard hoisting/elision or in clean loop
    versions, §4.1) takes a fault-handler path: full fetch cost plus a
    trap penalty.  This mirrors the SIGSEGV fallback real far-memory
    runtimes keep and makes every transformation safe by construction. *)

type prefetch_mode =
  | Pf_none
  | Pf_stride_only  (** TrackFM: induction-variable streams only *)
  | Pf_per_class    (** CaRDS: per-structure class from the compiler *)
  | Pf_adaptive
      (** CaRDS with dynamic policy selection (§4.2): start from the
          compiler's class, monitor per-epoch accuracy, and fall back
          through the other prefetchers — ultimately to none — when a
          policy's accuracy stays poor. *)

type config = {
  policy : Policy.t;
  k : float;                    (** fraction of structures to localize *)
  local_bytes : int;            (** total local memory *)
  remotable_bytes : int;        (** reserved for the remotable cache *)
  cost : Cost.t;
  fabric_config : Cards_net.Fabric.config;
  prefetch_mode : prefetch_mode;
  prefetch_depth : int;
  prefetch_bytes : int option;
      (** layout-aware window sizing: when set, each structure's depth
          is [prefetch_bytes / obj_size] (clamped to [1, 64]) instead
          of the fixed [prefetch_depth], so a factorized hot pool with
          smaller objects earns a proportionally deeper run for the
          same bytes in flight.  The degradation controller halves the
          byte-derived depth per step, i.e. it budgets in bytes too.
          [None] (default) is bit-identical to the fixed depth. *)
  batching : bool;
      (** coalesce each prefetcher call's targets into one fabric
          request ({!Cards_net.Fabric.fetch_many}) and eviction-burst
          writebacks into posted batches; [false] issues per object *)
  retry_max : int;
      (** demand-fetch retries before escalating to the fabric's
          reliable channel (only reachable under fault injection) *)
  retry_backoff_cycles : int;
      (** backoff before the first retry; doubles per retry (capped at
          64x) *)
  fetch_timeout_cycles : int;
      (** per-attempt budget: a {e late-faulted} completion exceeding
          it is abandoned and the fetch re-issued.  Legitimate
          queueing never trips it, so a healthy loaded fabric cannot
          start a retry storm. *)
  cost_scale : Cards_net.Fabric.scale;
      (** what-if cost multiplier applied to every inbound fetch
          (default {!Cards_net.Fabric.unit_scale}, which is
          bit-identical to no scaling) *)
  ds_cost_scales : (string * Cards_net.Fabric.scale) list;
      (** per-structure overrides of [cost_scale], keyed by static
          name and resolved once at [ds_init]; first match wins.
          Batched prefetches are scaled by the {e originating}
          structure, matching how the what-if predictor scopes batch
          spans. *)
  pf_instant : bool;
      (** perfect-prefetch what-if: prefetched objects become usable
          at issue time (fabric occupancy and all counters unchanged),
          so late-prefetch settles never wait.  Timing-only. *)
  namespace : string;
      (** tenant handle namespace (default [""] = root).  A non-empty
          namespace prefixes every structure name this runtime reports
          (["tenant/name#sid"] from {!ds_name}), keeping per-tenant
          stats and attribution rows collision-free when the serving
          layer ({!Cards_serve.Serve}) aggregates many tenant runtimes
          into one view.  Handles stay runtime-local — a tagged
          pointer can never resolve against another tenant's table —
          so the namespace is an accounting label, never a sharing
          mechanism. *)
}

val default_config : config
(** CaRDS defaults: linear policy, k = 1, 64 MiB local / 8 MiB
    remotable, CaRDS costs, per-class prefetch, depth 4, batching on
    over two inbound queue pairs; 4 retries, 4 Ki-cycle initial
    backoff, 150 K-cycle fetch timeout; no what-if perturbation. *)

val whatif_config : config -> Cards_obs.Whatif.exec -> config option
(** Map an executable what-if scenario onto a perturbed copy of the
    config for deterministic re-execution ([None] when the scenario
    carries no runtime knob).  Every perturbation is timing-only:
    program outputs are bit-identical to the baseline, which the
    whatif bench and the differential tests assert. *)

type t

exception Runtime_error of string
(** Wild pointers, out-of-range handles, pool overflows. *)

val create : ?obs:Cards_obs.Sink.t -> config -> Static_info.t array -> t
(** [obs] (default {!Cards_obs.Sink.null}) receives trace events and
    epoch metric samples.  Observability is read-only with respect to
    simulated time: any sink yields cycle counts bit-identical to a
    run with the null sink. *)

(** {2 Clock} *)

val now : t -> int
val charge : t -> int -> unit
(** Advance the clock (the interpreter charges instruction costs).
    Charged cycles land in the profiler's compute bucket; the
    runtime's own costs are attributed internally so that
    [Cards_obs.Profile.attributed (profile t) = now t] always holds. *)

(** {2 Runtime entry points (called from transformed code)} *)

val ds_init : t -> sid:int -> int
(** Instantiate a data structure from its static descriptor; returns
    the runtime handle that [dsalloc] takes and pointers carry. *)

val ds_alloc : t -> handle:int -> size:int -> int
(** Pool allocation.  [handle = 0] allocates unmanaged memory. *)

val free : t -> int -> unit
(** Pool deallocation is a no-op on individual objects (pool-based
    lifetime); kept for API fidelity and accounting. *)

val guard : t -> write:bool -> int -> unit
(** The [cards_deref] guard: localize the object behind the address. *)

val loop_check : t -> int list -> bool
(** Code-versioning check: true iff every base address' structure is
    currently pinned (fully local, cannot be evicted mid-loop). *)

(** {2 Data accesses (the heap)} *)

val read_i64 : t -> int -> int
val write_i64 : t -> int -> int -> unit
val read_f64 : t -> int -> float
val write_f64 : t -> int -> float -> unit

val read_i64_fast : t -> int -> int
val write_i64_fast : t -> int -> int -> unit
val read_f64_fast : t -> int -> float
val write_f64_fast : t -> int -> float -> unit
(** Accounting-identical fast-path variants used by the pre-decoded
    execution engine.  A resident local access resolves its structure
    through a small direct-mapped handle translation cache and costs
    one probe plus one residency flag check; any other case —
    non-resident, in flight, wild — falls back to the canonical
    functions above before touching any counter, so simulated cycles,
    stats and attribution are bit-identical whichever path is taken. *)

val alloc_unmanaged : t -> size:int -> int
(** Reserve unmanaged storage (globals segment). *)

(** {2 Introspection} *)

type ds_report = {
  r_handle : int;
  r_sid : int;
  r_name : string;
  r_pinned : bool;
  r_bytes : int;
  r_objects : int;
  r_resident_bytes : int; (** pinned bytes + bytes now in the remotable cache *)
  r_prefetcher : string;  (** currently active prefetcher ("off" if none) *)
  r_pf_calls : int;       (** accesses the active prefetcher observed *)
  r_pf_targets : int;     (** candidates it emitted, before filtering *)
  r_pf_switches : int;    (** adaptive-mode policy switches so far *)
  r_stats : Rt_stats.ds;
}

val report : t -> ds_report list

val stats : t -> Rt_stats.t
val fabric_stats : t -> Cards_net.Fabric.stats

val set_fabric_port :
  t -> (Cards_net.Fabric.port_event -> unit) option -> unit
(** Install (or clear) a port observer on this runtime's fabric slice
    ({!Cards_net.Fabric.set_port}).  Pure observation — timing, stats
    and outputs are bit-identical with or without an observer; the
    parallel serving engine uses it to collect per-tenant wire-event
    streams for its virtual-time merge oracle. *)

val degrade_level : t -> int
(** Current graceful-degradation level: 0 = full prefetch width; each
    step halves the effective prefetch fan-out (demand-only at the
    floor).  Driven by the observed fault rate over a sliding window
    of transfer outcomes; always 0 when fault injection is off. *)

val set_fault_rate : t -> float -> unit
(** Override the fabric's live fault rate mid-run (for tests and
    recovery experiments — degrade under a faulty fabric, then drop
    the rate and watch the window re-widen).
    @raise Invalid_argument outside [0, 1]. *)

val pinned_bytes : t -> int
val remotable_resident_bytes : t -> int
val pinned_preference : t -> bool array
val n_ds : t -> int

(** {2 Observability} *)

val sink : t -> Cards_obs.Sink.t
(** The sink passed to {!create} (the interpreter fetches it from
    here to stamp call events). *)

val profile : t -> Cards_obs.Profile.t
(** The always-on cycle-attribution profiler;
    [Cards_obs.Profile.attributed] of it equals {!now}. *)

val attribution : t -> Cards_obs.Attribution.t
(** The always-on stall root-cause ledger:
    [Cards_obs.Attribution.total] of it equals
    [now t - Cards_obs.Profile.compute (profile t)] — every
    non-compute cycle decomposed into protocol / wire / per-QP
    queueing / late-prefetch / retry / guard / trap / bookkeeping,
    keyed by structure and access site. *)

val set_site : t -> fn:string -> block:int -> instr:int -> unit
(** Stamp the current access site (function, basic block, instruction
    index) so subsequent stall charges attribute to it.  The
    interpreter calls this before each runtime-entering instruction;
    direct API users may ignore it and charge to
    [Attribution.unknown_site]. *)

val ds_name : t -> int -> string
(** Static name for a handle (["(unmanaged)"] for handle 0 or unknown)
    — the [names] labeller exporters take.  Prefixed with
    ["namespace/"] when the runtime was configured with a tenant
    namespace. *)

val namespace : t -> string
(** The configured tenant namespace ([""] for the root namespace). *)

val maybe_postmortem : t -> reason:string -> unit
(** Dump the flight recorder's post-mortem through the sink's
    reporter if the sink was created with [~postmortem:true] and the
    one-shot latch is still armed; a no-op otherwise.  The runtime
    fires this itself on a reliable-channel escalation; the
    interpreter fires it when a program traps. *)
