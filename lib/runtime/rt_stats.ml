type ds = {
  mutable guards : int;
  mutable guard_hits : int;
  mutable remote_faults : int;
  mutable clean_faults : int;
  mutable plain_accesses : int;
  mutable prefetch_issued : int;
  mutable prefetch_used : int;
  mutable prefetch_late : int;
  mutable evictions : int;
  mutable alloc_bytes : int;
  mutable demotions : int;
  mutable fetched_bytes : int;
}

let make_ds () =
  { guards = 0; guard_hits = 0; remote_faults = 0; clean_faults = 0;
    plain_accesses = 0; prefetch_issued = 0; prefetch_used = 0;
    prefetch_late = 0; evictions = 0; alloc_bytes = 0; demotions = 0;
    fetched_bytes = 0 }

type t = {
  per_ds : (int, ds) Hashtbl.t;
  unmanaged : ds;
  mutable over_budget : int;
  (* Resilience counters (fault injection): global, not per structure —
     retry/degradation policy is a runtime-wide response to fabric
     health, not a property of any one structure. *)
  mutable retries : int;
  mutable timeouts : int;
  mutable escalations : int;
  mutable pf_failed : int;
  mutable pf_suppressed : int;
  mutable degrade_steps : int;
  mutable recover_steps : int;
}

let create () =
  { per_ds = Hashtbl.create 32; unmanaged = make_ds (); over_budget = 0;
    retries = 0; timeouts = 0; escalations = 0; pf_failed = 0;
    pf_suppressed = 0; degrade_steps = 0; recover_steps = 0 }

let note_over_budget t = t.over_budget <- t.over_budget + 1
let over_budget t = t.over_budget

let note_retry t = t.retries <- t.retries + 1
let retries t = t.retries
let note_timeout t = t.timeouts <- t.timeouts + 1
let timeouts t = t.timeouts
let note_escalation t = t.escalations <- t.escalations + 1
let escalations t = t.escalations
let note_pf_failed t = t.pf_failed <- t.pf_failed + 1
let pf_failed t = t.pf_failed
let note_pf_suppressed t n = t.pf_suppressed <- t.pf_suppressed + n
let pf_suppressed t = t.pf_suppressed
let note_degrade_step t = t.degrade_steps <- t.degrade_steps + 1
let degrade_steps t = t.degrade_steps
let note_recover_step t = t.recover_steps <- t.recover_steps + 1
let recover_steps t = t.recover_steps

let ds_stats t h =
  match Hashtbl.find_opt t.per_ds h with
  | Some d -> d
  | None ->
    let d = make_ds () in
    Hashtbl.replace t.per_ds h d;
    d

let unmanaged_bucket t = t.unmanaged

let add_into acc (d : ds) =
  acc.guards <- acc.guards + d.guards;
  acc.guard_hits <- acc.guard_hits + d.guard_hits;
  acc.remote_faults <- acc.remote_faults + d.remote_faults;
  acc.clean_faults <- acc.clean_faults + d.clean_faults;
  acc.plain_accesses <- acc.plain_accesses + d.plain_accesses;
  acc.prefetch_issued <- acc.prefetch_issued + d.prefetch_issued;
  acc.prefetch_used <- acc.prefetch_used + d.prefetch_used;
  acc.prefetch_late <- acc.prefetch_late + d.prefetch_late;
  acc.evictions <- acc.evictions + d.evictions;
  acc.alloc_bytes <- acc.alloc_bytes + d.alloc_bytes;
  acc.demotions <- acc.demotions + d.demotions;
  acc.fetched_bytes <- acc.fetched_bytes + d.fetched_bytes

let total t =
  let acc = make_ds () in
  Hashtbl.iter (fun _ d -> add_into acc d) t.per_ds;
  add_into acc t.unmanaged;
  acc

let prefetch_accuracy d =
  (* No issues = no data, not a perfect prefetcher: a [None] here keeps
     an idle prefetcher from showing a vacuous 100% in reports and from
     misleading accuracy-driven policy decisions. *)
  if d.prefetch_issued = 0 then None
  else Some (float_of_int d.prefetch_used /. float_of_int d.prefetch_issued)

let prefetch_coverage d =
  let denom = d.prefetch_used + d.remote_faults in
  if denom = 0 then 0.0 else float_of_int d.prefetch_used /. float_of_int denom

let handles t =
  List.sort compare (Hashtbl.fold (fun h _ acc -> h :: acc) t.per_ds [])
