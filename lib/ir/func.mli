(** Functions and basic blocks.

    A function is an array of basic blocks; block 0 is the entry.
    Registers [0 .. arity-1] hold the parameters on entry.  [reg_tys]
    records the static type of every register — the frontend fills it
    in, and the data-structure analysis consults it to know which
    registers carry pointers. *)

type block = {
  bid : int;                  (** index within [blocks]; stable id *)
  instrs : Instr.instr array;
  term : Instr.term;
}

type t = {
  name : string;
  params : (Instr.reg * Types.t) list;  (** in order; regs are 0.. *)
  ret : Types.t;
  reg_tys : Types.t array;    (** type of each virtual register *)
  blocks : block array;
}

val nregs : t -> int
val arity : t -> int
val block : t -> int -> block

val entry : t -> block

val iter_instrs : t -> (int -> int -> Instr.instr -> unit) -> unit
(** [iter_instrs f visit] calls [visit bid idx instr] for every
    instruction in block order. *)

val fold_instrs : t -> ('a -> int -> int -> Instr.instr -> 'a) -> 'a -> 'a

val successors : t -> int -> int list
(** Successor block ids of a block. *)

val predecessors : t -> int list array
(** For each block id, the list of predecessor block ids. *)

val float_regs : t -> bool array
(** Per-register float-ness ([reg_tys] folded to a flat bitmap).
    Decode-time metadata for the interpreters: operand float-ness is
    static, so both execution engines resolve it once per function
    instead of per access. *)

val map_blocks : t -> (block -> block) -> t

val with_reg_tys : t -> Types.t array -> t
