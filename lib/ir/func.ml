type block = {
  bid : int;
  instrs : Instr.instr array;
  term : Instr.term;
}

type t = {
  name : string;
  params : (Instr.reg * Types.t) list;
  ret : Types.t;
  reg_tys : Types.t array;
  blocks : block array;
}

let nregs t = Array.length t.reg_tys
let arity t = List.length t.params

let block t i =
  if i < 0 || i >= Array.length t.blocks then
    invalid_arg (Printf.sprintf "Func.block: no block %d in %s" i t.name);
  t.blocks.(i)

let entry t = block t 0

let iter_instrs t visit =
  Array.iter
    (fun b -> Array.iteri (fun i ins -> visit b.bid i ins) b.instrs)
    t.blocks

let fold_instrs t f init =
  let acc = ref init in
  iter_instrs t (fun bid i ins -> acc := f !acc bid i ins);
  !acc

let successors t i = Instr.term_successors (block t i).term

let predecessors t =
  let n = Array.length t.blocks in
  let preds = Array.make n [] in
  Array.iter
    (fun b ->
      List.iter
        (fun s -> if s >= 0 && s < n then preds.(s) <- b.bid :: preds.(s))
        (Instr.term_successors b.term))
    t.blocks;
  Array.map List.rev preds

let float_regs t =
  Array.map (fun ty -> Types.equal ty Types.F64) t.reg_tys

let map_blocks t f = { t with blocks = Array.map f t.blocks }

let with_reg_tys t reg_tys = { t with reg_tys }
