type t = {
  title : string;
  header : string list;
  mutable rows : string list list; (* reversed *)
}

let create ~title ~header = { title; header; rows = [] }

let add_row t row = t.rows <- row :: t.rows

let render t =
  let rows = List.rev t.rows in
  let ncols = List.length t.header in
  let pad_row r =
    let len = List.length r in
    if len >= ncols then r else r @ List.init (ncols - len) (fun _ -> "")
  in
  let all = t.header :: List.map pad_row rows in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell ->
          if i < ncols && String.length cell > widths.(i) then
            widths.(i) <- String.length cell)
        row)
    all;
  let buf = Buffer.create 256 in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  let emit_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf cell;
        if i < ncols - 1 then
          Buffer.add_string buf (String.make (widths.(i) - String.length cell) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  emit_row t.header;
  let total = Array.fold_left (+) 0 widths + (2 * (ncols - 1)) in
  Buffer.add_string buf (String.make total '-');
  Buffer.add_char buf '\n';
  List.iter (fun r -> emit_row (pad_row r)) rows;
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()

let fmt_cycles c =
  let a = Float.abs c in
  if a < 1e4 then Printf.sprintf "%.0f" c
  else if a < 1e6 then Printf.sprintf "%.1fK" (c /. 1e3)
  else if a < 1e9 then Printf.sprintf "%.2fM" (c /. 1e6)
  else Printf.sprintf "%.2fG" (c /. 1e9)

let fmt_speedup r = Printf.sprintf "%.2fx" r

let fmt_ratio_opt = function
  | None -> "-"
  | Some r when Float.is_nan r -> "-"
  | Some r -> Printf.sprintf "%.2f" r

let fmt_bytes b =
  let a = Float.abs b in
  if a < 1024.0 then Printf.sprintf "%.0fB" b
  else if a < 1024.0 *. 1024.0 then Printf.sprintf "%.1fKB" (b /. 1024.0)
  else if a < 1024.0 *. 1024.0 *. 1024.0 then Printf.sprintf "%.1fMB" (b /. (1024.0 *. 1024.0))
  else Printf.sprintf "%.1fGB" (b /. (1024.0 *. 1024.0 *. 1024.0))
