(** Minimal JSON: just enough for the observability exporters (Chrome
    [trace_event] files, JSON-lines event/metric dumps) and for tests
    to round-trip what the exporters emit.  No external dependency —
    the container's opam switch has no JSON library, and the format
    needed here is small. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string
(** Compact rendering with proper string escaping.  [Float nan]
    renders as [null] (JSON has no NaN). *)

val parse : string -> t
(** Strict parse of a complete document; raises {!Parse_error}. *)

val member : string -> t -> t option
(** Object field lookup ([None] on non-objects too). *)

val to_list_opt : t -> t list option
val to_string_opt : t -> string option
val to_number_opt : t -> float option
(** Ints widen to float. *)
