(** Streaming summary statistics over a bounded log-bucket histogram.

    Used by the runtime to track per-data-structure fetch-latency
    distributions and by the benchmark harness to report medians over
    trials (the paper's "median cycles over 100 trials" methodology,
    Table 1).

    Memory is O(1) regardless of how many observations arrive: the
    distribution lives in an HDR-style histogram whose octaves
    [[2^e, 2^(e+1))]] are each split into 32 equal sub-buckets.
    Mean, variance, sum, min and max are exact; percentiles are
    approximate with relative error bounded by the sub-bucket width
    (~3% of the value) for observations ≥ 1.  Observations below 1.0
    (including negatives) share one coarse bucket — cycle counts, the
    intended payload, never land there. *)

type t
(** A mutable accumulator of float observations. *)

val create : unit -> t

val add : t -> float -> unit
(** Record one observation: O(1), no allocation. *)

val count : t -> int
val sum : t -> float

val mean : t -> float
(** Mean of observations; 0 when empty.  Exact (Welford). *)

val variance : t -> float
(** Population variance (Welford); 0 when fewer than 2 observations. *)

val stddev : t -> float

val min : t -> float
(** Smallest observation; [infinity] when empty.  Exact. *)

val max : t -> float
(** Largest observation; [neg_infinity] when empty.  Exact. *)

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0,100\]]: nearest-rank over the
    histogram, answering the matching bucket's midpoint clamped to the
    exact [\[min, max\]].  Relative error ≤ 1/32 of the true value for
    observations ≥ 1.  Edge cases are defined, not accidental: an
    empty accumulator answers 0.0 for every valid [p]; [p = 0] answers
    the exact {!min} and [p = 100] the exact {!max} (no bucket math);
    a NaN or out-of-range [p] raises [Invalid_argument]. *)

val median : t -> float

val merge : t -> t -> t
(** Combine two accumulators into a fresh one: bucket-wise histogram
    addition plus the parallel Welford combination — O(buckets), no
    sample re-streaming.  When either side is empty the result is a
    copy of the other (so min/max/mean never see the empty side's
    sentinel values); merging two empty accumulators yields an empty
    one. *)

val log2_counts : t -> int array
(** Octave view for ASCII histograms: index [e] counts observations in
    [[2^e, 2^(e+1))]] (sub-1.0 observations fold into index 0).
    Length {!log2_buckets}. *)

val log2_buckets : int
