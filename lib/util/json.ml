type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ---------- printing ---------- *)

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let float_literal x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.1f" x
  else if Float.is_nan x then "null" (* JSON has no NaN *)
  else Printf.sprintf "%.17g" x

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> Buffer.add_string buf (float_literal x)
  | Str s ->
    Buffer.add_char buf '"';
    escape_into buf s;
    Buffer.add_char buf '"'
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        escape_into buf k;
        Buffer.add_string buf "\":";
        emit buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf v;
  Buffer.contents buf

(* ---------- parsing (recursive descent) ---------- *)

type cursor = { s : string; mutable pos : int }

let fail_at c msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance c;
    skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail_at c (Printf.sprintf "expected %C" ch)

let expect_lit c lit v =
  let n = String.length lit in
  if c.pos + n <= String.length c.s && String.sub c.s c.pos n = lit then begin
    c.pos <- c.pos + n;
    v
  end
  else fail_at c (Printf.sprintf "expected %S" lit)

let parse_string_body c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail_at c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c with
       | Some '"' -> Buffer.add_char buf '"'; advance c
       | Some '\\' -> Buffer.add_char buf '\\'; advance c
       | Some '/' -> Buffer.add_char buf '/'; advance c
       | Some 'n' -> Buffer.add_char buf '\n'; advance c
       | Some 't' -> Buffer.add_char buf '\t'; advance c
       | Some 'r' -> Buffer.add_char buf '\r'; advance c
       | Some 'b' -> Buffer.add_char buf '\b'; advance c
       | Some 'f' -> Buffer.add_char buf '\012'; advance c
       | Some 'u' ->
         advance c;
         if c.pos + 4 > String.length c.s then fail_at c "bad \\u escape";
         let hex = String.sub c.s c.pos 4 in
         c.pos <- c.pos + 4;
         let code =
           try int_of_string ("0x" ^ hex)
           with _ -> fail_at c "bad \\u escape"
         in
         (* Only BMP code points below 0x80 kept literal; others as '?'
            — the exporter never emits non-ASCII. *)
         if code < 0x80 then Buffer.add_char buf (Char.chr code)
         else Buffer.add_char buf '?'
       | _ -> fail_at c "bad escape");
      go ()
    | Some ch ->
      Buffer.add_char buf ch;
      advance c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_float = ref false in
  let rec go () =
    match peek c with
    | Some ('0' .. '9' | '-' | '+') ->
      advance c;
      go ()
    | Some ('.' | 'e' | 'E') ->
      is_float := true;
      advance c;
      go ()
    | _ -> ()
  in
  go ();
  let lit = String.sub c.s start (c.pos - start) in
  if !is_float then
    match float_of_string_opt lit with
    | Some x -> Float x
    | None -> fail_at c "bad number"
  else
    match int_of_string_opt lit with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt lit with
      | Some x -> Float x
      | None -> fail_at c "bad number")

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail_at c "unexpected end of input"
  | Some '"' -> Str (parse_string_body c)
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws c;
        let k = parse_string_body c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          members ((k, v) :: acc)
        | Some '}' ->
          advance c;
          List.rev ((k, v) :: acc)
        | _ -> fail_at c "expected ',' or '}'"
      in
      Obj (members [])
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      List []
    end
    else begin
      let rec elems acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          elems (v :: acc)
        | Some ']' ->
          advance c;
          List.rev (v :: acc)
        | _ -> fail_at c "expected ',' or ']'"
      in
      List (elems [])
    end
  | Some 't' -> expect_lit c "true" (Bool true)
  | Some 'f' -> expect_lit c "false" (Bool false)
  | Some 'n' -> expect_lit c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail_at c (Printf.sprintf "unexpected %C" ch)

let parse s =
  let c = { s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then fail_at c "trailing garbage";
  v

(* ---------- accessors ---------- *)

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let to_list_opt = function List xs -> Some xs | _ -> None

let to_string_opt = function Str s -> Some s | _ -> None

let to_number_opt = function
  | Int i -> Some (float_of_int i)
  | Float x -> Some x
  | _ -> None
