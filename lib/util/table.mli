(** Plain-text table rendering for the benchmark harness.

    Every table and figure in the paper is regenerated as an aligned
    ASCII table so that `bench/main.exe` output is directly comparable
    with EXPERIMENTS.md. *)

type t

val create : title:string -> header:string list -> t
(** Start a table with a caption and column names. *)

val add_row : t -> string list -> unit
(** Append one row.  Rows shorter than the header are padded. *)

val render : t -> string
(** Render with a rule under the header and right-padded columns. *)

val print : t -> unit
(** [render] then print to stdout followed by a blank line. *)

val fmt_cycles : float -> string
(** Human format for cycle counts: [1234] / [56.7K] / [8.90M] / [1.23G]. *)

val fmt_speedup : float -> string
(** Format a ratio as e.g. [1.85x]. *)

val fmt_ratio_opt : float option -> string
(** Format an optional ratio as e.g. [0.87]; [None] (or NaN) renders
    as ["-"], the "no data" cell used for e.g. prefetch accuracy when
    nothing was issued. *)

val fmt_bytes : float -> string
(** Human format for byte counts: [512B] / [4.0KB] / [31.0GB]. *)
