(* Streaming summary statistics over a bounded log-bucket histogram.

   The seed kept every observation in a list and re-sorted it on every
   percentile call: O(n) memory forever and O(n log n) per query — a
   pathology once the runtime records a latency per fetch.  The
   replacement is an HDR-style histogram: each octave [2^e, 2^(e+1))
   is split into [subs] equal-width sub-buckets, so memory is a fixed
   ~2 K counters and any percentile is one O(buckets) scan with
   relative error bounded by the sub-bucket width (1/subs of the
   value, ~3% at subs = 32).  Mean/variance stay exact via Welford;
   min/max are exact, and percentile results are clamped to them. *)

let sub_bits = 5
let subs = 1 lsl sub_bits (* sub-buckets per octave: relative width 1/32 *)
let octaves = 60 (* covers magnitudes up to 2^60 — beyond any cycle count *)
let buckets = 1 + (octaves * subs) (* bucket 0: everything below 1.0 *)

type t = {
  mutable n : int;
  mutable mean_acc : float;
  mutable m2 : float;
  mutable total : float;
  mutable lo : float;
  mutable hi : float;
  hist : int array;
}

let create () =
  { n = 0; mean_acc = 0.0; m2 = 0.0; total = 0.0;
    lo = infinity; hi = neg_infinity; hist = Array.make buckets 0 }

(* Index of the sub-bucket holding [x].  Values below 1.0 (including
   negatives) share bucket 0: the histogram's precision contract is
   for magnitudes >= 1, which cycle counts always are. *)
let bucket_of x =
  if x < 1.0 || Float.is_nan x then 0
  else begin
    let e = Stdlib.min (octaves - 1) (int_of_float (Float.log2 x)) in
    let lo = Float.ldexp 1.0 e in
    let frac = (x -. lo) /. lo in
    let sub = Stdlib.min (subs - 1) (int_of_float (frac *. float_of_int subs)) in
    1 + (e * subs) + sub
  end

(* Midpoint of a bucket's value range — the representative a
   percentile query returns (before clamping to the exact min/max). *)
let bucket_mid i =
  if i = 0 then 0.5
  else begin
    let e = (i - 1) / subs and sub = (i - 1) mod subs in
    let base = Float.ldexp 1.0 e in
    let width = base /. float_of_int subs in
    base +. (width *. (float_of_int sub +. 0.5))
  end

let add t x =
  t.n <- t.n + 1;
  t.total <- t.total +. x;
  let delta = x -. t.mean_acc in
  t.mean_acc <- t.mean_acc +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean_acc));
  if x < t.lo then t.lo <- x;
  if x > t.hi then t.hi <- x;
  let b = bucket_of x in
  t.hist.(b) <- t.hist.(b) + 1

let count t = t.n
let sum t = t.total
let mean t = if t.n = 0 then 0.0 else t.mean_acc
let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int t.n
let stddev t = sqrt (variance t)
let min t = t.lo
let max t = t.hi

let percentile t p =
  (* NaN p used to slip through the rank arithmetic (int_of_float nan
     = 0, clamped to rank 1) and out-of-range p silently clamped; both
     are caller bugs, so reject them loudly. *)
  if Float.is_nan p || p < 0.0 || p > 100.0 then
    invalid_arg (Printf.sprintf "Stats.percentile: p = %g not in [0,100]" p);
  if t.n = 0 then 0.0
  else if p = 0.0 then t.lo
  else if p = 100.0 then t.hi
  else begin
    let rank =
      let r = int_of_float (ceil (p /. 100.0 *. float_of_int t.n)) in
      if r <= 0 then 1 else if r > t.n then t.n else r
    in
    let i = ref 0 and seen = ref 0 in
    while !seen < rank && !i < buckets do
      seen := !seen + t.hist.(!i);
      incr i
    done;
    let v = bucket_mid (!i - 1) in
    (* Clamp to the exact extremes: p100 is exactly [max], and a
       one-sample histogram answers that sample's bucket range. *)
    Float.min t.hi (Float.max t.lo v)
  end

let median t = percentile t 50.0

let copy a =
  { a with hist = Array.copy a.hist }

(* Bucket-wise addition plus the standard parallel Welford
   combination — no re-streaming of samples (there are none).  An
   empty side short-circuits to a copy of the other: the general path
   happens to be algebraically right for n = 0 too (delta * 0 / n
   vanishes, min/max absorb the infinities), but only by accident of
   the sentinel values — the guard makes the contract explicit and
   keeps it true if the sentinels ever change. *)
let merge a b =
  if a.n = 0 then copy b
  else if b.n = 0 then copy a
  else begin
  let t = create () in
  t.n <- a.n + b.n;
  t.total <- a.total +. b.total;
  if t.n > 0 then begin
    let na = float_of_int a.n and nb = float_of_int b.n in
    let n = float_of_int t.n in
    let delta = b.mean_acc -. a.mean_acc in
    t.mean_acc <- a.mean_acc +. (delta *. nb /. n);
    t.m2 <- a.m2 +. b.m2 +. (delta *. delta *. na *. nb /. n)
  end;
  t.lo <- Float.min a.lo b.lo;
  t.hi <- Float.max a.hi b.hi;
  Array.iteri (fun i c -> t.hist.(i) <- c + b.hist.(i)) a.hist;
  t
  end

(* Log2 view for ASCII histograms: index [e] counts observations in
   [2^e, 2^(e+1)); bucket 0's sub-1.0 values fold into index 0. *)
let log2_counts t =
  let acc = Array.make octaves 0 in
  acc.(0) <- t.hist.(0);
  for i = 1 to buckets - 1 do
    acc.((i - 1) / subs) <- acc.((i - 1) / subs) + t.hist.(i)
  done;
  acc

let log2_buckets = octaves
