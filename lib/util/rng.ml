type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = Int64.of_int seed }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = int64 t in
  { state = s }

let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free: take the high bits modulo bound.  Bias is
     negligible for the bounds we use (<< 2^32). *)
  let r = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  r mod bound

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  bound *. (r /. 9007199254740992.0) (* 2^53 *)

let bool t = Int64.logand (int64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

(* Truncated-harmonic inverse transform.  We cache the cumulative table
   per (n, s) because workload generators call this in a tight loop.
   The cache is the only process-global state in this module, so it is
   the one place load generators running on different domains can
   collide (a Hashtbl resize is not atomic); a mutex around the lookup
   keeps it safe, and the table itself is immutable once published. *)
let zipf_cache : (int * float, float array) Hashtbl.t = Hashtbl.create 8
let zipf_lock = Mutex.create ()

let zipf_table n s =
  Mutex.lock zipf_lock;
  let tbl =
    match Hashtbl.find_opt zipf_cache (n, s) with
    | Some tbl -> tbl
    | None ->
      let tbl = Array.make n 0.0 in
      let acc = ref 0.0 in
      for i = 0 to n - 1 do
        acc := !acc +. (1.0 /. Float.pow (float_of_int (i + 1)) s);
        tbl.(i) <- !acc
      done;
      let total = !acc in
      for i = 0 to n - 1 do
        tbl.(i) <- tbl.(i) /. total
      done;
      Hashtbl.replace zipf_cache (n, s) tbl;
      tbl
  in
  Mutex.unlock zipf_lock;
  tbl

let zipf t ~n ~s =
  if n <= 0 then invalid_arg "Rng.zipf: n must be positive";
  let tbl = zipf_table n s in
  let u = float t 1.0 in
  (* Binary search for the first index with cdf >= u. *)
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if tbl.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo

let exponential t ~mean =
  let u = float t 1.0 in
  -. mean *. log (1.0 -. u)
