(** Online per-tenant k-budget planning by Max-Use.

    The offline policy takes [k] as a given fraction; a serving system
    must {e derive} it per tenant from what admission control actually
    granted.  [plan] runs the Max-Use ranking (paper Eq. 1 scores from
    the static descriptor table) as a greedy knapsack against the
    tenant's measured per-structure footprint — obtained from a probe
    run of the tenant's [setup()] — and returns the explicit pinned
    set plus the bytes it consumes (what the tenant then reserves via
    {!Admission.admit}). *)

val plan :
  infos:Cards_runtime.Static_info.t array ->
  bytes:int array ->
  budget:int ->
  Cards_runtime.Policy.t * int
(** [plan ~infos ~bytes ~budget] with [bytes.(sid)] = measured
    footprint: descriptors by descending [score_use] (ties toward
    lower sid), pinning each that still fits in [budget]; oversized
    ones are skipped, not terminal.  Returns
    ([Policy.Explicit pinned], bytes actually consumed).
    @raise Invalid_argument when [bytes] and [infos] disagree on the
    structure count. *)
