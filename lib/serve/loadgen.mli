(** Open-loop request load generation.

    Arrivals are generated ahead of time from a seed — an open-loop
    (arrival-clock-driven) stream, so a slow server grows a backlog
    instead of silently throttling the offered load.  Everything is a
    pure function of the seed: the determinism satellite asserts two
    generations (and two whole serving runs) agree bit for bit. *)

type request = { op : int; a : int; b : int }
(** One request in the uniform [req(op, a, b)] dispatch vocabulary. *)

type arrival = { at : int; req : request }
(** [at] is the arrival time on the {e serving} clock (cycles). *)

val arrivals :
  seed:int ->
  n:int ->
  mean_gap:float ->
  sample:(Cards_util.Rng.t -> request) ->
  arrival list
(** [n] arrivals with exponential inter-arrival gaps of mean
    [mean_gap] cycles (≥ 1 apart), strictly increasing [at].  Gap and
    request streams are split from the seed independently, so the op
    mix never perturbs arrival times. *)

val kv_sample : keys:int -> nbuckets:int -> Cards_util.Rng.t -> request
(** 70% get / 20% put / 10% scan over a Zipf(0.9)-popular key space. *)

val analytics_sample : Cards_util.Rng.t -> request
(** Zipf(0.8) draw over the 8-query analytics battery. *)
