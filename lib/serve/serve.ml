module R = Cards_runtime.Runtime
module M = Cards_interp.Machine
module F = Cards_net.Fabric
module Stats = Cards_util.Stats

type config = {
  quantum : int;
  pin_budget : int;
  base : R.config;
  engine : M.engine;
}

(* The default regime is deliberately memory-tight: 2 MiB local with a
   64 KiB remotable cache and a 256 KiB shared pinned budget, so the
   k-budget planner has real choices to make, unpinned structures pay
   real guard/fabric costs, and a faulty tenant's fabric slice
   actually carries traffic for the fault injector to hit. *)
let default_config =
  { quantum = 20_000;
    pin_budget = 1 lsl 18;
    base =
      { R.default_config with
        local_bytes = 1 lsl 21;
        remotable_bytes = 1 lsl 16 };
    engine = M.Decoded }

type tenant_result = {
  tr_name : string;
  tr_served : int;
  tr_setup_cycles : int;
  tr_service_cycles : int;
  tr_stall_cycles : int;
  tr_wait_cycles : int;
  tr_latency : Stats.t;
  tr_pinned_granted : int;
  tr_records : Tenant.record list;
  tr_output : string list;
  tr_fabric : F.stats;
  tr_degrade_level : int;
  tr_deficit_end : int;
}

type result = {
  tenants : tenant_result array;
  total_cycles : int;
  busy_cycles : int;
  idle_cycles : int;
  granted : int;
  charged : int;
  forfeited : int;
  rounds : int;
  stolen : int array array;
  fabric : F.stats;
  pin_budget : int;
  pin_admitted : int;
}

(* The DRR merge loop, factored out of [run] so the parallel engine
   can replay the {e exact} sequential schedule with [serve] swapped
   from "execute now" to "commit the worker's next completion record":
   every scheduling decision below depends only on [pending] /
   [next_arrival] (pure functions of the arrival streams and the
   committed prefix) and the measured costs [serve] returns, so the
   merged schedule is a pure function of the specs — bit-identical no
   matter where execution physically happened. *)
let drive (cfg : config) ~(tenants : Tenant.t array) ~(pin_admitted : int)
    ~(serve : int -> now:int -> int) =
  let n = Array.length tenants in
  let drr = Drr.create ~quantum:cfg.quantum n in
  let clock = ref 0 in
  let busy = ref 0 in
  let idle = ref 0 in
  let stolen = Array.make_matrix n n 0 in
  let all_finished () =
    Array.for_all Tenant.finished tenants
  in
  while not (all_finished ()) do
    let pending i = Tenant.pending tenants.(i) ~now:!clock in
    match Drr.next drr ~pending with
    | Some i ->
      let cost = serve i ~now:!clock in
      Drr.charge drr i cost;
      (* Interference matrix: while tenant [i] held the core for
         [cost] cycles, every other tenant with a request in (or
         entering) its queue waited out the overlap — the "who is
         stealing whose cycles" surface. *)
      for j = 0 to n - 1 do
        if j <> i then
          match Tenant.next_arrival tenants.(j) with
          | Some at when at < !clock + cost ->
            stolen.(j).(i) <- stolen.(j).(i) + (!clock + cost - max at !clock)
          | _ -> ()
      done;
      busy := !busy + cost;
      clock := !clock + cost
    | None ->
      (* Nobody has arrived work: hop the clock to the next arrival. *)
      let next =
        Array.fold_left
          (fun acc t ->
            match Tenant.next_arrival t, acc with
            | Some at, None -> Some at
            | Some at, Some x -> Some (min at x)
            | None, _ -> acc)
          None tenants
      in
      (match next with
       | Some at ->
         (* [at > clock]: an arrived request would have made some
            tenant pending. *)
         idle := !idle + (at - !clock);
         clock := at
       | None -> assert false (* all_finished would have ended the loop *))
  done;
  let tenant_result i t =
    { tr_name = Tenant.name t;
      tr_served = Tenant.served t;
      tr_setup_cycles = Tenant.setup_cycles t;
      tr_service_cycles = Tenant.service_cycles t;
      tr_stall_cycles = Tenant.stall_cycles t;
      tr_wait_cycles = Tenant.wait_cycles t;
      tr_latency = Tenant.latency t;
      tr_pinned_granted = Tenant.pinned_granted t;
      tr_records = Tenant.records t;
      tr_output = Tenant.output t;
      tr_fabric = Tenant.fabric_stats t;
      tr_degrade_level = Tenant.degrade_level t;
      tr_deficit_end = Drr.deficit drr i }
  in
  let fabric =
    let acc = ref (Tenant.fabric_stats tenants.(0)) in
    for i = 1 to n - 1 do
      acc := F.add_stats !acc (Tenant.fabric_stats tenants.(i))
    done;
    !acc
  in
  { tenants = Array.mapi tenant_result tenants;
    total_cycles = !clock;
    busy_cycles = !busy;
    idle_cycles = !idle;
    granted = Drr.granted drr;
    charged = Drr.charged drr;
    forfeited = Drr.forfeited drr;
    rounds = Drr.rounds drr;
    stolen;
    fabric;
    pin_budget = cfg.pin_budget;
    pin_admitted }

let run (cfg : config) (specs : Tenant.spec array) =
  let n = Array.length specs in
  if n = 0 then invalid_arg "Serve.run: no tenants";
  (* Admission: equal shares of the shared pinned budget, reserved
     before each tenant's runtime exists.  Shares are deterministic,
     so a solo replay of one tenant (the isolation oracle) can
     reproduce its exact grant by passing the same share. *)
  let adm = Admission.create ~budget_bytes:cfg.pin_budget in
  let share = cfg.pin_budget / n in
  let tenants =
    Array.map
      (fun spec ->
        let t =
          Tenant.create ~base:cfg.base ~engine:cfg.engine
            ~pin_share:(min share (Admission.available adm))
            spec
        in
        if not (Admission.admit adm ~bytes:(Tenant.pinned_granted t)) then
          failwith "Serve.run: planner exceeded its admission share";
        t)
      specs
  in
  drive cfg ~tenants ~pin_admitted:(Admission.admitted_bytes adm)
    ~serve:(fun i ~now -> Tenant.serve_next tenants.(i) ~now)

(* ---------- the standard tenant mix ---------- *)

let kv_spec ~name ~seed ~requests ~mean_gap ~fault_rate =
  let keys = 2048 and nbuckets = 256 in
  { Tenant.name; source = Cards_workloads.Kv.source ~keys ~nbuckets;
    seed; requests; mean_gap;
    sample = Loadgen.kv_sample ~keys ~nbuckets; fault_rate }

let analytics_spec ~name ~seed ~requests ~mean_gap ~fault_rate =
  { Tenant.name; source = Cards_workloads.Analytics.source_server ~trips:600;
    seed; requests; mean_gap;
    sample = Loadgen.analytics_sample; fault_rate }

(* Zipf tenant mix: tenant i's offered rate is proportional to
   1/(i+1) (mean gap grows linearly), alternating kv and analytics
   workloads.  Analytics queries are ~3 orders heavier than kv ops
   when their columns spill past the pinned budget, so analytics
   tenants offer proportionally fewer, slower requests — otherwise
   the mix is trivially overloaded and every latency is backlog.
   Seeds are decorrelated per tenant but fully determined by the mix
   seed. *)
let zipf_mix ?faulty ~n ~seed ~requests ~base_gap () =
  Array.init n (fun i ->
      let tseed = (seed * 0x1000193) lxor (i * 0x9e3779b9) in
      let tseed = abs tseed in
      let mean_gap = base_gap *. float_of_int (i + 1) in
      let fault_rate =
        match faulty with Some (j, r) when j = i -> r | _ -> 0.0
      in
      if i mod 2 = 0 then
        kv_spec
          ~name:(Printf.sprintf "t%d-kv" i)
          ~seed:tseed ~requests ~mean_gap ~fault_rate
      else
        analytics_spec
          ~name:(Printf.sprintf "t%d-an" i)
          ~seed:tseed
          ~requests:(max 10 (requests / 4))
          ~mean_gap:(mean_gap *. 40.0) ~fault_rate)

(* Uniform kv mix: n equally-loaded kv tenants with decorrelated
   seeds.  The parallel bench uses it because equal per-tenant work is
   what a domain pool can actually scale (the Zipf mix concentrates
   load on tenant 0, capping any parallel speedup by Amdahl). *)
let uniform_mix ?faulty ~n ~seed ~requests ~gap () =
  Array.init n (fun i ->
      let tseed = abs ((seed * 0x1000193) lxor (i * 0x9e3779b9)) in
      let fault_rate =
        match faulty with Some (j, r) when j = i -> r | _ -> 0.0
      in
      kv_spec
        ~name:(Printf.sprintf "u%d-kv" i)
        ~seed:tseed ~requests ~mean_gap:gap ~fault_rate)

(* Solo replay of one tenant under the same admission share it had in
   an [n]-tenant mix — the isolation oracle's other arm. *)
let run_solo (cfg : config) ~mix_size spec =
  let share_cfg = { cfg with pin_budget = cfg.pin_budget / mix_size } in
  run share_cfg [| spec |]
