type t = {
  n : int;
  quantum : int;
  deficit : int array;
  mutable cursor : int;
  mutable granted : int;
  mutable charged : int;
  mutable forfeited : int;
  mutable rounds : int;
}

let create ~quantum n =
  if n <= 0 then invalid_arg "Drr.create: need at least one tenant";
  if quantum <= 0 then invalid_arg "Drr.create: quantum must be positive";
  { n; quantum; deficit = Array.make n 0; cursor = 0;
    granted = 0; charged = 0; forfeited = 0; rounds = 0 }

let deficit t i = t.deficit.(i)
let granted t = t.granted
let charged t = t.charged
let forfeited t = t.forfeited
let rounds t = t.rounds

(* One scan position: a pending tenant with credit is selected (cursor
   stays put, so it keeps its turn until the credit runs out); an idle
   tenant forfeits any positive credit as the cursor passes — credit
   is a right to the {e contended} processor, not a bankable asset. *)
let rec scan t ~pending tries =
  if tries = 0 then None
  else begin
    let i = t.cursor in
    if pending i && t.deficit.(i) > 0 then Some i
    else begin
      if (not (pending i)) && t.deficit.(i) > 0 then begin
        t.forfeited <- t.forfeited + t.deficit.(i);
        t.deficit.(i) <- 0
      end;
      t.cursor <- (i + 1) mod t.n;
      scan t ~pending (tries - 1)
    end
  end

let any_pending t ~pending =
  let rec go i = i < t.n && (pending i || go (i + 1)) in
  go 0

let next t ~pending =
  match scan t ~pending t.n with
  | Some i -> Some i
  | None ->
    if not (any_pending t ~pending) then None
    else begin
      (* Replenish until some pending tenant surfaces: a tenant that
         overdrew (one request can cost far more than a quantum) sits
         out [debt / quantum] rounds while the others are served —
         that sit-out IS the isolation.  Termination: each round adds
         [quantum] to a fixed non-empty set of pending tenants, so the
         most solvent one reaches positive credit in finitely many
         rounds. *)
      let selected = ref None in
      while !selected = None do
        t.rounds <- t.rounds + 1;
        for i = 0 to t.n - 1 do
          if pending i then begin
            t.deficit.(i) <- t.deficit.(i) + t.quantum;
            t.granted <- t.granted + t.quantum
          end
        done;
        selected := scan t ~pending t.n
      done;
      !selected
    end

let charge t i cost =
  if cost < 0 then invalid_arg "Drr.charge: negative cost";
  t.deficit.(i) <- t.deficit.(i) - cost;
  t.charged <- t.charged + cost

(* granted - charged - forfeited = Σ deficit, maintained by every
   operation above; the property suite hammers this. *)
let conserved t =
  t.granted - t.charged - t.forfeited = Array.fold_left ( + ) 0 t.deficit
