module Rng = Cards_util.Rng

type request = { op : int; a : int; b : int }

type arrival = { at : int; req : request }

(* Two decorrelated streams per generator: one for inter-arrival gaps,
   one for request contents.  Changing the op mix therefore never
   perturbs arrival times (and vice versa), which keeps the
   determinism test's failure modes separable. *)
let arrivals ~seed ~n ~mean_gap ~sample =
  let master = Rng.create seed in
  let gaps = Rng.split master in
  let reqs = Rng.split master in
  let at = ref 0 in
  List.init n (fun _ ->
      at := !at + 1 + int_of_float (Rng.exponential gaps ~mean:mean_gap);
      { at = !at; req = sample reqs })

(* Memcached-style mix over a Zipf-popular key space: 70% get, 20%
   put, 10% scan (8 buckets).  Put values derive from the key stream
   so replies stay deterministic per seed. *)
let kv_sample ~keys ~nbuckets rng =
  let key rng = Rng.zipf rng ~n:keys ~s:0.9 in
  let coin = Rng.int rng 10 in
  if coin < 7 then { op = 0; a = key rng; b = 0 }
  else if coin < 9 then { op = 1; a = key rng; b = Rng.int rng 100_000 }
  else { op = 2; a = Rng.int rng nbuckets; b = 8 }

(* Analytics query mix: Zipf over the 8-query battery, so the hot
   column queries dominate and the cold op-7 query stays rare. *)
let analytics_sample rng = { op = Rng.zipf rng ~n:8 ~s:0.8; a = 0; b = 0 }
