module Static_info = Cards_runtime.Static_info
module Policy = Cards_runtime.Policy

(* Greedy Max-Use knapsack: walk descriptors by descending score_use
   (ties toward lower sid, matching Policy's tie-break), pin each one
   whose measured footprint still fits.  Skipping an oversized
   structure and continuing lets a small hot table slip in under a
   huge cold column — the shape Max-Use exists for. *)
let plan ~(infos : Static_info.t array) ~bytes ~budget =
  let n = Array.length infos in
  if Array.length bytes <> n then
    invalid_arg "Kbudget.plan: bytes and infos disagree on structure count";
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun i j ->
      match compare infos.(j).Static_info.score_use infos.(i).Static_info.score_use with
      | 0 -> compare i j
      | c -> c)
    order;
  let pref = Array.make n false in
  let used = ref 0 in
  Array.iter
    (fun sid ->
      if bytes.(sid) >= 0 && !used + bytes.(sid) <= budget then begin
        pref.(sid) <- true;
        used := !used + bytes.(sid)
      end)
    order;
  (Policy.Explicit pref, !used)
