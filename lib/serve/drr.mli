(** Deficit-round-robin fairness over one serving core.

    Each tenant holds a {e deficit counter} in cycles.  A round grants
    every pending tenant one [quantum]; serving a request charges its
    {e actual} measured cost, which may drive the counter far negative
    (debt) when one request costs more than a quantum — the tenant
    then sits out [debt / quantum] rounds while the others are served.
    That debt is the isolation mechanism: a faulty tenant whose
    requests balloon (retries, backoff, escalation) automatically
    donates its turns to the healthy tenants.

    Credit is a right to the contended processor, not a bankable
    asset: a tenant with no pending work forfeits its positive credit
    as the cursor passes it.

    Conservation invariant (property-tested):
    [granted - charged - forfeited = Σ deficits].

    Starvation-freedom: every pending tenant gains a quantum per
    round and rounds are finite, so any tenant's wait is bounded by
    [n · (max_request_cost / quantum + 2)] selections. *)

type t

val create : quantum:int -> int -> t
(** [create ~quantum n] for [n] tenants.  @raise Invalid_argument on
    [n <= 0] or [quantum <= 0]. *)

val next : t -> pending:(int -> bool) -> int option
(** Select the tenant to serve next; [None] iff no tenant is pending.
    The selected tenant keeps the cursor (it continues until its
    credit runs out), and replenishment rounds run automatically when
    no pending tenant has credit. *)

val charge : t -> int -> int -> unit
(** [charge t i cost] debits tenant [i] by the measured service cost.
    @raise Invalid_argument on negative cost. *)

val deficit : t -> int -> int
val granted : t -> int
val charged : t -> int
val forfeited : t -> int
val rounds : t -> int

val conserved : t -> bool
(** The conservation invariant, checkable at any point. *)
