(** Shared pinned-memory admission control.

    Tenants reserve pinned-memory grants from one shared budget
    before their runtime is created; a reservation that would
    overshoot is refused, so the sum of outstanding grants can never
    exceed the budget (property-tested over random admit/release
    sequences).  A refused tenant is not rejected outright — its
    k-budget planner simply pins fewer structures
    ({!Kbudget.plan} against the remaining headroom). *)

type t

val create : budget_bytes:int -> t
(** @raise Invalid_argument on a negative budget. *)

val budget : t -> int
val admitted_bytes : t -> int
val available : t -> int

val admit : t -> bytes:int -> bool
(** Reserve: [false] (and no state change) when the grant would push
    the admitted total past the budget. *)

val release : t -> bytes:int -> unit
(** Return a grant.  @raise Invalid_argument when releasing more than
    is currently admitted. *)
