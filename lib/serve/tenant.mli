(** One tenant of the serving layer.

    A tenant owns a private runtime (namespaced via
    {!Cards_runtime.Runtime.config.namespace}), a private fabric
    slice (with its own fault injection), a live interpreter session
    holding its data structures, and its open-loop arrival stream.
    Privacy is what makes the isolation oracle hold {e by
    construction} at the data level: a tagged pointer can never
    resolve against another tenant's handle table, so the only
    cross-tenant coupling is the serving clock the scheduler
    time-multiplexes.

    Creation pipeline: compile the MiniC serving source → probe
    [setup()]'s per-structure footprint on a scratch all-remotable
    runtime → plan the pinned set online ({!Kbudget.plan} by Max-Use
    within the tenant's admitted share) → build the real runtime and
    run [setup()] for real → pre-generate arrivals.

    Every request's measured cost is checked against the PR 3 ledger:
    [cost = Δcompute + Δattribution] must hold per request, or
    serving aborts. *)

type spec = {
  name : string;                 (** namespace + report label *)
  source : string;               (** MiniC with [setup()] and [req(op,a,b)] *)
  seed : int;                    (** arrival stream + fault schedule seed *)
  requests : int;
  mean_gap : float;              (** mean inter-arrival gap, cycles *)
  sample : Cards_util.Rng.t -> Loadgen.request;
  fault_rate : float;            (** this tenant's fabric fault rate *)
}

type record = { req : Loadgen.request; ret : int; cost : int }
(** Per-request service record — what the isolation oracle compares
    bit for bit between a shared run and a solo run. *)

type t

val create :
  base:Cards_runtime.Runtime.config ->
  engine:Cards_interp.Machine.engine ->
  pin_share:int ->
  spec ->
  t
(** [pin_share] is the pinned-byte budget the k-budget planner may
    consume (what admission control granted). *)

val finished : t -> bool
val pending : t -> now:int -> bool
(** Has an arrived-but-unserved request at serving time [now]. *)

val next_arrival : t -> int option
(** Arrival time of the oldest unserved request. *)

val serve_next : t -> now:int -> int
(** Serve the oldest pending request at serving time [now]; returns
    the measured service cost in cycles.  Records latency
    ([wait + cost]), the service record, and the printed output.
    @raise Failure if the per-request ledger decomposition breaks. *)

val name : t -> string
val served : t -> int
val setup_cycles : t -> int
val service_cycles : t -> int
val stall_cycles : t -> int
(** Non-compute service cycles, from the attribution ledger. *)

val wait_cycles : t -> int
val latency : t -> Cards_util.Stats.t
val pinned_granted : t -> int
val records : t -> record list
val output : t -> string list
val fabric_stats : t -> Cards_net.Fabric.stats
val degrade_level : t -> int
val runtime : t -> Cards_runtime.Runtime.t
