(** One tenant of the serving layer.

    A tenant owns a private runtime (namespaced via
    {!Cards_runtime.Runtime.config.namespace}), a private fabric
    slice (with its own fault injection), a live interpreter session
    holding its data structures, and its open-loop arrival stream.
    Privacy is what makes the isolation oracle hold {e by
    construction} at the data level: a tagged pointer can never
    resolve against another tenant's handle table, so the only
    cross-tenant coupling is the serving clock the scheduler
    time-multiplexes.

    Creation pipeline: compile the MiniC serving source → probe
    [setup()]'s per-structure footprint on a scratch all-remotable
    runtime → plan the pinned set online ({!Kbudget.plan} by Max-Use
    within the tenant's admitted share) → build the real runtime and
    run [setup()] for real → pre-generate arrivals.

    Every request's measured cost is checked against the PR 3 ledger:
    [cost = Δcompute + Δattribution] must hold per request, or
    serving aborts. *)

type spec = {
  name : string;                 (** namespace + report label *)
  source : string;               (** MiniC with [setup()] and [req(op,a,b)] *)
  seed : int;                    (** arrival stream + fault schedule seed *)
  requests : int;
  mean_gap : float;              (** mean inter-arrival gap, cycles *)
  sample : Cards_util.Rng.t -> Loadgen.request;
  fault_rate : float;            (** this tenant's fabric fault rate *)
}

type record = { req : Loadgen.request; ret : int; cost : int }
(** Per-request service record — what the isolation oracle compares
    bit for bit between a shared run and a solo run. *)

type t

val create :
  ?trace_fabric:bool ->
  base:Cards_runtime.Runtime.config ->
  engine:Cards_interp.Machine.engine ->
  pin_share:int ->
  spec ->
  t
(** [pin_share] is the pinned-byte budget the k-budget planner may
    consume (what admission control granted).  [trace_fabric] (default
    false) installs a port observer on the tenant's fabric slice so
    {!fabric_events} returns its wire-event stream; pure observation —
    results are bit-identical either way. *)

type prep
(** A compiled-but-not-built tenant.  {!prepare} runs the MiniC
    compiler, which keeps process-global pass counters and therefore
    must stay on a single domain; {!build} does only tenant-private
    work (footprint probe, k-budget plan, runtime, [setup()], arrival
    stream) and is safe to run on the tenant's own domain.  The
    parallel engine prepares all tenants sequentially, then builds
    each on its worker; [create = build ∘ prepare]. *)

val prepare :
  ?trace_fabric:bool ->
  base:Cards_runtime.Runtime.config ->
  engine:Cards_interp.Machine.engine ->
  pin_share:int ->
  spec ->
  prep

val build : prep -> t

val finished : t -> bool
val pending : t -> now:int -> bool
(** Has an arrived-but-unserved request at serving time [now]. *)

val next_arrival : t -> int option
(** Arrival time of the oldest unserved request. *)

val serve_next : t -> now:int -> int
(** Serve the oldest pending request at serving time [now]; returns
    the measured service cost in cycles.  Records latency
    ([wait + cost]), the service record, and the printed output.
    Equal to [commit ~now (exec_next t)].
    @raise Failure if the per-request ledger decomposition breaks. *)

type exec = {
  e_ix : int;           (** request index in the arrival stream *)
  e_ret : int;
  e_cost : int;         (** measured service cycles *)
  e_stall : int;        (** attribution-ledger share of [e_cost] *)
  e_out : string list;
}
(** One executed-but-uncommitted request: everything {!commit} needs
    to fold it into the serving-clock accounting.  Independent of the
    serving clock by construction (the PR 9 isolation invariant), so a
    worker domain can run {!exec_next} arbitrarily far ahead. *)

val exec_remaining : t -> int
(** Requests not yet executed (worker side; [>=] unserved count). *)

val exec_next : t -> exec
(** Execute the next request against the tenant's private runtime and
    advance the execution cursor.  Touches only worker-side state.
    @raise Failure if the per-request ledger decomposition breaks. *)

val commit : t -> now:int -> exec -> int
(** Commit an executed request at serving time [now]; returns its cost.
    Touches only coordinator-side accounting state.
    @raise Failure when records arrive out of execution order. *)

val name : t -> string
val served : t -> int
val setup_cycles : t -> int
val service_cycles : t -> int
val stall_cycles : t -> int
(** Non-compute service cycles, from the attribution ledger. *)

val wait_cycles : t -> int
val latency : t -> Cards_util.Stats.t
val pinned_granted : t -> int
val records : t -> record list
val output : t -> string list
val fabric_stats : t -> Cards_net.Fabric.stats
val degrade_level : t -> int
val runtime : t -> Cards_runtime.Runtime.t

val local_clock : t -> int
(** The tenant runtime's own virtual clock ([Runtime.now]) — the
    per-domain clock the parallel engine publishes as its lookahead
    horizon. *)

val fabric_events : t -> Cards_net.Fabric.port_event list
(** The tenant's wire-event stream in local virtual time, in issue
    order — empty unless built with [trace_fabric]. *)
