module P = Cards.Pipeline
module R = Cards_runtime.Runtime
module M = Cards_interp.Machine
module F = Cards_net.Fabric
module Stats = Cards_util.Stats
module Attribution = Cards_obs.Attribution
module Profile = Cards_obs.Profile

type spec = {
  name : string;
  source : string;
  seed : int;
  requests : int;
  mean_gap : float;
  sample : Cards_util.Rng.t -> Loadgen.request;
  fault_rate : float;
}

type record = { req : Loadgen.request; ret : int; cost : int }

(* The mutable state splits cleanly into an execution half and an
   accounting half, which is what lets the parallel engine run them on
   different domains: [exec_next] (worker side) touches only the
   runtime/session and [exec_ix]; [commit] (coordinator side) touches
   only the serving-clock accounting ([next_ix] onward).  The two
   halves synchronize through the engine's mailbox, never through this
   record. *)
type t = {
  spec : spec;
  compiled : P.compiled;
  rt : R.t;
  session : M.session;
  handles : (int, int) Hashtbl.t;
  arrivals : Loadgen.arrival array;
  mutable exec_ix : int;          (* requests executed (worker side) *)
  mutable next_ix : int;          (* requests committed (coordinator side) *)
  mutable served : int;
  mutable setup_cycles : int;
  mutable service_cycles : int;
  mutable stall_cycles : int;
  mutable wait_cycles : int;
  lat : Stats.t;
  mutable records_rev : record list;
  mutable out_rev : string list;
  pinned_granted : int;
  events_rev : F.port_event list ref;  (* local-time wire events, when traced *)
}

(* A transformed function's appended handle parameters, resolved
   through the compiler's handle plan: ds_init each sid once per
   runtime (the driver is main's surrogate — main itself never runs
   in a session), then reuse the handle for every later call. *)
let handles_for tbl rt compiled fname =
  match List.assoc_opt fname compiled.P.fn_arg_sids with
  | None -> failwith (Printf.sprintf "serving source has no %s()" fname)
  | Some sids ->
    List.map
      (fun sid ->
        if sid < 0 then
          failwith
            (Printf.sprintf "%s: handle plan has an uncovered argnode" fname);
        match Hashtbl.find_opt tbl sid with
        | Some h -> h
        | None ->
          let h = R.ds_init rt ~sid in
          Hashtbl.replace tbl sid h;
          h)
      sids

(* Footprint probe: run setup() against a scratch all-remotable
   runtime and read back per-structure allocated bytes — the online
   measurement the Max-Use knapsack plans against. *)
let probe_footprint ~(base : R.config) ~engine compiled =
  let cfg =
    { base with
      R.policy = Cards_runtime.Policy.All_remotable;
      namespace = "";
      fabric_config = { base.fabric_config with F.faults = F.no_faults } }
  in
  let rt = R.create cfg compiled.P.infos in
  let s = M.session ~engine compiled.P.instrumented rt in
  let tbl = Hashtbl.create 8 in
  ignore (M.call s "setup" (handles_for tbl rt compiled "setup"));
  let bytes = Array.make (Array.length compiled.P.infos) 0 in
  List.iter
    (fun (r : R.ds_report) ->
      if r.r_sid >= 0 && r.r_sid < Array.length bytes then
        bytes.(r.r_sid) <- bytes.(r.r_sid) + r.r_bytes)
    (R.report rt);
  bytes

(* Creation splits at the compile boundary: [prepare] runs the
   compiler (which keeps process-global pass counters, so it must stay
   on one domain — the parallel engine prepares every tenant
   sequentially), while [build] does only tenant-private work — probe,
   knapsack, runtime, setup(), arrivals — and is safe to run on the
   tenant's own domain. *)
type prep = {
  p_spec : spec;
  p_base : R.config;
  p_engine : M.engine;
  p_pin_share : int;
  p_trace : bool;
  p_compiled : P.compiled;
}

let prepare ?(trace_fabric = false) ~(base : R.config) ~engine ~pin_share spec =
  { p_spec = spec; p_base = base; p_engine = engine;
    p_pin_share = pin_share; p_trace = trace_fabric;
    p_compiled = P.compile_source spec.source }

let build (p : prep) =
  let spec = p.p_spec and base = p.p_base and compiled = p.p_compiled in
  let bytes = probe_footprint ~base ~engine:p.p_engine compiled in
  let policy, pinned_granted =
    Kbudget.plan ~infos:compiled.P.infos ~bytes ~budget:p.p_pin_share
  in
  let cfg =
    { base with
      R.policy;
      namespace = spec.name;
      fabric_config =
        { base.fabric_config with
          F.faults =
            { F.no_faults with
              F.fault_rate = spec.fault_rate;
              fault_seed = spec.seed lxor 0x5e4e } } }
  in
  let rt = R.create cfg compiled.P.infos in
  let events_rev = ref [] in
  if p.p_trace then
    R.set_fabric_port rt (Some (fun ev -> events_rev := ev :: !events_rev));
  let session = M.session ~engine:p.p_engine compiled.P.instrumented rt in
  let handles = Hashtbl.create 8 in
  let r = M.call session "setup" (handles_for handles rt compiled "setup") in
  let arrivals =
    Array.of_list
      (Loadgen.arrivals ~seed:spec.seed ~n:spec.requests
         ~mean_gap:spec.mean_gap ~sample:spec.sample)
  in
  { spec; compiled; rt; session; handles; arrivals;
    exec_ix = 0; next_ix = 0; served = 0;
    setup_cycles = r.M.cycles; service_cycles = 0; stall_cycles = 0;
    wait_cycles = 0; lat = Stats.create (); records_rev = [];
    out_rev = []; pinned_granted; events_rev }

let create ?trace_fabric ~(base : R.config) ~engine ~pin_share spec =
  build (prepare ?trace_fabric ~base ~engine ~pin_share spec)

let finished t = t.next_ix >= Array.length t.arrivals

let pending t ~now =
  t.next_ix < Array.length t.arrivals && t.arrivals.(t.next_ix).Loadgen.at <= now

let next_arrival t =
  if finished t then None else Some t.arrivals.(t.next_ix).Loadgen.at

type exec = {
  e_ix : int;
  e_ret : int;
  e_cost : int;
  e_stall : int;
  e_out : string list;
}

let exec_remaining t = Array.length t.arrivals - t.exec_ix

(* Execute the next request against the tenant's private runtime.
   Deliberately independent of the serving clock: the result (return
   value, cost, output, fabric effects) is a pure function of the
   tenant's own request stream, which is the PR 9 isolation invariant
   — and exactly what lets a worker domain run ahead of the serving
   clock.  Per-request cost ties to the PR 3 ledger: cost = Δcompute +
   Δattribution, checked on every single request. *)
let exec_next t =
  let ix = t.exec_ix in
  let arr = t.arrivals.(ix) in
  let { Loadgen.op; a; b } = arr.Loadgen.req in
  let att0 = Attribution.total (R.attribution t.rt) in
  let comp0 = Profile.compute (R.profile t.rt) in
  let r =
    M.call t.session "req" ([ op; a; b ] @ handles_for t.handles t.rt t.compiled "req")
  in
  let stall = Attribution.total (R.attribution t.rt) - att0 in
  let compute = Profile.compute (R.profile t.rt) - comp0 in
  if r.M.cycles <> stall + compute then
    failwith
      (Printf.sprintf
         "%s: request cost %d cycles but the ledger decomposes it as \
          %d compute + %d stall"
         t.spec.name r.M.cycles compute stall);
  t.exec_ix <- ix + 1;
  { e_ix = ix; e_ret = r.M.ret; e_cost = r.M.cycles; e_stall = stall;
    e_out = r.M.output }

(* Commit an executed request at serving time [now]: the caller owns
   the serving clock, we fold the record into the tenant's accounting
   and return the cost so the scheduler can be charged.  Records must
   commit in execution order — the engine's per-tenant FIFO guarantees
   it, and we check it anyway. *)
let commit t ~now (e : exec) =
  if e.e_ix <> t.next_ix then
    failwith
      (Printf.sprintf "%s: commit out of order (record %d at slot %d)"
         t.spec.name e.e_ix t.next_ix);
  let arr = t.arrivals.(t.next_ix) in
  let wait = now - arr.Loadgen.at in
  t.next_ix <- t.next_ix + 1;
  t.served <- t.served + 1;
  t.service_cycles <- t.service_cycles + e.e_cost;
  t.stall_cycles <- t.stall_cycles + e.e_stall;
  t.wait_cycles <- t.wait_cycles + wait;
  Stats.add t.lat (float_of_int (wait + e.e_cost));
  t.records_rev <-
    { req = arr.Loadgen.req; ret = e.e_ret; cost = e.e_cost } :: t.records_rev;
  t.out_rev <- List.rev_append e.e_out t.out_rev;
  e.e_cost

(* Serve the oldest pending request: execute and commit in one step
   (the sequential path). *)
let serve_next t ~now = commit t ~now (exec_next t)

let name t = t.spec.name
let served t = t.served
let setup_cycles t = t.setup_cycles
let service_cycles t = t.service_cycles
let stall_cycles t = t.stall_cycles
let wait_cycles t = t.wait_cycles
let latency t = t.lat
let pinned_granted t = t.pinned_granted
let records t = List.rev t.records_rev
let output t = List.rev t.out_rev
let fabric_stats t = R.fabric_stats t.rt
let degrade_level t = R.degrade_level t.rt
let runtime t = t.rt
let local_clock t = R.now t.rt
let fabric_events t = List.rev !(t.events_rev)
