module P = Cards.Pipeline
module R = Cards_runtime.Runtime
module M = Cards_interp.Machine
module F = Cards_net.Fabric
module Stats = Cards_util.Stats
module Attribution = Cards_obs.Attribution
module Profile = Cards_obs.Profile

type spec = {
  name : string;
  source : string;
  seed : int;
  requests : int;
  mean_gap : float;
  sample : Cards_util.Rng.t -> Loadgen.request;
  fault_rate : float;
}

type record = { req : Loadgen.request; ret : int; cost : int }

type t = {
  spec : spec;
  compiled : P.compiled;
  rt : R.t;
  session : M.session;
  handles : (int, int) Hashtbl.t;
  arrivals : Loadgen.arrival array;
  mutable next_ix : int;
  mutable served : int;
  mutable setup_cycles : int;
  mutable service_cycles : int;
  mutable stall_cycles : int;
  mutable wait_cycles : int;
  lat : Stats.t;
  mutable records_rev : record list;
  mutable out_rev : string list;
  pinned_granted : int;
}

(* A transformed function's appended handle parameters, resolved
   through the compiler's handle plan: ds_init each sid once per
   runtime (the driver is main's surrogate — main itself never runs
   in a session), then reuse the handle for every later call. *)
let handles_for tbl rt compiled fname =
  match List.assoc_opt fname compiled.P.fn_arg_sids with
  | None -> failwith (Printf.sprintf "serving source has no %s()" fname)
  | Some sids ->
    List.map
      (fun sid ->
        if sid < 0 then
          failwith
            (Printf.sprintf "%s: handle plan has an uncovered argnode" fname);
        match Hashtbl.find_opt tbl sid with
        | Some h -> h
        | None ->
          let h = R.ds_init rt ~sid in
          Hashtbl.replace tbl sid h;
          h)
      sids

(* Footprint probe: run setup() against a scratch all-remotable
   runtime and read back per-structure allocated bytes — the online
   measurement the Max-Use knapsack plans against. *)
let probe_footprint ~(base : R.config) ~engine compiled =
  let cfg =
    { base with
      R.policy = Cards_runtime.Policy.All_remotable;
      namespace = "";
      fabric_config = { base.fabric_config with F.faults = F.no_faults } }
  in
  let rt = R.create cfg compiled.P.infos in
  let s = M.session ~engine compiled.P.instrumented rt in
  let tbl = Hashtbl.create 8 in
  ignore (M.call s "setup" (handles_for tbl rt compiled "setup"));
  let bytes = Array.make (Array.length compiled.P.infos) 0 in
  List.iter
    (fun (r : R.ds_report) ->
      if r.r_sid >= 0 && r.r_sid < Array.length bytes then
        bytes.(r.r_sid) <- bytes.(r.r_sid) + r.r_bytes)
    (R.report rt);
  bytes

let create ~(base : R.config) ~engine ~pin_share spec =
  let compiled = P.compile_source spec.source in
  let bytes = probe_footprint ~base ~engine compiled in
  let policy, pinned_granted =
    Kbudget.plan ~infos:compiled.P.infos ~bytes ~budget:pin_share
  in
  let cfg =
    { base with
      R.policy;
      namespace = spec.name;
      fabric_config =
        { base.fabric_config with
          F.faults =
            { F.no_faults with
              F.fault_rate = spec.fault_rate;
              fault_seed = spec.seed lxor 0x5e4e } } }
  in
  let rt = R.create cfg compiled.P.infos in
  let session = M.session ~engine compiled.P.instrumented rt in
  let handles = Hashtbl.create 8 in
  let r = M.call session "setup" (handles_for handles rt compiled "setup") in
  let arrivals =
    Array.of_list
      (Loadgen.arrivals ~seed:spec.seed ~n:spec.requests
         ~mean_gap:spec.mean_gap ~sample:spec.sample)
  in
  { spec; compiled; rt; session; handles; arrivals;
    next_ix = 0; served = 0;
    setup_cycles = r.M.cycles; service_cycles = 0; stall_cycles = 0;
    wait_cycles = 0; lat = Stats.create (); records_rev = [];
    out_rev = []; pinned_granted }

let finished t = t.next_ix >= Array.length t.arrivals

let pending t ~now =
  t.next_ix < Array.length t.arrivals && t.arrivals.(t.next_ix).Loadgen.at <= now

let next_arrival t =
  if finished t then None else Some t.arrivals.(t.next_ix).Loadgen.at

(* Serve the oldest pending request.  The caller owns the serving
   clock; we return the measured service cost so it can advance it
   and charge the scheduler.  Per-request cost ties to the PR 3
   ledger exactly: cost = Δcompute + Δattribution, checked on every
   single request. *)
let serve_next t ~now =
  let arr = t.arrivals.(t.next_ix) in
  let { Loadgen.op; a; b } = arr.Loadgen.req in
  let att0 = Attribution.total (R.attribution t.rt) in
  let comp0 = Profile.compute (R.profile t.rt) in
  let r =
    M.call t.session "req" ([ op; a; b ] @ handles_for t.handles t.rt t.compiled "req")
  in
  let stall = Attribution.total (R.attribution t.rt) - att0 in
  let compute = Profile.compute (R.profile t.rt) - comp0 in
  if r.M.cycles <> stall + compute then
    failwith
      (Printf.sprintf
         "%s: request cost %d cycles but the ledger decomposes it as \
          %d compute + %d stall"
         t.spec.name r.M.cycles compute stall);
  let wait = now - arr.Loadgen.at in
  t.next_ix <- t.next_ix + 1;
  t.served <- t.served + 1;
  t.service_cycles <- t.service_cycles + r.M.cycles;
  t.stall_cycles <- t.stall_cycles + stall;
  t.wait_cycles <- t.wait_cycles + wait;
  Stats.add t.lat (float_of_int (wait + r.M.cycles));
  t.records_rev <- { req = arr.Loadgen.req; ret = r.M.ret; cost = r.M.cycles } :: t.records_rev;
  t.out_rev <- List.rev_append r.M.output t.out_rev;
  r.M.cycles

let name t = t.spec.name
let served t = t.served
let setup_cycles t = t.setup_cycles
let service_cycles t = t.service_cycles
let stall_cycles t = t.stall_cycles
let wait_cycles t = t.wait_cycles
let latency t = t.lat
let pinned_granted t = t.pinned_granted
let records t = List.rev t.records_rev
let output t = List.rev t.out_rev
let fabric_stats t = R.fabric_stats t.rt
let degrade_level t = R.degrade_level t.rt
let runtime t = t.rt
