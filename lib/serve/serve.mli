(** The many-tenant serving layer (ROADMAP north star, first leg).

    N tenants each hold a private runtime + fabric slice and a live
    interpreter session; one serving core is time-multiplexed across
    them by deficit round robin ({!Drr}) in measured cycles, with
    pinned local memory split by admission control ({!Admission}) and
    each tenant's k-budget planned online by Max-Use ({!Kbudget}).

    The serving clock is the sum of dispatched service costs plus the
    idle gaps to the next arrival, so the decomposition

    [total_cycles = idle_cycles + Σ tenant service_cycles]

    holds {e exactly}, as does [Σ per-tenant fetched_bytes = global]
    via {!Cards_net.Fabric.add_stats} — both are asserted by the
    bench gate and the differential oracle.

    Isolation: a tenant's computation (outputs, per-request service
    records, fabric counters) is bit-identical to running it alone
    ({!run_solo}), because the only shared resource is the serving
    clock; contention moves {e latency}, never {e results}.  A faulty
    tenant's ballooned request costs become scheduler debt, so it
    sits out rounds while healthy tenants keep their tails. *)

type config = {
  quantum : int;       (** DRR replenishment per round, cycles *)
  pin_budget : int;    (** shared pinned local-memory budget, bytes *)
  base : Cards_runtime.Runtime.config;  (** per-tenant template *)
  engine : Cards_interp.Machine.engine;
}

val default_config : config
(** 20 K-cycle quantum; a deliberately memory-tight tenant template —
    2 MiB local, 64 KiB remotable cache, 256 KiB shared pinned budget
    — so the k-budget planner has real choices, unpinned structures
    pay real costs, and a faulty fabric slice carries traffic for the
    injector to hit.  Decoded engine. *)

type tenant_result = {
  tr_name : string;
  tr_served : int;
  tr_setup_cycles : int;       (** off the serving clock *)
  tr_service_cycles : int;
  tr_stall_cycles : int;       (** attribution-ledger share of service *)
  tr_wait_cycles : int;        (** queueing behind other tenants *)
  tr_latency : Cards_util.Stats.t;  (** wait + service per request *)
  tr_pinned_granted : int;
  tr_records : Tenant.record list;
  tr_output : string list;
  tr_fabric : Cards_net.Fabric.stats;
  tr_degrade_level : int;
  tr_deficit_end : int;
}

type result = {
  tenants : tenant_result array;
  total_cycles : int;          (** final serving-clock value *)
  busy_cycles : int;           (** = Σ tenant service cycles *)
  idle_cycles : int;           (** clock hops with empty queues *)
  granted : int;               (** DRR credit issued *)
  charged : int;               (** DRR credit consumed *)
  forfeited : int;             (** credit dropped by idle tenants *)
  rounds : int;
  stolen : int array array;
      (** [stolen.(victim).(culprit)] = cycles victim's requests
          spent queued while culprit held the core *)
  fabric : Cards_net.Fabric.stats;  (** Σ over tenants *)
  pin_budget : int;
  pin_admitted : int;
}

val run : config -> Tenant.spec array -> result
(** @raise Invalid_argument on an empty mix. *)

val drive :
  config ->
  tenants:Tenant.t array ->
  pin_admitted:int ->
  serve:(int -> now:int -> int) ->
  result
(** The DRR merge loop of {!run}, over already-built tenants: calls
    [serve i ~now] for every dispatch and charges the returned cost.
    Every scheduling decision depends only on the arrival streams, the
    committed prefix, and the costs [serve] returns — so the parallel
    engine ({!Cards_par.Engine}) replays the exact sequential schedule
    by swapping [serve] from "execute now" ({!Tenant.serve_next}) to
    "commit the worker's next completion record". *)

val kv_spec :
  name:string -> seed:int -> requests:int -> mean_gap:float ->
  fault_rate:float -> Tenant.spec
(** 2048-key / 256-bucket kv store under the standard get/put/scan
    mix. *)

val analytics_spec :
  name:string -> seed:int -> requests:int -> mean_gap:float ->
  fault_rate:float -> Tenant.spec
(** 600-trip analytics column store under the Zipf query mix. *)

val zipf_mix :
  ?faulty:int * float ->
  n:int -> seed:int -> requests:int -> base_gap:float -> unit ->
  Tenant.spec array
(** The standard mix: tenant [i] offers load proportional to
    [1/(i+1)], alternating kv and analytics, seeds decorrelated from
    the mix seed.  [faulty = (i, rate)] gives tenant [i] a faulty
    fabric slice. *)

val uniform_mix :
  ?faulty:int * float ->
  n:int -> seed:int -> requests:int -> gap:float -> unit ->
  Tenant.spec array
(** [n] equally-loaded kv tenants with decorrelated seeds — the
    parallel bench's mix, because equal per-tenant work is what a
    domain pool can actually scale.  [faulty] as in {!zipf_mix}. *)

val run_solo : config -> mix_size:int -> Tenant.spec -> result
(** Run one tenant alone under the admission share it would hold in a
    [mix_size]-tenant mix — the isolation oracle's private-fabric
    arm. *)
