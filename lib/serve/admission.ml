type t = { budget : int; mutable admitted : int }

let create ~budget_bytes =
  if budget_bytes < 0 then invalid_arg "Admission.create: negative budget";
  { budget = budget_bytes; admitted = 0 }

let budget t = t.budget
let admitted_bytes t = t.admitted
let available t = t.budget - t.admitted

let admit t ~bytes =
  if bytes < 0 then invalid_arg "Admission.admit: negative reservation"
  else if t.admitted + bytes > t.budget then false
  else begin
    t.admitted <- t.admitted + bytes;
    true
  end

let release t ~bytes =
  if bytes < 0 || bytes > t.admitted then
    invalid_arg "Admission.release: releasing more than admitted";
  t.admitted <- t.admitted - bytes
