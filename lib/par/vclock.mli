(** Per-stream virtual-clock horizons shared across domains.

    Each worker domain {!publish}es how far its stream's local virtual
    time has advanced; the coordinator reads {!horizon}s to check the
    conservative-barrier invariant (a record is only committed once
    its producer's published clock has passed it) and {!gvt} for the
    global lower bound no active stream can ever emit behind.  All
    operations are wait-free ([Atomic] reads/writes). *)

type t

val create : int -> t
(** [create n]: [n] streams, horizons at 0, all active.
    @raise Invalid_argument when [n < 1]. *)

val streams : t -> int

val publish : t -> int -> int -> unit
(** [publish t i now] advances stream [i]'s horizon to [now].
    @raise Invalid_argument when the horizon would move backwards —
    virtual time is monotone, so a backwards publish means the
    producer is broken and the barrier must not go optimistic. *)

val horizon : t -> int -> int

val retire : t -> int -> unit
(** Stream [i] will produce no further events: drop it from {!gvt}. *)

val active : t -> int -> bool

val gvt : t -> int
(** Minimum horizon over still-active streams ([max_int] when all have
    retired): the global virtual-time lower bound — no active stream
    can produce an event strictly older than this. *)
