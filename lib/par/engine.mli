(** Parallel tenant serving on OCaml 5 domains under deterministic
    virtual time (DESIGN.md §13).

    Tenants execute on a pool of worker domains, each against its own
    runtime's local virtual clock, running {e ahead} of the serving
    clock; the calling domain replays the exact sequential DRR
    schedule ({!Cards_serve.Serve.drive}), committing each dispatch
    from the worker's completion-record stream.  The blocking pop is
    the conservative lookahead barrier: the coordinator can never
    advance onto a dispatch whose record does not exist.  Results are
    bit-identical to {!Cards_serve.Serve.run} for any domain count,
    window size, or perturbation — the stress suite and the bench
    [par] gate assert it. *)

type commit_ev = {
  c_tenant : int;
  c_ix : int;    (** request index within the tenant's arrival stream *)
  c_cost : int;  (** measured service cycles *)
}

type trace = {
  per_tenant : Cards_net.Fabric.port_event list array;
      (** each tenant's wire-event stream in its local virtual time
          (issue-ordered; bit-comparable against a traced sequential
          run) *)
  merged : (int * commit_ev) list;
      (** the commit schedule, merged in serving-clock order through
          the conservative {!Coordinator} (monotonicity asserted) *)
}

val assignment : n:int -> domains:int -> int array
(** Tenant→domain pinning: tenant [i] runs on domain [i mod d] where
    [d = max 1 (min domains n)].  Deterministic, so reports can label
    which domain served each tenant. *)

val run :
  ?perturb:int ->
  ?window:int ->
  domains:int ->
  Cards_serve.Serve.config ->
  Cards_serve.Tenant.spec array ->
  Cards_serve.Serve.result
(** Serve the mix on [domains] worker domains (capped at the tenant
    count; 1 is a degenerate but valid pool).  [window] (default 64)
    bounds each tenant's execute-ahead record stream; [perturb] > 0
    adds a seeded artificial spin (up to that many relax steps) before
    every worker build/exec step, randomizing real interleaving for
    the stress suite.  All three change wall-clock time only: the
    returned result is bit-identical to {!Cards_serve.Serve.run}.
    @raise Invalid_argument on an empty mix, [domains < 1], or
    [window < 1].
    @raise Coordinator.Barrier_violation if a record were ever
    committed past its producing domain's published clock. *)

val run_traced :
  ?perturb:int ->
  ?window:int ->
  domains:int ->
  Cards_serve.Serve.config ->
  Cards_serve.Tenant.spec array ->
  Cards_serve.Serve.result * trace
(** {!run} with per-tenant fabric-port tracing on (pure observation —
    the result is unchanged), returning the wire-event streams and the
    merged commit schedule. *)

val seq_traced :
  Cards_serve.Serve.config ->
  Cards_serve.Tenant.spec array ->
  Cards_serve.Serve.result * Cards_net.Fabric.port_event list array
(** The sequential reference ({!Cards_serve.Serve.run}, bit for bit)
    with fabric tracing on — the differential tests compare its
    streams against {!run_traced}'s. *)
