(** Bounded multi-stream FIFO exchange between domains.

    The engine's worker→coordinator channel: one mutex + condition
    guards [streams] independent bounded queues.  The coarse lock is
    fine because each push/pop brackets an entire interpreted request.

    Deadlock-freedom protocol for workers owning several streams:
    produce with {!try_push} round-robin, fall back to {!wait_room}
    over every still-active owned stream — a worker then blocks only
    when all its streams are full, and the (single) consumer blocked
    on a stream is by definition blocked on an empty one, whose owner
    consequently has room to push.

    A failing domain {!poison}s the exchange: every blocked or future
    operation raises {!Poisoned} instead of hanging the run. *)

exception Poisoned of exn

type 'a t

val create : streams:int -> capacity:int -> 'a t
(** @raise Invalid_argument when [streams < 1] or [capacity < 1]. *)

val streams : 'a t -> int
val capacity : 'a t -> int

val length : 'a t -> int -> int
(** Current depth of one stream (racy outside the producing domain —
    a bound, not a truth). *)

val try_push : 'a t -> int -> 'a -> bool
(** Non-blocking push; [false] when the stream is at capacity.
    @raise Poisoned when the exchange is poisoned. *)

val push : 'a t -> int -> 'a -> unit
(** Blocking push. @raise Poisoned when the exchange is poisoned. *)

val wait_room : 'a t -> int list -> unit
(** Block until one of the listed streams has room.  Returns
    immediately on an empty list.
    @raise Poisoned when the exchange is poisoned. *)

val pop : 'a t -> int -> 'a
(** Blocking pop of one stream — the engine's conservative barrier: a
    committed record exists before it is merged, by construction.
    @raise Poisoned when the exchange is poisoned. *)

val poison : 'a t -> exn -> unit
(** Stamp the exchange with a fatal exception and wake every waiter.
    First exception wins; later poisons keep the original. *)
