module S = Cards_serve.Serve
module T = Cards_serve.Tenant
module A = Cards_serve.Admission
module F = Cards_net.Fabric
module Rng = Cards_util.Rng

(* The parallel serving engine: tenants execute on a pool of OCaml 5
   domains under their own local virtual clocks, while the calling
   domain replays the exact sequential DRR schedule ([Serve.drive])
   with "execute now" swapped for "commit the worker's next completion
   record".

   Why the merged schedule is bit-identical to sequential: a tenant's
   execution results (return values, measured costs, outputs, fabric
   effects) are independent of the serving clock — the PR 9 isolation
   invariant, proved by the tenant-isolation differential oracle — so
   workers may run arbitrarily far ahead.  Every scheduling decision
   in [Serve.drive] depends only on the arrival streams, the committed
   prefix, and the costs the commits return; the blocking pop on a
   tenant's record stream IS the conservative lookahead barrier — the
   coordinator cannot advance onto a dispatch whose record does not
   exist yet, and records commit in per-tenant FIFO order.  Real
   interleaving can therefore change only wall-clock time, never the
   virtual-time schedule. *)

(* One committed dispatch, as merged by the sequenced coordinator. *)
type commit_ev = { c_tenant : int; c_ix : int; c_cost : int }

type trace = {
  per_tenant : F.port_event list array;
      (** each tenant's wire-event stream in its local virtual time *)
  merged : (int * commit_ev) list;
      (** the commit schedule merged in serving-clock order by
          {!Coordinator} (nondecreasing times, asserted) *)
}

let assignment ~n ~domains =
  let d = max 1 (min domains n) in
  Array.init n (fun i -> i mod d)

(* Per-domain perturbation stream: an artificial, seeded spin delay
   before every build/exec step, so the stress suite can randomize the
   real interleaving and assert the virtual-time results don't move. *)
let perturb_delay rng perturb =
  if perturb > 0 then
    for _ = 1 to Rng.int rng perturb do
      Domain.cpu_relax ()
    done

let run_internal ~perturb ~window ~trace_fabric ~domains (cfg : S.config)
    (specs : T.spec array) =
  let n = Array.length specs in
  if n = 0 then invalid_arg "Engine.run: no tenants";
  if domains < 1 then invalid_arg "Engine.run: domains must be >= 1";
  if window < 1 then invalid_arg "Engine.run: window must be >= 1";
  let assign = assignment ~n ~domains in
  let d = 1 + Array.fold_left max 0 assign in
  (* Admission: each tenant's pin share is budget/n, exactly as in the
     sequential path — there [pin_share = min share available], but
     the k-budget planner never grants more than its budget, so by
     induction [available >= budget - i*share >= share] before every
     grant and the min always resolves to [share].  Shares therefore
     need no cross-tenant sequencing, which is what lets tenants build
     in parallel; the admission sum is still checked below. *)
  let share = cfg.S.pin_budget / n in
  (* The MiniC compiler keeps process-global pass counters, so every
     tenant is compiled here, sequentially, before any domain spawns;
     workers get pre-compiled preps and do only tenant-private work. *)
  let preps =
    Array.map
      (fun spec ->
        T.prepare ~trace_fabric ~base:cfg.S.base ~engine:cfg.S.engine
          ~pin_share:share spec)
      specs
  in
  let vclock = Vclock.create n in
  let ready : (int * T.t) Mailbox.t =
    Mailbox.create ~streams:n ~capacity:1
  in
  let execs : T.exec Mailbox.t =
    Mailbox.create ~streams:n ~capacity:window
  in
  let poison_all e =
    Mailbox.poison ready e;
    Mailbox.poison execs e
  in
  let worker w () =
    try
      let rng =
        Rng.create ((perturb * 0x1000193) lxor (w * 0x9e3779b9) lxor 0x5bd1)
      in
      let owned = ref [] in
      for i = n - 1 downto 0 do
        if assign.(i) = w then owned := i :: !owned
      done;
      (* Build phase: each tenant comes up on its own domain, then is
         handed to the coordinator through the ready exchange (which
         also publishes the memory writes). *)
      let slots =
        Array.of_list
          (List.map
             (fun i ->
               perturb_delay rng perturb;
               let t = T.build preps.(i) in
               Vclock.publish vclock i (T.local_clock t);
               if T.exec_remaining t = 0 then Vclock.retire vclock i;
               Mailbox.push ready i (i, t);
               (i, t))
             !owned)
      in
      let pending = Array.make (Array.length slots) None in
      let finished () =
        let f = ref true in
        Array.iteri
          (fun k (_, t) ->
            if pending.(k) <> None || T.exec_remaining t > 0 then f := false)
          slots;
        !f
      in
      (* Exec phase: run ahead of the serving clock, round-robin over
         owned tenants.  try_push keeps a multi-tenant worker from
         blocking on one full stream while another could progress; it
         sleeps (wait_room) only when every unflushed stream is full —
         and the coordinator being blocked on some tenant means that
         tenant's stream is empty, so its owner always has room:
         someone always makes progress. *)
      while not (finished ()) do
        let progress = ref false in
        let stuck = ref [] in
        Array.iteri
          (fun k (i, t) ->
            (match pending.(k) with
             | Some e ->
               if Mailbox.try_push execs i e then begin
                 pending.(k) <- None;
                 progress := true
               end
             | None -> ());
            if pending.(k) = None && T.exec_remaining t > 0 then begin
              perturb_delay rng perturb;
              let e = T.exec_next t in
              (* Publish the horizon before the record can be popped:
                 the coordinator's barrier check reads it. *)
              Vclock.publish vclock i (T.local_clock t);
              if T.exec_remaining t = 0 then Vclock.retire vclock i;
              if Mailbox.try_push execs i e then progress := true
              else pending.(k) <- Some e
            end;
            if pending.(k) <> None then stuck := i :: !stuck)
          slots;
        if (not !progress) && !stuck <> [] then Mailbox.wait_room execs !stuck
      done
    with
    | Mailbox.Poisoned _ -> ()
    | e -> poison_all e
  in
  let workers = Array.init d (fun w -> Domain.spawn (worker w)) in
  let finish () = Array.iter Domain.join workers in
  match
    let tenants =
      Array.init n (fun i ->
          let j, t = Mailbox.pop ready i in
          assert (j = i);
          t)
    in
    let adm = A.create ~budget_bytes:cfg.S.pin_budget in
    Array.iter
      (fun t ->
        if not (A.admit adm ~bytes:(T.pinned_granted t)) then
          failwith "Engine.run: planner exceeded its admission share")
      tenants;
    let merge : commit_ev Coordinator.t = Coordinator.create ~streams:n in
    let serve i ~now =
      let e = Mailbox.pop execs i in
      let cost = T.commit tenants.(i) ~now e in
      (* Lookahead-barrier invariant: the producing domain's published
         clock has passed every record the coordinator commits. *)
      let floor = T.setup_cycles tenants.(i) + T.service_cycles tenants.(i) in
      if Vclock.horizon vclock i < floor then
        raise
          (Coordinator.Barrier_violation
             (Printf.sprintf
                "tenant %d committed past its producer's horizon (%d < %d)" i
                (Vclock.horizon vclock i) floor));
      Coordinator.submit merge ~stream:i ~time:now
        { c_tenant = i; c_ix = e.T.e_ix; c_cost = cost };
      cost
    in
    let result =
      S.drive cfg ~tenants ~pin_admitted:(A.admitted_bytes adm) ~serve
    in
    for i = 0 to n - 1 do
      Coordinator.close merge ~stream:i
    done;
    (* Draining replays the commit schedule through the conservative
       merge, asserting it is monotone in serving time. *)
    let merged = List.map (fun (t, _, ev) -> (t, ev)) (Coordinator.drain merge) in
    let per_tenant = Array.map T.fabric_events tenants in
    (result, { per_tenant; merged })
  with
  | out ->
    finish ();
    out
  | exception Mailbox.Poisoned e ->
    finish ();
    raise e
  | exception e ->
    poison_all e;
    finish ();
    raise e

let run ?(perturb = 0) ?(window = 64) ~domains cfg specs =
  fst (run_internal ~perturb ~window ~trace_fabric:false ~domains cfg specs)

let run_traced ?(perturb = 0) ?(window = 64) ~domains cfg specs =
  run_internal ~perturb ~window ~trace_fabric:true ~domains cfg specs

(* Sequential reference with fabric tracing: identical to [Serve.run]
   (same admission arithmetic, same drive loop, same serve_next) plus
   the pure port observers — the differential tests' other arm. *)
let seq_traced (cfg : S.config) (specs : T.spec array) =
  let n = Array.length specs in
  if n = 0 then invalid_arg "Engine.seq_traced: no tenants";
  let adm = A.create ~budget_bytes:cfg.S.pin_budget in
  let share = cfg.S.pin_budget / n in
  let tenants =
    Array.map
      (fun spec ->
        let t =
          T.create ~trace_fabric:true ~base:cfg.S.base ~engine:cfg.S.engine
            ~pin_share:(min share (A.available adm))
            spec
        in
        if not (A.admit adm ~bytes:(T.pinned_granted t)) then
          failwith "Engine.seq_traced: planner exceeded its admission share";
        t)
      specs
  in
  let result =
    S.drive cfg ~tenants ~pin_admitted:(A.admitted_bytes adm)
      ~serve:(fun i ~now -> T.serve_next tenants.(i) ~now)
  in
  (result, Array.map T.fabric_events tenants)
