(** Conservative k-way merge of per-stream timestamped event queues —
    the sequenced fabric coordinator, kept pure (no domains, no locks)
    so its barrier logic is directly property-testable.

    Streams promise nondecreasing timestamps per stream.  An event is
    {e ready} only when no other stream can still produce a strictly
    older one: a stream's lower bound is its head event if any, its
    last submitted time while open-and-empty, and +inf once closed and
    drained.  Ready events pop in (time, stream) order, so the merged
    sequence is a pure function of the submitted streams, independent
    of the real-time arrival order — the virtual-time determinism the
    parallel engine rests on. *)

exception Barrier_violation of string
(** A stream ran behind its own promise, or the merge clock would move
    backwards — the conservative barrier has been broken. *)

type 'a t

val create : streams:int -> 'a t
(** @raise Invalid_argument when [streams < 1]. *)

val streams : 'a t -> int

val submit : 'a t -> stream:int -> time:int -> 'a -> unit
(** Append an event to one stream.
    @raise Barrier_violation on a backwards [time] within the stream.
    @raise Invalid_argument on a closed stream. *)

val close : 'a t -> stream:int -> unit
(** The stream will produce no further events: its bound becomes +inf
    once drained, releasing events it was holding back. *)

val clock : 'a t -> int
(** Time of the last popped event ([min_int] before the first). *)

val pending : 'a t -> int
(** Events submitted but not yet popped. *)

val pop_ready : 'a t -> (int * int * 'a) option
(** Pop the next ready event as [(time, stream, event)], or [None]
    when no event is provably safe yet (more submissions or closes are
    needed).  Never yields an event older than {!clock}.
    @raise Barrier_violation if the merge clock would move backwards
    (cannot happen while stream promises hold). *)

val drain : 'a t -> (int * int * 'a) list
(** Pop everything; all streams must be closed.
    @raise Invalid_argument while any stream is open. *)
