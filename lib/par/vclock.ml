(* Per-stream virtual-clock horizons, shared across domains through
   Atomics.  Each worker publishes how far its stream's local virtual
   time has advanced; the coordinator reads horizons to check the
   conservative-barrier invariant (it never commits a record its
   producer's clock has not passed) and to compute the GVT-style lower
   bound.  A retired stream drops out of the bound (it will never
   produce another event). *)

type t = {
  horizons : int Atomic.t array;
  active : bool Atomic.t array;
}

let create n =
  if n < 1 then invalid_arg "Vclock.create: need at least one stream";
  { horizons = Array.init n (fun _ -> Atomic.make 0);
    active = Array.init n (fun _ -> Atomic.make true) }

let streams t = Array.length t.horizons

let check t i =
  if i < 0 || i >= Array.length t.horizons then
    invalid_arg (Printf.sprintf "Vclock: bad stream %d" i)

(* Monotonic publish: local virtual time never runs backwards, so a
   horizon that did would mean the producer itself is broken — fail
   loudly rather than let the barrier go optimistic. *)
let publish t i now =
  check t i;
  let h = t.horizons.(i) in
  let cur = Atomic.get h in
  if now < cur then
    invalid_arg
      (Printf.sprintf "Vclock.publish: stream %d moved backwards (%d < %d)"
         i now cur);
  Atomic.set h now

let horizon t i =
  check t i;
  Atomic.get t.horizons.(i)

let retire t i =
  check t i;
  Atomic.set t.active.(i) false

let active t i =
  check t i;
  Atomic.get t.active.(i)

(* Global lower bound over the still-active streams: no active stream
   can produce an event strictly older than this.  [max_int] when all
   streams have retired. *)
let gvt t =
  let bound = ref max_int in
  for i = 0 to Array.length t.horizons - 1 do
    if Atomic.get t.active.(i) then
      bound := min !bound (Atomic.get t.horizons.(i))
  done;
  !bound
