(* A set of bounded FIFO streams behind one mutex + condition — the
   engine's worker→coordinator exchange.  One lock for all streams is
   deliberate: each push/pop brackets an entire interpreted request
   (tens of thousands of simulated cycles of real work), so the
   critical sections are vanishingly short next to what they separate,
   and a single condition keeps the wakeup logic trivially correct.

   Deadlock-freedom with multi-tenant workers: a worker that owns
   several streams uses {!try_push} round-robin and falls back to
   {!wait_room} over all of them, so it blocks only when every owned
   stream is full; the coordinator drains exactly one stream at a
   time, and the stream it blocks on is by definition empty — its
   owner therefore always has room to push, so someone always makes
   progress.

   Poison: a failing domain stamps the whole exchange with its
   exception; every blocked or future operation re-raises it (wrapped
   in {!Poisoned}) instead of hanging the run. *)

exception Poisoned of exn

type 'a t = {
  lock : Mutex.t;
  cond : Condition.t;
  queues : 'a Queue.t array;
  capacity : int;
  mutable poison : exn option;
}

let create ~streams ~capacity =
  if streams < 1 then invalid_arg "Mailbox.create: need at least one stream";
  if capacity < 1 then invalid_arg "Mailbox.create: capacity must be positive";
  { lock = Mutex.create ();
    cond = Condition.create ();
    queues = Array.init streams (fun _ -> Queue.create ());
    capacity;
    poison = None }

let streams t = Array.length t.queues
let capacity t = t.capacity

let check t i =
  if i < 0 || i >= Array.length t.queues then
    invalid_arg (Printf.sprintf "Mailbox: bad stream %d" i)

let check_poison t =
  match t.poison with None -> () | Some e -> raise (Poisoned e)

let locked t f =
  Mutex.lock t.lock;
  match f () with
  | v -> Mutex.unlock t.lock; v
  | exception e -> Mutex.unlock t.lock; raise e

let length t i =
  check t i;
  locked t (fun () -> Queue.length t.queues.(i))

let try_push t i v =
  check t i;
  locked t (fun () ->
      check_poison t;
      if Queue.length t.queues.(i) >= t.capacity then false
      else begin
        Queue.push v t.queues.(i);
        Condition.broadcast t.cond;
        true
      end)

let push t i v =
  check t i;
  locked t (fun () ->
      check_poison t;
      while Queue.length t.queues.(i) >= t.capacity do
        Condition.wait t.cond t.lock;
        check_poison t
      done;
      Queue.push v t.queues.(i);
      Condition.broadcast t.cond)

(* Block until at least one of [streams] has room (or the exchange is
   poisoned).  Returns immediately when the list is empty — a worker
   with nothing left to produce must not sleep here. *)
let wait_room t is =
  List.iter (check t) is;
  if is <> [] then
    locked t (fun () ->
        check_poison t;
        let room () =
          List.exists (fun i -> Queue.length t.queues.(i) < t.capacity) is
        in
        while not (room ()) do
          Condition.wait t.cond t.lock;
          check_poison t
        done)

let pop t i =
  check t i;
  locked t (fun () ->
      check_poison t;
      while Queue.is_empty t.queues.(i) do
        Condition.wait t.cond t.lock;
        check_poison t
      done;
      let v = Queue.pop t.queues.(i) in
      Condition.broadcast t.cond;
      v)

let poison t e =
  locked t (fun () ->
      if t.poison = None then t.poison <- Some e;
      Condition.broadcast t.cond)
