(* Conservative k-way merge of per-stream timestamped event queues —
   the sequenced fabric coordinator's core, kept pure (no domains, no
   locks) so qcheck can hammer the barrier logic directly.

   Each stream promises nondecreasing timestamps (the fabric's
   per-direction monotone-now guard provides this for wire events).
   An event is ready only when its time is <= every other stream's
   bound, where a stream's bound is its head event, or its last
   submitted time while open and empty (it may still produce an equal
   or later event), or +inf once closed and drained.  Ready events pop
   in (time, stream index) order, so ties break deterministically and
   the merged output is a pure function of the submitted streams —
   never of the real-time order submissions happened to arrive in. *)

exception Barrier_violation of string

type 'a t = {
  queues : (int * 'a) Queue.t array;
  last : int array;        (* last submitted time per stream *)
  closed : bool array;
  mutable clock : int;     (* time of the last popped event *)
  mutable pending : int;
}

let create ~streams =
  if streams < 1 then invalid_arg "Coordinator.create: need a stream";
  { queues = Array.init streams (fun _ -> Queue.create ());
    last = Array.make streams min_int;
    closed = Array.make streams false;
    clock = min_int;
    pending = 0 }

let streams t = Array.length t.queues

let check t i =
  if i < 0 || i >= Array.length t.queues then
    invalid_arg (Printf.sprintf "Coordinator: bad stream %d" i)

let submit t ~stream ~time v =
  check t stream;
  if t.closed.(stream) then
    invalid_arg (Printf.sprintf "Coordinator.submit: stream %d closed" stream);
  if time < t.last.(stream) then
    raise
      (Barrier_violation
         (Printf.sprintf
            "stream %d submitted time %d behind its own %d" stream time
            t.last.(stream)));
  t.last.(stream) <- time;
  Queue.push (time, v) t.queues.(stream);
  t.pending <- t.pending + 1

let close t ~stream =
  check t stream;
  t.closed.(stream) <- true

let clock t = t.clock
let pending t = t.pending

(* A stream's lower bound on everything it may still produce. *)
let bound t i =
  if not (Queue.is_empty t.queues.(i)) then fst (Queue.peek t.queues.(i))
  else if t.closed.(i) then max_int
  else t.last.(i)

let pop_ready t =
  let n = Array.length t.queues in
  (* Best head among non-empty streams, (time, index) order. *)
  let best = ref (-1) in
  let best_time = ref max_int in
  for i = n - 1 downto 0 do
    if not (Queue.is_empty t.queues.(i)) then begin
      let time = fst (Queue.peek t.queues.(i)) in
      if time <= !best_time then begin
        best := i;
        best_time := time
      end
    end
  done;
  if !best < 0 then None
  else begin
    (* Conservative barrier: commit only when no other stream can
       still produce something strictly older. *)
    let safe = ref true in
    for i = 0 to n - 1 do
      if i <> !best && bound t i < !best_time then safe := false
    done;
    if not !safe then None
    else begin
      let time, v = Queue.pop t.queues.(!best) in
      t.pending <- t.pending - 1;
      if time < t.clock then
        raise
          (Barrier_violation
             (Printf.sprintf "merged clock moved backwards (%d < %d)" time
                t.clock));
      t.clock <- time;
      Some (time, !best, v)
    end
  end

let drain t =
  Array.iteri
    (fun i closed ->
      if not closed then
        invalid_arg
          (Printf.sprintf "Coordinator.drain: stream %d still open" i))
    t.closed;
  let rec go acc =
    match pop_ready t with
    | Some ev -> go (ev :: acc)
    | None -> List.rev acc
  in
  let out = go [] in
  assert (t.pending = 0);
  out
