(** Causal spans: per-request lifecycle records with parent edges.

    The aggregate profiler ({!Profile}) and the stall ledger
    ({!Attribution}) answer "which bucket is biggest?"; spans answer
    "which chain of fetches bounds *this* request?".  Every fabric
    transfer the runtime stalls on (and every prefetch it overlaps)
    becomes one span carrying the transfer's phase split — the
    queued/qp/proto/wire timestamps {!Cards_net.Fabric.transfer} has
    recorded since the fabric model landed — plus the access site and
    a causal parent edge:

    - a prefetch or batch span points at the access span that
      triggered the prefetcher ({!E_trigger});
    - a batch member points at its batch ({!E_member});
    - a retry span points at the demand fetch it delayed ({!E_retry});
    - a late-settle or timely-hit span points at the prefetch span it
      consumed ({!E_satisfy});
    - a demand fetch issued by a clean-fault trap handler points at
      the trap span ({!E_trap}).

    Parent ids are allocated before child ids (the demand root id
    exists before its retry children, the batch id before its
    members, the trap id before the nested fetch), so the edge
    relation is acyclic by construction: [sp_parent < sp_id] always,
    and one forward pass in id order suffices for chain costs
    ({!Critical_path}).

    Reconciliation invariant (extends the ledger exactness invariant
    to the causal layer): over the stall-carrying span kinds, each
    phase sums to exactly the ledger's corresponding cause total when
    the sample rate is 1.0, and to at most it otherwise —

      {ul
      {- [sp_queued] over {!Demand}/{!Escalated} spans per QP
         = [Attribution.Queue qp];}
      {- [sp_proto] / [sp_wire] over {!Demand}/{!Escalated}
         = [Proto] / [Wire];}
      {- [sp_retry] over {!Retry} spans = [Retry];}
      {- [sp_pf_wait] over {!Pf_settle} spans = [Pf_wait];}
      {- [sp_trap] over {!Trap} spans = [Trap].}}

    [Guard_exec] and [Bookkeeping] are per-instruction CPU costs, not
    fetch-path phases, and have no span counterpart.  {!Prefetch},
    {!Batch} and {!Pf_hit} spans carry fabric occupancy (or nothing)
    rather than CPU stall: their phase fields exist for timeline
    rendering but are excluded from {!cpu_totals}.

    Collection is sampled at a configurable rate with a deterministic
    accumulator (no RNG, so runs stay reproducible) and costs nothing
    when off: the runtime holds [collector option] and every hook is
    behind one [match] on it. *)

type kind =
  | Demand  (** a demand fetch the CPU stalled on, served normally *)
  | Escalated  (** a demand fetch that exhausted retries and was
                   served by the reliable channel *)
  | Retry  (** one failed attempt of a demand fetch: the NACK
               turnaround or timeout budget plus the backoff wait *)
  | Prefetch  (** one prefetched object in flight (standalone or a
                  batch member); fabric occupancy, not CPU stall *)
  | Batch  (** a coalesced prefetch request covering its members *)
  | Pf_settle  (** an access that stalled waiting for an in-flight
                   prefetch to land (the late-prefetch case) *)
  | Pf_hit  (** an access satisfied by a timely prefetch — zero
                stall, recorded for the causal chain only *)
  | Trap  (** a clean-fault trap on the unguarded path *)

type edge =
  | E_trigger  (** prefetch/batch <- the access that ran the prefetcher *)
  | E_member  (** batch member <- its batch span *)
  | E_retry  (** retry attempt <- the demand fetch it delayed *)
  | E_satisfy  (** settle/hit <- the prefetch span it consumed *)
  | E_trap  (** demand fetch <- the trap span whose handler issued it *)

type t = {
  sp_id : int;
  sp_kind : kind;
  sp_parent : int;  (** parent span id, [-1] for roots *)
  sp_edge : edge option;  (** [None] iff [sp_parent = -1] *)
  sp_ds : int;  (** data-structure handle, [0] = unmanaged *)
  sp_obj : int;
  sp_fn : string;  (** access site: function ... *)
  sp_block : int;  (** ... block ... *)
  sp_instr : int;  (** ... instruction *)
  sp_issued : int;  (** cycle the occasion began (queue entry) *)
  sp_start : int;  (** cycle the transfer left the queue *)
  sp_complete : int;  (** cycle the span's cost was fully paid *)
  sp_queued : int;  (** QP queueing cycles *)
  sp_proto : int;  (** protocol + deref-map cycles *)
  sp_wire : int;  (** serialization / wire cycles *)
  sp_retry : int;  (** retry/backoff cycles ({!Retry} spans only) *)
  sp_pf_wait : int;  (** late-prefetch wait ({!Pf_settle} only) *)
  sp_trap : int;  (** trap penalty ({!Trap} spans only) *)
  sp_qp : int;  (** queue pair, [-1] when no transfer was involved *)
  sp_bytes : int;
  sp_fault : string option;  (** fault kind the transfer absorbed *)
}

val kind_name : kind -> string
val edge_name : edge -> string

val stall : t -> int
(** Sum of the six phase fields: the CPU cycles this span explains. *)

(** {1 Collector} *)

type collector

val create : ?rate:float -> unit -> collector
(** [rate] (default 1.0, clamped to \[0, 1\]) is the fraction of
    top-level occasions recorded, via a deterministic accumulator:
    rate 1.0 records everything, 0.5 every other occasion. *)

val rate : collector -> float

val sampled : collector -> bool
(** One sampling decision.  The runtime calls this once per occasion
    (a whole demand fetch including its retries, one prefetcher
    issue, one settle), never per span, so chains are recorded or
    skipped atomically. *)

val fresh : collector -> int
(** Allocate the next span id.  Ids are dense and increasing; parents
    must be allocated before children. *)

val add : collector -> t -> unit
(** Record a completed span (and notify the listener, if any). *)

val length : collector -> int
val spans : collector -> t list
(** In completion (add) order, which is not id order: a demand root's
    id is allocated before its retry children but added after them. *)

val iter : (t -> unit) -> collector -> unit

val set_listener : collector -> (t -> unit) -> unit
(** Called on every {!add}; how {!Sink} subscribes the flight
    recorder without a module cycle. *)

(** {1 In-flight prefetch registry}

    Maps [(ds, obj)] of an in-flight prefetch to its span id so the
    eventual settle/hit span can name its {!E_satisfy} parent. *)

val note_inflight : collector -> ds:int -> obj:int -> span:int -> unit
val take_inflight : collector -> ds:int -> obj:int -> int
(** Consume the registration; [-1] when the prefetch occasion was not
    sampled (or the mapping was superseded). *)

(** {1 Reconciliation and well-formedness} *)

type totals = {
  tot_queue : int array;  (** indexed by QP; grows as needed *)
  tot_proto : int;
  tot_wire : int;
  tot_retry : int;
  tot_pf_wait : int;
  tot_trap : int;
}

val cpu_totals : collector -> totals
(** Per-phase sums over the stall-carrying kinds only (see module
    doc); compare against {!Attribution.cause_totals}. *)

val well_formed : collector -> bool
(** Ids unique, every parent edge strictly backwards
    ([-1 <= sp_parent < sp_id]) and pointing at an allocated id, and
    [sp_edge] present iff there is a parent: the acyclicity the
    critical-path pass relies on. *)
