(* Stall root-cause attribution: a ledger decomposing every stalled
   CPU cycle into exclusive causes, keyed per data structure AND per
   access site (function, basic block, instruction index — the
   identity the guard-insertion rewrite operates on).

   The exactness invariant mirrors the profiler's
   [compute + Σ buckets = total]:

     Σ_{(ds, site)} Σ_cause charge = total stall cycles
                                   = Runtime.now - Profile.compute

   Every runtime clock advance that is not interpreter compute lands
   here exactly once, at its call site, with whatever split the
   fabric exposes (Fabric.transfer's queued/proto/serialization
   decomposition).  Like the profiler, the ledger never writes the
   clock, so attribution is perturbation-free by construction. *)

type cause =
  | Proto
  | Wire
  | Queue of int
  | Pf_wait
  | Retry
  | Guard_exec
  | Trap
  | Bookkeeping

let cause_name = function
  | Proto -> "protocol"
  | Wire -> "wire serialization"
  | Queue qp -> Printf.sprintf "qp%d queueing" qp
  | Pf_wait -> "late-prefetch wait"
  | Retry -> "retry/backoff"
  | Guard_exec -> "guard execution"
  | Trap -> "clean-fault trap"
  | Bookkeeping -> "alloc bookkeeping"

type site = {
  s_fn : string;
  s_block : int;
  s_instr : int;
}

let unknown_site = { s_fn = "(runtime)"; s_block = -1; s_instr = -1 }

let site_name s =
  if s.s_block < 0 then s.s_fn
  else Printf.sprintf "%s/bb%d#%d" s.s_fn s.s_block s.s_instr

(* One ledger cell per (structure, site) pair.  The queue counters
   grow on demand to the highest QP index charged. *)
type cell = {
  cl_ds : int;
  cl_site : site;
  mutable cl_proto : int;
  mutable cl_wire : int;
  mutable cl_queue : int array;
  mutable cl_pf_wait : int;
  mutable cl_retry : int;
  mutable cl_guard : int;
  mutable cl_trap : int;
  mutable cl_book : int;
}

type t = {
  cells : (int * site, cell) Hashtbl.t;
  (* One-entry memo: consecutive charges overwhelmingly come from the
     same (ds, site) — a guard looping over one access site — so the
     hot path is three int compares and a pointer compare, not a
     hashtable probe. *)
  mutable last : cell option;
  mutable qp_max : int; (* highest QP index ever charged, -1 if none *)
}

let create () = { cells = Hashtbl.create 64; last = None; qp_max = -1 }

let make_cell ds site =
  { cl_ds = ds; cl_site = site; cl_proto = 0; cl_wire = 0;
    cl_queue = [||]; cl_pf_wait = 0; cl_retry = 0; cl_guard = 0;
    cl_trap = 0; cl_book = 0 }

let cell t ~ds ~fn ~block ~instr =
  match t.last with
  | Some c
    when c.cl_ds = ds && c.cl_site.s_block = block
         && c.cl_site.s_instr = instr && c.cl_site.s_fn == fn -> c
  | _ ->
    let site = { s_fn = fn; s_block = block; s_instr = instr } in
    let key = (ds, site) in
    let c =
      match Hashtbl.find_opt t.cells key with
      | Some c -> c
      | None ->
        let c = make_cell ds site in
        Hashtbl.replace t.cells key c;
        c
    in
    t.last <- Some c;
    c

let grow_queue c qp =
  let n = Array.length c.cl_queue in
  if qp >= n then begin
    let nq = Array.make (qp + 1) 0 in
    Array.blit c.cl_queue 0 nq 0 n;
    c.cl_queue <- nq
  end

let charge t ~ds ~fn ~block ~instr cause cycles =
  if cycles <> 0 then begin
    let c = cell t ~ds ~fn ~block ~instr in
    match cause with
    | Proto -> c.cl_proto <- c.cl_proto + cycles
    | Wire -> c.cl_wire <- c.cl_wire + cycles
    | Queue qp ->
      grow_queue c qp;
      if qp > t.qp_max then t.qp_max <- qp;
      c.cl_queue.(qp) <- c.cl_queue.(qp) + cycles
    | Pf_wait -> c.cl_pf_wait <- c.cl_pf_wait + cycles
    | Retry -> c.cl_retry <- c.cl_retry + cycles
    | Guard_exec -> c.cl_guard <- c.cl_guard + cycles
    | Trap -> c.cl_trap <- c.cl_trap + cycles
    | Bookkeeping -> c.cl_book <- c.cl_book + cycles
  end

let cell_queue_total c = Array.fold_left ( + ) 0 c.cl_queue

let cell_total c =
  c.cl_proto + c.cl_wire + cell_queue_total c + c.cl_pf_wait + c.cl_retry
  + c.cl_guard + c.cl_trap + c.cl_book

let total t = Hashtbl.fold (fun _ c acc -> acc + cell_total c) t.cells 0

let causes t =
  let qps = t.qp_max + 1 in
  [ Proto; Wire ]
  @ List.init qps (fun i -> Queue i)
  @ [ Pf_wait; Retry; Guard_exec; Trap; Bookkeeping ]

let cell_cause c = function
  | Proto -> c.cl_proto
  | Wire -> c.cl_wire
  | Queue qp -> if qp < Array.length c.cl_queue then c.cl_queue.(qp) else 0
  | Pf_wait -> c.cl_pf_wait
  | Retry -> c.cl_retry
  | Guard_exec -> c.cl_guard
  | Trap -> c.cl_trap
  | Bookkeeping -> c.cl_book

let fold f t acc = Hashtbl.fold (fun _ c acc -> f acc c) t.cells acc

let cause_totals t =
  List.map
    (fun cause -> (cause, fold (fun acc c -> acc + cell_cause c cause) t 0))
    (causes t)

let ds_cause_totals t ds =
  List.map
    (fun cause ->
      ( cause,
        fold
          (fun acc c -> if c.cl_ds = ds then acc + cell_cause c cause else acc)
          t 0 ))
    (causes t)

let ds_list t =
  let seen = Hashtbl.create 8 in
  Hashtbl.iter (fun _ c -> Hashtbl.replace seen c.cl_ds ()) t.cells;
  List.sort compare (Hashtbl.fold (fun ds () acc -> ds :: acc) seen [])

type site_row = {
  r_site : site;
  r_ds : int;
  r_total : int;
  r_causes : (cause * int) list; (* non-zero, largest first *)
}

let site_rows ?(limit = max_int) t =
  let rows =
    fold
      (fun acc c ->
        let tot = cell_total c in
        if tot = 0 then acc
        else begin
          let cs =
            List.filter_map
              (fun cause ->
                let v = cell_cause c cause in
                if v > 0 then Some (cause, v) else None)
              (causes t)
            |> List.sort (fun (_, a) (_, b) -> compare b a)
          in
          { r_site = c.cl_site; r_ds = c.cl_ds; r_total = tot; r_causes = cs }
          :: acc
        end)
      t []
  in
  let rows =
    List.sort
      (fun a b ->
        let c = compare b.r_total a.r_total in
        if c <> 0 then c
        else compare (a.r_site, a.r_ds) (b.r_site, b.r_ds))
      rows
  in
  List.filteri (fun i _ -> i < limit) rows
