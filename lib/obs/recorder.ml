type t = {
  cap : int;
  pin_cap : int;
  ring : Span.t option array;  (* overwrite ring, newest kept *)
  mutable added : int;
  pinned : (int, Span.t) Hashtbl.t;
  wanted : (int, unit) Hashtbl.t;  (* parent ids awaited for pinning *)
  mutable dropped_pins : int;
  mutable flagged : int;
  mutable last_flagged : Span.t option;
}

let create ?(capacity = 256) () =
  let cap = max 1 capacity in
  { cap;
    pin_cap = 16 * cap;
    ring = Array.make cap None;
    added = 0;
    pinned = Hashtbl.create 64;
    wanted = Hashtbl.create 16;
    dropped_pins = 0;
    flagged = 0;
    last_flagged = None }

let capacity t = t.cap

let ring_length t = min t.added t.cap

let pinned_count t = Hashtbl.length t.pinned

let dropped_pins t = t.dropped_pins

let flagged t = t.flagged

let last_flagged t = t.last_flagged

let needs_pin (s : Span.t) =
  match s.sp_kind with
  | Span.Retry | Span.Escalated | Span.Trap -> true
  | _ -> s.sp_fault <> None

let find_ring t id =
  let n = ring_length t in
  let rec go i =
    if i >= n then None
    else
      match t.ring.((t.added - 1 - i) mod t.cap) with
      | Some s when s.sp_id = id -> Some s
      | _ -> go (i + 1)
  in
  go 0

let retained t id =
  match Hashtbl.find_opt t.pinned id with
  | Some _ as r -> r
  | None -> find_ring t id

(* Pin [s] and as much of its ancestry as is retained; parents that
   have not completed yet go on the wanted-set and are pinned in
   [add] when they arrive. *)
let rec pin t (s : Span.t) =
  if not (Hashtbl.mem t.pinned s.sp_id) then
    if Hashtbl.length t.pinned >= t.pin_cap then
      t.dropped_pins <- t.dropped_pins + 1
    else begin
      Hashtbl.replace t.pinned s.sp_id s;
      if s.sp_parent >= 0 then begin
        match retained t s.sp_parent with
        | Some p -> pin t p
        | None -> Hashtbl.replace t.wanted s.sp_parent ()
      end
    end

let add t s =
  t.ring.(t.added mod t.cap) <- Some s;
  t.added <- t.added + 1;
  if Hashtbl.mem t.wanted s.sp_id then begin
    Hashtbl.remove t.wanted s.sp_id;
    pin t s
  end;
  if needs_pin s then begin
    t.flagged <- t.flagged + 1;
    t.last_flagged <- Some s;
    pin t s
  end

let chain_of t (s : Span.t) =
  let rec up acc (s : Span.t) =
    let acc = s :: acc in
    if s.sp_parent < 0 then acc
    else
      match retained t s.sp_parent with
      | Some p -> up acc p
      | None -> acc
  in
  up [] s

let ring_newest_first t =
  let n = ring_length t in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      match t.ring.((t.added - 1 - i) mod t.cap) with
      | Some s -> go (i + 1) (s :: acc)
      | None -> go (i + 1) acc
  in
  go 0 []

let pp_span b ~names (s : Span.t) =
  Printf.bprintf b
    "    #%d %-9s %-12s obj %-6d %s@%d.%d  %d..%d (%d cy" s.Span.sp_id
    (Span.kind_name s.sp_kind) (names s.sp_ds) s.sp_obj s.sp_fn s.sp_block
    s.sp_instr s.sp_issued s.sp_complete
    (Span.stall s);
  let ph name v = if v > 0 then Printf.bprintf b " %s=%d" name v in
  ph "queued" s.sp_queued;
  ph "proto" s.sp_proto;
  ph "wire" s.sp_wire;
  ph "retry" s.sp_retry;
  ph "pf-wait" s.sp_pf_wait;
  ph "trap" s.sp_trap;
  if s.sp_qp >= 0 then Printf.bprintf b " qp%d" s.sp_qp;
  (match s.sp_fault with
  | Some f -> Printf.bprintf b " fault:%s" f
  | None -> ());
  (match s.sp_edge with
  | Some e -> Printf.bprintf b " %s->#%d" (Span.edge_name e) s.sp_parent
  | None -> ());
  Buffer.add_string b ")\n"

let postmortem ?(reason = "post-mortem requested") ?degrade_level ~names t =
  let b = Buffer.create 1024 in
  Printf.bprintf b "-- flight recorder post-mortem: %s\n" reason;
  (match degrade_level with
  | Some l -> Printf.bprintf b "   degradation window: level %d\n" l
  | None -> ());
  Printf.bprintf b
    "   %d spans retained (%d ring + %d pinned), %d flagged%s\n"
    (ring_length t + pinned_count t)
    (ring_length t) (pinned_count t) t.flagged
    (if t.dropped_pins > 0 then
       Printf.sprintf ", %d pins dropped" t.dropped_pins
     else "");
  (match t.last_flagged with
  | None -> Buffer.add_string b "   no flagged span: nothing retried, escalated or trapped\n"
  | Some s ->
    Printf.bprintf b "   causal chain of last flagged span (#%d, %s):\n"
      s.sp_id (Span.kind_name s.sp_kind);
    let chain = chain_of t s in
    List.iter (pp_span b ~names) chain;
    (* The chain only walks ancestors; the trouble usually hangs off
       the root as children (retries of an escalated fetch), and those
       stay pinned long after the ring moves on — show them too. *)
    let in_chain id = List.exists (fun (c : Span.t) -> c.sp_id = id) chain in
    let rest =
      Hashtbl.fold (fun _ p acc -> if in_chain p.Span.sp_id then acc else p :: acc)
        t.pinned []
      |> List.sort (fun (a : Span.t) b -> compare b.sp_id a.sp_id)
    in
    if rest <> [] then begin
      let shown = min (List.length rest) 16 in
      Printf.bprintf b "   pinned trouble spans (%d of %d):\n" shown
        (List.length rest);
      List.iteri (fun i p -> if i < shown then pp_span b ~names p) rest
    end);
  let tail = ring_newest_first t in
  let n = List.length tail in
  let shown = min n 16 in
  Printf.bprintf b "   last %d completed spans (of %d retained):\n" shown n;
  List.iteri (fun i s -> if i < shown then pp_span b ~names s) tail;
  Buffer.contents b
