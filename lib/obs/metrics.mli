(** Epoch-based time-series metrics.

    Every [interval] simulated cycles the runtime appends one sample
    per live data structure: cumulative counters plus gauges (resident
    bytes, active prefetcher).  Exporters diff consecutive samples to
    plot rates — fault rate, prefetch accuracy over time — which is
    how the adaptive prefetcher's mid-run policy switches become
    visible instead of being averaged away in end-of-run totals. *)

type sample = {
  m_cycle : int;            (** sample time (simulated cycles) *)
  m_ds : int;               (** handle *)
  m_name : string;          (** static name of the structure *)
  m_resident_bytes : int;   (** pinned + cache-resident bytes *)
  m_guards : int;           (** cumulative counters follow *)
  m_guard_hits : int;
  m_remote_faults : int;
  m_clean_faults : int;
  m_pf_issued : int;
  m_pf_used : int;
  m_pf_late : int;
  m_evictions : int;
  m_fetched_bytes : int;    (** bytes fetched for this structure so far *)
  m_prefetcher : string;    (** active prefetcher ("off" when none) *)
  m_pf_switches : int;      (** adaptive policy switches so far *)
}

type t

val default_interval : int
(** 250 K cycles ≈ 100 µs at 2.4 GHz. *)

val create : ?interval:int -> unit -> t

val interval : t -> int

val due : t -> now:int -> bool
(** True when the clock has crossed the next sampling boundary. *)

val record : t -> sample -> unit

val catch_up : t -> now:int -> unit
(** Advance the sampling deadline past [now] (the simulated clock
    jumps, so multiple intervals may have elapsed). *)

val samples : t -> sample list
(** In recording order: grouped bursts of one sample per structure,
    bursts in increasing cycle order. *)

val n_samples : t -> int
