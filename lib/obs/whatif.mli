(** What-if causal profiler: virtual speedups from the span graph.

    Coz-style causal profiling asks "how much faster would the whole
    run be if {e this} got faster?" and answers it by experiment.
    Because our fabric is a deterministic discrete-event simulator we
    can do both halves honestly: {!predict} replays the recorded span
    graph ({!Span}) under perturbed phase costs and computes the
    end-to-end cycle count analytically, and the runtime knobs
    ({!Cards_runtime.Runtime.whatif_config} from an {!exec}) re-run
    the {e same} program with the parameter actually changed so the
    prediction can be validated against reality — the bench [whatif]
    section asserts identity-exactness, directional agreement, and a
    bounded relative error on every catalog scenario.

    Prediction model (one forward pass over spans in id order, the
    same order {!Critical_path} uses):

    - Each span's recorded phases are re-priced by the scenario's
      factors.  CPU-stall spans ([Demand]/[Escalated]/[Retry]/
      [Pf_settle]/[Trap]) contribute the difference between old and
      new stall to a running signed [cpu_shift]: the amount by which
      the CPU timeline has moved earlier (positive) or later.
    - Fabric occupancy is respected per QP: a span that was queued
      re-derives its queue wait from when its QP frees up under the
      new cost regime (tracked as a per-QP delta against the recorded
      schedule), so "queue ×0" and "proto ×0.5" interact the way the
      real fabric makes them interact.
    - Prefetch/batch spans don't stall the CPU, but their new
      completion times are tracked so that [Pf_settle] spans re-derive
      their wait from when the prefetch {e now} lands relative to when
      the access {e now} happens — a faster wire shrinks late-prefetch
      waits without being asked to.
    - The identity scenario (every factor 1.0) produces zero shift
      everywhere and therefore predicts the measured run {e exactly};
      this is asserted, not hoped for.

    Known approximations (DESIGN.md §11): spans are replayed in id
    order, not re-scheduled in time order; retry NACK turnarounds hold
    a QP in reality but carry no QP id in the span, so their occupancy
    is not re-derived; second-order effects of timing on {e decisions}
    (eviction order, degradation, adaptive prefetch switching) are
    invisible to replay.  The bench bounds the resulting error. *)

(** {1 Scenarios} *)

type scope =
  | Global        (** perturb every span *)
  | Ds of int     (** perturb only spans of one structure (handle) *)

type factors = {
  f_queued : float;   (** QP queue-wait multiplier *)
  f_proto : float;    (** protocol-cost multiplier *)
  f_wire : float;     (** serialization multiplier *)
  f_retry : float;    (** retry/backoff multiplier *)
  f_pf_wait : float;  (** late-prefetch-wait multiplier *)
  f_trap : float;     (** trap-penalty multiplier *)
}

val unit_factors : factors
(** All 1.0: the identity perturbation. *)

(** How to {e execute} a scenario for real, so predictions can be
    validated by deterministic re-execution.  Interpreted by
    [Runtime.whatif_config], which maps it onto config knobs. *)
type exec =
  | Exec_none
      (** not executable (no runtime knob models it) *)
  | Exec_scale of { eds : string option; proto : float; wire : float }
      (** scaled fabric costs, globally or for one structure (by
          static name); [proto = wire = 1.0] re-runs the baseline *)
  | Exec_qp of int
      (** re-run with this many inbound queue pairs *)
  | Exec_fault_free
      (** re-run with fault injection off *)
  | Exec_instant_prefetch
      (** re-run with prefetch completions landing instantly *)

type scenario = {
  sc_id : string;        (** stable key, e.g. ["proto-x0.5"] *)
  sc_label : string;     (** human description for the report *)
  sc_scope : scope;
  sc_factors : factors;
  sc_exec : exec;
}

val identity : scenario
(** Unit factors, global scope, executed as an unperturbed re-run.
    Predicts the measured cycle count exactly and re-executes
    bit-identically — the calibration row of every report. *)

val scenario_of_factors :
  id:string -> label:string -> ?scope:scope -> ?exec:exec -> factors ->
  scenario

val catalog :
  ?per_ds:int -> names:(int -> string) -> Span.collector -> scenario list
(** The built-in "what should we optimize next?" scenario set:
    identity, [proto ×0.5] (a near-cache RPC path), [wire ×0]
    (infinite bandwidth), [queue ×0] (infinite QPs), [pf_wait ×0]
    (perfect prefetch), [retry ×0] (fault-free fabric) — plus, for the
    [per_ds] (default 2) structures carrying the most recorded CPU
    stall, a per-structure [proto ×0.5] scoped both in prediction (by
    handle) and execution (by the structure name from [names]).  Every
    entry is executable. *)

(** {1 Prediction} *)

type prediction = {
  p_scenario : scenario;
  p_baseline : int;     (** measured end-to-end cycles *)
  p_cycles : int;       (** predicted end-to-end cycles *)
  p_saved : int;        (** [p_baseline - p_cycles] (negative: slower) *)
  p_speedup : float;    (** [p_baseline / p_cycles] *)
  p_chain_stall : int;
      (** predicted critical-chain stall; for the identity scenario
          this equals [Critical_path.analyze]'s [r_chain_stall]
          exactly (asserted by tests) *)
}

val predict : total:int -> Span.collector -> scenario -> prediction
(** Replay the span graph under the scenario's factors.  [total] is
    the measured end-to-end cycle count the baseline run reported. *)

val rank : total:int -> Span.collector -> scenario list -> prediction list
(** Predict every scenario and sort best-first (most cycles saved;
    ties by [sc_id] so the order is deterministic). *)
