module Json = Cards_util.Json
module Table = Cards_util.Table

let pct part total =
  if total <= 0 then "0.0%"
  else Printf.sprintf "%.1f%%" (100.0 *. float_of_int part /. float_of_int total)

(* ---------- JSON-lines ---------- *)

let kind_args (k : Event.kind) : (string * Json.t) list =
  match k with
  | Guard_hit | Guard_miss | Epoch_mark -> []
  | Remote_fault { queued; stall } ->
    [ ("queued", Json.Int queued); ("stall", Json.Int stall) ]
  | Clean_fault { stall } -> [ ("stall", Json.Int stall) ]
  | Prefetch_issue { origin_ds; origin_obj } ->
    [ ("origin_ds", Json.Int origin_ds); ("origin_obj", Json.Int origin_obj) ]
  | Batch_fetch { count; bytes } ->
    [ ("count", Json.Int count); ("bytes", Json.Int bytes) ]
  | Prefetch_use { timely } -> [ ("timely", Json.Bool timely) ]
  | Prefetch_late { wait } -> [ ("wait", Json.Int wait) ]
  | Qp_busy { qp; busy } -> [ ("qp", Json.Int qp); ("busy", Json.Int busy) ]
  | Fault_inject { kind } -> [ ("kind", Json.Str kind) ]
  | Retry_backoff { attempt; wait } ->
    [ ("attempt", Json.Int attempt); ("wait", Json.Int wait) ]
  | Fetch_timeout { budget } -> [ ("budget", Json.Int budget) ]
  | Degrade { level; observed_pct } ->
    [ ("level", Json.Int level); ("observed_pct", Json.Int observed_pct) ]
  | Evict { dirty } -> [ ("dirty", Json.Bool dirty) ]
  | Writeback { bytes } -> [ ("bytes", Json.Int bytes) ]
  | Policy_switch { from_pf; to_pf } ->
    [ ("from", Json.Str from_pf); ("to", Json.Str to_pf) ]
  | Loop_version { clean } -> [ ("clean", Json.Bool clean) ]
  | Call_enter { fn } | Call_exit { fn } -> [ ("fn", Json.Str fn) ]

let event_json (ev : Event.t) =
  Json.Obj
    ([ ("ev", Json.Str (Event.kind_name ev.ev_kind));
       ("cycle", Json.Int ev.ev_cycle);
       ("ds", Json.Int ev.ev_ds);
       ("obj", Json.Int ev.ev_obj) ]
     @ kind_args ev.ev_kind)

let events_jsonl trace =
  let buf = Buffer.create 4096 in
  Trace.iter
    (fun ev ->
      Buffer.add_string buf (Json.to_string (event_json ev));
      Buffer.add_char buf '\n')
    trace;
  Buffer.contents buf

let sample_json (s : Metrics.sample) =
  Json.Obj
    [ ("ev", Json.Str "sample");
      ("cycle", Json.Int s.m_cycle);
      ("ds", Json.Int s.m_ds);
      ("name", Json.Str s.m_name);
      ("resident_bytes", Json.Int s.m_resident_bytes);
      ("guards", Json.Int s.m_guards);
      ("guard_hits", Json.Int s.m_guard_hits);
      ("remote_faults", Json.Int s.m_remote_faults);
      ("clean_faults", Json.Int s.m_clean_faults);
      ("pf_issued", Json.Int s.m_pf_issued);
      ("pf_used", Json.Int s.m_pf_used);
      ("pf_late", Json.Int s.m_pf_late);
      ("evictions", Json.Int s.m_evictions);
      ("fetched_bytes", Json.Int s.m_fetched_bytes);
      ("prefetcher", Json.Str s.m_prefetcher);
      ("pf_switches", Json.Int s.m_pf_switches) ]

let metrics_jsonl metrics =
  let buf = Buffer.create 4096 in
  List.iter
    (fun s ->
      Buffer.add_string buf (Json.to_string (sample_json s));
      Buffer.add_char buf '\n')
    (Metrics.samples metrics);
  Buffer.contents buf

let metrics_csv metrics =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "cycle,ds,name,resident_bytes,guards,guard_hits,remote_faults,\
     clean_faults,pf_issued,pf_used,pf_late,evictions,fetched_bytes,\
     prefetcher,pf_switches\n";
  List.iter
    (fun (s : Metrics.sample) ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%s,%d\n"
           s.m_cycle s.m_ds s.m_name s.m_resident_bytes s.m_guards
           s.m_guard_hits s.m_remote_faults s.m_clean_faults s.m_pf_issued
           s.m_pf_used s.m_pf_late s.m_evictions s.m_fetched_bytes
           s.m_prefetcher s.m_pf_switches))
    (Metrics.samples metrics);
  Buffer.contents buf

(* ---------- Chrome trace_event ---------- *)

(* The trace_event JSON format understood by chrome://tracing and
   Perfetto: an object with a "traceEvents" array; each event has a
   phase "ph" ("X" complete with "dur", "B"/"E" nested spans, "i"
   instants, "M" metadata), microsecond timestamps "ts", and
   process/thread ids.  We map each data structure to its own thread
   row (tid = handle), the interpreter's call stack to tid 0, and each
   inbound fabric queue pair to its own row (tid = qp_tid_base + qp)
   showing occupancy spans — queue contention made visible next to the
   fault spans it causes. *)

let us_of_cycles ~freq_ghz c = float_of_int c /. (freq_ghz *. 1000.0)

(* QP rows sort after every plausible structure handle. *)
let qp_tid_base = 100_000

let chrome_event ~freq_ghz (ev : Event.t) : Json.t =
  let ts = us_of_cycles ~freq_ghz ev.ev_cycle in
  let base name ph tid extra =
    Json.Obj
      ([ ("name", Json.Str name);
         ("cat", Json.Str (Event.category ev.ev_kind));
         ("ph", Json.Str ph);
         ("ts", Json.Float ts);
         ("pid", Json.Int 1);
         ("tid", Json.Int tid) ]
       @ extra)
  in
  let args = ("args", Json.Obj (("obj", Json.Int ev.ev_obj) :: kind_args ev.ev_kind)) in
  match ev.ev_kind with
  | Call_enter { fn } -> base fn "B" 0 []
  | Call_exit { fn } -> base fn "E" 0 []
  | Loop_version _ ->
    base (Event.kind_name ev.ev_kind) "i" 0 [ ("s", Json.Str "t"); args ]
  | Qp_busy { qp; busy } ->
    base "qp_busy" "X" (qp_tid_base + qp)
      [ ("dur", Json.Float (us_of_cycles ~freq_ghz busy)); args ]
  | k -> (
    match Event.duration k with
    | Some dur ->
      base (Event.kind_name k) "X" ev.ev_ds
        [ ("dur", Json.Float (us_of_cycles ~freq_ghz dur)); args ]
    | None ->
      base (Event.kind_name k) "i" ev.ev_ds [ ("s", Json.Str "t"); args ])

let chrome_trace ?(freq_ghz = 2.4) ?names trace =
  let tids = Hashtbl.create 8 in
  Trace.iter
    (fun (ev : Event.t) ->
      let tid =
        match ev.ev_kind with
        | Call_enter _ | Call_exit _ | Loop_version _ -> 0
        | Qp_busy { qp; _ } -> qp_tid_base + qp
        | _ -> ev.ev_ds
      in
      Hashtbl.replace tids tid ())
    trace;
  let thread_name tid =
    let name =
      if tid = 0 then "interpreter"
      else if tid >= qp_tid_base then
        Printf.sprintf "qp%d inbound" (tid - qp_tid_base)
      else
        match names with
        | Some f -> f tid
        | None -> Printf.sprintf "ds %d" tid
    in
    Json.Obj
      [ ("name", Json.Str "thread_name");
        ("ph", Json.Str "M");
        ("pid", Json.Int 1);
        ("tid", Json.Int tid);
        ("args", Json.Obj [ ("name", Json.Str name) ]) ]
  in
  let meta =
    Json.Obj
      [ ("name", Json.Str "process_name");
        ("ph", Json.Str "M");
        ("pid", Json.Int 1);
        ("args", Json.Obj [ ("name", Json.Str "CaRDS simulated run") ]) ]
  in
  let metas =
    meta
    :: (Hashtbl.fold (fun tid () acc -> tid :: acc) tids []
        |> List.sort compare
        |> List.map thread_name)
  in
  let evs = List.map (chrome_event ~freq_ghz) (Trace.to_list trace) in
  Json.Obj
    [ ("traceEvents", Json.List (metas @ evs));
      ("displayTimeUnit", Json.Str "ms");
      ("otherData",
       Json.Obj
         [ ("tool", Json.Str "cards");
           ("clock", Json.Str (Printf.sprintf "%.1f GHz simulated" freq_ghz));
           ("dropped_events", Json.Int (Trace.dropped trace)) ]) ]

let chrome_trace_string ?freq_ghz ?names trace =
  Json.to_string (chrome_trace ?freq_ghz ?names trace)

(* ---------- causal spans ---------- *)

let span_json (s : Span.t) =
  Json.Obj
    ([ ("span", Json.Int s.sp_id);
       ("kind", Json.Str (Span.kind_name s.sp_kind)) ]
     @ (if s.sp_parent >= 0 then
          [ ("parent", Json.Int s.sp_parent);
            ("edge",
             Json.Str
               (match s.sp_edge with
               | Some e -> Span.edge_name e
               | None -> "?")) ]
        else [])
     @ [ ("ds", Json.Int s.sp_ds);
         ("obj", Json.Int s.sp_obj);
         ("site",
          Json.Str (Printf.sprintf "%s@%d.%d" s.sp_fn s.sp_block s.sp_instr));
         ("issued", Json.Int s.sp_issued);
         ("start", Json.Int s.sp_start);
         ("complete", Json.Int s.sp_complete);
         ("queued", Json.Int s.sp_queued);
         ("proto", Json.Int s.sp_proto);
         ("wire", Json.Int s.sp_wire);
         ("retry", Json.Int s.sp_retry);
         ("pf_wait", Json.Int s.sp_pf_wait);
         ("trap", Json.Int s.sp_trap);
         ("stall", Json.Int (Span.stall s));
         ("qp", Json.Int s.sp_qp);
         ("bytes", Json.Int s.sp_bytes) ]
     @ match s.sp_fault with
       | Some f -> [ ("fault", Json.Str f) ]
       | None -> [])

let spans_jsonl collector =
  let buf = Buffer.create 4096 in
  Span.iter
    (fun s ->
      Buffer.add_string buf (Json.to_string (span_json s));
      Buffer.add_char buf '\n')
    collector;
  Buffer.contents buf

(* Span rows in the Chrome trace: fabric-carrying spans (demand,
   escalated, prefetch, batch) sit on their queue pair's row, CPU-side
   spans (retry, settle, hit, trap) on their structure's row, and each
   parent edge becomes a flow arrow ("s" at the parent, "f" at the
   child) so Perfetto draws the causal chain across rows. *)

let span_tid (s : Span.t) =
  if s.sp_qp >= 0 then qp_tid_base + s.sp_qp else s.sp_ds

let spans_chrome_trace ?(freq_ghz = 2.4) ?names collector =
  let by_id = Hashtbl.create (Span.length collector) in
  Span.iter (fun s -> Hashtbl.replace by_id s.Span.sp_id s) collector;
  let evs = ref [] in
  let push e = evs := e :: !evs in
  Span.iter
    (fun (s : Span.t) ->
      let ts = us_of_cycles ~freq_ghz s.sp_issued in
      let dur = us_of_cycles ~freq_ghz (max 0 (s.sp_complete - s.sp_issued)) in
      push
        (Json.Obj
           [ ("name", Json.Str (Span.kind_name s.sp_kind));
             ("cat", Json.Str "span");
             ("ph", Json.Str "X");
             ("ts", Json.Float ts);
             ("dur", Json.Float dur);
             ("pid", Json.Int 1);
             ("tid", Json.Int (span_tid s));
             ("args",
              Json.Obj
                (List.filter
                   (fun (k, _) ->
                     not (List.mem k [ "kind"; "issued"; "complete" ]))
                   (match span_json s with
                   | Json.Obj fields -> fields
                   | _ -> []))) ]);
      if s.sp_parent >= 0 then
        match Hashtbl.find_opt by_id s.sp_parent with
        | None -> ()
        | Some (p : Span.t) ->
          let name =
            match s.sp_edge with
            | Some e -> Span.edge_name e
            | None -> "edge"
          in
          let flow ph bind tid cycle =
            push
              (Json.Obj
                 ([ ("name", Json.Str name);
                    ("cat", Json.Str "span-flow");
                    ("ph", Json.Str ph);
                    ("id", Json.Int s.sp_id);
                    ("ts", Json.Float (us_of_cycles ~freq_ghz cycle));
                    ("pid", Json.Int 1);
                    ("tid", Json.Int tid) ]
                  @ bind))
          in
          flow "s" [] (span_tid p) p.sp_complete;
          flow "f" [ ("bp", Json.Str "e") ] (span_tid s) s.sp_issued)
    collector;
  let tids = Hashtbl.create 8 in
  Span.iter (fun s -> Hashtbl.replace tids (span_tid s) ()) collector;
  let thread_name tid =
    let name =
      if tid >= qp_tid_base then Printf.sprintf "qp%d spans" (tid - qp_tid_base)
      else
        match names with
        | Some f -> f tid
        | None -> Printf.sprintf "ds %d" tid
    in
    Json.Obj
      [ ("name", Json.Str "thread_name");
        ("ph", Json.Str "M");
        ("pid", Json.Int 1);
        ("tid", Json.Int tid);
        ("args", Json.Obj [ ("name", Json.Str name) ]) ]
  in
  let metas =
    Json.Obj
      [ ("name", Json.Str "process_name");
        ("ph", Json.Str "M");
        ("pid", Json.Int 1);
        ("args", Json.Obj [ ("name", Json.Str "CaRDS causal spans") ]) ]
    :: (Hashtbl.fold (fun tid () acc -> tid :: acc) tids []
        |> List.sort compare
        |> List.map thread_name)
  in
  Json.Obj
    [ ("traceEvents", Json.List (metas @ List.rev !evs));
      ("displayTimeUnit", Json.Str "ms");
      ("otherData",
       Json.Obj
         [ ("tool", Json.Str "cards");
           ("clock", Json.Str (Printf.sprintf "%.1f GHz simulated" freq_ghz));
           ("spans", Json.Int (Span.length collector)) ]) ]

let spans_chrome_trace_string ?freq_ghz ?names collector =
  Json.to_string (spans_chrome_trace ?freq_ghz ?names collector)

(* ---------- folded stacks (flamegraph.pl / speedscope input) ---------- *)

(* One line per distinct causal stack: frames root-to-leaf joined by
   ';', a space, then the summed stall.  Each stall-carrying span
   contributes its own stall under the stack of its parent chain, so a
   retry's cycles nest under the demand fetch it delayed and a settle
   under the prefetch it consumed — rendering the span DAG the way
   flamegraph tooling expects.  Frames fold the span's identity into
   [kind:structure:fn@block.instr]; ';' and whitespace (the format's
   separators) are sanitized out.  Lines are sorted, so the output is
   deterministic and diffable. *)

let folded_frame ?names (s : Span.t) =
  let ds =
    match names with
    | Some f -> f s.sp_ds
    | None -> Printf.sprintf "ds%d" s.sp_ds
  in
  let raw =
    Printf.sprintf "%s:%s:%s@%d.%d"
      (Span.kind_name s.sp_kind) ds s.sp_fn s.sp_block s.sp_instr
  in
  String.map (fun c -> if c = ';' || c = ' ' || c = '\t' then '_' else c) raw

let spans_folded ?names collector =
  let by_id = Hashtbl.create (max 16 (Span.length collector)) in
  Span.iter (fun s -> Hashtbl.replace by_id s.Span.sp_id s) collector;
  let stacks : (string, int) Hashtbl.t = Hashtbl.create 64 in
  Span.iter
    (fun (s : Span.t) ->
      let cost = Span.stall s in
      if cost > 0 then begin
        (* Root-to-leaf frame list via the parent chain.  Parents are
           strictly older ids (well-formedness invariant), so the walk
           terminates; a sampled-out parent just truncates the stack. *)
        let rec frames (s : Span.t) acc =
          let acc = folded_frame ?names s :: acc in
          if s.sp_parent < 0 then acc
          else
            match Hashtbl.find_opt by_id s.sp_parent with
            | Some p -> frames p acc
            | None -> acc
        in
        let stack = String.concat ";" (frames s []) in
        Hashtbl.replace stacks stack
          ((match Hashtbl.find_opt stacks stack with
            | Some v -> v
            | None -> 0)
          + cost)
      end)
    collector;
  Hashtbl.fold
    (fun stack cost acc -> Printf.sprintf "%s %d\n" stack cost :: acc)
    stacks []
  |> List.sort compare |> String.concat ""

let critical_path_table ?(title = "Critical path (longest causal chain)")
    ~names (r : Critical_path.report) =
  let t =
    Table.create ~title
      ~header:[ "step"; "kind"; "structure"; "obj"; "site"; "issued";
                "complete"; "stall"; "dominant phase" ]
  in
  let cyc c = Table.fmt_cycles (float_of_int c) in
  List.iteri
    (fun i (s : Span.t) ->
      let phases =
        [ ("queued", s.Span.sp_queued); ("proto", s.sp_proto);
          ("wire", s.sp_wire); ("retry", s.sp_retry);
          ("pf-wait", s.sp_pf_wait); ("trap", s.sp_trap) ]
      in
      let dom_name, dom =
        List.fold_left
          (fun (bn, bv) (n, v) -> if v > bv then (n, v) else (bn, bv))
          ("-", 0) phases
      in
      Table.add_row t
        [ string_of_int (i + 1);
          Span.kind_name s.sp_kind
          ^ (match s.sp_fault with Some f -> " (" ^ f ^ ")" | None -> "");
          names s.sp_ds; string_of_int s.sp_obj;
          Printf.sprintf "%s@%d.%d" s.sp_fn s.sp_block s.sp_instr;
          cyc s.sp_issued; cyc s.sp_complete; cyc (Span.stall s);
          (if dom = 0 then "-"
           else Printf.sprintf "%s %s" dom_name (pct dom (Span.stall s))) ])
    r.Critical_path.r_chain;
  let p = r.r_phases in
  let part name v =
    if v > 0 then Printf.sprintf "%s %s" name (pct v r.r_chain_stall) else ""
  in
  let split =
    [ part "queued" p.cp_queued; part "proto" p.cp_proto;
      part "wire" p.cp_wire; part "retry" p.cp_retry;
      part "pf-wait" p.cp_pf_wait; part "trap" p.cp_trap ]
    |> List.filter (fun s -> s <> "")
    |> String.concat ", "
  in
  Table.add_row t
    [ "CHAIN"; Printf.sprintf "%d spans" (List.length r.r_chain); ""; ""; "";
      ""; cyc r.r_end; cyc r.r_chain_stall;
      (if split = "" then "-" else split) ];
  let by_ds =
    r.r_by_ds
    |> List.filteri (fun i _ -> i < 3)
    |> List.map (fun (ds, v) ->
           Printf.sprintf "%s %s" (names ds) (pct v r.r_chain_stall))
    |> String.concat ", "
  in
  Table.add_row t
    [ "ANALYZED"; Printf.sprintf "%d spans" r.r_span_count; ""; ""; ""; "";
      ""; ""; (if by_ds = "" then "-" else by_ds) ];
  t

let critical_path_json (r : Critical_path.report) =
  let p = r.Critical_path.r_phases in
  Json.Obj
    [ ("chain", Json.List (List.map span_json r.r_chain));
      ("chain_stall", Json.Int r.r_chain_stall);
      ("phases",
       Json.Obj
         [ ("queued", Json.Int p.cp_queued);
           ("proto", Json.Int p.cp_proto);
           ("wire", Json.Int p.cp_wire);
           ("retry", Json.Int p.cp_retry);
           ("pf_wait", Json.Int p.cp_pf_wait);
           ("trap", Json.Int p.cp_trap) ]);
      ("by_ds",
       Json.Obj
         (List.map
            (fun (ds, v) -> (string_of_int ds, Json.Int v))
            r.r_by_ds));
      ("span_count", Json.Int r.r_span_count);
      ("end", Json.Int r.r_end) ]

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

(* ---------- human tables ---------- *)

let profile_table ?(title = "Cycle attribution (per data structure)")
    ~names ~total prof =
  let t =
    Table.create ~title
      ~header:[ "structure"; "guard"; "demand stall"; "queueing"; "pf stall";
                "retry"; "trap"; "alloc"; "total"; "share"; "pf hidden" ]
  in
  let cyc c = Table.fmt_cycles (float_of_int c) in
  List.iter
    (fun h ->
      let b = Profile.buckets prof h in
      let wall = Profile.wall b in
      Table.add_row t
        [ names h; cyc b.Profile.p_guard; cyc b.Profile.p_demand;
          cyc b.Profile.p_queue; cyc b.Profile.p_pf_stall;
          cyc b.Profile.p_retry; cyc b.Profile.p_trap; cyc b.Profile.p_alloc;
          cyc wall; pct wall total; cyc b.Profile.p_hidden ])
    (Profile.handles prof);
  let comp = Profile.compute prof in
  Table.add_row t
    [ "(compute)"; ""; ""; ""; ""; ""; ""; ""; cyc comp; pct comp total; "" ];
  let attributed = Profile.attributed prof in
  if attributed <> total then
    Table.add_row t
      [ "(unattributed)"; ""; ""; ""; ""; ""; ""; "";
        cyc (total - attributed); pct (total - attributed) total; "" ];
  Table.add_row t
    [ "TOTAL"; ""; ""; ""; ""; ""; ""; ""; cyc total; "100.0%"; "" ];
  t

let percentile_points = [ ("p50", 50.0); ("p90", 90.0); ("p99", 99.0); ("p999", 99.9) ]

let percentile_summary lat =
  percentile_points
  |> List.map (fun (name, p) ->
         Printf.sprintf "%s=%s" name
           (Table.fmt_cycles (Cards_util.Stats.percentile lat p)))
  |> String.concat "  "

let latency_table ?(title = "Fetch latency (demand stalls + late prefetch waits)")
    prof =
  let lat = Profile.merged_latency prof in
  let hist = Cards_util.Stats.log2_counts lat in
  let t = Table.create ~title ~header:[ "latency (cycles)"; "count"; "" ] in
  let maxc = Array.fold_left max 0 hist in
  Array.iteri
    (fun i n ->
      if n > 0 then begin
        let lo = 1 lsl i and hi = (1 lsl (i + 1)) - 1 in
        let bar =
          if maxc = 0 then ""
          else String.make (max 1 (n * 40 / maxc)) '#'
        in
        Table.add_row t
          [ Printf.sprintf "%s - %s"
              (Table.fmt_cycles (float_of_int lo))
              (Table.fmt_cycles (float_of_int hi));
            string_of_int n; bar ]
      end)
    hist;
  if Cards_util.Stats.count lat > 0 then
    Table.add_row t
      [ "percentiles"; string_of_int (Cards_util.Stats.count lat);
        percentile_summary lat ];
  t

let latency_percentiles_table ?(title = "Fetch latency percentiles") ~names prof =
  let t =
    Table.create ~title
      ~header:[ "structure"; "fetches"; "p50"; "p90"; "p99"; "p999"; "max" ]
  in
  let row name lat =
    if Cards_util.Stats.count lat > 0 then
      Table.add_row t
        (name :: string_of_int (Cards_util.Stats.count lat)
         :: (List.map
               (fun (_, p) ->
                 Table.fmt_cycles (Cards_util.Stats.percentile lat p))
               percentile_points
             @ [ Table.fmt_cycles (Cards_util.Stats.max lat) ]))
  in
  List.iter
    (fun h -> row (names h) (Profile.latency (Profile.buckets prof h)))
    (Profile.handles prof);
  row "ALL" (Profile.merged_latency prof);
  t

(* The serving layer's per-tenant request-latency view: one row per
   tenant plus an ALL row merged bucket-wise — the merge is exact on
   the histogram, so ALL equals the histogram of the concatenated
   samples (the Stats-merge satellite asserts this). *)
let serve_latency_table ?(title = "Per-tenant request latency") rows =
  let t =
    Table.create ~title
      ~header:[ "tenant"; "served"; "p50"; "p90"; "p99"; "p999"; "max" ]
  in
  let row name served lat =
    if Cards_util.Stats.count lat > 0 then
      Table.add_row t
        (name :: string_of_int served
         :: (List.map
               (fun (_, p) ->
                 Table.fmt_cycles (Cards_util.Stats.percentile lat p))
               percentile_points
             @ [ Table.fmt_cycles (Cards_util.Stats.max lat) ]))
  in
  List.iter (fun (name, lat, served) -> row name served lat) rows;
  (match rows with
   | [] | [ _ ] -> ()
   | (_, first, _) :: rest ->
     let merged =
       List.fold_left
         (fun acc (_, lat, _) -> Cards_util.Stats.merge acc lat)
         first rest
     in
     row "ALL" (List.fold_left (fun a (_, _, s) -> a + s) 0 rows) merged);
  t

(* ---------- stall attribution tables ---------- *)

let attribution_table ?(title = "Stall root causes (per data structure)")
    ~names attr =
  let causes = Attribution.causes attr in
  let t =
    Table.create ~title
      ~header:
        ("structure" :: List.map Attribution.cause_name causes
         @ [ "total stall"; "share" ])
  in
  let grand = Attribution.total attr in
  let cyc c = if c = 0 then "" else Table.fmt_cycles (float_of_int c) in
  List.iter
    (fun ds ->
      let per = Attribution.ds_cause_totals attr ds in
      let tot = List.fold_left (fun acc (_, v) -> acc + v) 0 per in
      Table.add_row t
        (names ds :: List.map (fun (_, v) -> cyc v) per
         @ [ Table.fmt_cycles (float_of_int tot); pct tot grand ]))
    (Attribution.ds_list attr);
  let totals = Attribution.cause_totals attr in
  Table.add_row t
    ("TOTAL" :: List.map (fun (_, v) -> cyc v) totals
     @ [ Table.fmt_cycles (float_of_int grand); "100.0%" ]);
  t

let attribution_sites_table ?(title = "Stall by access site (heaviest first)")
    ?(limit = 12) ~names attr =
  let grand = Attribution.total attr in
  let t =
    Table.create ~title
      ~header:[ "site"; "structure"; "stall"; "share"; "dominant causes" ]
  in
  List.iter
    (fun (r : Attribution.site_row) ->
      let dominant =
        r.r_causes
        |> List.filteri (fun i _ -> i < 3)
        |> List.map (fun (cause, v) ->
               Printf.sprintf "%s %s" (Attribution.cause_name cause)
                 (pct v r.r_total))
        |> String.concat ", "
      in
      Table.add_row t
        [ Attribution.site_name r.r_site; names r.r_ds;
          Table.fmt_cycles (float_of_int r.r_total); pct r.r_total grand;
          dominant ])
    (Attribution.site_rows ~limit attr);
  t

let fabric_table ?(title = "Fabric") ?over_budget ?(per_ds = [])
    (fs : Cards_net.Fabric.stats) =
  let t = Table.create ~title ~header:[ "counter"; "value" ] in
  let i name v = Table.add_row t [ name; string_of_int v ] in
  let b name v = Table.add_row t [ name; Table.fmt_bytes (float_of_int v) ] in
  let c name v = Table.add_row t [ name; Table.fmt_cycles (float_of_int v) ] in
  i "objects fetched" fs.fetches;
  b "fetched bytes" fs.fetched_bytes;
  (* Per-structure split of the line above; structures that never
     faulted remotely are omitted rather than shown as zero. *)
  List.iter
    (fun (name, bytes) ->
      if bytes > 0 then b (Printf.sprintf "  %s" name) bytes)
    per_ds;
  i "batched requests" fs.batches;
  i "objects in batches" fs.batched_objects;
  i "objects written back" fs.writebacks;
  b "written bytes" fs.written_bytes;
  i "writeback batches" fs.wb_batches;
  c "inbound queueing" fs.queue_in_cycles;
  c "outbound queueing" fs.queue_out_cycles;
  Array.iteri
    (fun qp cycles -> c (Printf.sprintf "  qp%d queueing" qp) cycles)
    fs.qp_queue_cycles;
  (* Fault-injection counters only clutter the table when faults are
     actually configured, so show them only when nonzero. *)
  let nz name v = if v > 0 then i name v in
  nz "faults: transient" fs.faults_transient;
  nz "faults: late" fs.faults_late;
  nz "faults: duplicate" fs.faults_dup;
  nz "failed fetch attempts" fs.failed_fetches;
  nz "reliable-channel fetches" fs.reliable_fetches;
  nz "writeback faults absorbed" fs.wb_faults;
  (match over_budget with
   | Some n -> i "over-budget evictions" n
   | None -> ());
  t

let resilience_table ?(title = "Resilience") ~retries ~timeouts ~escalations
    ~pf_failed ~pf_suppressed ~degrade_steps ~recover_steps ~degrade_level () =
  let t = Table.create ~title ~header:[ "counter"; "value" ] in
  let i name v = Table.add_row t [ name; string_of_int v ] in
  (* All-zero counters still render every row (stable output for
     diffing) but get an explicit headline so a fault-free run reads
     as a statement, not an omission. *)
  if
    retries = 0 && timeouts = 0 && escalations = 0 && pf_failed = 0
    && pf_suppressed = 0 && degrade_steps = 0 && recover_steps = 0
    && degrade_level = 0
  then Table.add_row t [ "(no faults observed)"; "-" ];
  i "demand-fetch retries" retries;
  i "fetch timeouts" timeouts;
  i "reliable-channel escalations" escalations;
  i "prefetch attempts failed" pf_failed;
  i "prefetches suppressed (degraded)" pf_suppressed;
  i "degradation steps" degrade_steps;
  i "recovery steps" recover_steps;
  i "final degradation level" degrade_level;
  t

let metrics_table ?(title = "Epoch metrics") metrics =
  let t =
    Table.create ~title
      ~header:[ "cycle"; "structure"; "resident"; "faults"; "pf issued";
                "pf used"; "accuracy"; "prefetcher"; "switches" ]
  in
  (* Per-interval deltas: remember the previous sample per handle. *)
  let prev : (int, Metrics.sample) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (s : Metrics.sample) ->
      let d_faults, d_issued, d_used =
        match Hashtbl.find_opt prev s.m_ds with
        | Some p ->
          (s.m_remote_faults - p.m_remote_faults,
           s.m_pf_issued - p.m_pf_issued,
           s.m_pf_used - p.m_pf_used)
        | None -> (s.m_remote_faults, s.m_pf_issued, s.m_pf_used)
      in
      Hashtbl.replace prev s.m_ds s;
      let acc =
        if d_issued = 0 then None
        else Some (float_of_int d_used /. float_of_int d_issued)
      in
      Table.add_row t
        [ Table.fmt_cycles (float_of_int s.m_cycle); s.m_name;
          Table.fmt_bytes (float_of_int s.m_resident_bytes);
          string_of_int d_faults; string_of_int d_issued;
          string_of_int d_used; Table.fmt_ratio_opt acc;
          s.m_prefetcher; string_of_int s.m_pf_switches ])
    (Metrics.samples metrics);
  t

(* ---------- what-if causal profile ---------- *)

let whatif_table ?(title = "What-if: virtual speedups (ranked)")
    (rows : (Whatif.prediction * int option) list) =
  let t =
    Table.create ~title
      ~header:[ "scenario"; "what changes"; "predicted"; "speedup";
                "measured"; "err" ]
  in
  let cyc c = Table.fmt_cycles (float_of_int c) in
  List.iter
    (fun ((p : Whatif.prediction), measured) ->
      let m_str, err_str =
        match measured with
        | None -> ("-", "-")
        | Some m ->
          let err =
            if m = 0 then 0.0
            else
              abs_float (float_of_int (p.p_cycles - m)) /. float_of_int m
          in
          (cyc m, Printf.sprintf "%.1f%%" (100.0 *. err))
      in
      Table.add_row t
        [ p.p_scenario.Whatif.sc_id; p.p_scenario.Whatif.sc_label;
          cyc p.p_cycles; Table.fmt_speedup p.p_speedup; m_str; err_str ])
    rows;
  (match rows with
   | (p, _) :: _ ->
     Table.add_row t
       [ "BASELINE"; "measured run"; cyc p.Whatif.p_baseline;
         Table.fmt_speedup 1.0; cyc p.Whatif.p_baseline; "-" ]
   | [] -> ());
  t

let whatif_json (rows : (Whatif.prediction * int option) list) =
  let scenario_json ((p : Whatif.prediction), measured) =
    Json.Obj
      ([ ("id", Json.Str p.p_scenario.Whatif.sc_id);
         ("label", Json.Str p.p_scenario.Whatif.sc_label);
         ("predicted_cycles", Json.Int p.p_cycles);
         ("saved_cycles", Json.Int p.p_saved);
         ("speedup", Json.Float p.p_speedup);
         ("chain_stall", Json.Int p.p_chain_stall) ]
       @ match measured with
         | None -> []
         | Some m ->
           [ ("measured_cycles", Json.Int m);
             ("rel_error",
              Json.Float
                (if m = 0 then 0.0
                 else
                   abs_float (float_of_int (p.p_cycles - m))
                   /. float_of_int m)) ])
  in
  Json.Obj
    [ ("baseline_cycles",
       Json.Int
         (match rows with (p, _) :: _ -> p.Whatif.p_baseline | [] -> 0));
      ("scenarios", Json.List (List.map scenario_json rows)) ]
