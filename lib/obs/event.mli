(** The structured-trace event taxonomy.

    One constructor per observable runtime occurrence, each stamped
    with the simulated cycle clock and the data-structure handle it
    concerns (handle [0] = the unmanaged segment / no structure).
    Span-like events (faults, late prefetches) carry their stall so
    exporters can render them as durations; [ev_cycle] is then the
    {e start} of the span. *)

type kind =
  | Guard_hit           (** guard found the object resident *)
  | Guard_miss          (** guard found it absent; a demand fetch follows *)
  | Remote_fault of { queued : int; stall : int }
      (** demand fetch: [stall] = total CPU stall, of which [queued]
          cycles were spent waiting behind other transfers *)
  | Clean_fault of { stall : int }
      (** unguarded-path fallback (trap + fetch) *)
  | Prefetch_issue of { origin_ds : int; origin_obj : int }
      (** prefetch issued for [ev_ds]/[ev_obj] (the {e target} — its
          Chrome-trace row); the payload names the structure and access
          object whose prefetcher made the call, which differ from the
          target on cross-structure prefetches *)
  | Batch_fetch of { count : int; bytes : int }
      (** [count] prefetch targets coalesced into one fabric request
          totalling [bytes]; stamped on the originating structure's row *)
  | Prefetch_use of { timely : bool }
      (** prefetched object reached by the demand stream *)
  | Prefetch_late of { wait : int }
      (** access had to wait for an in-flight prefetch *)
  | Qp_busy of { qp : int; busy : int }
      (** inbound queue pair [qp] occupied for [busy] cycles by one
          request (protocol + serialization); [ev_cycle] is when the
          QP picked the transfer up, [ev_ds] the structure whose
          access put it on the wire.  Rendered as its own thread row
          so queue contention is visible next to the fault spans. *)
  | Fault_inject of { kind : string }
      (** the fabric injected a fault ({!Cards_net.Fabric.fault_kind}
          name) into this structure's transfer *)
  | Retry_backoff of { attempt : int; wait : int }
      (** retry number [attempt] backing off for [wait] cycles after a
          failed or timed-out fetch attempt *)
  | Fetch_timeout of { budget : int }
      (** a late completion blew the per-fetch timeout [budget] and
          the fetch was re-issued *)
  | Degrade of { level : int; observed_pct : int }
      (** graceful-degradation step: the prefetch window narrowed (or
          re-widened) to level [level] (0 = full width) because the
          observed fault rate over the sliding window hit
          [observed_pct] percent *)
  | Evict of { dirty : bool }
  | Writeback of { bytes : int }
  | Policy_switch of { from_pf : string; to_pf : string }
      (** adaptive mode changed this structure's prefetcher *)
  | Epoch_mark          (** adaptive-mode epoch boundary *)
  | Loop_version of { clean : bool }
      (** versioned-loop entry: clean or instrumented copy taken *)
  | Call_enter of { fn : string }  (** interpreter function entry *)
  | Call_exit of { fn : string }

type t = {
  ev_cycle : int;  (** simulated cycle stamp (span start for spans) *)
  ev_ds : int;     (** data-structure handle; 0 = none/unmanaged *)
  ev_obj : int;    (** object index within the structure, or 0 *)
  ev_kind : kind;
}

val make : cycle:int -> ds:int -> obj:int -> kind -> t

val kind_name : kind -> string
(** Stable lowercase identifier, e.g. ["remote_fault"] — used as the
    event name in JSON-lines and Chrome-trace output. *)

val category : kind -> string
(** Coarse grouping for exporters: guard / fault / prefetch / cache /
    policy / versioning / interp. *)

val duration : kind -> int option
(** Span length in cycles for span-like events, [None] for instants. *)
