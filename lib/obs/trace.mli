(** Bounded ring buffer of trace events.

    Tracing a long run must not grow memory without bound: the ring
    keeps the {e newest} [capacity] events and counts what it dropped,
    so a crash or an interesting endgame is always covered by the tail
    of the trace. *)

type t

val create : capacity:int -> t
(** [capacity] is clamped to ≥ 1. *)

val add : t -> Event.t -> unit
(** O(1); overwrites the oldest event when full. *)

val to_list : t -> Event.t list
(** Retained events, oldest first. *)

val iter : (Event.t -> unit) -> t -> unit

val length : t -> int
(** Events currently retained. *)

val capacity : t -> int

val dropped : t -> int
(** Events evicted to make room (total added − retained). *)
