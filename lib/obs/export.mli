(** Exporters: human tables, JSON-lines, and Chrome [trace_event].

    The Chrome format loads directly in [chrome://tracing] or
    {{:https://ui.perfetto.dev}Perfetto}: each data structure becomes
    its own thread row (faults and late prefetches as duration spans,
    prefetch/eviction/policy events as instants) and the interpreter's
    simulated call stack nests on thread 0. *)

val event_json : Event.t -> Cards_util.Json.t

val events_jsonl : Trace.t -> string
(** One JSON object per line, oldest event first. *)

val sample_json : Metrics.sample -> Cards_util.Json.t

val metrics_jsonl : Metrics.t -> string

val metrics_csv : Metrics.t -> string
(** Header line plus one row per sample, every sample field in order —
    loads directly into pandas / gnuplot for rate plots. *)

val chrome_trace :
  ?freq_ghz:float -> ?names:(int -> string) -> Trace.t -> Cards_util.Json.t
(** [freq_ghz] (default 2.4, the paper's Xeon) converts cycle stamps
    to the format's microsecond timestamps; [names] labels the
    per-structure thread rows. *)

val chrome_trace_string :
  ?freq_ghz:float -> ?names:(int -> string) -> Trace.t -> string

val span_json : Span.t -> Cards_util.Json.t

val spans_jsonl : Span.collector -> string
(** One JSON object per line, completion order. *)

val spans_chrome_trace :
  ?freq_ghz:float ->
  ?names:(int -> string) ->
  Span.collector ->
  Cards_util.Json.t
(** Spans as Chrome "X" events — fabric-carrying spans on their queue
    pair's row, CPU-side spans on their structure's row — with every
    causal parent edge rendered as a flow arrow ("s"/"f" pair), so
    Perfetto draws chains across rows. *)

val spans_chrome_trace_string :
  ?freq_ghz:float -> ?names:(int -> string) -> Span.collector -> string

val spans_folded : ?names:(int -> string) -> Span.collector -> string
(** Folded-stack flamegraph lines ([root;child;...;leaf cycles], one
    per distinct causal stack, sorted): each stall-carrying span's
    cycles aggregate under its parent chain, so [flamegraph.pl] or
    speedscope render the span DAG as a flame graph.  Frames are
    [kind:structure:fn\@block.instr] with the format's separator
    characters sanitized out. *)

val critical_path_table :
  ?title:string ->
  names:(int -> string) ->
  Critical_path.report ->
  Cards_util.Table.t
(** The dominant causal chain root-first — one row per span with its
    stall and dominant phase — closed by a CHAIN row (total stall and
    phase split) and an ANALYZED row (span count, stall by structure). *)

val critical_path_json : Critical_path.report -> Cards_util.Json.t

val write_file : string -> string -> unit

val profile_table :
  ?title:string ->
  names:(int -> string) ->
  total:int ->
  Profile.t ->
  Cards_util.Table.t
(** Per-structure cycle-attribution table.  Rows sum exactly to
    [total] (the run's cycle count): per-handle wall buckets, the
    compute residual, and — only if attribution ever missed cycles —
    an explicit [(unattributed)] row. *)

val latency_table : ?title:string -> Profile.t -> Cards_util.Table.t
(** Log₂ fetch-latency histogram with ASCII bars, closed by a
    p50/p90/p99/p999 percentile summary row. *)

val latency_percentiles_table :
  ?title:string -> names:(int -> string) -> Profile.t -> Cards_util.Table.t
(** Per-structure fetch-latency percentiles (p50/p90/p99/p999/max)
    plus an [ALL] row merged over every structure. *)

val serve_latency_table :
  ?title:string ->
  (string * Cards_util.Stats.t * int) list ->
  Cards_util.Table.t
(** Per-tenant request-latency percentiles for the serving layer:
    one [(tenant, latency accumulator, served count)] row each, plus
    an [ALL] row merged bucket-wise over every tenant (exact on the
    histogram).  Empty accumulators are skipped. *)

val attribution_table :
  ?title:string -> names:(int -> string) -> Attribution.t -> Cards_util.Table.t
(** Per-structure stall decomposition: one column per root cause
    (protocol, wire, one per queue pair, late-prefetch, guard, trap,
    bookkeeping); the TOTAL row sums exactly to {!Attribution.total}. *)

val attribution_sites_table :
  ?title:string ->
  ?limit:int ->
  names:(int -> string) ->
  Attribution.t ->
  Cards_util.Table.t
(** Heaviest access sites (default top 12) with their dominant causes
    — the "loop at [traverse/bb2] paid 71% of its stall to qp0
    queueing" view. *)

val fabric_table :
  ?title:string ->
  ?over_budget:int ->
  ?per_ds:(string * int) list ->
  Cards_net.Fabric.stats ->
  Cards_util.Table.t
(** Fabric transport counters: objects fetched/written, batching
    (coalesced requests and the objects they carried, both directions),
    queueing split per inbound queue pair, fault-injection counters
    (shown only when nonzero), and — when given — the runtime's
    over-budget eviction count.  [per_ds] adds one indented
    [(structure name, bytes)] row under "fetched bytes" for each
    structure that actually pulled bytes over the fabric — the
    layout-factorization pass's before/after evidence. *)

val resilience_table :
  ?title:string ->
  retries:int ->
  timeouts:int ->
  escalations:int ->
  pf_failed:int ->
  pf_suppressed:int ->
  degrade_steps:int ->
  recover_steps:int ->
  degrade_level:int ->
  unit ->
  Cards_util.Table.t
(** The runtime's fault-survival counters ({!Cards_runtime.Rt_stats}
    feeds these): retries, timeouts, reliable-channel escalations,
    prefetch attempts dropped or suppressed, and the graceful-
    degradation step counts with the final window level. *)

val metrics_table : ?title:string -> Metrics.t -> Cards_util.Table.t
(** Per-interval deltas (faults, prefetch accuracy) per structure —
    the adaptive prefetcher's behaviour over time. *)

val whatif_table :
  ?title:string ->
  (Whatif.prediction * int option) list ->
  Cards_util.Table.t
(** The "what should we optimize next?" report: one row per scenario
    (keep the {!Whatif.rank} order) with predicted cycles and speedup,
    plus the measured cycles and relative error when the scenario was
    validated by re-execution ([None] renders "-"), closed by a
    BASELINE row. *)

val whatif_json : (Whatif.prediction * int option) list -> Cards_util.Json.t
(** Machine-readable form of {!whatif_table}: baseline cycles plus one
    object per scenario (predicted/saved/speedup/chain-stall, and
    measured + relative error when validated). *)
