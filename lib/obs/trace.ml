type t = {
  buf : Event.t array;
  cap : int;
  mutable added : int;  (* total events ever offered *)
}

let dummy = Event.make ~cycle:0 ~ds:0 ~obj:0 Event.Epoch_mark

let create ~capacity =
  let cap = max 1 capacity in
  { buf = Array.make cap dummy; cap; added = 0 }

let add t ev =
  t.buf.(t.added mod t.cap) <- ev;
  t.added <- t.added + 1

let length t = min t.added t.cap

let capacity t = t.cap

let dropped t = max 0 (t.added - t.cap)

let to_list t =
  let n = length t in
  let first = if t.added <= t.cap then 0 else t.added mod t.cap in
  List.init n (fun i -> t.buf.((first + i) mod t.cap))

let iter f t = List.iter f (to_list t)
