(** The post-mortem flight recorder.

    A bounded ring of the last [capacity] completed spans, plus
    pinned retention for trouble: any span that retried, escalated,
    trapped, or absorbed a fault is pinned together with its whole
    causal chain, surviving ring eviction.  Children complete before
    their demand root (a retry span is added before the fetch it
    delayed finishes), so pinning works both ways: pinning a span
    pins any already-retained ancestors, and records the still-missing
    parent ids in a wanted-set so the ancestors are pinned on arrival.

    On a trap or a reliable-channel escalation the runtime dumps
    {!postmortem} — the flagged chain, a timeline of the last
    completed spans, and the degradation-window state — through the
    sink's {!Reporter}.  The recorder allocates nothing when absent:
    it only observes spans via the collector's listener hook. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] (default 256) bounds the ring; pinned spans are capped
    separately at 16x capacity, with {!dropped_pins} counting any
    flagged spans dropped past that. *)

val capacity : t -> int

val add : t -> Span.t -> unit
(** The collector-listener entry point. *)

val ring_length : t -> int
(** Completed spans currently in the ring, at most [capacity]. *)

val pinned_count : t -> int
val dropped_pins : t -> int

val flagged : t -> int
(** Spans seen that warranted pinning (retried / escalated /
    trapped / faulted). *)

val last_flagged : t -> Span.t option

val chain_of : t -> Span.t -> Span.t list
(** Root-first causal chain of a span, over retained (ring or
    pinned) spans; stops where retention ends. *)

val postmortem :
  ?reason:string -> ?degrade_level:int -> names:(int -> string) -> t ->
  string
(** Human-readable report: the most recent flagged span's chain with
    per-span phase splits, then a timeline of the last completed
    spans.  [names] maps a structure handle to its name. *)
