(** The single chokepoint for human-readable diagnostics.

    Library code (the runtime's fault summary, the flight recorder's
    post-mortem) never writes to [stderr] directly: it writes through
    the reporter carried by the {!Sink}, which is {!null} — silent —
    unless the embedder opted in.  The CLI installs {!stderr_reporter}
    so interactive runs keep their summaries, while tests and the
    bench harness keep machine-readable output clean or capture
    reports with {!make}. *)

type t

val null : t
(** Discards everything; the {!Sink.null} reporter. *)

val stderr_reporter : t
(** Writes to [stderr] and flushes per call, so reports interleave
    sanely with the process's other output. *)

val make : (string -> unit) -> t
(** A reporter over an arbitrary consumer (test capture buffers). *)

val enabled : t -> bool
(** Gate expensive report *construction* on this; {!text}/{!line}
    are already no-ops when disabled. *)

val text : t -> string -> unit
(** Emit a (possibly multi-line) string as-is. *)

val line : t -> string -> unit
(** Emit one line, newline appended. *)

val linef : t -> ('a, unit, string, unit) format4 -> 'a
