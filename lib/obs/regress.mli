(** Bench regression gate.

    Compares a perf snapshot (the [--json] output of [bench/main.exe]:
    per-experiment cycle counts and fabric transport counters) against
    a committed baseline within a relative tolerance, and reports every
    deviation with the experiment, metric, and both values.  The
    simulator is deterministic, so an unchanged tree diffs to exactly
    zero; the tolerance only absorbs intentional small drifts.  Checks
    are two-sided — an unexplained speedup means the cost model moved,
    which the baseline should record, not hide. *)

type violation = {
  v_experiment : string;  (** experiment tag, e.g. ["pc-list-batched"] *)
  v_metric : string;      (** ["cycles"], ["fabric.fetches"], ... *)
  v_baseline : float;
  v_observed : float option;
      (** [None]: the metric (or whole experiment) is gone from the
          current snapshot *)
}

val metrics_of_experiment : Cards_util.Json.t -> (string * float) list
(** Flatten one experiment object to metric pairs: ["cycles"] plus
    every numeric field under ["fabric"] (arrays indexed as
    ["fabric.qp_queue_cycles\[0\]"]).  Counters added to the snapshot
    later join the gate automatically. *)

val experiments_of_snapshot : Cards_util.Json.t -> (string * Cards_util.Json.t) list
(** Tagged experiment objects of a snapshot document, in file order. *)

val compare_snapshots :
  ?tolerance:float ->
  baseline:Cards_util.Json.t ->
  current:Cards_util.Json.t ->
  unit ->
  violation list
(** All metrics of [baseline] whose [current] value deviates by more
    than [tolerance] (relative, default [0.]), plus metrics or
    experiments missing from [current].  Experiments only in [current]
    are not violations — they appear when the baseline is refreshed. *)

val format_violation : violation -> string
(** One line naming experiment, metric, baseline and observed values,
    e.g. ["REGRESSION pc-list-batched: cycles baseline 1200 observed
    1400 (+16.67%)"]. *)

val load_file : string -> Cards_util.Json.t
(** Parse a snapshot file; raises [Sys_error] / [Json.Parse_error]. *)
