type phase_split = {
  cp_queued : int;
  cp_proto : int;
  cp_wire : int;
  cp_retry : int;
  cp_pf_wait : int;
  cp_trap : int;
}

type report = {
  r_chain : Span.t list;
  r_chain_stall : int;
  r_phases : phase_split;
  r_by_ds : (int * int) list;
  r_span_count : int;
  r_end : int;
}

let phase_total p =
  p.cp_queued + p.cp_proto + p.cp_wire + p.cp_retry + p.cp_pf_wait + p.cp_trap

let analyze c =
  if Span.length c = 0 then None
  else begin
    let spans =
      List.sort
        (fun (a : Span.t) b -> compare a.sp_id b.sp_id)
        (Span.spans c)
    in
    let by_id = Hashtbl.create (Span.length c) in
    (* chain_cost(s) = stall(s) + chain_cost(parent); parents have
       smaller ids, so the sorted forward pass sees them first. *)
    let cost = Hashtbl.create (Span.length c) in
    let best = ref (-1) and best_cost = ref (-1) and last = ref 0 in
    List.iter
      (fun (s : Span.t) ->
        Hashtbl.replace by_id s.sp_id s;
        let parent_cost =
          match Hashtbl.find_opt cost s.sp_parent with
          | Some pc -> pc
          | None -> 0
        in
        let ch = Span.stall s + parent_cost in
        Hashtbl.replace cost s.sp_id ch;
        if ch > !best_cost then begin
          best_cost := ch;
          best := s.sp_id
        end;
        if s.sp_complete > !last then last := s.sp_complete)
      spans;
    (* Walk the winner back to its root. *)
    let rec chain acc id =
      match Hashtbl.find_opt by_id id with
      | None -> acc
      | Some s -> chain (s :: acc) s.sp_parent
    in
    let ch = chain [] !best in
    let ph =
      List.fold_left
        (fun p (s : Span.t) ->
          { cp_queued = p.cp_queued + s.sp_queued;
            cp_proto = p.cp_proto + s.sp_proto;
            cp_wire = p.cp_wire + s.sp_wire;
            cp_retry = p.cp_retry + s.sp_retry;
            cp_pf_wait = p.cp_pf_wait + s.sp_pf_wait;
            cp_trap = p.cp_trap + s.sp_trap })
        { cp_queued = 0; cp_proto = 0; cp_wire = 0;
          cp_retry = 0; cp_pf_wait = 0; cp_trap = 0 }
        ch
    in
    let ds_tbl = Hashtbl.create 8 in
    List.iter
      (fun (s : Span.t) ->
        let prev =
          match Hashtbl.find_opt ds_tbl s.sp_ds with Some v -> v | None -> 0
        in
        Hashtbl.replace ds_tbl s.sp_ds (prev + Span.stall s))
      ch;
    let by_ds =
      Hashtbl.fold (fun ds v acc -> (ds, v) :: acc) ds_tbl []
      |> List.sort (fun (da, a) (db, b) ->
             if a <> b then compare b a else compare da db)
    in
    Some
      { r_chain = ch;
        r_chain_stall = !best_cost;
        r_phases = ph;
        r_by_ds = by_ds;
        r_span_count = Span.length c;
        r_end = !last }
  end
