type t = {
  trace : Trace.t option;
  metrics : Metrics.t option;
  spans : Span.collector option;
  recorder : Recorder.t option;
  reporter : Reporter.t;
  tracing : bool;
  sampling : bool;
  spanning : bool;
  mutable pm_armed : bool;
}

let null =
  { trace = None;
    metrics = None;
    spans = None;
    recorder = None;
    reporter = Reporter.null;
    tracing = false;
    sampling = false;
    spanning = false;
    pm_armed = false }

let create ?trace_capacity ?metrics_interval ?span_rate ?recorder_capacity
    ?(postmortem = false) ?(reporter = Reporter.null) () =
  let trace = Option.map (fun capacity -> Trace.create ~capacity) trace_capacity in
  let metrics =
    Option.map (fun interval -> Metrics.create ~interval ()) metrics_interval
  in
  (* The recorder implies spans: it is fed by the collector's listener.
     [--postmortem] without an explicit rate records everything. *)
  let want_recorder = postmortem || recorder_capacity <> None in
  let spans =
    if span_rate <> None || want_recorder then
      Some (Span.create ?rate:span_rate ())
    else None
  in
  let recorder =
    if want_recorder then Some (Recorder.create ?capacity:recorder_capacity ())
    else None
  in
  (match (spans, recorder) with
  | Some c, Some r -> Span.set_listener c (Recorder.add r)
  | _ -> ());
  { trace;
    metrics;
    spans;
    recorder;
    reporter;
    tracing = trace <> None;
    sampling = metrics <> None;
    spanning = spans <> None;
    pm_armed = postmortem && recorder <> None }

let tracing t = t.tracing

let sampling t = t.sampling

let spanning t = t.spanning

let emit t ev =
  match t.trace with
  | Some tr -> Trace.add tr ev
  | None -> ()

let metrics_due t ~now =
  match t.metrics with
  | Some m -> Metrics.due m ~now
  | None -> false

let trace t = t.trace

let metrics t = t.metrics

let spans t = t.spans

let recorder t = t.recorder

let reporter t = t.reporter

let take_postmortem t =
  t.pm_armed
  &&
  (t.pm_armed <- false;
   true)
