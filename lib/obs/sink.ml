type t = {
  trace : Trace.t option;
  metrics : Metrics.t option;
  tracing : bool;
  sampling : bool;
}

let null = { trace = None; metrics = None; tracing = false; sampling = false }

let create ?trace_capacity ?metrics_interval () =
  let trace = Option.map (fun capacity -> Trace.create ~capacity) trace_capacity in
  let metrics =
    Option.map (fun interval -> Metrics.create ~interval ()) metrics_interval
  in
  { trace; metrics; tracing = trace <> None; sampling = metrics <> None }

let tracing t = t.tracing

let sampling t = t.sampling

let emit t ev =
  match t.trace with
  | Some tr -> Trace.add tr ev
  | None -> ()

let metrics_due t ~now =
  match t.metrics with
  | Some m -> Metrics.due m ~now
  | None -> false

let trace t = t.trace

let metrics t = t.metrics
