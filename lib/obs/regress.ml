(* Bench regression gate: diff a perf snapshot (the `--json` output of
   bench/main.exe — per-experiment cycle counts and fabric counters)
   against a committed baseline, within a configurable relative
   tolerance.

   The simulator is deterministic, so on an unchanged tree the diff is
   exactly zero and any tolerance passes; the tolerance exists to
   absorb *intentional* small drifts (a recalibrated cost constant)
   without forcing a baseline refresh for every third decimal.  The
   comparison is two-sided — an unexplained speedup is as much a
   "your model changed" signal as a slowdown — and every violation
   names the experiment, the metric, and both values, so a gate
   failure reads as a diagnosis rather than a boolean. *)

module Json = Cards_util.Json

type violation = {
  v_experiment : string;
  v_metric : string;
  v_baseline : float;
  v_observed : float option; (* None: metric/experiment gone from current *)
}

(* Flatten one experiment object into ("cycles" / "fabric.fetches" /
   "fabric.qp_queue_cycles[0]" / ...) metric pairs.  Anything numeric
   under "fabric" is gated, so counters added later join the gate
   without this module changing. *)
let metrics_of_experiment (e : Json.t) : (string * float) list =
  let num j = Json.to_number_opt j in
  let cycles =
    match Option.bind (Json.member "cycles" e) num with
    | Some c -> [ ("cycles", c) ]
    | None -> []
  in
  let fabric =
    match Json.member "fabric" e with
    | Some (Json.Obj fields) ->
      List.concat_map
        (fun (name, v) ->
          match v with
          | Json.List items ->
            List.mapi
              (fun i item ->
                Option.map
                  (fun x -> (Printf.sprintf "fabric.%s[%d]" name i, x))
                  (num item))
              items
            |> List.filter_map Fun.id
          | _ -> (
            match num v with
            | Some x -> [ ("fabric." ^ name, x) ]
            | None -> []))
        fields
    | _ -> []
  in
  cycles @ fabric

let experiments_of_snapshot (doc : Json.t) : (string * Json.t) list =
  match Option.bind (Json.member "experiments" doc) Json.to_list_opt with
  | None -> []
  | Some es ->
    List.filter_map
      (fun e ->
        Option.bind (Json.member "tag" e) Json.to_string_opt
        |> Option.map (fun tag -> (tag, e)))
      es

let within ~tolerance ~baseline ~observed =
  let denom = Float.max (Float.abs baseline) 1.0 in
  Float.abs (observed -. baseline) /. denom <= tolerance

let compare_snapshots ?(tolerance = 0.0) ~baseline ~current () =
  let cur = experiments_of_snapshot current in
  let check_experiment (tag, base_e) =
    match List.assoc_opt tag cur with
    | None ->
      (* The whole experiment vanished: report its headline metric so
         the message still carries a number to anchor on. *)
      let base_cycles =
        match metrics_of_experiment base_e with
        | (_, c) :: _ -> c
        | [] -> 0.0
      in
      [ { v_experiment = tag; v_metric = "cycles"; v_baseline = base_cycles;
          v_observed = None } ]
    | Some cur_e ->
      let cur_metrics = metrics_of_experiment cur_e in
      List.filter_map
        (fun (metric, base_v) ->
          match List.assoc_opt metric cur_metrics with
          | None ->
            Some
              { v_experiment = tag; v_metric = metric; v_baseline = base_v;
                v_observed = None }
          | Some cur_v ->
            if within ~tolerance ~baseline:base_v ~observed:cur_v then None
            else
              Some
                { v_experiment = tag; v_metric = metric; v_baseline = base_v;
                  v_observed = Some cur_v })
        (metrics_of_experiment base_e)
  in
  List.concat_map check_experiment (experiments_of_snapshot baseline)

let format_violation v =
  match v.v_observed with
  | None ->
    Printf.sprintf "REGRESSION %s: %s missing (baseline %.0f)" v.v_experiment
      v.v_metric v.v_baseline
  | Some obs ->
    let denom = Float.max (Float.abs v.v_baseline) 1.0 in
    let delta = 100.0 *. (obs -. v.v_baseline) /. denom in
    Printf.sprintf "REGRESSION %s: %s baseline %.0f observed %.0f (%+.2f%%)"
      v.v_experiment v.v_metric v.v_baseline obs delta

let load_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  Json.parse s
