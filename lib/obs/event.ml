type kind =
  | Guard_hit
  | Guard_miss
  | Remote_fault of { queued : int; stall : int }
  | Clean_fault of { stall : int }
  | Prefetch_issue of { origin_ds : int; origin_obj : int }
  | Batch_fetch of { count : int; bytes : int }
  | Prefetch_use of { timely : bool }
  | Prefetch_late of { wait : int }
  | Qp_busy of { qp : int; busy : int }
  | Fault_inject of { kind : string }
  | Retry_backoff of { attempt : int; wait : int }
  | Fetch_timeout of { budget : int }
  | Degrade of { level : int; observed_pct : int }
  | Evict of { dirty : bool }
  | Writeback of { bytes : int }
  | Policy_switch of { from_pf : string; to_pf : string }
  | Epoch_mark
  | Loop_version of { clean : bool }
  | Call_enter of { fn : string }
  | Call_exit of { fn : string }

type t = {
  ev_cycle : int;
  ev_ds : int;
  ev_obj : int;
  ev_kind : kind;
}

let make ~cycle ~ds ~obj kind =
  { ev_cycle = cycle; ev_ds = ds; ev_obj = obj; ev_kind = kind }

let kind_name = function
  | Guard_hit -> "guard_hit"
  | Guard_miss -> "guard_miss"
  | Remote_fault _ -> "remote_fault"
  | Clean_fault _ -> "clean_fault"
  | Prefetch_issue _ -> "prefetch_issue"
  | Batch_fetch _ -> "batch_fetch"
  | Prefetch_use _ -> "prefetch_use"
  | Prefetch_late _ -> "prefetch_late"
  | Qp_busy _ -> "qp_busy"
  | Fault_inject _ -> "fault_inject"
  | Retry_backoff _ -> "retry_backoff"
  | Fetch_timeout _ -> "fetch_timeout"
  | Degrade _ -> "degrade"
  | Evict _ -> "evict"
  | Writeback _ -> "writeback"
  | Policy_switch _ -> "policy_switch"
  | Epoch_mark -> "epoch"
  | Loop_version _ -> "loop_version"
  | Call_enter _ -> "call_enter"
  | Call_exit _ -> "call_exit"

let category = function
  | Guard_hit | Guard_miss -> "guard"
  | Remote_fault _ | Clean_fault _ -> "fault"
  | Prefetch_issue _ | Batch_fetch _ | Prefetch_use _ | Prefetch_late _ ->
    "prefetch"
  | Qp_busy _ | Fault_inject _ | Retry_backoff _ | Fetch_timeout _ -> "fabric"
  | Evict _ | Writeback _ -> "cache"
  | Policy_switch _ | Epoch_mark | Degrade _ -> "policy"
  | Loop_version _ -> "versioning"
  | Call_enter _ | Call_exit _ -> "interp"

(* Span events carry their own duration; everything else is an
   instant on the timeline. *)
let duration = function
  | Remote_fault { stall; _ } -> Some stall
  | Clean_fault { stall } -> Some stall
  | Prefetch_late { wait } -> Some wait
  | Qp_busy { busy; _ } -> Some busy
  | Retry_backoff { wait; _ } -> Some wait
  | Fetch_timeout { budget } -> Some budget
  | _ -> None
