type scope = Global | Ds of int

type factors = {
  f_queued : float;
  f_proto : float;
  f_wire : float;
  f_retry : float;
  f_pf_wait : float;
  f_trap : float;
}

let unit_factors =
  { f_queued = 1.0; f_proto = 1.0; f_wire = 1.0;
    f_retry = 1.0; f_pf_wait = 1.0; f_trap = 1.0 }

type exec =
  | Exec_none
  | Exec_scale of { eds : string option; proto : float; wire : float }
  | Exec_qp of int
  | Exec_fault_free
  | Exec_instant_prefetch

type scenario = {
  sc_id : string;
  sc_label : string;
  sc_scope : scope;
  sc_factors : factors;
  sc_exec : exec;
}

type prediction = {
  p_scenario : scenario;
  p_baseline : int;
  p_cycles : int;
  p_saved : int;
  p_speedup : float;
  p_chain_stall : int;
}

(* Factor 1.0 short-circuits to the untouched integer, mirroring
   Fabric.scale_cycles: the identity scenario must reproduce every
   recorded phase bit-for-bit, not merely to rounding. *)
let scale_phase f c =
  if f = 1.0 || c = 0 then c
  else max 0 (int_of_float ((float_of_int c *. f) +. 0.5))

let identity =
  { sc_id = "identity";
    sc_label = "baseline re-run (all factors x1.0)";
    sc_scope = Global;
    sc_factors = unit_factors;
    sc_exec = Exec_scale { eds = None; proto = 1.0; wire = 1.0 } }

let scenario_of_factors ~id ~label ?(scope = Global) ?(exec = Exec_none)
    factors =
  { sc_id = id; sc_label = label; sc_scope = scope;
    sc_factors = factors; sc_exec = exec }

(* The replay walks spans in id order — the same forward pass
   Critical_path uses, valid because sp_parent < sp_id always.  It is
   anchored to the *recorded* schedule: rather than re-simulating the
   fabric from scratch (which would have to reconstruct state the
   spans never captured, like NACK turnarounds holding a QP), it
   computes signed deltas against what actually happened:

   - [cpu_shift]: how many cycles earlier the CPU timeline now sits.
     Every CPU-stall span (Demand/Escalated/Retry/Pf_settle/Trap)
     adds (old stall - new stall).
   - [qp_save.(qp)]: how much earlier that queue pair frees up under
     the new cost regime, so a span that was queued re-derives its
     wait as max(arrival', recorded-start - save) - arrival'.
   - [new_complete]: re-priced completion times of prefetch/batch
     spans, so Pf_settle spans re-derive their wait from when the
     prefetch *now* lands vs when the access *now* happens.

   Under unit factors every delta is zero by construction, which is
   what makes the identity scenario exact. *)
let predict ~total col sc =
  let spans =
    List.sort (fun (a : Span.t) b -> compare a.sp_id b.sp_id) (Span.spans col)
  in
  let fs (s : Span.t) =
    match sc.sc_scope with
    | Global -> sc.sc_factors
    | Ds h -> if s.sp_ds = h then sc.sc_factors else unit_factors
  in
  let n = max 16 (Span.length col) in
  let cpu_shift = ref 0 in
  let qp_save : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let new_complete : (int, int) Hashtbl.t = Hashtbl.create n in
  (* batch id -> (new start-of-wire base, wire factor): members place
     their completions at base + scaled cumulative serialization. *)
  let batch_base : (int, int * float) Hashtbl.t = Hashtbl.create 16 in
  let by_id : (int, Span.t) Hashtbl.t = Hashtbl.create n in
  let chain : (int, int) Hashtbl.t = Hashtbl.create n in
  let best_chain = ref 0 in
  let note_chain (s : Span.t) ns =
    let pc =
      match Hashtbl.find_opt chain s.sp_parent with Some c -> c | None -> 0
    in
    let c = ns + pc in
    Hashtbl.replace chain s.sp_id c;
    if c > !best_chain then best_chain := c
  in
  (* Re-price a span that occupied a queue pair.  The attempt's
     arrival is recovered as sp_start - sp_queued (for a demand span
     that retried, sp_issued is the occasion start, not the final
     attempt's arrival).  Returns the new (queued, proto, wire) split
     and the new completion time. *)
  let occupancy (s : Span.t) (f : factors) =
    let proto' = scale_phase f.f_proto s.sp_proto in
    let wire' = scale_phase f.f_wire s.sp_wire in
    let arrival = s.sp_start - s.sp_queued in
    let new_arrival = arrival - !cpu_shift in
    let save =
      match Hashtbl.find_opt qp_save s.sp_qp with Some v -> v | None -> 0
    in
    let new_start =
      if s.sp_queued > 0 then max new_arrival (s.sp_start - save)
      else new_arrival
    in
    let queued' = scale_phase f.f_queued (new_start - new_arrival) in
    let eff = new_arrival + queued' in
    let old_busy_end = s.sp_start + s.sp_proto + s.sp_wire in
    let new_busy_end = eff + proto' + wire' in
    if s.sp_qp >= 0 then
      Hashtbl.replace qp_save s.sp_qp (old_busy_end - new_busy_end);
    (queued', proto', wire', new_busy_end)
  in
  List.iter
    (fun (s : Span.t) ->
      Hashtbl.replace by_id s.sp_id s;
      let f = fs s in
      match s.sp_kind with
      | Span.Demand | Span.Escalated ->
        let q', p', w', nc = occupancy s f in
        let new_stall =
          q' + p' + w'
          + scale_phase f.f_retry s.sp_retry
          + scale_phase f.f_pf_wait s.sp_pf_wait
          + scale_phase f.f_trap s.sp_trap
        in
        cpu_shift := !cpu_shift + (Span.stall s - new_stall);
        Hashtbl.replace new_complete s.sp_id nc;
        note_chain s new_stall
      | Span.Batch ->
        let q', p', w', nc = occupancy s f in
        Hashtbl.replace new_complete s.sp_id nc;
        Hashtbl.replace batch_base s.sp_id (nc - w', f.f_wire);
        note_chain s (q' + p' + w')
      | Span.Prefetch -> (
        match s.sp_edge with
        | Some Span.E_member ->
          (* Zero-phase member: its completion is the batch's wire
             base plus its own cumulative serialization share,
             recovered from the recorded offsets. *)
          let nc =
            match
              ( Hashtbl.find_opt batch_base s.sp_parent,
                Hashtbl.find_opt by_id s.sp_parent )
            with
            | Some (base, fw), Some b ->
              let cum = max 0 (s.sp_complete - (b.sp_start + b.sp_proto)) in
              base + scale_phase fw cum
            | _ -> s.sp_complete - !cpu_shift
          in
          Hashtbl.replace new_complete s.sp_id nc;
          note_chain s 0
        | _ ->
          let q', p', w', nc = occupancy s f in
          Hashtbl.replace new_complete s.sp_id nc;
          note_chain s (q' + p' + w'))
      | Span.Pf_settle ->
        let access = s.sp_issued - !cpu_shift in
        let raw =
          match Hashtbl.find_opt new_complete s.sp_parent with
          | Some pnc when s.sp_edge = Some Span.E_satisfy ->
            max 0 (pnc - access)
          | _ -> s.sp_pf_wait
        in
        let new_wait = scale_phase f.f_pf_wait raw in
        cpu_shift := !cpu_shift + (s.sp_pf_wait - new_wait);
        note_chain s new_wait
      | Span.Retry ->
        (* The NACK turnaround + backoff is CPU-visible; the QP it
           held carries no id in the span, so its occupancy is not
           re-derived (documented approximation). *)
        let new_stall =
          scale_phase f.f_retry s.sp_retry
          + scale_phase f.f_queued s.sp_queued
          + scale_phase f.f_proto s.sp_proto
          + scale_phase f.f_wire s.sp_wire
        in
        cpu_shift := !cpu_shift + (Span.stall s - new_stall);
        note_chain s new_stall
      | Span.Trap ->
        let new_stall = scale_phase f.f_trap s.sp_trap in
        cpu_shift := !cpu_shift + (s.sp_trap - new_stall);
        note_chain s new_stall
      | Span.Pf_hit -> note_chain s 0)
    spans;
  let predicted = max 0 (total - !cpu_shift) in
  { p_scenario = sc;
    p_baseline = total;
    p_cycles = predicted;
    p_saved = total - predicted;
    p_speedup =
      (if predicted > 0 then float_of_int total /. float_of_int predicted
       else Float.infinity);
    p_chain_stall = !best_chain }

let catalog ?(per_ds = 2) ~names col =
  let base =
    [ identity;
      scenario_of_factors ~id:"proto-x0.5"
        ~label:"near-cache RPC path: protocol cost halved"
        ~exec:(Exec_scale { eds = None; proto = 0.5; wire = 1.0 })
        { unit_factors with f_proto = 0.5 };
      scenario_of_factors ~id:"wire-x0"
        ~label:"infinite bandwidth: serialization free"
        ~exec:(Exec_scale { eds = None; proto = 1.0; wire = 0.0 })
        { unit_factors with f_wire = 0.0 };
      scenario_of_factors ~id:"queue-x0"
        ~label:"infinite QPs: queue waits vanish"
        ~exec:(Exec_qp 64)
        { unit_factors with f_queued = 0.0 };
      scenario_of_factors ~id:"pf-wait-x0"
        ~label:"perfect prefetch: in-flight waits vanish"
        ~exec:Exec_instant_prefetch
        { unit_factors with f_pf_wait = 0.0 };
      scenario_of_factors ~id:"retry-x0"
        ~label:"fault-free fabric: retry/backoff vanish"
        ~exec:Exec_fault_free
        { unit_factors with f_retry = 0.0 } ]
  in
  (* Per-structure variants for the structures carrying the most
     recorded CPU stall: scoped by handle for prediction and by the
     static structure name for execution, which agree because batch
     spans carry the origin structure's handle and the runtime scales
     batches by the origin structure too. *)
  let tbl : (int, int) Hashtbl.t = Hashtbl.create 8 in
  Span.iter
    (fun (s : Span.t) ->
      match s.sp_kind with
      | Span.Demand | Span.Escalated | Span.Retry | Span.Pf_settle
      | Span.Trap ->
        if s.sp_ds > 0 then
          Hashtbl.replace tbl s.sp_ds
            ((match Hashtbl.find_opt tbl s.sp_ds with
              | Some v -> v
              | None -> 0)
            + Span.stall s)
      | _ -> ())
    col;
  let top =
    Hashtbl.fold (fun ds v acc -> (ds, v) :: acc) tbl []
    |> List.filter (fun (_, v) -> v > 0)
    |> List.sort (fun (da, a) (db, b) ->
           if a <> b then compare b a else compare da db)
    |> List.filteri (fun i _ -> i < per_ds)
  in
  base
  @ List.map
      (fun (ds, _) ->
        let name = names ds in
        scenario_of_factors
          ~id:("proto-x0.5@" ^ name)
          ~label:(Printf.sprintf "protocol cost halved for %s only" name)
          ~scope:(Ds ds)
          ~exec:(Exec_scale { eds = Some name; proto = 0.5; wire = 1.0 })
          { unit_factors with f_proto = 0.5 })
      top

let rank ~total col scenarios =
  List.map (predict ~total col) scenarios
  |> List.sort (fun a b ->
         if a.p_saved <> b.p_saved then compare b.p_saved a.p_saved
         else compare a.p_scenario.sc_id b.p_scenario.sc_id)
