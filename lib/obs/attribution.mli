(** Stall root-cause attribution.

    The cycle-attribution profiler ({!Profile}) answers {e how much}
    time each structure stalled; this ledger answers {e why}: every
    stalled CPU cycle is charged to exactly one root cause —

    - {!Proto}: per-request protocol overhead (doorbells, completion
      polling, bookkeeping) plus address-to-object mapping;
    - {!Wire}: serialization cycles on the link;
    - [Queue qp]: inbound contention — cycles spent queued behind
      earlier transfers on queue pair [qp] (e.g. a demand fault stuck
      behind a streaming prefetch window);
    - {!Pf_wait}: stalls on late (in-flight) prefetches;
    - {!Retry}: cycles burned on failed fetch attempts, backoff
      waits, and the reliable-channel escalation under fault
      injection — zero on a healthy fabric;
    - {!Guard_exec}: custody checks and local guard hit/miss cost;
    - {!Trap}: clean-fault trap overhead on unguarded paths;
    - {!Bookkeeping}: [ds_init] / [dsalloc] / loop-version checks —

    and double-keyed by data structure {e and} access site (function,
    basic block, instruction index: the identity the compiler's
    rewrite operates on, threaded from the interpreter).  The
    exactness invariant mirrors the profiler's:

    {[ total ledger = Runtime.now - Profile.compute ]}

    — every non-compute clock advance lands here exactly once, with
    the queue/protocol/serialization split {!Cards_net.Fabric.transfer}
    exposes.  The ledger never writes the clock: attributed and
    unattributed runs are cycle-identical. *)

type cause =
  | Proto        (** per-request protocol + mapping overhead *)
  | Wire         (** serialization cycles on the link *)
  | Queue of int (** inbound queueing behind this queue pair *)
  | Pf_wait      (** stall waiting on a late (in-flight) prefetch *)
  | Retry        (** failed attempts, backoff waits, escalations *)
  | Guard_exec   (** custody checks + local guard hit/miss cost *)
  | Trap         (** clean-fault trap overhead *)
  | Bookkeeping  (** ds_init / dsalloc / loop-version checks *)

val cause_name : cause -> string
(** Stable human label, e.g. ["qp0 queueing"]. *)

type site = {
  s_fn : string;   (** function name *)
  s_block : int;   (** basic-block id ([-1]: outside interpreted code) *)
  s_instr : int;   (** instruction index within the block *)
}

val unknown_site : site
(** [("(runtime)", -1, -1)]: charges from direct runtime API use
    (benchmarks, tests) with no interpreted instruction behind them. *)

val site_name : site -> string
(** ["fn/bb2#5"], or just the function name for {!unknown_site}. *)

type t

val create : unit -> t

val charge :
  t -> ds:int -> fn:string -> block:int -> instr:int -> cause -> int -> unit
(** Charge [cycles] to one cause at one (structure, site) key.  The
    site is passed as components so the hot path does not allocate; a
    one-entry memo makes consecutive same-site charges O(1). *)

val total : t -> int
(** Σ over every key and cause — must equal
    [Runtime.now - Profile.compute] (the exactness invariant tests
    assert). *)

val causes : t -> cause list
(** Display order: protocol, wire, one [Queue] entry per queue pair
    ever charged, late-prefetch, retry, guard, trap, bookkeeping. *)

val cause_totals : t -> (cause * int) list
(** Per-cause totals over all structures and sites, in {!causes}
    order; their sum is {!total}. *)

val ds_cause_totals : t -> int -> (cause * int) list
(** Per-cause totals restricted to one structure handle. *)

val ds_list : t -> int list
(** Structure handles with at least one charged cell, ascending. *)

type site_row = {
  r_site : site;
  r_ds : int;
  r_total : int;                 (** this key's total stall *)
  r_causes : (cause * int) list; (** non-zero causes, largest first *)
}

val site_rows : ?limit:int -> t -> site_row list
(** Per-(site, structure) breakdown, heaviest first — the "loop at
    [traverse]/bb2 paid 71% of its stall to qp0 queueing" view. *)
