(** Cycle-attribution profiler.

    Splits the run's total simulated cycles into buckets, per data
    structure (handle [0] = unmanaged segment / runtime bookkeeping
    not tied to one structure), plus one global compute bucket fed by
    the interpreter's instruction charges.  The runtime attributes
    {e every} clock advance to exactly one bucket, so

    {[ compute + Σ_handles wall(buckets) = Runtime.now ]}

    holds exactly — the invariant [test/test_obs.ml] asserts and the
    property that makes "where did the cycles go" answerable without
    double counting.  Attribution never touches the clock itself, so
    profiled and unprofiled runs report identical cycle counts.

    Also collects per-structure fetch-latency distributions
    (demand-fault stalls and late-prefetch waits) in bounded-memory
    log-bucket histograms ({!Cards_util.Stats}), so p50/p90/p99/p999
    tail latency is answerable per structure without retaining
    samples. *)

type buckets = {
  mutable p_guard : int;
      (** guard executions: custody checks + local hit/miss cost *)
  mutable p_demand : int;
      (** demand-fetch stall: protocol + wire + mapping cycles *)
  mutable p_queue : int;
      (** demand-fetch cycles spent queued behind other transfers *)
  mutable p_pf_stall : int;
      (** stalls waiting on late (in-flight) prefetches *)
  mutable p_retry : int;
      (** failed fetch attempts, backoff waits, and reliable-channel
          escalations under fault injection (zero when faults are off) *)
  mutable p_trap : int;
      (** clean-fault trap penalties on unguarded paths *)
  mutable p_alloc : int;
      (** ds_init / dsalloc / loop-check bookkeeping *)
  mutable p_hidden : int;
      (** {e informational}, not wall-clock: fetch latency hidden by
          timely prefetches (what demand faults would have cost) *)
  lat : Cards_util.Stats.t;  (** fetch-latency distribution *)
}

type t

val create : unit -> t

val buckets : t -> int -> buckets
(** Bucket record for a handle, auto-created. *)

val add_compute : t -> int -> unit
(** Charge interpreter/compute cycles (the residual category). *)

val compute : t -> int

val wall : buckets -> int
(** Sum of one handle's wall-clock buckets ([p_hidden] excluded). *)

val attributed : t -> int
(** [compute + Σ wall] over all handles; equals the runtime clock. *)

val handles : t -> int list

val record_latency : buckets -> int -> unit
(** Add one fetch latency (cycles) to the handle's distribution. *)

val latency : buckets -> Cards_util.Stats.t
(** One handle's fetch-latency distribution (percentiles, count). *)

val merged_latency : t -> Cards_util.Stats.t
(** The latency distribution merged over all handles (bucket-wise). *)

val merged_hist : t -> int array
(** Octave (log₂) view of {!merged_latency}: bucket [i] counts
    latencies in [2^i, 2^(i+1)).  Length {!hist_buckets}. *)

val hist_buckets : int
