(** Cycle-attribution profiler.

    Splits the run's total simulated cycles into buckets, per data
    structure (handle [0] = unmanaged segment / runtime bookkeeping
    not tied to one structure), plus one global compute bucket fed by
    the interpreter's instruction charges.  The runtime attributes
    {e every} clock advance to exactly one bucket, so

    {[ compute + Σ_handles wall(buckets) = Runtime.now ]}

    holds exactly — the invariant [test/test_obs.ml] asserts and the
    property that makes "where did the cycles go" answerable without
    double counting.  Attribution never touches the clock itself, so
    profiled and unprofiled runs report identical cycle counts.

    Also collects per-structure log₂-bucketed histograms of fetch
    latency (demand-fault stalls and late-prefetch waits). *)

type buckets = {
  mutable p_guard : int;
      (** guard executions: custody checks + local hit/miss cost *)
  mutable p_demand : int;
      (** demand-fetch stall: protocol + wire + mapping cycles *)
  mutable p_queue : int;
      (** demand-fetch cycles spent queued behind other transfers *)
  mutable p_pf_stall : int;
      (** stalls waiting on late (in-flight) prefetches *)
  mutable p_trap : int;
      (** clean-fault trap penalties on unguarded paths *)
  mutable p_alloc : int;
      (** ds_init / dsalloc / loop-check bookkeeping *)
  mutable p_hidden : int;
      (** {e informational}, not wall-clock: fetch latency hidden by
          timely prefetches (what demand faults would have cost) *)
  lat_hist : int array;  (** log₂ fetch-latency histogram *)
}

type t

val create : unit -> t

val buckets : t -> int -> buckets
(** Bucket record for a handle, auto-created. *)

val add_compute : t -> int -> unit
(** Charge interpreter/compute cycles (the residual category). *)

val compute : t -> int

val wall : buckets -> int
(** Sum of one handle's wall-clock buckets ([p_hidden] excluded). *)

val attributed : t -> int
(** [compute + Σ wall] over all handles; equals the runtime clock. *)

val handles : t -> int list

val record_latency : buckets -> int -> unit
(** Add one fetch latency (cycles) to the handle's histogram. *)

val merged_hist : t -> int array
(** Histogram summed over all handles. *)

val hist_buckets : int
(** Length of [lat_hist]: bucket [i] counts latencies in
    [2^i, 2^(i+1)). *)
