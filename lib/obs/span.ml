module Vec = Cards_util.Vec

type kind =
  | Demand
  | Escalated
  | Retry
  | Prefetch
  | Batch
  | Pf_settle
  | Pf_hit
  | Trap

type edge = E_trigger | E_member | E_retry | E_satisfy | E_trap

type t = {
  sp_id : int;
  sp_kind : kind;
  sp_parent : int;
  sp_edge : edge option;
  sp_ds : int;
  sp_obj : int;
  sp_fn : string;
  sp_block : int;
  sp_instr : int;
  sp_issued : int;
  sp_start : int;
  sp_complete : int;
  sp_queued : int;
  sp_proto : int;
  sp_wire : int;
  sp_retry : int;
  sp_pf_wait : int;
  sp_trap : int;
  sp_qp : int;
  sp_bytes : int;
  sp_fault : string option;
}

let kind_name = function
  | Demand -> "demand"
  | Escalated -> "escalated"
  | Retry -> "retry"
  | Prefetch -> "prefetch"
  | Batch -> "batch"
  | Pf_settle -> "pf-settle"
  | Pf_hit -> "pf-hit"
  | Trap -> "trap"

let edge_name = function
  | E_trigger -> "trigger"
  | E_member -> "member"
  | E_retry -> "retry-of"
  | E_satisfy -> "satisfies"
  | E_trap -> "trap-fetch"

let stall s =
  s.sp_queued + s.sp_proto + s.sp_wire + s.sp_retry + s.sp_pf_wait + s.sp_trap

type collector = {
  c_rate : float;
  mutable c_acc : float;  (* sampling accumulator, in [0, 1) *)
  mutable c_next : int;  (* next span id *)
  c_spans : t Vec.t;
  c_inflight : (int * int, int) Hashtbl.t;  (* (ds, obj) -> span id *)
  mutable c_listener : (t -> unit) option;
}

let create ?(rate = 1.0) () =
  { c_rate = Float.min 1.0 (Float.max 0.0 rate);
    c_acc = 0.0;
    c_next = 0;
    c_spans = Vec.create ();
    c_inflight = Hashtbl.create 64;
    c_listener = None }

let rate c = c.c_rate

let sampled c =
  c.c_rate >= 1.0
  ||
  (c.c_acc <- c.c_acc +. c.c_rate;
   c.c_acc >= 1.0
   &&
   (c.c_acc <- c.c_acc -. 1.0;
    true))

let fresh c =
  let id = c.c_next in
  c.c_next <- id + 1;
  id

let add c s =
  ignore (Vec.push c.c_spans s);
  match c.c_listener with Some f -> f s | None -> ()

let length c = Vec.length c.c_spans

let spans c = Vec.to_list c.c_spans

let iter f c = Vec.iteri (fun _ s -> f s) c.c_spans

let set_listener c f = c.c_listener <- Some f

let note_inflight c ~ds ~obj ~span = Hashtbl.replace c.c_inflight (ds, obj) span

let take_inflight c ~ds ~obj =
  match Hashtbl.find_opt c.c_inflight (ds, obj) with
  | Some span ->
    Hashtbl.remove c.c_inflight (ds, obj);
    span
  | None -> -1

type totals = {
  tot_queue : int array;
  tot_proto : int;
  tot_wire : int;
  tot_retry : int;
  tot_pf_wait : int;
  tot_trap : int;
}

let cpu_totals c =
  let qp_max =
    let m = ref 0 in
    iter (fun s -> if s.sp_qp > !m then m := s.sp_qp) c;
    !m
  in
  let queue = Array.make (qp_max + 1) 0 in
  let proto = ref 0 and wire = ref 0 in
  let retry = ref 0 and pf_wait = ref 0 and trap = ref 0 in
  iter
    (fun s ->
      match s.sp_kind with
      | Demand | Escalated ->
        if s.sp_qp >= 0 then queue.(s.sp_qp) <- queue.(s.sp_qp) + s.sp_queued;
        proto := !proto + s.sp_proto;
        wire := !wire + s.sp_wire
      | Retry -> retry := !retry + s.sp_retry
      | Pf_settle -> pf_wait := !pf_wait + s.sp_pf_wait
      | Trap -> trap := !trap + s.sp_trap
      | Prefetch | Batch | Pf_hit -> ())
    c;
  { tot_queue = queue;
    tot_proto = !proto;
    tot_wire = !wire;
    tot_retry = !retry;
    tot_pf_wait = !pf_wait;
    tot_trap = !trap }

let well_formed c =
  let seen = Hashtbl.create (length c) in
  let ok = ref true in
  iter
    (fun s ->
      if Hashtbl.mem seen s.sp_id then ok := false;
      Hashtbl.replace seen s.sp_id ();
      if s.sp_id < 0 || s.sp_id >= c.c_next then ok := false;
      if s.sp_parent < -1 || s.sp_parent >= s.sp_id then ok := false;
      match s.sp_edge with
      | Some _ -> if s.sp_parent < 0 then ok := false
      | None -> if s.sp_parent >= 0 then ok := false)
    c;
  !ok
