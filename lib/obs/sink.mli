(** The instrumentation hook handed to the runtime and interpreter.

    A sink bundles an optional event ring ({!Trace}) and an optional
    metrics series ({!Metrics}).  The default {!null} sink has
    neither: instrumented call sites check {!tracing} / {!sampling}
    (one cached boolean load) before constructing an event, so a run
    without observability does no extra allocation and follows the
    seed fast path. *)

type t

val null : t
(** No trace, no metrics; every hook is a no-op. *)

val create : ?trace_capacity:int -> ?metrics_interval:int -> unit -> t
(** Tracing is enabled iff [trace_capacity] is given; metric sampling
    iff [metrics_interval] (cycles) is given. *)

val tracing : t -> bool
(** Call sites must gate event construction on this. *)

val sampling : t -> bool

val emit : t -> Event.t -> unit

val metrics_due : t -> now:int -> bool

val trace : t -> Trace.t option
val metrics : t -> Metrics.t option
