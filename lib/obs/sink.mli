(** The instrumentation hook handed to the runtime and interpreter.

    A sink bundles an optional event ring ({!Trace}), an optional
    metrics series ({!Metrics}), an optional causal span collector
    ({!Span}) with its optional flight recorder ({!Recorder}), and
    the {!Reporter} through which all human-readable diagnostics
    flow.  The default {!null} sink has none of them: instrumented
    call sites check {!tracing} / {!sampling} / {!spanning} (one
    cached boolean load) before constructing anything, so a run
    without observability does no extra allocation and follows the
    seed fast path. *)

type t

val null : t
(** No trace, no metrics, no spans, null reporter; every hook is a
    no-op. *)

val create :
  ?trace_capacity:int ->
  ?metrics_interval:int ->
  ?span_rate:float ->
  ?recorder_capacity:int ->
  ?postmortem:bool ->
  ?reporter:Reporter.t ->
  unit ->
  t
(** Tracing is enabled iff [trace_capacity] is given; metric sampling
    iff [metrics_interval] (cycles) is given; span collection iff
    [span_rate] is given (1.0 = every occasion) or a recorder is
    requested.  A flight recorder is attached iff [recorder_capacity]
    or [postmortem] is given; [postmortem] additionally arms a
    one-shot post-mortem dump through [reporter] on the first trap or
    reliable-channel escalation.  [reporter] defaults to
    {!Reporter.null} — embedders that want human-readable summaries
    must opt in (the CLI passes {!Reporter.stderr_reporter}). *)

val tracing : t -> bool
(** Call sites must gate event construction on this. *)

val sampling : t -> bool

val spanning : t -> bool
(** True iff a span collector is attached. *)

val emit : t -> Event.t -> unit

val metrics_due : t -> now:int -> bool

val trace : t -> Trace.t option
val metrics : t -> Metrics.t option
val spans : t -> Span.collector option
val recorder : t -> Recorder.t option
val reporter : t -> Reporter.t

val take_postmortem : t -> bool
(** True exactly once, on the first call after arming: the dump-once
    latch for the post-mortem report. *)
