(** Critical-path attribution over the causal span graph.

    Answers "which single chain of fetches bounds end-to-end time?".
    The chain cost of a span is its own stall plus its parent's chain
    cost; because span parent edges point strictly backwards in id
    order ({!Span.well_formed}), one forward pass over spans sorted
    by id computes every chain cost, and the maximum is the critical
    path of the epoch.  The whole run is analyzed as one epoch —
    program start to the last recorded completion (see DESIGN.md §9).

    The report attributes the winning chain's cycles by phase
    (queued / proto / wire / retry / pf-wait / trap) and by data
    structure, and keeps the chain itself root-first for rendering
    ({!Export.critical_path_table}, JSONL, Chrome flow events). *)

type phase_split = {
  cp_queued : int;
  cp_proto : int;
  cp_wire : int;
  cp_retry : int;
  cp_pf_wait : int;
  cp_trap : int;
}

type report = {
  r_chain : Span.t list;  (** the dominant chain, root first *)
  r_chain_stall : int;  (** total stall cycles along the chain *)
  r_phases : phase_split;  (** chain stall split by phase *)
  r_by_ds : (int * int) list;  (** chain stall by structure, desc *)
  r_span_count : int;  (** spans analyzed *)
  r_end : int;  (** last completion cycle seen across all spans *)
}

val phase_total : phase_split -> int

val analyze : Span.collector -> report option
(** [None] iff no spans were recorded.  A report with an all-zero
    chain ([r_chain_stall = 0]) means every recorded span was free —
    e.g. a run of pure timely prefetch hits. *)
