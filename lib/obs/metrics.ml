module Vec = Cards_util.Vec

type sample = {
  m_cycle : int;
  m_ds : int;
  m_name : string;
  m_resident_bytes : int;
  m_guards : int;
  m_guard_hits : int;
  m_remote_faults : int;
  m_clean_faults : int;
  m_pf_issued : int;
  m_pf_used : int;
  m_pf_late : int;
  m_evictions : int;
  m_fetched_bytes : int;
  m_prefetcher : string;
  m_pf_switches : int;
}

type t = {
  interval : int;
  mutable next_due : int;
  samples : sample Vec.t;
}

let default_interval = 250_000

let create ?(interval = default_interval) () =
  { interval = max 1 interval; next_due = max 1 interval; samples = Vec.create () }

let interval t = t.interval

let due t ~now = now >= t.next_due

let record t s = ignore (Vec.push t.samples s)

let catch_up t ~now =
  (* The clock jumps tens of thousands of cycles at a time (one fault
     ≈ 59 K), so advance past [now] rather than one interval at a
     time. *)
  if now >= t.next_due then begin
    let behind = now - t.next_due in
    t.next_due <- t.next_due + ((behind / t.interval) + 1) * t.interval
  end

let samples t = Vec.to_list t.samples

let n_samples t = Vec.length t.samples
