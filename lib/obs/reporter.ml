type t = { r_emit : (string -> unit) option }

let null = { r_emit = None }

let make emit = { r_emit = Some emit }

let stderr_reporter =
  make (fun s ->
      output_string stderr s;
      flush stderr)

let enabled t = t.r_emit <> None

let text t s = match t.r_emit with Some emit -> emit s | None -> ()

let line t s =
  match t.r_emit with
  | Some emit -> emit (s ^ "\n")
  | None -> ()

let linef t fmt =
  Printf.ksprintf
    (fun s ->
      match t.r_emit with Some emit -> emit (s ^ "\n") | None -> ())
    fmt
