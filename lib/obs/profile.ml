module Stats = Cards_util.Stats

let hist_buckets = Stats.log2_buckets

type buckets = {
  mutable p_guard : int;
  mutable p_demand : int;
  mutable p_queue : int;
  mutable p_pf_stall : int;
  mutable p_retry : int;
  mutable p_trap : int;
  mutable p_alloc : int;
  mutable p_hidden : int;
  lat : Stats.t;
}

let make_buckets () =
  { p_guard = 0; p_demand = 0; p_queue = 0; p_pf_stall = 0; p_retry = 0;
    p_trap = 0; p_alloc = 0; p_hidden = 0; lat = Stats.create () }

type t = {
  per : (int, buckets) Hashtbl.t;
  mutable p_compute : int;
}

let create () = { per = Hashtbl.create 16; p_compute = 0 }

let buckets t h =
  match Hashtbl.find_opt t.per h with
  | Some b -> b
  | None ->
    let b = make_buckets () in
    Hashtbl.replace t.per h b;
    b

let add_compute t c = t.p_compute <- t.p_compute + c

let compute t = t.p_compute

let wall b =
  b.p_guard + b.p_demand + b.p_queue + b.p_pf_stall + b.p_retry + b.p_trap
  + b.p_alloc

let attributed t =
  Hashtbl.fold (fun _ b acc -> acc + wall b) t.per t.p_compute

let handles t =
  List.sort compare (Hashtbl.fold (fun h _ acc -> h :: acc) t.per [])

let record_latency b c = Stats.add b.lat (float_of_int c)

let latency b = b.lat

(* The all-structure latency distribution: bucket-wise merge, no
   sample lists anywhere (Stats is a bounded histogram). *)
let merged_latency t =
  Hashtbl.fold (fun _ b acc -> Stats.merge acc b.lat) t.per (Stats.create ())

let merged_hist t = Stats.log2_counts (merged_latency t)
