let hist_buckets = 44 (* log2 buckets: covers latencies up to ~2^43 cycles *)

type buckets = {
  mutable p_guard : int;
  mutable p_demand : int;
  mutable p_queue : int;
  mutable p_pf_stall : int;
  mutable p_trap : int;
  mutable p_alloc : int;
  mutable p_hidden : int;
  lat_hist : int array;
}

let make_buckets () =
  { p_guard = 0; p_demand = 0; p_queue = 0; p_pf_stall = 0; p_trap = 0;
    p_alloc = 0; p_hidden = 0; lat_hist = Array.make hist_buckets 0 }

type t = {
  per : (int, buckets) Hashtbl.t;
  mutable p_compute : int;
}

let create () = { per = Hashtbl.create 16; p_compute = 0 }

let buckets t h =
  match Hashtbl.find_opt t.per h with
  | Some b -> b
  | None ->
    let b = make_buckets () in
    Hashtbl.replace t.per h b;
    b

let add_compute t c = t.p_compute <- t.p_compute + c

let compute t = t.p_compute

let wall b =
  b.p_guard + b.p_demand + b.p_queue + b.p_pf_stall + b.p_trap + b.p_alloc

let attributed t =
  Hashtbl.fold (fun _ b acc -> acc + wall b) t.per t.p_compute

let handles t =
  List.sort compare (Hashtbl.fold (fun h _ acc -> h :: acc) t.per [])

let log2_bucket c =
  if c <= 0 then 0
  else begin
    let i = ref 0 and v = ref c in
    while !v > 1 do
      v := !v lsr 1;
      incr i
    done;
    min !i (hist_buckets - 1)
  end

let record_latency b c = b.lat_hist.(log2_bucket c) <- b.lat_hist.(log2_bucket c) + 1

let merged_hist t =
  let acc = Array.make hist_buckets 0 in
  Hashtbl.iter
    (fun _ b ->
      Array.iteri (fun i n -> acc.(i) <- acc.(i) + n) b.lat_hist)
    t.per;
  acc
