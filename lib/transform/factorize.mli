(** Memory-layout factorization: hot/cold splitting and AoS→SoA.

    Runs on the freshly lowered module, before pool allocation, so the
    re-analysis the pipeline performs afterwards sees the transformed
    layouts and sizes every descriptor, pool and prefetch class from
    them.  Two rewrites, both driven by {!Cards_analysis.Field_counts}:

    {b Hot/cold splitting} (recursive structs, e.g. list nodes).
    Rarely-accessed fields move out of the node into a {e side pool}:
    the node keeps its hot fields plus one integer slot holding the
    node's allocation index; cold fields live in chunked arrays
    reached through a per-structure directory (a global pointer to an
    array of chunk base pointers).  The node shrinks to the next power
    of two of its hot bytes, so every demand fetch and prefetch run
    carries fewer bytes.  An integer index — not a pointer — links hot
    to cold precisely because the unification-based DSA would merge a
    pointee of a recursive node with the node itself, collapsing both
    halves into one descriptor; the index keeps the hot node, the
    directory and the chunk pools distinct structures, each with its
    own pool and fetch granule.

    {b AoS→SoA} (flat arrays of structs).  The allocation keeps its
    single blob but is re-laid column-major: element pointers stride 8
    bytes instead of the record size, and a field access [p + off]
    becomes [p + (off/8) * n*8] with [n*8] read from a per-array
    stride global written at the allocation site.  Queries touching a
    subset of columns then fault in only those columns' pages.

    Both rewrites bail conservatively: a descriptor is transformed
    only when every allocation site and every address computation that
    can reach it has a shape the rewrite understands, and any access
    site mixing transformed and untransformed views vetoes the whole
    candidate group.  The output module always re-verifies. *)

val run : Cards_ir.Irmod.t -> Cards_analysis.Dsa.t -> Cards_ir.Irmod.t

val splits_last_run : unit -> int
(** Hot/cold-split structure groups rewritten by the last {!run}. *)

val soa_last_run : unit -> int
(** AoS→SoA arrays rewritten by the last {!run}. *)

val chunk : int
(** Cold records per side-pool chunk (a power of two). *)

val dir_slots : int
(** Chunk-pointer slots in a side-pool directory; [chunk * dir_slots]
    caps the cold records per structure group (guards trap on
    overflow rather than corrupting). *)
