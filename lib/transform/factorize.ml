module Func = Cards_ir.Func
module Instr = Cards_ir.Instr
module Types = Cards_ir.Types
module Irmod = Cards_ir.Irmod
module Dsa = Cards_analysis.Dsa
module Field_counts = Cards_analysis.Field_counts
module Cfg = Cards_analysis.Cfg
module Dominators = Cards_analysis.Dominators
module Loops = Cards_analysis.Loops
module Bitset = Cards_util.Bitset
module ISet = Set.Make (Int)

let chunk_bits = 10
let chunk = 1 lsl chunk_bits
let dir_slots = 1024

(* A field is hot when it draws at least a quarter of the hottest
   field's estimated accesses; pointer fields and field 0 are always
   hot (pointer fields keep the chase on the hot node, field 0 keeps
   bare element pointers meaningful without a rewrite). *)
let hot_ratio = 4.0

let pow2_ceil n =
  let r = ref 8 in
  while !r < n do
    r := !r * 2
  done;
  !r

type layout =
  | L_split of {
      elem : int;                      (* original record bytes *)
      hot_map : (int * int) list;      (* old offset -> new hot offset *)
      cold_map : (int * int) list;     (* old offset -> offset in cold record *)
      idx_off : int;                   (* index slot in the new hot record *)
      hot_size : int;
      cold_size : int;
      g_dir : string;
      g_cnt : string;
    }
  | L_soa of { elem : int; g_stride : string }

type counters = { mutable splits : int; mutable soa : int }

let last = { splits = 0; soa = 0 }
let splits_last_run () = last.splits
let soa_last_run () = last.soa

(* ---------- fact gathering ---------- *)

type site = {
  s_fname : string;
  s_bid : int;
  s_idx : int;
  s_size : Instr.value;
  s_depth : int;                       (* loop nesting of the site *)
  s_descs : int list;
}

type facts = {
  bad : bool array;                    (* desc disqualified outright *)
  offs : ISet.t array;                 (* constant field offsets accessed *)
  ptr_offs : ISet.t array;             (* offsets accessed with pointer type *)
  scales : ISet.t array;               (* scaled-gep scales seen *)
  mutable sites : site list;
  dsets : (int list, unit) Hashtbl.t;  (* descriptor sets seen at sites *)
}

let descs_of dsa fname v =
  match v with
  | Instr.Reg _ | Instr.GlobalAddr _ -> begin
    match Dsa.node_of_value dsa ~fname v with
    | Some n -> Dsa.node_descs dsa n
    | None -> []
  end
  | Instr.Imm _ | Instr.Fimm _ | Instr.Null -> []

let mark_bad facts ds = List.iter (fun d -> facts.bad.(d) <- true) ds

let note_dset facts ds =
  if ds <> [] then Hashtbl.replace facts.dsets (List.sort_uniq compare ds) ()

let gather (m : Irmod.t) dsa =
  let n = Dsa.n_descriptors dsa in
  let facts =
    { bad = Array.make n false;
      offs = Array.make n ISet.empty;
      ptr_offs = Array.make n ISet.empty;
      scales = Array.make n ISet.empty;
      sites = [];
      dsets = Hashtbl.create 32 }
  in
  List.iter
    (fun (f : Func.t) ->
      let fname = f.name in
      let cfg = Cfg.of_func f in
      let dom = Dominators.compute cfg in
      let ls = Loops.loops (Loops.compute cfg dom) in
      let depth_of bid =
        Array.fold_left
          (fun acc (l : Loops.loop) ->
            if Bitset.mem l.body bid then acc + 1 else acc)
          0 ls
      in
      let defs = Hashtbl.create 64 in
      Func.iter_instrs f (fun _ _ ins ->
          match Instr.defined_reg ins with
          | Some r -> Hashtbl.replace defs r ins
          | None -> ());
      (* Where inside the record does an address land, and which
         descriptors can it reach?  Offsets only ever come from the
         lowering's constant-offset geps; every other address shape is
         the element base itself (offset 0) — except an address built
         by scalar arithmetic, which no rewrite can adjust, so it
         disqualifies its descriptors. *)
      let classify_addr v =
        match v with
        | Instr.Reg r -> begin
          match Hashtbl.find_opt defs r with
          | Some (Instr.Gep (_, b, Instr.Imm off, 1)) ->
            `Field (Int64.to_int off, descs_of dsa fname b)
          | Some (Instr.Bin _ | Instr.Cmp _ | Instr.I2f _ | Instr.F2i _) ->
            `Arith (descs_of dsa fname v)
          | _ -> `Field (0, descs_of dsa fname v)
        end
        | Instr.GlobalAddr _ | Instr.Imm _ | Instr.Fimm _ | Instr.Null ->
          `Field (0, [])
      in
      Func.iter_instrs f (fun bid idx ins ->
          match ins with
          | Instr.Gep (_, b, iv, scale) ->
            let ds = descs_of dsa fname b in
            note_dset facts ds;
            if scale = 1 then begin
              match iv with
              | Instr.Imm off ->
                let off = Int64.to_int off in
                if off < 0 || off mod 8 <> 0 then mark_bad facts ds
                else
                  List.iter
                    (fun d -> facts.offs.(d) <- ISet.add off facts.offs.(d))
                    ds
              | _ -> mark_bad facts ds (* byte-granular pointer math *)
            end
            else List.iter (fun d -> facts.scales.(d) <- ISet.add scale facts.scales.(d)) ds
          | Instr.Load (_, ty, addr) | Instr.Store (ty, addr, _) -> begin
            match classify_addr addr with
            | `Arith ds -> mark_bad facts ds
            | `Field (off, ds) ->
              note_dset facts ds;
              if off < 0 || off mod 8 <> 0 then mark_bad facts ds
              else
                List.iter
                  (fun d ->
                    facts.offs.(d) <- ISet.add off facts.offs.(d);
                    if Types.is_pointer ty then
                      facts.ptr_offs.(d) <- ISet.add off facts.ptr_offs.(d))
                  ds
          end
          | Instr.Malloc (_, size) -> begin
            match Dsa.malloc_node dsa ~fname ~bid ~idx with
            | None -> ()
            | Some node ->
              let ds = Dsa.node_descs dsa node in
              note_dset facts ds;
              facts.sites <-
                { s_fname = fname; s_bid = bid; s_idx = idx; s_size = size;
                  s_depth = depth_of bid; s_descs = ds }
                :: facts.sites
          end
          | Instr.Free v -> mark_bad facts (descs_of dsa fname v)
          | _ -> ()))
    m.funcs;
  facts

(* ---------- candidate selection ---------- *)

(* SoA needs the element count at the allocation site to publish the
   column stride: either a literal total or the lowering's n * sizeof
   multiply. *)
let stride_source m fname size elem =
  match size with
  | Instr.Imm tot ->
    let tot = Int64.to_int tot in
    if tot > 0 && tot mod elem = 0 then Some (`Const (tot / elem * 8)) else None
  | Instr.Reg s -> begin
    match Irmod.find_func_opt m fname with
    | None -> None
    | Some f ->
      let def = ref None in
      Func.iter_instrs f (fun _ _ ins ->
          match ins with
          | Instr.Bin (r, Instr.Mul, x, Instr.Imm e)
            when r = s && Int64.to_int e = elem -> def := Some (`Count x)
          | Instr.Bin (r, Instr.Mul, Instr.Imm e, x)
            when r = s && Int64.to_int e = elem -> def := Some (`Count x)
          | _ -> ());
      !def
  end
  | _ -> None

(* Union-find over descriptors: descs sharing an allocation site must
   agree on one layout (context-sensitive cloning attributes a single
   malloc instruction to several descriptors). *)
let components n sites =
  let uf = Array.init n (fun i -> i) in
  let rec find i = if uf.(i) = i then i else (uf.(i) <- find uf.(i); uf.(i)) in
  List.iter
    (fun s ->
      match s.s_descs with
      | [] -> ()
      | d0 :: rest -> List.iter (fun d -> uf.(find d) <- find d0) rest)
    sites;
  Array.init n find

let plan m dsa facts counts =
  let n = Dsa.n_descriptors dsa in
  let comp = components n facts.sites in
  let members = Hashtbl.create 8 in
  for d = 0 to n - 1 do
    let c = comp.(d) in
    Hashtbl.replace members c (d :: Option.value (Hashtbl.find_opt members c) ~default:[])
  done;
  let sites_of c =
    List.filter (fun s -> List.exists (fun d -> comp.(d) = c) s.s_descs) facts.sites
  in
  let layouts = Hashtbl.create 8 in
  Hashtbl.iter
    (fun c ds ->
      let ds = List.filter (fun d -> (Dsa.desc_info dsa d).desc_alloc_sites <> []) ds in
      if ds <> [] && not (List.exists (fun d -> facts.bad.(d)) ds) then begin
        let sites = sites_of c in
        let infos = List.map (Dsa.desc_info dsa) ds in
        let offs_u = List.fold_left (fun a d -> ISet.union a facts.offs.(d)) ISet.empty ds in
        let ptrs_u = List.fold_left (fun a d -> ISet.union a facts.ptr_offs.(d)) ISet.empty ds in
        let scales_u = List.fold_left (fun a d -> ISet.union a facts.scales.(d)) ISet.empty ds in
        let recursive = List.exists (fun i -> i.Dsa.desc_recursive) infos in
        if recursive then begin
          (* hot/cold split: fixed-size records, field-addressed only *)
          let sizes =
            List.filter_map
              (fun s -> match s.s_size with
                 | Instr.Imm v -> Some (Int64.to_int v)
                 | _ -> None)
              sites
          in
          match sizes with
          | s0 :: _
            when List.length sizes = List.length sites
                 && List.for_all (( = ) s0) sizes
                 && s0 mod 8 = 0 && s0 >= 24
                 && ISet.is_empty scales_u
                 && (ISet.is_empty offs_u || ISet.max_elt offs_u < s0) ->
            let fields = List.init (s0 / 8) (fun i -> i * 8) in
            let cnt off =
              List.fold_left (fun a d -> a +. Field_counts.count counts ~desc:d ~off)
                0.0 ds
            in
            let maxc = List.fold_left (fun a o -> Float.max a (cnt o)) 0.0 fields in
            let hot =
              List.filter
                (fun o ->
                  o = 0 || ISet.mem o ptrs_u || hot_ratio *. cnt o >= maxc)
                fields
            in
            let cold = List.filter (fun o -> not (List.mem o hot)) fields in
            let hot_size = 8 * (List.length hot + 1) in
            if cold <> [] && pow2_ceil hot_size < pow2_ceil s0 then begin
              let hot_map = List.mapi (fun i o -> (o, i * 8)) hot in
              let cold_map = List.mapi (fun i o -> (o, i * 8)) cold in
              Hashtbl.replace layouts c
                (L_split
                   { elem = s0; hot_map; cold_map;
                     idx_off = 8 * List.length hot;
                     hot_size; cold_size = 8 * List.length cold;
                     g_dir = Printf.sprintf "__cards_cold_dir_%d" c;
                     g_cnt = Printf.sprintf "__cards_cold_n_%d" c })
            end
          | _ -> ()
        end
        else begin
          (* AoS -> SoA: one flat array, one allocation site, executed
             once (main, loop depth 0) so the stride global is written
             exactly when the array exists. *)
          match sites, ISet.elements scales_u with
          | [ site ], [ elem ]
            when site.s_fname = "main" && site.s_depth = 0
                 && elem mod 8 = 0 && elem >= 16
                 && ISet.for_all (fun o -> o < elem) offs_u
                 && ISet.is_empty ptrs_u
                 && List.for_all (fun i -> i.Dsa.desc_ptr_fields = 0) infos ->
            if stride_source m site.s_fname site.s_size elem <> None then
              Hashtbl.replace layouts c
                (L_soa { elem; g_stride = Printf.sprintf "__cards_soa_stride_%d" c })
          | _ -> ()
        end
      end)
    members;
  (* Veto any candidate group that shares an access site with a
     descriptor outside the group: the rewrite would change the
     layout under an access that still uses the old offsets. *)
  let rejected = Hashtbl.create 4 in
  Hashtbl.iter
    (fun dset () ->
      let cs =
        List.sort_uniq compare
          (List.filter_map
             (fun d -> if Hashtbl.mem layouts comp.(d) then Some comp.(d) else None)
             dset)
      in
      match cs with
      | [] -> ()
      | [ c ] ->
        if List.exists (fun d -> comp.(d) <> c) dset then
          Hashtbl.replace rejected c ()
      | cs -> List.iter (fun c -> Hashtbl.replace rejected c ()) cs)
    facts.dsets;
  Hashtbl.iter (fun c () -> Hashtbl.remove layouts c) rejected;
  (comp, layouts)

(* ---------- rewriting ---------- *)

type item =
  | Plain of Instr.instr list
  | Split_alloc of { pre : Instr.instr list; cond : Instr.reg; grow : Instr.instr list }

let cold_addr rw (g_dir, idx_off, cold_size) r b cold_off =
  let fr ty = Rewrite.fresh_reg rw ty in
  let t1 = fr (Types.Ptr Types.I64) in
  let i = fr Types.I64 in
  let db = fr (Types.Ptr Types.I64) in
  let ci = fr Types.I64 in
  let t2 = fr (Types.Ptr Types.I64) in
  let cb = fr (Types.Ptr Types.I64) in
  let sl = fr Types.I64 in
  let t3 = fr (Types.Ptr Types.I64) in
  [ Instr.Gep (t1, b, Instr.Imm (Int64.of_int idx_off), 1);
    Instr.Load (i, Types.I64, Instr.Reg t1);
    Instr.Load (db, Types.Ptr Types.I64, Instr.GlobalAddr g_dir);
    Instr.Bin (ci, Instr.Shr, Instr.Reg i, Instr.Imm (Int64.of_int chunk_bits));
    Instr.Gep (t2, Instr.Reg db, Instr.Reg ci, 8);
    Instr.Load (cb, Types.Ptr Types.I64, Instr.Reg t2);
    Instr.Bin (sl, Instr.And, Instr.Reg i, Instr.Imm (Int64.of_int (chunk - 1)));
    Instr.Gep (t3, Instr.Reg cb, Instr.Reg sl, cold_size);
    Instr.Gep (r, Instr.Reg t3, Instr.Imm (Int64.of_int cold_off), 1) ]

let split_alloc rw (g_dir, g_cnt, idx_off, hot_size, cold_size) r =
  let fr ty = Rewrite.fresh_reg rw ty in
  let n = fr Types.I64 in
  let ti = fr (Types.Ptr Types.I64) in
  let n1 = fr Types.I64 in
  let sl = fr Types.I64 in
  let c = fr Types.I64 in
  let ck = fr (Types.Ptr Types.I64) in
  let db = fr (Types.Ptr Types.I64) in
  let ci = fr Types.I64 in
  let t2 = fr (Types.Ptr Types.I64) in
  Split_alloc
    { pre =
        [ Instr.Malloc (r, Instr.Imm (Int64.of_int hot_size));
          Instr.Load (n, Types.I64, Instr.GlobalAddr g_cnt);
          Instr.Gep (ti, Instr.Reg r, Instr.Imm (Int64.of_int idx_off), 1);
          Instr.Store (Types.I64, Instr.Reg ti, Instr.Reg n);
          Instr.Bin (n1, Instr.Add, Instr.Reg n, Instr.Imm 1L);
          Instr.Store (Types.I64, Instr.GlobalAddr g_cnt, Instr.Reg n1);
          Instr.Bin (sl, Instr.And, Instr.Reg n, Instr.Imm (Int64.of_int (chunk - 1)));
          Instr.Cmp (c, Instr.Eq, Instr.Reg sl, Instr.Imm 0L) ];
      cond = c;
      grow =
        [ Instr.Malloc (ck, Instr.Imm (Int64.of_int (chunk * cold_size)));
          Instr.Load (db, Types.Ptr Types.I64, Instr.GlobalAddr g_dir);
          Instr.Bin (ci, Instr.Shr, Instr.Reg n, Instr.Imm (Int64.of_int chunk_bits));
          Instr.Gep (t2, Instr.Reg db, Instr.Reg ci, 8);
          Instr.Store (Types.Ptr Types.I64, Instr.Reg t2, Instr.Reg ck) ] }

let rewrite_func m dsa comp layouts (f : Func.t) =
  let fname = f.name in
  let rw = Rewrite.of_func f in
  let layout_of ds =
    List.find_map
      (fun d -> Hashtbl.find_opt layouts comp.(d))
      (List.filter (fun d -> d < Array.length comp) ds)
  in
  let nb = Rewrite.nblocks rw in
  for bid = 0 to nb - 1 do
    let items =
      List.mapi
        (fun idx ins ->
          match ins with
          | Instr.Gep (r, b, Instr.Imm off64, 1) -> begin
            let off = Int64.to_int off64 in
            match layout_of (descs_of dsa fname b) with
            | Some (L_split l) -> begin
              match List.assoc_opt off l.hot_map with
              | Some noff -> Plain [ Instr.Gep (r, b, Instr.Imm (Int64.of_int noff), 1) ]
              | None ->
                let coff = List.assoc off l.cold_map in
                Plain (cold_addr rw (l.g_dir, l.idx_off, l.cold_size) r b coff)
            end
            | Some (L_soa l) when off > 0 ->
              let st = Rewrite.fresh_reg rw Types.I64 in
              Plain
                [ Instr.Load (st, Types.I64, Instr.GlobalAddr l.g_stride);
                  Instr.Gep (r, b, Instr.Reg st, off / 8) ]
            | _ -> Plain [ ins ]
          end
          | Instr.Gep (r, b, iv, scale) when scale > 1 -> begin
            match layout_of (descs_of dsa fname b) with
            | Some (L_soa l) when scale = l.elem -> Plain [ Instr.Gep (r, b, iv, 8) ]
            | _ -> Plain [ ins ]
          end
          | Instr.Malloc (r, size) -> begin
            let ds =
              match Dsa.malloc_node dsa ~fname ~bid ~idx with
              | Some node -> Dsa.node_descs dsa node
              | None -> []
            in
            match layout_of ds with
            | Some (L_split l) ->
              split_alloc rw (l.g_dir, l.g_cnt, l.idx_off, l.hot_size, l.cold_size) r
            | Some (L_soa l) -> begin
              let st = Rewrite.fresh_reg rw Types.I64 in
              match stride_source m fname size l.elem with
              | Some (`Const stride) ->
                Plain
                  [ ins; Instr.Mov (st, Instr.Imm (Int64.of_int stride));
                    Instr.Store (Types.I64, Instr.GlobalAddr l.g_stride, Instr.Reg st) ]
              | Some (`Count x) ->
                Plain
                  [ ins; Instr.Bin (st, Instr.Mul, x, Instr.Imm 8L);
                    Instr.Store (Types.I64, Instr.GlobalAddr l.g_stride, Instr.Reg st) ]
              | None -> Plain [ ins ] (* vetted at plan time; never hit *)
            end
            | None -> Plain [ ins ]
          end
          | _ -> Plain [ ins ])
        (Rewrite.instrs rw bid)
    in
    (* Lay the block back out.  Each Split_alloc ends its block with a
       chunk-boundary test branching to a grow block, then control
       rejoins in a continuation holding the rest of the original
       instructions (and, for the last continuation, the original
       terminator). *)
    let orig_term = Rewrite.term rw bid in
    let rec lay cur acc = function
      | [] ->
        Rewrite.set_instrs rw cur (List.concat (List.rev acc));
        Rewrite.set_term rw cur orig_term
      | Plain is :: rest -> lay cur (is :: acc) rest
      | Split_alloc { pre; cond; grow } :: rest ->
        let cont = Rewrite.add_block rw [] (Instr.Br 0) in
        let gblk = Rewrite.add_block rw grow (Instr.Br cont) in
        Rewrite.set_instrs rw cur (List.concat (List.rev (pre :: acc)));
        Rewrite.set_term rw cur (Instr.Cbr (Instr.Reg cond, gblk, cont));
        lay cont [] rest
    in
    lay bid [] items
  done;
  (* Side-pool directories are allocated once, at the top of main. *)
  if fname = "main" then begin
    let inits =
      Hashtbl.fold
        (fun _ l acc ->
          match l with
          | L_split { g_dir; _ } ->
            let dr = Rewrite.fresh_reg rw (Types.Ptr Types.I64) in
            Instr.Malloc (dr, Instr.Imm (Int64.of_int (dir_slots * 8)))
            :: Instr.Store (Types.Ptr Types.I64, Instr.GlobalAddr g_dir, Instr.Reg dr)
            :: acc
          | L_soa _ -> acc)
        layouts []
    in
    if inits <> [] then Rewrite.prepend_entry rw inits
  end;
  Rewrite.finish rw

let run (m : Irmod.t) dsa =
  last.splits <- 0;
  last.soa <- 0;
  let counts = Field_counts.compute m dsa in
  let facts = gather m dsa in
  let comp, layouts = plan m dsa facts counts in
  if Hashtbl.length layouts = 0 then m
  else begin
    Hashtbl.iter
      (fun _ l ->
        match l with
        | L_split _ -> last.splits <- last.splits + 1
        | L_soa _ -> last.soa <- last.soa + 1)
      layouts;
    let globals =
      Hashtbl.fold
        (fun _ l acc ->
          match l with
          | L_split { g_dir; g_cnt; _ } ->
            { Irmod.gname = g_dir; gty = Types.Ptr Types.I64; ginit = Instr.Null }
            :: { Irmod.gname = g_cnt; gty = Types.I64; ginit = Instr.Imm 0L }
            :: acc
          | L_soa { g_stride; _ } ->
            { Irmod.gname = g_stride; gty = Types.I64; ginit = Instr.Imm 0L } :: acc)
        layouts []
    in
    let funcs = List.map (rewrite_func m dsa comp layouts) m.funcs in
    let m' = { Irmod.globals = m.globals @ globals; funcs } in
    Cards_ir.Verify.check_exn m';
    m'
  end
