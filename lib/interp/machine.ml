module Instr = Cards_ir.Instr
module Func = Cards_ir.Func
module Types = Cards_ir.Types
module Irmod = Cards_ir.Irmod
module Runtime = Cards_runtime.Runtime
module Sink = Cards_obs.Sink
module Event = Cards_obs.Event

type result = {
  ret : int;
  cycles : int;
  instructions : int;
  output : string list;
}

exception Trap = Sem.Trap

open Sem

type engine = Reference | Decoded

(* ---------- frame-level evaluation (reference engine) ---------- *)

(* [fl] is the function's register float-ness bitmap, resolved once per
   frame ({!Sem.float_regs} memoizes per function): float-ness is
   static in [reg_tys], so it is never re-derived per access. *)
type frame = { f : Func.t; fl : bool array; ints : int array; floats : float array }

let ival st fr = function
  | Instr.Reg r -> fr.ints.(r)
  | Instr.Imm i -> Int64.to_int i
  | Instr.Null -> 0
  | Instr.GlobalAddr g -> global_addr st g
  | Instr.Fimm _ -> trap "float immediate in integer context"

let fval st fr = function
  | Instr.Reg r ->
    if fr.fl.(r) then fr.floats.(r) else float_of_int fr.ints.(r)
  | Instr.Fimm x -> x
  | Instr.Imm i -> Int64.to_float i
  | Instr.Null -> 0.0
  | Instr.GlobalAddr g -> float_of_int (global_addr st g)

let value_is_floaty fr = function
  | Instr.Fimm _ -> true
  | Instr.Reg r -> fr.fl.(r)
  | Instr.Imm _ | Instr.Null | Instr.GlobalAddr _ -> false

(* ---------- the main loop ---------- *)

let rec exec_function st (f : Func.t) (args : argv list) : argv =
  let fr =
    { f;
      fl = float_regs st f;
      ints = Array.make (Func.nregs f) 0;
      floats = Array.make (Func.nregs f) 0.0 }
  in
  (try
     List.iter2
       (fun (r, ty) a ->
         match ty, a with
         | Types.F64, AF x -> fr.floats.(r) <- x
         | Types.F64, AI x -> fr.floats.(r) <- float_of_int x
         | _, AI x -> fr.ints.(r) <- x
         | _, AF x -> fr.ints.(r) <- int_of_float x)
       f.params args
   with Invalid_argument _ ->
     trap "arity mismatch calling %s" f.name);
  let rec run_block bid =
    let b = f.blocks.(bid) in
    let n = Array.length b.instrs in
    for i = 0 to n - 1 do
      (* Stamp the access site on instructions that can enter the
         runtime, so stall cycles attribute to the instruction that
         paid them ([f.name] is one string per function: the ledger's
         memo compares it physically). *)
      (match b.instrs.(i) with
       | Instr.Load _ | Instr.Store _ | Instr.Guard _ | Instr.Malloc _
       | Instr.DsInit _ | Instr.DsAlloc _ | Instr.LoopCheck _ ->
         Runtime.set_site st.rt ~fn:f.name ~block:bid ~instr:i
       | _ -> ());
      exec_instr st fr b.instrs.(i)
    done;
    match b.term with
    | Instr.Br target ->
      Runtime.charge st.rt st.cost.branch;
      run_block target
    | Instr.Cbr (v, bt, bf) ->
      Runtime.charge st.rt st.cost.branch;
      let c =
        if value_is_floaty fr v then fval st fr v <> 0.0 else ival st fr v <> 0
      in
      run_block (if c then bt else bf)
    | Instr.Ret None -> AI 0
    | Instr.Ret (Some v) ->
      if Types.equal f.ret Types.F64 then AF (fval st fr v) else AI (ival st fr v)
    | Instr.Unreachable -> trap "reached unreachable in %s:L%d" f.name bid
  in
  (* Call-stack spans for the Chrome-trace exporter: B/E pairs on the
     interpreter thread.  A [Trap] unwinds without the exit event,
     which is fine — the trace just ends inside the failing frame. *)
  if Sink.tracing st.obs then begin
    Sink.emit st.obs
      (Event.make ~cycle:(Runtime.now st.rt) ~ds:0 ~obj:0
         (Event.Call_enter { fn = f.name }));
    let res = run_block 0 in
    Sink.emit st.obs
      (Event.make ~cycle:(Runtime.now st.rt) ~ds:0 ~obj:0
         (Event.Call_exit { fn = f.name }));
    res
  end
  else run_block 0

and exec_instr st fr ins =
  st.executed <- st.executed + 1;
  if st.executed > st.fuel then trap "fuel exhausted (%d instructions)" st.fuel;
  let rt = st.rt in
  let cost = st.cost in
  match ins with
  | Instr.Bin (r, op, a, b) ->
    if Instr.is_float_binop op then begin
      Runtime.charge rt cost.alu;
      fr.floats.(r) <- Sem.exec_fbin op (fval st fr a) (fval st fr b)
    end
    else begin
      (match op with
       | Instr.Mul | Instr.Div | Instr.Rem -> Runtime.charge rt cost.mul_div
       | _ -> Runtime.charge rt cost.alu);
      fr.ints.(r) <- Sem.exec_ibin op (ival st fr a) (ival st fr b)
    end
  | Instr.Cmp (r, op, a, b) ->
    Runtime.charge rt cost.alu;
    fr.ints.(r) <-
      (if value_is_floaty fr a || value_is_floaty fr b then
         Sem.exec_fcmp op (fval st fr a) (fval st fr b)
       else Sem.exec_icmp op (ival st fr a) (ival st fr b))
  | Instr.Mov (r, v) ->
    Runtime.charge rt cost.alu;
    if fr.fl.(r) then fr.floats.(r) <- fval st fr v
    else fr.ints.(r) <- ival st fr v
  | Instr.I2f (r, v) ->
    Runtime.charge rt cost.alu;
    fr.floats.(r) <- float_of_int (ival st fr v)
  | Instr.F2i (r, v) ->
    Runtime.charge rt cost.alu;
    fr.ints.(r) <- int_of_float (fval st fr v)
  | Instr.Load (r, ty, addr) ->
    let a = ival st fr addr in
    if Types.equal ty Types.F64 then fr.floats.(r) <- Runtime.read_f64 rt a
    else fr.ints.(r) <- Runtime.read_i64 rt a
  | Instr.Store (ty, addr, v) ->
    let a = ival st fr addr in
    if Types.equal ty Types.F64 then Runtime.write_f64 rt a (fval st fr v)
    else Runtime.write_i64 rt a (ival st fr v)
  | Instr.Gep (r, base, idx, scale) ->
    Runtime.charge rt cost.alu;
    fr.ints.(r) <- ival st fr base + (ival st fr idx * scale)
  | Instr.Malloc (r, size) ->
    fr.ints.(r) <- Runtime.ds_alloc rt ~handle:0 ~size:(ival st fr size)
  | Instr.Free v -> Runtime.free rt (ival st fr v)
  | Instr.Guard (k, addr) ->
    Runtime.guard rt ~write:(k = Instr.Gwrite) (ival st fr addr)
  | Instr.DsInit (r, sid) -> fr.ints.(r) <- Runtime.ds_init rt ~sid
  | Instr.DsAlloc (r, size, h) ->
    fr.ints.(r) <-
      Runtime.ds_alloc rt ~handle:(ival st fr h) ~size:(ival st fr size)
  | Instr.LoopCheck (r, bases) ->
    fr.ints.(r) <-
      (if Runtime.loop_check rt (List.map (ival st fr) bases) then 1 else 0)
  | Instr.Prefetch _ -> Runtime.charge rt cost.alu
  | Instr.Call (ropt, name, args) -> exec_call st fr ropt name args

and exec_call st fr ropt name args =
  let rt = st.rt in
  Runtime.charge rt st.cost.call;
  match name with
  | "print_int" ->
    let v = ival st fr (List.hd args) in
    Buffer.add_string st.out (string_of_int v);
    Buffer.add_char st.out '\n'
  | "print_float" ->
    let v = fval st fr (List.hd args) in
    Buffer.add_string st.out (Printf.sprintf "%.6g" v);
    Buffer.add_char st.out '\n'
  | "clock" -> begin
    match ropt with
    | Some r -> fr.ints.(r) <- Runtime.now rt
    | None -> ()
  end
  | "abort" -> trap "abort() called"
  | _ -> begin
    match Hashtbl.find_opt st.funcs name with
    | None -> trap "call to unknown function %s" name
    | Some callee ->
      let argv =
        try
          List.map2
            (fun (_, ty) v ->
              match ty with
              | Types.F64 -> AF (fval st fr v)
              | _ -> AI (ival st fr v))
            callee.params args
        with Invalid_argument _ ->
          trap "arity mismatch calling %s" name
      in
      let res = exec_function st callee argv in
      (match ropt with
       | Some r -> begin
         match res with
         | AF x ->
           if fr.fl.(r) then fr.floats.(r) <- x
           else fr.ints.(r) <- int_of_float x
         | AI x ->
           if fr.fl.(r) then fr.floats.(r) <- float_of_int x
           else fr.ints.(r) <- x
       end
       | None -> ())
  end

(* ---------- entry points ---------- *)

let lines_of buf =
  String.split_on_char '\n' (Buffer.contents buf)
  |> List.filter (fun s -> s <> "")

let finish st res =
  { ret = (match res with AI x -> x | AF x -> int_of_float x);
    cycles = Runtime.now st.rt;
    instructions = st.executed;
    output = lines_of st.out }

(* Shared by both engines: a program that dies — an interpreter trap
   or a runtime error — triggers the flight recorder's post-mortem
   (when the sink armed one) before the exception propagates.  The
   runtime covers the other dump trigger (fault escalation) itself. *)
let with_postmortem st f =
  try f () with
  | (Trap _ | Runtime.Runtime_error _) as e ->
    let reason =
      match e with
      | Trap msg -> "program trapped: " ^ msg
      | Runtime.Runtime_error msg -> "runtime error: " ^ msg
      | _ -> "program died"
    in
    Runtime.maybe_postmortem st.rt ~reason;
    raise e

let run ?fuel ?(engine = Decoded) (m : Irmod.t) rt =
  let st = Sem.setup ?fuel m rt in
  with_postmortem st (fun () ->
      match engine with
      | Decoded -> finish st (Decode.run_main (Decode.prepare st m))
      | Reference -> (
        match Hashtbl.find_opt st.funcs "main" with
        | None -> trap "module has no main"
        | Some main -> finish st (exec_function st main [])))

let run_function ?fuel ?(engine = Decoded) (m : Irmod.t) rt name args =
  let st = Sem.setup ?fuel m rt in
  let argv = List.map (fun x -> AI x) args in
  with_postmortem st (fun () ->
      match engine with
      | Decoded ->
        finish st (Decode.run_function (Decode.prepare st m) name argv)
      | Reference -> (
        match Hashtbl.find_opt st.funcs name with
        | None -> trap "no function %s" name
        | Some f -> finish st (exec_function st f argv)))

(* ---------- sessions (the serving layer) ---------- *)

(* [Sem.setup] allocates and initializes globals, so [run]/[run_function]
   reset program state on every call.  A session runs setup (and, for
   the decoded engine, [Decode.prepare]) exactly once; each [call] then
   executes against the live heap and reports {e deltas} — the cycles,
   instructions, and output lines that call added. *)
type session = {
  st : Sem.state;
  decoded : Decode.t option; (* None = reference engine *)
  mutable out_taken : int;   (* chars of st.out already handed out *)
}

let session ?fuel ?(engine = Decoded) (m : Irmod.t) rt =
  let st = Sem.setup ?fuel m rt in
  let decoded =
    match engine with
    | Decoded -> Some (Decode.prepare st m)
    | Reference -> None
  in
  { st; decoded; out_taken = 0 }

let call s name args =
  let st = s.st in
  let c0 = Runtime.now st.rt and i0 = st.executed in
  let argv = List.map (fun x -> AI x) args in
  let res =
    with_postmortem st (fun () ->
        match s.decoded with
        | Some d -> Decode.run_function d name argv
        | None -> (
          match Hashtbl.find_opt st.funcs name with
          | None -> trap "no function %s" name
          | Some f -> exec_function st f argv))
  in
  let output =
    let len = Buffer.length st.out in
    let fresh = Buffer.sub st.out s.out_taken (len - s.out_taken) in
    s.out_taken <- len;
    String.split_on_char '\n' fresh |> List.filter (fun l -> l <> "")
  in
  { ret = (match res with AI x -> x | AF x -> int_of_float x);
    cycles = Runtime.now st.rt - c0;
    instructions = st.executed - i0;
    output }
