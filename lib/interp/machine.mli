(** IR interpreter / cycle-accurate-enough simulator.

    Executes a (possibly CaRDS-transformed) IR module against a
    {!Cards_runtime.Runtime}: plain instructions charge per-class CPU
    costs, memory instructions go through the runtime's heap (which
    charges guard, fault, and network costs), and the result carries
    the final cycle count every experiment reports.

    Two execution engines produce that result:

    - {!Decoded} (the default): the pre-decoded engine in {!Decode} —
      each function is compiled at load time into flat arrays of
      specialized closures (static decisions taken once: operand
      float-ness, cost constants, immediate conversion, direct callee
      references with pre-built argument movers) and heap accesses take
      the runtime's translation-cache fast path.
    - {!Reference}: the straightforward tree-walking interpreter kept
      as the oracle.

    Both engines are bit-identical — same output, traps, simulated
    cycles, runtime stats, and stall attribution — which the
    differential suite asserts across the fuzz matrix.

    Integer and pointer registers are native ints (tagged pointers fit
    in 63 bits); float registers live in an unboxed [float array].

    Functional correctness is independent of the far-memory
    configuration — a property the test suite checks by running every
    workload under multiple policies and comparing outputs. *)

type result = {
  ret : int;               (** main's return value (0 for void) *)
  cycles : int;            (** simulated execution time *)
  instructions : int;      (** IR instructions executed *)
  output : string list;    (** print_int / print_float lines, in order *)
}

exception Trap of string
(** Division by zero, [abort], unknown function, fuel exhausted… *)

type engine = Reference | Decoded

val run :
  ?fuel:int ->
  ?engine:engine ->
  Cards_ir.Irmod.t ->
  Cards_runtime.Runtime.t ->
  result
(** Execute [main].  [fuel] bounds the executed instruction count
    (default: unlimited); [engine] selects the execution engine
    (default {!Decoded}). *)

val run_function :
  ?fuel:int ->
  ?engine:engine ->
  Cards_ir.Irmod.t ->
  Cards_runtime.Runtime.t ->
  string ->
  int list ->
  result
(** Execute an arbitrary function with integer/pointer arguments
    (testing hook). *)

(** {2 Sessions}

    [run]/[run_function] re-run global setup on every invocation, so
    each call starts from a fresh program state.  A {!session} performs
    setup (and, for the decoded engine, pre-decoding) once and keeps
    the heap live across calls — the request-serving model: a tenant's
    data structures persist while queries arrive one at a time. *)

type session

val session :
  ?fuel:int ->
  ?engine:engine ->
  Cards_ir.Irmod.t ->
  Cards_runtime.Runtime.t ->
  session
(** Allocate and initialize the module's globals against [rt] and bind
    the execution engine (default {!Decoded}).  [fuel] bounds the total
    instruction count across {e all} calls on the session. *)

val call : session -> string -> int list -> result
(** Execute a named function against the session's live heap.  Unlike
    {!run_function}, the result's [cycles], [instructions], and
    [output] are {e deltas}: what this call alone added on top of the
    session's prior history. *)
