(** Shared interpreter substrate.

    Everything the two execution engines ({!Machine}'s reference
    interpreter and the pre-decoded engine in {!Decode}) must agree on
    lives here: the trap exception, MiniC scalar semantics (including
    the defined shift behaviour), and the per-run execution state
    (function/global tables, instruction budget, output buffer).
    Keeping a single definition is what makes "bit-identical by
    construction" an honest claim for the scalar layer; the
    differential suite proves it for everything else. *)

exception Trap of string
(** Division by zero, [abort], unknown function, fuel exhausted…
    Re-exported as {!Machine.Trap}. *)

val trap : ('a, unit, string, 'b) format4 -> 'a
(** Raise {!Trap} with a formatted message. *)

type argv = AI of int | AF of float
(** A call argument / return value crossing a frame boundary. *)

type state = {
  rt : Cards_runtime.Runtime.t;
  cost : Cards_runtime.Cost.t;
  funcs : (string, Cards_ir.Func.t) Hashtbl.t;
  globals : (string, int) Hashtbl.t;
  floaty : (string, bool array) Hashtbl.t;
  mutable executed : int;
  fuel : int;
  out : Buffer.t;
  obs : Cards_obs.Sink.t;
}
(** Per-run execution state, shared by both engines. *)

val setup : ?fuel:int -> Cards_ir.Irmod.t -> Cards_runtime.Runtime.t -> state
(** Build the function table, allocate and initialize globals.
    [fuel] bounds the executed instruction count (default unlimited). *)

val global_addr : state -> string -> int
(** Unmanaged address of a global; traps when unknown. *)

val float_regs : state -> Cards_ir.Func.t -> bool array
(** Memoized {!Cards_ir.Func.float_regs}: computed once per function
    per run, keyed by name. *)

(** {2 Scalar semantics} *)

val shl : int -> int -> int
val shr : int -> int -> int
(** MiniC shifts: the count is masked to 6 bits (mod 64).  A masked
    count of 63 — unspecified for OCaml's own 63-bit [lsl]/[asr] — is
    defined to shift every magnitude bit out: [shl _ 63 = 0],
    [shr a 63] is the sign of [a] (0 or -1). *)

val exec_ibin : Cards_ir.Instr.binop -> int -> int -> int
val exec_fbin : Cards_ir.Instr.binop -> float -> float -> float
val exec_icmp : Cards_ir.Instr.cmpop -> int -> int -> int
val exec_fcmp : Cards_ir.Instr.cmpop -> float -> float -> int

(** Decode-time variants: resolve the operator to a closure once so
    the per-execution work is an indirect call, not a match.  Trap
    behaviour (division by zero, float op in integer context) is
    preserved inside the returned closure. *)

val ibin_fn : Cards_ir.Instr.binop -> int -> int -> int
val fbin_fn : Cards_ir.Instr.binop -> float -> float -> float
val icmp_fn : Cards_ir.Instr.cmpop -> int -> int -> bool
val fcmp_fn : Cards_ir.Instr.cmpop -> float -> float -> bool
