(** The pre-decoded execution engine.

    [prepare] compiles every function of a module, at load time, into
    flat arrays of specialized closures: operand float-ness resolved
    from [reg_tys], cost constants baked in, immediates converted from
    [Int64] once, callees linked to direct decoded-function references
    with pre-built argument movers, [Runtime.set_site] pre-bound only
    on runtime-entering opcodes, and guarded heap accesses routed
    through the runtime's translation-cache fast path.

    Semantics — output, traps, simulated cycles, runtime stats, stall
    attribution — are bit-identical to {!Machine}'s reference
    interpreter; the differential suite enforces this across the fuzz
    matrix.  Traps are raised at execution time, never at decode time:
    decoding a module with dead ill-typed code or unknown callees
    succeeds, exactly as the reference tolerates it. *)

type t
(** A decoded module, bound to the {!Sem.state} it was prepared with
    (globals are resolved against that state's heap). *)

val prepare : Sem.state -> Cards_ir.Irmod.t -> t
(** Decode every function.  Callees resolve across the whole module,
    including forward references and mutual recursion; duplicate
    function names resolve to the last definition, as in the
    reference's function table. *)

val run_main : t -> Sem.argv
(** Execute [main] with no arguments.  @raise Sem.Trap as the
    reference engine would, including "module has no main". *)

val run_function : t -> string -> Sem.argv list -> Sem.argv
(** Execute a named function.  @raise Sem.Trap on unknown names
    ("no function %s") and arity mismatches. *)
