module Instr = Cards_ir.Instr
module Func = Cards_ir.Func
module Types = Cards_ir.Types
module Irmod = Cards_ir.Irmod
module Runtime = Cards_runtime.Runtime
module Cost = Cards_runtime.Cost
module Sink = Cards_obs.Sink

exception Trap of string

let trap fmt = Printf.ksprintf (fun s -> raise (Trap s)) fmt

type argv = AI of int | AF of float

(* ---------- execution state shared by both engines ---------- *)

type state = {
  rt : Runtime.t;
  cost : Cost.t;
  funcs : (string, Func.t) Hashtbl.t;
  globals : (string, int) Hashtbl.t;  (* name -> unmanaged address *)
  floaty : (string, bool array) Hashtbl.t;
      (* per-function register float-ness, memoized: float-ness is
         static in [reg_tys], so it is resolved once per function and
         never re-derived per access *)
  mutable executed : int;
  fuel : int;
  out : Buffer.t;
  obs : Sink.t;   (* the runtime's sink, cached for call-stack events *)
}

let global_addr st g =
  match Hashtbl.find_opt st.globals g with
  | Some a -> a
  | None -> trap "unknown global @%s" g

let float_regs st (f : Func.t) =
  match Hashtbl.find_opt st.floaty f.name with
  | Some fl -> fl
  | None ->
    let fl = Func.float_regs f in
    Hashtbl.replace st.floaty f.name fl;
    fl

(* ---------- scalar semantics ---------- *)

(* MiniC shift semantics: the shift count is masked to 6 bits (taken
   mod 64).  Values are 63-bit OCaml ints, so a masked count of 63
   would be unspecified behaviour in OCaml ([lsl]/[asr] are only
   defined for counts in [0, 62]); MiniC defines it to shift every
   magnitude bit out: [shl] by 63 yields 0 and [shr] by 63 yields the
   sign (0 or -1 — what [asr 62] already produces on a 63-bit value).
   Both execution engines go through these two functions, and
   test_interp checks the 0/62/63/64 boundary counts on both. *)
let shl a b =
  let s = b land 63 in
  if s > 62 then 0 else a lsl s

let shr a b =
  let s = b land 63 in
  if s > 62 then a asr 62 else a asr s

let exec_ibin op a b =
  match (op : Instr.binop) with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then trap "division by zero" else a / b
  | Rem -> if b = 0 then trap "remainder by zero" else a mod b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl -> shl a b
  | Shr -> shr a b
  | Fadd | Fsub | Fmul | Fdiv -> trap "float op in integer context"

let exec_fbin op a b =
  match (op : Instr.binop) with
  | Fadd -> a +. b
  | Fsub -> a -. b
  | Fmul -> a *. b
  | Fdiv -> a /. b
  | _ -> trap "integer op in float context"

let exec_icmp op a b =
  let r =
    match (op : Instr.cmpop) with
    | Eq -> a = b | Ne -> a <> b | Lt -> a < b
    | Le -> a <= b | Gt -> a > b | Ge -> a >= b
  in
  if r then 1 else 0

let exec_fcmp op (a : float) b =
  let r =
    match (op : Instr.cmpop) with
    | Eq -> a = b | Ne -> a <> b | Lt -> a < b
    | Le -> a <= b | Gt -> a > b | Ge -> a >= b
  in
  if r then 1 else 0

(* Decode-time variants: the operator is resolved to a closure once,
   so the per-execution work is one indirect call instead of a match. *)

let ibin_fn (op : Instr.binop) : int -> int -> int =
  match op with
  | Add -> ( + )
  | Sub -> ( - )
  | Mul -> ( * )
  | Div -> (fun a b -> if b = 0 then trap "division by zero" else a / b)
  | Rem -> (fun a b -> if b = 0 then trap "remainder by zero" else a mod b)
  | And -> ( land )
  | Or -> ( lor )
  | Xor -> ( lxor )
  | Shl -> shl
  | Shr -> shr
  | Fadd | Fsub | Fmul | Fdiv ->
    fun _ _ -> trap "float op in integer context"

let fbin_fn (op : Instr.binop) : float -> float -> float =
  match op with
  | Fadd -> ( +. )
  | Fsub -> ( -. )
  | Fmul -> ( *. )
  | Fdiv -> ( /. )
  | _ -> fun _ _ -> trap "integer op in float context"

let icmp_fn (op : Instr.cmpop) : int -> int -> bool =
  match op with
  | Eq -> ( = ) | Ne -> ( <> ) | Lt -> ( < )
  | Le -> ( <= ) | Gt -> ( > ) | Ge -> ( >= )

let fcmp_fn (op : Instr.cmpop) : float -> float -> bool =
  match op with
  | Eq -> ( = ) | Ne -> ( <> ) | Lt -> ( < )
  | Le -> ( <= ) | Gt -> ( > ) | Ge -> ( >= )

(* ---------- setup ---------- *)

let setup ?(fuel = max_int) (m : Irmod.t) rt =
  let funcs = Hashtbl.create 16 in
  List.iter (fun (f : Func.t) -> Hashtbl.replace funcs f.name f) m.funcs;
  let globals = Hashtbl.create 16 in
  let st =
    { rt; cost = Cost.cards; funcs; globals; floaty = Hashtbl.create 16;
      executed = 0; fuel; out = Buffer.create 256; obs = Runtime.sink rt }
  in
  List.iter
    (fun (g : Irmod.global) ->
      let addr = Runtime.alloc_unmanaged rt ~size:(Types.size_of g.gty) in
      Hashtbl.replace globals g.gname addr;
      match g.ginit with
      | Instr.Imm i -> Runtime.write_i64 rt addr (Int64.to_int i)
      | Instr.Fimm x -> Runtime.write_f64 rt addr x
      | Instr.Null -> Runtime.write_i64 rt addr 0
      | Instr.Reg _ | Instr.GlobalAddr _ -> trap "bad global initializer")
    m.globals;
  st
