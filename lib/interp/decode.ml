(* The pre-decoded execution engine.

   The reference interpreter in machine.ml re-decides everything on
   every instruction: operand-kind matches, float-ness checks that are
   static in [reg_tys], a hash lookup plus two list maps per call, a
   site-stamp match before every instruction.  This engine follows the
   compiler's own rule — take every static decision once, off the hot
   path: at load time each function is compiled into flat arrays of
   specialized closures with

     - int vs float operand reads resolved from [reg_tys] (via the
       memoized float-ness bitmap in {!Sem}),
     - cost constants ([alu]/[mul_div]/[branch]/[call]) baked into
       each closure,
     - [Imm] converted from [Int64] once,
     - callees resolved to direct decoded-function references with
       pre-built argument/result movers (no per-call list allocation),
     - [Runtime.set_site] pre-bound only on the runtime-entering
       opcodes (the reference interpreter matches on every one),
     - guarded heap accesses routed through the runtime's fast path
       ([Runtime.read_i64_fast] & friends): a resident hit costs one
       translation-cache probe, everything else falls back to the
       canonical slow path.

   Semantics are the reference interpreter's, bit for bit: same trap
   messages raised at the same execution points (never at decode
   time — dead code containing an ill-typed operand or an unknown
   callee must stay inert, exactly as it does under the reference),
   same charge order, same simulated cycles, same stats and
   attribution.  test_differential proves this across the whole
   fuzz x qp x batching x fault-rate matrix. *)

module Instr = Cards_ir.Instr
module Func = Cards_ir.Func
module Types = Cards_ir.Types
module Irmod = Cards_ir.Irmod
module Runtime = Cards_runtime.Runtime
module Sink = Cards_obs.Sink
module Event = Cards_obs.Event

open Sem

(* Register files are split as in the reference interpreter; [ret_i] /
   [ret_f] carry the return value out of a frame without allocating. *)
type frame = {
  ints : int array;
  floats : float array;
  mutable ret_i : int;
  mutable ret_f : float;
}

type op = frame -> unit

(* A terminator returns the next block id, or a negative return code:
   [ret_int] when the frame returned an integer (in [ret_i]), [ret_flt]
   when it returned a float (in [ret_f]).  The distinction is dynamic
   because the reference interpreter's [Ret None] yields integer 0
   even in a float-returning function. *)
let ret_int = -1
let ret_flt = -2

type dblock = { ops : op array; next : frame -> int }

type dfunc = {
  fname : string;                       (* physically f.name: the
                                           attribution ledger memoizes
                                           site strings by identity *)
  nregs : int;
  params : (Instr.reg * Types.t) list;
  mutable dblocks : dblock array;       (* filled in the second pass so
                                           mutually recursive calls
                                           resolve directly *)
}

type t = { st : state; table : (string, dfunc) Hashtbl.t }

let new_frame df =
  { ints = Array.make df.nregs 0;
    floats = Array.make df.nregs 0.0;
    ret_i = 0;
    ret_f = 0.0 }

(* ---------- operand decoding ---------- *)

let int_rd st v : frame -> int =
  match (v : Instr.value) with
  | Instr.Reg r -> fun fr -> fr.ints.(r)
  | Instr.Imm i ->
    let c = Int64.to_int i in
    fun _ -> c
  | Instr.Null -> fun _ -> 0
  | Instr.GlobalAddr g -> (
    match Hashtbl.find_opt st.globals g with
    | Some a -> fun _ -> a
    | None -> fun _ -> trap "unknown global @%s" g)
  | Instr.Fimm _ -> fun _ -> trap "float immediate in integer context"

let float_rd st (fl : bool array) v : frame -> float =
  match (v : Instr.value) with
  | Instr.Reg r ->
    if fl.(r) then fun fr -> fr.floats.(r)
    else fun fr -> float_of_int fr.ints.(r)
  | Instr.Fimm x -> fun _ -> x
  | Instr.Imm i ->
    let c = Int64.to_float i in
    fun _ -> c
  | Instr.Null -> fun _ -> 0.0
  | Instr.GlobalAddr g -> (
    match Hashtbl.find_opt st.globals g with
    | Some a ->
      let c = float_of_int a in
      fun _ -> c
    | None -> fun _ -> trap "unknown global @%s" g)

let floaty (fl : bool array) v =
  match (v : Instr.value) with
  | Instr.Fimm _ -> true
  | Instr.Reg r -> fl.(r)
  | Instr.Imm _ | Instr.Null | Instr.GlobalAddr _ -> false

(* ---------- instruction decoding ---------- *)

(* Integer binops: the hot loop shapes (reg op reg, reg op imm) get
   dedicated closures with no operand indirection at all; everything
   else pays two reader calls plus the resolved operator. *)
let dec_ibin st r op a b : op =
  let rt = st.rt in
  let c =
    match (op : Instr.binop) with
    | Mul | Div | Rem -> st.cost.mul_div
    | _ -> st.cost.alu
  in
  match (op : Instr.binop), (a : Instr.value), (b : Instr.value) with
  | Add, Reg x, Reg y ->
    fun fr -> Runtime.charge rt c; fr.ints.(r) <- fr.ints.(x) + fr.ints.(y)
  | Add, Reg x, Imm i ->
    let k = Int64.to_int i in
    fun fr -> Runtime.charge rt c; fr.ints.(r) <- fr.ints.(x) + k
  | Sub, Reg x, Reg y ->
    fun fr -> Runtime.charge rt c; fr.ints.(r) <- fr.ints.(x) - fr.ints.(y)
  | Sub, Reg x, Imm i ->
    let k = Int64.to_int i in
    fun fr -> Runtime.charge rt c; fr.ints.(r) <- fr.ints.(x) - k
  | Mul, Reg x, Reg y ->
    fun fr -> Runtime.charge rt c; fr.ints.(r) <- fr.ints.(x) * fr.ints.(y)
  | Mul, Reg x, Imm i ->
    let k = Int64.to_int i in
    fun fr -> Runtime.charge rt c; fr.ints.(r) <- fr.ints.(x) * k
  | And, Reg x, Imm i ->
    let k = Int64.to_int i in
    fun fr -> Runtime.charge rt c; fr.ints.(r) <- fr.ints.(x) land k
  | _ ->
    let fa = int_rd st a and fb = int_rd st b in
    let opf = ibin_fn op in
    fun fr -> Runtime.charge rt c; fr.ints.(r) <- opf (fa fr) (fb fr)

let dec_icmp st r cop a b : op =
  let rt = st.rt in
  let c = st.cost.alu in
  match (cop : Instr.cmpop), (a : Instr.value), (b : Instr.value) with
  | Lt, Reg x, Reg y ->
    fun fr ->
      Runtime.charge rt c;
      fr.ints.(r) <- (if fr.ints.(x) < fr.ints.(y) then 1 else 0)
  | Lt, Reg x, Imm i ->
    let k = Int64.to_int i in
    fun fr ->
      Runtime.charge rt c;
      fr.ints.(r) <- (if fr.ints.(x) < k then 1 else 0)
  | Eq, Reg x, Imm i ->
    let k = Int64.to_int i in
    fun fr ->
      Runtime.charge rt c;
      fr.ints.(r) <- (if fr.ints.(x) = k then 1 else 0)
  | _ ->
    let fa = int_rd st a and fb = int_rd st b in
    let opf = icmp_fn cop in
    fun fr ->
      Runtime.charge rt c;
      fr.ints.(r) <- (if opf (fa fr) (fb fr) then 1 else 0)

(* Forward reference: the Call decoder needs to execute a decoded
   function, and execution needs decoded blocks.  Tied below. *)
let exec_ref : (state -> dfunc -> frame -> int) ref =
  ref (fun _ _ _ -> assert false)

let dec_call st fl (ropt : Instr.reg option) name args table : op =
  let rt = st.rt in
  let c = st.cost.call in
  match name with
  | "print_int" -> (
    match args with
    | a0 :: _ ->
      let rd = int_rd st a0 in
      fun fr ->
        Runtime.charge rt c;
        Buffer.add_string st.out (string_of_int (rd fr));
        Buffer.add_char st.out '\n'
    | [] -> fun _ -> Runtime.charge rt c; failwith "hd")
  | "print_float" -> (
    match args with
    | a0 :: _ ->
      let rd = float_rd st fl a0 in
      fun fr ->
        Runtime.charge rt c;
        Buffer.add_string st.out (Printf.sprintf "%.6g" (rd fr));
        Buffer.add_char st.out '\n'
    | [] -> fun _ -> Runtime.charge rt c; failwith "hd")
  | "clock" -> (
    match ropt with
    | Some r -> fun fr -> Runtime.charge rt c; fr.ints.(r) <- Runtime.now rt
    | None -> fun _ -> Runtime.charge rt c)
  | "abort" -> fun _ -> Runtime.charge rt c; trap "abort() called"
  | _ -> (
    match Hashtbl.find_opt table name with
    | None -> fun _ -> Runtime.charge rt c; trap "call to unknown function %s" name
    | Some df when List.length df.params <> List.length args ->
      (* The reference's [List.map2] evaluates argument operands for
         the common prefix before noticing the length mismatch, so an
         ill-typed early argument traps first.  Reproduce that. *)
      let rec prefix ps vs =
        match ps, vs with
        | (_, ty) :: ps', v :: vs' ->
          (match (ty : Types.t) with
           | Types.F64 ->
             let rd = float_rd st fl v in
             (fun fr -> ignore (rd fr)) :: prefix ps' vs'
           | _ ->
             let rd = int_rd st v in
             (fun fr -> ignore (rd fr)) :: prefix ps' vs')
        | _ -> []
      in
      let evals = Array.of_list (prefix df.params args) in
      fun fr ->
        Runtime.charge rt c;
        Array.iter (fun e -> e fr) evals;
        trap "arity mismatch calling %s" name
    | Some df ->
      (* Argument movers: one closure per parameter, reading from the
         caller frame and writing the callee register directly — the
         reference's per-call [List.map2] + argv list disappears. *)
      let movers =
        Array.of_list
          (List.map2
             (fun (pr, ty) v ->
               match (ty : Types.t) with
               | Types.F64 ->
                 let rd = float_rd st fl v in
                 fun fr cf -> cf.floats.(pr) <- rd fr
               | _ ->
                 let rd = int_rd st v in
                 fun fr cf -> cf.ints.(pr) <- rd fr)
             df.params args)
      in
      let store_ret : (int -> frame -> frame -> unit) option =
        match ropt with
        | None -> None
        | Some r ->
          if fl.(r) then
            Some
              (fun code fr cf ->
                fr.floats.(r) <-
                  (if code = ret_flt then cf.ret_f
                   else float_of_int cf.ret_i))
          else
            Some
              (fun code fr cf ->
                fr.ints.(r) <-
                  (if code = ret_flt then int_of_float cf.ret_f
                   else cf.ret_i))
      in
      let nmovers = Array.length movers in
      match store_ret with
      | None ->
        fun fr ->
          Runtime.charge rt c;
          let cf = new_frame df in
          for i = 0 to nmovers - 1 do
            movers.(i) fr cf
          done;
          ignore (!exec_ref st df cf)
      | Some store ->
        fun fr ->
          Runtime.charge rt c;
          let cf = new_frame df in
          for i = 0 to nmovers - 1 do
            movers.(i) fr cf
          done;
          let code = !exec_ref st df cf in
          store code fr cf)

let dec_instr st (f : Func.t) fl table ~bid ~idx (ins : Instr.instr) : op =
  let rt = st.rt in
  let fn = f.name in
  (* [Runtime.set_site] is pre-bound only on the opcodes that can enter
     the runtime, mirroring the reference interpreter's stamp match —
     but resolved at decode time instead of per instruction. *)
  match ins with
  | Instr.Bin (r, op, a, b) ->
    if Instr.is_float_binop op then begin
      let c = st.cost.alu in
      let fa = float_rd st fl a and fb = float_rd st fl b in
      let opf = fbin_fn op in
      fun fr -> Runtime.charge rt c; fr.floats.(r) <- opf (fa fr) (fb fr)
    end
    else dec_ibin st r op a b
  | Instr.Cmp (r, cop, a, b) ->
    if floaty fl a || floaty fl b then begin
      let c = st.cost.alu in
      let fa = float_rd st fl a and fb = float_rd st fl b in
      let opf = fcmp_fn cop in
      fun fr ->
        Runtime.charge rt c;
        fr.ints.(r) <- (if opf (fa fr) (fb fr) then 1 else 0)
    end
    else dec_icmp st r cop a b
  | Instr.Mov (r, v) ->
    let c = st.cost.alu in
    if fl.(r) then begin
      let rd = float_rd st fl v in
      fun fr -> Runtime.charge rt c; fr.floats.(r) <- rd fr
    end
    else begin
      match (v : Instr.value) with
      | Instr.Reg x -> fun fr -> Runtime.charge rt c; fr.ints.(r) <- fr.ints.(x)
      | Instr.Imm i ->
        let k = Int64.to_int i in
        fun fr -> Runtime.charge rt c; fr.ints.(r) <- k
      | _ ->
        let rd = int_rd st v in
        fun fr -> Runtime.charge rt c; fr.ints.(r) <- rd fr
    end
  | Instr.I2f (r, v) ->
    let c = st.cost.alu in
    let rd = int_rd st v in
    fun fr -> Runtime.charge rt c; fr.floats.(r) <- float_of_int (rd fr)
  | Instr.F2i (r, v) ->
    let c = st.cost.alu in
    let rd = float_rd st fl v in
    fun fr -> Runtime.charge rt c; fr.ints.(r) <- int_of_float (rd fr)
  | Instr.Load (r, ty, addr) ->
    let rd = int_rd st addr in
    if Types.equal ty Types.F64 then
      fun fr ->
        Runtime.set_site rt ~fn ~block:bid ~instr:idx;
        fr.floats.(r) <- Runtime.read_f64_fast rt (rd fr)
    else
      fun fr ->
        Runtime.set_site rt ~fn ~block:bid ~instr:idx;
        fr.ints.(r) <- Runtime.read_i64_fast rt (rd fr)
  | Instr.Store (ty, addr, v) ->
    let ra = int_rd st addr in
    if Types.equal ty Types.F64 then begin
      let rv = float_rd st fl v in
      fun fr ->
        Runtime.set_site rt ~fn ~block:bid ~instr:idx;
        let a = ra fr in
        Runtime.write_f64_fast rt a (rv fr)
    end
    else begin
      let rv = int_rd st v in
      fun fr ->
        Runtime.set_site rt ~fn ~block:bid ~instr:idx;
        let a = ra fr in
        Runtime.write_i64_fast rt a (rv fr)
    end
  | Instr.Gep (r, base, idx_v, scale) -> (
    let c = st.cost.alu in
    match (base : Instr.value), (idx_v : Instr.value) with
    | Instr.Reg x, Instr.Reg y ->
      fun fr ->
        Runtime.charge rt c;
        fr.ints.(r) <- fr.ints.(x) + (fr.ints.(y) * scale)
    | _ ->
      let rb = int_rd st base and ri = int_rd st idx_v in
      fun fr ->
        Runtime.charge rt c;
        fr.ints.(r) <- rb fr + (ri fr * scale))
  | Instr.Malloc (r, size) ->
    let rs = int_rd st size in
    fun fr ->
      Runtime.set_site rt ~fn ~block:bid ~instr:idx;
      fr.ints.(r) <- Runtime.ds_alloc rt ~handle:0 ~size:(rs fr)
  | Instr.Free v ->
    let rd = int_rd st v in
    fun fr -> Runtime.free rt (rd fr)
  | Instr.Guard (k, addr) ->
    let write = k = Instr.Gwrite in
    let rd = int_rd st addr in
    fun fr ->
      Runtime.set_site rt ~fn ~block:bid ~instr:idx;
      Runtime.guard rt ~write (rd fr)
  | Instr.DsInit (r, sid) ->
    fun fr ->
      Runtime.set_site rt ~fn ~block:bid ~instr:idx;
      fr.ints.(r) <- Runtime.ds_init rt ~sid
  | Instr.DsAlloc (r, size, h) ->
    let rh = int_rd st h and rs = int_rd st size in
    fun fr ->
      Runtime.set_site rt ~fn ~block:bid ~instr:idx;
      fr.ints.(r) <- Runtime.ds_alloc rt ~handle:(rh fr) ~size:(rs fr)
  | Instr.LoopCheck (r, bases) ->
    let rds = Array.of_list (List.map (int_rd st) bases) in
    let n = Array.length rds in
    fun fr ->
      Runtime.set_site rt ~fn ~block:bid ~instr:idx;
      (* left-to-right, as the reference's [List.map] evaluates *)
      let rec build i = if i = n then [] else rds.(i) fr :: build (i + 1) in
      fr.ints.(r) <- (if Runtime.loop_check rt (build 0) then 1 else 0)
  | Instr.Prefetch _ ->
    let c = st.cost.alu in
    fun _ -> Runtime.charge rt c
  | Instr.Call (ropt, name, args) -> dec_call st fl ropt name args table

let dec_term st (f : Func.t) fl ~bid (term : Instr.term) : frame -> int =
  let rt = st.rt in
  match term with
  | Instr.Br target ->
    let c = st.cost.branch in
    fun _ -> Runtime.charge rt c; target
  | Instr.Cbr (v, bt, bf) ->
    let c = st.cost.branch in
    if floaty fl v then begin
      let rd = float_rd st fl v in
      fun fr ->
        Runtime.charge rt c;
        if rd fr <> 0.0 then bt else bf
    end
    else begin
      match (v : Instr.value) with
      | Instr.Reg r ->
        fun fr ->
          Runtime.charge rt c;
          if fr.ints.(r) <> 0 then bt else bf
      | _ ->
        let rd = int_rd st v in
        fun fr ->
          Runtime.charge rt c;
          if rd fr <> 0 then bt else bf
    end
  | Instr.Ret None -> fun fr -> fr.ret_i <- 0; ret_int
  | Instr.Ret (Some v) ->
    if Types.equal f.ret Types.F64 then begin
      let rd = float_rd st fl v in
      fun fr -> fr.ret_f <- rd fr; ret_flt
    end
    else begin
      let rd = int_rd st v in
      fun fr -> fr.ret_i <- rd fr; ret_int
    end
  | Instr.Unreachable ->
    let fname = f.name in
    fun _ -> trap "reached unreachable in %s:L%d" fname bid

(* ---------- execution ---------- *)

let run_blocks st df fr =
  let fuel = st.fuel in
  let rec go bid =
    let b = df.dblocks.(bid) in
    let ops = b.ops in
    let n = Array.length ops in
    for i = 0 to n - 1 do
      st.executed <- st.executed + 1;
      if st.executed > fuel then
        trap "fuel exhausted (%d instructions)" fuel;
      ops.(i) fr
    done;
    let nxt = b.next fr in
    if nxt >= 0 then go nxt else nxt
  in
  go 0

(* Call-stack spans for the Chrome-trace exporter, exactly as the
   reference engine emits them: B/E pairs on the interpreter thread; a
   [Trap] unwinds without the exit event. *)
let exec st df fr =
  if Sink.tracing st.obs then begin
    Sink.emit st.obs
      (Event.make ~cycle:(Runtime.now st.rt) ~ds:0 ~obj:0
         (Event.Call_enter { fn = df.fname }));
    let code = run_blocks st df fr in
    Sink.emit st.obs
      (Event.make ~cycle:(Runtime.now st.rt) ~ds:0 ~obj:0
         (Event.Call_exit { fn = df.fname }));
    code
  end
  else run_blocks st df fr

let () = exec_ref := exec

(* ---------- load-time decoding ---------- *)

let dec_func st table (f : Func.t) =
  let fl = float_regs st f in
  Array.map
    (fun (b : Func.block) ->
      { ops =
          Array.mapi
            (fun idx ins -> dec_instr st f fl table ~bid:b.bid ~idx ins)
            b.instrs;
        next = dec_term st f fl ~bid:b.bid b.term })
    f.blocks

let prepare st (m : Irmod.t) =
  let table = Hashtbl.create 16 in
  (* Two passes so calls — including mutual recursion and forward
     references — resolve to direct decoded-function records.  As in
     the reference's function table, a duplicated name resolves to its
     last definition. *)
  List.iter
    (fun (f : Func.t) ->
      Hashtbl.replace table f.name
        { fname = f.name; nregs = Func.nregs f; params = f.params;
          dblocks = [||] })
    m.funcs;
  List.iter
    (fun (f : Func.t) ->
      let df = Hashtbl.find table f.name in
      (* decode each definition once; for duplicated names the last
         decode wins, matching the reference's lookup *)
      df.dblocks <- dec_func st table f)
    m.funcs;
  { st; table }

(* Top-level entry: assign [argv] arguments with the reference
   interpreter's conversion rules, then run. *)
let exec_argv t df (args : argv list) : argv =
  let fr = new_frame df in
  (try
     List.iter2
       (fun (r, ty) a ->
         match (ty : Types.t), a with
         | Types.F64, AF x -> fr.floats.(r) <- x
         | Types.F64, AI x -> fr.floats.(r) <- float_of_int x
         | _, AI x -> fr.ints.(r) <- x
         | _, AF x -> fr.ints.(r) <- int_of_float x)
       df.params args
   with Invalid_argument _ -> trap "arity mismatch calling %s" df.fname);
  let code = exec t.st df fr in
  if code = ret_flt then AF fr.ret_f else AI fr.ret_i

let run_main t =
  match Hashtbl.find_opt t.table "main" with
  | None -> trap "module has no main"
  | Some df -> exec_argv t df []

let run_function t name args =
  match Hashtbl.find_opt t.table name with
  | None -> trap "no function %s" name
  | Some df -> exec_argv t df args
