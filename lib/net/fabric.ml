type config = {
  proto_cycles : int;
  bytes_per_cycle : float;
}

(* 25 Gb/s / 8 bits / 2.4 GHz = 1.302 bytes per cycle. *)
let link_bytes_per_cycle = 25.0e9 /. 8.0 /. 2.4e9

(* 59 K total - 4096 B / 1.302 B/c (≈ 3146) ≈ 55.8 K protocol cycles. *)
let default_config = { proto_cycles = 55_800; bytes_per_cycle = link_bytes_per_cycle }

(* TrackFM's swap-in path is leaner (no per-DS bookkeeping):
   46 K - 3146 ≈ 42.8 K. *)
let trackfm_config = { proto_cycles = 42_800; bytes_per_cycle = link_bytes_per_cycle }

type stats = {
  fetches : int;
  fetched_bytes : int;
  writebacks : int;
  written_bytes : int;
  queue_in_cycles : int;
  queue_out_cycles : int;
}

type transfer = {
  t_start : int;
  t_queued : int;
  t_complete : int;
}

type t = {
  cfg : config;
  mutable in_busy_until : int;
  mutable out_busy_until : int;
  mutable fetches : int;
  mutable fetched_bytes : int;
  mutable writebacks : int;
  mutable written_bytes : int;
  mutable queue_in_cycles : int;
  mutable queue_out_cycles : int;
}

let create cfg =
  { cfg; in_busy_until = 0; out_busy_until = 0;
    fetches = 0; fetched_bytes = 0; writebacks = 0; written_bytes = 0;
    queue_in_cycles = 0; queue_out_cycles = 0 }

let serialization cfg bytes =
  int_of_float (ceil (float_of_int bytes /. cfg.bytes_per_cycle))

let nominal_fetch_cycles t ~bytes = t.cfg.proto_cycles + serialization t.cfg bytes

let fetch_info t ~now ~bytes =
  let start = max now t.in_busy_until in
  let queued = start - now in
  t.queue_in_cycles <- t.queue_in_cycles + queued;
  let ser = serialization t.cfg bytes in
  t.in_busy_until <- start + ser;
  t.fetches <- t.fetches + 1;
  t.fetched_bytes <- t.fetched_bytes + bytes;
  { t_start = start; t_queued = queued; t_complete = start + t.cfg.proto_cycles + ser }

let fetch t ~now ~bytes = (fetch_info t ~now ~bytes).t_complete

let writeback t ~now ~bytes =
  let start = max now t.out_busy_until in
  t.queue_out_cycles <- t.queue_out_cycles + (start - now);
  t.out_busy_until <- start + serialization t.cfg bytes;
  t.writebacks <- t.writebacks + 1;
  t.written_bytes <- t.written_bytes + bytes

let inbound_busy_until t = t.in_busy_until

let stats t =
  { fetches = t.fetches; fetched_bytes = t.fetched_bytes;
    writebacks = t.writebacks; written_bytes = t.written_bytes;
    queue_in_cycles = t.queue_in_cycles;
    queue_out_cycles = t.queue_out_cycles }

let reset t =
  t.in_busy_until <- 0;
  t.out_busy_until <- 0;
  t.fetches <- 0;
  t.fetched_bytes <- 0;
  t.writebacks <- 0;
  t.written_bytes <- 0;
  t.queue_in_cycles <- 0;
  t.queue_out_cycles <- 0
