module Rng = Cards_util.Rng

type fault_kind = Transient | Late | Duplicate

let fault_kind_name = function
  | Transient -> "transient"
  | Late -> "late"
  | Duplicate -> "duplicate"

type fault_config = {
  fault_rate : float;
  fault_seed : int;
  fault_kinds : fault_kind list;
}

let no_faults =
  { fault_rate = 0.0; fault_seed = 1; fault_kinds = [ Transient; Late; Duplicate ] }

type config = {
  proto_cycles : int;
  bytes_per_cycle : float;
  qp_count : int;
  faults : fault_config;
}

(* 25 Gb/s / 8 bits / 2.4 GHz = 1.302 bytes per cycle. *)
let link_bytes_per_cycle = 25.0e9 /. 8.0 /. 2.4e9

(* 59 K total - 4096 B / 1.302 B/c (≈ 3146) ≈ 55.8 K protocol cycles. *)
let default_config =
  { proto_cycles = 55_800; bytes_per_cycle = link_bytes_per_cycle;
    qp_count = 1; faults = no_faults }

(* TrackFM's swap-in path is leaner (no per-DS bookkeeping):
   46 K - 3146 ≈ 42.8 K.  It is also per-object and single-queue — the
   leaner-but-unbatched contrast Fig. 8 depends on. *)
let trackfm_config =
  { proto_cycles = 42_800; bytes_per_cycle = link_bytes_per_cycle;
    qp_count = 1; faults = no_faults }

type stats = {
  fetches : int;
  fetched_bytes : int;
  batches : int;
  batched_objects : int;
  writebacks : int;
  written_bytes : int;
  wb_batches : int;
  queue_in_cycles : int;
  queue_out_cycles : int;
  qp_queue_cycles : int array;
  faults_transient : int;
  faults_late : int;
  faults_dup : int;
  failed_fetches : int;
  reliable_fetches : int;
  wb_faults : int;
}

type scale = { s_proto : float; s_wire : float }

let unit_scale = { s_proto = 1.0; s_wire = 1.0 }

(* Factor 1.0 short-circuits to the untouched integer: a unit-scaled
   call must be bit-identical to an unscaled one (the whatif identity
   scenario re-executes the baseline through this path and asserts
   equality to the cycle). *)
let scale_cycles f c =
  if f = 1.0 || c = 0 then c
  else max 0 (int_of_float ((float_of_int c *. f) +. 0.5))

type transfer = {
  t_start : int;
  t_queued : int;
  t_complete : int;
  t_qp : int;
  t_proto : int;
  t_ser : int;
  t_fault : fault_kind option;
}

type failure = {
  f_start : int;
  f_fail : int;
  f_qp : int;
}

(* One record per wire-level request, emitted to the (optional) port
   observer with the FINAL times — a Late or Duplicate fault extends
   the completion before the event is emitted, so an observer never
   sees a provisional timestamp.  [pe_issue] is the caller's [now];
   the per-direction monotonicity guards above make the emitted stream
   nondecreasing in [pe_issue] per direction by construction, which is
   what lets the parallel serving engine merge per-tenant streams with
   a conservative virtual-time barrier. *)
type port_event = {
  pe_dir : [ `In | `Out ];
  pe_issue : int;
  pe_start : int;
  pe_complete : int;
  pe_qp : int;       (* -1 for the outbound direction *)
  pe_count : int;    (* objects carried (batch size; 1 otherwise) *)
  pe_bytes : int;
  pe_ok : bool;      (* false: transient NACK, nothing landed *)
}

type t = {
  cfg : config;
  rng : Rng.t;
  mutable fault_rate : float;     (* live rate; starts at cfg.faults *)
  in_busy_until : int array;      (* one inbound queue pair per slot *)
  qp_queue_cycles : int array;
  mutable out_busy_until : int;
  mutable last_in_now : int;      (* monotonicity guards per direction *)
  mutable last_out_now : int;
  mutable port : (port_event -> unit) option;
  mutable fetches : int;
  mutable fetched_bytes : int;
  mutable batches : int;
  mutable batched_objects : int;
  mutable writebacks : int;
  mutable written_bytes : int;
  mutable wb_batches : int;
  mutable queue_in_cycles : int;
  mutable queue_out_cycles : int;
  mutable faults_transient : int;
  mutable faults_late : int;
  mutable faults_dup : int;
  mutable failed_fetches : int;
  mutable reliable_fetches : int;
  mutable wb_faults : int;
}

let create cfg =
  if cfg.qp_count < 1 then
    invalid_arg "Fabric.create: qp_count must be at least 1";
  if cfg.faults.fault_rate < 0.0 || cfg.faults.fault_rate > 1.0 then
    invalid_arg "Fabric.create: fault_rate must be within [0, 1]";
  { cfg;
    rng = Rng.create cfg.faults.fault_seed;
    fault_rate = cfg.faults.fault_rate;
    in_busy_until = Array.make cfg.qp_count 0;
    qp_queue_cycles = Array.make cfg.qp_count 0;
    out_busy_until = 0;
    last_in_now = 0; last_out_now = 0;
    port = None;
    fetches = 0; fetched_bytes = 0; batches = 0; batched_objects = 0;
    writebacks = 0; written_bytes = 0; wb_batches = 0;
    queue_in_cycles = 0; queue_out_cycles = 0;
    faults_transient = 0; faults_late = 0; faults_dup = 0;
    failed_fetches = 0; reliable_fetches = 0; wb_faults = 0 }

let set_port t p = t.port <- p

let emit t ev = match t.port with None -> () | Some f -> f ev

let emit_transfer t ~now ~count ~bytes (tr : transfer) =
  emit t
    { pe_dir = `In; pe_issue = now; pe_start = tr.t_start;
      pe_complete = tr.t_complete; pe_qp = tr.t_qp;
      pe_count = count; pe_bytes = bytes; pe_ok = true }

let emit_failure t ~now ~count ~bytes (f : failure) =
  emit t
    { pe_dir = `In; pe_issue = now; pe_start = f.f_start;
      pe_complete = f.f_fail; pe_qp = f.f_qp;
      pe_count = count; pe_bytes = bytes; pe_ok = false }

let set_fault_rate t rate =
  if rate < 0.0 || rate > 1.0 then
    invalid_arg "Fabric.set_fault_rate: rate must be within [0, 1]";
  t.fault_rate <- rate

let faults_configured t = t.cfg.faults.fault_rate > 0.0

(* Retried transfers re-enter the fabric at a later [now] than the
   attempt they replace; a caller that rewinds the clock between calls
   would instead let a transfer start before the queue state it
   observes existed, silently corrupting busy-until accounting.  Fail
   loudly instead. *)
let check_in_now t now =
  if now < t.last_in_now then
    invalid_arg
      (Printf.sprintf "Fabric: inbound now moved backwards (%d < %d)" now
         t.last_in_now);
  t.last_in_now <- now

let check_out_now t now =
  if now < t.last_out_now then
    invalid_arg
      (Printf.sprintf "Fabric: outbound now moved backwards (%d < %d)" now
         t.last_out_now);
  t.last_out_now <- now

(* One decision per transfer attempt, drawn from the fabric's own
   seeded PRNG: the schedule is a pure function of the seed and the
   attempt sequence, so the whole simulation stays deterministic.  At
   rate 0 the PRNG is never consulted — the fault-free path is
   bit-identical to a fabric without fault injection. *)
let draw_fault t =
  let fc = t.cfg.faults in
  if t.fault_rate <= 0.0 || fc.fault_kinds = [] then None
  else if Rng.float t.rng 1.0 < t.fault_rate then
    Some (List.nth fc.fault_kinds (Rng.int t.rng (List.length fc.fault_kinds)))
  else None

(* Congestion delay for a late completion: 1-3x the protocol cost, so
   some late transfers sit inside a sane timeout budget and some blow
   past it (exercising both the wait-it-out and abandon-and-retry
   paths in the runtime).  The RNG is drawn before scaling so a scaled
   run consumes the exact same fault schedule as the baseline; the
   delay rides in the wire term (t_ser), so it scales with s_wire. *)
let late_extra t ~scale =
  scale_cycles scale.s_wire (t.cfg.proto_cycles * (1 + Rng.int t.rng 3))

let serialization cfg bytes =
  int_of_float (ceil (float_of_int bytes /. cfg.bytes_per_cycle))

let nominal_fetch_cycles t ~bytes = t.cfg.proto_cycles + serialization t.cfg bytes

(* Least-loaded dispatch: the QP that frees up first wins; ties go to
   the lowest index so dispatch is deterministic. *)
let pick_qp t =
  let best = ref 0 in
  for i = 1 to Array.length t.in_busy_until - 1 do
    if t.in_busy_until.(i) < t.in_busy_until.(!best) then best := i
  done;
  !best

(* The [_raw] layer does the queueing/accounting but emits no port
   event: the fault-injecting wrappers adjust the completion time
   after the fact (Late/Duplicate) and must emit the final record
   themselves, exactly once. *)
let fetch_info_raw ~scale t ~now ~bytes =
  check_in_now t now;
  let qp = pick_qp t in
  let start = max now t.in_busy_until.(qp) in
  let queued = start - now in
  t.queue_in_cycles <- t.queue_in_cycles + queued;
  t.qp_queue_cycles.(qp) <- t.qp_queue_cycles.(qp) + queued;
  let proto = scale_cycles scale.s_proto t.cfg.proto_cycles in
  let ser = scale_cycles scale.s_wire (serialization t.cfg bytes) in
  (* The protocol cost is per-request work (doorbells, completion
     polling, bookkeeping) that occupies the queue pair, not just
     latency: back-to-back requests serialize behind it.  This is what
     batching amortizes. *)
  t.in_busy_until.(qp) <- start + proto + ser;
  t.fetches <- t.fetches + 1;
  t.fetched_bytes <- t.fetched_bytes + bytes;
  { t_start = start; t_queued = queued;
    t_complete = start + proto + ser; t_qp = qp;
    t_proto = proto; t_ser = ser; t_fault = None }

let fetch_info ?(scale = unit_scale) t ~now ~bytes =
  let tr = fetch_info_raw ~scale t ~now ~bytes in
  emit_transfer t ~now ~count:1 ~bytes tr;
  tr

let fetch ?scale t ~now ~bytes = (fetch_info ?scale t ~now ~bytes).t_complete

(* A transient failure crosses the wire and comes back as a NACK: the
   queue pair is held for the protocol turnaround, nothing lands, and
   the caller decides whether to retry. *)
let transient_failure t ~scale ~now =
  check_in_now t now;
  let qp = pick_qp t in
  let start = max now t.in_busy_until.(qp) in
  let queued = start - now in
  t.queue_in_cycles <- t.queue_in_cycles + queued;
  t.qp_queue_cycles.(qp) <- t.qp_queue_cycles.(qp) + queued;
  let fail = start + scale_cycles scale.s_proto t.cfg.proto_cycles in
  t.in_busy_until.(qp) <- fail;
  t.faults_transient <- t.faults_transient + 1;
  t.failed_fetches <- t.failed_fetches + 1;
  { f_start = start; f_fail = fail; f_qp = qp }

let fetch_attempt ?(scale = unit_scale) t ~now ~bytes =
  match draw_fault t with
  | None -> Ok (fetch_info ~scale t ~now ~bytes)
  | Some Transient ->
    let f = transient_failure t ~scale ~now in
    emit_failure t ~now ~count:1 ~bytes f;
    Error f
  | Some Late ->
    let tr = fetch_info_raw ~scale t ~now ~bytes in
    let extra = late_extra t ~scale in
    t.faults_late <- t.faults_late + 1;
    (* Congestion: the response crawls, and the queue pair stays tied
       up until the late completion.  The delay rides in [t_ser] so
       [t_queued + t_proto + t_ser = t_complete - now] still holds for
       callers that wait the transfer out. *)
    t.in_busy_until.(tr.t_qp) <- tr.t_complete + extra;
    let tr = { tr with t_complete = tr.t_complete + extra;
                       t_ser = tr.t_ser + extra; t_fault = Some Late } in
    emit_transfer t ~now ~count:1 ~bytes tr;
    Ok tr
  | Some Duplicate ->
    let tr = fetch_info_raw ~scale t ~now ~bytes in
    t.faults_dup <- t.faults_dup + 1;
    (* The data lands on time, but a duplicated completion occupies the
       queue pair for another protocol turn — timing-only: the caller
       deduplicates by construction (the object is marked resident
       exactly once). *)
    t.in_busy_until.(tr.t_qp)
      <- tr.t_complete + scale_cycles scale.s_proto t.cfg.proto_cycles;
    let tr = { tr with t_fault = Some Duplicate } in
    emit_transfer t ~now ~count:1 ~bytes tr;
    Ok tr

(* Escalation path after retries are exhausted: a heavyweight reliable
   channel (think RC send with end-to-end acknowledgement instead of
   one-sided reads) that pays the protocol cost twice and never
   faults.  Guarantees forward progress at any fault rate. *)
let fetch_reliable ?(scale = unit_scale) t ~now ~bytes =
  check_in_now t now;
  let qp = pick_qp t in
  let start = max now t.in_busy_until.(qp) in
  let queued = start - now in
  t.queue_in_cycles <- t.queue_in_cycles + queued;
  t.qp_queue_cycles.(qp) <- t.qp_queue_cycles.(qp) + queued;
  let ser = scale_cycles scale.s_wire (serialization t.cfg bytes) in
  let proto = 2 * scale_cycles scale.s_proto t.cfg.proto_cycles in
  t.in_busy_until.(qp) <- start + proto + ser;
  t.fetches <- t.fetches + 1;
  t.fetched_bytes <- t.fetched_bytes + bytes;
  t.reliable_fetches <- t.reliable_fetches + 1;
  let tr =
    { t_start = start; t_queued = queued; t_complete = start + proto + ser;
      t_qp = qp; t_proto = proto; t_ser = ser; t_fault = None }
  in
  emit_transfer t ~now ~count:1 ~bytes tr;
  tr

let fetch_many_raw ~scale t ~now ~sizes =
  let n = Array.length sizes in
  if n = 0 then invalid_arg "Fabric.fetch_many: empty batch";
  check_in_now t now;
  let qp = pick_qp t in
  let start = max now t.in_busy_until.(qp) in
  let queued = start - now in
  t.queue_in_cycles <- t.queue_in_cycles + queued;
  t.qp_queue_cycles.(qp) <- t.qp_queue_cycles.(qp) + queued;
  let proto = scale_cycles scale.s_proto t.cfg.proto_cycles in
  (* One request/response pair carries the whole batch: the protocol
     overhead is paid once, each object lands as soon as its bytes have
     streamed off the wire behind its predecessors. *)
  let completions = Array.make n 0 in
  let cum = ref 0 in
  let total = ref 0 in
  for i = 0 to n - 1 do
    cum := !cum + scale_cycles scale.s_wire (serialization t.cfg sizes.(i));
    total := !total + sizes.(i);
    completions.(i) <- start + proto + !cum
  done;
  (* One request, one protocol cost: the QP is held for proto plus the
     batch's summed serialization — per object, a [1/n] share of the
     overhead that dominates small transfers. *)
  t.in_busy_until.(qp) <- start + proto + !cum;
  t.fetches <- t.fetches + n;
  t.fetched_bytes <- t.fetched_bytes + !total;
  t.batches <- t.batches + 1;
  t.batched_objects <- t.batched_objects + n;
  ({ t_start = start; t_queued = queued;
     t_complete = completions.(n - 1); t_qp = qp;
     t_proto = proto; t_ser = !cum; t_fault = None },
   completions)

let batch_bytes sizes = Array.fold_left ( + ) 0 sizes

let fetch_many ?(scale = unit_scale) t ~now ~sizes =
  let (tr, completions) = fetch_many_raw ~scale t ~now ~sizes in
  emit_transfer t ~now ~count:(Array.length sizes) ~bytes:(batch_bytes sizes) tr;
  (tr, completions)

let fetch_many_attempt ?(scale = unit_scale) t ~now ~sizes =
  match draw_fault t with
  | None -> Ok (fetch_many ~scale t ~now ~sizes)
  | Some Transient ->
    if Array.length sizes = 0 then
      invalid_arg "Fabric.fetch_many_attempt: empty batch";
    let f = transient_failure t ~scale ~now in
    emit_failure t ~now ~count:(Array.length sizes) ~bytes:(batch_bytes sizes) f;
    Error f
  | Some Late ->
    let tr, completions = fetch_many_raw ~scale t ~now ~sizes in
    let extra = late_extra t ~scale in
    t.faults_late <- t.faults_late + 1;
    (* The whole response stream is delayed behind the congested
       request: every object in the batch lands [extra] cycles late. *)
    Array.iteri (fun i c -> completions.(i) <- c + extra) completions;
    t.in_busy_until.(tr.t_qp) <- tr.t_complete + extra;
    let tr = { tr with t_complete = tr.t_complete + extra;
                       t_ser = tr.t_ser + extra; t_fault = Some Late } in
    emit_transfer t ~now ~count:(Array.length sizes) ~bytes:(batch_bytes sizes)
      tr;
    Ok (tr, completions)
  | Some Duplicate ->
    let tr, completions = fetch_many_raw ~scale t ~now ~sizes in
    t.faults_dup <- t.faults_dup + 1;
    t.in_busy_until.(tr.t_qp)
      <- tr.t_complete + scale_cycles scale.s_proto t.cfg.proto_cycles;
    let tr = { tr with t_fault = Some Duplicate } in
    emit_transfer t ~now ~count:(Array.length sizes) ~bytes:(batch_bytes sizes)
      tr;
    Ok (tr, completions)

(* Writeback faults never reach the caller: posted writes are
   asynchronous, so the fabric absorbs the fault by re-posting (or
   draining the duplicate) itself — the outbound direction is simply
   occupied longer, which future evictions queue behind. *)
let wb_fault_extra t =
  match draw_fault t with
  | None -> 0
  | Some k ->
    t.wb_faults <- t.wb_faults + 1;
    (match k with
     | Transient -> t.cfg.proto_cycles (* NACKed posting, re-posted *)
     | Late -> late_extra t ~scale:unit_scale
     | Duplicate -> t.cfg.proto_cycles (* duplicate ack drained *))

(* Writebacks are posted writes: the CPU never waits for them, but the
   request still crosses the wire, so the outbound direction is
   occupied for the full protocol + serialization time — the same cost
   structure as a fetch, just asynchronous (DESIGN.md §fabric). *)
let emit_writeback t ~now ~start ~count ~bytes =
  emit t
    { pe_dir = `Out; pe_issue = now; pe_start = start;
      pe_complete = t.out_busy_until; pe_qp = -1;
      pe_count = count; pe_bytes = bytes; pe_ok = true }

let writeback t ~now ~bytes =
  check_out_now t now;
  let start = max now t.out_busy_until in
  t.queue_out_cycles <- t.queue_out_cycles + (start - now);
  t.out_busy_until <-
    start + t.cfg.proto_cycles + serialization t.cfg bytes + wb_fault_extra t;
  t.writebacks <- t.writebacks + 1;
  t.written_bytes <- t.written_bytes + bytes;
  emit_writeback t ~now ~start ~count:1 ~bytes

let writeback_many t ~now ~count ~bytes =
  if count < 1 then invalid_arg "Fabric.writeback_many: empty batch";
  check_out_now t now;
  let start = max now t.out_busy_until in
  t.queue_out_cycles <- t.queue_out_cycles + (start - now);
  t.out_busy_until <-
    start + t.cfg.proto_cycles + serialization t.cfg bytes + wb_fault_extra t;
  t.writebacks <- t.writebacks + count;
  t.written_bytes <- t.written_bytes + bytes;
  t.wb_batches <- t.wb_batches + 1;
  emit_writeback t ~now ~start ~count ~bytes

let inbound_busy_until t =
  Array.fold_left min t.in_busy_until.(0) t.in_busy_until

let outbound_busy_until t = t.out_busy_until

let stats t =
  { fetches = t.fetches; fetched_bytes = t.fetched_bytes;
    batches = t.batches; batched_objects = t.batched_objects;
    writebacks = t.writebacks; written_bytes = t.written_bytes;
    wb_batches = t.wb_batches;
    queue_in_cycles = t.queue_in_cycles;
    queue_out_cycles = t.queue_out_cycles;
    qp_queue_cycles = Array.copy t.qp_queue_cycles;
    faults_transient = t.faults_transient;
    faults_late = t.faults_late;
    faults_dup = t.faults_dup;
    failed_fetches = t.failed_fetches;
    reliable_fetches = t.reliable_fetches;
    wb_faults = t.wb_faults }

let add_stats (a : stats) (b : stats) =
  let qp =
    let la = Array.length a.qp_queue_cycles
    and lb = Array.length b.qp_queue_cycles in
    Array.init (max la lb) (fun i ->
        (if i < la then a.qp_queue_cycles.(i) else 0)
        + (if i < lb then b.qp_queue_cycles.(i) else 0))
  in
  { fetches = a.fetches + b.fetches;
    fetched_bytes = a.fetched_bytes + b.fetched_bytes;
    batches = a.batches + b.batches;
    batched_objects = a.batched_objects + b.batched_objects;
    writebacks = a.writebacks + b.writebacks;
    written_bytes = a.written_bytes + b.written_bytes;
    wb_batches = a.wb_batches + b.wb_batches;
    queue_in_cycles = a.queue_in_cycles + b.queue_in_cycles;
    queue_out_cycles = a.queue_out_cycles + b.queue_out_cycles;
    qp_queue_cycles = qp;
    faults_transient = a.faults_transient + b.faults_transient;
    faults_late = a.faults_late + b.faults_late;
    faults_dup = a.faults_dup + b.faults_dup;
    failed_fetches = a.failed_fetches + b.failed_fetches;
    reliable_fetches = a.reliable_fetches + b.reliable_fetches;
    wb_faults = a.wb_faults + b.wb_faults }

let faults_injected (s : stats) =
  s.faults_transient + s.faults_late + s.faults_dup

let reset t =
  Array.fill t.in_busy_until 0 (Array.length t.in_busy_until) 0;
  Array.fill t.qp_queue_cycles 0 (Array.length t.qp_queue_cycles) 0;
  t.out_busy_until <- 0;
  t.last_in_now <- 0;
  t.last_out_now <- 0;
  t.fetches <- 0;
  t.fetched_bytes <- 0;
  t.batches <- 0;
  t.batched_objects <- 0;
  t.writebacks <- 0;
  t.written_bytes <- 0;
  t.wb_batches <- 0;
  t.queue_in_cycles <- 0;
  t.queue_out_cycles <- 0;
  t.faults_transient <- 0;
  t.faults_late <- 0;
  t.faults_dup <- 0;
  t.failed_fetches <- 0;
  t.reliable_fetches <- 0;
  t.wb_faults <- 0
