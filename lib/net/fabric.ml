type config = {
  proto_cycles : int;
  bytes_per_cycle : float;
  qp_count : int;
}

(* 25 Gb/s / 8 bits / 2.4 GHz = 1.302 bytes per cycle. *)
let link_bytes_per_cycle = 25.0e9 /. 8.0 /. 2.4e9

(* 59 K total - 4096 B / 1.302 B/c (≈ 3146) ≈ 55.8 K protocol cycles. *)
let default_config =
  { proto_cycles = 55_800; bytes_per_cycle = link_bytes_per_cycle; qp_count = 1 }

(* TrackFM's swap-in path is leaner (no per-DS bookkeeping):
   46 K - 3146 ≈ 42.8 K.  It is also per-object and single-queue — the
   leaner-but-unbatched contrast Fig. 8 depends on. *)
let trackfm_config =
  { proto_cycles = 42_800; bytes_per_cycle = link_bytes_per_cycle; qp_count = 1 }

type stats = {
  fetches : int;
  fetched_bytes : int;
  batches : int;
  batched_objects : int;
  writebacks : int;
  written_bytes : int;
  wb_batches : int;
  queue_in_cycles : int;
  queue_out_cycles : int;
  qp_queue_cycles : int array;
}

type transfer = {
  t_start : int;
  t_queued : int;
  t_complete : int;
  t_qp : int;
  t_proto : int;
  t_ser : int;
}

type t = {
  cfg : config;
  in_busy_until : int array;      (* one inbound queue pair per slot *)
  qp_queue_cycles : int array;
  mutable out_busy_until : int;
  mutable fetches : int;
  mutable fetched_bytes : int;
  mutable batches : int;
  mutable batched_objects : int;
  mutable writebacks : int;
  mutable written_bytes : int;
  mutable wb_batches : int;
  mutable queue_in_cycles : int;
  mutable queue_out_cycles : int;
}

let create cfg =
  if cfg.qp_count < 1 then
    invalid_arg "Fabric.create: qp_count must be at least 1";
  { cfg;
    in_busy_until = Array.make cfg.qp_count 0;
    qp_queue_cycles = Array.make cfg.qp_count 0;
    out_busy_until = 0;
    fetches = 0; fetched_bytes = 0; batches = 0; batched_objects = 0;
    writebacks = 0; written_bytes = 0; wb_batches = 0;
    queue_in_cycles = 0; queue_out_cycles = 0 }

let serialization cfg bytes =
  int_of_float (ceil (float_of_int bytes /. cfg.bytes_per_cycle))

let nominal_fetch_cycles t ~bytes = t.cfg.proto_cycles + serialization t.cfg bytes

(* Least-loaded dispatch: the QP that frees up first wins; ties go to
   the lowest index so dispatch is deterministic. *)
let pick_qp t =
  let best = ref 0 in
  for i = 1 to Array.length t.in_busy_until - 1 do
    if t.in_busy_until.(i) < t.in_busy_until.(!best) then best := i
  done;
  !best

let fetch_info t ~now ~bytes =
  let qp = pick_qp t in
  let start = max now t.in_busy_until.(qp) in
  let queued = start - now in
  t.queue_in_cycles <- t.queue_in_cycles + queued;
  t.qp_queue_cycles.(qp) <- t.qp_queue_cycles.(qp) + queued;
  let ser = serialization t.cfg bytes in
  (* The protocol cost is per-request work (doorbells, completion
     polling, bookkeeping) that occupies the queue pair, not just
     latency: back-to-back requests serialize behind it.  This is what
     batching amortizes. *)
  t.in_busy_until.(qp) <- start + t.cfg.proto_cycles + ser;
  t.fetches <- t.fetches + 1;
  t.fetched_bytes <- t.fetched_bytes + bytes;
  { t_start = start; t_queued = queued;
    t_complete = start + t.cfg.proto_cycles + ser; t_qp = qp;
    t_proto = t.cfg.proto_cycles; t_ser = ser }

let fetch t ~now ~bytes = (fetch_info t ~now ~bytes).t_complete

let fetch_many t ~now ~sizes =
  let n = Array.length sizes in
  if n = 0 then invalid_arg "Fabric.fetch_many: empty batch";
  let qp = pick_qp t in
  let start = max now t.in_busy_until.(qp) in
  let queued = start - now in
  t.queue_in_cycles <- t.queue_in_cycles + queued;
  t.qp_queue_cycles.(qp) <- t.qp_queue_cycles.(qp) + queued;
  (* One request/response pair carries the whole batch: the protocol
     overhead is paid once, each object lands as soon as its bytes have
     streamed off the wire behind its predecessors. *)
  let completions = Array.make n 0 in
  let cum = ref 0 in
  let total = ref 0 in
  for i = 0 to n - 1 do
    cum := !cum + serialization t.cfg sizes.(i);
    total := !total + sizes.(i);
    completions.(i) <- start + t.cfg.proto_cycles + !cum
  done;
  (* One request, one protocol cost: the QP is held for proto plus the
     batch's summed serialization — per object, a [1/n] share of the
     overhead that dominates small transfers. *)
  t.in_busy_until.(qp) <- start + t.cfg.proto_cycles + !cum;
  t.fetches <- t.fetches + n;
  t.fetched_bytes <- t.fetched_bytes + !total;
  t.batches <- t.batches + 1;
  t.batched_objects <- t.batched_objects + n;
  ({ t_start = start; t_queued = queued;
     t_complete = completions.(n - 1); t_qp = qp;
     t_proto = t.cfg.proto_cycles; t_ser = !cum },
   completions)

(* Writebacks are posted writes: the CPU never waits for them, but the
   request still crosses the wire, so the outbound direction is
   occupied for the full protocol + serialization time — the same cost
   structure as a fetch, just asynchronous (DESIGN.md §fabric). *)
let writeback t ~now ~bytes =
  let start = max now t.out_busy_until in
  t.queue_out_cycles <- t.queue_out_cycles + (start - now);
  t.out_busy_until <- start + t.cfg.proto_cycles + serialization t.cfg bytes;
  t.writebacks <- t.writebacks + 1;
  t.written_bytes <- t.written_bytes + bytes

let writeback_many t ~now ~count ~bytes =
  if count < 1 then invalid_arg "Fabric.writeback_many: empty batch";
  let start = max now t.out_busy_until in
  t.queue_out_cycles <- t.queue_out_cycles + (start - now);
  t.out_busy_until <- start + t.cfg.proto_cycles + serialization t.cfg bytes;
  t.writebacks <- t.writebacks + count;
  t.written_bytes <- t.written_bytes + bytes;
  t.wb_batches <- t.wb_batches + 1

let inbound_busy_until t =
  Array.fold_left min t.in_busy_until.(0) t.in_busy_until

let outbound_busy_until t = t.out_busy_until

let stats t =
  { fetches = t.fetches; fetched_bytes = t.fetched_bytes;
    batches = t.batches; batched_objects = t.batched_objects;
    writebacks = t.writebacks; written_bytes = t.written_bytes;
    wb_batches = t.wb_batches;
    queue_in_cycles = t.queue_in_cycles;
    queue_out_cycles = t.queue_out_cycles;
    qp_queue_cycles = Array.copy t.qp_queue_cycles }

let reset t =
  Array.fill t.in_busy_until 0 (Array.length t.in_busy_until) 0;
  Array.fill t.qp_queue_cycles 0 (Array.length t.qp_queue_cycles) 0;
  t.out_busy_until <- 0;
  t.fetches <- 0;
  t.fetched_bytes <- 0;
  t.batches <- 0;
  t.batched_objects <- 0;
  t.writebacks <- 0;
  t.written_bytes <- 0;
  t.wb_batches <- 0;
  t.queue_in_cycles <- 0;
  t.queue_out_cycles <- 0
