(** Simulated RDMA fabric between the compute node and the memory node.

    Models the paper's testbed: 25 Gb/s ConnectX-4 NICs on 2.4 GHz
    Xeons, driven through a DPDK/AIFM-style userspace stack.  Time is
    measured in CPU cycles (the unit of the whole simulator).

    The model is a full-duplex link with:
    - a fixed per-request protocol cost ([proto_cycles]) covering
      NIC doorbells, completion polling, and runtime bookkeeping — this
      dominates small-transfer latency, matching Table 1's ~59 K-cycle
      remote faults for 4 KiB objects;
    - a serialization term [bytes / bytes_per_cycle] per transfer;
    - [qp_count] inbound queue pairs with least-loaded dispatch:
      transfers serialize behind earlier ones on the same QP, so deep
      prefetch windows genuinely contend with demand fetches — but a
      second QP lets a demand fault slip past a streaming window;
    - batching ({!fetch_many}): a run of objects coalesced into one
      request pays [proto_cycles] once plus the summed serialization —
      the RPC-aggregation effect that makes prefetching amortize
      anything at all;
    - posted writebacks: evictions occupy the outbound direction for
      the full protocol + serialization time but never block the CPU. *)

type config = {
  proto_cycles : int;      (** fixed request/response overhead per transfer *)
  bytes_per_cycle : float; (** link bandwidth in bytes per CPU cycle *)
  qp_count : int;          (** inbound queue pairs (>= 1) *)
}

val default_config : config
(** 25 Gb/s at 2.4 GHz (≈ 1.30 bytes/cycle) with a protocol cost
    calibrated so a 4 KiB demand fetch costs ≈ 59 K cycles end to end
    (paper Table 1, CaRDS remote fault).  Single QP: the runtime
    chooses its own QP count ({!Cards_runtime.Runtime.default_config}). *)

val trackfm_config : config
(** Same link, lighter protocol path, calibrated to TrackFM's ≈ 46 K
    cycles per remote guard miss (Table 1).  Single QP, and TrackFM
    never batches — its leaner-but-unbatched path is part of the
    Fig. 8 contrast. *)

type t

val create : config -> t
(** @raise Invalid_argument when [qp_count < 1]. *)

val fetch : t -> now:int -> bytes:int -> int
(** Schedule an inbound transfer starting at [now]; returns its
    completion time (≥ [now + proto + serialization]). *)

type transfer = {
  t_start : int;     (** when a queue pair picked the transfer up *)
  t_queued : int;    (** [t_start - now]: cycles spent waiting in line *)
  t_complete : int;  (** completion time (of the last object for batches) *)
  t_qp : int;        (** the queue pair that carried it *)
  t_proto : int;     (** per-request protocol cycles this transfer paid *)
  t_ser : int;       (** serialization cycles (summed over a batch) *)
}

val fetch_info : t -> now:int -> bytes:int -> transfer
(** Like {!fetch}, but exposes the queue/protocol/serialization split
    ([t_queued + t_proto + t_ser = t_complete - now]) so callers (the
    runtime's cycle-attribution profiler and the stall-attribution
    ledger) can decompose stall cycles into root causes instead of
    reporting one opaque fetch cost. *)

val fetch_many : t -> now:int -> sizes:int array -> transfer * int array
(** Coalesce a batch of objects into one request on the least-loaded
    queue pair.  The protocol cost is paid once; object [i] completes
    at [start + proto + Σ serialization sizes.(0..i)] (returned in the
    array, index-aligned with [sizes]), and the QP stays busy for the
    summed serialization only.  Counts one batch and [n] fetches in
    {!stats}.
    @raise Invalid_argument on an empty batch. *)

val nominal_fetch_cycles : t -> bytes:int -> int
(** Uncontended end-to-end fetch cost ([proto + serialization]) —
    what a demand fetch of [bytes] would cost on an idle link.  Used
    to estimate latency hidden by timely prefetches. *)

val writeback : t -> now:int -> bytes:int -> unit
(** Schedule an outbound (eviction) transfer as a posted write: the
    CPU does not block, but the outbound direction is occupied for the
    full [proto + serialization] time — writes cross the same wire as
    reads (DESIGN.md §fabric). *)

val writeback_many : t -> now:int -> count:int -> bytes:int -> unit
(** Coalesced writeback of [count] dirty objects totalling [bytes]:
    one posted request paying [proto_cycles] once.  Counts [count]
    writebacks and one wb-batch in {!stats}.
    @raise Invalid_argument when [count < 1]. *)

val inbound_busy_until : t -> int
(** When the earliest inbound queue pair frees up (for tests). *)

val outbound_busy_until : t -> int
(** When the outbound direction frees up (for tests). *)

type stats = {
  fetches : int;           (** objects fetched (batched or not) *)
  fetched_bytes : int;
  batches : int;           (** coalesced inbound requests *)
  batched_objects : int;   (** objects carried by those requests *)
  writebacks : int;        (** objects written back *)
  written_bytes : int;
  wb_batches : int;        (** coalesced outbound requests *)
  queue_in_cycles : int;
      (** cycles inbound transfers (fetches) spent queued, all QPs *)
  queue_out_cycles : int;
      (** cycles outbound transfers (writebacks) spent queued *)
  qp_queue_cycles : int array;
      (** inbound queue cycles per queue pair (length [qp_count]) *)
}

val stats : t -> stats

val reset : t -> unit
