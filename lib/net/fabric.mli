(** Simulated RDMA fabric between the compute node and the memory node.

    Models the paper's testbed: 25 Gb/s ConnectX-4 NICs on 2.4 GHz
    Xeons, driven through a DPDK/AIFM-style userspace stack.  Time is
    measured in CPU cycles (the unit of the whole simulator).

    The model is a single full-duplex link with:
    - a fixed per-operation protocol cost ([proto_cycles]) covering
      NIC doorbells, completion polling, and runtime bookkeeping — this
      dominates small-transfer latency, matching Table 1's ~59 K-cycle
      remote faults for 4 KiB objects;
    - a serialization term [bytes / bytes_per_cycle] per transfer;
    - queueing: transfers serialize behind earlier ones in each
      direction ([busy_until] per direction), so aggressive prefetching
      genuinely contends with demand fetches. *)

type config = {
  proto_cycles : int;      (** fixed request/response overhead per fetch *)
  bytes_per_cycle : float; (** link bandwidth in bytes per CPU cycle *)
}

val default_config : config
(** 25 Gb/s at 2.4 GHz (≈ 1.30 bytes/cycle) with a protocol cost
    calibrated so a 4 KiB demand fetch costs ≈ 59 K cycles end to end
    (paper Table 1, CaRDS remote fault). *)

val trackfm_config : config
(** Same link, lighter protocol path, calibrated to TrackFM's ≈ 46 K
    cycles per remote guard miss (Table 1). *)

type t

val create : config -> t

val fetch : t -> now:int -> bytes:int -> int
(** Schedule an inbound transfer starting at [now]; returns its
    completion time (≥ [now + proto + serialization]). *)

type transfer = {
  t_start : int;     (** when the link picked the transfer up *)
  t_queued : int;    (** [t_start - now]: cycles spent waiting in line *)
  t_complete : int;  (** completion time *)
}

val fetch_info : t -> now:int -> bytes:int -> transfer
(** Like {!fetch}, but exposes the queue/transfer split so callers
    (the runtime's cycle-attribution profiler) can attribute stall
    cycles to contention vs. the wire. *)

val nominal_fetch_cycles : t -> bytes:int -> int
(** Uncontended end-to-end fetch cost ([proto + serialization]) —
    what a demand fetch of [bytes] would cost on an idle link.  Used
    to estimate latency hidden by timely prefetches. *)

val writeback : t -> now:int -> bytes:int -> unit
(** Schedule an outbound (eviction) transfer; does not block the CPU,
    only occupies outbound bandwidth. *)

val inbound_busy_until : t -> int
(** When the inbound link frees up (for tests). *)

type stats = {
  fetches : int;
  fetched_bytes : int;
  writebacks : int;
  written_bytes : int;
  queue_in_cycles : int;
      (** cycles inbound transfers (fetches) spent queued *)
  queue_out_cycles : int;
      (** cycles outbound transfers (writebacks) spent queued *)
}

val stats : t -> stats

val reset : t -> unit
