(** Simulated RDMA fabric between the compute node and the memory node.

    Models the paper's testbed: 25 Gb/s ConnectX-4 NICs on 2.4 GHz
    Xeons, driven through a DPDK/AIFM-style userspace stack.  Time is
    measured in CPU cycles (the unit of the whole simulator).

    The model is a full-duplex link with:
    - a fixed per-request protocol cost ([proto_cycles]) covering
      NIC doorbells, completion polling, and runtime bookkeeping — this
      dominates small-transfer latency, matching Table 1's ~59 K-cycle
      remote faults for 4 KiB objects;
    - a serialization term [bytes / bytes_per_cycle] per transfer;
    - [qp_count] inbound queue pairs with least-loaded dispatch:
      transfers serialize behind earlier ones on the same QP, so deep
      prefetch windows genuinely contend with demand fetches — but a
      second QP lets a demand fault slip past a streaming window;
    - batching ({!fetch_many}): a run of objects coalesced into one
      request pays [proto_cycles] once plus the summed serialization —
      the RPC-aggregation effect that makes prefetching amortize
      anything at all;
    - posted writebacks: evictions occupy the outbound direction for
      the full protocol + serialization time but never block the CPU;
    - deterministic fault injection (off by default): a seeded PRNG
      fails, delays, or duplicates transfer completions at a
      configurable per-transfer rate, so the runtime's retry/backoff
      and degradation machinery can be exercised and tested.  Faults
      perturb {e timing only} — object payloads always arrive intact —
      so program outputs are invariant under any fault rate. *)

type fault_kind =
  | Transient   (** the transfer fails outright: the queue pair is held
                    for the protocol turnaround (request + NACK) and
                    nothing lands; the caller may retry *)
  | Late        (** congestion: the completion is delayed by 1-3x the
                    protocol cost, and the queue pair stays occupied
                    until the late completion *)
  | Duplicate   (** the data lands on time but a duplicated completion
                    occupies the queue pair for one extra protocol turn;
                    callers deduplicate by construction *)

val fault_kind_name : fault_kind -> string
(** ["transient"] / ["late"] / ["duplicate"]. *)

type fault_config = {
  fault_rate : float;           (** per-transfer fault probability, [0, 1] *)
  fault_seed : int;             (** PRNG seed: same seed, same schedule *)
  fault_kinds : fault_kind list; (** kinds to draw from, uniformly *)
}

val no_faults : fault_config
(** Rate 0: fault injection fully off.  The PRNG is never consulted,
    so a fabric with [no_faults] is bit-identical to one that predates
    fault injection. *)

type config = {
  proto_cycles : int;      (** fixed request/response overhead per transfer *)
  bytes_per_cycle : float; (** link bandwidth in bytes per CPU cycle *)
  qp_count : int;          (** inbound queue pairs (>= 1) *)
  faults : fault_config;   (** fault injection; defaults to {!no_faults} *)
}

val default_config : config
(** 25 Gb/s at 2.4 GHz (≈ 1.30 bytes/cycle) with a protocol cost
    calibrated so a 4 KiB demand fetch costs ≈ 59 K cycles end to end
    (paper Table 1, CaRDS remote fault).  Single QP, faults off: the
    runtime chooses its own QP count
    ({!Cards_runtime.Runtime.default_config}). *)

val trackfm_config : config
(** Same link, lighter protocol path, calibrated to TrackFM's ≈ 46 K
    cycles per remote guard miss (Table 1).  Single QP, faults off,
    and TrackFM never batches — its leaner-but-unbatched path is part
    of the Fig. 8 contrast. *)

type scale = {
  s_proto : float;  (** multiplier on the per-request protocol cost *)
  s_wire : float;   (** multiplier on serialization (and congestion
                        delay, which rides in the wire term) *)
}
(** Per-call cost multiplier for what-if experiments: a near-cache RPC
    path is [s_proto = 0.5], an infinitely fast link is [s_wire = 0.0].
    Factor [1.0] is special-cased to the untouched integer cost, so a
    unit-scaled call is bit-identical to an unscaled one — the whatif
    bench gate depends on this.  Scaling applies to inbound fetches
    only; writebacks are posted (they never block the CPU and never
    feed back into simulated time), so scaling them would be
    unobservable. *)

val unit_scale : scale
(** [{ s_proto = 1.0; s_wire = 1.0 }]: no perturbation. *)

type t

val create : config -> t
(** @raise Invalid_argument when [qp_count < 1] or [fault_rate] is
    outside [0, 1]. *)

val set_fault_rate : t -> float -> unit
(** Override the live fault rate (the configured kinds and seed keep
    going).  Lets tests and operators model a fabric that degrades and
    then recovers mid-run — the runtime's window tracker re-widens its
    prefetching when the observed rate drops.
    @raise Invalid_argument when the rate is outside [0, 1]. *)

val faults_configured : t -> bool
(** True when the fabric was created with a non-zero fault rate. *)

val fetch : ?scale:scale -> t -> now:int -> bytes:int -> int
(** Schedule an inbound transfer starting at [now]; returns its
    completion time (≥ [now + proto + serialization]).  Never faulted
    (fault injection applies to the [_attempt] entry points).
    [scale] (default {!unit_scale}) multiplies the protocol and wire
    terms for this call.
    @raise Invalid_argument when [now] precedes an earlier inbound
    call's [now] (clock moved backwards; see {!fetch_attempt}). *)

type transfer = {
  t_start : int;     (** when a queue pair picked the transfer up *)
  t_queued : int;    (** [t_start - now]: cycles spent waiting in line *)
  t_complete : int;  (** completion time (of the last object for batches) *)
  t_qp : int;        (** the queue pair that carried it *)
  t_proto : int;     (** per-request protocol cycles this transfer paid *)
  t_ser : int;       (** serialization cycles (summed over a batch; a
                         late fault's congestion delay rides here so the
                         queued/proto/ser split still covers the stall) *)
  t_fault : fault_kind option;
      (** the fault injected into this (completed) transfer, if any *)
}

type failure = {
  f_start : int;  (** when the queue pair picked the doomed attempt up *)
  f_fail : int;   (** when the NACK came back ([f_start + proto]); the
                      QP is occupied until then *)
  f_qp : int;     (** the queue pair it burned *)
}

type port_event = {
  pe_dir : [ `In | `Out ];  (** fetch side or (posted) writeback side *)
  pe_issue : int;     (** the caller's [now] when the request was issued *)
  pe_start : int;     (** when a queue pair / the outbound link took it *)
  pe_complete : int;  (** final completion (NACK time for failures;
                          already includes any Late/Duplicate extension) *)
  pe_qp : int;        (** inbound queue pair, or [-1] outbound *)
  pe_count : int;     (** objects carried (batch size; 1 otherwise) *)
  pe_bytes : int;     (** payload bytes requested *)
  pe_ok : bool;       (** [false]: transient NACK, nothing landed *)
}
(** One record per wire-level request, as observed at this fabric's
    port.  Emitted with {e final} times — fault wrappers extend the
    completion before emitting, so an observer never sees a
    provisional timestamp — and exactly once per request.  Because the
    fabric rejects a backwards [now] per direction, the emitted stream
    is nondecreasing in [pe_issue] per direction: per-tenant streams
    can be merged in virtual-time order by a conservative barrier (the
    parallel serving engine, {!Cards_par.Coordinator}). *)

val set_port : t -> (port_event -> unit) option -> unit
(** Install (or clear) the port observer.  Pure observation: the
    callback sees every event but cannot perturb timing or stats —
    [None] (the default) is bit-identical to any installed observer. *)

val fetch_info : ?scale:scale -> t -> now:int -> bytes:int -> transfer
(** Like {!fetch}, but exposes the queue/protocol/serialization split
    ([t_queued + t_proto + t_ser = t_complete - now]) so callers (the
    runtime's cycle-attribution profiler and the stall-attribution
    ledger) can decompose stall cycles into root causes instead of
    reporting one opaque fetch cost. *)

val fetch_attempt :
  ?scale:scale -> t -> now:int -> bytes:int -> (transfer, failure) result
(** {!fetch_info} through the fault injector: one fault decision is
    drawn per attempt.  [Error] is a transient failure (retry at a
    later [now] if desired); [Ok] transfers may still carry a [Late]
    or [Duplicate] fault in [t_fault].  With the rate at 0 this is
    exactly [Ok (fetch_info ...)] and consults no randomness.

    Retried attempts MUST re-enter at a non-decreasing [now]: the
    fabric raises [Invalid_argument] when the inbound clock moves
    backwards rather than corrupting queue state. *)

val fetch_many :
  ?scale:scale -> t -> now:int -> sizes:int array -> transfer * int array
(** Coalesce a batch of objects into one request on the least-loaded
    queue pair.  The protocol cost is paid once; object [i] completes
    at [start + proto + Σ serialization sizes.(0..i)] (returned in the
    array, index-aligned with [sizes]), and the QP stays busy for the
    summed serialization only.  Counts one batch and [n] fetches in
    {!stats}.  Never faulted; raises on a backwards [now] like
    {!fetch_info}.
    @raise Invalid_argument on an empty batch. *)

val fetch_many_attempt :
  ?scale:scale -> t -> now:int -> sizes:int array ->
  (transfer * int array, failure) result
(** {!fetch_many} through the fault injector: one decision for the
    whole request (it is one request on the wire).  A transient fault
    NACKs the entire batch; a late fault delays every completion in it
    by the same congestion term.
    @raise Invalid_argument on an empty batch or a backwards [now]. *)

val fetch_reliable : ?scale:scale -> t -> now:int -> bytes:int -> transfer
(** The escalation path for a fetch whose retries are exhausted: a
    heavyweight reliable channel (send with end-to-end acknowledgement
    rather than a one-sided read) paying [2 * proto_cycles] plus
    serialization.  Never faulted — guarantees forward progress at any
    fault rate.  Counted in {!stats} [reliable_fetches]. *)

val nominal_fetch_cycles : t -> bytes:int -> int
(** Uncontended end-to-end fetch cost ([proto + serialization]) —
    what a demand fetch of [bytes] would cost on an idle link.  Used
    to estimate latency hidden by timely prefetches. *)

val writeback : t -> now:int -> bytes:int -> unit
(** Schedule an outbound (eviction) transfer as a posted write: the
    CPU does not block, but the outbound direction is occupied for the
    full [proto + serialization] time — writes cross the same wire as
    reads (DESIGN.md §fabric).  Writeback faults are absorbed by the
    fabric itself (the post is NACKed and re-posted, or the duplicate
    drained): the outbound direction is occupied longer and the fault
    is counted, but the caller never sees it.
    @raise Invalid_argument when [now] precedes an earlier outbound
    call's [now]. *)

val writeback_many : t -> now:int -> count:int -> bytes:int -> unit
(** Coalesced writeback of [count] dirty objects totalling [bytes]:
    one posted request paying [proto_cycles] once.  Counts [count]
    writebacks and one wb-batch in {!stats}.  Faults as {!writeback}.
    @raise Invalid_argument when [count < 1] or [now] moved backwards. *)

val inbound_busy_until : t -> int
(** When the earliest inbound queue pair frees up (for tests). *)

val outbound_busy_until : t -> int
(** When the outbound direction frees up (for tests). *)

type stats = {
  fetches : int;           (** objects fetched (batched or not) *)
  fetched_bytes : int;
  batches : int;           (** coalesced inbound requests *)
  batched_objects : int;   (** objects carried by those requests *)
  writebacks : int;        (** objects written back *)
  written_bytes : int;
  wb_batches : int;        (** coalesced outbound requests *)
  queue_in_cycles : int;
      (** cycles inbound transfers (fetches) spent queued, all QPs *)
  queue_out_cycles : int;
      (** cycles outbound transfers (writebacks) spent queued *)
  qp_queue_cycles : int array;
      (** inbound queue cycles per queue pair (length [qp_count]) *)
  faults_transient : int;  (** inbound transfers NACKed *)
  faults_late : int;       (** inbound completions delayed by congestion *)
  faults_dup : int;        (** duplicated inbound completions *)
  failed_fetches : int;    (** failed fetch attempts (= transient faults) *)
  reliable_fetches : int;  (** escalations over the reliable channel *)
  wb_faults : int;         (** outbound faults absorbed by the fabric *)
}

val stats : t -> stats

val add_stats : stats -> stats -> stats
(** Field-wise sum, for aggregating per-tenant fabric slices into one
    global view (the serving layer's Σ-decomposition invariant).
    [qp_queue_cycles] is summed element-wise, the shorter array
    zero-padded to the longer length. *)

val faults_injected : stats -> int
(** [faults_transient + faults_late + faults_dup] (inbound only). *)

val reset : t -> unit
(** Zero the counters, free both directions, and clear the
    backwards-[now] guards.  The fault PRNG keeps its state. *)
