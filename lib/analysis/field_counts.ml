module Irmod = Cards_ir.Irmod
module Func = Cards_ir.Func
module Instr = Cards_ir.Instr
module Bitset = Cards_util.Bitset

type t = { counts : (int * int, float ref) Hashtbl.t }

let bump t desc off w =
  match Hashtbl.find_opt t.counts (desc, off) with
  | Some r -> r := !r +. w
  | None -> Hashtbl.replace t.counts (desc, off) (ref w)

(* Static frequency estimate for a block: 10 per loop level, the
   standard "a loop runs about ten times" guess.  Capped so a
   six-deep nest cannot overflow anything downstream. *)
let weight_of_depth d = 10.0 ** float_of_int (Stdlib.min d 6)

let compute (m : Irmod.t) dsa =
  let t = { counts = Hashtbl.create 64 } in
  List.iter
    (fun (f : Func.t) ->
      let fname = f.name in
      let cfg = Cfg.of_func f in
      let dom = Dominators.compute cfg in
      let loops = Loops.compute cfg dom in
      let ls = Loops.loops loops in
      let depth_of bid =
        Array.fold_left
          (fun acc (loop : Loops.loop) ->
            if Bitset.mem loop.body bid then acc + 1 else acc)
          0 ls
      in
      (* The lowering materializes a field address as its own
         constant-offset gep right before the access, so a simple
         whole-function reg -> offset table recovers every field. *)
      let gep_off = Hashtbl.create 32 in
      Func.iter_instrs f (fun _bid _idx ins ->
          match ins with
          | Instr.Gep (r, _, Instr.Imm off, 1) ->
            Hashtbl.replace gep_off r (Int64.to_int off)
          | _ -> ());
      let off_of_addr = function
        | Instr.Reg r ->
          (match Hashtbl.find_opt gep_off r with Some o -> o | None -> 0)
        | _ -> 0
      in
      Func.iter_instrs f (fun bid idx ins ->
          let addr =
            match ins with
            | Instr.Load (_, _, a) -> Some a
            | Instr.Store (_, a, _) -> Some a
            | _ -> None
          in
          match addr with
          | None -> ()
          | Some a ->
            let descs = Dsa.access_instances dsa ~fname ~bid ~idx in
            if descs <> [] then begin
              let w = weight_of_depth (depth_of bid) in
              let off = off_of_addr a in
              List.iter (fun d -> bump t d off w)
                (List.sort_uniq compare descs)
            end))
    m.funcs;
  t

let count t ~desc ~off =
  match Hashtbl.find_opt t.counts (desc, off) with
  | Some r -> !r
  | None -> 0.0

let offsets t ~desc =
  Hashtbl.fold
    (fun (d, off) r acc -> if d = desc then (off, !r) :: acc else acc)
    t.counts []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let total t ~desc =
  List.fold_left (fun acc (_, c) -> acc +. c) 0.0 (offsets t ~desc)
