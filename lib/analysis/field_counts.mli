(** Per-field access-count approximation on top of DSA.

    For every heap descriptor, estimate how often each byte offset
    inside one element is loaded or stored.  Offsets come from the
    lowering's constant-offset geps ([Gep (r, base, Imm off, 1)] is
    how [p->field] arrives from MiniC); an access whose address is not
    such a gep (a raw element pointer, a scaled index) counts against
    offset 0.  Counts are static-frequency estimates, not profiles:
    each access site contributes [10^depth] where [depth] is its loop
    nesting depth, the classic static heuristic — enough to rank
    fields hot vs cold, which is all {!Cards_transform.Factorize}
    needs. *)

type t

val compute : Cards_ir.Irmod.t -> Dsa.t -> t

val count : t -> desc:int -> off:int -> float
(** Estimated accesses to byte offset [off] of descriptor [desc];
    0 when the pair was never seen. *)

val offsets : t -> desc:int -> (int * float) list
(** All offsets seen for [desc] with their counts, ascending by
    offset.  Empty when the descriptor was never accessed. *)

val total : t -> desc:int -> float
(** Sum of {!count} over every offset of [desc]. *)
