let source ~keys ~nbuckets =
  Printf.sprintf
    {|
// Chained-hash key-value store served one request at a time: the
// canonical remote-data-structure serving workload (memcached-style
// get/put/scan).  [setup] builds and preloads the table; [req] is the
// dispatcher the serving layer calls per request.  Every structure
// hangs off the TBL global, so the table survives between requests in
// a live session and every request-path function sees the same heap.
int NKEYS = %d;
int NBUCKETS = %d;

struct Entry {
  int key;
  int val;
  struct Entry *next;
}

struct Tbl {
  int nbuckets;
  struct Entry **buckets;
  int size;
}

struct Tbl *TBL;

// Multiplicative hash (Knuth); NBUCKETS need not be a power of two.
int hash(int k) {
  int h = k * 2654435761;
  if (h < 0) { h = 0 - h; }
  return h %% NBUCKETS;
}

// op 1: insert or update; returns the previous value (-1 if fresh).
int kv_put(int key, int val) {
  struct Entry **b = TBL->buckets;
  int h = hash(key);
  struct Entry *e = b[h];
  while (e != null) {
    if (e->key == key) {
      int old = e->val;
      e->val = val;
      return old;
    }
    e = e->next;
  }
  struct Entry *fresh = malloc(sizeof(struct Entry));
  fresh->key = key;
  fresh->val = val;
  fresh->next = b[h];
  b[h] = fresh;
  TBL->size = TBL->size + 1;
  return -1;
}

// op 0: point lookup; returns the value (-1 on miss).
int kv_get(int key) {
  struct Entry **b = TBL->buckets;
  struct Entry *e = b[hash(key)];
  while (e != null) {
    if (e->key == key) { return e->val; }
    e = e->next;
  }
  return -1;
}

// op 2: range scan over [first, first+count) buckets — walks every
// chain in the range (the pointer-chase-heavy request).
int kv_scan(int first, int count) {
  struct Entry **b = TBL->buckets;
  int acc = 0;
  for (int i = 0; i < count; i = i + 1) {
    int slot = (first + i) %% NBUCKETS;
    struct Entry *e = b[slot];
    while (e != null) {
      acc = acc + e->val;
      e = e->next;
    }
  }
  return acc;
}

// Build the table and preload NKEYS entries (deterministic values so
// any two sessions with the same source agree on every response).
void setup() {
  TBL = malloc(sizeof(struct Tbl));
  TBL->nbuckets = NBUCKETS;
  TBL->size = 0;
  TBL->buckets = malloc(NBUCKETS * 8);
  struct Entry **b = TBL->buckets;
  for (int i = 0; i < NBUCKETS; i = i + 1) { b[i] = null; }
  for (int k = 0; k < NKEYS; k = k + 1) {
    kv_put(k, k * 7 + 13);
  }
}

// The request dispatcher: one call = one request = one printed line.
// op 0: get(a)   op 1: put(a, b)   op 2: scan(a, b)
int req(int op, int a, int b) {
  int r = 0;
  if (op == 0) { r = kv_get(a); }
  if (op == 1) { r = kv_put(a, b); }
  if (op == 2) { r = kv_scan(a, b); }
  print_int(r);
  return r;
}

// Standalone mode: exercise every op so the module runs (and roots
// the descriptor plan) without a serving driver.
void main() {
  setup();
  int acc = 0;
  acc = acc + req(0, 17, 0);
  acc = acc + req(1, 17, 999);
  acc = acc + req(0, 17, 0);
  acc = acc + req(0, NKEYS + 5, 0);
  acc = acc + req(1, NKEYS + 5, 44);
  acc = acc + req(0, NKEYS + 5, 0);
  acc = acc + req(2, 0, 16);
  print_int(TBL->size);
  print_int(acc);
}
|}
    keys nbuckets
