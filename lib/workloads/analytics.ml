let n_zones = 256
let n_hours = 24

let source ~trips ~query_passes =
  Printf.sprintf
    {|
// NYC-taxi-style analytics: synthetic trip table + query battery.
// Columns and aggregation tables are separate heap structures; the
// query functions receive them as pointers, so pool allocation must
// thread data-structure handles through real call chains.
int N = %d;          // trips
int PASSES = %d;     // query battery repetitions
int ZONES = %d;
int HOURS = %d;

int rng_state = 424242;

int rnd(int bound) {
  rng_state = rng_state * 2862933555777941757 + 3037000493;
  int x = rng_state / 65536;
  if (x < 0) { x = 0 - x; }
  return x %% bound;
}

// Crude Zipf-ish zone draw: repeated halving biases small ids.
int zipf_zone() {
  int z = rnd(ZONES);
  int coin = rnd(4);
  if (coin > 0) { z = z / 2; }
  if (coin > 2) { z = z / 4; }
  return z;
}

// Rush-hour-skewed pickup hour.
int skewed_hour() {
  int coin = rnd(10);
  if (coin < 3) { return 7 + rnd(3); }
  if (coin < 6) { return 16 + rnd(4); }
  return rnd(HOURS);
}

// Shared aggregation helpers (deep caller/callee chains for the
// aggregate tables — Max Reach food).
void fhist_reset(double *sum, int *cnt, int n) {
  for (int i = 0; i < n; i = i + 1) {
    sum[i] = 0.0;
    cnt[i] = 0;
  }
}

void fhist_add(double *sum, int *cnt, int slot, double x) {
  sum[slot] = sum[slot] + x;
  cnt[slot] = cnt[slot] + 1;
}

double fhist_avg_total(double *sum, int *cnt, int n) {
  double acc = 0.0;
  for (int i = 0; i < n; i = i + 1) {
    if (cnt[i] > 0) {
      acc = acc + sum[i] / (1.0 * cnt[i]);
    }
  }
  return acc;
}

void generate(int *hour, int *month, int *pick_zone, int *drop_zone,
              double *dist, double *fare, double *tip, int *passengers,
              int *payment, int *duration, int *vendor) {
  for (int i = 0; i < N; i = i + 1) {
    hour[i] = skewed_hour();
    month[i] = rnd(12);
    pick_zone[i] = zipf_zone();
    drop_zone[i] = zipf_zone();
    double d = 0.5 + 0.01 * rnd(3000);
    dist[i] = d;
    fare[i] = 2.5 + 1.8 * d + 0.01 * rnd(200);
    int card = rnd(10);
    if (card < 6) { payment[i] = 1; } else { payment[i] = 0; }
    if (payment[i] == 1) { tip[i] = fare[i] * 0.01 * (10 + rnd(15)); }
    else { tip[i] = 0.0; }
    passengers[i] = 1 + rnd(5);
    duration[i] = 3 + rnd(60);
    vendor[i] = rnd(2);
  }
}

// Q1: average fare by pickup hour.
double q_fare_by_hour(int *hour, double *fare, double *sum, int *cnt) {
  fhist_reset(sum, cnt, HOURS);
  for (int i = 0; i < N; i = i + 1) {
    fhist_add(sum, cnt, hour[i], fare[i]);
  }
  return fhist_avg_total(sum, cnt, HOURS);
}

// Q2+Q3: pickup-zone histogram and top-10 zones.
double q_top_zones(int *pick_zone, int *zone_cnt, double *top_val, int *top_idx) {
  for (int z = 0; z < ZONES; z = z + 1) { zone_cnt[z] = 0; }
  for (int i = 0; i < N; i = i + 1) {
    zone_cnt[pick_zone[i]] = zone_cnt[pick_zone[i]] + 1;
  }
  for (int t = 0; t < 10; t = t + 1) {
    top_val[t] = 0.0;
    top_idx[t] = -1;
  }
  for (int z = 0; z < ZONES; z = z + 1) {
    double v = 1.0 * zone_cnt[z];
    int slot = -1;
    for (int t = 9; t >= 0; t = t - 1) {
      if (v > top_val[t]) { slot = t; }
    }
    if (slot >= 0) {
      for (int t = 9; t > slot; t = t - 1) {
        top_val[t] = top_val[t - 1];
        top_idx[t] = top_idx[t - 1];
      }
      top_val[slot] = v;
      top_idx[slot] = z;
    }
  }
  double acc = 0.0;
  for (int t = 0; t < 10; t = t + 1) { acc = acc + 1.0 * top_idx[t]; }
  return acc;
}

// Q4: long card-paid trips — tip and fare volume.
double q_long_trips(double *dist, int *payment, double *tip, double *fare) {
  double long_tip = 0.0;
  double long_fare = 0.0;
  for (int i = 0; i < N; i = i + 1) {
    if (dist[i] > 10.0 && payment[i] == 1) {
      long_tip = long_tip + tip[i];
      long_fare = long_fare + fare[i];
    }
  }
  return long_tip + 0.001 * long_fare;
}

// Q5: monthly revenue.
double q_monthly_revenue(int *month, double *fare, double *tip, double *rev) {
  for (int m = 0; m < 12; m = m + 1) { rev[m] = 0.0; }
  for (int i = 0; i < N; i = i + 1) {
    rev[month[i]] = rev[month[i]] + fare[i] + tip[i];
  }
  double acc = 0.0;
  for (int m = 0; m < 12; m = m + 1) { acc = acc + 0.000001 * rev[m]; }
  return acc;
}

// Q6: payment-method split by hour.
double q_payment_split(int *hour, int *payment, int *pay_matrix) {
  for (int h = 0; h < HOURS * 2; h = h + 1) { pay_matrix[h] = 0; }
  for (int i = 0; i < N; i = i + 1) {
    int cell = hour[i] * 2 + payment[i];
    pay_matrix[cell] = pay_matrix[cell] + 1;
  }
  double acc = 0.0;
  for (int h = 0; h < HOURS; h = h + 1) {
    int tot = pay_matrix[h * 2] + pay_matrix[h * 2 + 1];
    if (tot > 0) { acc = acc + 1.0 * pay_matrix[h * 2 + 1] / (1.0 * tot); }
  }
  return acc;
}

// Q7: average speed by hour.
double q_speed(int *hour, double *dist, int *duration, double *sum, int *cnt) {
  fhist_reset(sum, cnt, HOURS);
  for (int i = 0; i < N; i = i + 1) {
    double mph = dist[i] * 60.0 / (1.0 * duration[i]);
    fhist_add(sum, cnt, hour[i], mph);
  }
  return fhist_avg_total(sum, cnt, HOURS);
}

// Q8: average trip distance per pickup zone.
double q_zone_distance(int *pick_zone, double *dist, double *sum, int *cnt) {
  fhist_reset(sum, cnt, ZONES);
  for (int i = 0; i < N; i = i + 1) {
    fhist_add(sum, cnt, pick_zone[i], dist[i]);
  }
  return fhist_avg_total(sum, cnt, ZONES);
}

// Cold query over rarely-touched columns.
int q_odd_vendor(int *vendor, int *passengers) {
  int odd = 0;
  for (int i = 0; i < N; i = i + 1) {
    if (vendor[i] == 1 && passengers[i] > 4) { odd = odd + 1; }
  }
  return odd;
}

void main() {
  // ---- trip columns (11 structures) ----
  int *hour = malloc(N * 8);
  int *month = malloc(N * 8);
  int *pick_zone = malloc(N * 8);
  int *drop_zone = malloc(N * 8);
  double *dist = malloc(N * 8);
  double *fare = malloc(N * 8);
  double *tip = malloc(N * 8);
  int *passengers = malloc(N * 8);
  int *payment = malloc(N * 8);
  int *duration = malloc(N * 8);
  int *vendor = malloc(N * 8);

  // ---- aggregation tables (11 structures) ----
  double *fare_sum_by_hour = malloc(HOURS * 8);
  int *cnt_by_hour = malloc(HOURS * 8);
  int *zone_cnt = malloc(ZONES * 8);
  double *rev_by_month = malloc(12 * 8);
  int *pay_matrix = malloc(HOURS * 2 * 8);
  double *speed_sum = malloc(HOURS * 8);
  int *speed_cnt = malloc(HOURS * 8);
  double *top_val = malloc(10 * 8);
  int *top_idx = malloc(10 * 8);
  double *zone_dist_sum = malloc(ZONES * 8);
  int *zone_dist_cnt = malloc(ZONES * 8);

  generate(hour, month, pick_zone, drop_zone, dist, fare, tip,
           passengers, payment, duration, vendor);

  double grand_total = 0.0;
  for (int p = 0; p < PASSES; p = p + 1) {
    grand_total = grand_total
      + q_fare_by_hour(hour, fare, fare_sum_by_hour, cnt_by_hour)
      + q_top_zones(pick_zone, zone_cnt, top_val, top_idx)
      + q_long_trips(dist, payment, tip, fare)
      + q_monthly_revenue(month, fare, tip, rev_by_month)
      + q_payment_split(hour, payment, pay_matrix)
      + q_speed(hour, dist, duration, speed_sum, speed_cnt)
      + q_zone_distance(pick_zone, dist, zone_dist_sum, zone_dist_cnt);
  }
  int odd_vendor = q_odd_vendor(vendor, passengers);
  print_float(grand_total);
  print_int(odd_vendor);
}
|}
    trips query_passes n_zones n_hours

(* The serving variant: the same columns, tables, and query functions,
   but rooted in a global [struct Db] built once by [setup()] and
   queried one request at a time through [req(op, a, b)] — the shape a
   live session needs (state persists between calls; every request
   prints its result so per-tenant output streams can be compared bit
   for bit).  Query arithmetic is copied from [source] verbatim, so a
   request battery covering ops 0-7 reproduces one [source] pass. *)
let source_server ~trips =
  Printf.sprintf
    {|
// NYC-taxi analytics as a query server: global column store + per-
// request dispatch.
int N = %d;          // trips
int ZONES = %d;
int HOURS = %d;

struct Db {
  int *hour;
  int *month;
  int *pick_zone;
  int *drop_zone;
  double *dist;
  double *fare;
  double *tip;
  int *passengers;
  int *payment;
  int *duration;
  int *vendor;
  double *fare_sum_by_hour;
  int *cnt_by_hour;
  int *zone_cnt;
  double *rev_by_month;
  int *pay_matrix;
  double *speed_sum;
  int *speed_cnt;
  double *top_val;
  int *top_idx;
  double *zone_dist_sum;
  int *zone_dist_cnt;
}

struct Db *DB;

int rng_state = 424242;

int rnd(int bound) {
  rng_state = rng_state * 2862933555777941757 + 3037000493;
  int x = rng_state / 65536;
  if (x < 0) { x = 0 - x; }
  return x %% bound;
}

int zipf_zone() {
  int z = rnd(ZONES);
  int coin = rnd(4);
  if (coin > 0) { z = z / 2; }
  if (coin > 2) { z = z / 4; }
  return z;
}

int skewed_hour() {
  int coin = rnd(10);
  if (coin < 3) { return 7 + rnd(3); }
  if (coin < 6) { return 16 + rnd(4); }
  return rnd(HOURS);
}

void fhist_reset(double *sum, int *cnt, int n) {
  for (int i = 0; i < n; i = i + 1) {
    sum[i] = 0.0;
    cnt[i] = 0;
  }
}

void fhist_add(double *sum, int *cnt, int slot, double x) {
  sum[slot] = sum[slot] + x;
  cnt[slot] = cnt[slot] + 1;
}

double fhist_avg_total(double *sum, int *cnt, int n) {
  double acc = 0.0;
  for (int i = 0; i < n; i = i + 1) {
    if (cnt[i] > 0) {
      acc = acc + sum[i] / (1.0 * cnt[i]);
    }
  }
  return acc;
}

void generate(int *hour, int *month, int *pick_zone, int *drop_zone,
              double *dist, double *fare, double *tip, int *passengers,
              int *payment, int *duration, int *vendor) {
  for (int i = 0; i < N; i = i + 1) {
    hour[i] = skewed_hour();
    month[i] = rnd(12);
    pick_zone[i] = zipf_zone();
    drop_zone[i] = zipf_zone();
    double d = 0.5 + 0.01 * rnd(3000);
    dist[i] = d;
    fare[i] = 2.5 + 1.8 * d + 0.01 * rnd(200);
    int card = rnd(10);
    if (card < 6) { payment[i] = 1; } else { payment[i] = 0; }
    if (payment[i] == 1) { tip[i] = fare[i] * 0.01 * (10 + rnd(15)); }
    else { tip[i] = 0.0; }
    passengers[i] = 1 + rnd(5);
    duration[i] = 3 + rnd(60);
    vendor[i] = rnd(2);
  }
}

double q_fare_by_hour(int *hour, double *fare, double *sum, int *cnt) {
  fhist_reset(sum, cnt, HOURS);
  for (int i = 0; i < N; i = i + 1) {
    fhist_add(sum, cnt, hour[i], fare[i]);
  }
  return fhist_avg_total(sum, cnt, HOURS);
}

double q_top_zones(int *pick_zone, int *zone_cnt, double *top_val, int *top_idx) {
  for (int z = 0; z < ZONES; z = z + 1) { zone_cnt[z] = 0; }
  for (int i = 0; i < N; i = i + 1) {
    zone_cnt[pick_zone[i]] = zone_cnt[pick_zone[i]] + 1;
  }
  for (int t = 0; t < 10; t = t + 1) {
    top_val[t] = 0.0;
    top_idx[t] = -1;
  }
  for (int z = 0; z < ZONES; z = z + 1) {
    double v = 1.0 * zone_cnt[z];
    int slot = -1;
    for (int t = 9; t >= 0; t = t - 1) {
      if (v > top_val[t]) { slot = t; }
    }
    if (slot >= 0) {
      for (int t = 9; t > slot; t = t - 1) {
        top_val[t] = top_val[t - 1];
        top_idx[t] = top_idx[t - 1];
      }
      top_val[slot] = v;
      top_idx[slot] = z;
    }
  }
  double acc = 0.0;
  for (int t = 0; t < 10; t = t + 1) { acc = acc + 1.0 * top_idx[t]; }
  return acc;
}

double q_long_trips(double *dist, int *payment, double *tip, double *fare) {
  double long_tip = 0.0;
  double long_fare = 0.0;
  for (int i = 0; i < N; i = i + 1) {
    if (dist[i] > 10.0 && payment[i] == 1) {
      long_tip = long_tip + tip[i];
      long_fare = long_fare + fare[i];
    }
  }
  return long_tip + 0.001 * long_fare;
}

double q_monthly_revenue(int *month, double *fare, double *tip, double *rev) {
  for (int m = 0; m < 12; m = m + 1) { rev[m] = 0.0; }
  for (int i = 0; i < N; i = i + 1) {
    rev[month[i]] = rev[month[i]] + fare[i] + tip[i];
  }
  double acc = 0.0;
  for (int m = 0; m < 12; m = m + 1) { acc = acc + 0.000001 * rev[m]; }
  return acc;
}

double q_payment_split(int *hour, int *payment, int *pay_matrix) {
  for (int h = 0; h < HOURS * 2; h = h + 1) { pay_matrix[h] = 0; }
  for (int i = 0; i < N; i = i + 1) {
    int cell = hour[i] * 2 + payment[i];
    pay_matrix[cell] = pay_matrix[cell] + 1;
  }
  double acc = 0.0;
  for (int h = 0; h < HOURS; h = h + 1) {
    int tot = pay_matrix[h * 2] + pay_matrix[h * 2 + 1];
    if (tot > 0) { acc = acc + 1.0 * pay_matrix[h * 2 + 1] / (1.0 * tot); }
  }
  return acc;
}

double q_speed(int *hour, double *dist, int *duration, double *sum, int *cnt) {
  fhist_reset(sum, cnt, HOURS);
  for (int i = 0; i < N; i = i + 1) {
    double mph = dist[i] * 60.0 / (1.0 * duration[i]);
    fhist_add(sum, cnt, hour[i], mph);
  }
  return fhist_avg_total(sum, cnt, HOURS);
}

double q_zone_distance(int *pick_zone, double *dist, double *sum, int *cnt) {
  fhist_reset(sum, cnt, ZONES);
  for (int i = 0; i < N; i = i + 1) {
    fhist_add(sum, cnt, pick_zone[i], dist[i]);
  }
  return fhist_avg_total(sum, cnt, ZONES);
}

int q_odd_vendor(int *vendor, int *passengers) {
  int odd = 0;
  for (int i = 0; i < N; i = i + 1) {
    if (vendor[i] == 1 && passengers[i] > 4) { odd = odd + 1; }
  }
  return odd;
}

// Build the column store once; requests query it in place.
void setup() {
  DB = malloc(sizeof(struct Db));
  DB->hour = malloc(N * 8);
  DB->month = malloc(N * 8);
  DB->pick_zone = malloc(N * 8);
  DB->drop_zone = malloc(N * 8);
  DB->dist = malloc(N * 8);
  DB->fare = malloc(N * 8);
  DB->tip = malloc(N * 8);
  DB->passengers = malloc(N * 8);
  DB->payment = malloc(N * 8);
  DB->duration = malloc(N * 8);
  DB->vendor = malloc(N * 8);
  DB->fare_sum_by_hour = malloc(HOURS * 8);
  DB->cnt_by_hour = malloc(HOURS * 8);
  DB->zone_cnt = malloc(ZONES * 8);
  DB->rev_by_month = malloc(12 * 8);
  DB->pay_matrix = malloc(HOURS * 2 * 8);
  DB->speed_sum = malloc(HOURS * 8);
  DB->speed_cnt = malloc(HOURS * 8);
  DB->top_val = malloc(10 * 8);
  DB->top_idx = malloc(10 * 8);
  DB->zone_dist_sum = malloc(ZONES * 8);
  DB->zone_dist_cnt = malloc(ZONES * 8);
  generate(DB->hour, DB->month, DB->pick_zone, DB->drop_zone, DB->dist,
           DB->fare, DB->tip, DB->passengers, DB->payment, DB->duration,
           DB->vendor);
}

// The request dispatcher: one call = one query = one printed line.
// op 0-6 run the float queries, op 7 the cold integer query; a and b
// are accepted for signature uniformity with the kv workload.
int req(int op, int a, int b) {
  int unused = a + b;
  double r = 0.0;
  if (op == 0) { r = q_fare_by_hour(DB->hour, DB->fare, DB->fare_sum_by_hour, DB->cnt_by_hour); }
  if (op == 1) { r = q_top_zones(DB->pick_zone, DB->zone_cnt, DB->top_val, DB->top_idx); }
  if (op == 2) { r = q_long_trips(DB->dist, DB->payment, DB->tip, DB->fare); }
  if (op == 3) { r = q_monthly_revenue(DB->month, DB->fare, DB->tip, DB->rev_by_month); }
  if (op == 4) { r = q_payment_split(DB->hour, DB->payment, DB->pay_matrix); }
  if (op == 5) { r = q_speed(DB->hour, DB->dist, DB->duration, DB->speed_sum, DB->speed_cnt); }
  if (op == 6) { r = q_zone_distance(DB->pick_zone, DB->dist, DB->zone_dist_sum, DB->zone_dist_cnt); }
  if (op == 7) {
    int odd = q_odd_vendor(DB->vendor, DB->passengers);
    print_int(odd);
    return odd;
  }
  print_float(r);
  return 0;
}

// Standalone mode: one full battery (= one [source] pass).
void main() {
  setup();
  for (int op = 0; op < 8; op = op + 1) {
    req(op, 0, 0);
  }
}
|}
    trips n_zones n_hours

(* The same trip table and query battery, but laid out row-wise: one
   array of 88-byte Trip records instead of eleven columns.  Each
   query still touches only a few fields, so without layout help every
   pass drags whole interleaved records across the fabric; with
   --factorize the compiler rewrites the array column-major (AoS→SoA)
   and the fetched bytes collapse to the columns actually read.
   Printed outputs match [source]'s bit for bit: same RNG, same
   queries, same arithmetic order. *)
let source_aos ~trips ~query_passes =
  Printf.sprintf
    {|
// NYC-taxi-style analytics over a row-oriented trip table.
int N = %d;          // trips
int PASSES = %d;     // query battery repetitions
int ZONES = %d;
int HOURS = %d;

struct Trip {
  int hour;
  int month;
  int pick_zone;
  int drop_zone;
  double dist;
  double fare;
  double tip;
  int passengers;
  int payment;
  int duration;
  int vendor;
}

int rng_state = 424242;

int rnd(int bound) {
  rng_state = rng_state * 2862933555777941757 + 3037000493;
  int x = rng_state / 65536;
  if (x < 0) { x = 0 - x; }
  return x %% bound;
}

int zipf_zone() {
  int z = rnd(ZONES);
  int coin = rnd(4);
  if (coin > 0) { z = z / 2; }
  if (coin > 2) { z = z / 4; }
  return z;
}

int skewed_hour() {
  int coin = rnd(10);
  if (coin < 3) { return 7 + rnd(3); }
  if (coin < 6) { return 16 + rnd(4); }
  return rnd(HOURS);
}

void fhist_reset(double *sum, int *cnt, int n) {
  for (int i = 0; i < n; i = i + 1) {
    sum[i] = 0.0;
    cnt[i] = 0;
  }
}

void fhist_add(double *sum, int *cnt, int slot, double x) {
  sum[slot] = sum[slot] + x;
  cnt[slot] = cnt[slot] + 1;
}

double fhist_avg_total(double *sum, int *cnt, int n) {
  double acc = 0.0;
  for (int i = 0; i < n; i = i + 1) {
    if (cnt[i] > 0) {
      acc = acc + sum[i] / (1.0 * cnt[i]);
    }
  }
  return acc;
}

void generate(struct Trip *trips) {
  for (int i = 0; i < N; i = i + 1) {
    struct Trip *t = trips + i;
    t->hour = skewed_hour();
    t->month = rnd(12);
    t->pick_zone = zipf_zone();
    t->drop_zone = zipf_zone();
    double d = 0.5 + 0.01 * rnd(3000);
    t->dist = d;
    t->fare = 2.5 + 1.8 * d + 0.01 * rnd(200);
    int card = rnd(10);
    if (card < 6) { t->payment = 1; } else { t->payment = 0; }
    if (t->payment == 1) { t->tip = t->fare * 0.01 * (10 + rnd(15)); }
    else { t->tip = 0.0; }
    t->passengers = 1 + rnd(5);
    t->duration = 3 + rnd(60);
    t->vendor = rnd(2);
  }
}

double q_fare_by_hour(struct Trip *trips, double *sum, int *cnt) {
  fhist_reset(sum, cnt, HOURS);
  for (int i = 0; i < N; i = i + 1) {
    struct Trip *t = trips + i;
    fhist_add(sum, cnt, t->hour, t->fare);
  }
  return fhist_avg_total(sum, cnt, HOURS);
}

double q_top_zones(struct Trip *trips, int *zone_cnt, double *top_val, int *top_idx) {
  for (int z = 0; z < ZONES; z = z + 1) { zone_cnt[z] = 0; }
  for (int i = 0; i < N; i = i + 1) {
    struct Trip *t = trips + i;
    zone_cnt[t->pick_zone] = zone_cnt[t->pick_zone] + 1;
  }
  for (int t = 0; t < 10; t = t + 1) {
    top_val[t] = 0.0;
    top_idx[t] = -1;
  }
  for (int z = 0; z < ZONES; z = z + 1) {
    double v = 1.0 * zone_cnt[z];
    int slot = -1;
    for (int t = 9; t >= 0; t = t - 1) {
      if (v > top_val[t]) { slot = t; }
    }
    if (slot >= 0) {
      for (int t = 9; t > slot; t = t - 1) {
        top_val[t] = top_val[t - 1];
        top_idx[t] = top_idx[t - 1];
      }
      top_val[slot] = v;
      top_idx[slot] = z;
    }
  }
  double acc = 0.0;
  for (int t = 0; t < 10; t = t + 1) { acc = acc + 1.0 * top_idx[t]; }
  return acc;
}

double q_long_trips(struct Trip *trips) {
  double long_tip = 0.0;
  double long_fare = 0.0;
  for (int i = 0; i < N; i = i + 1) {
    struct Trip *t = trips + i;
    if (t->dist > 10.0 && t->payment == 1) {
      long_tip = long_tip + t->tip;
      long_fare = long_fare + t->fare;
    }
  }
  return long_tip + 0.001 * long_fare;
}

double q_monthly_revenue(struct Trip *trips, double *rev) {
  for (int m = 0; m < 12; m = m + 1) { rev[m] = 0.0; }
  for (int i = 0; i < N; i = i + 1) {
    struct Trip *t = trips + i;
    rev[t->month] = rev[t->month] + t->fare + t->tip;
  }
  double acc = 0.0;
  for (int m = 0; m < 12; m = m + 1) { acc = acc + 0.000001 * rev[m]; }
  return acc;
}

double q_payment_split(struct Trip *trips, int *pay_matrix) {
  for (int h = 0; h < HOURS * 2; h = h + 1) { pay_matrix[h] = 0; }
  for (int i = 0; i < N; i = i + 1) {
    struct Trip *t = trips + i;
    int cell = t->hour * 2 + t->payment;
    pay_matrix[cell] = pay_matrix[cell] + 1;
  }
  double acc = 0.0;
  for (int h = 0; h < HOURS; h = h + 1) {
    int tot = pay_matrix[h * 2] + pay_matrix[h * 2 + 1];
    if (tot > 0) { acc = acc + 1.0 * pay_matrix[h * 2 + 1] / (1.0 * tot); }
  }
  return acc;
}

double q_speed(struct Trip *trips, double *sum, int *cnt) {
  fhist_reset(sum, cnt, HOURS);
  for (int i = 0; i < N; i = i + 1) {
    struct Trip *t = trips + i;
    double mph = t->dist * 60.0 / (1.0 * t->duration);
    fhist_add(sum, cnt, t->hour, mph);
  }
  return fhist_avg_total(sum, cnt, HOURS);
}

double q_zone_distance(struct Trip *trips, double *sum, int *cnt) {
  fhist_reset(sum, cnt, ZONES);
  for (int i = 0; i < N; i = i + 1) {
    struct Trip *t = trips + i;
    fhist_add(sum, cnt, t->pick_zone, t->dist);
  }
  return fhist_avg_total(sum, cnt, ZONES);
}

int q_odd_vendor(struct Trip *trips) {
  int odd = 0;
  for (int i = 0; i < N; i = i + 1) {
    struct Trip *t = trips + i;
    if (t->vendor == 1 && t->passengers > 4) { odd = odd + 1; }
  }
  return odd;
}

void main() {
  struct Trip *trips = malloc(N * sizeof(struct Trip));

  // ---- aggregation tables ----
  double *fare_sum_by_hour = malloc(HOURS * 8);
  int *cnt_by_hour = malloc(HOURS * 8);
  int *zone_cnt = malloc(ZONES * 8);
  double *rev_by_month = malloc(12 * 8);
  int *pay_matrix = malloc(HOURS * 2 * 8);
  double *speed_sum = malloc(HOURS * 8);
  int *speed_cnt = malloc(HOURS * 8);
  double *top_val = malloc(10 * 8);
  int *top_idx = malloc(10 * 8);
  double *zone_dist_sum = malloc(ZONES * 8);
  int *zone_dist_cnt = malloc(ZONES * 8);

  generate(trips);

  double grand_total = 0.0;
  for (int p = 0; p < PASSES; p = p + 1) {
    grand_total = grand_total
      + q_fare_by_hour(trips, fare_sum_by_hour, cnt_by_hour)
      + q_top_zones(trips, zone_cnt, top_val, top_idx)
      + q_long_trips(trips)
      + q_monthly_revenue(trips, rev_by_month)
      + q_payment_split(trips, pay_matrix)
      + q_speed(trips, speed_sum, speed_cnt)
      + q_zone_distance(trips, zone_dist_sum, zone_dist_cnt);
  }
  int odd_vendor = q_odd_vendor(trips);
  print_float(grand_total);
  print_int(odd_vendor);
}
|}
    trips query_passes n_zones n_hours
