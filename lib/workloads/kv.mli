(** Memcached-style chained-hash key-value store — the serving layer's
    request workload (Arcalis's RPC vocabulary: get / put / scan).

    The table hangs off a global, so in a live {!Cards_interp.Machine}
    session it persists across requests: the serving driver calls
    [setup()] once and then dispatches [req(op, a, b)] per request
    (op 0 = get(a), op 1 = put(a, b), op 2 = scan over [b] buckets
    from [a]).  Each request prints exactly one integer — the response
    — which is what the tenant-isolation oracle compares bit for bit.

    [main] runs a small standalone battery over the same entry points,
    so the module also works as an ordinary workload (and gives DSA a
    rooted program to place descriptors in). *)

val source : keys:int -> nbuckets:int -> string
(** MiniC source.  [keys] entries preloaded by [setup] into [nbuckets]
    chains (average chain length [keys / nbuckets]). *)
