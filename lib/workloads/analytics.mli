(** The paper's data-analytics workload: NYC-taxi-style trip analysis
    (§5, "analytics").

    The original uses the 2014 Kaggle NYC taxi dataset (16 GB on disk,
    31 GB working set); the sealed environment has no dataset, so the
    program {e generates} a synthetic trip table with the same column
    structure and skew (hour-of-day rush peaks, Zipf-popular zones,
    fare correlated with distance) and then runs a battery of analytics
    queries over it: average fare by hour, zone histograms + top-k,
    long-trip filters, monthly revenue, payment split, speed
    statistics, and a zone-distance aggregation.

    Columns and aggregation tables are separate heap allocations, so
    DSA identifies ~22 disjoint data structures, matching the paper's
    count for this workload.  Query passes revisit the hot columns
    (hour, fare, distance) far more than the cold ones (vendor,
    passenger count), which is exactly the asymmetry per-structure
    remoting policies exploit. *)

val n_zones : int
val n_hours : int

val source : trips:int -> query_passes:int -> string
(** MiniC source.  [trips] = row count; [query_passes] = how many
    times the query battery runs (hot/cold contrast grows with it). *)

val source_server : trips:int -> string
(** The serving variant: the same columns, aggregation tables, and
    query functions, rooted in a global [struct Db] that [setup()]
    builds once and [req(op, a, b)] queries per request (ops 0-6 =
    the float queries, op 7 = the cold integer query; each prints its
    result).  Query arithmetic matches [source] verbatim, so a battery
    over ops 0-7 reproduces one [source] pass.  [main] runs exactly
    that battery standalone. *)

val source_aos : trips:int -> query_passes:int -> string
(** The same trip table and query battery laid out row-wise: one array
    of 88-byte [struct Trip] records instead of eleven columns — the
    layout-factorization pass's AoS→SoA target.  Printed outputs match
    [source]'s bit for bit (same RNG stream, same query arithmetic),
    so the two compile-side layouts are differential oracles for each
    other. *)
