(* CaRDS evaluation harness.

   Regenerates every table and figure of the paper's evaluation
   section, plus the ablations DESIGN.md calls out.  Absolute numbers
   come from a cycle-cost simulator calibrated to the paper's Table 1;
   the claims under test are the *shapes*: who wins, by what factor,
   and where the crossovers sit.

     dune exec bench/main.exe              # everything
     dune exec bench/main.exe -- fig8 fig9 # selected experiments

   Sections: table1 fig4 fig5 fig6 fig7 fig8 fig9 fabric profile attr
   faults spans ablations bechamel host

   `--json FILE` additionally records every experiment the chosen
   sections register (tag, total cycles, fabric counters) as a JSON
   snapshot, so successive PRs leave comparable perf records.

   `--compare BASELINE.json [--tolerance F]` diffs the experiments this
   invocation registers against a committed snapshot (relative
   tolerance, default 2%) and exits non-zero on any deviation — the
   regression gate scripts/check.sh runs against BENCH_fabric.json,
   BENCH_attr.json, BENCH_faults.json, BENCH_spans.json and
   BENCH_host.json.  The
   baseline is read before `--json` rewrites it, so `--json X
   --compare X` gates and refreshes in one run. *)

module R = Cards_runtime
module P = Cards.Pipeline
module W = Cards_workloads
module B = Cards_baselines
module T = Cards_util.Table
module J = Cards_util.Json

let kb x = x * 1024
let mcycles c = Printf.sprintf "%.1f" (float_of_int c /. 1e6)
let fx r = T.fmt_speedup r

let header title = Printf.printf "\n==== %s ====\n\n%!" title

(* ---------- JSON perf snapshot (--json FILE) ---------- *)

let json_out : string option ref = ref None
let compare_to : string option ref = ref None
let tolerance = ref 0.02
let experiments : J.t list ref = ref []

let fabric_json (fs : Cards_net.Fabric.stats) =
  J.Obj
    [ ("fetches", J.Int fs.fetches);
      ("fetched_bytes", J.Int fs.fetched_bytes);
      ("batches", J.Int fs.batches);
      ("batched_objects", J.Int fs.batched_objects);
      ("writebacks", J.Int fs.writebacks);
      ("written_bytes", J.Int fs.written_bytes);
      ("wb_batches", J.Int fs.wb_batches);
      ("queue_in_cycles", J.Int fs.queue_in_cycles);
      ("queue_out_cycles", J.Int fs.queue_out_cycles);
      ("qp_queue_cycles",
       J.List (Array.to_list (Array.map (fun c -> J.Int c) fs.qp_queue_cycles)));
      ("faults_transient", J.Int fs.faults_transient);
      ("faults_late", J.Int fs.faults_late);
      ("faults_dup", J.Int fs.faults_dup);
      ("failed_fetches", J.Int fs.failed_fetches);
      ("reliable_fetches", J.Int fs.reliable_fetches);
      ("wb_faults", J.Int fs.wb_faults) ]

let record_experiment ~tag ~cycles rt =
  experiments :=
    J.Obj
      [ ("tag", J.Str tag); ("cycles", J.Int cycles);
        ("fabric", fabric_json (R.Runtime.fabric_stats rt)) ]
    :: !experiments

let current_doc () = J.Obj [ ("experiments", J.List (List.rev !experiments)) ]

let write_json () =
  Option.iter
    (fun path ->
      let oc = open_out path in
      output_string oc (J.to_string (current_doc ()));
      output_char oc '\n';
      close_out oc;
      Printf.eprintf "-- recorded %d experiments to %s\n"
        (List.length !experiments) path)
    !json_out

let cards_cfg ?(policy = R.Policy.Linear) ~k ~local ~remot () =
  { R.Runtime.default_config with
    policy; k; local_bytes = local; remotable_bytes = remot }

let run_cycles compiled cfg =
  let res, _ = P.run compiled cfg in
  res.cycles

(* Working-set size measured from a profiling run (exact, not
   estimated). *)
let wss_of compiled =
  let prof = B.Mira.profile compiled in
  Array.fold_left ( + ) 0 prof.B.Mira.per_sid_bytes

(* ---------------------------------------------------------------- *)
(* Table 1: primitive overheads, median cycles over 100 trials.     *)
(* ---------------------------------------------------------------- *)

let table1 () =
  header "Table 1: primitive overheads (median cycles over 100 trials)";
  let median_of f =
    let s = Cards_util.Stats.create () in
    for _ = 1 to 100 do
      Cards_util.Stats.add s (float_of_int (f ()))
    done;
    Cards_util.Stats.median s
  in
  let trial ~cost ~fabric ~write ~remote () =
    let info =
      { (R.Static_info.default ~sid:0) with prefetch = R.Static_info.No_prefetch }
    in
    let rt =
      R.Runtime.create
        { R.Runtime.default_config with
          policy = R.Policy.All_remotable; k = 0.0;
          local_bytes = kb 64; remotable_bytes = kb 8;
          cost; fabric_config = fabric; prefetch_mode = R.Runtime.Pf_none }
        [| info |]
    in
    let h = R.Runtime.ds_init rt ~sid:0 in
    let a = R.Runtime.ds_alloc rt ~handle:h ~size:4096 in
    if remote then begin
      (* Evict the object (the extra allocations spend its second
         chance, then reclaim it). *)
      let _ = R.Runtime.ds_alloc rt ~handle:h ~size:4096 in
      let _ = R.Runtime.ds_alloc rt ~handle:h ~size:4096 in
      ()
    end
    else
      (* Warm it: a touched object is definitely resident. *)
      R.Runtime.guard rt ~write:false a;
    let t0 = R.Runtime.now rt in
    R.Runtime.guard rt ~write a;
    R.Runtime.now rt - t0
  in
  let t = T.create ~title:"Runtime event costs"
      ~header:[ "Runtime Event"; "Local Cost"; "Remote Cost"; "Paper (L/R)" ] in
  let row name cost fabric write paper =
    let local = median_of (trial ~cost ~fabric ~write ~remote:false) in
    let remote = median_of (trial ~cost ~fabric ~write ~remote:true) in
    T.add_row t [ name; T.fmt_cycles local; T.fmt_cycles remote; paper ]
  in
  row "CaRDS read fault" R.Cost.cards Cards_net.Fabric.default_config false
    "378 / 59K";
  row "CaRDS write fault" R.Cost.cards Cards_net.Fabric.default_config true
    "384 / 59K";
  row "TrackFM read guard" R.Cost.trackfm Cards_net.Fabric.trackfm_config false
    "462 / 46K";
  row "TrackFM write guard" R.Cost.trackfm Cards_net.Fabric.trackfm_config true
    "579 / 47K";
  T.print t

(* ---------------------------------------------------------------- *)
(* Figure 4: remoting policies on Listing 1 at k = 50 %.            *)
(* ---------------------------------------------------------------- *)

let policies =
  [ ("linear", R.Policy.Linear);
    ("random", R.Policy.Random 7);
    ("max-reach", R.Policy.Max_reach);
    ("max-use", R.Policy.Max_use) ]

let fig4 () =
  header "Figure 4: Listing 1 policy comparison (k = 50%)";
  let elems = 131072 in
  let compiled = P.compile_source (W.Listing1.source ~elems ~ntimes:10) in
  let arr = elems * 8 in
  (* Local memory holds one of the two arrays pinned (paper: both
     structures are 3 GB; with k = 50% one can be localized). *)
  let remot = arr / 4 in
  let local = arr + remot in
  let allrem =
    run_cycles compiled
      (cards_cfg ~policy:R.Policy.All_remotable ~k:0.0 ~local ~remot ())
  in
  let t = T.create
      ~title:(Printf.sprintf "Listing 1, 2 structures of %s each"
                (T.fmt_bytes (float_of_int arr)))
      ~header:[ "Policy"; "Runtime (Mcycles)"; "Speedup vs all-remotable" ] in
  List.iter
    (fun (name, policy) ->
      let c = run_cycles compiled (cards_cfg ~policy ~k:0.5 ~local ~remot ()) in
      T.add_row t [ name; mcycles c; fx (float_of_int allrem /. float_of_int c) ])
    policies;
  T.add_row t [ "all-remotable"; mcycles allrem; "1.00x" ];
  T.print t;
  print_endline
    "Expected shape: max-use localizes the hot ds2 and clearly beats\n\
     linear/random (which pin ds1); paper reports ~2x."

(* ---------------------------------------------------------------- *)
(* Figures 5-7: policy sweeps over the localized fraction k.        *)
(* ---------------------------------------------------------------- *)

let policy_sweep ~title ~compiled ~remot ~note () =
  header title;
  let wss = wss_of compiled in
  let local = wss + remot in
  let allrem =
    run_cycles compiled
      (cards_cfg ~policy:R.Policy.All_remotable ~k:0.0 ~local ~remot ())
  in
  let t =
    T.create
      ~title:(Printf.sprintf
                "WSS %s, local %s, remotable %s — Mcycles (speedup vs all-remotable %s)"
                (T.fmt_bytes (float_of_int wss))
                (T.fmt_bytes (float_of_int local))
                (T.fmt_bytes (float_of_int remot))
                (mcycles allrem))
      ~header:("k" :: List.map fst policies)
  in
  List.iter
    (fun pct ->
      let k = float_of_int pct /. 100.0 in
      let cells =
        List.map
          (fun (_, policy) ->
            let c =
              match policy with
              | R.Policy.Random _ ->
                (* Average three draws so one lucky assignment does not
                   misrepresent the policy. *)
                let seeds = [ 7; 21; 42 ] in
                List.fold_left
                  (fun acc seed ->
                    acc
                    + run_cycles compiled
                        (cards_cfg ~policy:(R.Policy.Random seed) ~k ~local
                           ~remot ()))
                  0 seeds
                / List.length seeds
              | _ -> run_cycles compiled (cards_cfg ~policy ~k ~local ~remot ())
            in
            Printf.sprintf "%s (%s)" (mcycles c)
              (fx (float_of_int allrem /. float_of_int c)))
          policies
      in
      T.add_row t ((string_of_int pct ^ "%") :: cells))
    [ 25; 50; 75; 100 ];
  T.print t;
  print_endline note

let fig5 () =
  let compiled =
    P.compile_source (W.Bfs.source ~nodes:30000 ~edges:150000 ~sources:2)
  in
  policy_sweep
    ~title:"Figure 5: BFS remoting policies (localized fraction sweep)"
    ~compiled
    ~remot:(kb 512) (* paper: 256 MB of a 1.2 GB WSS, scaled *)
    ~note:"Expected shape: all policies improve with k; linear is\n\
           competitive and stable across selections (paper: linear\n\
           unaffected even at 25%); random is the weakest."
    ()

let fig6 () =
  let compiled =
    P.compile_source (W.Analytics.source ~trips:50000 ~query_passes:2)
  in
  policy_sweep
    ~title:"Figure 6: analytics remoting policies (localized fraction sweep)"
    ~compiled
    ~remot:(kb 256) (* paper: 1 GB of a 31 GB WSS, scaled *)
    ~note:"Expected shape: max-use / max-reach localize the hot\n\
           aggregation tables first and degrade most gracefully as k\n\
           shrinks (paper: max-reach unaffected down to 25%)."
    ()

let fig7 () =
  let compiled =
    P.compile_source (W.Ftfdapml.source ~cz:16 ~cym:48 ~cxm:48 ~steps:4)
  in
  policy_sweep
    ~title:"Figure 7: ftfdapml remoting policies (localized fraction sweep)"
    ~compiled
    ~remot:(kb 512) (* paper: 1 GB of an 8 GB WSS, scaled *)
    ~note:"Expected shape: selective remoting reaches ~4x over the\n\
           all-remotable configuration once the large field volumes are\n\
           localized; linear and max-reach tolerate selection changes."
    ()

(* ---------------------------------------------------------------- *)
(* Figure 8: CaRDS vs prior far-memory compilers on analytics.      *)
(* ---------------------------------------------------------------- *)

let fig8 () =
  header "Figure 8: CaRDS vs TrackFM vs Mira (analytics, local-memory sweep)";
  let src = W.Analytics.source ~trips:50000 ~query_passes:2 in
  let compiled = P.compile_source src in
  let tfm = B.Trackfm.compile_source src in
  let wss = wss_of compiled in
  let remot = kb 256 in
  let plain, _ = B.Noguard.run compiled in
  let t =
    T.create
      ~title:(Printf.sprintf
                "Runtime in Mcycles (WSS %s; all-local plain run = %s)"
                (T.fmt_bytes (float_of_int wss)) (mcycles plain.cycles))
      ~header:[ "local mem"; "CaRDS"; "TrackFM"; "Mira"; "CaRDS/TrackFM";
                "CaRDS vs Mira" ]
  in
  List.iter
    (fun pct ->
      let local = (wss * pct / 100) + remot in
      (* CaRDS's tunable parameter per the paper's guidance ("ideally
         set higher when more local memory is available"): pin as much
         as fits, ranked by Equation 1. *)
      let cards =
        run_cycles compiled
          (cards_cfg ~policy:R.Policy.Max_use ~k:1.0 ~local ~remot ())
      in
      let tres, _ = B.Trackfm.run tfm ~local_bytes:local in
      let mres, _ = B.Mira.run compiled ~local_bytes:local ~remotable_bytes:remot in
      T.add_row t
        [ string_of_int pct ^ "%";
          mcycles cards;
          mcycles tres.cycles;
          mcycles mres.cycles;
          fx (float_of_int tres.cycles /. float_of_int cards);
          Printf.sprintf "+%.0f%%"
            (100.0 *. ((float_of_int cards /. float_of_int mres.cycles) -. 1.0)) ])
    [ 25; 50; 75; 100 ];
  T.print t;
  print_endline
    "Expected shape: CaRDS consistently above TrackFM (paper: up to ~2x);\n\
     within ~20-25% of Mira when local memory is scarce; Mira pulls\n\
     ahead as memory grows (it knows exact sizes from its profile)."

(* ---------------------------------------------------------------- *)
(* Figure 9: prefetch policies on pointer-chasing data structures.  *)
(* ---------------------------------------------------------------- *)

let fig9 () =
  header "Figure 9: CaRDS speedup over TrackFM (pointer-chasing structures)";
  let variants =
    [ ("array", 32768, 2); ("vector", 16384, 2); ("list", 16384, 2);
      ("map", 4096, 2); ("hash", 8192, 2); ("tree", 16384, 2) ]
  in
  let t =
    T.create ~title:"Speedup of CaRDS over TrackFM (same local memory)"
      ~header:[ "structure"; "WSS"; "50% local"; "75% local" ]
  in
  List.iter
    (fun (variant, scale, passes) ->
      let src = W.Pointer_chase.source ~variant ~scale ~passes in
      let compiled = P.compile_source src in
      let tfm = B.Trackfm.compile_source src in
      let wss = wss_of compiled in
      let speedup pct =
        let local = wss * pct / 100 in
        let remot = local / 4 in
        let c = run_cycles compiled (cards_cfg ~k:1.0 ~local ~remot ()) in
        let tres, _ = B.Trackfm.run tfm ~local_bytes:local in
        fx (float_of_int tres.cycles /. float_of_int c)
      in
      T.add_row t
        [ variant; T.fmt_bytes (float_of_int wss); speedup 50; speedup 75 ])
    variants;
  T.print t;
  print_endline
    "Expected shape: every structure at or above 1x (paper: CaRDS\n\
     outperforms TrackFM consistently); pointer-heavy structures gain\n\
     the most from per-structure prefetchers."

(* ---------------------------------------------------------------- *)
(* Fabric: batching & queue pairs on the fig9 stride/list chases.   *)
(* ---------------------------------------------------------------- *)

let fabric_section () =
  header "Fabric: batched transport vs per-object requests (50% local)";
  let t =
    T.create
      ~title:"Same program, same outputs — batching must win or the bench fails"
      ~header:[ "workload"; "batched"; "unbatched"; "speedup"; "batches";
                "objs/batch" ]
  in
  List.iter
    (fun (variant, scale, passes) ->
      let src = W.Pointer_chase.source ~variant ~scale ~passes in
      let compiled = P.compile_source src in
      let wss = wss_of compiled in
      let local = wss / 2 in
      let remot = local / 4 in
      let batched_cfg = cards_cfg ~k:1.0 ~local ~remot () in
      let unbatched_cfg =
        { batched_cfg with
          batching = false;
          fabric_config =
            { batched_cfg.fabric_config with Cards_net.Fabric.qp_count = 1 } }
      in
      let bres, brt = P.run compiled batched_cfg in
      let ures, urt = P.run compiled unbatched_cfg in
      (* Batching is a timing optimization; program results must be
         bit-identical, and the batched run must actually be faster. *)
      if bres.output <> ures.output then begin
        Printf.eprintf "FABRIC: outputs diverge on pc-%s\n" variant;
        exit 1
      end;
      if bres.cycles >= ures.cycles then begin
        Printf.eprintf "FABRIC: batching did not pay on pc-%s (%d vs %d)\n"
          variant bres.cycles ures.cycles;
        exit 1
      end;
      record_experiment ~tag:("pc-" ^ variant ^ "-batched") ~cycles:bres.cycles
        brt;
      record_experiment ~tag:("pc-" ^ variant ^ "-unbatched")
        ~cycles:ures.cycles urt;
      let fs : Cards_net.Fabric.stats = R.Runtime.fabric_stats brt in
      T.add_row t
        [ "pc-" ^ variant; mcycles bres.cycles ^ " Mc"; mcycles ures.cycles ^ " Mc";
          fx (float_of_int ures.cycles /. float_of_int bres.cycles);
          string_of_int fs.batches;
          (if fs.batches = 0 then "-"
           else
             Printf.sprintf "%.1f"
               (float_of_int fs.batched_objects /. float_of_int fs.batches)) ])
    [ ("array", 32768, 2); ("list", 16384, 2) ];
  T.print t;
  print_endline
    "Stride windows and jump-pointer chases both coalesce; the checks\n\
     above are hard assertions (divergent outputs or a slowdown fail\n\
     the bench)."

(* ---------------------------------------------------------------- *)
(* Profile: cycle attribution for the fig8/fig9 workloads.          *)
(* ---------------------------------------------------------------- *)

module O = Cards_obs

let profile_run name compiled cfg =
  let res, rt = P.run compiled cfg in
  let prof = R.Runtime.profile rt in
  T.print
    (O.Export.profile_table
       ~title:
         (Printf.sprintf "%s: cycle attribution (%s cycles)" name
            (T.fmt_cycles (float_of_int res.cycles)))
       ~names:(R.Runtime.ds_name rt) ~total:res.cycles prof);
  T.print (O.Export.latency_table ~title:(name ^ ": fetch latency") prof);
  T.print
    (O.Export.fabric_table ~title:(name ^ ": fabric")
       ~over_budget:(R.Rt_stats.over_budget (R.Runtime.stats rt))
       (R.Runtime.fabric_stats rt))

let profile_section () =
  header "Profile: where the simulated cycles go (fig8/fig9 workloads)";
  (* The fig8 analytics workload under memory pressure: demand stalls
     and queueing should dominate the remoted structures. *)
  let src = W.Analytics.source ~trips:50000 ~query_passes:2 in
  let compiled = P.compile_source src in
  let wss = wss_of compiled in
  let remot = kb 256 in
  let local = (wss / 2) + remot in
  profile_run "analytics (50% local)" compiled
    (cards_cfg ~policy:R.Policy.Max_use ~k:1.0 ~local ~remot ());
  (* The fig9 chase suite's hardest cases: the jump prefetcher turns
     demand stalls into pf-hidden cycles on the list from the second
     traversal on; the tree's greedy prefetcher hides less. *)
  List.iter
    (fun (variant, scale, passes) ->
      let src = W.Pointer_chase.source ~variant ~scale ~passes in
      let compiled = P.compile_source src in
      let wss = wss_of compiled in
      let local = wss / 2 in
      let remot = local / 4 in
      profile_run
        (Printf.sprintf "pc-%s (50%% local)" variant)
        compiled
        (cards_cfg ~k:1.0 ~local ~remot ()))
    [ ("list", 16384, 2); ("tree", 16384, 2) ]

(* ---------------------------------------------------------------- *)
(* Attribution: stall root causes + fetch-latency percentiles.      *)
(* ---------------------------------------------------------------- *)

(* The regression-gated observability suite: runs the fig9 chases and
   the fig8 analytics workload at 50% local, asserts the ledger
   exactness invariant at bench scale, prints the per-cause / per-site
   stall decomposition, and records each run so BENCH_attr.json gates
   cycle counts and fabric counters across PRs. *)
let attr_section () =
  header "Attribution: stall root causes (fig8/fig9 workloads, 50% local)";
  let run_one tag compiled cfg =
    let res, rt = P.run compiled cfg in
    let prof = R.Runtime.profile rt in
    let attr = R.Runtime.attribution rt in
    let stall = res.cycles - O.Profile.compute prof in
    if O.Attribution.total attr <> stall then begin
      Printf.eprintf
        "ATTR: ledger total %d <> stall %d (cycles %d - compute %d) on %s\n"
        (O.Attribution.total attr) stall res.cycles
        (O.Profile.compute prof) tag;
      exit 1
    end;
    let names = R.Runtime.ds_name rt in
    T.print
      (O.Export.attribution_table
         ~title:
           (Printf.sprintf "%s: stall attribution (%s stall / %s total)" tag
              (T.fmt_cycles (float_of_int stall))
              (T.fmt_cycles (float_of_int res.cycles)))
         ~names attr);
    T.print
      (O.Export.attribution_sites_table ~title:(tag ^ ": hottest access sites")
         ~names attr);
    T.print
      (O.Export.latency_percentiles_table
         ~title:(tag ^ ": fetch latency percentiles") ~names prof);
    record_experiment ~tag ~cycles:res.cycles rt
  in
  let analytics = P.compile_source (W.Analytics.source ~trips:50000 ~query_passes:2) in
  let wss = wss_of analytics in
  let remot = kb 256 in
  let local = (wss / 2) + remot in
  run_one "attr-analytics" analytics
    (cards_cfg ~policy:R.Policy.Max_use ~k:1.0 ~local ~remot ());
  List.iter
    (fun (variant, scale, passes) ->
      let compiled =
        P.compile_source (W.Pointer_chase.source ~variant ~scale ~passes)
      in
      let wss = wss_of compiled in
      let local = wss / 2 in
      let remot = local / 4 in
      run_one ("attr-pc-" ^ variant) compiled (cards_cfg ~k:1.0 ~local ~remot ()))
    [ ("list", 16384, 2); ("tree", 16384, 2) ];
  print_endline
    "Every stalled cycle lands in exactly one cause bucket; the ledger\n\
     total matching (cycles - compute) above is a hard assertion."

(* ---------------------------------------------------------------- *)
(* Faults: injected fabric faults, retry/backoff, degradation.      *)
(* ---------------------------------------------------------------- *)

(* The resilience suite: the fig9 list chase under increasing injected
   fault rates.  Four hard assertions per rate —

     1. program outputs are bit-identical to the fault-free run
        (faults perturb timing only, never data);
     2. the profiler stays exact under retries
        (Profile.attributed = cycles);
     3. the stall ledger stays exact and, at any nonzero rate, charges
        a nonzero Retry bucket (Attribution.total = cycles - compute);
     4. graceful degradation keeps the slowdown bounded
        (cycles <= FAULT_SLOWDOWN_BOUND x the fault-free run, even at a
        50% fault rate).

   A second run at rate 0.2 with the same seed must reproduce the
   cycle count exactly (the injection schedule is PRNG-driven, not
   wall-clock-driven).  Every run is recorded, so BENCH_faults.json
   gates the fault-path timing across PRs. *)

let fault_slowdown_bound = 8

let faults_section () =
  header "Faults: retry/backoff and graceful degradation (pc-list, 50% local)";
  let src = W.Pointer_chase.source ~variant:"list" ~scale:16384 ~passes:2 in
  let compiled = P.compile_source src in
  let wss = wss_of compiled in
  let local = wss / 2 in
  let remot = local / 4 in
  let cfg_at rate =
    let base = cards_cfg ~k:1.0 ~local ~remot () in
    { base with
      R.Runtime.fabric_config =
        { base.R.Runtime.fabric_config with
          Cards_net.Fabric.faults =
            { Cards_net.Fabric.no_faults with
              Cards_net.Fabric.fault_rate = rate; fault_seed = 7 } } }
  in
  let run_at rate = P.run compiled (cfg_at rate) in
  let base_res, base_rt = run_at 0.0 in
  record_experiment ~tag:"faults-pc-list-r0" ~cycles:base_res.cycles base_rt;
  let t =
    T.create
      ~title:(Printf.sprintf
                "pc-list, seed 7 — fault-free run %s Mc (bound %dx)"
                (mcycles base_res.cycles) fault_slowdown_bound)
      ~header:[ "fault rate"; "Mcycles"; "vs clean"; "injected"; "retries";
                "timeouts"; "escalations"; "retry stall"; "degrade steps" ]
  in
  List.iter
    (fun (tag, rate) ->
      let res, rt = run_at rate in
      (* 1. Faults never corrupt data: only completion times move. *)
      if res.output <> base_res.output then begin
        Printf.eprintf "FAULTS: outputs diverge at rate %.2f\n" rate;
        exit 1
      end;
      let prof = R.Runtime.profile rt in
      let attr = R.Runtime.attribution rt in
      (* 2. Profiler exactness survives retries and backoff waits. *)
      if O.Profile.attributed prof <> res.cycles then begin
        Printf.eprintf "FAULTS: profile attributed %d <> cycles %d at rate %.2f\n"
          (O.Profile.attributed prof) res.cycles rate;
        exit 1
      end;
      (* 3. Ledger exactness, with the retry cost visible as Retry. *)
      let stall = res.cycles - O.Profile.compute prof in
      if O.Attribution.total attr <> stall then begin
        Printf.eprintf "FAULTS: ledger total %d <> stall %d at rate %.2f\n"
          (O.Attribution.total attr) stall rate;
        exit 1
      end;
      let retry_stall =
        List.fold_left
          (fun acc (c, v) -> if c = O.Attribution.Retry then acc + v else acc)
          0 (O.Attribution.cause_totals attr)
      in
      if rate > 0.0 && retry_stall = 0 then begin
        Printf.eprintf "FAULTS: no Retry stall charged at rate %.2f\n" rate;
        exit 1
      end;
      (* 4. Degradation keeps the fault tax bounded. *)
      if res.cycles > fault_slowdown_bound * base_res.cycles then begin
        Printf.eprintf "FAULTS: %d cycles > %dx fault-free %d at rate %.2f\n"
          res.cycles fault_slowdown_bound base_res.cycles rate;
        exit 1
      end;
      record_experiment ~tag ~cycles:res.cycles rt;
      let fs : Cards_net.Fabric.stats = R.Runtime.fabric_stats rt in
      let s = R.Runtime.stats rt in
      T.add_row t
        [ Printf.sprintf "%.2f" rate; mcycles res.cycles;
          Printf.sprintf "%.2fx"
            (float_of_int res.cycles /. float_of_int base_res.cycles);
          string_of_int (Cards_net.Fabric.faults_injected fs);
          string_of_int (R.Rt_stats.retries s);
          string_of_int (R.Rt_stats.timeouts s);
          string_of_int (R.Rt_stats.escalations s);
          mcycles retry_stall ^ " Mc";
          Printf.sprintf "%d/%d" (R.Rt_stats.degrade_steps s)
            (R.Rt_stats.recover_steps s) ])
    [ ("faults-pc-list-r5", 0.05); ("faults-pc-list-r20", 0.2);
      ("faults-pc-list-r50", 0.5) ];
  T.print t;
  (* Same seed, same schedule: the whole fault path is deterministic. *)
  let again, _ = run_at 0.2 in
  let once =
    List.find_map
      (fun e ->
        match e with
        | J.Obj fields
          when List.assoc_opt "tag" fields = Some (J.Str "faults-pc-list-r20")
          -> (match List.assoc_opt "cycles" fields with
              | Some (J.Int c) -> Some c
              | _ -> None)
        | _ -> None)
      !experiments
  in
  (match once with
   | Some c when c <> again.cycles ->
     Printf.eprintf "FAULTS: rate 0.2 not deterministic (%d then %d)\n" c
       again.cycles;
     exit 1
   | Some _ -> ()
   | None ->
     Printf.eprintf "FAULTS: determinism check lost its first run\n";
     exit 1);
  print_endline
    "Outputs bit-identical to the fault-free run at every rate; the\n\
     profiler and stall ledger stay exact (Retry bucket included); the\n\
     slowdown bound and same-seed determinism are hard assertions."

(* ---------------------------------------------------------------- *)
(* Spans: causal tracing reconciliation + critical path.            *)
(* ---------------------------------------------------------------- *)

(* The causal-tracing suite: the fig9 list chase (clean and at a 20%
   fault rate) and the fig8 analytics workload, each run twice — bare,
   then with span recording at rate 1.0.  Hard assertions per cell —

     1. recording is read-only: the traced run's whole result record,
        aggregate stats and ledger cause totals are bit-identical to
        the bare run's;
     2. the span graph is well formed (unique ids, parent edges
        strictly backwards — the acyclicity the critical-path pass
        needs);
     3. reconciliation at rate 1.0 is exact: summing each phase over
        the recorded spans reproduces the stall ledger's Proto / Wire /
        per-QP Queue / Pf_wait / Retry / Trap totals to the cycle;
     4. the critical path is non-trivial: the analyzer finds a chain
        with nonzero stall.

   Both the run's cycles and its critical-path length enter the JSON
   snapshot, so BENCH_spans.json gates them across PRs. *)

let spans_section () =
  header "Spans: causal tracing, ledger reconciliation, critical path";
  let t =
    T.create
      ~title:"span recording at rate 1.0 (bare run vs traced run identical)"
      ~header:[ "workload"; "Mcycles"; "spans"; "chain spans"; "chain stall";
                "dominant phase" ]
  in
  let run_one tag compiled cfg =
    let bare_res, bare_rt = P.run compiled cfg in
    let obs = O.Sink.create ~span_rate:1.0 () in
    let res, rt = P.run ~obs compiled cfg in
    (* 1. Tracing never writes the clock or the program. *)
    if res <> bare_res then begin
      Printf.eprintf "SPANS: traced run diverges from bare run on %s\n" tag;
      exit 1
    end;
    if R.Runtime.stats rt <> R.Runtime.stats bare_rt then begin
      Printf.eprintf "SPANS: traced stats diverge from bare stats on %s\n" tag;
      exit 1
    end;
    let attr = R.Runtime.attribution rt in
    if
      O.Attribution.cause_totals attr
      <> O.Attribution.cause_totals (R.Runtime.attribution bare_rt)
    then begin
      Printf.eprintf "SPANS: traced ledger diverges from bare ledger on %s\n"
        tag;
      exit 1
    end;
    let col =
      match O.Sink.spans obs with
      | Some c -> c
      | None ->
        Printf.eprintf "SPANS: sink built without a collector on %s\n" tag;
        exit 1
    in
    (* 2. Acyclicity and id discipline. *)
    if not (O.Span.well_formed col) then begin
      Printf.eprintf "SPANS: span graph not well formed on %s\n" tag;
      exit 1
    end;
    (* 3. Exact reconciliation against the stall ledger at rate 1.0. *)
    let tot = O.Span.cpu_totals col in
    let ledger cause =
      List.fold_left
        (fun acc (c, v) -> if c = cause then acc + v else acc)
        0 (O.Attribution.cause_totals attr)
    in
    let check what spans ledger_v =
      if spans <> ledger_v then begin
        Printf.eprintf "SPANS: %s: span %s %d <> ledger %d\n" tag what spans
          ledger_v;
        exit 1
      end
    in
    check "proto" tot.O.Span.tot_proto (ledger O.Attribution.Proto);
    check "wire" tot.O.Span.tot_wire (ledger O.Attribution.Wire);
    check "retry" tot.O.Span.tot_retry (ledger O.Attribution.Retry);
    check "pf_wait" tot.O.Span.tot_pf_wait (ledger O.Attribution.Pf_wait);
    check "trap" tot.O.Span.tot_trap (ledger O.Attribution.Trap);
    Array.iteri
      (fun qp v ->
        check (Printf.sprintf "queue[%d]" qp) v (ledger (O.Attribution.Queue qp)))
      tot.O.Span.tot_queue;
    List.iter
      (fun (c, v) ->
        match c with
        | O.Attribution.Queue qp when qp >= Array.length tot.O.Span.tot_queue ->
          check (Printf.sprintf "queue[%d]" qp) 0 v
        | _ -> ())
      (O.Attribution.cause_totals attr);
    (* 4. The analyzer finds a real chain at bench scale. *)
    let rep =
      match O.Critical_path.analyze col with
      | Some r when r.O.Critical_path.r_chain_stall > 0 -> r
      | Some _ ->
        Printf.eprintf "SPANS: critical path has zero stall on %s\n" tag;
        exit 1
      | None ->
        Printf.eprintf "SPANS: no spans recorded on %s\n" tag;
        exit 1
    in
    record_experiment ~tag ~cycles:res.cycles rt;
    record_experiment ~tag:(tag ^ "-critical-path")
      ~cycles:rep.O.Critical_path.r_chain_stall rt;
    let ph = rep.O.Critical_path.r_phases in
    let dominant =
      List.fold_left
        (fun (bn, bv) (n, v) -> if v > bv then (n, v) else (bn, bv))
        ("-", 0)
        [ ("queued", ph.O.Critical_path.cp_queued);
          ("proto", ph.O.Critical_path.cp_proto);
          ("wire", ph.O.Critical_path.cp_wire);
          ("retry", ph.O.Critical_path.cp_retry);
          ("pf-wait", ph.O.Critical_path.cp_pf_wait);
          ("trap", ph.O.Critical_path.cp_trap) ]
      |> fst
    in
    T.add_row t
      [ tag; mcycles res.cycles; string_of_int (O.Span.length col);
        string_of_int (List.length rep.O.Critical_path.r_chain);
        T.fmt_cycles (float_of_int rep.O.Critical_path.r_chain_stall);
        dominant ]
  in
  let pc =
    P.compile_source (W.Pointer_chase.source ~variant:"list" ~scale:16384 ~passes:2)
  in
  let wss = wss_of pc in
  let local = wss / 2 in
  let remot = local / 4 in
  run_one "spans-pc-list" pc (cards_cfg ~k:1.0 ~local ~remot ());
  let faulty =
    let base = cards_cfg ~k:1.0 ~local ~remot () in
    { base with
      R.Runtime.fabric_config =
        { base.R.Runtime.fabric_config with
          Cards_net.Fabric.faults =
            { Cards_net.Fabric.no_faults with
              Cards_net.Fabric.fault_rate = 0.2; fault_seed = 7 } } }
  in
  run_one "spans-pc-list-r20" pc faulty;
  let analytics =
    P.compile_source (W.Analytics.source ~trips:50000 ~query_passes:2)
  in
  let wss = wss_of analytics in
  let remot = kb 256 in
  let local = (wss / 2) + remot in
  run_one "spans-analytics" analytics
    (cards_cfg ~policy:R.Policy.Max_use ~k:1.0 ~local ~remot ());
  T.print t;
  print_endline
    "Tracing is read-only (traced runs bit-identical to bare runs); at\n\
     rate 1.0 every span phase reconciles with the stall ledger to the\n\
     cycle; the critical-path chain is non-empty.  All hard assertions."

(* ---------------------------------------------------------------- *)
(* Ablations: which CaRDS mechanism buys what.                      *)
(* ---------------------------------------------------------------- *)

let ablations () =
  header "Ablations: guard elimination, code versioning, prefetch classes";
  let src = W.Listing1.source ~elems:65536 ~ntimes:8 in
  let wss = 2 * 65536 * 8 in
  let remot = wss / 8 in
  let local = wss + remot in
  let variants =
    [ ("full CaRDS", P.cards_options, R.Runtime.Pf_per_class);
      ("guard elim at TrackFM level",
       { P.cards_options with
         guard_elim_level = Cards_transform.Guard_elim.Ltrackfm },
       R.Runtime.Pf_per_class);
      ("no code versioning",
       { P.cards_options with versioning = false },
       R.Runtime.Pf_per_class);
      ("no prefetching", P.cards_options, R.Runtime.Pf_none);
      ("stride-only prefetching", P.cards_options, R.Runtime.Pf_stride_only) ]
  in
  let t =
    T.create ~title:"Listing 1 (all structures pinned, k = 1.0)"
      ~header:[ "configuration"; "Mcycles"; "static guards"; "vs full" ]
  in
  let full = ref 0 in
  List.iter
    (fun (name, options, pf) ->
      let compiled = P.compile_source ~options src in
      let cfg =
        { (cards_cfg ~k:1.0 ~local ~remot ()) with prefetch_mode = pf }
      in
      let c = run_cycles compiled cfg in
      if !full = 0 then full := c;
      T.add_row t
        [ name; mcycles c; string_of_int compiled.static_guards;
          fx (float_of_int c /. float_of_int !full) ])
    variants;
  T.print t;
  (* Prefetch-class ablation on the chase suite under pressure. *)
  let t2 =
    T.create ~title:"Pointer-chase list (50% local): prefetch mode ablation"
      ~header:[ "prefetch mode"; "Mcycles"; "vs per-class" ]
  in
  (* Several passes: the adaptive mode pays an exploration cost on the
     early traversals and needs a few to converge back to the jump
     prefetcher. *)
  let src = W.Pointer_chase.source ~variant:"list" ~scale:8192 ~passes:6 in
  let compiled = P.compile_source src in
  let wss = wss_of compiled in
  let local = wss / 2 in
  let remot = local / 4 in
  let base = ref 0 in
  List.iter
    (fun (name, pf) ->
      let cfg = { (cards_cfg ~k:1.0 ~local ~remot ()) with prefetch_mode = pf } in
      let c = run_cycles compiled cfg in
      if !base = 0 then base := c;
      T.add_row t2 [ name; mcycles c; fx (float_of_int c /. float_of_int !base) ])
    [ ("per-class (jump)", R.Runtime.Pf_per_class);
      ("adaptive", R.Runtime.Pf_adaptive);
      ("stride-only", R.Runtime.Pf_stride_only);
      ("none", R.Runtime.Pf_none) ];
  T.print t2;
  print_endline
    "Adaptive pays an exploration cost when the compiler's class was\n\
     already right (jump for a list); its value shows when the class is\n\
     wrong:";
  (* A structure whose only strided accesses are its initialization —
     the hot phase is random gather, so the compile-time [stride] class
     is wrong at runtime and issues useless traffic. *)
  let misclassified =
    {|
int N = 65536;
int PASSES = 6;
int rng_state = 5577;
int rnd(int bound) {
  rng_state = rng_state * 2862933555777941757 + 3037000493;
  int x = rng_state / 65536;
  if (x < 0) { x = 0 - x; }
  return x % bound;
}
void main() {
  double *a = malloc(N * 8);
  int *idx = malloc(N * 8);
  for (int i = 0; i < N; i = i + 1) {
    a[i] = 1.0 * i;
    idx[i] = rnd(N);
  }
  double s = 0.0;
  for (int p = 0; p < PASSES; p = p + 1) {
    for (int i = 0; i < N; i = i + 1) {
      s = s + a[idx[i]];
    }
  }
  print_float(s);
}
|}
  in
  let compiled = P.compile_source misclassified in
  let wss = wss_of compiled in
  let local = wss / 3 in
  let remot = local * 3 / 4 in
  let t3 =
    T.create
      ~title:"Random gather over a stride-classified array (33% local)"
      ~header:[ "prefetch mode"; "Mcycles"; "vs per-class" ]
  in
  let base = ref 0 in
  List.iter
    (fun (name, pf) ->
      let cfg =
        { (cards_cfg ~policy:R.Policy.All_remotable ~k:0.0 ~local ~remot ())
          with prefetch_mode = pf }
      in
      let c = run_cycles compiled cfg in
      if !base = 0 then base := c;
      T.add_row t3 [ name; mcycles c; fx (float_of_int c /. float_of_int !base) ])
    [ ("per-class (stride)", R.Runtime.Pf_per_class);
      ("adaptive", R.Runtime.Pf_adaptive);
      ("none", R.Runtime.Pf_none) ];
  T.print t3

(* ---------------------------------------------------------------- *)
(* Bechamel: wall-clock microbenchmarks of the runtime primitives.  *)
(* ---------------------------------------------------------------- *)

let bechamel () =
  header "Bechamel: wall-clock cost of runtime primitives (host CPU)";
  let open Bechamel in
  let open Toolkit in
  let info = R.Static_info.default ~sid:0 in
  let rt =
    R.Runtime.create
      { R.Runtime.default_config with
        policy = R.Policy.All_remotable; k = 0.0;
        local_bytes = kb 1024; remotable_bytes = kb 512;
        prefetch_mode = R.Runtime.Pf_none }
      [| info |]
  in
  let h = R.Runtime.ds_init rt ~sid:0 in
  let a = R.Runtime.ds_alloc rt ~handle:h ~size:4096 in
  R.Runtime.guard rt ~write:false a;
  (* A second handle created 64 ds_init calls later lands in the same
     slot of the 64-entry direct-mapped translation cache, so
     alternating reads between the two evict each other: the conflict
     row prices the fast path when every probe misses the cache and
     refills it, against the hit row's single-probe cost and the
     canonical path it would otherwise fall back to. *)
  for _ = 1 to 63 do
    ignore (R.Runtime.ds_init rt ~sid:0)
  done;
  let h2 = R.Runtime.ds_init rt ~sid:0 in
  let a2 = R.Runtime.ds_alloc rt ~handle:h2 ~size:4096 in
  R.Runtime.guard rt ~write:false a2;
  let flip = ref false in
  let tests =
    [ Test.make ~name:"addr_encode_decode" (Staged.stage (fun () ->
          let x = R.Addr.encode ~ds:3 ~offset:512 in
          ignore (R.Addr.ds_of x + R.Addr.offset_of x)));
      Test.make ~name:"guard_hit_path" (Staged.stage (fun () ->
          R.Runtime.guard rt ~write:false a));
      Test.make ~name:"heap_read_i64" (Staged.stage (fun () ->
          ignore (R.Runtime.read_i64 rt a)));
      Test.make ~name:"read_i64_fast_tc_hit" (Staged.stage (fun () ->
          ignore (R.Runtime.read_i64_fast rt a)));
      Test.make ~name:"read_i64_fast_tc_conflict" (Staged.stage (fun () ->
          flip := not !flip;
          ignore (R.Runtime.read_i64_fast rt (if !flip then a else a2))));
      Test.make ~name:"custody_check_unmanaged" (Staged.stage (fun () ->
          R.Runtime.guard rt ~write:false 64)) ]
  in
  let t =
    T.create ~title:"OLS time per call (nanoseconds, host wall clock)"
      ~header:[ "primitive"; "ns/call" ]
  in
  List.iter
    (fun test ->
      let instances = Instance.[ monotonic_clock ] in
      let cfg =
        Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
      in
      let raw = Benchmark.all cfg instances test in
      let results =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false
             ~predictors:[| Measure.run |])
          Instance.monotonic_clock raw
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some (est :: _) -> T.add_row t [ name; Printf.sprintf "%.1f" est ]
          | Some [] | None -> T.add_row t [ name; "n/a" ])
        results)
    tests;
  T.print t

(* ---------------------------------------------------------------- *)
(* Host: pre-decoded engine vs reference interpreter.               *)
(* ---------------------------------------------------------------- *)

module M = Cards_interp.Machine

(* Compute-bound and all-local, so host time measures engine dispatch
   rather than the simulated memory system: the reference
   tree-walker's per-instruction pattern matches against the decoded
   engine's one indirect call per pre-specialized closure.  Cheap ops
   only — a hardware divide costs both engines the same and would
   dilute the dispatch ratio under test. *)
let host_arith_src =
  {|void main() {
      int acc = 0;
      int x = 1;
      for (int i = 0; i < 2000000; i = i + 1) {
        x = x * 31 + i;
        if (x < 0) { x = 1 - x; }
        acc = acc + x;
      }
      print_int(acc % 1000007);
    }|}

(* One warmup run, then best of three: wall-clock noise only ever
   slows a run down, so the minimum is the stable estimate. *)
let time_engine compiled engine =
  ignore (B.Noguard.run ~engine compiled);
  let best = ref infinity in
  let last = ref None in
  for _ = 1 to 3 do
    let t0 = Sys.time () in
    let res, rt = B.Noguard.run ~engine compiled in
    let dt = Sys.time () -. t0 in
    if dt < !best then best := dt;
    last := Some (res, rt)
  done;
  let res, rt = Option.get !last in
  (res, rt, !best)

let host () =
  header "Host: pre-decoded engine vs reference interpreter (wall clock)";
  let compiled = P.compile_source host_arith_src in
  let res_r, _, t_ref = time_engine compiled M.Reference in
  let res_d, rt_d, t_dec = time_engine compiled M.Decoded in
  (* Identity first: a throughput ratio between two engines only means
     something if they are the same machine. *)
  if
    res_r.M.output <> res_d.M.output
    || res_r.M.cycles <> res_d.M.cycles
    || res_r.M.instructions <> res_d.M.instructions
  then begin
    Printf.eprintf "HOST: engines diverge on the arithmetic workload\n";
    exit 1
  end;
  let ips res dt = float_of_int res.M.instructions /. Float.max dt 1e-9 in
  (* A wall-clock ratio on a shared host drifts with CPU frequency;
     right at the threshold that reads as flakiness, not regression.
     Re-measure before declaring failure: the claim is that the
     decoded engine CAN sustain 2x here, asserted only if every
     attempt stays below the bar. *)
  let rec settle t_ref t_dec attempt =
    if ips res_d t_dec /. ips res_r t_ref >= 2.0 || attempt >= 3 then
      (t_ref, t_dec)
    else begin
      let _, _, t_ref = time_engine compiled M.Reference in
      let _, _, t_dec = time_engine compiled M.Decoded in
      settle t_ref t_dec (attempt + 1)
    end
  in
  let t_ref, t_dec = settle t_ref t_dec 1 in
  let ref_ips = ips res_r t_ref and dec_ips = ips res_d t_dec in
  let ratio = dec_ips /. ref_ips in
  let t =
    T.create
      ~title:"engine throughput, instructions per host second (best of 3)"
      ~header:[ "engine"; "instrs/sec"; "speedup" ]
  in
  T.add_row t
    [ "reference"; Printf.sprintf "%.1fM" (ref_ips /. 1e6); fx 1.0 ];
  T.add_row t [ "decoded"; Printf.sprintf "%.1fM" (dec_ips /. 1e6); fx ratio ];
  T.print t;
  (* Only the deterministic simulated cycles enter the JSON snapshot;
     the wall-clock ratio is asserted here, not gated there. *)
  record_experiment ~tag:"host-arith" ~cycles:res_d.M.cycles rt_d;
  (* Guard-heavy identity under the full CaRDS runtime: the fig9 list
     chase drives the translation-cache fast path hard, and both
     engines must agree on the whole result record. *)
  let pc =
    P.compile_source
      (W.Pointer_chase.source ~variant:"list" ~scale:1024 ~passes:2)
  in
  let cfg = cards_cfg ~k:1.0 ~local:(kb 16) ~remot:(kb 8) () in
  let dres, drt = P.run ~engine:M.Decoded pc cfg in
  let rres, _ = P.run ~engine:M.Reference pc cfg in
  if dres <> rres then begin
    Printf.eprintf
      "HOST: engines diverge on pc-list (decoded %d cycles, reference %d)\n"
      dres.M.cycles rres.M.cycles;
    exit 1
  end;
  record_experiment ~tag:"host-pc-list" ~cycles:dres.M.cycles drt;
  if ratio < 2.0 then begin
    Printf.eprintf
      "HOST: decoded engine speedup %.2fx below the required 2.00x\n" ratio;
    exit 1
  end;
  Printf.printf "decoded engine: %s over the reference, outputs identical\n"
    (fx ratio)

(* ---------------------------------------------------------------- *)
(* Layout: the factorization pass (hot/cold side pools, AoS->SoA).  *)
(* ---------------------------------------------------------------- *)

(* The layout-factorization suite: the fig9 shuffled list chase (whose
   56-byte nodes carry cold provenance fields) and the row-major
   analytics trip table (eleven columns fused into one 88-byte
   struct).  Policy is all-remotable with the cache well under the
   working set, so fetch traffic — not placement luck — decides the
   outcome.  Hard assertions per workload —

     1. outputs are bit-identical with and without --factorize;
     2. the factorized run fetches strictly fewer bytes AND finishes
        in strictly fewer cycles (the pass must pay for itself, index
        indirections included);
     3. per-structure fetched-bytes accounting is exact: the per-ds
        counters sum to the fabric's fetched_bytes on every run;
     4. the differential oracle holds on the transformed module: both
        engines produce identical whole result records, and outputs
        match the untransformed program, across qp {1,2,4} x batching
        on/off x fault rate {0, 0.2}.

   Both runs of each pair enter the JSON snapshot, so
   BENCH_layout.json gates the factorization win across PRs. *)

let layout_section () =
  header "Layout: compiler factorization (hot/cold side pools, AoS->SoA)";
  let read_file path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let fact_options = { P.cards_options with factorize = true } in
  let per_ds_sum rt =
    List.fold_left
      (fun acc (r : R.Runtime.ds_report) ->
        acc + r.r_stats.R.Rt_stats.fetched_bytes)
      0 (R.Runtime.report rt)
  in
  let t =
    T.create
      ~title:"all-remotable, cache < WSS — factorized must fetch and stall less"
      ~header:[ "workload"; "Mcycles"; "factorized"; "fetched"; "factorized";
                "byte win" ]
  in
  List.iter
    (fun (name, src, local, remot) ->
      let plain = P.compile_source src in
      let fact = P.compile_source ~options:fact_options src in
      let cfg =
        cards_cfg ~policy:R.Policy.All_remotable ~k:0.0 ~local ~remot ()
      in
      let pres, prt = P.run plain cfg in
      let fres, frt = P.run fact cfg in
      (* 1. Layout changes are invisible to the program. *)
      if fres.M.output <> pres.M.output then begin
        Printf.eprintf "LAYOUT: outputs diverge under --factorize on %s\n" name;
        exit 1
      end;
      let pb = (R.Runtime.fabric_stats prt).Cards_net.Fabric.fetched_bytes in
      let fb = (R.Runtime.fabric_stats frt).Cards_net.Fabric.fetched_bytes in
      (* 2. Strictly fewer bytes and strictly fewer cycles. *)
      if fb >= pb then begin
        Printf.eprintf "LAYOUT: fetched bytes did not shrink on %s (%d >= %d)\n"
          name fb pb;
        exit 1
      end;
      if fres.M.cycles >= pres.M.cycles then begin
        Printf.eprintf "LAYOUT: factorization did not pay on %s (%d >= %d)\n"
          name fres.M.cycles pres.M.cycles;
        exit 1
      end;
      (* 3. The per-structure mirror of the fabric's byte counter is
         exact on both runs. *)
      if per_ds_sum prt <> pb || per_ds_sum frt <> fb then begin
        Printf.eprintf
          "LAYOUT: per-ds fetched bytes (%d / %d) do not sum to the fabric's \
           (%d / %d) on %s\n"
          (per_ds_sum prt) (per_ds_sum frt) pb fb name;
        exit 1
      end;
      record_experiment ~tag:("layout-" ^ name ^ "-plain") ~cycles:pres.M.cycles
        prt;
      record_experiment ~tag:("layout-" ^ name ^ "-fact") ~cycles:fres.M.cycles
        frt;
      (* 4. Differential oracle on the transformed module. *)
      List.iter
        (fun qp ->
          List.iter
            (fun batching ->
              List.iter
                (fun rate ->
                  let dcfg =
                    { cfg with
                      R.Runtime.batching;
                      fabric_config =
                        { cfg.R.Runtime.fabric_config with
                          Cards_net.Fabric.qp_count = qp;
                          faults =
                            { Cards_net.Fabric.no_faults with
                              Cards_net.Fabric.fault_rate = rate;
                              fault_seed = 11 } } }
                  in
                  let d, _ = P.run ~engine:M.Decoded fact dcfg in
                  let r, _ = P.run ~engine:M.Reference fact dcfg in
                  if d <> r then begin
                    Printf.eprintf
                      "LAYOUT: engines diverge on %s (qp %d, batching %b, \
                       rate %.1f)\n"
                      name qp batching rate;
                    exit 1
                  end;
                  if d.M.output <> pres.M.output then begin
                    Printf.eprintf
                      "LAYOUT: factorized output diverges on %s (qp %d, \
                       batching %b, rate %.1f)\n"
                      name qp batching rate;
                    exit 1
                  end)
                [ 0.0; 0.2 ])
            [ true; false ])
        [ 1; 2; 4 ];
      T.add_row t
        [ name; mcycles pres.M.cycles; mcycles fres.M.cycles;
          T.fmt_bytes (float_of_int pb); T.fmt_bytes (float_of_int fb);
          fx (float_of_int pb /. float_of_int fb) ])
    [ ("fig9-list", read_file "examples/minic/fig9_list.mc", kb 1024, kb 768);
      ("analytics-aos", W.Analytics.source_aos ~trips:20000 ~query_passes:2,
       kb 2048, kb 1024) ];
  T.print t;
  print_endline
    "Hot/cold splitting shrinks the chased node to its hot half; the\n\
     AoS table becomes columns.  Byte and cycle reductions, exact\n\
     per-structure byte accounting, and the engine x qp x batching x\n\
     fault-rate differential matrix are all hard assertions."

(* ---------------------------------------------------------------- *)
(* What-if: virtual speedups over the span graph, each prediction    *)
(* validated by deterministically re-executing the program with the  *)
(* corresponding runtime knob actually changed.                      *)
(* ---------------------------------------------------------------- *)

(* Hard assertions per workload x scenario —

     1. the identity scenario (all factors x1.0) predicts the measured
        run to the cycle, and its predicted chain stall equals the
        critical-path analyzer's — the replay is anchored, not fitted;
     2. every re-executed scenario's program output is bit-identical
        to the baseline's (what-if knobs perturb timing only), and the
        identity re-run reproduces the whole result record exactly;
     3. directional agreement: when the replay predicts a scenario
        saves more than 1% it must actually measure faster;
     4. the prediction lands within WHATIF_REL_ERROR of the measured
        re-run.

   Both measured and predicted cycles of every scenario enter the JSON
   snapshot, so BENCH_whatif.json gates the predictor itself — not
   just the runs — across PRs. *)

let whatif_rel_error = 0.15

let whatif_section () =
  header "What-if: virtual speedups (span-graph replay vs re-execution)";
  let read_file path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let fail fmt = Printf.ksprintf (fun m -> Printf.eprintf "WHATIF: %s\n" m; exit 1) fmt in
  let run_one wl compiled cfg =
    let obs = O.Sink.create ~span_rate:1.0 () in
    let res, rt = P.run ~obs compiled cfg in
    let col =
      match O.Sink.spans obs with
      | Some c -> c
      | None -> fail "sink built without a collector on %s" wl
    in
    let names = R.Runtime.ds_name rt in
    let ranked =
      O.Whatif.rank ~total:res.M.cycles col (O.Whatif.catalog ~names col)
    in
    (* 1. Identity exactness: prediction and critical path to the cycle. *)
    let ident =
      match
        List.find_opt
          (fun (p : O.Whatif.prediction) ->
            p.p_scenario.O.Whatif.sc_id = "identity")
          ranked
      with
      | Some p -> p
      | None -> fail "catalog lost the identity scenario on %s" wl
    in
    if ident.O.Whatif.p_cycles <> res.M.cycles then
      fail "identity predicts %d <> measured %d on %s" ident.O.Whatif.p_cycles
        res.M.cycles wl;
    (match O.Critical_path.analyze col with
     | Some r ->
       if ident.O.Whatif.p_chain_stall <> r.O.Critical_path.r_chain_stall then
         fail "identity chain stall %d <> critical path %d on %s"
           ident.O.Whatif.p_chain_stall r.O.Critical_path.r_chain_stall wl
     | None -> fail "no spans recorded on %s" wl);
    record_experiment ~tag:("whatif-" ^ wl ^ "-baseline") ~cycles:res.M.cycles
      rt;
    let rows =
      List.map
        (fun (p : O.Whatif.prediction) ->
          let sc = p.p_scenario in
          let measured =
            match R.Runtime.whatif_config cfg sc.O.Whatif.sc_exec with
            | None -> None
            | Some cfg' ->
              let res', rt' = P.run compiled cfg' in
              (* 2. Timing-only perturbation; identity fully identical. *)
              if res'.M.output <> res.M.output then
                fail "%s/%s: perturbed run diverged in output" wl
                  sc.O.Whatif.sc_id;
              if sc.O.Whatif.sc_id = "identity" && res' <> res then
                fail "%s: identity re-run not bit-identical (%d vs %d cycles)"
                  wl res'.M.cycles res.M.cycles;
              (* 3. Directional agreement (1% guard band). *)
              if
                float_of_int p.p_cycles < 0.99 *. float_of_int res.M.cycles
                && res'.M.cycles >= res.M.cycles
              then
                fail "%s/%s: predicted %d < baseline %d but measured %d is \
                      not faster"
                  wl sc.O.Whatif.sc_id p.p_cycles res.M.cycles res'.M.cycles;
              (* 4. Error bound. *)
              let err =
                if res'.M.cycles = 0 then 0.0
                else
                  abs_float (float_of_int (p.p_cycles - res'.M.cycles))
                  /. float_of_int res'.M.cycles
              in
              if err > whatif_rel_error then
                fail "%s/%s: predicted %d vs measured %d (%.1f%% > %.0f%%)" wl
                  sc.O.Whatif.sc_id p.p_cycles res'.M.cycles (100.0 *. err)
                  (100.0 *. whatif_rel_error);
              record_experiment
                ~tag:("whatif-" ^ wl ^ "-" ^ sc.O.Whatif.sc_id)
                ~cycles:res'.M.cycles rt';
              record_experiment
                ~tag:("whatif-" ^ wl ^ "-" ^ sc.O.Whatif.sc_id ^ "-pred")
                ~cycles:p.p_cycles rt';
              Some res'.M.cycles
          in
          (p, measured))
        ranked
    in
    T.print
      (O.Export.whatif_table
         ~title:(wl ^ ": what should we optimize next? (predicted vs measured)")
         rows)
  in
  (* The layout suite's fig9 list chase: all-remotable, cache < WSS. *)
  let fig9 = P.compile_source (read_file "examples/minic/fig9_list.mc") in
  run_one "fig9-list" fig9
    (cards_cfg ~policy:R.Policy.All_remotable ~k:0.0 ~local:(kb 1024)
       ~remot:(kb 768) ());
  (* The spans suite's analytics workload at 50% local. *)
  let analytics =
    P.compile_source (W.Analytics.source ~trips:50000 ~query_passes:2)
  in
  let wss = wss_of analytics in
  let remot = kb 256 in
  let local = (wss / 2) + remot in
  run_one "analytics" analytics
    (cards_cfg ~policy:R.Policy.Max_use ~k:1.0 ~local ~remot ());
  print_endline
    "The identity scenario reproduces the measured run and the critical\n\
     path to the cycle; every other scenario is re-executed for real \n\
     with bit-identical outputs, directional agreement, and predictions\n\
     within the error bound.  All hard assertions."

(* ---------------------------------------------------------------- *)
(* Serving: DRR fairness and fault isolation (the serving layer's    *)
(* headline claim).  Hard assertions —                               *)
(*   - exact decomposition: total = idle + busy, busy = sum of per-  *)
(*     tenant service cycles, sum of per-tenant fetched bytes =      *)
(*     aggregate fabric counter, DRR credit conserved;               *)
(*   - same-seed determinism: two fault-free runs bit-identical      *)
(*     (outputs, records, cycles, latency histograms);               *)
(*   - fault isolation: with tenant 1 faulty at 20%, every healthy   *)
(*     tenant's p99 stays within 1.5x its fault-free p99 while the   *)
(*     faulty tenant's service cycles strictly grow and its runtime  *)
(*     ends degraded;                                                *)
(*   - per-tenant outputs invariant under faults (timing-only).     *)
(* The gate then diffs per-tenant service cycles, p99 latencies and  *)
(* fabric counters against BENCH_serve.json.                         *)
(* ---------------------------------------------------------------- *)

let serve_section () =
  header "Serving: DRR fairness and fault isolation (4-tenant Zipf mix)";
  let module S = Cards_serve.Serve in
  let module St = Cards_util.Stats in
  let module F = Cards_net.Fabric in
  let fail fmt =
    Printf.ksprintf (fun m -> Printf.eprintf "SERVE: %s\n" m; exit 1) fmt
  in
  let n = 4 and seed = 7 and requests = 120 and base_gap = 40_000.0 in
  let faulty_tenant = 1 and fault_rate = 0.20 in
  let cfg = S.default_config in
  let run_mix ?faulty () =
    S.run cfg (S.zipf_mix ?faulty ~n ~seed ~requests ~base_gap ())
  in
  let p99 (tr : S.tenant_result) = St.percentile tr.S.tr_latency 99.0 in
  let check_exact tag (r : S.result) =
    let busy =
      Array.fold_left (fun acc tr -> acc + tr.S.tr_service_cycles) 0 r.S.tenants
    in
    if r.S.busy_cycles <> busy then
      fail "%s: busy %d <> sum of service cycles %d" tag r.S.busy_cycles busy;
    if r.S.total_cycles <> r.S.busy_cycles + r.S.idle_cycles then
      fail "%s: clock %d <> busy %d + idle %d" tag r.S.total_cycles
        r.S.busy_cycles r.S.idle_cycles;
    let bytes =
      Array.fold_left
        (fun acc tr -> acc + tr.S.tr_fabric.F.fetched_bytes)
        0 r.S.tenants
    in
    if r.S.fabric.F.fetched_bytes <> bytes then
      fail "%s: aggregate fetched bytes %d <> per-tenant sum %d" tag
        r.S.fabric.F.fetched_bytes bytes;
    let deficits =
      Array.fold_left (fun acc tr -> acc + tr.S.tr_deficit_end) 0 r.S.tenants
    in
    if r.S.granted - r.S.charged - r.S.forfeited <> deficits then
      fail "%s: DRR credit leaked (%d granted - %d charged - %d forfeited <> \
            %d in deficit)"
        tag r.S.granted r.S.charged r.S.forfeited deficits
  in
  let a = run_mix () in
  let a2 = run_mix () in
  let b = run_mix ~faulty:(faulty_tenant, fault_rate) () in
  check_exact "fault-free" a;
  check_exact "faulty" b;
  (* Same-seed determinism, whole result records. *)
  Array.iteri
    (fun i (tr : S.tenant_result) ->
      let tr2 = a2.S.tenants.(i) in
      if
        tr.S.tr_output <> tr2.S.tr_output
        || tr.S.tr_records <> tr2.S.tr_records
        || tr.S.tr_service_cycles <> tr2.S.tr_service_cycles
        || tr.S.tr_latency <> tr2.S.tr_latency
        || tr.S.tr_fabric <> tr2.S.tr_fabric
      then fail "%s: same-seed rerun diverged" tr.S.tr_name)
    a.S.tenants;
  if a.S.total_cycles <> a2.S.total_cycles then
    fail "same-seed rerun moved the serving clock (%d vs %d)" a.S.total_cycles
      a2.S.total_cycles;
  (* Faults move timing, never results. *)
  Array.iteri
    (fun i (tr : S.tenant_result) ->
      let trb = b.S.tenants.(i) in
      if tr.S.tr_output <> trb.S.tr_output then
        fail "%s: output changed under a faulty tenant" tr.S.tr_name;
      if List.map (fun (rc : Cards_serve.Tenant.record) -> rc.ret)
           tr.S.tr_records
         <> List.map (fun (rc : Cards_serve.Tenant.record) -> rc.ret)
              trb.S.tr_records
      then fail "%s: return values changed under a faulty tenant" tr.S.tr_name)
    a.S.tenants;
  (* Fairness: healthy tails hold while the faulty tenant degrades. *)
  let t =
    T.create
      ~title:(Printf.sprintf
                "4-tenant Zipf mix, seed %d — tenant %d faulty at %.0f%%"
                seed faulty_tenant (100.0 *. fault_rate))
      ~header:[ "tenant"; "served"; "svc clean"; "svc faulty"; "p99 clean";
                "p99 faulty"; "p99 ratio"; "degrade" ]
  in
  Array.iteri
    (fun i (tra : S.tenant_result) ->
      let trb = b.S.tenants.(i) in
      let ratio = p99 trb /. p99 tra in
      if i <> faulty_tenant && ratio > 1.5 then
        fail "%s: healthy p99 blew past the 1.5x gate (%.3f)" tra.S.tr_name
          ratio;
      T.add_row t
        [ tra.S.tr_name; string_of_int tra.S.tr_served;
          mcycles tra.S.tr_service_cycles; mcycles trb.S.tr_service_cycles;
          mcycles (int_of_float (p99 tra)); mcycles (int_of_float (p99 trb));
          Printf.sprintf "%.3f" ratio; string_of_int trb.S.tr_degrade_level ])
    a.S.tenants;
  T.print t;
  let fa = a.S.tenants.(faulty_tenant) and fb = b.S.tenants.(faulty_tenant) in
  if fb.S.tr_service_cycles <= fa.S.tr_service_cycles then
    fail "faulty tenant did not pay for its faults (%d <= %d service cycles)"
      fb.S.tr_service_cycles fa.S.tr_service_cycles;
  if fb.S.tr_degrade_level < 1 then
    fail "faulty tenant never degraded (level %d)" fb.S.tr_degrade_level;
  if fb.S.tr_fabric.F.faults_transient + fb.S.tr_fabric.F.faults_late
     + fb.S.tr_fabric.F.faults_dup = 0
  then fail "fault injector never fired on the faulty tenant";
  print_newline ();
  T.print
    (O.Export.serve_latency_table
       ~title:"Per-tenant request latency (faulty run)"
       (Array.to_list
          (Array.map
             (fun (tr : S.tenant_result) ->
               (tr.S.tr_name, tr.S.tr_latency, tr.S.tr_served))
             b.S.tenants)));
  (* Record per-tenant experiments (service cycles + fabric) and p99
     pseudo-experiments for both runs; all deterministic. *)
  let record prefix (r : S.result) =
    Array.iter
      (fun (tr : S.tenant_result) ->
        experiments :=
          J.Obj
            [ ("tag", J.Str (prefix ^ "-" ^ tr.S.tr_name));
              ("cycles", J.Int tr.S.tr_service_cycles);
              ("fabric", fabric_json tr.S.tr_fabric) ]
          :: !experiments;
        experiments :=
          J.Obj
            [ ("tag", J.Str (prefix ^ "-" ^ tr.S.tr_name ^ "-p99"));
              ("cycles", J.Int (int_of_float (p99 tr)));
              ("fabric", fabric_json tr.S.tr_fabric) ]
          :: !experiments)
      r.S.tenants;
    experiments :=
      J.Obj
        [ ("tag", J.Str (prefix ^ "-total"));
          ("cycles", J.Int r.S.total_cycles);
          ("fabric", fabric_json r.S.fabric) ]
      :: !experiments
  in
  record "serve-clean" a;
  record "serve-faulty" b;
  Printf.printf
    "\n-- serving clock %s Mc (%s busy, %s idle), %d DRR rounds; every\n\
     \   decomposition, determinism and isolation check above is a hard\n\
     \   assertion; healthy p99 ratios gated at 1.5x.\n"
    (mcycles a.S.total_cycles) (mcycles a.S.busy_cycles)
    (mcycles a.S.idle_cycles) a.S.rounds

(* ---------- par: domain-parallel serving, same bits faster -------- *)

(* Wall clock, not CPU time: a 4-domain run burns ~4 CPU-seconds per
   wall-second, which is exactly the effect under test — [Sys.time]
   would report the parallel run as no faster (or slower). *)
let wall = Unix.gettimeofday

let par_section () =
  header "Par: parallel serving on OCaml 5 domains (deterministic virtual time)";
  let module S = Cards_serve.Serve in
  let module E = Cards_par.Engine in
  let module F = Cards_net.Fabric in
  let fail fmt =
    Printf.ksprintf (fun m -> Printf.eprintf "PAR: %s\n" m; exit 1) fmt
  in
  let n = 8 and seed = 11 and requests = 60 and gap = 30_000.0 in
  let cfg = S.default_config in
  (* Two mixes: the uniform kv mix is perfectly balanced across
     domains, so it is the wall-clock scaling specimen; the Zipf mix
     carries analytics tenants with real fabric traffic, so its cells
     exercise fetches, faults and the byte decompositions — which the
     all-local kv mix would satisfy vacuously. *)
  let specs ?faulty () = S.uniform_mix ?faulty ~n ~seed ~requests ~gap () in
  let zspecs ?faulty () =
    S.zipf_mix ?faulty ~n:4 ~seed:7 ~requests:60 ~base_gap:40_000.0 ()
  in
  (* Bit-identicality is checked on whole records — the structural
     compare covers every tenant ledger, output line, latency sample,
     fabric counter and the interference matrix at once; the per-tenant
     loop just names the first divergence usefully. *)
  let assert_identical tag (p : S.result) (q : S.result) =
    Array.iteri
      (fun i (tp : S.tenant_result) ->
        if tp <> q.S.tenants.(i) then
          fail "%s: tenant %s diverged from the sequential run" tag
            tp.S.tr_name)
      p.S.tenants;
    if p <> q then fail "%s: aggregate results diverged" tag
  in
  let seq = S.run cfg (specs ()) in
  let zseq = S.run cfg (zspecs ()) in
  (* Exactness of the sequential references themselves, so identical
     parallel runs inherit the same decompositions.  The byte check
     runs on the Zipf mix, whose analytics tenants actually fetch. *)
  let check_exact tag (r : S.result) =
    let busy =
      Array.fold_left (fun acc tr -> acc + tr.S.tr_service_cycles) 0 r.S.tenants
    in
    if r.S.busy_cycles <> busy then
      fail "%s: busy %d <> sum of service cycles %d" tag r.S.busy_cycles busy;
    if r.S.total_cycles <> r.S.busy_cycles + r.S.idle_cycles then
      fail "%s: clock %d <> busy + idle" tag r.S.total_cycles;
    let bytes =
      Array.fold_left
        (fun acc tr -> acc + tr.S.tr_fabric.F.fetched_bytes)
        0 r.S.tenants
    in
    if r.S.fabric.F.fetched_bytes <> bytes then
      fail "%s: aggregate fetched bytes %d <> per-tenant sum %d" tag
        r.S.fabric.F.fetched_bytes bytes
  in
  check_exact "seq uniform" seq;
  check_exact "seq zipf" zseq;
  if zseq.S.fabric.F.fetched_bytes = 0 then
    fail "zipf mix moved no bytes: the fabric cells below are vacuous";
  (* Every domain count, both mixes, a faulty-fabric cell, and a
     same-count rerun all produce the same bits. *)
  List.iter
    (fun domains ->
      assert_identical
        (Printf.sprintf "uniform d=%d" domains)
        (E.run ~domains cfg (specs ()))
        seq;
      assert_identical
        (Printf.sprintf "zipf d=%d" domains)
        (E.run ~domains cfg (zspecs ()))
        zseq)
    [ 1; 2; 4 ];
  let faulty = Some (1, 0.20) in
  let zseq_f = S.run cfg (zspecs ?faulty ()) in
  let injected (r : S.result) =
    r.S.fabric.F.faults_transient + r.S.fabric.F.faults_late
    + r.S.fabric.F.faults_dup
  in
  if injected zseq_f = 0 then
    fail "fault injector never fired: the faulty cell is vacuous";
  assert_identical "zipf faulty d=4"
    (E.run ~domains:4 cfg (zspecs ?faulty ()))
    zseq_f;
  assert_identical "par rerun d=4"
    (E.run ~domains:4 cfg (specs ()))
    (E.run ~domains:4 cfg (specs ()));
  (* Wall clock: one warmup, then best of three (noise only ever slows
     a run down).  The >=2.5x gate arms only where it is physically
     possible; on fewer than 4 cores the bits above are the contract
     and the measured ratio is reported, not asserted. *)
  let time_run domains =
    ignore (E.run ~domains cfg (specs ()));
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = wall () in
      ignore (E.run ~domains cfg (specs ()));
      best := Float.min !best (wall () -. t0)
    done;
    !best
  in
  let measure () =
    let t1 = time_run 1 in
    let t4 = time_run 4 in
    (t1, t4, t1 /. Float.max t4 1e-9)
  in
  let cores = Domain.recommended_domain_count () in
  (* Like the host engine gate: a shared host can dip below the bar on
     one sample; re-measure before declaring failure. *)
  let rec settle (t1, t4, speedup) attempt =
    if speedup >= 2.5 || attempt >= 3 || cores < 4 then (t1, t4, speedup)
    else settle (measure ()) (attempt + 1)
  in
  let t1, t4, speedup = settle (measure ()) 1 in
  let t =
    T.create ~title:"wall clock, 8-tenant uniform kv mix (best of 3)"
      ~header:[ "domains"; "seconds"; "speedup" ]
  in
  T.add_row t [ "1"; Printf.sprintf "%.3f" t1; fx 1.0 ];
  T.add_row t [ "4"; Printf.sprintf "%.3f" t4; fx speedup ];
  T.print t;
  if cores >= 4 then begin
    if speedup < 2.5 then
      fail "4-domain speedup %.2fx below the 2.5x gate (%d cores)" speedup
        cores
  end
  else
    Printf.printf
      "\n-- host reports %d core(s): the >=2.5x @ 4 domains wall-clock gate \
       needs >= 4;\n\
       \   asserting bit-identicality only (measured %.2fx).\n"
      cores speedup;
  (* Only deterministic numbers are gated: per-tenant service cycles and
     fabric counters from the (identical) runs.  The wall-clock entry
     carries no "cycles"/"fabric" fields, so the regression gate ignores
     it — it is a recorded observation, not a contract. *)
  let record prefix (r : S.result) =
    Array.iter
      (fun (tr : S.tenant_result) ->
        experiments :=
          J.Obj
            [ ("tag", J.Str (prefix ^ "-" ^ tr.S.tr_name));
              ("cycles", J.Int tr.S.tr_service_cycles);
              ("fabric", fabric_json tr.S.tr_fabric) ]
          :: !experiments)
      r.S.tenants;
    experiments :=
      J.Obj
        [ ("tag", J.Str (prefix ^ "-total"));
          ("cycles", J.Int r.S.total_cycles);
          ("fabric", fabric_json r.S.fabric) ]
      :: !experiments
  in
  record "par" seq;
  record "par-zipf" zseq;
  record "par-zipf-faulty" zseq_f;
  experiments :=
    J.Obj
      [ ("tag", J.Str "par-wallclock-info");
        ("cores", J.Int cores);
        ("speedup_milli", J.Int (int_of_float (speedup *. 1000.0)));
        ("gate_armed", J.Int (if cores >= 4 then 1 else 0)) ]
    :: !experiments;
  Printf.printf
    "\n-- all domain counts bit-identical to the sequential scheduler \
     (clean,\n\
     \   faulty, rerun); serving clock %s Mc either way.\n"
    (mcycles seq.S.total_cycles)

(* ---------------------------------------------------------------- *)

let sections =
  [ ("table1", table1); ("fig4", fig4); ("fig5", fig5); ("fig6", fig6);
    ("fig7", fig7); ("fig8", fig8); ("fig9", fig9);
    ("fabric", fabric_section); ("profile", profile_section);
    ("attr", attr_section); ("faults", faults_section);
    ("spans", spans_section); ("layout", layout_section);
    ("whatif", whatif_section); ("serve", serve_section);
    ("par", par_section);
    ("ablations", ablations);
    ("bechamel", bechamel); ("host", host) ]

let () =
  let rec strip acc = function
    | [] -> List.rev acc
    | "--json" :: path :: rest ->
      json_out := Some path;
      strip acc rest
    | "--json" :: [] ->
      Printf.eprintf "--json needs a FILE argument\n";
      exit 1
    | "--compare" :: path :: rest ->
      compare_to := Some path;
      strip acc rest
    | "--compare" :: [] ->
      Printf.eprintf "--compare needs a BASELINE.json argument\n";
      exit 1
    | "--tolerance" :: v :: rest ->
      (match float_of_string_opt v with
       | Some f when f >= 0.0 -> tolerance := f
       | _ ->
         Printf.eprintf "--tolerance needs a non-negative float, got %S\n" v;
         exit 1);
      strip acc rest
    | "--tolerance" :: [] ->
      Printf.eprintf "--tolerance needs a FLOAT argument\n";
      exit 1
    | "--only" :: name :: rest ->
      (* Synonym for the positional form, but validated up front so a
         scripted `--only typo` dies before running anything. *)
      if not (List.mem_assoc name sections) then begin
        Printf.eprintf "--only %S: unknown section; available: %s\n" name
          (String.concat " " (List.map fst sections));
        exit 1
      end;
      strip (name :: acc) rest
    | "--only" :: [] ->
      Printf.eprintf "--only needs a SECTION argument\n";
      exit 1
    | "--list" :: _ ->
      List.iter (fun (n, _) -> print_endline n) sections;
      exit 0
    | arg :: rest -> strip (arg :: acc) rest
  in
  let args = strip [] (List.tl (Array.to_list Sys.argv)) in
  (* Read the baseline up front so `--json X --compare X` gates against
     the committed snapshot, then refreshes it. *)
  let baseline =
    Option.map
      (fun path ->
        match O.Regress.load_file path with
        | doc -> (path, doc)
        | exception Sys_error msg ->
          Printf.eprintf "cannot read baseline %s: %s\n" path msg;
          exit 1
        | exception Cards_util.Json.Parse_error msg ->
          Printf.eprintf "cannot parse baseline %s: %s\n" path msg;
          exit 1)
      !compare_to
  in
  let chosen = if args = [] then List.map fst sections else args in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> f ()
      | None ->
        Printf.eprintf "unknown section %S; available: %s\n" name
          (String.concat " " (List.map fst sections));
        exit 1)
    chosen;
  write_json ();
  match baseline with
  | None -> ()
  | Some (path, base) ->
    let violations =
      O.Regress.compare_snapshots ~tolerance:!tolerance ~baseline:base
        ~current:(current_doc ()) ()
    in
    if violations = [] then
      Printf.eprintf "-- regression gate: %d experiment(s) within %.1f%% of %s\n"
        (List.length !experiments) (100.0 *. !tolerance) path
    else begin
      List.iter
        (fun v -> Printf.eprintf "%s\n" (O.Regress.format_violation v))
        violations;
      Printf.eprintf "-- regression gate: %d violation(s) against %s\n"
        (List.length violations) path;
      exit 1
    end
