(* The differential test oracle for fault injection and for the
   pre-decoded execution engine.

   Fuzz-generated MiniC programs (the Test_fuzz generator) run through
   the plain guard-free interpreter and through the full CaRDS runtime
   across the whole resilience matrix:

     queue pairs {1, 2, 4} x batching {on, off} x fault rate {0, 5%, 20%}

   and every cell must (a) print bit-identical output — faults, retries,
   backoff waits and reliable-channel escalations perturb timing only,
   never data — and (b) keep both accounting invariants exact:

     Profile.attributed = Runtime.now
     Attribution.total  = Runtime.now - Profile.compute

   Each cell additionally runs under BOTH execution engines — the
   pre-decoded engine (with its runtime fast path) and the reference
   tree-walking interpreter — and the two must agree bit for bit on
   output, return value, simulated cycles, instruction count, the full
   runtime stats record, and the stall ledger's cause decomposition.
   The decoded engine takes different code paths by design (closure
   arrays, translation-cache accesses); this is what proves they are
   observationally the same machine.

   A wrong answer anywhere in the matrix is a retry bug (dropped or
   double-applied fetch), a degradation bug (prefetch suppression
   changing semantics), an accounting leak, or an engine divergence.
   Rate 0 cells double as the control group: they prove the fault
   plumbing itself is inert when disabled. *)

module R = Cards_runtime
module P = Cards.Pipeline
module B = Cards_baselines
module O = Cards_obs
module F = Cards_net.Fabric
module M = Cards_interp.Machine

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

let kb x = x * 1024
let fuel = 30_000_000

let qps = [ 1; 2; 4 ]
let batchings = [ true; false ]
let rates = [ 0.0; 0.05; 0.2 ]

let cell_config ~qp ~batching ~rate =
  { R.Runtime.default_config with
    policy = R.Policy.Linear; k = 1.0;
    local_bytes = kb 16; remotable_bytes = kb 8;
    fabric_config =
      { R.Runtime.default_config.fabric_config with
        F.qp_count = qp;
        faults = { F.no_faults with F.fault_rate = rate; fault_seed = 99 } };
    batching }

let cell_name ~qp ~batching ~rate =
  Printf.sprintf "qp=%d batching=%b rate=%.2f" qp batching rate

(* Runs one program through every cell; returns true iff all cells
   match the reference and stay exact.  Raising compilation/interp
   errors is reported with the program text for reproduction. *)
let run_oracle seed =
  let src = Test_fuzz.gen_program seed in
  try
    let compiled = P.compile_source src in
    let reference, _ = B.Noguard.run ~fuel compiled in
    List.for_all
      (fun qp ->
        List.for_all
          (fun batching ->
            List.for_all
              (fun rate ->
                let cfg = cell_config ~qp ~batching ~rate in
                let res, rt = P.run ~fuel ~engine:M.Decoded compiled cfg in
                let prof = R.Runtime.profile rt in
                let ok =
                  res.output = reference.output
                  && O.Profile.attributed prof = R.Runtime.now rt
                  && O.Attribution.total (R.Runtime.attribution rt)
                     = R.Runtime.now rt - O.Profile.compute prof
                in
                if not ok then
                  QCheck.Test.fail_reportf
                    "seed %d diverged at %s\n\
                     output %S vs reference %S\n\
                     attributed %d, now %d, ledger %d, compute %d\n\
                     program:\n%s"
                    seed
                    (cell_name ~qp ~batching ~rate)
                    (String.concat "|" res.output)
                    (String.concat "|" reference.output)
                    (O.Profile.attributed prof) (R.Runtime.now rt)
                    (O.Attribution.total (R.Runtime.attribution rt))
                    (O.Profile.compute prof) src;
                (* Engine identity: the same cell through the reference
                   tree-walking interpreter must be bit-identical in
                   every observable — result record (output, return
                   value, cycles, instructions), runtime stat counters,
                   and the stall ledger's cause decomposition. *)
                let res_r, rt_r =
                  P.run ~fuel ~engine:M.Reference compiled cfg
                in
                let engines_ok =
                  res = res_r
                  && R.Rt_stats.total (R.Runtime.stats rt)
                     = R.Rt_stats.total (R.Runtime.stats rt_r)
                  && O.Attribution.cause_totals (R.Runtime.attribution rt)
                     = O.Attribution.cause_totals (R.Runtime.attribution rt_r)
                  && O.Profile.compute prof
                     = O.Profile.compute (R.Runtime.profile rt_r)
                in
                if not engines_ok then
                  QCheck.Test.fail_reportf
                    "seed %d: engines diverged at %s\n\
                     decoded: %d cycles, %d instrs, ret %d, output %S\n\
                     reference: %d cycles, %d instrs, ret %d, output %S\n\
                     program:\n%s"
                    seed
                    (cell_name ~qp ~batching ~rate)
                    res.cycles res.instructions res.ret
                    (String.concat "|" res.output)
                    res_r.cycles res_r.instructions res_r.ret
                    (String.concat "|" res_r.output)
                    src;
                ok && engines_ok)
              rates)
          batchings)
      qps
  with
  | QCheck.Test.Test_fail _ as e -> raise e
  | exn ->
    QCheck.Test.fail_reportf "seed %d raised %s\nprogram:\n%s" seed
      (Printexc.to_string exn) src

let prop_oracle =
  QCheck.Test.make
    ~name:"fuzz programs agree across qp x batching x fault rate" ~count:12
    QCheck.(int_range 0 1_000_000)
    run_oracle

(* Pinned seeds reproduce without QCheck shrinking noise; seed 7
   generates a linked list, exercising the jump prefetcher (and its
   degradation-driven suppression) under faults. *)
let test_pinned_seeds () =
  List.iter
    (fun seed ->
      check Alcotest.bool (Printf.sprintf "seed %d" seed) true
        (run_oracle seed))
    [ 7; 42; 4096 ]

(* The fig9 list chase — a real workload, heavier than the fuzz
   programs — through the worst cell of the matrix. *)
let test_pointer_chase_worst_cell () =
  let compiled =
    P.compile_source
      (Cards_workloads.Pointer_chase.source ~variant:"list" ~scale:512
         ~passes:2)
  in
  let reference, _ = B.Noguard.run ~fuel compiled in
  let cfg = cell_config ~qp:1 ~batching:false ~rate:0.2 in
  let res, rt = P.run ~fuel ~engine:M.Decoded compiled cfg in
  check Alcotest.(list string) "output" reference.output res.output;
  let prof = R.Runtime.profile rt in
  check Alcotest.int "profiler exact" (R.Runtime.now rt)
    (O.Profile.attributed prof);
  check Alcotest.int "ledger exact"
    (R.Runtime.now rt - O.Profile.compute prof)
    (O.Attribution.total (R.Runtime.attribution rt));
  (* Both engines, bit for bit, on a real guard-heavy workload in the
     nastiest cell (single queue, no batching, 20% faults). *)
  let res_r, rt_r = P.run ~fuel ~engine:M.Reference compiled cfg in
  check Alcotest.int "engine cycles" res_r.cycles res.cycles;
  check Alcotest.int "engine instructions" res_r.instructions
    res.instructions;
  check Alcotest.(list string) "engine output" res_r.output res.output;
  check Alcotest.bool "engine stats" true
    (R.Rt_stats.total (R.Runtime.stats rt)
     = R.Rt_stats.total (R.Runtime.stats rt_r));
  check Alcotest.bool "engine stall causes" true
    (O.Attribution.cause_totals (R.Runtime.attribution rt)
     = O.Attribution.cause_totals (R.Runtime.attribution rt_r))

(* ---------- span reconciliation oracle ---------- *)

(* Causal tracing differentially, against the same matrix: each cell
   runs bare, then with span recording at rate 1.0, then at rate 0.5.

     1. recording is read-only: the traced result record, stats and
        ledger are bit-identical to the bare run's;
     2. the span graph is well formed (ids unique, parent edges
        strictly backwards — acyclic);
     3. at rate 1.0 the per-phase span sums equal the ledger's cause
        totals exactly (Proto / Wire / Queue qp / Pf_wait / Retry /
        Trap);
     4. at any rate they never exceed them (sampling only drops
        occasions, it never invents cycles). *)

let ledger_cause attr cause =
  List.fold_left
    (fun acc (c, v) -> if c = cause then acc + v else acc)
    0 (O.Attribution.cause_totals attr)

let check_reconciles ~cell ~exact col attr =
  let name what = Printf.sprintf "%s: %s %s" cell what
      (if exact then "exact" else "bounded") in
  let cmp what spans ledger =
    if exact then check Alcotest.int (name what) ledger spans
    else
      check Alcotest.bool (name what) true
        (spans <= ledger
         ||
         (Printf.eprintf "%s: span %s %d > ledger %d\n" cell what spans ledger;
          false))
  in
  check Alcotest.bool (cell ^ ": well formed") true (O.Span.well_formed col);
  let tot = O.Span.cpu_totals col in
  cmp "proto" tot.O.Span.tot_proto (ledger_cause attr O.Attribution.Proto);
  cmp "wire" tot.O.Span.tot_wire (ledger_cause attr O.Attribution.Wire);
  cmp "retry" tot.O.Span.tot_retry (ledger_cause attr O.Attribution.Retry);
  cmp "pf_wait" tot.O.Span.tot_pf_wait
    (ledger_cause attr O.Attribution.Pf_wait);
  cmp "trap" tot.O.Span.tot_trap (ledger_cause attr O.Attribution.Trap);
  Array.iteri
    (fun qp v ->
      cmp (Printf.sprintf "queue[%d]" qp) v
        (ledger_cause attr (O.Attribution.Queue qp)))
    tot.O.Span.tot_queue

let span_cell compiled ~engine ~qp ~batching ~rate =
  let cfg = cell_config ~qp ~batching ~rate in
  let cell =
    Printf.sprintf "%s %s" (cell_name ~qp ~batching ~rate)
      (match engine with M.Decoded -> "decoded" | M.Reference -> "ref")
  in
  let bare_res, bare_rt = P.run ~fuel ~engine compiled cfg in
  List.iter
    (fun (span_rate, exact) ->
      let obs = O.Sink.create ~span_rate () in
      let res, rt = P.run ~fuel ~engine ~obs compiled cfg in
      check Alcotest.bool (cell ^ ": traced run identical") true
        (res = bare_res
         && R.Rt_stats.total (R.Runtime.stats rt)
            = R.Rt_stats.total (R.Runtime.stats bare_rt)
         && O.Attribution.cause_totals (R.Runtime.attribution rt)
            = O.Attribution.cause_totals (R.Runtime.attribution bare_rt));
      let col = Option.get (O.Sink.spans obs) in
      check_reconciles ~cell ~exact col (R.Runtime.attribution rt))
    [ (1.0, true); (0.5, false) ]

(* The full matrix, both engines, on a real pointer chase (registered
   Slow; check.sh forces it on). *)
let test_span_matrix () =
  let compiled =
    P.compile_source
      (Cards_workloads.Pointer_chase.source ~variant:"list" ~scale:512
         ~passes:2)
  in
  List.iter
    (fun engine ->
      List.iter
        (fun qp ->
          List.iter
            (fun batching ->
              List.iter
                (fun rate -> span_cell compiled ~engine ~qp ~batching ~rate)
                rates)
            batchings)
        qps)
    [ M.Decoded; M.Reference ]

(* One nasty cell stays in the quick tier: single queue, no batching,
   20% faults — retries, escalations and trap-forced fetches all land
   in the span graph and must still reconcile. *)
let test_span_worst_cell () =
  let compiled =
    P.compile_source
      (Cards_workloads.Pointer_chase.source ~variant:"list" ~scale:512
         ~passes:2)
  in
  span_cell compiled ~engine:M.Decoded ~qp:1 ~batching:false ~rate:0.2

let suite =
  [ ("pinned seeds, full matrix", `Slow, test_pinned_seeds);
    ("pc-list worst cell", `Quick, test_pointer_chase_worst_cell);
    ("span reconciliation, full matrix", `Slow, test_span_matrix);
    ("span reconciliation, worst cell", `Quick, test_span_worst_cell);
    qcheck prop_oracle ]
