(* The differential test oracle for fault injection.

   Fuzz-generated MiniC programs (the Test_fuzz generator) run through
   the plain guard-free interpreter and through the full CaRDS runtime
   across the whole resilience matrix:

     queue pairs {1, 2, 4} x batching {on, off} x fault rate {0, 5%, 20%}

   and every cell must (a) print bit-identical output — faults, retries,
   backoff waits and reliable-channel escalations perturb timing only,
   never data — and (b) keep both accounting invariants exact:

     Profile.attributed = Runtime.now
     Attribution.total  = Runtime.now - Profile.compute

   A wrong answer anywhere in the matrix is a retry bug (dropped or
   double-applied fetch), a degradation bug (prefetch suppression
   changing semantics), or an accounting leak.  Rate 0 cells double as
   the control group: they prove the fault plumbing itself is inert
   when disabled. *)

module R = Cards_runtime
module P = Cards.Pipeline
module B = Cards_baselines
module O = Cards_obs
module F = Cards_net.Fabric

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

let kb x = x * 1024
let fuel = 30_000_000

let qps = [ 1; 2; 4 ]
let batchings = [ true; false ]
let rates = [ 0.0; 0.05; 0.2 ]

let cell_config ~qp ~batching ~rate =
  { R.Runtime.default_config with
    policy = R.Policy.Linear; k = 1.0;
    local_bytes = kb 16; remotable_bytes = kb 8;
    fabric_config =
      { R.Runtime.default_config.fabric_config with
        F.qp_count = qp;
        faults = { F.no_faults with F.fault_rate = rate; fault_seed = 99 } };
    batching }

let cell_name ~qp ~batching ~rate =
  Printf.sprintf "qp=%d batching=%b rate=%.2f" qp batching rate

(* Runs one program through every cell; returns true iff all cells
   match the reference and stay exact.  Raising compilation/interp
   errors is reported with the program text for reproduction. *)
let run_oracle seed =
  let src = Test_fuzz.gen_program seed in
  try
    let compiled = P.compile_source src in
    let reference, _ = B.Noguard.run ~fuel compiled in
    List.for_all
      (fun qp ->
        List.for_all
          (fun batching ->
            List.for_all
              (fun rate ->
                let res, rt =
                  P.run ~fuel compiled (cell_config ~qp ~batching ~rate)
                in
                let prof = R.Runtime.profile rt in
                let ok =
                  res.output = reference.output
                  && O.Profile.attributed prof = R.Runtime.now rt
                  && O.Attribution.total (R.Runtime.attribution rt)
                     = R.Runtime.now rt - O.Profile.compute prof
                in
                if not ok then
                  QCheck.Test.fail_reportf
                    "seed %d diverged at %s\n\
                     output %S vs reference %S\n\
                     attributed %d, now %d, ledger %d, compute %d\n\
                     program:\n%s"
                    seed
                    (cell_name ~qp ~batching ~rate)
                    (String.concat "|" res.output)
                    (String.concat "|" reference.output)
                    (O.Profile.attributed prof) (R.Runtime.now rt)
                    (O.Attribution.total (R.Runtime.attribution rt))
                    (O.Profile.compute prof) src;
                ok)
              rates)
          batchings)
      qps
  with
  | QCheck.Test.Test_fail _ as e -> raise e
  | exn ->
    QCheck.Test.fail_reportf "seed %d raised %s\nprogram:\n%s" seed
      (Printexc.to_string exn) src

let prop_oracle =
  QCheck.Test.make
    ~name:"fuzz programs agree across qp x batching x fault rate" ~count:12
    QCheck.(int_range 0 1_000_000)
    run_oracle

(* Pinned seeds reproduce without QCheck shrinking noise; seed 7
   generates a linked list, exercising the jump prefetcher (and its
   degradation-driven suppression) under faults. *)
let test_pinned_seeds () =
  List.iter
    (fun seed ->
      check Alcotest.bool (Printf.sprintf "seed %d" seed) true
        (run_oracle seed))
    [ 7; 42; 4096 ]

(* The fig9 list chase — a real workload, heavier than the fuzz
   programs — through the worst cell of the matrix. *)
let test_pointer_chase_worst_cell () =
  let compiled =
    P.compile_source
      (Cards_workloads.Pointer_chase.source ~variant:"list" ~scale:512
         ~passes:2)
  in
  let reference, _ = B.Noguard.run ~fuel compiled in
  let res, rt =
    P.run ~fuel compiled (cell_config ~qp:1 ~batching:false ~rate:0.2)
  in
  check Alcotest.(list string) "output" reference.output res.output;
  let prof = R.Runtime.profile rt in
  check Alcotest.int "profiler exact" (R.Runtime.now rt)
    (O.Profile.attributed prof);
  check Alcotest.int "ledger exact"
    (R.Runtime.now rt - O.Profile.compute prof)
    (O.Attribution.total (R.Runtime.attribution rt))

let suite =
  [ ("pinned seeds, full matrix", `Slow, test_pinned_seeds);
    ("pc-list worst cell", `Quick, test_pointer_chase_worst_cell);
    qcheck prop_oracle ]
