(* Tests for the runtime layer: address codec, cost tables, fabric,
   policies, prefetchers, and the runtime itself. *)

module R = Cards_runtime
module N = Cards_net

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* ---------- Addr ---------- *)

let test_addr_basics () =
  let a = R.Addr.encode ~ds:3 ~offset:4096 in
  check Alcotest.bool "managed" true (R.Addr.is_managed a);
  check Alcotest.int "ds" 3 (R.Addr.ds_of a);
  check Alcotest.int "offset" 4096 (R.Addr.offset_of a);
  let u = R.Addr.unmanaged ~offset:77 in
  check Alcotest.bool "unmanaged" false (R.Addr.is_managed u);
  check Alcotest.int "unmanaged offset" 77 (R.Addr.offset_of u)

let test_addr_ranges () =
  Alcotest.check_raises "handle 0 rejected"
    (Invalid_argument "Addr.encode: handle 0 out of range") (fun () ->
      ignore (R.Addr.encode ~ds:0 ~offset:0));
  Alcotest.check_raises "ds_of unmanaged"
    (Invalid_argument "Addr.ds_of: unmanaged address") (fun () ->
      ignore (R.Addr.ds_of 42))

let prop_addr_roundtrip =
  QCheck.Test.make ~name:"addr encode/decode roundtrip" ~count:1000
    QCheck.(pair (int_range 1 60_000) (int_range 0 1_000_000_000))
    (fun (ds, offset) ->
      let ds = min ds R.Addr.max_handle in
      let a = R.Addr.encode ~ds ~offset in
      R.Addr.is_managed a && R.Addr.ds_of a = ds && R.Addr.offset_of a = offset)

let prop_addr_arith_stays_in_ds =
  QCheck.Test.make ~name:"pointer arithmetic preserves the handle" ~count:500
    QCheck.(triple (int_range 1 100) (int_range 0 100_000) (int_range 0 10_000))
    (fun (ds, offset, delta) ->
      let a = R.Addr.encode ~ds ~offset in
      R.Addr.ds_of (a + delta) = ds && R.Addr.offset_of (a + delta) = offset + delta)

(* ---------- Cost (Table 1 calibration) ---------- *)

let test_cost_table1 () =
  check Alcotest.int "CaRDS local read" 378 R.Cost.cards.guard_local_read;
  check Alcotest.int "CaRDS local write" 384 R.Cost.cards.guard_local_write;
  check Alcotest.int "TrackFM local read" 462 R.Cost.trackfm.guard_local_read;
  check Alcotest.int "TrackFM local write" 579 R.Cost.trackfm.guard_local_write

(* ---------- Fabric ---------- *)

let test_fabric_59k () =
  (* Table 1: a 4 KiB demand fetch lands at ~59 K cycles. *)
  let f = N.Fabric.create N.Fabric.default_config in
  let t = N.Fabric.fetch f ~now:0 ~bytes:R.Cost.cards_remote_object_bytes in
  check Alcotest.bool "within 5% of 59K" true
    (abs (t - 59_000) < 59_000 / 20)

let test_fabric_trackfm_46k () =
  let f = N.Fabric.create N.Fabric.trackfm_config in
  let t = N.Fabric.fetch f ~now:0 ~bytes:4096 in
  check Alcotest.bool "within 5% of 46K" true (abs (t - 46_000) < 46_000 / 20)

let test_fabric_queueing () =
  let f = N.Fabric.create N.Fabric.default_config in
  let t1 = N.Fabric.fetch f ~now:0 ~bytes:4096 in
  let t2 = N.Fabric.fetch f ~now:0 ~bytes:4096 in
  check Alcotest.bool "second transfer serializes" true (t2 > t1);
  let st = N.Fabric.stats f in
  check Alcotest.int "two fetches" 2 st.fetches;
  check Alcotest.int "bytes counted" 8192 st.fetched_bytes;
  check Alcotest.bool "queueing recorded" true (st.queue_in_cycles > 0);
  check Alcotest.int "no outbound queueing" 0 st.queue_out_cycles

let test_fabric_writeback_nonblocking () =
  let f = N.Fabric.create N.Fabric.default_config in
  N.Fabric.writeback f ~now:0 ~bytes:4096;
  (* Outbound traffic must not delay inbound fetches. *)
  let t = N.Fabric.fetch f ~now:0 ~bytes:4096 in
  check Alcotest.bool "fetch unaffected by writeback" true (t < 60_000);
  check Alcotest.int "writeback counted" 1 (N.Fabric.stats f).writebacks;
  (* A second immediate writeback queues behind the first on the
     outbound link; the wait lands in the outbound counter only. *)
  N.Fabric.writeback f ~now:0 ~bytes:4096;
  let st = N.Fabric.stats f in
  check Alcotest.bool "outbound queueing recorded" true (st.queue_out_cycles > 0)

let test_fabric_bandwidth_term () =
  let f = N.Fabric.create N.Fabric.default_config in
  let small = N.Fabric.fetch f ~now:0 ~bytes:64 in
  N.Fabric.reset f;
  let big = N.Fabric.fetch f ~now:0 ~bytes:65536 in
  check Alcotest.bool "bigger transfers take longer" true (big > small + 10_000)

let test_fabric_fetch_many_amortizes () =
  (* Four 4 KiB objects in one request: the protocol cost is paid once,
     so the batch completes in a fraction of four serial fetches. *)
  let f = N.Fabric.create N.Fabric.default_config in
  let single = N.Fabric.fetch f ~now:0 ~bytes:4096 in
  N.Fabric.reset f;
  let tr, completions =
    N.Fabric.fetch_many f ~now:0 ~sizes:(Array.make 4 4096)
  in
  check Alcotest.int "one completion per object" 4 (Array.length completions);
  (* Per-object completions: strictly increasing, first = a plain
     fetch, last = proto + 4x serialization. *)
  check Alcotest.int "first object lands like a single fetch" single
    completions.(0);
  for i = 1 to 3 do
    check Alcotest.bool "completions increase" true
      (completions.(i) > completions.(i - 1))
  done;
  check Alcotest.int "transfer completes with its last object"
    completions.(3) tr.N.Fabric.t_complete;
  check Alcotest.bool "batch of 4 beats 2 serial fetches" true
    (tr.N.Fabric.t_complete < 2 * single);
  let st = N.Fabric.stats f in
  check Alcotest.int "objects counted as fetches" 4 st.fetches;
  check Alcotest.int "one batch" 1 st.batches;
  check Alcotest.int "batched objects" 4 st.batched_objects;
  check Alcotest.int "bytes counted" (4 * 4096) st.fetched_bytes

let test_fabric_qp_dispatch () =
  (* Two queue pairs: two simultaneous fetches ride different QPs with
     no queueing; the third queues behind the least-loaded one. *)
  let f =
    N.Fabric.create { N.Fabric.default_config with qp_count = 2 }
  in
  let t1 = N.Fabric.fetch_info f ~now:0 ~bytes:4096 in
  let t2 = N.Fabric.fetch_info f ~now:0 ~bytes:4096 in
  check Alcotest.int "first not queued" 0 t1.N.Fabric.t_queued;
  check Alcotest.int "second not queued" 0 t2.N.Fabric.t_queued;
  check Alcotest.bool "different QPs" true
    (t1.N.Fabric.t_qp <> t2.N.Fabric.t_qp);
  let t3 = N.Fabric.fetch_info f ~now:0 ~bytes:4096 in
  check Alcotest.bool "third queues" true (t3.N.Fabric.t_queued > 0);
  let st = N.Fabric.stats f in
  check Alcotest.int "per-QP counters sized" 2
    (Array.length st.qp_queue_cycles);
  check Alcotest.int "per-QP queueing sums to the total" st.queue_in_cycles
    (Array.fold_left ( + ) 0 st.qp_queue_cycles)

let test_fabric_writeback_charges_proto () =
  (* Writebacks are posted, but the request still crosses the wire:
     outbound occupancy covers protocol + serialization, same cost
     structure as a fetch (DESIGN.md §fabric). *)
  let cfg = N.Fabric.default_config in
  let f = N.Fabric.create cfg in
  N.Fabric.writeback f ~now:0 ~bytes:4096;
  let busy = N.Fabric.outbound_busy_until f in
  check Alcotest.bool "outbound occupied past proto_cycles" true
    (busy > cfg.proto_cycles);
  check Alcotest.bool "occupancy matches a fetch's cost" true
    (busy = N.Fabric.nominal_fetch_cycles f ~bytes:4096)

let test_fabric_writeback_many_coalesces () =
  (* A coalesced eviction burst pays the protocol cost once. *)
  let f1 = N.Fabric.create N.Fabric.default_config in
  N.Fabric.writeback f1 ~now:0 ~bytes:4096;
  N.Fabric.writeback f1 ~now:0 ~bytes:4096;
  let serial = N.Fabric.outbound_busy_until f1 in
  let f2 = N.Fabric.create N.Fabric.default_config in
  N.Fabric.writeback_many f2 ~now:0 ~count:2 ~bytes:8192;
  let batched = N.Fabric.outbound_busy_until f2 in
  check Alcotest.bool "batched burst frees the wire sooner" true
    (batched < serial);
  let st = N.Fabric.stats f2 in
  check Alcotest.int "objects counted" 2 st.writebacks;
  check Alcotest.int "one outbound batch" 1 st.wb_batches;
  check Alcotest.int "bytes counted" 8192 st.written_bytes

let prop_fabric_completion_monotone =
  QCheck.Test.make ~name:"fabric completions are monotone in time" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 20) (int_range 64 65536))
    (fun sizes ->
      let f = N.Fabric.create N.Fabric.default_config in
      let now = ref 0 in
      let last = ref 0 in
      List.for_all
        (fun bytes ->
          now := !now + 100;
          let t = N.Fabric.fetch f ~now:!now ~bytes in
          let ok = t >= !last && t > !now in
          last := t;
          ok)
        sizes)

(* ---------- Policy ---------- *)

let infos_n n =
  Array.init n (fun sid ->
      { (R.Static_info.default ~sid) with
        score_use = n - sid;        (* descending: sid 0 hottest *)
        score_reach = sid })        (* ascending: last sid deepest *)

let count_true = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0

let test_policy_linear () =
  let p = R.Policy.pinned_preference R.Policy.Linear ~infos:(infos_n 10) ~k:0.5 in
  check Alcotest.int "five pinned" 5 (count_true p);
  for i = 0 to 4 do
    check Alcotest.bool "prefix pinned" true p.(i)
  done

let test_policy_all () =
  let infos = infos_n 6 in
  check Alcotest.int "all-remotable pins none" 0
    (count_true (R.Policy.pinned_preference R.Policy.All_remotable ~infos ~k:1.0));
  check Alcotest.int "all-local pins all" 6
    (count_true (R.Policy.pinned_preference R.Policy.All_local ~infos ~k:0.0))

let test_policy_max_use () =
  let p = R.Policy.pinned_preference R.Policy.Max_use ~infos:(infos_n 10) ~k:0.3 in
  (* scores descend with sid: top-3 = sids 0,1,2 *)
  check Alcotest.bool "top scorers pinned" true (p.(0) && p.(1) && p.(2));
  check Alcotest.int "exactly three" 3 (count_true p)

let test_policy_max_reach () =
  let p = R.Policy.pinned_preference R.Policy.Max_reach ~infos:(infos_n 10) ~k:0.2 in
  check Alcotest.bool "deepest pinned" true (p.(9) && p.(8));
  check Alcotest.int "exactly two" 2 (count_true p)

let test_policy_random_deterministic () =
  let infos = infos_n 20 in
  let a = R.Policy.pinned_preference (R.Policy.Random 5) ~infos ~k:0.5 in
  let b = R.Policy.pinned_preference (R.Policy.Random 5) ~infos ~k:0.5 in
  check Alcotest.bool "same seed, same set" true (a = b);
  check Alcotest.int "half pinned" 10 (count_true a)

let test_policy_explicit () =
  let set = [| true; false; true |] in
  let p = R.Policy.pinned_preference (R.Policy.Explicit set) ~infos:(infos_n 3) ~k:0.0 in
  check Alcotest.bool "copied through" true (p = set);
  Alcotest.check_raises "length checked"
    (Invalid_argument "Policy.pinned_preference: explicit set has wrong length")
    (fun () ->
      ignore (R.Policy.pinned_preference (R.Policy.Explicit set) ~infos:(infos_n 4) ~k:0.0))

let prop_policy_quota =
  QCheck.Test.make ~name:"k-fraction quota respected" ~count:200
    QCheck.(pair (int_range 1 40) (float_range 0.0 1.0))
    (fun (n, k) ->
      let infos = infos_n n in
      let quota = int_of_float (ceil (k *. float_of_int n)) in
      List.for_all
        (fun pol ->
          count_true (R.Policy.pinned_preference pol ~infos ~k) = quota)
        [ R.Policy.Linear; R.Policy.Random 3; R.Policy.Max_use; R.Policy.Max_reach ])

(* ---------- Prefetcher ---------- *)

let no_scan () = []

(* Expand a target list to the individual objects it names. *)
let objs_of targets =
  List.concat_map
    (fun (t : R.Prefetcher.target) ->
      List.init t.t_len (fun i -> t.t_obj + i))
    targets

let test_stride_prefetcher_locks () =
  let p = R.Prefetcher.stride ~depth:3 in
  (* Feed a stride-1 stream; after the window fills it must predict
     ahead, emitting the window as contiguous runs. *)
  let all = ref [] in
  let runs = ref [] in
  for o = 0 to 9 do
    let out = R.Prefetcher.on_access p ~obj:o ~missed:true ~scan:no_scan in
    runs := !runs @ out;
    all := !all @ objs_of out
  done;
  (* The issued window must reach past the last access by the depth. *)
  check Alcotest.bool "window covers obj+depth" true
    (List.mem 10 !all && List.mem 11 !all && List.mem 12 !all);
  (* Runs only ever point ahead of the access stream. *)
  check Alcotest.bool "all targets ahead" true (List.for_all (fun o -> o >= 5) !all);
  (* No object is requested twice... *)
  check Alcotest.int "no duplicate objects"
    (List.length !all)
    (List.length (List.sort_uniq compare !all));
  (* ...and the window arrives as real runs a batching fabric can
     coalesce, not as per-object targets. *)
  check Alcotest.bool "emits multi-object runs" true
    (List.exists (fun (t : R.Prefetcher.target) -> t.t_len >= 3) !runs)

let test_stride_prefetcher_majority () =
  let p = R.Prefetcher.stride ~depth:2 in
  (* Mostly stride 2 with one hiccup: majority must still lock 2. *)
  List.iter
    (fun o -> ignore (R.Prefetcher.on_access p ~obj:o ~missed:false ~scan:no_scan))
    [ 0; 2; 4; 6; 7; 9; 11; 13 ];
  let out = R.Prefetcher.on_access p ~obj:15 ~missed:false ~scan:no_scan in
  check (Alcotest.list Alcotest.int) "stride 2 locked" [ 17; 19 ] (objs_of out)

let test_stride_prefetcher_random_stays_quiet () =
  let p = R.Prefetcher.stride ~depth:4 in
  let rng = Cards_util.Rng.create 11 in
  let noisy = ref 0 in
  for _ = 1 to 50 do
    let o = Cards_util.Rng.int rng 10_000 in
    let out = R.Prefetcher.on_access p ~obj:o ~missed:true ~scan:no_scan in
    noisy := !noisy + List.length (objs_of out)
  done;
  check Alcotest.bool "no majority, few prefetches" true (!noisy < 20)

let test_greedy_scans_on_miss () =
  let p = R.Prefetcher.greedy ~fanout:2 in
  let scan () =
    [ { R.Prefetcher.t_ds = 2; t_obj = 7; t_len = 1 };
      { R.Prefetcher.t_ds = 2; t_obj = 8; t_len = 1 };
      { R.Prefetcher.t_ds = 2; t_obj = 9; t_len = 1 } ]
  in
  let out = R.Prefetcher.on_access p ~obj:0 ~missed:true ~scan in
  check Alcotest.int "fanout bounded" 2 (List.length out);
  let out2 = R.Prefetcher.on_access p ~obj:0 ~missed:false ~scan in
  check Alcotest.int "no scan on hit" 0 (List.length out2)

let test_jump_learns_second_traversal () =
  let p = R.Prefetcher.jump ~jump:2 ~depth:1 in
  let seq = [ 10; 20; 30; 40; 50 ] in
  (* First traversal: nothing useful predicted yet, table learns. *)
  List.iter
    (fun o -> ignore (R.Prefetcher.on_access p ~obj:o ~missed:true ~scan:no_scan))
    seq;
  (* Second traversal: at 10 it should jump toward 30 (2 ahead). *)
  let out = R.Prefetcher.on_access p ~obj:10 ~missed:true ~scan:no_scan in
  check Alcotest.bool "jump target learned" true
    (List.exists (fun t -> t.R.Prefetcher.t_obj = 30) out)

let test_of_class () =
  check Alcotest.bool "no_prefetch -> none" true
    (R.Prefetcher.of_class R.Static_info.No_prefetch ~depth:4 = None);
  (match R.Prefetcher.of_class R.Static_info.Stride ~depth:4 with
   | Some p -> check Alcotest.string "stride" "stride" (R.Prefetcher.kind_name p)
   | None -> Alcotest.fail "expected stride");
  match R.Prefetcher.of_class R.Static_info.Jump_pointer ~depth:4 with
  | Some p -> check Alcotest.string "jump" "jump" (R.Prefetcher.kind_name p)
  | None -> Alcotest.fail "expected jump"

(* ---------- Runtime ---------- *)

let mk_rt ?(policy = R.Policy.All_local) ?(k = 1.0) ?(local = 1 lsl 22)
    ?(remot = 1 lsl 20) ?(prefetch = R.Runtime.Pf_none) n_infos =
  let infos = Array.init n_infos (fun sid -> R.Static_info.default ~sid) in
  R.Runtime.create
    { R.Runtime.default_config with
      policy; k; local_bytes = local; remotable_bytes = remot;
      prefetch_mode = prefetch }
    infos

let test_rt_pinned_alloc_untagged () =
  let rt = mk_rt 1 in
  let h = R.Runtime.ds_init rt ~sid:0 in
  let a = R.Runtime.ds_alloc rt ~handle:h ~size:256 in
  check Alcotest.bool "pinned allocation is untagged" false (R.Addr.is_managed a);
  check Alcotest.bool "pinned bytes accounted" true (R.Runtime.pinned_bytes rt >= 256)

let test_rt_remotable_alloc_tagged () =
  let rt = mk_rt ~policy:R.Policy.All_remotable ~k:0.0 1 in
  let h = R.Runtime.ds_init rt ~sid:0 in
  let a = R.Runtime.ds_alloc rt ~handle:h ~size:256 in
  check Alcotest.bool "remotable allocation is tagged" true (R.Addr.is_managed a);
  check Alcotest.int "handle embedded" h (R.Addr.ds_of a)

let test_rt_data_roundtrip () =
  let rt = mk_rt ~policy:R.Policy.All_remotable ~k:0.0 1 in
  let h = R.Runtime.ds_init rt ~sid:0 in
  let a = R.Runtime.ds_alloc rt ~handle:h ~size:128 in
  R.Runtime.write_i64 rt a 12345;
  R.Runtime.write_f64 rt (a + 8) 2.75;
  check Alcotest.int "i64 roundtrip" 12345 (R.Runtime.read_i64 rt a);
  check (Alcotest.float 1e-12) "f64 roundtrip" 2.75 (R.Runtime.read_f64 rt (a + 8))

let test_rt_unmanaged_roundtrip () =
  let rt = mk_rt 0 in
  let a = R.Runtime.alloc_unmanaged rt ~size:64 in
  R.Runtime.write_i64 rt a (-7);
  check Alcotest.int "unmanaged i64" (-7) (R.Runtime.read_i64 rt a)

let test_rt_guard_costs () =
  let rt = mk_rt ~policy:R.Policy.All_remotable ~k:0.0 1 in
  let h = R.Runtime.ds_init rt ~sid:0 in
  let a = R.Runtime.ds_alloc rt ~handle:h ~size:4096 in
  (* Object is resident right after allocation: local-read guard. *)
  let t0 = R.Runtime.now rt in
  R.Runtime.guard rt ~write:false a;
  check Alcotest.int "local read guard = 378" 378 (R.Runtime.now rt - t0);
  let t1 = R.Runtime.now rt in
  R.Runtime.guard rt ~write:true a;
  check Alcotest.int "local write guard = 384" 384 (R.Runtime.now rt - t1);
  let t2 = R.Runtime.now rt in
  R.Runtime.guard rt ~write:false 99 (* unmanaged *);
  check Alcotest.int "unmanaged custody check = 3" 3 (R.Runtime.now rt - t2)

let test_rt_remote_fault_cost () =
  (* Tiny cache: allocate two objects, evict the first, re-touch it. *)
  let rt = mk_rt ~policy:R.Policy.All_remotable ~k:0.0 ~local:8192 ~remot:4096 1 in
  let h = R.Runtime.ds_init rt ~sid:0 in
  let a = R.Runtime.ds_alloc rt ~handle:h ~size:4096 in
  let b = R.Runtime.ds_alloc rt ~handle:h ~size:4096 in
  ignore b;
  (* b's allocation evicted a (budget = one object). *)
  let t0 = R.Runtime.now rt in
  R.Runtime.guard rt ~write:false a;
  let dt = R.Runtime.now rt - t0 in
  check Alcotest.bool "remote fault ~59K cycles" true
    (dt > 55_000 && dt < 70_000);
  let tot = R.Rt_stats.total (R.Runtime.stats rt) in
  check Alcotest.int "one remote fault" 1 tot.remote_faults;
  check Alcotest.bool "one eviction" true (tot.evictions >= 1)

let test_rt_pinned_override_demotes () =
  (* Pinned budget too small: the structure is demoted at allocation
     and later allocations come back tagged. *)
  let rt = mk_rt ~local:8192 ~remot:4096 1 in (* pinned budget = 4096 *)
  let h = R.Runtime.ds_init rt ~sid:0 in
  let a = R.Runtime.ds_alloc rt ~handle:h ~size:4096 in
  let b = R.Runtime.ds_alloc rt ~handle:h ~size:4096 in
  check Alcotest.bool "first fits pinned (untagged)" false (R.Addr.is_managed a);
  check Alcotest.bool "second overrides to remotable (tagged)" true
    (R.Addr.is_managed b);
  let tot = R.Rt_stats.total (R.Runtime.stats rt) in
  check Alcotest.int "demotion recorded" 1 tot.demotions

let test_rt_loop_check () =
  let rt = mk_rt ~local:8192 ~remot:4096 2 in
  let h1 = R.Runtime.ds_init rt ~sid:0 in
  let h2 = R.Runtime.ds_init rt ~sid:1 in
  let a = R.Runtime.ds_alloc rt ~handle:h1 ~size:1024 in    (* pinned *)
  let big = R.Runtime.ds_alloc rt ~handle:h2 ~size:8192 in  (* demoted *)
  check Alcotest.bool "untagged base passes" true (R.Runtime.loop_check rt [ a ]);
  check Alcotest.bool "tagged base fails" false (R.Runtime.loop_check rt [ a; big ]);
  check Alcotest.bool "empty passes" true (R.Runtime.loop_check rt [])

let test_rt_clean_fault_fallback () =
  (* An unguarded access to an evicted object must still work (trap +
     fetch), and be counted as a clean fault. *)
  let rt = mk_rt ~policy:R.Policy.All_remotable ~k:0.0 ~local:8192 ~remot:4096 1 in
  let h = R.Runtime.ds_init rt ~sid:0 in
  let a = R.Runtime.ds_alloc rt ~handle:h ~size:4096 in
  R.Runtime.write_i64 rt a 31337;
  (* Two further allocations: the first spends a's CLOCK second chance
     (the write set its reference bit), the second evicts it. *)
  let _ = R.Runtime.ds_alloc rt ~handle:h ~size:4096 in
  let _ = R.Runtime.ds_alloc rt ~handle:h ~size:4096 in
  check Alcotest.int "data survives eviction+refetch" 31337 (R.Runtime.read_i64 rt a);
  let tot = R.Rt_stats.total (R.Runtime.stats rt) in
  check Alcotest.bool "clean fault recorded" true (tot.clean_faults >= 1)

let test_rt_dirty_eviction_writes_back () =
  let rt = mk_rt ~policy:R.Policy.All_remotable ~k:0.0 ~local:8192 ~remot:4096 1 in
  let h = R.Runtime.ds_init rt ~sid:0 in
  let a = R.Runtime.ds_alloc rt ~handle:h ~size:4096 in
  R.Runtime.guard rt ~write:true a;
  R.Runtime.write_i64 rt a 1;
  (* Spend the second chance, then force the dirty eviction. *)
  let _ = R.Runtime.ds_alloc rt ~handle:h ~size:4096 in
  let _ = R.Runtime.ds_alloc rt ~handle:h ~size:4096 in
  let fs = R.Runtime.fabric_stats rt in
  check Alcotest.bool "dirty eviction wrote back" true (fs.writebacks >= 1)

let test_rt_prefetch_hides_latency () =
  (* Sequential scan with stride prefetch vs without: prefetching must
     cut the total cycles. *)
  let scan prefetch =
    let rt =
      mk_rt ~policy:R.Policy.All_remotable ~k:0.0 ~local:(1 lsl 18)
        ~remot:(1 lsl 17) ~prefetch 1
    in
    let h = R.Runtime.ds_init rt ~sid:0 in
    let a = R.Runtime.ds_alloc rt ~handle:h ~size:(1 lsl 20) in
    (* Evict everything by allocating another large structure. *)
    let _ = R.Runtime.ds_alloc rt ~handle:h ~size:(1 lsl 20) in
    let t0 = R.Runtime.now rt in
    for i = 0 to 4095 do
      let addr = a + (i * 256) in
      R.Runtime.guard rt ~write:false addr;
      ignore (R.Runtime.read_i64 rt addr)
    done;
    R.Runtime.now rt - t0
  in
  let without = scan R.Runtime.Pf_none in
  let with_pf = scan R.Runtime.Pf_stride_only in
  check Alcotest.bool "prefetch cuts cycles" true
    (float_of_int with_pf < 0.8 *. float_of_int without)

let test_rt_prefetch_stats () =
  let rt =
    mk_rt ~policy:R.Policy.All_remotable ~k:0.0 ~local:(1 lsl 18)
      ~remot:(1 lsl 17) ~prefetch:R.Runtime.Pf_stride_only 1
  in
  let h = R.Runtime.ds_init rt ~sid:0 in
  let a = R.Runtime.ds_alloc rt ~handle:h ~size:(1 lsl 20) in
  let _ = R.Runtime.ds_alloc rt ~handle:h ~size:(1 lsl 20) in
  for i = 0 to 255 do
    let addr = a + (i * 4096) in
    R.Runtime.guard rt ~write:false addr;
    ignore (R.Runtime.read_i64 rt addr)
  done;
  let d = R.Rt_stats.ds_stats (R.Runtime.stats rt) h in
  check Alcotest.bool "prefetches issued" true (d.prefetch_issued > 0);
  check Alcotest.bool "prefetches used" true (d.prefetch_used > 0);
  let acc =
    match R.Rt_stats.prefetch_accuracy d with
    | Some a -> a
    | None -> Alcotest.fail "accuracy should have data after issues"
  in
  check Alcotest.bool "accuracy in range" true (acc >= 0.0 && acc <= 1.0);
  let cov = R.Rt_stats.prefetch_coverage d in
  check Alcotest.bool "coverage positive" true (cov > 0.0 && cov <= 1.0)

let test_rt_cross_structure_prefetch_at_frontier () =
  (* Regression: issuing a prefetch for another structure's object at
     the pool frontier must grow the target's flag array *before*
     reading it.  A greedy prefetcher on A chases a pointer to the last
     object of B. *)
  let infos =
    [| { (R.Static_info.default ~sid:0) with
         prefetch = R.Static_info.Greedy_recursive; obj_size = 64 };
       { (R.Static_info.default ~sid:1) with obj_size = 64 };
       { (R.Static_info.default ~sid:2) with obj_size = 64 } |]
  in
  let rt =
    R.Runtime.create
      { R.Runtime.default_config with
        policy = R.Policy.All_remotable; k = 0.0;
        local_bytes = 1 lsl 20; remotable_bytes = 64 * 64 }
      infos
  in
  let h_a = R.Runtime.ds_init rt ~sid:0 in
  let h_b = R.Runtime.ds_init rt ~sid:1 in
  let h_c = R.Runtime.ds_init rt ~sid:2 in
  let b = R.Runtime.ds_alloc rt ~handle:h_b ~size:(128 * 64) in
  let a = R.Runtime.ds_alloc rt ~handle:h_a ~size:64 in
  (* A's only object points at B's frontier object. *)
  R.Runtime.write_i64 rt a (b + (127 * 64));
  (* Flood the cache so both A's object and B's frontier are evicted. *)
  let _ = R.Runtime.ds_alloc rt ~handle:h_c ~size:(128 * 64) in
  (* Miss on A: the greedy scan emits the cross-structure target; the
     issue path must not read past B's flag array. *)
  R.Runtime.guard rt ~write:false a;
  ignore (R.Runtime.read_i64 rt a);
  let sb = R.Rt_stats.ds_stats (R.Runtime.stats rt) h_b in
  check Alcotest.bool "frontier prefetch issued on B" true
    (sb.prefetch_issued >= 1)

let test_rt_over_budget_counted () =
  (* Regression: a deep jump-pointer chase puts more objects in flight
     than the remotable budget holds; eviction cannot reclaim data
     still on the wire, so it must give up *and say so*. *)
  let infos =
    [| { (R.Static_info.default ~sid:0) with
         prefetch = R.Static_info.Jump_pointer; obj_size = 4096 } |]
  in
  let rt =
    R.Runtime.create
      { R.Runtime.default_config with
        policy = R.Policy.All_remotable; k = 0.0;
        local_bytes = 1 lsl 20;
        (* ten objects: smaller than the jump window (4·depth = 16) *)
        remotable_bytes = 10 * 4096 }
      infos
  in
  let h = R.Runtime.ds_init rt ~sid:0 in
  let a = R.Runtime.ds_alloc rt ~handle:h ~size:(256 * 4096) in
  let touch i =
    let addr = a + (i * 4096) in
    R.Runtime.guard rt ~write:false addr;
    ignore (R.Runtime.read_i64 rt addr)
  in
  (* First traversal teaches the jump table i -> i+8. *)
  for i = 0 to 255 do
    touch i
  done;
  check Alcotest.int "no overflow while learning" 0
    (R.Rt_stats.over_budget (R.Runtime.stats rt));
  (* Second traversal: the first access chases 16 objects into a
     10-object cache — everything in flight, nothing evictable. *)
  touch 0;
  check Alcotest.bool "occupancy overflow counted" true
    (R.Rt_stats.over_budget (R.Runtime.stats rt) > 0)

let test_rt_batching_reduces_cycles () =
  (* The tentpole, end to end: the same sequential scan, batched versus
     per-object fabric; identical data, fewer cycles. *)
  let scan batching =
    let rt =
      R.Runtime.create
        { R.Runtime.default_config with
          policy = R.Policy.All_remotable; k = 0.0;
          local_bytes = 1 lsl 18; remotable_bytes = 1 lsl 17;
          prefetch_mode = R.Runtime.Pf_stride_only;
          batching;
          fabric_config =
            { R.Runtime.default_config.fabric_config with
              qp_count = (if batching then 2 else 1) } }
        [| R.Static_info.default ~sid:0 |]
    in
    let h = R.Runtime.ds_init rt ~sid:0 in
    let a = R.Runtime.ds_alloc rt ~handle:h ~size:(1 lsl 20) in
    let _ = R.Runtime.ds_alloc rt ~handle:h ~size:(1 lsl 20) in
    let t0 = R.Runtime.now rt in
    for i = 0 to 4095 do
      let addr = a + (i * 256) in
      R.Runtime.guard rt ~write:false addr;
      ignore (R.Runtime.read_i64 rt addr)
    done;
    (R.Runtime.now rt - t0, R.Runtime.fabric_stats rt)
  in
  let unbatched, fs_u = scan false in
  let batched, fs_b = scan true in
  check Alcotest.bool "batching cuts scan cycles" true (batched < unbatched);
  check Alcotest.int "unbatched path never batches" 0 fs_u.batches;
  check Alcotest.bool "batched path coalesced requests" true (fs_b.batches > 0);
  check Alcotest.bool "batches carry multiple objects" true
    (fs_b.batched_objects >= 2 * fs_b.batches)

let test_rt_wild_pointer_rejected () =
  let rt = mk_rt ~policy:R.Policy.All_remotable ~k:0.0 1 in
  let h = R.Runtime.ds_init rt ~sid:0 in
  let _ = R.Runtime.ds_alloc rt ~handle:h ~size:64 in
  let wild = R.Addr.encode ~ds:h ~offset:1_000_000 in
  (match R.Runtime.read_i64 rt wild with
   | _ -> Alcotest.fail "expected Runtime_error"
   | exception R.Runtime.Runtime_error _ -> ());
  match R.Runtime.ds_alloc rt ~handle:99 ~size:8 with
  | _ -> Alcotest.fail "expected bad handle error"
  | exception R.Runtime.Runtime_error _ -> ()

let test_rt_speculative_guard_benign () =
  let rt = mk_rt ~policy:R.Policy.All_remotable ~k:0.0 1 in
  let h = R.Runtime.ds_init rt ~sid:0 in
  let _ = R.Runtime.ds_alloc rt ~handle:h ~size:64 in
  (* Hoisted guards may target past-the-pool addresses: must not raise. *)
  R.Runtime.guard rt ~write:false (R.Addr.encode ~ds:h ~offset:1_000_000);
  R.Runtime.guard rt ~write:true (R.Addr.encode ~ds:(h + 5) ~offset:0)

let test_rt_report () =
  let rt = mk_rt ~policy:R.Policy.All_remotable ~k:0.0 2 in
  let h1 = R.Runtime.ds_init rt ~sid:0 in
  let _h2 = R.Runtime.ds_init rt ~sid:1 in
  let _ = R.Runtime.ds_alloc rt ~handle:h1 ~size:100 in
  let rep = R.Runtime.report rt in
  check Alcotest.int "two structures" 2 (List.length rep);
  let r1 = List.hd rep in
  check Alcotest.int "sid" 0 r1.r_sid;
  check Alcotest.bool "bytes recorded" true (r1.r_bytes >= 100)

(* ---------- adaptive prefetch selection ---------- *)

let test_adaptive_drops_useless_prefetcher () =
  (* A greedy-classified structure whose pointer fields lead to objects
     that are never accessed: every prefetch is wasted, accuracy stays
     at zero, and the adaptive runtime must switch policies. *)
  let infos =
    [| { (R.Static_info.default ~sid:0) with
         prefetch = R.Static_info.Greedy_recursive; obj_size = 64 };
       { (R.Static_info.default ~sid:1) with obj_size = 64 } |]
  in
  let rt =
    R.Runtime.create
      { R.Runtime.default_config with
        policy = R.Policy.All_remotable; k = 0.0;
        local_bytes = 1 lsl 14; remotable_bytes = 1 lsl 13;
        prefetch_mode = R.Runtime.Pf_adaptive; prefetch_depth = 2 }
      infos
  in
  let h_a = R.Runtime.ds_init rt ~sid:0 in
  let h_b = R.Runtime.ds_init rt ~sid:1 in
  let n = 4096 in
  let a = R.Runtime.ds_alloc rt ~handle:h_a ~size:(n * 64) in
  let b = R.Runtime.ds_alloc rt ~handle:h_b ~size:(n * 64) in
  (* Fill every object of A with pointers into B (the decoys). *)
  for i = 0 to n - 1 do
    R.Runtime.write_i64 rt (a + (i * 64)) (b + (i * 64))
  done;
  (* Sweep A repeatedly with a cache far too small: all misses, greedy
     scans fire, decoys never get used. *)
  for _ = 1 to 3 do
    for i = 0 to n - 1 do
      let addr = a + (i * 64) in
      R.Runtime.guard rt ~write:false addr;
      ignore (R.Runtime.read_i64 rt addr)
    done
  done;
  let rep_a =
    List.find (fun (r : R.Runtime.ds_report) -> r.r_handle = h_a)
      (R.Runtime.report rt)
  in
  check Alcotest.bool "adaptive switched at least once" true
    (rep_a.r_pf_switches >= 1);
  check Alcotest.bool "greedy abandoned" true (rep_a.r_prefetcher <> "greedy")

let test_adaptive_keeps_good_prefetcher () =
  (* A stride-classified structure swept sequentially: accuracy is
     high, so adaptive mode must not switch away. *)
  let infos =
    [| { (R.Static_info.default ~sid:0) with prefetch = R.Static_info.Stride } |]
  in
  let rt =
    R.Runtime.create
      { R.Runtime.default_config with
        policy = R.Policy.All_remotable; k = 0.0;
        local_bytes = 1 lsl 18; remotable_bytes = 1 lsl 17;
        prefetch_mode = R.Runtime.Pf_adaptive }
      infos
  in
  let h = R.Runtime.ds_init rt ~sid:0 in
  let a = R.Runtime.ds_alloc rt ~handle:h ~size:(1 lsl 21) in
  let _ = R.Runtime.ds_alloc rt ~handle:h ~size:(1 lsl 21) in
  (* Dense sequential sweep (many accesses per object): stride
     prefetches run far enough ahead to be timely, so the adaptive
     runtime has no reason to switch. *)
  for pass = 1 to 4 do
    ignore pass;
    for i = 0 to 511 do
      for w = 0 to 63 do
        let addr = a + (i * 4096) + (w * 64) in
        R.Runtime.guard rt ~write:false addr;
        ignore (R.Runtime.read_i64 rt addr)
      done
    done
  done;
  let rep =
    List.find (fun (r : R.Runtime.ds_report) -> r.r_handle = h)
      (R.Runtime.report rt)
  in
  check Alcotest.int "no switches" 0 rep.r_pf_switches;
  check Alcotest.string "still stride" "stride" rep.r_prefetcher

let test_rt_config_validation () =
  match
    R.Runtime.create
      { R.Runtime.default_config with local_bytes = 10; remotable_bytes = 20 }
      [||]
  with
  | _ -> Alcotest.fail "expected config rejection"
  | exception R.Runtime.Runtime_error _ -> ()

let suite =
  [ ("addr basics", `Quick, test_addr_basics);
    ("addr ranges", `Quick, test_addr_ranges);
    ("cost table 1", `Quick, test_cost_table1);
    ("fabric 59K calibration", `Quick, test_fabric_59k);
    ("fabric 46K calibration", `Quick, test_fabric_trackfm_46k);
    ("fabric queueing", `Quick, test_fabric_queueing);
    ("fabric writeback", `Quick, test_fabric_writeback_nonblocking);
    ("fabric bandwidth term", `Quick, test_fabric_bandwidth_term);
    ("fabric fetch_many amortizes", `Quick, test_fabric_fetch_many_amortizes);
    ("fabric qp dispatch", `Quick, test_fabric_qp_dispatch);
    ("fabric writeback charges proto", `Quick, test_fabric_writeback_charges_proto);
    ("fabric writeback_many coalesces", `Quick, test_fabric_writeback_many_coalesces);
    ("policy linear", `Quick, test_policy_linear);
    ("policy all-*", `Quick, test_policy_all);
    ("policy max-use", `Quick, test_policy_max_use);
    ("policy max-reach", `Quick, test_policy_max_reach);
    ("policy random deterministic", `Quick, test_policy_random_deterministic);
    ("policy explicit", `Quick, test_policy_explicit);
    ("stride prefetcher locks", `Quick, test_stride_prefetcher_locks);
    ("stride majority vote", `Quick, test_stride_prefetcher_majority);
    ("stride quiet on noise", `Quick, test_stride_prefetcher_random_stays_quiet);
    ("greedy scans on miss", `Quick, test_greedy_scans_on_miss);
    ("jump learns", `Quick, test_jump_learns_second_traversal);
    ("prefetcher of_class", `Quick, test_of_class);
    ("rt pinned untagged", `Quick, test_rt_pinned_alloc_untagged);
    ("rt remotable tagged", `Quick, test_rt_remotable_alloc_tagged);
    ("rt data roundtrip", `Quick, test_rt_data_roundtrip);
    ("rt unmanaged roundtrip", `Quick, test_rt_unmanaged_roundtrip);
    ("rt guard costs", `Quick, test_rt_guard_costs);
    ("rt remote fault cost", `Quick, test_rt_remote_fault_cost);
    ("rt pinned override", `Quick, test_rt_pinned_override_demotes);
    ("rt loop check", `Quick, test_rt_loop_check);
    ("rt clean fault fallback", `Quick, test_rt_clean_fault_fallback);
    ("rt dirty eviction", `Quick, test_rt_dirty_eviction_writes_back);
    ("rt prefetch hides latency", `Quick, test_rt_prefetch_hides_latency);
    ("rt prefetch stats", `Quick, test_rt_prefetch_stats);
    ("rt cross-structure frontier prefetch", `Quick,
     test_rt_cross_structure_prefetch_at_frontier);
    ("rt over-budget counted", `Quick, test_rt_over_budget_counted);
    ("rt batching reduces cycles", `Quick, test_rt_batching_reduces_cycles);
    ("rt wild pointer", `Quick, test_rt_wild_pointer_rejected);
    ("rt speculative guard benign", `Quick, test_rt_speculative_guard_benign);
    ("rt report", `Quick, test_rt_report);
    ("adaptive drops useless prefetcher", `Quick, test_adaptive_drops_useless_prefetcher);
    ("adaptive keeps good prefetcher", `Quick, test_adaptive_keeps_good_prefetcher);
    ("rt config validation", `Quick, test_rt_config_validation);
    qcheck prop_fabric_completion_monotone;
    qcheck prop_addr_roundtrip;
    qcheck prop_addr_arith_stays_in_ds;
    qcheck prop_policy_quota ]
