(* Tests for the runtime layer: address codec, cost tables, fabric,
   policies, prefetchers, and the runtime itself. *)

module R = Cards_runtime
module N = Cards_net

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* ---------- Addr ---------- *)

let test_addr_basics () =
  let a = R.Addr.encode ~ds:3 ~offset:4096 in
  check Alcotest.bool "managed" true (R.Addr.is_managed a);
  check Alcotest.int "ds" 3 (R.Addr.ds_of a);
  check Alcotest.int "offset" 4096 (R.Addr.offset_of a);
  let u = R.Addr.unmanaged ~offset:77 in
  check Alcotest.bool "unmanaged" false (R.Addr.is_managed u);
  check Alcotest.int "unmanaged offset" 77 (R.Addr.offset_of u)

let test_addr_ranges () =
  Alcotest.check_raises "handle 0 rejected"
    (Invalid_argument "Addr.encode: handle 0 out of range") (fun () ->
      ignore (R.Addr.encode ~ds:0 ~offset:0));
  Alcotest.check_raises "ds_of unmanaged"
    (Invalid_argument "Addr.ds_of: unmanaged address") (fun () ->
      ignore (R.Addr.ds_of 42))

let prop_addr_roundtrip =
  QCheck.Test.make ~name:"addr encode/decode roundtrip" ~count:1000
    QCheck.(pair (int_range 1 60_000) (int_range 0 1_000_000_000))
    (fun (ds, offset) ->
      let ds = min ds R.Addr.max_handle in
      let a = R.Addr.encode ~ds ~offset in
      R.Addr.is_managed a && R.Addr.ds_of a = ds && R.Addr.offset_of a = offset)

let prop_addr_arith_stays_in_ds =
  QCheck.Test.make ~name:"pointer arithmetic preserves the handle" ~count:500
    QCheck.(triple (int_range 1 100) (int_range 0 100_000) (int_range 0 10_000))
    (fun (ds, offset, delta) ->
      let a = R.Addr.encode ~ds ~offset in
      R.Addr.ds_of (a + delta) = ds && R.Addr.offset_of (a + delta) = offset + delta)

(* ---------- Cost (Table 1 calibration) ---------- *)

let test_cost_table1 () =
  check Alcotest.int "CaRDS local read" 378 R.Cost.cards.guard_local_read;
  check Alcotest.int "CaRDS local write" 384 R.Cost.cards.guard_local_write;
  check Alcotest.int "TrackFM local read" 462 R.Cost.trackfm.guard_local_read;
  check Alcotest.int "TrackFM local write" 579 R.Cost.trackfm.guard_local_write

(* ---------- Fabric ---------- *)

let test_fabric_59k () =
  (* Table 1: a 4 KiB demand fetch lands at ~59 K cycles. *)
  let f = N.Fabric.create N.Fabric.default_config in
  let t = N.Fabric.fetch f ~now:0 ~bytes:R.Cost.cards_remote_object_bytes in
  check Alcotest.bool "within 5% of 59K" true
    (abs (t - 59_000) < 59_000 / 20)

let test_fabric_trackfm_46k () =
  let f = N.Fabric.create N.Fabric.trackfm_config in
  let t = N.Fabric.fetch f ~now:0 ~bytes:4096 in
  check Alcotest.bool "within 5% of 46K" true (abs (t - 46_000) < 46_000 / 20)

let test_fabric_queueing () =
  let f = N.Fabric.create N.Fabric.default_config in
  let t1 = N.Fabric.fetch f ~now:0 ~bytes:4096 in
  let t2 = N.Fabric.fetch f ~now:0 ~bytes:4096 in
  check Alcotest.bool "second transfer serializes" true (t2 > t1);
  let st = N.Fabric.stats f in
  check Alcotest.int "two fetches" 2 st.fetches;
  check Alcotest.int "bytes counted" 8192 st.fetched_bytes;
  check Alcotest.bool "queueing recorded" true (st.queue_in_cycles > 0);
  check Alcotest.int "no outbound queueing" 0 st.queue_out_cycles

let test_fabric_writeback_nonblocking () =
  let f = N.Fabric.create N.Fabric.default_config in
  N.Fabric.writeback f ~now:0 ~bytes:4096;
  (* Outbound traffic must not delay inbound fetches. *)
  let t = N.Fabric.fetch f ~now:0 ~bytes:4096 in
  check Alcotest.bool "fetch unaffected by writeback" true (t < 60_000);
  check Alcotest.int "writeback counted" 1 (N.Fabric.stats f).writebacks;
  (* A second immediate writeback queues behind the first on the
     outbound link; the wait lands in the outbound counter only. *)
  N.Fabric.writeback f ~now:0 ~bytes:4096;
  let st = N.Fabric.stats f in
  check Alcotest.bool "outbound queueing recorded" true (st.queue_out_cycles > 0)

let test_fabric_bandwidth_term () =
  let f = N.Fabric.create N.Fabric.default_config in
  let small = N.Fabric.fetch f ~now:0 ~bytes:64 in
  N.Fabric.reset f;
  let big = N.Fabric.fetch f ~now:0 ~bytes:65536 in
  check Alcotest.bool "bigger transfers take longer" true (big > small + 10_000)

let test_fabric_fetch_many_amortizes () =
  (* Four 4 KiB objects in one request: the protocol cost is paid once,
     so the batch completes in a fraction of four serial fetches. *)
  let f = N.Fabric.create N.Fabric.default_config in
  let single = N.Fabric.fetch f ~now:0 ~bytes:4096 in
  N.Fabric.reset f;
  let tr, completions =
    N.Fabric.fetch_many f ~now:0 ~sizes:(Array.make 4 4096)
  in
  check Alcotest.int "one completion per object" 4 (Array.length completions);
  (* Per-object completions: strictly increasing, first = a plain
     fetch, last = proto + 4x serialization. *)
  check Alcotest.int "first object lands like a single fetch" single
    completions.(0);
  for i = 1 to 3 do
    check Alcotest.bool "completions increase" true
      (completions.(i) > completions.(i - 1))
  done;
  check Alcotest.int "transfer completes with its last object"
    completions.(3) tr.N.Fabric.t_complete;
  check Alcotest.bool "batch of 4 beats 2 serial fetches" true
    (tr.N.Fabric.t_complete < 2 * single);
  let st = N.Fabric.stats f in
  check Alcotest.int "objects counted as fetches" 4 st.fetches;
  check Alcotest.int "one batch" 1 st.batches;
  check Alcotest.int "batched objects" 4 st.batched_objects;
  check Alcotest.int "bytes counted" (4 * 4096) st.fetched_bytes

let test_fabric_qp_dispatch () =
  (* Two queue pairs: two simultaneous fetches ride different QPs with
     no queueing; the third queues behind the least-loaded one. *)
  let f =
    N.Fabric.create { N.Fabric.default_config with qp_count = 2 }
  in
  let t1 = N.Fabric.fetch_info f ~now:0 ~bytes:4096 in
  let t2 = N.Fabric.fetch_info f ~now:0 ~bytes:4096 in
  check Alcotest.int "first not queued" 0 t1.N.Fabric.t_queued;
  check Alcotest.int "second not queued" 0 t2.N.Fabric.t_queued;
  check Alcotest.bool "different QPs" true
    (t1.N.Fabric.t_qp <> t2.N.Fabric.t_qp);
  let t3 = N.Fabric.fetch_info f ~now:0 ~bytes:4096 in
  check Alcotest.bool "third queues" true (t3.N.Fabric.t_queued > 0);
  let st = N.Fabric.stats f in
  check Alcotest.int "per-QP counters sized" 2
    (Array.length st.qp_queue_cycles);
  check Alcotest.int "per-QP queueing sums to the total" st.queue_in_cycles
    (Array.fold_left ( + ) 0 st.qp_queue_cycles)

let test_fabric_writeback_charges_proto () =
  (* Writebacks are posted, but the request still crosses the wire:
     outbound occupancy covers protocol + serialization, same cost
     structure as a fetch (DESIGN.md §fabric). *)
  let cfg = N.Fabric.default_config in
  let f = N.Fabric.create cfg in
  N.Fabric.writeback f ~now:0 ~bytes:4096;
  let busy = N.Fabric.outbound_busy_until f in
  check Alcotest.bool "outbound occupied past proto_cycles" true
    (busy > cfg.proto_cycles);
  check Alcotest.bool "occupancy matches a fetch's cost" true
    (busy = N.Fabric.nominal_fetch_cycles f ~bytes:4096)

let test_fabric_writeback_many_coalesces () =
  (* A coalesced eviction burst pays the protocol cost once. *)
  let f1 = N.Fabric.create N.Fabric.default_config in
  N.Fabric.writeback f1 ~now:0 ~bytes:4096;
  N.Fabric.writeback f1 ~now:0 ~bytes:4096;
  let serial = N.Fabric.outbound_busy_until f1 in
  let f2 = N.Fabric.create N.Fabric.default_config in
  N.Fabric.writeback_many f2 ~now:0 ~count:2 ~bytes:8192;
  let batched = N.Fabric.outbound_busy_until f2 in
  check Alcotest.bool "batched burst frees the wire sooner" true
    (batched < serial);
  let st = N.Fabric.stats f2 in
  check Alcotest.int "objects counted" 2 st.writebacks;
  check Alcotest.int "one outbound batch" 1 st.wb_batches;
  check Alcotest.int "bytes counted" 8192 st.written_bytes

let prop_fabric_completion_monotone =
  QCheck.Test.make ~name:"fabric completions are monotone in time" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 20) (int_range 64 65536))
    (fun sizes ->
      let f = N.Fabric.create N.Fabric.default_config in
      let now = ref 0 in
      let last = ref 0 in
      List.for_all
        (fun bytes ->
          now := !now + 100;
          let t = N.Fabric.fetch f ~now:!now ~bytes in
          let ok = t >= !last && t > !now in
          last := t;
          ok)
        sizes)

(* ---------- Policy ---------- *)

let infos_n n =
  Array.init n (fun sid ->
      { (R.Static_info.default ~sid) with
        score_use = n - sid;        (* descending: sid 0 hottest *)
        score_reach = sid })        (* ascending: last sid deepest *)

let count_true = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0

let test_policy_linear () =
  let p = R.Policy.pinned_preference R.Policy.Linear ~infos:(infos_n 10) ~k:0.5 in
  check Alcotest.int "five pinned" 5 (count_true p);
  for i = 0 to 4 do
    check Alcotest.bool "prefix pinned" true p.(i)
  done

let test_policy_all () =
  let infos = infos_n 6 in
  check Alcotest.int "all-remotable pins none" 0
    (count_true (R.Policy.pinned_preference R.Policy.All_remotable ~infos ~k:1.0));
  check Alcotest.int "all-local pins all" 6
    (count_true (R.Policy.pinned_preference R.Policy.All_local ~infos ~k:0.0))

let test_policy_max_use () =
  let p = R.Policy.pinned_preference R.Policy.Max_use ~infos:(infos_n 10) ~k:0.3 in
  (* scores descend with sid: top-3 = sids 0,1,2 *)
  check Alcotest.bool "top scorers pinned" true (p.(0) && p.(1) && p.(2));
  check Alcotest.int "exactly three" 3 (count_true p)

let test_policy_max_reach () =
  let p = R.Policy.pinned_preference R.Policy.Max_reach ~infos:(infos_n 10) ~k:0.2 in
  check Alcotest.bool "deepest pinned" true (p.(9) && p.(8));
  check Alcotest.int "exactly two" 2 (count_true p)

let test_policy_random_deterministic () =
  let infos = infos_n 20 in
  let a = R.Policy.pinned_preference (R.Policy.Random 5) ~infos ~k:0.5 in
  let b = R.Policy.pinned_preference (R.Policy.Random 5) ~infos ~k:0.5 in
  check Alcotest.bool "same seed, same set" true (a = b);
  check Alcotest.int "half pinned" 10 (count_true a)

let test_policy_explicit () =
  let set = [| true; false; true |] in
  let p = R.Policy.pinned_preference (R.Policy.Explicit set) ~infos:(infos_n 3) ~k:0.0 in
  check Alcotest.bool "copied through" true (p = set);
  Alcotest.check_raises "length checked"
    (Invalid_argument "Policy.pinned_preference: explicit set has wrong length")
    (fun () ->
      ignore (R.Policy.pinned_preference (R.Policy.Explicit set) ~infos:(infos_n 4) ~k:0.0))

let prop_policy_quota =
  QCheck.Test.make ~name:"k-fraction quota respected" ~count:200
    QCheck.(pair (int_range 1 40) (float_range 0.0 1.0))
    (fun (n, k) ->
      let infos = infos_n n in
      let quota = int_of_float (ceil (k *. float_of_int n)) in
      List.for_all
        (fun pol ->
          count_true (R.Policy.pinned_preference pol ~infos ~k) = quota)
        [ R.Policy.Linear; R.Policy.Random 3; R.Policy.Max_use; R.Policy.Max_reach ])

(* ---------- Prefetcher ---------- *)

let no_scan () = []

(* Expand a target list to the individual objects it names. *)
let objs_of targets =
  List.concat_map
    (fun (t : R.Prefetcher.target) ->
      List.init t.t_len (fun i -> t.t_obj + i))
    targets

let test_stride_prefetcher_locks () =
  let p = R.Prefetcher.stride ~depth:3 in
  (* Feed a stride-1 stream; after the window fills it must predict
     ahead, emitting the window as contiguous runs. *)
  let all = ref [] in
  let runs = ref [] in
  for o = 0 to 9 do
    let out = R.Prefetcher.on_access p ~obj:o ~missed:true ~scan:no_scan in
    runs := !runs @ out;
    all := !all @ objs_of out
  done;
  (* The issued window must reach past the last access by the depth. *)
  check Alcotest.bool "window covers obj+depth" true
    (List.mem 10 !all && List.mem 11 !all && List.mem 12 !all);
  (* Runs only ever point ahead of the access stream. *)
  check Alcotest.bool "all targets ahead" true (List.for_all (fun o -> o >= 5) !all);
  (* No object is requested twice... *)
  check Alcotest.int "no duplicate objects"
    (List.length !all)
    (List.length (List.sort_uniq compare !all));
  (* ...and the window arrives as real runs a batching fabric can
     coalesce, not as per-object targets. *)
  check Alcotest.bool "emits multi-object runs" true
    (List.exists (fun (t : R.Prefetcher.target) -> t.t_len >= 3) !runs)

let test_stride_prefetcher_majority () =
  let p = R.Prefetcher.stride ~depth:2 in
  (* Mostly stride 2 with one hiccup: majority must still lock 2. *)
  List.iter
    (fun o -> ignore (R.Prefetcher.on_access p ~obj:o ~missed:false ~scan:no_scan))
    [ 0; 2; 4; 6; 7; 9; 11; 13 ];
  let out = R.Prefetcher.on_access p ~obj:15 ~missed:false ~scan:no_scan in
  check (Alcotest.list Alcotest.int) "stride 2 locked" [ 17; 19 ] (objs_of out)

let test_stride_prefetcher_random_stays_quiet () =
  let p = R.Prefetcher.stride ~depth:4 in
  let rng = Cards_util.Rng.create 11 in
  let noisy = ref 0 in
  for _ = 1 to 50 do
    let o = Cards_util.Rng.int rng 10_000 in
    let out = R.Prefetcher.on_access p ~obj:o ~missed:true ~scan:no_scan in
    noisy := !noisy + List.length (objs_of out)
  done;
  check Alcotest.bool "no majority, few prefetches" true (!noisy < 20)

let test_greedy_scans_on_miss () =
  let p = R.Prefetcher.greedy ~fanout:2 in
  let scan () =
    [ { R.Prefetcher.t_ds = 2; t_obj = 7; t_len = 1 };
      { R.Prefetcher.t_ds = 2; t_obj = 8; t_len = 1 };
      { R.Prefetcher.t_ds = 2; t_obj = 9; t_len = 1 } ]
  in
  let out = R.Prefetcher.on_access p ~obj:0 ~missed:true ~scan in
  check Alcotest.int "fanout bounded" 2 (List.length out);
  let out2 = R.Prefetcher.on_access p ~obj:0 ~missed:false ~scan in
  check Alcotest.int "no scan on hit" 0 (List.length out2)

let test_jump_learns_second_traversal () =
  let p = R.Prefetcher.jump ~jump:2 ~depth:1 in
  let seq = [ 10; 20; 30; 40; 50 ] in
  (* First traversal: nothing useful predicted yet, table learns. *)
  List.iter
    (fun o -> ignore (R.Prefetcher.on_access p ~obj:o ~missed:true ~scan:no_scan))
    seq;
  (* Second traversal: at 10 it should jump toward 30 (2 ahead). *)
  let out = R.Prefetcher.on_access p ~obj:10 ~missed:true ~scan:no_scan in
  check Alcotest.bool "jump target learned" true
    (List.exists (fun t -> t.R.Prefetcher.t_obj = 30) out)

let test_of_class () =
  check Alcotest.bool "no_prefetch -> none" true
    (R.Prefetcher.of_class R.Static_info.No_prefetch ~depth:4 = None);
  (match R.Prefetcher.of_class R.Static_info.Stride ~depth:4 with
   | Some p -> check Alcotest.string "stride" "stride" (R.Prefetcher.kind_name p)
   | None -> Alcotest.fail "expected stride");
  match R.Prefetcher.of_class R.Static_info.Jump_pointer ~depth:4 with
  | Some p -> check Alcotest.string "jump" "jump" (R.Prefetcher.kind_name p)
  | None -> Alcotest.fail "expected jump"

(* ---------- Runtime ---------- *)

let mk_rt ?(policy = R.Policy.All_local) ?(k = 1.0) ?(local = 1 lsl 22)
    ?(remot = 1 lsl 20) ?(prefetch = R.Runtime.Pf_none) n_infos =
  let infos = Array.init n_infos (fun sid -> R.Static_info.default ~sid) in
  R.Runtime.create
    { R.Runtime.default_config with
      policy; k; local_bytes = local; remotable_bytes = remot;
      prefetch_mode = prefetch }
    infos

let test_rt_pinned_alloc_untagged () =
  let rt = mk_rt 1 in
  let h = R.Runtime.ds_init rt ~sid:0 in
  let a = R.Runtime.ds_alloc rt ~handle:h ~size:256 in
  check Alcotest.bool "pinned allocation is untagged" false (R.Addr.is_managed a);
  check Alcotest.bool "pinned bytes accounted" true (R.Runtime.pinned_bytes rt >= 256)

let test_rt_remotable_alloc_tagged () =
  let rt = mk_rt ~policy:R.Policy.All_remotable ~k:0.0 1 in
  let h = R.Runtime.ds_init rt ~sid:0 in
  let a = R.Runtime.ds_alloc rt ~handle:h ~size:256 in
  check Alcotest.bool "remotable allocation is tagged" true (R.Addr.is_managed a);
  check Alcotest.int "handle embedded" h (R.Addr.ds_of a)

let test_rt_data_roundtrip () =
  let rt = mk_rt ~policy:R.Policy.All_remotable ~k:0.0 1 in
  let h = R.Runtime.ds_init rt ~sid:0 in
  let a = R.Runtime.ds_alloc rt ~handle:h ~size:128 in
  R.Runtime.write_i64 rt a 12345;
  R.Runtime.write_f64 rt (a + 8) 2.75;
  check Alcotest.int "i64 roundtrip" 12345 (R.Runtime.read_i64 rt a);
  check (Alcotest.float 1e-12) "f64 roundtrip" 2.75 (R.Runtime.read_f64 rt (a + 8))

let test_rt_unmanaged_roundtrip () =
  let rt = mk_rt 0 in
  let a = R.Runtime.alloc_unmanaged rt ~size:64 in
  R.Runtime.write_i64 rt a (-7);
  check Alcotest.int "unmanaged i64" (-7) (R.Runtime.read_i64 rt a)

let test_rt_guard_costs () =
  let rt = mk_rt ~policy:R.Policy.All_remotable ~k:0.0 1 in
  let h = R.Runtime.ds_init rt ~sid:0 in
  let a = R.Runtime.ds_alloc rt ~handle:h ~size:4096 in
  (* Object is resident right after allocation: local-read guard. *)
  let t0 = R.Runtime.now rt in
  R.Runtime.guard rt ~write:false a;
  check Alcotest.int "local read guard = 378" 378 (R.Runtime.now rt - t0);
  let t1 = R.Runtime.now rt in
  R.Runtime.guard rt ~write:true a;
  check Alcotest.int "local write guard = 384" 384 (R.Runtime.now rt - t1);
  let t2 = R.Runtime.now rt in
  R.Runtime.guard rt ~write:false 99 (* unmanaged *);
  check Alcotest.int "unmanaged custody check = 3" 3 (R.Runtime.now rt - t2)

let test_rt_remote_fault_cost () =
  (* Tiny cache: allocate two objects, evict the first, re-touch it. *)
  let rt = mk_rt ~policy:R.Policy.All_remotable ~k:0.0 ~local:8192 ~remot:4096 1 in
  let h = R.Runtime.ds_init rt ~sid:0 in
  let a = R.Runtime.ds_alloc rt ~handle:h ~size:4096 in
  let b = R.Runtime.ds_alloc rt ~handle:h ~size:4096 in
  ignore b;
  (* b's allocation evicted a (budget = one object). *)
  let t0 = R.Runtime.now rt in
  R.Runtime.guard rt ~write:false a;
  let dt = R.Runtime.now rt - t0 in
  check Alcotest.bool "remote fault ~59K cycles" true
    (dt > 55_000 && dt < 70_000);
  let tot = R.Rt_stats.total (R.Runtime.stats rt) in
  check Alcotest.int "one remote fault" 1 tot.remote_faults;
  check Alcotest.bool "one eviction" true (tot.evictions >= 1)

let test_rt_pinned_override_demotes () =
  (* Pinned budget too small: the structure is demoted at allocation
     and later allocations come back tagged. *)
  let rt = mk_rt ~local:8192 ~remot:4096 1 in (* pinned budget = 4096 *)
  let h = R.Runtime.ds_init rt ~sid:0 in
  let a = R.Runtime.ds_alloc rt ~handle:h ~size:4096 in
  let b = R.Runtime.ds_alloc rt ~handle:h ~size:4096 in
  check Alcotest.bool "first fits pinned (untagged)" false (R.Addr.is_managed a);
  check Alcotest.bool "second overrides to remotable (tagged)" true
    (R.Addr.is_managed b);
  let tot = R.Rt_stats.total (R.Runtime.stats rt) in
  check Alcotest.int "demotion recorded" 1 tot.demotions

let test_rt_loop_check () =
  let rt = mk_rt ~local:8192 ~remot:4096 2 in
  let h1 = R.Runtime.ds_init rt ~sid:0 in
  let h2 = R.Runtime.ds_init rt ~sid:1 in
  let a = R.Runtime.ds_alloc rt ~handle:h1 ~size:1024 in    (* pinned *)
  let big = R.Runtime.ds_alloc rt ~handle:h2 ~size:8192 in  (* demoted *)
  check Alcotest.bool "untagged base passes" true (R.Runtime.loop_check rt [ a ]);
  check Alcotest.bool "tagged base fails" false (R.Runtime.loop_check rt [ a; big ]);
  check Alcotest.bool "empty passes" true (R.Runtime.loop_check rt [])

let test_rt_clean_fault_fallback () =
  (* An unguarded access to an evicted object must still work (trap +
     fetch), and be counted as a clean fault. *)
  let rt = mk_rt ~policy:R.Policy.All_remotable ~k:0.0 ~local:8192 ~remot:4096 1 in
  let h = R.Runtime.ds_init rt ~sid:0 in
  let a = R.Runtime.ds_alloc rt ~handle:h ~size:4096 in
  R.Runtime.write_i64 rt a 31337;
  (* Two further allocations: the first spends a's CLOCK second chance
     (the write set its reference bit), the second evicts it. *)
  let _ = R.Runtime.ds_alloc rt ~handle:h ~size:4096 in
  let _ = R.Runtime.ds_alloc rt ~handle:h ~size:4096 in
  check Alcotest.int "data survives eviction+refetch" 31337 (R.Runtime.read_i64 rt a);
  let tot = R.Rt_stats.total (R.Runtime.stats rt) in
  check Alcotest.bool "clean fault recorded" true (tot.clean_faults >= 1)

let test_rt_dirty_eviction_writes_back () =
  let rt = mk_rt ~policy:R.Policy.All_remotable ~k:0.0 ~local:8192 ~remot:4096 1 in
  let h = R.Runtime.ds_init rt ~sid:0 in
  let a = R.Runtime.ds_alloc rt ~handle:h ~size:4096 in
  R.Runtime.guard rt ~write:true a;
  R.Runtime.write_i64 rt a 1;
  (* Spend the second chance, then force the dirty eviction. *)
  let _ = R.Runtime.ds_alloc rt ~handle:h ~size:4096 in
  let _ = R.Runtime.ds_alloc rt ~handle:h ~size:4096 in
  let fs = R.Runtime.fabric_stats rt in
  check Alcotest.bool "dirty eviction wrote back" true (fs.writebacks >= 1)

let test_rt_prefetch_hides_latency () =
  (* Sequential scan with stride prefetch vs without: prefetching must
     cut the total cycles. *)
  let scan prefetch =
    let rt =
      mk_rt ~policy:R.Policy.All_remotable ~k:0.0 ~local:(1 lsl 18)
        ~remot:(1 lsl 17) ~prefetch 1
    in
    let h = R.Runtime.ds_init rt ~sid:0 in
    let a = R.Runtime.ds_alloc rt ~handle:h ~size:(1 lsl 20) in
    (* Evict everything by allocating another large structure. *)
    let _ = R.Runtime.ds_alloc rt ~handle:h ~size:(1 lsl 20) in
    let t0 = R.Runtime.now rt in
    for i = 0 to 4095 do
      let addr = a + (i * 256) in
      R.Runtime.guard rt ~write:false addr;
      ignore (R.Runtime.read_i64 rt addr)
    done;
    R.Runtime.now rt - t0
  in
  let without = scan R.Runtime.Pf_none in
  let with_pf = scan R.Runtime.Pf_stride_only in
  check Alcotest.bool "prefetch cuts cycles" true
    (float_of_int with_pf < 0.8 *. float_of_int without)

let test_rt_prefetch_stats () =
  let rt =
    mk_rt ~policy:R.Policy.All_remotable ~k:0.0 ~local:(1 lsl 18)
      ~remot:(1 lsl 17) ~prefetch:R.Runtime.Pf_stride_only 1
  in
  let h = R.Runtime.ds_init rt ~sid:0 in
  let a = R.Runtime.ds_alloc rt ~handle:h ~size:(1 lsl 20) in
  let _ = R.Runtime.ds_alloc rt ~handle:h ~size:(1 lsl 20) in
  for i = 0 to 255 do
    let addr = a + (i * 4096) in
    R.Runtime.guard rt ~write:false addr;
    ignore (R.Runtime.read_i64 rt addr)
  done;
  let d = R.Rt_stats.ds_stats (R.Runtime.stats rt) h in
  check Alcotest.bool "prefetches issued" true (d.prefetch_issued > 0);
  check Alcotest.bool "prefetches used" true (d.prefetch_used > 0);
  let acc =
    match R.Rt_stats.prefetch_accuracy d with
    | Some a -> a
    | None -> Alcotest.fail "accuracy should have data after issues"
  in
  check Alcotest.bool "accuracy in range" true (acc >= 0.0 && acc <= 1.0);
  let cov = R.Rt_stats.prefetch_coverage d in
  check Alcotest.bool "coverage positive" true (cov > 0.0 && cov <= 1.0)

let test_rt_cross_structure_prefetch_at_frontier () =
  (* Regression: issuing a prefetch for another structure's object at
     the pool frontier must grow the target's flag array *before*
     reading it.  A greedy prefetcher on A chases a pointer to the last
     object of B. *)
  let infos =
    [| { (R.Static_info.default ~sid:0) with
         prefetch = R.Static_info.Greedy_recursive; obj_size = 64 };
       { (R.Static_info.default ~sid:1) with obj_size = 64 };
       { (R.Static_info.default ~sid:2) with obj_size = 64 } |]
  in
  let rt =
    R.Runtime.create
      { R.Runtime.default_config with
        policy = R.Policy.All_remotable; k = 0.0;
        local_bytes = 1 lsl 20; remotable_bytes = 64 * 64 }
      infos
  in
  let h_a = R.Runtime.ds_init rt ~sid:0 in
  let h_b = R.Runtime.ds_init rt ~sid:1 in
  let h_c = R.Runtime.ds_init rt ~sid:2 in
  let b = R.Runtime.ds_alloc rt ~handle:h_b ~size:(128 * 64) in
  let a = R.Runtime.ds_alloc rt ~handle:h_a ~size:64 in
  (* A's only object points at B's frontier object. *)
  R.Runtime.write_i64 rt a (b + (127 * 64));
  (* Flood the cache so both A's object and B's frontier are evicted. *)
  let _ = R.Runtime.ds_alloc rt ~handle:h_c ~size:(128 * 64) in
  (* Miss on A: the greedy scan emits the cross-structure target; the
     issue path must not read past B's flag array. *)
  R.Runtime.guard rt ~write:false a;
  ignore (R.Runtime.read_i64 rt a);
  let sb = R.Rt_stats.ds_stats (R.Runtime.stats rt) h_b in
  check Alcotest.bool "frontier prefetch issued on B" true
    (sb.prefetch_issued >= 1)

(* ---------- layout-aware prefetch sizing (byte budgets) ---------- *)

(* The eviction+scan workload under an explicit prefetch sizing: one
   structure of [obj] bytes per object, scanned object by object after
   a flood eviction.  Returns every observable — total cycles, the
   aggregate and per-ds counters, and the fabric stats. *)
let sized_scan ?prefetch_bytes ?(depth = 4) ~obj () =
  let infos = [| { (R.Static_info.default ~sid:0) with obj_size = obj } |] in
  let rt =
    R.Runtime.create
      { R.Runtime.default_config with
        policy = R.Policy.All_remotable; k = 0.0;
        local_bytes = 1 lsl 20; remotable_bytes = 1 lsl 17;
        prefetch_mode = R.Runtime.Pf_stride_only;
        prefetch_depth = depth; prefetch_bytes }
      infos
  in
  let h = R.Runtime.ds_init rt ~sid:0 in
  let a = R.Runtime.ds_alloc rt ~handle:h ~size:(256 * obj) in
  let _ = R.Runtime.ds_alloc rt ~handle:h ~size:(1 lsl 18) in
  for i = 0 to 255 do
    let addr = a + (i * obj) in
    R.Runtime.guard rt ~write:false addr;
    ignore (R.Runtime.read_i64 rt addr)
  done;
  ( R.Runtime.now rt,
    R.Rt_stats.total (R.Runtime.stats rt),
    R.Rt_stats.ds_stats (R.Runtime.stats rt) h,
    R.Runtime.fabric_stats rt )

let test_rt_prefetch_bytes_matches_depth () =
  (* A byte budget of d * obj_size must be bit-identical to the fixed
     depth d — the byte mode changes how the depth is derived, never
     what a given depth does.  The floor division and both clamps are
     pinned the same way. *)
  List.iter
    (fun (label, bytes, depth) ->
      let byte_run = sized_scan ~prefetch_bytes:bytes ~obj:4096 () in
      let depth_run = sized_scan ~depth ~obj:4096 () in
      check Alcotest.bool label true (byte_run = depth_run))
    [ ("4 objects of budget = depth 4", 4 * 4096, 4);
      ("floor division (16x + change = depth 16)", (16 * 4096) + 123, 16);
      ("clamped up to depth 1", 100, 1);
      ("clamped down to depth 64", 1 lsl 30, 64) ]

let test_rt_prefetch_bytes_smaller_objects_deeper () =
  (* The factorization payoff: under the same byte budget, a structure
     of 512 B objects runs 32 deep where 4 KiB objects run 4 deep —
     checked against the explicit depths, so the derivation itself is
     what's under test. *)
  let budget = 16 * 1024 in
  check Alcotest.bool "512 B objects run 32 deep" true
    (sized_scan ~prefetch_bytes:budget ~obj:512 ()
     = sized_scan ~depth:32 ~obj:512 ());
  check Alcotest.bool "4 KiB objects run 4 deep" true
    (sized_scan ~prefetch_bytes:budget ~obj:4096 ()
     = sized_scan ~depth:4 ~obj:4096 ());
  (* And the two depths genuinely behave differently at 512 B. *)
  check Alcotest.bool "deeper run is observable" true
    (sized_scan ~prefetch_bytes:budget ~obj:512 ()
     <> sized_scan ~depth:4 ~obj:512 ())

let test_rt_prefetch_bytes_accounting_exact () =
  (* Mixed object sizes under one byte budget: per-structure
     fetched-bytes must still sum exactly to the fabric total. *)
  let infos =
    [| R.Static_info.default ~sid:0;  (* 4096 B objects, depth 4 *)
       { (R.Static_info.default ~sid:1) with obj_size = 512 } (* depth 32 *) |]
  in
  let rt =
    R.Runtime.create
      { R.Runtime.default_config with
        policy = R.Policy.All_remotable; k = 0.0;
        local_bytes = 1 lsl 21; remotable_bytes = 1 lsl 17;
        prefetch_mode = R.Runtime.Pf_stride_only;
        prefetch_bytes = Some (16 * 1024) }
      infos
  in
  let h0 = R.Runtime.ds_init rt ~sid:0 in
  let h1 = R.Runtime.ds_init rt ~sid:1 in
  let a0 = R.Runtime.ds_alloc rt ~handle:h0 ~size:(128 * 4096) in
  let a1 = R.Runtime.ds_alloc rt ~handle:h1 ~size:(256 * 512) in
  let _ = R.Runtime.ds_alloc rt ~handle:h0 ~size:(1 lsl 18) in
  for i = 0 to 255 do
    let addr = a1 + (i * 512) in
    R.Runtime.guard rt ~write:false addr;
    ignore (R.Runtime.read_i64 rt addr)
  done;
  for i = 0 to 127 do
    let addr = a0 + (i * 4096) in
    R.Runtime.guard rt ~write:false addr;
    ignore (R.Runtime.read_i64 rt addr)
  done;
  let s0 = R.Rt_stats.ds_stats (R.Runtime.stats rt) h0 in
  let s1 = R.Rt_stats.ds_stats (R.Runtime.stats rt) h1 in
  let fs = R.Runtime.fabric_stats rt in
  check Alcotest.int "fetched bytes sum exactly"
    fs.N.Fabric.fetched_bytes
    (s0.fetched_bytes + s1.fetched_bytes);
  check Alcotest.bool "both structures prefetched" true
    (s0.prefetch_issued > 0 && s1.prefetch_issued > 0)

let test_rt_over_budget_counted () =
  (* Regression: a deep jump-pointer chase puts more objects in flight
     than the remotable budget holds; eviction cannot reclaim data
     still on the wire, so it must give up *and say so*. *)
  let infos =
    [| { (R.Static_info.default ~sid:0) with
         prefetch = R.Static_info.Jump_pointer; obj_size = 4096 } |]
  in
  let rt =
    R.Runtime.create
      { R.Runtime.default_config with
        policy = R.Policy.All_remotable; k = 0.0;
        local_bytes = 1 lsl 20;
        (* ten objects: smaller than the jump window (4·depth = 16) *)
        remotable_bytes = 10 * 4096 }
      infos
  in
  let h = R.Runtime.ds_init rt ~sid:0 in
  let a = R.Runtime.ds_alloc rt ~handle:h ~size:(256 * 4096) in
  let touch i =
    let addr = a + (i * 4096) in
    R.Runtime.guard rt ~write:false addr;
    ignore (R.Runtime.read_i64 rt addr)
  in
  (* First traversal teaches the jump table i -> i+8. *)
  for i = 0 to 255 do
    touch i
  done;
  check Alcotest.int "no overflow while learning" 0
    (R.Rt_stats.over_budget (R.Runtime.stats rt));
  (* Second traversal: the first access chases 16 objects into a
     10-object cache — everything in flight, nothing evictable. *)
  touch 0;
  check Alcotest.bool "occupancy overflow counted" true
    (R.Rt_stats.over_budget (R.Runtime.stats rt) > 0)

let test_rt_batching_reduces_cycles () =
  (* The tentpole, end to end: the same sequential scan, batched versus
     per-object fabric; identical data, fewer cycles. *)
  let scan batching =
    let rt =
      R.Runtime.create
        { R.Runtime.default_config with
          policy = R.Policy.All_remotable; k = 0.0;
          local_bytes = 1 lsl 18; remotable_bytes = 1 lsl 17;
          prefetch_mode = R.Runtime.Pf_stride_only;
          batching;
          fabric_config =
            { R.Runtime.default_config.fabric_config with
              qp_count = (if batching then 2 else 1) } }
        [| R.Static_info.default ~sid:0 |]
    in
    let h = R.Runtime.ds_init rt ~sid:0 in
    let a = R.Runtime.ds_alloc rt ~handle:h ~size:(1 lsl 20) in
    let _ = R.Runtime.ds_alloc rt ~handle:h ~size:(1 lsl 20) in
    let t0 = R.Runtime.now rt in
    for i = 0 to 4095 do
      let addr = a + (i * 256) in
      R.Runtime.guard rt ~write:false addr;
      ignore (R.Runtime.read_i64 rt addr)
    done;
    (R.Runtime.now rt - t0, R.Runtime.fabric_stats rt)
  in
  let unbatched, fs_u = scan false in
  let batched, fs_b = scan true in
  check Alcotest.bool "batching cuts scan cycles" true (batched < unbatched);
  check Alcotest.int "unbatched path never batches" 0 fs_u.batches;
  check Alcotest.bool "batched path coalesced requests" true (fs_b.batches > 0);
  check Alcotest.bool "batches carry multiple objects" true
    (fs_b.batched_objects >= 2 * fs_b.batches)

let test_rt_wild_pointer_rejected () =
  let rt = mk_rt ~policy:R.Policy.All_remotable ~k:0.0 1 in
  let h = R.Runtime.ds_init rt ~sid:0 in
  let _ = R.Runtime.ds_alloc rt ~handle:h ~size:64 in
  let wild = R.Addr.encode ~ds:h ~offset:1_000_000 in
  (match R.Runtime.read_i64 rt wild with
   | _ -> Alcotest.fail "expected Runtime_error"
   | exception R.Runtime.Runtime_error _ -> ());
  match R.Runtime.ds_alloc rt ~handle:99 ~size:8 with
  | _ -> Alcotest.fail "expected bad handle error"
  | exception R.Runtime.Runtime_error _ -> ()

let test_rt_speculative_guard_benign () =
  let rt = mk_rt ~policy:R.Policy.All_remotable ~k:0.0 1 in
  let h = R.Runtime.ds_init rt ~sid:0 in
  let _ = R.Runtime.ds_alloc rt ~handle:h ~size:64 in
  (* Hoisted guards may target past-the-pool addresses: must not raise. *)
  R.Runtime.guard rt ~write:false (R.Addr.encode ~ds:h ~offset:1_000_000);
  R.Runtime.guard rt ~write:true (R.Addr.encode ~ds:(h + 5) ~offset:0)

let test_rt_report () =
  let rt = mk_rt ~policy:R.Policy.All_remotable ~k:0.0 2 in
  let h1 = R.Runtime.ds_init rt ~sid:0 in
  let _h2 = R.Runtime.ds_init rt ~sid:1 in
  let _ = R.Runtime.ds_alloc rt ~handle:h1 ~size:100 in
  let rep = R.Runtime.report rt in
  check Alcotest.int "two structures" 2 (List.length rep);
  let r1 = List.hd rep in
  check Alcotest.int "sid" 0 r1.r_sid;
  check Alcotest.bool "bytes recorded" true (r1.r_bytes >= 100)

(* ---------- adaptive prefetch selection ---------- *)

let test_adaptive_drops_useless_prefetcher () =
  (* A greedy-classified structure whose pointer fields lead to objects
     that are never accessed: every prefetch is wasted, accuracy stays
     at zero, and the adaptive runtime must switch policies. *)
  let infos =
    [| { (R.Static_info.default ~sid:0) with
         prefetch = R.Static_info.Greedy_recursive; obj_size = 64 };
       { (R.Static_info.default ~sid:1) with obj_size = 64 } |]
  in
  let rt =
    R.Runtime.create
      { R.Runtime.default_config with
        policy = R.Policy.All_remotable; k = 0.0;
        local_bytes = 1 lsl 14; remotable_bytes = 1 lsl 13;
        prefetch_mode = R.Runtime.Pf_adaptive; prefetch_depth = 2 }
      infos
  in
  let h_a = R.Runtime.ds_init rt ~sid:0 in
  let h_b = R.Runtime.ds_init rt ~sid:1 in
  let n = 4096 in
  let a = R.Runtime.ds_alloc rt ~handle:h_a ~size:(n * 64) in
  let b = R.Runtime.ds_alloc rt ~handle:h_b ~size:(n * 64) in
  (* Fill every object of A with pointers into B (the decoys). *)
  for i = 0 to n - 1 do
    R.Runtime.write_i64 rt (a + (i * 64)) (b + (i * 64))
  done;
  (* Sweep A repeatedly with a cache far too small: all misses, greedy
     scans fire, decoys never get used. *)
  for _ = 1 to 3 do
    for i = 0 to n - 1 do
      let addr = a + (i * 64) in
      R.Runtime.guard rt ~write:false addr;
      ignore (R.Runtime.read_i64 rt addr)
    done
  done;
  let rep_a =
    List.find (fun (r : R.Runtime.ds_report) -> r.r_handle = h_a)
      (R.Runtime.report rt)
  in
  check Alcotest.bool "adaptive switched at least once" true
    (rep_a.r_pf_switches >= 1);
  check Alcotest.bool "greedy abandoned" true (rep_a.r_prefetcher <> "greedy")

let test_adaptive_keeps_good_prefetcher () =
  (* A stride-classified structure swept sequentially: accuracy is
     high, so adaptive mode must not switch away. *)
  let infos =
    [| { (R.Static_info.default ~sid:0) with prefetch = R.Static_info.Stride } |]
  in
  let rt =
    R.Runtime.create
      { R.Runtime.default_config with
        policy = R.Policy.All_remotable; k = 0.0;
        local_bytes = 1 lsl 18; remotable_bytes = 1 lsl 17;
        prefetch_mode = R.Runtime.Pf_adaptive }
      infos
  in
  let h = R.Runtime.ds_init rt ~sid:0 in
  let a = R.Runtime.ds_alloc rt ~handle:h ~size:(1 lsl 21) in
  let _ = R.Runtime.ds_alloc rt ~handle:h ~size:(1 lsl 21) in
  (* Dense sequential sweep (many accesses per object): stride
     prefetches run far enough ahead to be timely, so the adaptive
     runtime has no reason to switch. *)
  for pass = 1 to 4 do
    ignore pass;
    for i = 0 to 511 do
      for w = 0 to 63 do
        let addr = a + (i * 4096) + (w * 64) in
        R.Runtime.guard rt ~write:false addr;
        ignore (R.Runtime.read_i64 rt addr)
      done
    done
  done;
  let rep =
    List.find (fun (r : R.Runtime.ds_report) -> r.r_handle = h)
      (R.Runtime.report rt)
  in
  check Alcotest.int "no switches" 0 rep.r_pf_switches;
  check Alcotest.string "still stride" "stride" rep.r_prefetcher

let test_rt_config_validation () =
  match
    R.Runtime.create
      { R.Runtime.default_config with local_bytes = 10; remotable_bytes = 20 }
      [||]
  with
  | _ -> Alcotest.fail "expected config rejection"
  | exception R.Runtime.Runtime_error _ -> ()

(* ---------- Fault injection (fabric) ---------- *)

let all_kinds = [ N.Fabric.Transient; N.Fabric.Late; N.Fabric.Duplicate ]

let fault_fabric ?(rate = 1.0) ?(seed = 3) kinds =
  N.Fabric.create
    { N.Fabric.default_config with
      faults =
        { N.Fabric.fault_rate = rate; fault_seed = seed; fault_kinds = kinds } }

let proto = 55_800 (* default_config.proto_cycles *)

let test_fabric_fault_transient () =
  let f = fault_fabric [ N.Fabric.Transient ] in
  (match N.Fabric.fetch_attempt f ~now:0 ~bytes:4096 with
   | Ok _ -> Alcotest.fail "rate-1 transient must NACK"
   | Error fl ->
     (* The NACK comes back a protocol round-trip after the QP picked
        the attempt up; the failed attempt still burned the QP. *)
     check Alcotest.int "picked up immediately" 0 fl.N.Fabric.f_start;
     check Alcotest.int "NACK after proto" proto fl.N.Fabric.f_fail);
  let st = N.Fabric.stats f in
  check Alcotest.int "transient counted" 1 st.faults_transient;
  check Alcotest.int "failed fetch counted" 1 st.failed_fetches;
  check Alcotest.int "no fetch completed" 0 st.fetches

let test_fabric_fault_late () =
  let clean = N.Fabric.create N.Fabric.default_config in
  let nominal = N.Fabric.fetch clean ~now:0 ~bytes:4096 in
  let f = fault_fabric [ N.Fabric.Late ] in
  (match N.Fabric.fetch_attempt f ~now:0 ~bytes:4096 with
   | Error _ -> Alcotest.fail "a late transfer still completes"
   | Ok tr ->
     check Alcotest.bool "tagged late" true
       (tr.N.Fabric.t_fault = Some N.Fabric.Late);
     check Alcotest.bool "completes after nominal" true
       (tr.N.Fabric.t_complete > nominal);
     (* The congestion delay rides in the queued/proto/ser split, so
        attribution still decomposes the whole stall. *)
     check Alcotest.int "split covers the stall" tr.N.Fabric.t_complete
       (tr.N.Fabric.t_queued + tr.N.Fabric.t_proto + tr.N.Fabric.t_ser));
  check Alcotest.int "late counted" 1 (N.Fabric.stats f).faults_late

let test_fabric_fault_duplicate () =
  let clean = N.Fabric.create N.Fabric.default_config in
  let nominal = N.Fabric.fetch clean ~now:0 ~bytes:4096 in
  let f = fault_fabric [ N.Fabric.Duplicate ] in
  (match N.Fabric.fetch_attempt f ~now:0 ~bytes:4096 with
   | Error _ -> Alcotest.fail "a duplicated transfer still completes"
   | Ok tr ->
     (* The data arrives on time; only the QP pays for draining the
        spurious second completion. *)
     check Alcotest.int "data on time" nominal tr.N.Fabric.t_complete;
     check Alcotest.bool "QP held draining the duplicate" true
       (N.Fabric.inbound_busy_until f > tr.N.Fabric.t_complete));
  check Alcotest.int "duplicate counted" 1 (N.Fabric.stats f).faults_dup

let test_fabric_attempt_rate0_identity () =
  (* With faults off, fetch_attempt is exactly fetch_info: same
     schedule, no randomness consumed, Ok always. *)
  let a = N.Fabric.create N.Fabric.default_config in
  let b = N.Fabric.create N.Fabric.default_config in
  for i = 0 to 9 do
    let ti = N.Fabric.fetch_info a ~now:(i * 10_000) ~bytes:4096 in
    match N.Fabric.fetch_attempt b ~now:(i * 10_000) ~bytes:4096 with
    | Ok tb -> check Alcotest.bool "identical transfer" true (ti = tb)
    | Error _ -> Alcotest.fail "rate 0 cannot fail"
  done

let test_fabric_reliable_never_faults () =
  let f = fault_fabric all_kinds in
  let tr = N.Fabric.fetch_reliable f ~now:0 ~bytes:4096 in
  check Alcotest.bool "no fault on the reliable channel" true
    (tr.N.Fabric.t_fault = None);
  (* Send + end-to-end ack: one extra protocol round on top of the
     nominal one-sided fetch. *)
  check Alcotest.int "costs 2x proto + ser"
    (N.Fabric.nominal_fetch_cycles f ~bytes:4096 + proto)
    tr.N.Fabric.t_complete;
  check Alcotest.int "escalation counted" 1
    (N.Fabric.stats f).reliable_fetches

let test_fabric_wb_fault_absorbed () =
  let clean = N.Fabric.create N.Fabric.default_config in
  N.Fabric.writeback clean ~now:0 ~bytes:4096;
  let clean_busy = N.Fabric.outbound_busy_until clean in
  let f = fault_fabric all_kinds in
  N.Fabric.writeback f ~now:0 ~bytes:4096;
  (* Posted writes: the caller never sees the fault, the outbound
     direction just stays occupied longer. *)
  check Alcotest.bool "outbound held longer" true
    (N.Fabric.outbound_busy_until f > clean_busy);
  let st = N.Fabric.stats f in
  check Alcotest.bool "wb fault counted" true (st.wb_faults >= 1);
  check Alcotest.int "writeback still counted" 1 st.writebacks

let test_fabric_now_backwards_rejected () =
  let f = N.Fabric.create N.Fabric.default_config in
  ignore (N.Fabric.fetch_many f ~now:1000 ~sizes:[| 4096 |]);
  (* Re-entering at the same now is fine (retries re-issue "now"). *)
  ignore (N.Fabric.fetch_many f ~now:1000 ~sizes:[| 4096 |]);
  (try
     ignore (N.Fabric.fetch_many f ~now:999 ~sizes:[| 4096 |]);
     Alcotest.fail "inbound clock moved backwards undetected"
   with Invalid_argument _ -> ());
  N.Fabric.writeback_many f ~now:2000 ~count:1 ~bytes:4096;
  (try
     N.Fabric.writeback_many f ~now:1999 ~count:1 ~bytes:4096;
     Alcotest.fail "outbound clock moved backwards undetected"
   with Invalid_argument _ -> ());
  (* The directions guard independently, and reset clears both. *)
  N.Fabric.reset f;
  ignore (N.Fabric.fetch_many f ~now:0 ~sizes:[| 64 |]);
  N.Fabric.writeback_many f ~now:0 ~count:1 ~bytes:64

let test_fabric_fault_schedule_deterministic () =
  let run seed =
    let f = fault_fabric ~rate:0.5 ~seed all_kinds in
    List.init 32 (fun i ->
        match N.Fabric.fetch_attempt f ~now:(i * 100_000) ~bytes:4096 with
        | Ok tr -> (true, tr.N.Fabric.t_complete, tr.N.Fabric.t_fault)
        | Error fl -> (false, fl.N.Fabric.f_fail, None))
  in
  check Alcotest.bool "same seed, same schedule" true (run 3 = run 3);
  check Alcotest.bool "different seed, different schedule" true
    (run 3 <> run 4)

let test_fabric_set_fault_rate () =
  let f = fault_fabric [ N.Fabric.Transient ] in
  (match N.Fabric.fetch_attempt f ~now:0 ~bytes:64 with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "rate 1 must fault");
  N.Fabric.set_fault_rate f 0.0;
  (match N.Fabric.fetch_attempt f ~now:1_000_000 ~bytes:64 with
   | Ok tr ->
     check Alcotest.bool "rate 0 is clean" true (tr.N.Fabric.t_fault = None)
   | Error _ -> Alcotest.fail "rate 0 cannot fail");
  (try
     N.Fabric.set_fault_rate f 1.5;
     Alcotest.fail "rate outside [0,1] accepted"
   with Invalid_argument _ -> ());
  try
    ignore
      (N.Fabric.create
         { N.Fabric.default_config with
           faults = { N.Fabric.no_faults with fault_rate = -0.1 } });
    Alcotest.fail "negative rate accepted at create"
  with Invalid_argument _ -> ()

(* ---------- Fault injection (runtime) ---------- *)

let fault_rt ?(rate = 1.0) ?(kinds = all_kinds) ?(prefetch = R.Runtime.Pf_none)
    ?(local = 8192) ?(remot = 4096) ?(infos = 1) () =
  R.Runtime.create
    { R.Runtime.default_config with
      policy = R.Policy.All_remotable; k = 0.0;
      local_bytes = local; remotable_bytes = remot;
      prefetch_mode = prefetch;
      fabric_config =
        { R.Runtime.default_config.fabric_config with
          N.Fabric.faults =
            { N.Fabric.fault_rate = rate; fault_seed = 11;
              fault_kinds = kinds } } }
    (Array.init infos (fun sid -> R.Static_info.default ~sid))

let check_exact rt =
  let prof = R.Runtime.profile rt in
  check Alcotest.int "profiler exact" (R.Runtime.now rt)
    (Cards_obs.Profile.attributed prof);
  check Alcotest.int "ledger exact"
    (R.Runtime.now rt - Cards_obs.Profile.compute prof)
    (Cards_obs.Attribution.total (R.Runtime.attribution rt))

let retry_cycles rt =
  List.fold_left
    (fun acc (c, v) ->
      if c = Cards_obs.Attribution.Retry then acc + v else acc)
    0
    (Cards_obs.Attribution.cause_totals (R.Runtime.attribution rt))

let test_rt_retries_then_escalates () =
  (* Every attempt NACKs: a demand fetch must burn retry_max retries,
     escalate to the reliable channel, and still deliver the data. *)
  let rt = fault_rt ~kinds:[ N.Fabric.Transient ] () in
  let h = R.Runtime.ds_init rt ~sid:0 in
  let a = R.Runtime.ds_alloc rt ~handle:h ~size:4096 in
  R.Runtime.guard rt ~write:true a;
  R.Runtime.write_i64 rt a 31337;
  let _ = R.Runtime.ds_alloc rt ~handle:h ~size:4096 in
  let _ = R.Runtime.ds_alloc rt ~handle:h ~size:4096 in
  (* a is evicted; this guard is the faulted demand fetch. *)
  R.Runtime.guard rt ~write:false a;
  check Alcotest.int "data survives the escalated fetch" 31337
    (R.Runtime.read_i64 rt a);
  let s = R.Runtime.stats rt in
  let rmax = R.Runtime.default_config.retry_max in
  check Alcotest.int "retry_max retries" rmax (R.Rt_stats.retries s);
  check Alcotest.int "one escalation" 1 (R.Rt_stats.escalations s);
  let fs = R.Runtime.fabric_stats rt in
  check Alcotest.int "all attempts NACKed" (rmax + 1) fs.failed_fetches;
  check Alcotest.int "one reliable fetch" 1 fs.reliable_fetches;
  check Alcotest.bool "retry stall charged" true (retry_cycles rt > 0);
  check_exact rt

let test_rt_timeout_refetches_late () =
  (* Late-only faults: completions whose congestion delay blows the
     fetch budget are abandoned and re-issued; nothing escalates
     (late data always arrives eventually). *)
  let rt = fault_rt ~kinds:[ N.Fabric.Late ] () in
  let h = R.Runtime.ds_init rt ~sid:0 in
  let a = R.Runtime.ds_alloc rt ~handle:h ~size:4096 in
  let b = R.Runtime.ds_alloc rt ~handle:h ~size:4096 in
  R.Runtime.guard rt ~write:true a;
  R.Runtime.write_i64 rt a 42;
  (* Ping-pong between two objects in a one-object cache: every guard
     is a fresh faulted demand fetch. *)
  for _ = 1 to 12 do
    R.Runtime.guard rt ~write:false b;
    R.Runtime.guard rt ~write:false a
  done;
  check Alcotest.int "data survives timed-out fetches" 42
    (R.Runtime.read_i64 rt a);
  let s = R.Runtime.stats rt in
  check Alcotest.bool "timeouts fired" true (R.Rt_stats.timeouts s >= 1);
  check Alcotest.bool "each timeout is a retry" true
    (R.Rt_stats.retries s >= R.Rt_stats.timeouts s);
  check Alcotest.int "late never escalates" 0 (R.Rt_stats.escalations s);
  check Alcotest.bool "retry stall charged" true (retry_cycles rt > 0);
  check_exact rt

let test_rt_degrades_and_recovers () =
  (* A half-broken fabric must narrow the prefetch window; dropping the
     fault rate back to zero must re-widen it. *)
  let infos =
    [| { (R.Static_info.default ~sid:0) with
         prefetch = R.Static_info.Stride } |]
  in
  let rt =
    R.Runtime.create
      { R.Runtime.default_config with
        policy = R.Policy.All_remotable; k = 0.0;
        local_bytes = 1 lsl 18; remotable_bytes = 1 lsl 17;
        prefetch_mode = R.Runtime.Pf_per_class;
        fabric_config =
          { R.Runtime.default_config.fabric_config with
            N.Fabric.faults =
              { N.Fabric.fault_rate = 0.5; fault_seed = 11;
                fault_kinds = all_kinds } } }
      infos
  in
  let h = R.Runtime.ds_init rt ~sid:0 in
  let a = R.Runtime.ds_alloc rt ~handle:h ~size:(1 lsl 21) in
  let sweep () =
    for i = 0 to 511 do
      R.Runtime.guard rt ~write:false (a + (i * 4096));
      ignore (R.Runtime.read_i64 rt (a + (i * 4096)))
    done
  in
  sweep ();
  let s = R.Runtime.stats rt in
  let degraded = R.Runtime.degrade_level rt in
  check Alcotest.bool "degraded under 50% faults" true (degraded > 0);
  check Alcotest.bool "degrade steps counted" true
    (R.Rt_stats.degrade_steps s >= 1);
  (* Fabric heals: the observed-fault window drains and the prefetch
     width steps back up. *)
  R.Runtime.set_fault_rate rt 0.0;
  sweep ();
  sweep ();
  check Alcotest.bool "recovered at least one step" true
    (R.Runtime.degrade_level rt < degraded);
  check Alcotest.bool "recovery counted" true
    (R.Rt_stats.recover_steps s >= 1);
  check_exact rt

let test_rt_prefetch_fault_not_retried () =
  (* Speculative fetches are dropped on a NACK, not retried: with
     transient-only faults at rate 1 and prefetching on, pf failures
     are counted but no retry/escalation machinery engages for them
     beyond the demand path's own. *)
  let infos =
    [| { (R.Static_info.default ~sid:0) with
         prefetch = R.Static_info.Stride } |]
  in
  let rt =
    R.Runtime.create
      { R.Runtime.default_config with
        policy = R.Policy.All_remotable; k = 0.0;
        local_bytes = 1 lsl 18; remotable_bytes = 1 lsl 17;
        prefetch_mode = R.Runtime.Pf_per_class;
        fabric_config =
          { R.Runtime.default_config.fabric_config with
            N.Fabric.faults =
              { N.Fabric.fault_rate = 1.0; fault_seed = 11;
                fault_kinds = [ N.Fabric.Transient ] } } }
      infos
  in
  let h = R.Runtime.ds_init rt ~sid:0 in
  let a = R.Runtime.ds_alloc rt ~handle:h ~size:(1 lsl 19) in
  for i = 0 to 127 do
    R.Runtime.guard rt ~write:false (a + (i * 4096))
  done;
  let s = R.Runtime.stats rt in
  check Alcotest.bool "prefetch failures counted" true
    (R.Rt_stats.pf_failed s >= 1);
  check_exact rt

(* ---------- Policy threshold edges ---------- *)

let test_policy_k_clamped () =
  let infos = infos_n 6 in
  check Alcotest.int "k < 0 clamps to none" 0
    (count_true (R.Policy.pinned_preference R.Policy.Linear ~infos ~k:(-0.5)));
  check Alcotest.int "k > 1 clamps to all" 6
    (count_true (R.Policy.pinned_preference R.Policy.Linear ~infos ~k:1.5));
  check Alcotest.int "k = 0 pins none" 0
    (count_true (R.Policy.pinned_preference R.Policy.Max_use ~infos ~k:0.0))

let test_policy_quota_thresholds () =
  (* ceil quota: any nonzero k pins at least one structure, and the
     quota steps exactly at the 1/n boundaries. *)
  let infos = infos_n 10 in
  let quota k =
    count_true (R.Policy.pinned_preference R.Policy.Linear ~infos ~k)
  in
  check Alcotest.int "k=0.01 pins one" 1 (quota 0.01);
  check Alcotest.int "k=0.10 pins one" 1 (quota 0.10);
  check Alcotest.int "k=0.11 pins two" 2 (quota 0.11);
  check Alcotest.int "k=0.99 pins all" 10 (quota 0.99)

let test_policy_score_ties_program_order () =
  (* Equal scores: program order (ascending sid) breaks the tie, so
     the pinned set is stable run to run. *)
  let infos =
    Array.init 4 (fun sid ->
        { (R.Static_info.default ~sid) with score_use = 5; score_reach = 5 })
  in
  let p = R.Policy.pinned_preference R.Policy.Max_use ~infos ~k:0.5 in
  check Alcotest.bool "lowest sids win ties" true
    (p.(0) && p.(1) && (not p.(2)) && not p.(3));
  let q = R.Policy.pinned_preference R.Policy.Max_reach ~infos ~k:0.5 in
  check Alcotest.bool "same for max-reach" true
    (q.(0) && q.(1) && (not q.(2)) && not q.(3))

(* ---------- Prefetcher edges ---------- *)

let test_prefetcher_degenerate_structures () =
  (* A single repeatedly-touched object (delta 0) must never trigger a
     stride lock, and an empty scan (a leaf / empty structure) must
     never make the greedy or jump prefetchers emit. *)
  let st = R.Prefetcher.stride ~depth:4 in
  for _ = 1 to 10 do
    check (Alcotest.list Alcotest.int) "repeated object: silent" []
      (objs_of (R.Prefetcher.on_access st ~obj:5 ~missed:true ~scan:no_scan))
  done;
  check Alcotest.int "calls observed" 10 (R.Prefetcher.calls st);
  check Alcotest.int "nothing emitted" 0 (R.Prefetcher.targets_emitted st);
  let g = R.Prefetcher.greedy ~fanout:4 in
  check (Alcotest.list Alcotest.int) "greedy on empty scan: silent" []
    (objs_of (R.Prefetcher.on_access g ~obj:0 ~missed:true ~scan:no_scan));
  let j = R.Prefetcher.jump ~jump:4 ~depth:2 in
  check (Alcotest.list Alcotest.int) "jump first touch: silent" []
    (objs_of (R.Prefetcher.on_access j ~obj:0 ~missed:true ~scan:no_scan))

let test_stride_reversal_mid_run () =
  (* Ascend long enough to lock stride +1, then walk back down: the
     majority vote must flip the direction, predictions must follow the
     new direction, and no target may ever go negative. *)
  let p = R.Prefetcher.stride ~depth:3 in
  for o = 0 to 9 do
    ignore (R.Prefetcher.on_access p ~obj:o ~missed:false ~scan:no_scan)
  done;
  let saw_down = ref false and saw_neg = ref false in
  for o = 9 downto 0 do
    let out =
      objs_of (R.Prefetcher.on_access p ~obj:o ~missed:false ~scan:no_scan)
    in
    if List.exists (fun t -> t < o) out then saw_down := true;
    if List.exists (fun t -> t < 0) out then saw_neg := true
  done;
  check Alcotest.bool "reversal predicts downward" true !saw_down;
  check Alcotest.bool "no negative targets" false !saw_neg

let test_stride_frontier_snapback () =
  (* Run the frontier far ahead on a first pass, then seek back to the
     start: without the snap-back the stranded frontier would suppress
     every prefetch on the re-traversal. *)
  let p = R.Prefetcher.stride ~depth:3 in
  for o = 0 to 99 do
    ignore (R.Prefetcher.on_access p ~obj:o ~missed:false ~scan:no_scan)
  done;
  let second = ref [] in
  for o = 0 to 9 do
    second :=
      !second
      @ objs_of (R.Prefetcher.on_access p ~obj:o ~missed:false ~scan:no_scan)
  done;
  check Alcotest.bool "re-traversal prefetches again" true
    (List.mem 3 !second && List.mem 5 !second)

let test_stride_hysteresis () =
  (* One window top-up per ~depth accesses: after an emission, accesses
     still inside the issued window stay silent until the frontier
     comes within depth of the access point. *)
  let p = R.Prefetcher.stride ~depth:4 in
  let at o = objs_of (R.Prefetcher.on_access p ~obj:o ~missed:false ~scan:no_scan) in
  for o = 0 to 3 do ignore (at o) done;
  (* The lock engages at obj 4 and emits the initial window. *)
  check Alcotest.bool "window issued at lock" true (at 4 <> []);
  check (Alcotest.list Alcotest.int) "inside the window: silent" [] (at 5);
  check (Alcotest.list Alcotest.int) "still silent" [] (at 6);
  check (Alcotest.list Alcotest.int) "still silent" [] (at 7);
  check (Alcotest.list Alcotest.int) "still silent" [] (at 8);
  let topup = at 9 in
  check Alcotest.bool "tops up as the frontier nears" true (topup <> []);
  check Alcotest.bool "top-up is fresh objects only" true
    (List.for_all (fun t -> t >= 13) topup)

let suite =
  [ ("addr basics", `Quick, test_addr_basics);
    ("addr ranges", `Quick, test_addr_ranges);
    ("cost table 1", `Quick, test_cost_table1);
    ("fabric 59K calibration", `Quick, test_fabric_59k);
    ("fabric 46K calibration", `Quick, test_fabric_trackfm_46k);
    ("fabric queueing", `Quick, test_fabric_queueing);
    ("fabric writeback", `Quick, test_fabric_writeback_nonblocking);
    ("fabric bandwidth term", `Quick, test_fabric_bandwidth_term);
    ("fabric fetch_many amortizes", `Quick, test_fabric_fetch_many_amortizes);
    ("fabric qp dispatch", `Quick, test_fabric_qp_dispatch);
    ("fabric writeback charges proto", `Quick, test_fabric_writeback_charges_proto);
    ("fabric writeback_many coalesces", `Quick, test_fabric_writeback_many_coalesces);
    ("policy linear", `Quick, test_policy_linear);
    ("policy all-*", `Quick, test_policy_all);
    ("policy max-use", `Quick, test_policy_max_use);
    ("policy max-reach", `Quick, test_policy_max_reach);
    ("policy random deterministic", `Quick, test_policy_random_deterministic);
    ("policy explicit", `Quick, test_policy_explicit);
    ("stride prefetcher locks", `Quick, test_stride_prefetcher_locks);
    ("stride majority vote", `Quick, test_stride_prefetcher_majority);
    ("stride quiet on noise", `Quick, test_stride_prefetcher_random_stays_quiet);
    ("greedy scans on miss", `Quick, test_greedy_scans_on_miss);
    ("jump learns", `Quick, test_jump_learns_second_traversal);
    ("prefetcher of_class", `Quick, test_of_class);
    ("rt pinned untagged", `Quick, test_rt_pinned_alloc_untagged);
    ("rt remotable tagged", `Quick, test_rt_remotable_alloc_tagged);
    ("rt data roundtrip", `Quick, test_rt_data_roundtrip);
    ("rt unmanaged roundtrip", `Quick, test_rt_unmanaged_roundtrip);
    ("rt guard costs", `Quick, test_rt_guard_costs);
    ("rt remote fault cost", `Quick, test_rt_remote_fault_cost);
    ("rt pinned override", `Quick, test_rt_pinned_override_demotes);
    ("rt loop check", `Quick, test_rt_loop_check);
    ("rt clean fault fallback", `Quick, test_rt_clean_fault_fallback);
    ("rt dirty eviction", `Quick, test_rt_dirty_eviction_writes_back);
    ("rt prefetch hides latency", `Quick, test_rt_prefetch_hides_latency);
    ("rt prefetch stats", `Quick, test_rt_prefetch_stats);
    ( "rt prefetch bytes matches depth",
      `Quick,
      test_rt_prefetch_bytes_matches_depth );
    ( "rt prefetch bytes smaller objects deeper",
      `Quick,
      test_rt_prefetch_bytes_smaller_objects_deeper );
    ( "rt prefetch bytes accounting exact",
      `Quick,
      test_rt_prefetch_bytes_accounting_exact );
    ("rt cross-structure frontier prefetch", `Quick,
     test_rt_cross_structure_prefetch_at_frontier);
    ("rt over-budget counted", `Quick, test_rt_over_budget_counted);
    ("rt batching reduces cycles", `Quick, test_rt_batching_reduces_cycles);
    ("rt wild pointer", `Quick, test_rt_wild_pointer_rejected);
    ("rt speculative guard benign", `Quick, test_rt_speculative_guard_benign);
    ("rt report", `Quick, test_rt_report);
    ("adaptive drops useless prefetcher", `Quick, test_adaptive_drops_useless_prefetcher);
    ("adaptive keeps good prefetcher", `Quick, test_adaptive_keeps_good_prefetcher);
    ("rt config validation", `Quick, test_rt_config_validation);
    ("fabric fault transient", `Quick, test_fabric_fault_transient);
    ("fabric fault late", `Quick, test_fabric_fault_late);
    ("fabric fault duplicate", `Quick, test_fabric_fault_duplicate);
    ("fabric attempt rate-0 identity", `Quick, test_fabric_attempt_rate0_identity);
    ("fabric reliable channel", `Quick, test_fabric_reliable_never_faults);
    ("fabric wb fault absorbed", `Quick, test_fabric_wb_fault_absorbed);
    ("fabric backwards now rejected", `Quick, test_fabric_now_backwards_rejected);
    ("fabric fault schedule deterministic", `Quick,
     test_fabric_fault_schedule_deterministic);
    ("fabric set_fault_rate", `Quick, test_fabric_set_fault_rate);
    ("rt retries then escalates", `Quick, test_rt_retries_then_escalates);
    ("rt timeout refetches late", `Quick, test_rt_timeout_refetches_late);
    ("rt degrades and recovers", `Quick, test_rt_degrades_and_recovers);
    ("rt prefetch fault not retried", `Quick, test_rt_prefetch_fault_not_retried);
    ("policy k clamped", `Quick, test_policy_k_clamped);
    ("policy quota thresholds", `Quick, test_policy_quota_thresholds);
    ("policy score ties", `Quick, test_policy_score_ties_program_order);
    ("prefetcher degenerate structures", `Quick,
     test_prefetcher_degenerate_structures);
    ("stride reversal mid-run", `Quick, test_stride_reversal_mid_run);
    ("stride frontier snap-back", `Quick, test_stride_frontier_snapback);
    ("stride hysteresis", `Quick, test_stride_hysteresis);
    qcheck prop_fabric_completion_monotone;
    qcheck prop_addr_roundtrip;
    qcheck prop_addr_arith_stays_in_ds;
    qcheck prop_policy_quota ]
