(* Tests for the IR interpreter: semantics, traps, costs, fuel.
   Trap and semantics tests run under BOTH execution engines — the
   pre-decoded default and the reference tree-walker — and assert the
   same behaviour, message for message. *)

module I = Cards_ir
module R = Cards_runtime
module M = Cards_interp.Machine

let check = Alcotest.check

let engines = [ ("ref", M.Reference); ("decoded", M.Decoded) ]

let permissive_rt () =
  R.Runtime.create
    { R.Runtime.default_config with
      policy = R.Policy.All_local;
      local_bytes = max_int / 2;
      remotable_bytes = 0 }
    [||]

let run ?fuel ?engine src =
  let m = I.Minic.compile src in
  M.run ?fuel ?engine m (permissive_rt ())

let output ?fuel src = (run ?fuel src).output

(* The trap message a module produces under one engine, or [None] when
   it finishes cleanly. *)
let trap_of ?fuel ~engine m =
  match M.run ?fuel ~engine m (permissive_rt ()) with
  | (_ : M.result) -> None
  | exception M.Trap msg -> Some msg

(* Assert both engines trap with exactly the same message. *)
let check_trap_both ?fuel m expected =
  List.iter
    (fun (ename, engine) ->
      check Alcotest.(option string) ename (Some expected)
        (trap_of ?fuel ~engine m))
    engines

let check_trap_both_src ?fuel src expected =
  check_trap_both ?fuel (I.Minic.compile src) expected

(* ---------- arithmetic semantics ---------- *)

let test_int_ops () =
  check (Alcotest.list Alcotest.string) "ops"
    [ "13"; "-7"; "30"; "3"; "1" ]
    (output
       {|void main() {
           print_int(10 + 3);
           print_int(3 - 10);
           print_int(10 * 3);
           print_int(10 / 3);
           print_int(10 % 3);
         }|})

let test_float_ops () =
  check (Alcotest.list Alcotest.string) "float ops" [ "3.5"; "0.25"; "-1.5" ]
    (output
       {|void main() {
           print_float(1.75 * 2.0);
           print_float(1.0 / 4.0);
           print_float(0.5 - 2.0);
         }|})

let test_f2i_truncates () =
  check (Alcotest.list Alcotest.string) "truncation" [ "2"; "-2" ]
    (output
       {|void main() {
           int a = 2.9;
           int b = -2.9;
           print_int(a);
           print_int(b);
         }|})

let test_division_by_zero_traps () =
  check_trap_both_src "void main() { int z = 0; print_int(1 / z); }"
    "division by zero"

let test_rem_by_zero_traps () =
  check_trap_both_src "void main() { int z = 0; print_int(1 % z); }"
    "remainder by zero"

let test_abort_traps () =
  check_trap_both_src "void main() { abort(); }" "abort() called"

(* ---------- shift semantics ---------- *)

(* MiniC defines shifts with the count taken mod 64; values are 63-bit
   native ints, so a masked count of 63 (unspecified for OCaml's own
   [lsl]/[asr]) is defined to shift every magnitude bit out: [shl] by
   63 gives 0, [shr] by 63 gives the sign.  The frontend has no shift
   surface syntax, so the boundary counts — 0, 62, 63, and 64 (which
   masks back to 0) — are driven through hand-built IR, under both
   engines. *)
let shift_module cases =
  let b = I.Builder.create ~name:"main" ~params:[] ~ret:I.Types.Void in
  List.iter
    (fun (op, a, s) ->
      let r =
        I.Builder.bin b op (I.Instr.Imm (Int64.of_int a))
          (I.Instr.Imm (Int64.of_int s))
      in
      I.Builder.call_void b "print_int" [ r ])
    cases;
  I.Builder.ret b None;
  I.Irmod.add_func I.Irmod.empty (I.Builder.finish b)

let shift_cases =
  [ (I.Instr.Shl, 5, 0); (I.Instr.Shl, 5, 62); (I.Instr.Shl, 5, 63);
    (I.Instr.Shl, 5, 64); (I.Instr.Shl, -5, 62); (I.Instr.Shl, -5, 63);
    (I.Instr.Shr, 5, 0); (I.Instr.Shr, 5, 62); (I.Instr.Shr, 5, 63);
    (I.Instr.Shr, 5, 64); (I.Instr.Shr, -5, 62); (I.Instr.Shr, -5, 63);
    (I.Instr.Shr, -5, 64) ]

let shift_expected =
  [ "5"; "-4611686018427387904"; "0"; "5"; "-4611686018427387904"; "0";
    "5"; "0"; "0"; "5"; "-1"; "-1"; "-5" ]

let test_shift_boundaries () =
  let m = shift_module shift_cases in
  List.iter
    (fun (ename, engine) ->
      let res = M.run ~engine m (permissive_rt ()) in
      check Alcotest.(list string) ename shift_expected res.output)
    engines

(* ---------- fuel ---------- *)

let test_fuel_stops_infinite_loop () =
  check_trap_both_src ~fuel:10_000 "void main() { while (1) { } }"
    "fuel exhausted (10000 instructions)"

let test_fuel_enough () =
  check (Alcotest.list Alcotest.string) "completes under fuel" [ "42" ]
    (output ~fuel:1_000_000 "void main() { print_int(42); }")

(* ---------- cycles & instruction counting ---------- *)

let test_cycles_monotone_in_work () =
  let small = run "void main() { for (int i = 0; i < 10; i = i + 1) { } }" in
  let big = run "void main() { for (int i = 0; i < 1000; i = i + 1) { } }" in
  check Alcotest.bool "more work, more cycles" true (big.cycles > small.cycles);
  check Alcotest.bool "more work, more instructions" true
    (big.instructions > small.instructions)

let test_clock_intrinsic () =
  let out =
    output
      {|void main() {
          int t0 = clock();
          for (int i = 0; i < 100; i = i + 1) { }
          int t1 = clock();
          if (t1 > t0) { print_int(1); } else { print_int(0); }
        }|}
  in
  check (Alcotest.list Alcotest.string) "clock advances" [ "1" ] out

let test_determinism () =
  let src = Cards_workloads.Bfs.source ~nodes:500 ~edges:2000 ~sources:1 in
  let a = run src and b = run src in
  check Alcotest.bool "same cycles" true (a.cycles = b.cycles);
  check (Alcotest.list Alcotest.string) "same output" a.output b.output

(* ---------- guard instructions under the machine ---------- *)

let test_run_function_entry () =
  let m =
    I.Minic.compile "int twice(int x) { return 2 * x; } void main() { }"
  in
  let res = M.run_function m (permissive_rt ()) "twice" [ 21 ] in
  check Alcotest.int "direct function call" 42 res.ret

let test_unknown_function_traps () =
  let m = I.Minic.compile "void main() { }" in
  List.iter
    (fun (ename, engine) ->
      match M.run_function ~engine m (permissive_rt ()) "nope" [] with
      | _ -> Alcotest.fail (ename ^ ": expected trap")
      | exception M.Trap msg ->
        check Alcotest.string ename "no function nope" msg)
    engines

(* ---------- trap-path parity on hand-built IR ----------

   The frontend cannot produce these shapes (it rejects unknown
   callees, wrong arities, and has no unreachable statement), but the
   interpreters must still handle them — at execution time, with the
   same message under both engines.  Decode in particular must not
   reject them at load time: dead bad code stays inert. *)

let func ~name ~params ~ret ~reg_tys blocks : I.Func.t =
  { name; params; ret; reg_tys; blocks = Array.of_list blocks }

let block bid instrs term : I.Func.block =
  { bid; instrs = Array.of_list instrs; term }

let mod_of funcs =
  List.fold_left I.Irmod.add_func I.Irmod.empty funcs

let test_unknown_callee_traps () =
  let m =
    mod_of
      [ func ~name:"main" ~params:[] ~ret:I.Types.Void ~reg_tys:[||]
          [ block 0 [ I.Instr.Call (None, "nope", []) ] (I.Instr.Ret None) ] ]
  in
  check_trap_both m "call to unknown function nope"

let test_arity_mismatch_traps () =
  let m =
    mod_of
      [ func ~name:"id" ~params:[ (0, I.Types.I64) ] ~ret:I.Types.I64
          ~reg_tys:[| I.Types.I64 |]
          [ block 0 [] (I.Instr.Ret (Some (I.Instr.Reg 0))) ];
        func ~name:"main" ~params:[] ~ret:I.Types.Void ~reg_tys:[||]
          [ block 0 [ I.Instr.Call (None, "id", []) ] (I.Instr.Ret None) ] ]
  in
  check_trap_both m "arity mismatch calling id"

let test_unreachable_traps () =
  let m =
    mod_of
      [ func ~name:"main" ~params:[] ~ret:I.Types.Void ~reg_tys:[||]
          [ block 0 [] I.Instr.Unreachable ] ]
  in
  check_trap_both m "reached unreachable in main:L0"

(* Bad code behind a never-taken branch must run cleanly under both
   engines — traps happen at execution, never at decode. *)
let test_dead_bad_code_is_inert () =
  let b = I.Builder.create ~name:"main" ~params:[] ~ret:I.Types.Void in
  let dead = I.Builder.new_block b in
  let live = I.Builder.new_block b in
  I.Builder.cbr b (I.Instr.Imm 0L) dead live;
  I.Builder.set_block b dead;
  I.Builder.call_void b "nope" [ I.Instr.Fimm 1.0 ];
  I.Builder.br b live;
  I.Builder.set_block b live;
  I.Builder.call_void b "print_int" [ I.Instr.Imm 7L ];
  I.Builder.ret b None;
  let m = I.Irmod.add_func I.Irmod.empty (I.Builder.finish b) in
  List.iter
    (fun (ename, engine) ->
      let res = M.run ~engine m (permissive_rt ()) in
      check Alcotest.(list string) ename [ "7" ] res.output)
    engines

(* ---------- engine identity on plain semantics ---------- *)

let test_engines_identical_on_workload () =
  let src = Cards_workloads.Bfs.source ~nodes:400 ~edges:1600 ~sources:2 in
  let m = I.Minic.compile src in
  let d = M.run ~engine:M.Decoded m (permissive_rt ()) in
  let r = M.run ~engine:M.Reference m (permissive_rt ()) in
  check Alcotest.int "cycles" r.cycles d.cycles;
  check Alcotest.int "instructions" r.instructions d.instructions;
  check Alcotest.int "ret" r.ret d.ret;
  check Alcotest.(list string) "output" r.output d.output

let test_output_order () =
  check (Alcotest.list Alcotest.string) "print interleaving"
    [ "1"; "2.5"; "3" ]
    (output
       {|void main() {
           print_int(1);
           print_float(2.5);
           print_int(3);
         }|})

let suite =
  [ ("int ops", `Quick, test_int_ops);
    ("float ops", `Quick, test_float_ops);
    ("f2i truncates", `Quick, test_f2i_truncates);
    ("div by zero traps", `Quick, test_division_by_zero_traps);
    ("rem by zero traps", `Quick, test_rem_by_zero_traps);
    ("abort traps", `Quick, test_abort_traps);
    ("shift boundaries", `Quick, test_shift_boundaries);
    ("fuel stops runaway", `Quick, test_fuel_stops_infinite_loop);
    ("fuel generous", `Quick, test_fuel_enough);
    ("cycles monotone", `Quick, test_cycles_monotone_in_work);
    ("clock intrinsic", `Quick, test_clock_intrinsic);
    ("determinism", `Quick, test_determinism);
    ("run_function", `Quick, test_run_function_entry);
    ("unknown function traps", `Quick, test_unknown_function_traps);
    ("unknown callee traps", `Quick, test_unknown_callee_traps);
    ("arity mismatch traps", `Quick, test_arity_mismatch_traps);
    ("unreachable traps", `Quick, test_unreachable_traps);
    ("dead bad code inert", `Quick, test_dead_bad_code_is_inert);
    ("engines identical on workload", `Quick, test_engines_identical_on_workload);
    ("output order", `Quick, test_output_order) ]
