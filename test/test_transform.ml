(* Tests for the transformation passes: pool allocation, guard
   insertion, redundant guard elimination, code versioning. *)

module I = Cards_ir
module A = Cards_analysis
module T = Cards_transform
open I

let check = Alcotest.check

let listing1 =
  {|int ARRAY_SIZE = 100;
    double* alloc() { return malloc(ARRAY_SIZE * 8); }
    void set(double *ds, double val) {
      for (int j = 0; j < ARRAY_SIZE; j = j + 1) { ds[j] = val; }
    }
    void main() {
      double *ds1 = alloc();
      double *ds2 = alloc();
      set(ds1, 0.0);
      set(ds2, 1.0);
    }|}

let pooled_of src =
  let m = I.Minic.compile src in
  let dsa = A.Dsa.analyze m in
  (m, T.Pool_alloc.run m dsa)

let count_instrs f pred m =
  List.fold_left
    (fun acc fn -> Func.fold_instrs fn (fun a _ _ i -> if pred i then a + 1 else a) acc)
    0 (List.filter f m.Irmod.funcs)

let all _ = true

(* ---------- pool allocation ---------- *)

let test_pool_alloc_rewrites_mallocs () =
  let _, m' = pooled_of listing1 in
  check Alcotest.int "no raw mallocs left" 0
    (count_instrs all (function Instr.Malloc _ -> true | _ -> false) m');
  check Alcotest.int "one dsalloc (in alloc)" 1
    (count_instrs all (function Instr.DsAlloc _ -> true | _ -> false) m')

let test_pool_alloc_adds_handle_param () =
  let m, m' = pooled_of listing1 in
  let before = Func.arity (Irmod.find_func m "alloc") in
  let after = Func.arity (Irmod.find_func m' "alloc") in
  check Alcotest.int "alloc gains one parameter" (before + 1) after;
  (* set doesn't allocate: unchanged. *)
  check Alcotest.int "set unchanged"
    (Func.arity (Irmod.find_func m "set"))
    (Func.arity (Irmod.find_func m' "set"))

let test_pool_alloc_inits_in_main () =
  let _, m' = pooled_of listing1 in
  let main = Irmod.find_func m' "main" in
  let inits =
    Func.fold_instrs main
      (fun acc _ _ i -> match i with Instr.DsInit (_, sid) -> sid :: acc | _ -> acc)
      []
  in
  check (Alcotest.list Alcotest.int) "main ds_inits 0 and 1" [ 0; 1 ]
    (List.sort compare inits)

let test_pool_alloc_passes_handles_at_callsites () =
  let m, m' = pooled_of listing1 in
  let main = Irmod.find_func m' "main" in
  let alloc_arity = Func.arity (Irmod.find_func m' "alloc") in
  ignore m;
  Func.iter_instrs main (fun _ _ ins ->
      match ins with
      | Instr.Call (_, "alloc", args) ->
        check Alcotest.int "call carries the handle" alloc_arity (List.length args)
      | _ -> ())

let test_pool_alloc_verifies () =
  let _, m' = pooled_of listing1 in
  Verify.check_exn m'

(* dsalloc must reference the handle parameter, not a constant. *)
let test_dsalloc_uses_handle () =
  let _, m' = pooled_of listing1 in
  let alloc = Irmod.find_func m' "alloc" in
  let ok = ref false in
  Func.iter_instrs alloc (fun _ _ ins ->
      match ins with
      | Instr.DsAlloc (_, _, Instr.Reg r) ->
        if List.exists (fun (pr, _) -> pr = r) alloc.params then ok := true
      | _ -> ());
  check Alcotest.bool "dsalloc takes the handle parameter" true !ok

(* ---------- guard insertion ---------- *)

let guarded_of src =
  let _, pooled = pooled_of src in
  let dsa = A.Dsa.analyze pooled in
  (pooled, T.Guards.run pooled dsa, dsa)

let test_guards_on_managed_accesses () =
  let _, g, _ = guarded_of listing1 in
  (* set's ds[j] store gets a write guard. *)
  let set = Irmod.find_func g "set" in
  let has_wguard =
    Func.fold_instrs set
      (fun acc _ _ i ->
        acc || match i with Instr.Guard (Instr.Gwrite, _) -> true | _ -> false)
      false
  in
  check Alcotest.bool "write guard in set" true has_wguard

let test_no_guards_on_globals () =
  let _, g, _ =
    guarded_of "int g = 1; void main() { g = g + 1; print_int(g); }"
  in
  check Alcotest.int "global accesses unguarded" 0 (T.Guards.count_guards g)

let test_guard_precedes_access () =
  let _, g, _ = guarded_of listing1 in
  let set = Irmod.find_func g "set" in
  Array.iter
    (fun (b : Func.block) ->
      Array.iteri
        (fun i ins ->
          match ins with
          | Instr.Store (_, addr, _) when i > 0 -> begin
            match b.instrs.(i - 1) with
            | Instr.Guard (_, gaddr) ->
              check Alcotest.bool "guard guards the same address" true (gaddr = addr)
            | _ -> ()
          end
          | _ -> ())
        b.instrs)
    set.blocks

(* ---------- guard elimination ---------- *)

let test_elim_dedups_same_object () =
  (* Two field accesses to the same struct node: CaRDS level keeps one
     guard, TrackFM level keeps both (different addresses). *)
  let src =
    {|struct P { int a; int b; }
      void main() {
        struct P *p = malloc(sizeof(struct P));
        p->a = 1;
        p->b = 2;
        print_int(p->a + p->b);
      }|}
  in
  let _, g, dsa = guarded_of src in
  let total = T.Guards.count_guards g in
  let tf = T.Guard_elim.run g dsa ~level:T.Guard_elim.Ltrackfm in
  let cards = T.Guard_elim.run g dsa ~level:T.Guard_elim.Lcards in
  check Alcotest.bool "cards strictly fewer guards" true
    (T.Guards.count_guards cards < T.Guards.count_guards tf);
  check Alcotest.bool "trackfm <= raw" true (T.Guards.count_guards tf <= total);
  (* CaRDS object-window dedup: 4 accesses to one 16-byte node need
     exactly one guard. *)
  check Alcotest.int "one guard survives" 1 (T.Guards.count_guards cards)

let test_elim_syntactic_dedup_both_levels () =
  (* Dereferencing the same pointer register repeatedly gives the
     guards a syntactically identical address — the only case the
     TrackFM level can dedup. *)
  let src =
    {|void main() {
        int *a = malloc(80);
        *a = 1;
        *a = *a + 1;
        print_int(*a);
      }|}
  in
  let _, g, dsa = guarded_of src in
  let tf = T.Guard_elim.run g dsa ~level:T.Guard_elim.Ltrackfm in
  (* All four accesses go through register [a]: one write guard
     survives (write subsumes read). *)
  check Alcotest.bool "trackfm dedups identical addresses" true
    (T.Guards.count_guards tf < T.Guards.count_guards g)

let test_read_guard_does_not_cover_write () =
  let src =
    {|void main() {
        int *a = malloc(80);
        int x = a[0];
        a[0] = x + 1;
        print_int(a[0]);
      }|}
  in
  let _, g, dsa = guarded_of src in
  let slim = T.Guard_elim.run g dsa ~level:T.Guard_elim.Ltrackfm in
  let main = Irmod.find_func slim "main" in
  let kinds =
    Func.fold_instrs main
      (fun acc _ _ i -> match i with Instr.Guard (k, _) -> k :: acc | _ -> acc)
      []
  in
  check Alcotest.bool "a write guard survives the read guard" true
    (List.mem Instr.Gwrite kinds)

let test_elim_hoists_invariant_guards () =
  (* Guard on a loop-invariant address: CaRDS hoists it out, so the
     executed guard count drops from N to ~1. *)
  let src =
    {|void main() {
        int *flag = malloc(8);
        int acc = 0;
        for (int i = 0; i < 100; i = i + 1) {
          acc = acc + flag[0];
        }
        print_int(acc);
      }|}
  in
  let _, g, dsa = guarded_of src in
  let cards = T.Guard_elim.run g dsa ~level:T.Guard_elim.Lcards in
  (* the guard must have left the loop: find the loop and check its
     blocks carry no guard *)
  let main = Irmod.find_func cards "main" in
  let cfg = A.Cfg.of_func main in
  let dom = A.Dominators.compute cfg in
  let loops = A.Loops.compute cfg dom in
  let in_loop_guards = ref 0 in
  Array.iter
    (fun (l : A.Loops.loop) ->
      Func.iter_instrs main (fun bid _ ins ->
          if Cards_util.Bitset.mem l.body bid then
            match ins with Instr.Guard _ -> incr in_loop_guards | _ -> ()))
    (A.Loops.loops loops);
  check Alcotest.int "no guards left inside the loop" 0 !in_loop_guards;
  check Alcotest.bool "guard still exists somewhere" true
    (T.Guards.count_guards cards > 0)

let test_call_kills_dedup () =
  (* A call between two identical accesses may evict: the second access
     keeps its guard at every level. *)
  let src =
    {|int *g;
      void touch() { g[0] = g[0] + 1; }
      void main() {
        g = malloc(80);
        g[0] = 1;
        touch();
        print_int(g[0]);
      }|}
  in
  let _, gm, dsa = guarded_of src in
  let slim = T.Guard_elim.run gm dsa ~level:T.Guard_elim.Lcards in
  let main = Irmod.find_func slim "main" in
  (* main: a store guard before touch(), and a read guard after. *)
  let guards =
    Func.fold_instrs main
      (fun acc _ _ i -> match i with Instr.Guard _ -> acc + 1 | _ -> acc)
      0
  in
  check Alcotest.bool "guard after the call survives" true (guards >= 2)

(* ---------- code versioning ---------- *)

let versioned_of src =
  let _, g, _dsa = guarded_of src in
  let dsa2 = A.Dsa.analyze g in
  let slim = T.Guard_elim.run g dsa2 ~level:T.Guard_elim.Lcards in
  let dsa3 = A.Dsa.analyze slim in
  T.Versioning.run slim dsa3

let test_versioning_creates_clean_functions () =
  let v = versioned_of listing1 in
  check Alcotest.bool "set__clean exists" true (Irmod.has_func v "set__clean");
  let clean = Irmod.find_func v "set__clean" in
  let guards =
    Func.fold_instrs clean
      (fun acc _ _ i -> match i with Instr.Guard _ -> acc + 1 | _ -> acc)
      0
  in
  check Alcotest.int "clean version has no guards" 0 guards

let test_versioning_no_clean_for_allocators () =
  let v = versioned_of listing1 in
  check Alcotest.bool "alloc has no clean version" false
    (Irmod.has_func v ("alloc" ^ T.Versioning.clean_suffix))

let test_versioning_inserts_loop_checks () =
  let v = versioned_of listing1 in
  let checks =
    List.fold_left
      (fun acc (f : Func.t) ->
        Func.fold_instrs f
          (fun a _ _ i -> match i with Instr.LoopCheck _ -> a + 1 | _ -> a)
          acc)
      0 v.Irmod.funcs
  in
  check Alcotest.bool "loop checks present" true (checks > 0);
  check Alcotest.bool "counted loops" true
    (T.Versioning.versioned_loops_last_run () > 0)

let test_versioning_verifies () =
  Verify.check_exn (versioned_of listing1)

let test_versioning_skips_allocating_loops () =
  let v =
    versioned_of
      {|void main() {
          for (int i = 0; i < 10; i = i + 1) {
            int *t = malloc(16);
            t[0] = i;
            print_int(t[0]);
          }
        }|}
  in
  let main = Irmod.find_func v "main" in
  let checks =
    Func.fold_instrs main
      (fun a _ _ i -> match i with Instr.LoopCheck _ -> a + 1 | _ -> a)
      0
  in
  check Alcotest.int "allocating loop not versioned" 0 checks

(* ---------- prefetch classification ---------- *)

let desc_of src =
  let m = I.Minic.compile src in
  let dsa = A.Dsa.analyze m in
  A.Dsa.descriptors dsa

let test_classify_stride () =
  match desc_of listing1 with
  | d :: _ ->
    check Alcotest.string "array class" "stride"
      (T.Prefetch_hints.pclass_name (T.Prefetch_hints.classify d));
    check Alcotest.int "array object size 4K" 4096 (T.Prefetch_hints.object_size d)
  | [] -> Alcotest.fail "no descriptors"

let test_classify_list_and_tree () =
  let list_d =
    List.hd
      (desc_of
         {|struct N { int v; struct N *next; }
           void main() {
             struct N *h = null;
             for (int i = 0; i < 4; i = i + 1) {
               struct N *n = malloc(sizeof(struct N));
               n->next = h;
               n->v = i;
               h = n;
             }
             print_int(h->v);
           }|})
  in
  check Alcotest.string "list -> jump" "jump"
    (T.Prefetch_hints.pclass_name (T.Prefetch_hints.classify list_d));
  let tree_d =
    List.hd
      (desc_of
         {|struct T { int v; struct T *l; struct T *r; }
           struct T *mk(int d) {
             if (d == 0) { return null; }
             struct T *n = malloc(sizeof(struct T));
             n->l = mk(d - 1);
             n->r = mk(d - 1);
             n->v = d;
             return n;
           }
           void main() { struct T *t = mk(3); print_int(t->v); }|})
  in
  check Alcotest.string "tree -> greedy" "greedy"
    (T.Prefetch_hints.pclass_name (T.Prefetch_hints.classify tree_d));
  check Alcotest.bool "tree object covers node" true
    (T.Prefetch_hints.object_size tree_d >= 24)

(* ---------- layout factorization ---------- *)

module P = Cards.Pipeline
module R = Cards_runtime
module M = Cards_interp.Machine

let fact_options = { P.cards_options with P.factorize = true }

(* Cache well under the working set under an all-remotable policy, so
   a wrong cold-field round-trip cannot hide behind residency. *)
let fact_cfg =
  { R.Runtime.default_config with
    R.Runtime.policy = R.Policy.All_remotable;
    local_bytes = 1 lsl 20;
    remotable_bytes = 768 * 1024 }

(* A shuffled-order chase over nodes carrying cold metadata, at a node
   count that crosses the side pool's first chunk boundary
   (Factorize.chunk = 1024 records): allocation takes the
   chunk-growth path mid-build, and the closing audit reads every
   cold record back across both chunks.  The hot loop runs under a
   pass loop so the static frequency estimate ranks the chased fields
   an order of magnitude above the build/audit-only ones. *)
let coldlist_src n =
  Printf.sprintf
    {|struct Node { double val; struct Node *next; int seq; int tag; int zone; }
      int N = %d;
      int rng_state = 42;
      int rnd(int bound) {
        rng_state = rng_state * 2862933555777941757 + 3037000493;
        int x = rng_state / 65536;
        if (x < 0) { x = 0 - x; }
        return x %% bound;
      }
      void main() {
        struct Node **slots = malloc(N * 8);
        for (int i = 0; i < N; i = i + 1) {
          struct Node *nd = malloc(sizeof(struct Node));
          nd->val = 1.0 * i;
          nd->next = null;
          nd->seq = i;
          nd->tag = rnd(16);
          nd->zone = rnd(256);
          slots[i] = nd;
        }
        for (int i = 0; i + 1 < N; i = i + 1) {
          struct Node *c = slots[i];
          c->next = slots[i + 1];
        }
        struct Node *head = slots[0];
        double s = 0.0;
        for (int p = 0; p < 2; p = p + 1) {
          struct Node *q = head;
          while (q != null) {
            s = s + q->val;
            q = q->next;
          }
        }
        int audit = 0;
        struct Node *q = head;
        while (q != null) {
          audit = audit + q->seq + q->tag + q->zone;
          q = q->next;
        }
        print_float(s);
        print_int(audit);
      }|}
    n

(* A row-major record table allocated once in main: the AoS->SoA
   target.  24-byte element, no pointer fields, per-field geps with
   constant offsets off a scaled element pointer. *)
let aos_src =
  {|struct Rec { int id; double x; int tag; }
    int N = 2000;
    void main() {
      struct Rec *rs = malloc(N * sizeof(struct Rec));
      for (int i = 0; i < N; i = i + 1) {
        struct Rec *r = rs + i;
        r->id = i;
        r->x = 0.5 * i;
        r->tag = i % 7;
      }
      double s = 0.0;
      int t = 0;
      for (int p = 0; p < 3; p = p + 1) {
        for (int i = 0; i < N; i = i + 1) {
          struct Rec *r = rs + i;
          s = s + r->x;
          t = t + r->tag;
        }
      }
      print_float(s);
      print_int(t);
    }|}

let run_both src =
  let plain = P.compile_source src in
  let pres, _ = P.run plain fact_cfg in
  let fact = P.compile_source ~options:fact_options src in
  let fres, _ = P.run fact fact_cfg in
  (pres, fres)

let test_factorize_split_roundtrip () =
  let pres, fres = run_both (coldlist_src 1500) in
  check Alcotest.int "one hot/cold split" 1 (T.Factorize.splits_last_run ());
  check (Alcotest.list Alcotest.string) "outputs round-trip" pres.M.output
    fres.M.output

(* Exactly at, one under, and one over the chunk boundary: the growth
   branch fires a different number of times in each case and the
   index math (dir slot = idx lsr bits, slot = idx land (chunk - 1))
   must agree with the audit sum every time. *)
let test_factorize_chunk_boundaries () =
  List.iter
    (fun n ->
      let pres, fres = run_both (coldlist_src n) in
      check (Alcotest.list Alcotest.string)
        (Printf.sprintf "N = %d round-trips" n)
        pres.M.output fres.M.output)
    [ T.Factorize.chunk - 1; T.Factorize.chunk; T.Factorize.chunk + 1 ]

let test_factorize_soa () =
  let pres, fres = run_both aos_src in
  check Alcotest.int "one AoS->SoA rewrite" 1 (T.Factorize.soa_last_run ());
  check (Alcotest.list Alcotest.string) "outputs identical" pres.M.output
    fres.M.output

(* Factorize runs before pool allocation, so its output must satisfy
   the same module invariants the frontend's does — and survive a
   fresh DSA pass (the downstream pipeline re-analyzes it). *)
let test_factorize_verifies () =
  List.iter
    (fun src ->
      let m = I.Minic.compile src in
      let dsa = A.Dsa.analyze m in
      let m' = T.Factorize.run m dsa in
      I.Verify.check_exn m';
      ignore (A.Dsa.analyze m'))
    [ coldlist_src 300; aos_src ]

(* Both engines execute the transformed module identically — the
   rewrite introduces no instruction either engine decodes
   differently. *)
let test_factorize_engines_agree () =
  let fact = P.compile_source ~options:fact_options (coldlist_src 1100) in
  let d, _ = P.run ~engine:M.Decoded fact fact_cfg in
  let r, _ = P.run ~engine:M.Reference fact fact_cfg in
  check Alcotest.bool "whole result records equal" true (d = r)

(* A node type chased uniformly (every field read in the hot loop) has
   no cold half; the pass must leave it alone rather than split and
   lose on the index indirection. *)
let test_factorize_bails_without_cold_fields () =
  let src =
    {|struct N { double a; double b; struct N *next; }
      int COUNT = 400;
      void main() {
        struct N *h = null;
        for (int i = 0; i < COUNT; i = i + 1) {
          struct N *n = malloc(sizeof(struct N));
          n->a = 1.0 * i;
          n->b = 2.0 * i;
          n->next = h;
          h = n;
        }
        double s = 0.0;
        for (int p = 0; p < 2; p = p + 1) {
          struct N *q = h;
          while (q != null) {
            s = s + q->a + q->b;
            q = q->next;
          }
        }
        print_float(s);
      }|}
  in
  let pres, fres = run_both src in
  check Alcotest.int "no split" 0 (T.Factorize.splits_last_run ());
  check Alcotest.int "no soa" 0 (T.Factorize.soa_last_run ());
  check (Alcotest.list Alcotest.string) "outputs identical" pres.M.output
    fres.M.output

let suite =
  [ ("pool: mallocs become dsalloc", `Quick, test_pool_alloc_rewrites_mallocs);
    ("pool: handle parameter added", `Quick, test_pool_alloc_adds_handle_param);
    ("pool: ds_init in main", `Quick, test_pool_alloc_inits_in_main);
    ("pool: call sites pass handles", `Quick, test_pool_alloc_passes_handles_at_callsites);
    ("pool: verifies", `Quick, test_pool_alloc_verifies);
    ("pool: dsalloc uses handle", `Quick, test_dsalloc_uses_handle);
    ("guards: managed accesses", `Quick, test_guards_on_managed_accesses);
    ("guards: globals exempt", `Quick, test_no_guards_on_globals);
    ("guards: placed before access", `Quick, test_guard_precedes_access);
    ("elim: object-window dedup", `Quick, test_elim_dedups_same_object);
    ("elim: syntactic dedup", `Quick, test_elim_syntactic_dedup_both_levels);
    ("elim: read does not cover write", `Quick, test_read_guard_does_not_cover_write);
    ("elim: invariant hoisting", `Quick, test_elim_hoists_invariant_guards);
    ("elim: calls kill availability", `Quick, test_call_kills_dedup);
    ("versioning: clean functions", `Quick, test_versioning_creates_clean_functions);
    ("versioning: allocators excluded", `Quick, test_versioning_no_clean_for_allocators);
    ("versioning: loop checks", `Quick, test_versioning_inserts_loop_checks);
    ("versioning: verifies", `Quick, test_versioning_verifies);
    ("versioning: allocating loops skipped", `Quick, test_versioning_skips_allocating_loops);
    ("prefetch: stride class", `Quick, test_classify_stride);
    ("prefetch: list and tree classes", `Quick, test_classify_list_and_tree);
    ("factorize: hot/cold round-trip", `Quick, test_factorize_split_roundtrip);
    ("factorize: chunk boundaries", `Slow, test_factorize_chunk_boundaries);
    ("factorize: AoS to SoA", `Quick, test_factorize_soa);
    ("factorize: verifier-clean", `Quick, test_factorize_verifies);
    ("factorize: engines agree", `Quick, test_factorize_engines_agree);
    ("factorize: all-hot bails", `Quick, test_factorize_bails_without_cold_fields) ]
