(* The parallel virtual-time engine's test battery.

   1. The parallel-vs-sequential differential oracle: the engine's
      result — every per-tenant field, the serving-clock decomposition,
      the DRR counters, the interference matrix, the aggregated fabric
      stats — must be bit-identical to [Serve.run] for every domain
      count, window size, and artificial perturbation.  The full
      perturbation matrix is registered Slow (check.sh forces it on);
      one adversarial cell stays in the quick tier.  The domain counts
      under test come from CARDS_TEST_DOMAINS when set (check.sh runs
      the whole suite under 1 and 4).

   2. Wire-level determinism: with fabric-port tracing on, each
      tenant's wire-event stream (issue/start/complete/qp/bytes per
      transfer, in local virtual time) is bit-identical between the
      parallel and sequential runs, and the engine's merged commit
      schedule is nondecreasing in serving time and complete.

   3. qcheck properties for the barrier machinery: the conservative
      coordinator merge equals the deterministic (time, stream) sort
      regardless of submission interleaving and never pops backwards
      ("no domain observes an event older than its clock"); virtual
      clock horizons are monotone and GVT is their active minimum;
      the mailbox preserves FIFO order and capacity.

   4. Cross-domain smoke: a real two-domain producer/consumer run
      through the mailbox, and poison propagation out of a dead
      worker. *)

module R = Cards_runtime
module F = Cards_net.Fabric
module S = Cards_serve.Serve
module Tn = Cards_serve.Tenant
module Lg = Cards_serve.Loadgen
module E = Cards_par.Engine
module Mb = Cards_par.Mailbox
module Vc = Cards_par.Vclock
module Co = Cards_par.Coordinator

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* Domain counts under differential test: CARDS_TEST_DOMAINS pins one
   count (check.sh runs the release suite under 1 and 4); otherwise a
   small ladder. *)
let domain_counts =
  match Sys.getenv_opt "CARDS_TEST_DOMAINS" with
  | Some s -> [ int_of_string (String.trim s) ]
  | None -> [ 1; 2; 4 ]

let small_kv ~name ~seed ~fault_rate =
  { Tn.name;
    source = Cards_workloads.Kv.source ~keys:256 ~nbuckets:64;
    seed; requests = 16; mean_gap = 20_000.0;
    sample = Lg.kv_sample ~keys:256 ~nbuckets:64; fault_rate }

let small_an ~name ~seed ~fault_rate =
  { Tn.name;
    source = Cards_workloads.Analytics.source_server ~trips:120;
    seed; requests = 8; mean_gap = 200_000.0;
    sample = Lg.analytics_sample; fault_rate }

let small_mix ?(rate = 0.0) () =
  [| small_kv ~name:"kv0" ~seed:11 ~fault_rate:0.0;
     small_an ~name:"an1" ~seed:23 ~fault_rate:rate;
     small_kv ~name:"kv2" ~seed:37 ~fault_rate:0.0 |]

(* Full bit-identicality between two serving results. *)
let compare_results label (a : S.result) (b : S.result) =
  let ck what got want = check Alcotest.int (label ^ ": " ^ what) want got in
  ck "total cycles" a.S.total_cycles b.S.total_cycles;
  ck "busy cycles" a.S.busy_cycles b.S.busy_cycles;
  ck "idle cycles" a.S.idle_cycles b.S.idle_cycles;
  ck "granted" a.S.granted b.S.granted;
  ck "charged" a.S.charged b.S.charged;
  ck "forfeited" a.S.forfeited b.S.forfeited;
  ck "rounds" a.S.rounds b.S.rounds;
  ck "pin admitted" a.S.pin_admitted b.S.pin_admitted;
  check Alcotest.bool (label ^ ": interference matrix") true
    (a.S.stolen = b.S.stolen);
  check Alcotest.bool (label ^ ": aggregated fabric stats") true
    (a.S.fabric = b.S.fabric);
  ck "tenant count" (Array.length a.S.tenants) (Array.length b.S.tenants);
  Array.iteri
    (fun i (bt : S.tenant_result) ->
      let at = a.S.tenants.(i) in
      let who what = Printf.sprintf "%s: %s %s" label bt.S.tr_name what in
      check Alcotest.string (who "name") bt.S.tr_name at.S.tr_name;
      check Alcotest.int (who "served") bt.S.tr_served at.S.tr_served;
      check Alcotest.int (who "setup cycles") bt.S.tr_setup_cycles
        at.S.tr_setup_cycles;
      check Alcotest.int (who "service cycles") bt.S.tr_service_cycles
        at.S.tr_service_cycles;
      check Alcotest.int (who "stall cycles") bt.S.tr_stall_cycles
        at.S.tr_stall_cycles;
      check Alcotest.int (who "wait cycles") bt.S.tr_wait_cycles
        at.S.tr_wait_cycles;
      check Alcotest.int (who "pinned grant") bt.S.tr_pinned_granted
        at.S.tr_pinned_granted;
      check Alcotest.int (who "degrade level") bt.S.tr_degrade_level
        at.S.tr_degrade_level;
      check Alcotest.int (who "end deficit") bt.S.tr_deficit_end
        at.S.tr_deficit_end;
      check Alcotest.(list string) (who "output") bt.S.tr_output
        at.S.tr_output;
      check Alcotest.bool (who "service records") true
        (at.S.tr_records = bt.S.tr_records);
      check Alcotest.bool (who "fabric stats") true
        (at.S.tr_fabric = bt.S.tr_fabric);
      check Alcotest.bool (who "latency histogram") true
        (at.S.tr_latency = bt.S.tr_latency))
    b.S.tenants

(* ---------- 1. parallel = sequential, the differential oracle ---------- *)

let test_engine_matches_sequential () =
  let specs = small_mix () in
  let seq = S.run S.default_config specs in
  List.iter
    (fun d ->
      let par = E.run ~domains:d S.default_config specs in
      compare_results (Printf.sprintf "domains=%d" d) par seq)
    domain_counts

let test_engine_matches_sequential_faulty () =
  let specs = small_mix ~rate:0.2 () in
  let seq = S.run S.default_config specs in
  List.iter
    (fun d ->
      let par = E.run ~domains:d S.default_config specs in
      compare_results (Printf.sprintf "faulty domains=%d" d) par seq)
    domain_counts

let test_engine_degenerate_shapes () =
  let specs = small_mix () in
  let seq = S.run S.default_config specs in
  (* More domains than tenants: the pool caps at the tenant count. *)
  let par = E.run ~domains:16 S.default_config specs in
  compare_results "domains=16 (capped)" par seq;
  (* A single-record lookahead window forces maximal coordinator/worker
     lock-stepping — the slowest, most barrier-bound schedule. *)
  let par = E.run ~domains:2 ~window:1 S.default_config specs in
  compare_results "window=1" par seq;
  (* One tenant: one worker, pure pipeline. *)
  let solo = [| small_kv ~name:"solo" ~seed:5 ~fault_rate:0.0 |] in
  compare_results "single tenant"
    (E.run ~domains:4 S.default_config solo)
    (S.run S.default_config solo)

(* Perturbation stress: seeded artificial per-domain delays randomize
   the real interleaving; virtual-time results must not move. *)
let perturb_cell ~domains ~perturb seq specs =
  let par = E.run ~domains ~perturb S.default_config specs in
  compare_results
    (Printf.sprintf "perturb=%d domains=%d" perturb domains)
    par seq

let test_perturbation_quick () =
  let specs = small_mix ~rate:0.2 () in
  let seq = S.run S.default_config specs in
  perturb_cell ~domains:(List.fold_left max 1 domain_counts) ~perturb:200 seq
    specs

let test_perturbation_matrix () =
  let specs = small_mix ~rate:0.05 () in
  let seq = S.run S.default_config specs in
  List.iter
    (fun domains ->
      List.iter
        (fun perturb -> perturb_cell ~domains ~perturb seq specs)
        [ 20; 200; 2000 ])
    domain_counts

(* ---------- 2. wire-event streams and the merged schedule ---------- *)

let test_traced_streams () =
  let specs = small_mix ~rate:0.2 () in
  let seq, seq_events = E.seq_traced S.default_config specs in
  let d = List.fold_left max 1 domain_counts in
  let par, trace = E.run_traced ~domains:d S.default_config specs in
  compare_results "traced" par seq;
  Array.iteri
    (fun i ev ->
      check Alcotest.int
        (Printf.sprintf "tenant %d wire-event count" i)
        (List.length ev)
        (List.length trace.E.per_tenant.(i));
      check Alcotest.bool
        (Printf.sprintf "tenant %d wire-event stream identical" i)
        true
        (trace.E.per_tenant.(i) = ev))
    seq_events;
  (* The merged commit schedule covers every served request exactly
     once, nondecreasing in serving time, tie-broken by tenant. *)
  let served =
    Array.fold_left (fun acc tr -> acc + tr.S.tr_served) 0 seq.S.tenants
  in
  check Alcotest.int "merged schedule is complete" served
    (List.length trace.E.merged);
  let rec monotone = function
    | (t1, _) :: ((t2, _) :: _ as rest) ->
      t1 <= t2 && monotone rest
    | _ -> true
  in
  check Alcotest.bool "merged schedule is monotone" true
    (monotone trace.E.merged);
  (* Per tenant, commit indices appear in FIFO order. *)
  let next = Array.make (Array.length specs) 0 in
  List.iter
    (fun (_, ev) ->
      check Alcotest.int "per-tenant commits in FIFO order"
        next.(ev.E.c_tenant) ev.E.c_ix;
      next.(ev.E.c_tenant) <- ev.E.c_ix + 1)
    trace.E.merged

(* ---------- 3. qcheck: barrier machinery ---------- *)

(* A batch of per-stream event lists with nondecreasing times. *)
let streams_gen =
  QCheck.Gen.(
    let stream =
      list_size (int_bound 12) (int_bound 50) >|= fun deltas ->
      let t = ref 0 in
      List.map
        (fun d ->
          t := !t + d;
          !t)
        deltas
    in
    int_range 1 4 >>= fun n ->
    list_size (return n) stream)

let streams_arb =
  QCheck.make ~print:(fun ss ->
      String.concat "; "
        (List.map
           (fun s -> "[" ^ String.concat "," (List.map string_of_int s) ^ "]")
           ss))
    streams_gen

(* The conservative merge equals the deterministic (time, stream) sort
   no matter how submissions interleave with early pops. *)
let prop_coordinator_merge =
  QCheck.Test.make ~name:"coordinator merge = (time, stream) sort" ~count:300
    streams_arb (fun streams ->
      let n = List.length streams in
      let co = Co.create ~streams:n in
      let arr = Array.of_list (List.map Array.of_list streams) in
      let pos = Array.make n 0 in
      let popped = ref [] in
      (* Interleave submissions round-robin with opportunistic pops so
         the barrier is exercised mid-stream, not only at drain. *)
      let remaining () =
        Array.exists (fun i -> i >= 0) (Array.mapi (fun s p ->
            if p < Array.length arr.(s) then 0 else -1) pos)
      in
      while remaining () do
        for s = 0 to n - 1 do
          if pos.(s) < Array.length arr.(s) then begin
            Co.submit co ~stream:s ~time:arr.(s).(pos.(s)) (s, pos.(s));
            pos.(s) <- pos.(s) + 1
          end
        done;
        match Co.pop_ready co with
        | Some ev -> popped := ev :: !popped
        | None -> ()
      done;
      for s = 0 to n - 1 do
        Co.close co ~stream:s
      done;
      let merged = List.rev !popped @ Co.drain co in
      (* Expected: stable sort of all events by (time, stream). *)
      let all =
        List.concat
          (List.mapi
             (fun s ts -> List.mapi (fun i t -> (t, s, (s, i))) ts)
             streams)
      in
      let expected =
        List.stable_sort
          (fun (t1, s1, _) (t2, s2, _) -> compare (t1, s1) (t2, s2))
          all
      in
      merged = expected
      && (* no event ever popped behind the merge clock *)
      fst
        (List.fold_left
           (fun (ok, last) (t, _, _) -> (ok && t >= last, t))
           (true, min_int) merged))

let prop_coordinator_stream_monotone =
  QCheck.Test.make ~name:"coordinator rejects a backwards stream" ~count:100
    QCheck.(pair small_nat small_nat)
    (fun (a, b) ->
      QCheck.assume (b > 0);
      let co = Co.create ~streams:1 in
      Co.submit co ~stream:0 ~time:a ();
      match Co.submit co ~stream:0 ~time:(a - b) () with
      | () -> false
      | exception Co.Barrier_violation _ -> true)

let prop_vclock =
  QCheck.Test.make ~name:"vclock horizons monotone, gvt = active min"
    ~count:300
    QCheck.(list_of_size (QCheck.Gen.int_range 1 40)
              (pair (int_bound 3) (int_bound 1000)))
    (fun updates ->
      let vc = Vc.create 4 in
      let shadow = Array.make 4 0 in
      List.iter
        (fun (i, t) ->
          if t >= shadow.(i) then begin
            Vc.publish vc i t;
            shadow.(i) <- t
          end
          else
            (* A backwards publish must raise, not regress. *)
            (match Vc.publish vc i t with
             | () -> failwith "backwards publish accepted"
             | exception Invalid_argument _ -> ()))
        updates;
      let ok = ref (Vc.gvt vc = Array.fold_left min max_int shadow) in
      (* Retiring the slowest stream raises the bound to the next min. *)
      let slowest = ref 0 in
      Array.iteri (fun i h -> if h < shadow.(!slowest) then slowest := i) shadow;
      Vc.retire vc !slowest;
      let expected =
        let m = ref max_int in
        Array.iteri (fun i h -> if i <> !slowest then m := min !m h) shadow;
        !m
      in
      ok := !ok && Vc.gvt vc = expected;
      !ok)

(* ---------- 4. mailbox: FIFO, capacity, poison, cross-domain ---------- *)

let test_mailbox_fifo_capacity () =
  let mb = Mb.create ~streams:2 ~capacity:3 in
  check Alcotest.bool "push 0" true (Mb.try_push mb 0 10);
  check Alcotest.bool "push 1" true (Mb.try_push mb 0 11);
  check Alcotest.bool "push 2" true (Mb.try_push mb 0 12);
  check Alcotest.bool "stream full" false (Mb.try_push mb 0 13);
  check Alcotest.bool "other stream has room" true (Mb.try_push mb 1 20);
  check Alcotest.int "fifo 0" 10 (Mb.pop mb 0);
  check Alcotest.bool "room again" true (Mb.try_push mb 0 13);
  check Alcotest.int "fifo 1" 11 (Mb.pop mb 0);
  check Alcotest.int "fifo 2" 12 (Mb.pop mb 0);
  check Alcotest.int "fifo 3" 13 (Mb.pop mb 0);
  check Alcotest.int "stream 1 intact" 20 (Mb.pop mb 1);
  (* wait_room returns immediately when a listed stream has room, and
     on an empty list. *)
  Mb.wait_room mb [ 0; 1 ];
  Mb.wait_room mb []

let test_mailbox_poison () =
  let mb = Mb.create ~streams:1 ~capacity:1 in
  Mb.poison mb (Failure "worker died");
  (match Mb.pop mb 0 with
   | _ -> Alcotest.fail "pop after poison returned"
   | exception Mb.Poisoned (Failure m) ->
     check Alcotest.string "poison carries the exception" "worker died" m
   | exception _ -> Alcotest.fail "wrong poison exception");
  match Mb.try_push mb 0 1 with
  | _ -> Alcotest.fail "push after poison returned"
  | exception Mb.Poisoned _ -> ()

let test_mailbox_cross_domain () =
  let mb = Mb.create ~streams:1 ~capacity:4 in
  let total = 500 in
  let producer =
    Domain.spawn (fun () ->
        for i = 0 to total - 1 do
          Mb.push mb 0 i
        done)
  in
  let ok = ref true in
  for i = 0 to total - 1 do
    if Mb.pop mb 0 <> i then ok := false
  done;
  Domain.join producer;
  check Alcotest.bool "bounded stream delivered in order" true !ok

let test_engine_worker_failure () =
  (* A tenant whose req() traps poisons the run: the engine must
     re-raise instead of hanging. *)
  let bad =
    { Tn.name = "bad";
      source = "function setup() { return 0; } \
                function req(op, a, b) { return *(&op + 1000000); }";
      seed = 3; requests = 4; mean_gap = 10_000.0;
      sample = (fun _ -> { Lg.op = 1; a = 0; b = 0 });
      fault_rate = 0.0 }
  in
  match E.run ~domains:2 S.default_config [| bad; bad |] with
  | _ -> Alcotest.fail "engine returned from a trapping tenant"
  | exception _ -> ()

let suite =
  [ Alcotest.test_case "parallel = sequential (clean mix)" `Quick
      test_engine_matches_sequential;
    Alcotest.test_case "parallel = sequential (faulty tenant)" `Quick
      test_engine_matches_sequential_faulty;
    Alcotest.test_case "degenerate shapes (capped pool, window=1, solo)"
      `Quick test_engine_degenerate_shapes;
    Alcotest.test_case "perturbation stress (adversarial cell)" `Quick
      test_perturbation_quick;
    Alcotest.test_case "perturbation stress (full matrix)" `Slow
      test_perturbation_matrix;
    Alcotest.test_case "wire-event streams + merged schedule" `Quick
      test_traced_streams;
    qcheck prop_coordinator_merge;
    qcheck prop_coordinator_stream_monotone;
    qcheck prop_vclock;
    Alcotest.test_case "mailbox FIFO and capacity" `Quick
      test_mailbox_fifo_capacity;
    Alcotest.test_case "mailbox poison" `Quick test_mailbox_poison;
    Alcotest.test_case "mailbox across domains" `Quick
      test_mailbox_cross_domain;
    Alcotest.test_case "worker failure poisons the run" `Quick
      test_engine_worker_failure ]
