(* Unit + property tests for cards_util. *)

module U = Cards_util

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* ---------- Rng ---------- *)

let test_rng_deterministic () =
  let a = U.Rng.create 42 and b = U.Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (U.Rng.int64 a) (U.Rng.int64 b)
  done

let test_rng_split_decorrelates () =
  let a = U.Rng.create 42 in
  let b = U.Rng.split a in
  let xa = U.Rng.int64 a and xb = U.Rng.int64 b in
  check Alcotest.bool "split streams differ" true (xa <> xb)

let test_rng_copy () =
  let a = U.Rng.create 7 in
  ignore (U.Rng.int64 a);
  let b = U.Rng.copy a in
  check Alcotest.int64 "copy continues identically" (U.Rng.int64 a) (U.Rng.int64 b)

let prop_rng_int_bounds =
  QCheck.Test.make ~name:"Rng.int stays in bounds" ~count:500
    QCheck.(pair small_int (int_range 1 10_000))
    (fun (seed, bound) ->
      let r = U.Rng.create seed in
      let x = U.Rng.int r bound in
      x >= 0 && x < bound)

let test_rng_int_bad_bound () =
  let r = U.Rng.create 1 in
  Alcotest.check_raises "bound 0 rejected"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (U.Rng.int r 0))

let prop_rng_float_bounds =
  QCheck.Test.make ~name:"Rng.float stays in bounds" ~count:500
    QCheck.small_int
    (fun seed ->
      let r = U.Rng.create seed in
      let x = U.Rng.float r 3.5 in
      x >= 0.0 && x < 3.5)

let prop_shuffle_is_permutation =
  QCheck.Test.make ~name:"Rng.shuffle permutes" ~count:200
    QCheck.(pair small_int (int_range 0 50))
    (fun (seed, n) ->
      let r = U.Rng.create seed in
      let a = Array.init n (fun i -> i) in
      U.Rng.shuffle r a;
      let sorted = Array.copy a in
      Array.sort compare sorted;
      sorted = Array.init n (fun i -> i))

let prop_zipf_bounds =
  QCheck.Test.make ~name:"Rng.zipf stays in bounds" ~count:300
    QCheck.(pair small_int (int_range 1 200))
    (fun (seed, n) ->
      let r = U.Rng.create seed in
      let x = U.Rng.zipf r ~n ~s:1.1 in
      x >= 0 && x < n)

let test_zipf_is_skewed () =
  let r = U.Rng.create 99 in
  let counts = Array.make 100 0 in
  for _ = 1 to 10_000 do
    let z = U.Rng.zipf r ~n:100 ~s:1.2 in
    counts.(z) <- counts.(z) + 1
  done;
  check Alcotest.bool "rank 0 beats rank 50" true (counts.(0) > counts.(50))

let test_exponential_positive () =
  let r = U.Rng.create 5 in
  for _ = 1 to 100 do
    check Alcotest.bool "exponential >= 0" true (U.Rng.exponential r ~mean:10.0 >= 0.0)
  done

(* ---------- Stats ---------- *)

let test_stats_basic () =
  let s = U.Stats.create () in
  List.iter (U.Stats.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  check (Alcotest.float 1e-9) "mean" 2.5 (U.Stats.mean s);
  check (Alcotest.float 1e-9) "sum" 10.0 (U.Stats.sum s);
  check Alcotest.int "count" 4 (U.Stats.count s);
  check (Alcotest.float 1e-9) "min" 1.0 (U.Stats.min s);
  check (Alcotest.float 1e-9) "max" 4.0 (U.Stats.max s)

let test_stats_empty () =
  let s = U.Stats.create () in
  check (Alcotest.float 1e-9) "mean of empty" 0.0 (U.Stats.mean s);
  check (Alcotest.float 1e-9) "median of empty" 0.0 (U.Stats.median s)

(* The histogram's contract: percentiles within one sub-bucket
   (1/32 ≈ 3.2% relative) of the exact nearest-rank answer for
   observations >= 1; p100 exactly max (clamped). *)
let hist_tol = 1.0 /. 32.0

let check_approx name expected got =
  let err = Float.abs (got -. expected) /. Float.max expected 1.0 in
  if err > hist_tol then
    Alcotest.failf "%s: expected ~%g, got %g (err %.4f > %.4f)" name expected
      got err hist_tol

let test_stats_median () =
  let s = U.Stats.create () in
  List.iter (U.Stats.add s) [ 5.0; 1.0; 3.0 ];
  check_approx "odd median" 3.0 (U.Stats.median s);
  U.Stats.add s 100.0;
  (* nearest-rank median of 4 = 2nd smallest *)
  check_approx "even median (nearest-rank)" 3.0 (U.Stats.median s)

let test_stats_percentile () =
  let s = U.Stats.create () in
  for i = 1 to 100 do
    U.Stats.add s (float_of_int i)
  done;
  check_approx "p50" 50.0 (U.Stats.percentile s 50.0);
  check_approx "p99" 99.0 (U.Stats.percentile s 99.0);
  (* clamped to the exact max *)
  check (Alcotest.float 1e-9) "p100" 100.0 (U.Stats.percentile s 100.0)

(* Naive nearest-rank reference over the retained sorted sample. *)
let naive_percentile xs p =
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  let r = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  let r = Stdlib.max 1 (Stdlib.min n r) in
  a.(r - 1)

let prop_stats_percentile_matches_naive =
  QCheck.Test.make
    ~name:"histogram percentile within 1 sub-bucket of naive sort" ~count:300
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 200) (float_range 1.0 1_000_000.0))
        (float_range 0.0 100.0))
    (fun (xs, p) ->
      let s = U.Stats.create () in
      List.iter (U.Stats.add s) xs;
      let exact = naive_percentile xs p in
      let approx = U.Stats.percentile s p in
      Float.abs (approx -. exact) /. Float.max exact 1.0 <= hist_tol)

let prop_stats_merge_matches_combined =
  QCheck.Test.make ~name:"merge = adding both streams to one" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(int_range 0 100) (float_range 1.0 100_000.0))
        (list_of_size Gen.(int_range 0 100) (float_range 1.0 100_000.0)))
    (fun (xs, ys) ->
      let a = U.Stats.create () and b = U.Stats.create () in
      List.iter (U.Stats.add a) xs;
      List.iter (U.Stats.add b) ys;
      let m = U.Stats.merge a b in
      let c = U.Stats.create () in
      List.iter (U.Stats.add c) (xs @ ys);
      U.Stats.count m = U.Stats.count c
      && Float.abs (U.Stats.mean m -. U.Stats.mean c) < 1e-6
      && Float.abs (U.Stats.variance m -. U.Stats.variance c)
         < 1e-6 *. (1.0 +. U.Stats.variance c)
      && U.Stats.min m = U.Stats.min c
      && U.Stats.max m = U.Stats.max c
      && (U.Stats.count m = 0
          || U.Stats.percentile m 90.0 = U.Stats.percentile c 90.0))

let prop_stats_variance_matches_naive =
  QCheck.Test.make ~name:"Welford variance = naive variance" ~count:200
    QCheck.(list_of_size Gen.(int_range 2 50) (float_range (-1000.0) 1000.0))
    (fun xs ->
      let s = U.Stats.create () in
      List.iter (U.Stats.add s) xs;
      let n = float_of_int (List.length xs) in
      let mean = List.fold_left ( +. ) 0.0 xs /. n in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 xs /. n
      in
      Float.abs (U.Stats.variance s -. var) < 1e-6 *. (1.0 +. var))

let test_stats_merge () =
  let a = U.Stats.create () and b = U.Stats.create () in
  List.iter (U.Stats.add a) [ 1.0; 2.0 ];
  List.iter (U.Stats.add b) [ 3.0; 4.0 ];
  let m = U.Stats.merge a b in
  check Alcotest.int "merged count" 4 (U.Stats.count m);
  check (Alcotest.float 1e-9) "merged mean" 2.5 (U.Stats.mean m)

(* The percentile contract at its edges: empty histograms answer 0.0
   (not NaN, not a scan off the end of the bucket array), p = 0 and
   p = 100 are the *exact* extremes rather than bucket midpoints, and
   out-of-range or NaN p is a caller bug rejected loudly. *)
let test_stats_percentile_edges () =
  let s = U.Stats.create () in
  check (Alcotest.float 1e-9) "empty p0" 0.0 (U.Stats.percentile s 0.0);
  check (Alcotest.float 1e-9) "empty p50" 0.0 (U.Stats.percentile s 50.0);
  check (Alcotest.float 1e-9) "empty p100" 0.0 (U.Stats.percentile s 100.0);
  List.iter (U.Stats.add s) [ 7.25; 3.5; 19.0 ];
  check (Alcotest.float 1e-9) "p0 = exact min" 3.5 (U.Stats.percentile s 0.0);
  check (Alcotest.float 1e-9) "p100 = exact max" 19.0
    (U.Stats.percentile s 100.0);
  let rejects p =
    match U.Stats.percentile s p with
    | _ -> Alcotest.failf "percentile %g should raise Invalid_argument" p
    | exception Invalid_argument _ -> ()
  in
  rejects (-1.0);
  rejects 100.5;
  rejects Float.nan

(* With exactly one sample, min = max = the sample, so the clamp makes
   every percentile exact — no sub-bucket error at all. *)
let prop_stats_single_sample =
  QCheck.Test.make ~name:"single-sample percentile is that sample exactly"
    ~count:200
    QCheck.(pair (float_range 1.0 1e9) (float_range 0.0 100.0))
    (fun (x, p) ->
      let s = U.Stats.create () in
      U.Stats.add s x;
      U.Stats.percentile s p = x)

let prop_stats_merge_empty_side =
  QCheck.Test.make
    ~name:"merge with an empty side copies the other (and shares no state)"
    ~count:200
    QCheck.(list_of_size Gen.(int_range 0 50) (float_range 1.0 1e6))
    (fun xs ->
      let a = U.Stats.create () and e = U.Stats.create () in
      List.iter (U.Stats.add a) xs;
      let m1 = U.Stats.merge a e and m2 = U.Stats.merge e a in
      let same m =
        U.Stats.count m = U.Stats.count a
        && U.Stats.sum m = U.Stats.sum a
        && U.Stats.mean m = U.Stats.mean a
        && U.Stats.min m = U.Stats.min a
        && U.Stats.max m = U.Stats.max a
        && (U.Stats.count a = 0 || U.Stats.median m = U.Stats.median a)
      in
      let ok = same m1 && same m2 in
      (* The copy must be deep: growing the merge result cannot bleed
         back into the source's histogram. *)
      U.Stats.add m1 42.0;
      ok && U.Stats.count a = List.length xs
      && (xs = [] || U.Stats.median a = U.Stats.median m2))

(* ---------- Union_find ---------- *)

let test_uf_basic () =
  let uf = U.Union_find.create 5 in
  check Alcotest.int "initial sets" 5 (U.Union_find.count_sets uf);
  ignore (U.Union_find.union uf 0 1);
  ignore (U.Union_find.union uf 2 3);
  check Alcotest.int "after two unions" 3 (U.Union_find.count_sets uf);
  check Alcotest.bool "0~1" true (U.Union_find.equiv uf 0 1);
  check Alcotest.bool "0!~2" false (U.Union_find.equiv uf 0 2);
  ignore (U.Union_find.union uf 1 3);
  check Alcotest.bool "0~3 transitively" true (U.Union_find.equiv uf 0 3)

let prop_uf_equivalence =
  QCheck.Test.make ~name:"union-find is an equivalence relation" ~count:100
    QCheck.(list_of_size Gen.(int_range 0 40) (pair (int_range 0 19) (int_range 0 19)))
    (fun pairs ->
      let uf = U.Union_find.create 20 in
      List.iter (fun (a, b) -> ignore (U.Union_find.union uf a b)) pairs;
      (* reflexive + symmetric + union implies equiv *)
      List.for_all (fun (a, b) -> U.Union_find.equiv uf a b) pairs
      && U.Union_find.equiv uf 5 5)

let prop_uf_count_matches_classes =
  QCheck.Test.make ~name:"count_sets = |classes|" ~count:100
    QCheck.(list_of_size Gen.(int_range 0 30) (pair (int_range 0 14) (int_range 0 14)))
    (fun pairs ->
      let uf = U.Union_find.create 15 in
      List.iter (fun (a, b) -> ignore (U.Union_find.union uf a b)) pairs;
      Hashtbl.length (U.Union_find.classes uf) = U.Union_find.count_sets uf)

(* ---------- Bitset ---------- *)

let prop_bitset_model =
  let module IS = Set.Make (Int) in
  QCheck.Test.make ~name:"bitset agrees with Set model" ~count:200
    QCheck.(list_of_size Gen.(int_range 0 60) (pair bool (int_range 0 99)))
    (fun ops ->
      let bs = U.Bitset.create 100 in
      let model = ref IS.empty in
      List.iter
        (fun (add, i) ->
          if add then begin
            U.Bitset.add bs i;
            model := IS.add i !model
          end
          else begin
            U.Bitset.remove bs i;
            model := IS.remove i !model
          end)
        ops;
      IS.elements !model = U.Bitset.to_list bs
      && IS.cardinal !model = U.Bitset.cardinal bs)

let test_bitset_ops () =
  let a = U.Bitset.create 16 and b = U.Bitset.create 16 in
  U.Bitset.add a 1;
  U.Bitset.add a 2;
  U.Bitset.add b 2;
  U.Bitset.add b 3;
  let a' = U.Bitset.copy a in
  check Alcotest.bool "union changes" true (U.Bitset.union_into a' b);
  check (Alcotest.list Alcotest.int) "union" [ 1; 2; 3 ] (U.Bitset.to_list a');
  let a'' = U.Bitset.copy a in
  check Alcotest.bool "inter changes" true (U.Bitset.inter_into a'' b);
  check (Alcotest.list Alcotest.int) "inter" [ 2 ] (U.Bitset.to_list a'');
  let a3 = U.Bitset.copy a in
  U.Bitset.diff_into a3 b;
  check (Alcotest.list Alcotest.int) "diff" [ 1 ] (U.Bitset.to_list a3)

let test_bitset_set_all () =
  let b = U.Bitset.create 13 in
  U.Bitset.set_all b;
  check Alcotest.int "cardinal = capacity" 13 (U.Bitset.cardinal b);
  check Alcotest.bool "out-of-universe absent" false (U.Bitset.mem b 13);
  U.Bitset.clear b;
  check Alcotest.int "cleared" 0 (U.Bitset.cardinal b)

(* ---------- Pqueue ---------- *)

let test_pqueue_order () =
  let q = U.Pqueue.create () in
  List.iter (fun p -> U.Pqueue.push q ~prio:p p) [ 5; 1; 4; 2; 3 ];
  let out = ref [] in
  let rec drain () =
    match U.Pqueue.pop q with
    | Some (p, _) ->
      out := p :: !out;
      drain ()
    | None -> ()
  in
  drain ();
  check (Alcotest.list Alcotest.int) "sorted pops" [ 1; 2; 3; 4; 5 ] (List.rev !out)

let prop_pqueue_sorted =
  QCheck.Test.make ~name:"pqueue pops in priority order" ~count:200
    QCheck.(list small_int)
    (fun xs ->
      let q = U.Pqueue.create () in
      List.iter (fun x -> U.Pqueue.push q ~prio:x x) xs;
      let rec drain acc =
        match U.Pqueue.pop q with
        | Some (p, _) -> drain (p :: acc)
        | None -> List.rev acc
      in
      let out = drain [] in
      out = List.sort compare xs)

let test_pqueue_peek () =
  let q = U.Pqueue.create () in
  check Alcotest.bool "empty peek" true (U.Pqueue.peek q = None);
  U.Pqueue.push q ~prio:3 "x";
  U.Pqueue.push q ~prio:1 "y";
  (match U.Pqueue.peek q with
   | Some (1, "y") -> ()
   | _ -> Alcotest.fail "peek should see min");
  check Alcotest.int "length" 2 (U.Pqueue.length q)

(* ---------- Vec ---------- *)

let test_vec_basic () =
  let v = U.Vec.create () in
  check Alcotest.int "push returns index" 0 (U.Vec.push v 10);
  check Alcotest.int "second index" 1 (U.Vec.push v 20);
  check Alcotest.int "get" 20 (U.Vec.get v 1);
  U.Vec.set v 0 99;
  check (Alcotest.list Alcotest.int) "to_list" [ 99; 20 ] (U.Vec.to_list v);
  U.Vec.ensure v 5 0;
  check Alcotest.int "ensure grows" 5 (U.Vec.length v)

let test_vec_bounds () =
  let v = U.Vec.create () in
  ignore (U.Vec.push v 1);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Vec: index 1 out of range (len 1)") (fun () ->
      ignore (U.Vec.get v 1))

(* ---------- Table ---------- *)

let test_table_render () =
  let t = U.Table.create ~title:"T" ~header:[ "a"; "bb" ] in
  U.Table.add_row t [ "1"; "2" ];
  U.Table.add_row t [ "333" ];
  let s = U.Table.render t in
  check Alcotest.bool "has title" true (String.length s > 0 && s.[0] = 'T');
  check Alcotest.bool "contains padded row" true
    (String.length s > 0
     &&
     let lines = String.split_on_char '\n' s in
     List.exists (fun l -> l = "333") (List.map String.trim lines))

let test_table_formats () =
  check Alcotest.string "cycles small" "123" (U.Table.fmt_cycles 123.0);
  check Alcotest.string "cycles K" "56.7K" (U.Table.fmt_cycles 56_700.0);
  check Alcotest.string "cycles M" "2.30M" (U.Table.fmt_cycles 2_300_000.0);
  check Alcotest.string "cycles G" "1.23G" (U.Table.fmt_cycles 1.23e9);
  check Alcotest.string "speedup" "1.85x" (U.Table.fmt_speedup 1.85);
  check Alcotest.string "bytes" "4.0KB" (U.Table.fmt_bytes 4096.0);
  check Alcotest.string "bytes GB" "2.0GB" (U.Table.fmt_bytes (2.0 *. 1024.0 ** 3.0))

let suite =
  [ ("rng deterministic", `Quick, test_rng_deterministic);
    ("rng split", `Quick, test_rng_split_decorrelates);
    ("rng copy", `Quick, test_rng_copy);
    ("rng bad bound", `Quick, test_rng_int_bad_bound);
    ("zipf skew", `Quick, test_zipf_is_skewed);
    ("exponential positive", `Quick, test_exponential_positive);
    ("stats basic", `Quick, test_stats_basic);
    ("stats empty", `Quick, test_stats_empty);
    ("stats median", `Quick, test_stats_median);
    ("stats percentile", `Quick, test_stats_percentile);
    ("stats merge", `Quick, test_stats_merge);
    ("stats percentile edges", `Quick, test_stats_percentile_edges);
    ("union-find basic", `Quick, test_uf_basic);
    ("bitset ops", `Quick, test_bitset_ops);
    ("bitset set_all", `Quick, test_bitset_set_all);
    ("pqueue order", `Quick, test_pqueue_order);
    ("pqueue peek", `Quick, test_pqueue_peek);
    ("vec basic", `Quick, test_vec_basic);
    ("vec bounds", `Quick, test_vec_bounds);
    ("table render", `Quick, test_table_render);
    ("table formats", `Quick, test_table_formats);
    qcheck prop_rng_int_bounds;
    qcheck prop_rng_float_bounds;
    qcheck prop_shuffle_is_permutation;
    qcheck prop_zipf_bounds;
    qcheck prop_stats_variance_matches_naive;
    qcheck prop_stats_percentile_matches_naive;
    qcheck prop_stats_merge_matches_combined;
    qcheck prop_stats_single_sample;
    qcheck prop_stats_merge_empty_side;
    qcheck prop_uf_equivalence;
    qcheck prop_uf_count_matches_classes;
    qcheck prop_bitset_model;
    qcheck prop_pqueue_sorted ]
