(* The serving layer's test battery.

   1. The tenant-isolation differential oracle: across the whole
      resilience matrix (queue pairs {1,2,4} x batching {on,off} x
      fault rate {0, 5%, 20%} on the faulty tenant), every tenant's
      program output, per-request service records, service cycles,
      stall cycles, fabric counters, pinned grant and degradation
      level must be bit-identical between the shared DRR-scheduled
      run and a solo run on a private fabric under the same admission
      share — contention moves latency, never results.  The full
      matrix is registered Slow (check.sh forces it on); the nastiest
      cell (1 qp, no batching, 20% faults) stays in the quick tier.

   2. Scheduler properties (qcheck): DRR credit conservation over
      random pending/cost traces, starvation-freedom under
      adversarial Zipf-skewed costs, and admission control never
      admitting past the budget over random admit/release sequences.

   3. Load-generator determinism: the same seed reproduces the exact
      arrival sequence, and two whole serving runs of the same mix
      agree bit for bit — the property that makes BENCH_serve.json
      gateable at all.

   4. Per-tenant latency merging: the bucket-wise Stats merge the
      ALL row uses equals the histogram of the concatenated samples
      exactly, and its percentiles stay within the documented 1/32
      relative bucket error of the true nearest-rank values. *)

module R = Cards_runtime
module F = Cards_net.Fabric
module S = Cards_serve.Serve
module Tn = Cards_serve.Tenant
module Drr = Cards_serve.Drr
module Adm = Cards_serve.Admission
module Lg = Cards_serve.Loadgen
module U = Cards_util

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* Small serving workloads so the full matrix stays affordable: a
   256-key kv store and a 120-trip analytics column store. *)
let small_kv ~name ~seed ~fault_rate =
  { Tn.name;
    source = Cards_workloads.Kv.source ~keys:256 ~nbuckets:64;
    seed; requests = 16; mean_gap = 20_000.0;
    sample = Lg.kv_sample ~keys:256 ~nbuckets:64; fault_rate }

let small_an ~name ~seed ~fault_rate =
  { Tn.name;
    source = Cards_workloads.Analytics.source_server ~trips:120;
    seed; requests = 8; mean_gap = 200_000.0;
    sample = Lg.analytics_sample; fault_rate }

let cell_config ~qp ~batching =
  { S.default_config with
    S.base =
      { S.default_config.S.base with
        R.Runtime.batching;
        fabric_config =
          { S.default_config.S.base.R.Runtime.fabric_config with
            F.qp_count = qp } } }

(* ---------- 1. the isolation differential oracle ---------- *)

(* One cell: a 2-tenant mix (kv + analytics, the analytics tenant
   carrying the cell's fault rate) against each tenant run solo under
   the same admission share.  Also asserts the exact serving-clock
   and fabric decompositions on the shared run. *)
let isolation_cell ~qp ~batching ~rate =
  let cell = Printf.sprintf "qp=%d batching=%b rate=%.2f" qp batching rate in
  let cfg = cell_config ~qp ~batching in
  let specs =
    [| small_kv ~name:"kv" ~seed:11 ~fault_rate:0.0;
       small_an ~name:"an" ~seed:23 ~fault_rate:rate |]
  in
  let shared = S.run cfg specs in
  (* Exact decompositions on the shared run. *)
  let busy =
    Array.fold_left (fun acc tr -> acc + tr.S.tr_service_cycles) 0
      shared.S.tenants
  in
  check Alcotest.int (cell ^ ": busy = sum of service") busy
    shared.S.busy_cycles;
  check Alcotest.int (cell ^ ": clock = busy + idle")
    (shared.S.busy_cycles + shared.S.idle_cycles)
    shared.S.total_cycles;
  check Alcotest.int (cell ^ ": fetched bytes decompose")
    (Array.fold_left
       (fun acc tr -> acc + tr.S.tr_fabric.F.fetched_bytes)
       0 shared.S.tenants)
    shared.S.fabric.F.fetched_bytes;
  check Alcotest.int (cell ^ ": DRR credit conserved")
    (shared.S.granted - shared.S.charged - shared.S.forfeited)
    (Array.fold_left (fun acc tr -> acc + tr.S.tr_deficit_end) 0
       shared.S.tenants);
  (* Each tenant against its private-fabric solo run. *)
  Array.iteri
    (fun i spec ->
      let solo = S.run_solo cfg ~mix_size:(Array.length specs) spec in
      let a = shared.S.tenants.(i) and b = solo.S.tenants.(0) in
      let who what = Printf.sprintf "%s: %s %s" cell a.S.tr_name what in
      check Alcotest.int (who "served") b.S.tr_served a.S.tr_served;
      check Alcotest.(list string) (who "output") b.S.tr_output a.S.tr_output;
      check Alcotest.bool (who "records") true
        (a.S.tr_records = b.S.tr_records);
      check Alcotest.int (who "service cycles") b.S.tr_service_cycles
        a.S.tr_service_cycles;
      check Alcotest.int (who "stall cycles") b.S.tr_stall_cycles
        a.S.tr_stall_cycles;
      check Alcotest.int (who "setup cycles") b.S.tr_setup_cycles
        a.S.tr_setup_cycles;
      check Alcotest.bool (who "fabric stats") true
        (a.S.tr_fabric = b.S.tr_fabric);
      check Alcotest.int (who "pinned grant") b.S.tr_pinned_granted
        a.S.tr_pinned_granted;
      check Alcotest.int (who "degrade level") b.S.tr_degrade_level
        a.S.tr_degrade_level)
    specs

let qps = [ 1; 2; 4 ]
let batchings = [ true; false ]
let rates = [ 0.0; 0.05; 0.2 ]

let test_isolation_matrix () =
  List.iter
    (fun qp ->
      List.iter
        (fun batching ->
          List.iter (fun rate -> isolation_cell ~qp ~batching ~rate) rates)
        batchings)
    qps

let test_isolation_worst_cell () =
  isolation_cell ~qp:1 ~batching:false ~rate:0.2

(* ---------- 2. scheduler properties ---------- *)

(* DRR conservation over a random trace: arbitrary pending sets and
   arbitrary per-request costs (including zero and quantum-dwarfing
   ones) must keep granted - charged - forfeited = sum of deficits at
   every step. *)
let prop_drr_conservation =
  QCheck.Test.make ~name:"DRR conserves credit on random traces" ~count:200
    QCheck.(pair (int_range 1 8) small_int)
    (fun (n, seed) ->
      let rng = U.Rng.create (0x5eed + seed) in
      let quantum = 1 + U.Rng.int rng 10_000 in
      let d = Drr.create ~quantum n in
      let ok = ref true in
      for _ = 1 to 300 do
        let mask = U.Rng.int rng (1 lsl n) in
        let pending i = mask land (1 lsl i) <> 0 in
        (match Drr.next d ~pending with
         | Some i ->
           if not (pending i) then ok := false;
           Drr.charge d i (U.Rng.int rng (4 * quantum))
         | None -> if mask <> 0 then ok := false);
        if not (Drr.conserved d) then ok := false
      done;
      !ok)

(* Starvation-freedom under adversarial skew: every tenant always
   pending, costs Zipf-skewed so tenant 0 regularly fires requests
   dwarfing the quantum.  The bound is in replenishment rounds — the
   scheduler's unit of progress; selection counts are the wrong unit
   because many sub-quantum requests legitimately share one round.  A
   pending tenant's deficit when selected is at most one quantum, so
   after a [max_cost] charge it recovers within [max_cost/quantum]
   rounds and is served within [max_cost/quantum + 2] rounds of its
   previous turn. *)
let prop_drr_no_starvation =
  QCheck.Test.make ~name:"DRR never starves a pending tenant" ~count:100
    QCheck.(pair (int_range 2 8) small_int)
    (fun (n, seed) ->
      let rng = U.Rng.create (0xfa1 + seed) in
      let quantum = 1_000 in
      let d = Drr.create ~quantum n in
      let last_round = Array.make n 0 in
      let max_gap = Array.make n 0 in
      let max_cost = ref 1 in
      let ok = ref true in
      for _ = 1 to 2_000 do
        match Drr.next d ~pending:(fun _ -> true) with
        | None -> ok := false
        | Some i ->
          let cost =
            if i = 0 then (1 + U.Rng.zipf rng ~n:50 ~s:1.1) * quantum
            else 1 + U.Rng.int rng (quantum - 1)
          in
          max_cost := max !max_cost cost;
          Drr.charge d i cost;
          max_gap.(i) <- max max_gap.(i) (Drr.rounds d - last_round.(i));
          last_round.(i) <- Drr.rounds d
      done;
      let bound = (!max_cost / quantum) + 2 in
      for i = 0 to n - 1 do
        if max_gap.(i) > bound then ok := false;
        if Drr.rounds d - last_round.(i) > bound then ok := false
      done;
      !ok && Drr.conserved d)

(* Admission control over random admit/release sequences: the
   admitted total never exceeds the budget, a refusal happens exactly
   when the grant would overshoot, and releases restore headroom. *)
let prop_admission_budget =
  QCheck.Test.make ~name:"admission never exceeds the budget" ~count:300
    QCheck.(pair (int_range 0 100_000) small_int)
    (fun (budget, seed) ->
      let rng = U.Rng.create (0xad + seed) in
      let adm = Adm.create ~budget_bytes:budget in
      let grants = ref [] in
      let ok = ref true in
      for _ = 1 to 200 do
        (if U.Rng.bool rng || !grants = [] then begin
           let bytes = U.Rng.int rng (budget + 2) in
           let fits = Adm.admitted_bytes adm + bytes <= budget in
           let got = Adm.admit adm ~bytes in
           if got <> fits then ok := false;
           if got then grants := bytes :: !grants
         end
         else
           match !grants with
           | g :: rest ->
             Adm.release adm ~bytes:g;
             grants := rest
           | [] -> ());
        if Adm.admitted_bytes adm > budget then ok := false;
        if Adm.available adm <> budget - Adm.admitted_bytes adm then
          ok := false
      done;
      !ok)

(* ---------- 3. load-generator and whole-run determinism ---------- *)

let test_loadgen_deterministic () =
  let gen seed =
    Lg.arrivals ~seed ~n:200 ~mean_gap:5_000.0
      ~sample:(Lg.kv_sample ~keys:256 ~nbuckets:64)
  in
  let a = gen 42 and b = gen 42 in
  check Alcotest.bool "same seed, same arrivals" true (a = b);
  check Alcotest.bool "different seed, different arrivals" true
    (a <> gen 43);
  let rec increasing = function
    | x :: (y :: _ as rest) ->
      x.Lg.at < y.Lg.at && increasing rest
    | _ -> true
  in
  check Alcotest.bool "arrival times strictly increase" true (increasing a);
  check Alcotest.int "requested count" 200 (List.length a)

let test_serving_run_deterministic () =
  let cfg = S.default_config in
  let specs () =
    [| small_kv ~name:"kv" ~seed:5 ~fault_rate:0.0;
       small_an ~name:"an" ~seed:9 ~fault_rate:0.1 |]
  in
  let a = S.run cfg (specs ()) and b = S.run cfg (specs ()) in
  check Alcotest.int "serving clock" a.S.total_cycles b.S.total_cycles;
  check Alcotest.int "rounds" a.S.rounds b.S.rounds;
  check Alcotest.bool "interference matrix" true (a.S.stolen = b.S.stolen);
  Array.iteri
    (fun i (ta : S.tenant_result) ->
      let tb = b.S.tenants.(i) in
      check Alcotest.bool (ta.S.tr_name ^ " bit-identical") true
        (ta.S.tr_output = tb.S.tr_output
         && ta.S.tr_records = tb.S.tr_records
         && ta.S.tr_service_cycles = tb.S.tr_service_cycles
         && ta.S.tr_wait_cycles = tb.S.tr_wait_cycles
         && ta.S.tr_latency = tb.S.tr_latency
         && ta.S.tr_fabric = tb.S.tr_fabric))
    a.S.tenants

(* ---------- 4. per-tenant latency merging ---------- *)

(* The ALL row of the serving latency table merges per-tenant
   accumulators bucket-wise.  Against an accumulator fed the
   concatenated samples: identical histogram and count, identical
   extrema, and identical percentile answers; against the true
   nearest-rank percentile of the sorted samples: within the
   documented 1/32 relative bucket error. *)
let prop_latency_merge =
  QCheck.Test.make ~name:"bucket-wise Stats merge is exact" ~count:100
    QCheck.small_int
    (fun seed ->
      let rng = U.Rng.create (0x1a7 + seed) in
      let k = 2 + U.Rng.int rng 5 in
      let all = ref [] in
      let parts =
        Array.init k (fun _ ->
            let s = U.Stats.create () in
            let m = 1 + U.Rng.int rng 400 in
            for _ = 1 to m do
              let v = 1.0 +. U.Rng.float rng 1_000_000.0 in
              U.Stats.add s v;
              all := v :: !all
            done;
            s)
      in
      let merged =
        Array.fold_left U.Stats.merge (U.Stats.create ()) parts
      in
      let concat = U.Stats.create () in
      List.iter (U.Stats.add concat) !all;
      let sorted = Array.of_list !all in
      Array.sort compare sorted;
      let true_pct p =
        let n = Array.length sorted in
        let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
        sorted.(max 0 (min (n - 1) (rank - 1)))
      in
      U.Stats.log2_counts merged = U.Stats.log2_counts concat
      && U.Stats.count merged = U.Stats.count concat
      && U.Stats.min merged = U.Stats.min concat
      && U.Stats.max merged = U.Stats.max concat
      && List.for_all
           (fun p ->
             let m = U.Stats.percentile merged p in
             (* identical histograms answer identically... *)
             m = U.Stats.percentile concat p
             (* ...and within the documented bucket error of truth. *)
             && abs_float (m -. true_pct p) <= true_pct p /. 32.0)
           [ 50.0; 90.0; 99.0; 99.9 ])

let suite =
  [ ("isolation oracle, full matrix", `Slow, test_isolation_matrix);
    ("isolation oracle, worst cell", `Quick, test_isolation_worst_cell);
    qcheck prop_drr_conservation;
    qcheck prop_drr_no_starvation;
    qcheck prop_admission_budget;
    ("load generator is deterministic", `Quick, test_loadgen_deterministic);
    ("serving runs are deterministic", `Quick, test_serving_run_deterministic);
    qcheck prop_latency_merge ]
