(* Differential fuzzing: generate random (but well-defined) MiniC
   programs and check that every far-memory configuration — CaRDS under
   each policy, TrackFM, Mira, tight memory, adaptive prefetch —
   computes exactly what the guard-free all-local execution computes.

   This exercises the whole stack end to end: frontend, DSA, pool
   allocation, guard insertion/elimination, versioning, the runtime's
   pinning/demotion/eviction/prefetch machinery, and the interpreter.
   A divergence anywhere (a mis-eliminated guard, a wrong handle, a
   cache bug) shows up as a wrong answer. *)

module Rng = Cards_util.Rng
module R = Cards_runtime
module P = Cards.Pipeline
module B = Cards_baselines
module O = Cards_obs

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* ---------- program generator ---------- *)

(* Emits a MiniC program built from a seed:
   - a few global scalars,
   - 2-5 heap arrays (int or double) of small random sizes,
   - 1-3 helper functions walking arrays with random (but in-bounds)
     index expressions, some strided, some gather-style,
   - optionally a linked list built and traversed,
   - a main that allocates, calls helpers in random order (some calls
     inside loops), and prints accumulated checksums. *)
let gen_program seed =
  let rng = Rng.create (seed * 2654435761 + 13) in
  let buf = Buffer.create 2048 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let n_arrays = 2 + Rng.int rng 4 in
  let arrays =
    List.init n_arrays (fun i ->
        let name = Printf.sprintf "arr%d" i in
        let elems = 8 + Rng.int rng 57 in
        let is_float = Rng.bool rng in
        (name, elems, is_float))
  in
  let with_list = Rng.int rng 3 = 0 in
  (* globals *)
  let n_globals = 1 + Rng.int rng 3 in
  for g = 0 to n_globals - 1 do
    out "int g%d = %d;\n" g (1 + Rng.int rng 9)
  done;
  if with_list then
    out
      "struct Node { int v; struct Node *next; }\n\
       struct Node *mklist(int n) {\n\
      \  struct Node *h = null;\n\
      \  for (int i = 0; i < n; i = i + 1) {\n\
      \    struct Node *e = malloc(sizeof(struct Node));\n\
      \    e->v = i * 3 + 1;\n\
      \    e->next = h;\n\
      \    h = e;\n\
      \  }\n\
      \  return h;\n\
       }\n\
       int lsum(struct Node *h) {\n\
      \  int acc = 0;\n\
      \  struct Node *p = h;\n\
      \  while (p != null) { acc = acc + p->v; p = p->next; }\n\
      \  return acc;\n\
       }\n";
  (* helper functions: each takes one array and its length *)
  let n_helpers = 1 + Rng.int rng 3 in
  let helpers =
    List.init n_helpers (fun h ->
        let _, _, is_float = List.nth arrays (Rng.int rng n_arrays) in
        let ty = if is_float then "double" else "int" in
        let name = Printf.sprintf "work%d" h in
        let a_mul = 1 + Rng.int rng 5 in
        let a_add = Rng.int rng 7 in
        let stride_or_gather = Rng.bool rng in
        out "%s %s(%s *a, int n) {\n" ty name ty;
        out "  %s acc = 0%s;\n" ty (if is_float then ".0" else "");
        if stride_or_gather then begin
          (* strided read-modify-write sweep *)
          out "  for (int i = 0; i < n; i = i + 1) {\n";
          out "    a[i] = a[i] + %d%s;\n" a_add (if is_float then ".0" else "");
          out "    acc = acc + a[i];\n";
          out "  }\n"
        end
        else begin
          (* gather with a linear-congruential index (always in bounds) *)
          out "  for (int i = 0; i < n; i = i + 1) {\n";
          out "    int j = (i * %d + %d) %% n;\n" a_mul a_add;
          out "    acc = acc + a[j];\n";
          out "  }\n"
        end;
        out "  return acc;\n}\n";
        (name, is_float))
  in
  (* main *)
  out "void main() {\n";
  List.iter
    (fun (name, elems, is_float) ->
      let ty = if is_float then "double" else "int" in
      out "  %s *%s = malloc(%d * 8);\n" ty name elems;
      out "  for (int i = 0; i < %d; i = i + 1) { %s[i] = %s; }\n" elems name
        (if is_float then "0.5 * i" else "i * 2 + 1"))
    arrays;
  if with_list then begin
    let n = 5 + Rng.int rng 20 in
    out "  struct Node *lst = mklist(%d);\n" n
  end;
  out "  double total = 0.0;\n";
  (* a few call statements, some wrapped in loops *)
  let n_calls = 2 + Rng.int rng 5 in
  for _ = 1 to n_calls do
    let hname, h_float = List.nth helpers (Rng.int rng n_helpers) in
    (* pick an array with matching element type *)
    let candidates = List.filter (fun (_, _, f) -> f = h_float) arrays in
    match candidates with
    | [] -> ()
    | _ ->
      let aname, elems, _ = List.nth candidates (Rng.int rng (List.length candidates)) in
      if Rng.int rng 2 = 0 then begin
        let reps = 1 + Rng.int rng 3 in
        out "  for (int r = 0; r < %d; r = r + 1) {\n" reps;
        out "    total = total + %s(%s, %d);\n" hname aname elems;
        out "  }\n"
      end
      else out "  total = total + %s(%s, %d);\n" hname aname elems
  done;
  if with_list then out "  total = total + lsum(lst);\n";
  out "  print_float(total);\n";
  (* also print one raw array cell per array for stronger checking *)
  List.iter
    (fun (name, elems, is_float) ->
      if is_float then out "  print_float(%s[%d]);\n" name (elems - 1)
      else out "  print_int(%s[%d]);\n" name (elems - 1))
    arrays;
  out "}\n";
  Buffer.contents buf

(* ---------- the differential property ---------- *)

let kb x = x * 1024

let configs =
  [ (fun () ->
      { R.Runtime.default_config with
        policy = R.Policy.Linear; k = 1.0;
        local_bytes = kb 64; remotable_bytes = kb 16 });
    (fun () ->
      { R.Runtime.default_config with
        policy = R.Policy.Max_use; k = 0.5;
        local_bytes = kb 16; remotable_bytes = kb 8 });
    (fun () ->
      { R.Runtime.default_config with
        policy = R.Policy.All_remotable; k = 0.0;
        local_bytes = kb 8; remotable_bytes = kb 4;
        prefetch_mode = R.Runtime.Pf_adaptive });
    (fun () ->
      { R.Runtime.default_config with
        policy = R.Policy.Random 3; k = 0.5;
        local_bytes = kb 8; remotable_bytes = kb 4;
        prefetch_mode = R.Runtime.Pf_none }) ]

(* The batched-fabric matrix: the transport is a timing model only, so
   program outputs must be bit-identical across queue-pair counts and
   with batching on or off, and both exactness invariants — the
   profiler's (compute + Σ wall buckets = now) and the stall ledger's
   (Σ causes = now - compute) — must survive batch completions. *)
let fabric_matrix =
  List.concat_map
    (fun qp ->
      List.map
        (fun batching () ->
          { R.Runtime.default_config with
            policy = R.Policy.Linear; k = 1.0;
            local_bytes = kb 16; remotable_bytes = kb 8;
            fabric_config =
              { R.Runtime.default_config.fabric_config with
                Cards_net.Fabric.qp_count = qp };
            batching })
        [ true; false ])
    [ 1; 2; 4 ]

let fuel = 30_000_000

let run_differential seed =
  let src = gen_program seed in
  try
    let compiled = P.compile_source src in
    let reference, _ = B.Noguard.run ~fuel compiled in
    List.for_all
      (fun mk ->
        let res, _ = P.run ~fuel compiled (mk ()) in
        res.output = reference.output)
      configs
    && List.for_all
         (fun mk ->
           let res, rt = P.run ~fuel compiled (mk ()) in
           let prof = R.Runtime.profile rt in
           res.output = reference.output
           && O.Profile.attributed prof = R.Runtime.now rt
           && O.Attribution.total (R.Runtime.attribution rt)
              = R.Runtime.now rt - O.Profile.compute prof)
         fabric_matrix
    && (let tfm = B.Trackfm.compile_source src in
        let res, _ = B.Trackfm.run ~fuel tfm ~local_bytes:(kb 32) in
        res.output = reference.output)
    && (let res, _ =
          B.Mira.run ~fuel compiled ~local_bytes:(kb 32)
            ~remotable_bytes:(kb 8)
        in
        res.output = reference.output)
  with exn ->
    QCheck.Test.fail_reportf "seed %d raised %s\nprogram:\n%s" seed
      (Printexc.to_string exn) src

let prop_differential =
  QCheck.Test.make ~name:"random programs agree across all systems" ~count:60
    QCheck.(int_range 0 1_000_000)
    run_differential

(* A couple of pinned seeds so failures reproduce in CI without QCheck
   shrinking noise. *)
let test_pinned_seeds () =
  List.iter
    (fun seed ->
      check Alcotest.bool (Printf.sprintf "seed %d" seed) true
        (run_differential seed))
    [ 1; 7; 42; 1337; 98765 ]

(* Fault injection is PRNG-scheduled, never wall-clock-scheduled: the
   same program under the same fault seed must reproduce the cycle
   count exactly, retries, backoff waits and escalations included —
   and a different fault seed must (at a 20% rate on a fetch-heavy
   config) actually move the clock, proving the schedule is live. *)
let test_fault_seed_determinism () =
  let faulty_cfg fault_seed =
    { R.Runtime.default_config with
      policy = R.Policy.All_remotable; k = 0.0;
      local_bytes = kb 8; remotable_bytes = kb 4;
      fabric_config =
        { R.Runtime.default_config.fabric_config with
          Cards_net.Fabric.faults =
            { Cards_net.Fabric.no_faults with
              Cards_net.Fabric.fault_rate = 0.2; fault_seed } } }
  in
  List.iter
    (fun seed ->
      let compiled = P.compile_source (gen_program seed) in
      let a, _ = P.run ~fuel compiled (faulty_cfg 5) in
      let b, _ = P.run ~fuel compiled (faulty_cfg 5) in
      check Alcotest.int
        (Printf.sprintf "seed %d: same fault seed, same cycles" seed)
        a.cycles b.cycles;
      check Alcotest.(list string)
        (Printf.sprintf "seed %d: same fault seed, same output" seed)
        a.output b.output)
    [ 7; 42; 1337 ];
  let compiled = P.compile_source (gen_program 7) in
  let a, _ = P.run ~fuel compiled (faulty_cfg 5) in
  let c, _ = P.run ~fuel compiled (faulty_cfg 6) in
  check Alcotest.(list string) "different fault seed, same output" a.output
    c.output;
  check Alcotest.bool "different fault seed, different schedule" true
    (a.cycles <> c.cycles)

let test_generator_is_deterministic () =
  check Alcotest.string "same seed, same program" (gen_program 11) (gen_program 11);
  check Alcotest.bool "different seeds differ" true
    (gen_program 11 <> gen_program 12)

let suite =
  [ ("generator deterministic", `Quick, test_generator_is_deterministic);
    ("pinned seeds", `Quick, test_pinned_seeds);
    ("fault seed determinism", `Quick, test_fault_seed_determinism);
    qcheck prop_differential ]
