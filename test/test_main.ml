(* Test aggregator: every module contributes a suite. *)

let () =
  Alcotest.run "cards"
    [ ("util", Test_util.suite);
      ("ir", Test_ir.suite);
      ("frontend", Test_frontend.suite);
      ("analysis", Test_analysis.suite);
      ("dsa", Test_dsa.suite);
      ("transform", Test_transform.suite);
      ("runtime", Test_runtime.suite);
      ("interp", Test_interp.suite);
      ("pipeline", Test_pipeline.suite);
      ("workloads", Test_workloads.suite);
      ("baselines", Test_baselines.suite);
      ("obs", Test_obs.suite);
      ("fuzz", Test_fuzz.suite);
      ("differential", Test_differential.suite);
      ("serve", Test_serve.suite);
      ("par", Test_par.suite);
      ("simplify", Test_simplify.suite) ]
