(* Tests for the observability layer: the event ring, the
   cycle-attribution profiler's exactness invariant, epoch metrics,
   the exporters, and — critically — that observability never perturbs
   simulated time. *)

module O = Cards_obs
module R = Cards_runtime
module P = Cards.Pipeline
module W = Cards_workloads
module J = Cards_util.Json

let check = Alcotest.check

(* A pointer-chase under memory pressure: remote faults, queueing,
   prefetches and evictions all occur, so every bucket and event kind
   is exercised. *)
let chase =
  lazy
    (P.compile_source
       (W.Pointer_chase.source ~variant:"list" ~scale:2048 ~passes:2))

let pressure_cfg =
  { R.Runtime.default_config with
    policy = R.Policy.All_remotable;
    k = 0.0;
    local_bytes = 256 * 1024;
    remotable_bytes = 64 * 1024 }

let full_sink () =
  O.Sink.create ~trace_capacity:200_000 ~metrics_interval:100_000 ()

(* ---------- cycle attribution ---------- *)

let test_attribution_sums_to_total () =
  let res, rt = P.run (Lazy.force chase) pressure_cfg in
  let prof = R.Runtime.profile rt in
  check Alcotest.int "compute + Σ wall buckets = total cycles" res.cycles
    (O.Profile.attributed prof);
  (* The identity must not be vacuous: the run really faulted and the
     fault cycles really landed in per-structure buckets. *)
  let tot = R.Rt_stats.total (R.Runtime.stats rt) in
  check Alcotest.bool "remote faults occurred" true (tot.remote_faults > 0);
  let demand =
    List.fold_left
      (fun acc h ->
        let b = O.Profile.buckets prof h in
        acc + b.O.Profile.p_demand + b.O.Profile.p_queue)
      0 (O.Profile.handles prof)
  in
  check Alcotest.bool "demand/queue buckets non-empty" true (demand > 0);
  check Alcotest.bool "compute bucket non-empty" true
    (O.Profile.compute prof > 0);
  (* Fetch latencies were recorded for the faults. *)
  let hist_total = Array.fold_left ( + ) 0 (O.Profile.merged_hist prof) in
  check Alcotest.bool "latency histogram populated" true (hist_total > 0)

let test_attribution_all_pinned_is_pure_compute_and_alloc () =
  (* Everything pinned: no guards survive versioning's clean loops, no
     faults — attribution still balances, via compute + alloc alone. *)
  let res, rt = P.run (Lazy.force chase) R.Runtime.default_config in
  let prof = R.Runtime.profile rt in
  check Alcotest.int "attributed = total" res.cycles
    (O.Profile.attributed prof);
  List.iter
    (fun h ->
      let b = O.Profile.buckets prof h in
      check Alcotest.int "no demand stall when pinned" 0 b.O.Profile.p_demand;
      check Alcotest.int "no queueing when pinned" 0 b.O.Profile.p_queue)
    (O.Profile.handles prof)

(* ---------- stall root-cause attribution ---------- *)

let test_stall_attribution_exact () =
  let res, rt = P.run (Lazy.force chase) pressure_cfg in
  let prof = R.Runtime.profile rt in
  let attr = R.Runtime.attribution rt in
  (* The ledger's exactness invariant: every non-compute cycle lands
     in exactly one (ds, site, cause) cell. *)
  check Alcotest.int "Σ causes = total stall cycles"
    (res.cycles - O.Profile.compute prof)
    (O.Attribution.total attr);
  (* cause_totals is a consistent decomposition of the same number. *)
  let by_cause =
    List.fold_left (fun acc (_, v) -> acc + v) 0 (O.Attribution.cause_totals attr)
  in
  check Alcotest.int "cause totals sum to total" (O.Attribution.total attr)
    by_cause;
  (* ... and so is the per-structure view. *)
  let by_ds =
    List.fold_left
      (fun acc ds ->
        List.fold_left
          (fun acc (_, v) -> acc + v)
          acc
          (O.Attribution.ds_cause_totals attr ds))
      0 (O.Attribution.ds_list attr)
  in
  check Alcotest.int "ds totals sum to total" (O.Attribution.total attr) by_ds;
  (* The run faulted under pressure: protocol, wire and queue causes
     must all be non-vacuous, and queueing is split per QP. *)
  let cause_val c = List.assoc c (O.Attribution.cause_totals attr) in
  check Alcotest.bool "protocol cycles charged" true (cause_val O.Attribution.Proto > 0);
  check Alcotest.bool "wire cycles charged" true (cause_val O.Attribution.Wire > 0);
  let queue_total =
    List.fold_left
      (fun acc (c, v) ->
        match c with O.Attribution.Queue _ -> acc + v | _ -> acc)
      0 (O.Attribution.cause_totals attr)
  in
  check Alcotest.bool "queue causes present" true
    (List.exists
       (function O.Attribution.Queue _ -> true | _ -> false)
       (O.Attribution.causes attr));
  ignore queue_total

let test_stall_attribution_sites_named () =
  let _, rt = P.run (Lazy.force chase) pressure_cfg in
  let attr = R.Runtime.attribution rt in
  let rows = O.Attribution.site_rows attr in
  check Alcotest.bool "site rows non-empty" true (rows <> []);
  (* The interpreter threads real access sites: at least one heavy row
     names a function and basic block, not "(runtime)". *)
  let named =
    List.exists
      (fun (r : O.Attribution.site_row) ->
        r.O.Attribution.r_site.O.Attribution.s_block >= 0
        && r.O.Attribution.r_site.O.Attribution.s_fn <> "(runtime)")
      rows
  in
  check Alcotest.bool "an interpreted site is named" true named;
  (* Rows are sorted heaviest first and their causes are non-zero. *)
  let rec sorted = function
    | (a : O.Attribution.site_row) :: (b :: _ as rest) ->
      a.O.Attribution.r_total >= b.O.Attribution.r_total && sorted rest
    | _ -> true
  in
  check Alcotest.bool "heaviest first" true (sorted rows);
  List.iter
    (fun (r : O.Attribution.site_row) ->
      check Alcotest.int "row causes sum to row total" r.O.Attribution.r_total
        (List.fold_left (fun acc (_, v) -> acc + v) 0 r.O.Attribution.r_causes))
    rows;
  (* Direct runtime API use (no interpreter) attributes to the unknown
     site rather than losing cycles. *)
  check Alcotest.string "unknown site label" "(runtime)"
    (O.Attribution.site_name O.Attribution.unknown_site)

let test_attribution_qp_matrix () =
  (* The exactness invariant across queue-pair count and batching —
     queue splits and batch completions must not leak cycles. *)
  List.iter
    (fun qp ->
      List.iter
        (fun batching ->
          let cfg =
            { pressure_cfg with
              R.Runtime.fabric_config =
                { pressure_cfg.R.Runtime.fabric_config with
                  Cards_net.Fabric.qp_count = qp };
              batching }
          in
          let res, rt = P.run (Lazy.force chase) cfg in
          let prof = R.Runtime.profile rt in
          let attr = R.Runtime.attribution rt in
          check Alcotest.int
            (Printf.sprintf "qp=%d batching=%b exact" qp batching)
            (res.cycles - O.Profile.compute prof)
            (O.Attribution.total attr);
          (* No Queue cause may name a QP the fabric does not have. *)
          List.iter
            (function
              | O.Attribution.Queue i ->
                check Alcotest.bool "queue index within qp_count" true
                  (i >= 0 && i < qp)
              | _ -> ())
            (O.Attribution.causes attr))
        [ true; false ])
    [ 1; 2; 4 ]

(* ---------- observability does not perturb the simulation ---------- *)

let test_sink_off_bit_identical () =
  let bare, _ = P.run (Lazy.force chase) pressure_cfg in
  let obs = full_sink () in
  let traced, rt = P.run ~obs (Lazy.force chase) pressure_cfg in
  check Alcotest.int "cycles identical with full sink" bare.cycles
    traced.cycles;
  check Alcotest.int "instructions identical" bare.instructions
    traced.instructions;
  check (Alcotest.list Alcotest.string) "output identical" bare.output
    traced.output;
  (* And the sink actually observed the run. *)
  (match O.Sink.trace obs with
   | Some tr -> check Alcotest.bool "events captured" true (O.Trace.length tr > 0)
   | None -> Alcotest.fail "sink lost its trace");
  ignore rt

(* ---------- the event ring ---------- *)

let mk_ev i =
  O.Event.make ~cycle:i ~ds:1 ~obj:i O.Event.Guard_hit

let test_ring_keeps_newest () =
  let tr = O.Trace.create ~capacity:4 in
  for i = 0 to 9 do
    O.Trace.add tr (mk_ev i)
  done;
  check Alcotest.int "length capped" 4 (O.Trace.length tr);
  check Alcotest.int "dropped counted" 6 (O.Trace.dropped tr);
  let cycles = List.map (fun (e : O.Event.t) -> e.ev_cycle) (O.Trace.to_list tr) in
  check (Alcotest.list Alcotest.int) "newest retained, oldest first"
    [ 6; 7; 8; 9 ] cycles

let test_ring_under_capacity () =
  let tr = O.Trace.create ~capacity:8 in
  for i = 0 to 2 do
    O.Trace.add tr (mk_ev i)
  done;
  check Alcotest.int "length" 3 (O.Trace.length tr);
  check Alcotest.int "nothing dropped" 0 (O.Trace.dropped tr);
  let cycles = List.map (fun (e : O.Event.t) -> e.ev_cycle) (O.Trace.to_list tr) in
  check (Alcotest.list Alcotest.int) "insertion order" [ 0; 1; 2 ] cycles

(* ---------- exporters ---------- *)

let test_chrome_trace_roundtrips () =
  let obs = full_sink () in
  let _, rt = P.run ~obs (Lazy.force chase) pressure_cfg in
  let tr = match O.Sink.trace obs with Some t -> t | None -> assert false in
  let s = O.Export.chrome_trace_string ~names:(R.Runtime.ds_name rt) tr in
  let j = J.parse s in
  let events =
    match J.member "traceEvents" j with
    | Some v -> (match J.to_list_opt v with Some l -> l | None -> [])
    | None -> []
  in
  check Alcotest.bool "traceEvents non-empty" true (List.length events > 0);
  (* Every entry is an object with the mandatory trace_event fields. *)
  List.iter
    (fun e ->
      (match J.member "ph" e with
       | Some (J.Str ph) ->
         check Alcotest.bool "known phase" true
           (List.mem ph [ "B"; "E"; "X"; "i"; "M" ])
       | _ -> Alcotest.fail "event missing ph");
      (match J.member "pid" e with
       | Some (J.Int _) -> ()
       | _ -> Alcotest.fail "event missing pid");
      match J.member "ph" e with
      | Some (J.Str "X") -> begin
        (* Duration spans need a non-negative dur. *)
        match J.member "dur" e with
        | Some v -> begin
          match J.to_number_opt v with
          | Some d -> check Alcotest.bool "dur >= 0" true (d >= 0.0)
          | None -> Alcotest.fail "dur not a number"
        end
        | None -> Alcotest.fail "X event missing dur"
      end
      | _ -> ())
    events;
  (* B/E pairs on the interpreter thread must balance (a trap could
     legitimately truncate, but this run completes normally). *)
  let depth =
    List.fold_left
      (fun acc e ->
        match (J.member "ph" e, J.member "tid" e) with
        | (Some (J.Str "B"), Some (J.Int 0)) -> acc + 1
        | (Some (J.Str "E"), Some (J.Int 0)) -> acc - 1
        | _ -> acc)
      0 events
  in
  check Alcotest.int "call stack balanced" 0 depth

let test_events_jsonl_parses () =
  let obs = full_sink () in
  let _ = P.run ~obs (Lazy.force chase) pressure_cfg in
  let tr = match O.Sink.trace obs with Some t -> t | None -> assert false in
  let lines =
    String.split_on_char '\n' (O.Export.events_jsonl tr)
    |> List.filter (fun l -> l <> "")
  in
  check Alcotest.int "one line per event" (O.Trace.length tr)
    (List.length lines);
  List.iter
    (fun line ->
      let j = J.parse line in
      match (J.member "ev" j, J.member "cycle" j) with
      | (Some (J.Str _), Some (J.Int _)) -> ()
      | _ -> Alcotest.fail "event line missing fields")
    lines

let test_profile_table_renders () =
  let res, rt = P.run (Lazy.force chase) pressure_cfg in
  let s =
    Cards_util.Table.render
      (O.Export.profile_table ~names:(R.Runtime.ds_name rt) ~total:res.cycles
         (R.Runtime.profile rt))
  in
  check Alcotest.bool "has TOTAL row" true
    (String.length s > 0
     && (let re = "TOTAL" in
         let n = String.length s and m = String.length re in
         let rec go i = i + m <= n && (String.sub s i m = re || go (i + 1)) in
         go 0));
  (* Exact attribution means no (unattributed) row. *)
  let has sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "no unattributed row" false (has "(unattributed)")

(* ---------- corrected prefetch & batch event fields ---------- *)

let test_prefetch_and_batch_events_roundtrip () =
  let obs = full_sink () in
  let _ = P.run ~obs (Lazy.force chase) pressure_cfg in
  let tr = match O.Sink.trace obs with Some t -> t | None -> assert false in
  let lines =
    String.split_on_char '\n' (O.Export.events_jsonl tr)
    |> List.filter (fun l -> l <> "")
    |> List.map J.parse
  in
  let of_kind k =
    List.filter
      (fun j ->
        match J.member "ev" j with Some (J.Str s) -> s = k | _ -> false)
      lines
  in
  let int_field name j =
    match J.member name j with
    | Some (J.Int v) -> v
    | _ -> Alcotest.fail (Printf.sprintf "missing int field %S" name)
  in
  (* Prefetch_issue renders on the *target* structure's row and names
     its origin explicitly — a cross-structure prefetch must not land
     on the origin's row with the target's object id. *)
  let issues = of_kind "prefetch_issue" in
  check Alcotest.bool "prefetch_issue events present" true (issues <> []);
  List.iter
    (fun j ->
      check Alcotest.bool "target ds valid" true (int_field "ds" j >= 0);
      check Alcotest.bool "target obj valid" true (int_field "obj" j >= 0);
      check Alcotest.bool "origin_ds valid" true (int_field "origin_ds" j >= 0);
      check Alcotest.bool "origin_obj valid" true
        (int_field "origin_obj" j >= 0))
    issues;
  (* Batch_fetch events carry the coalesced object count and payload
     bytes; under pressure at least one real (multi-object) batch goes
     out. *)
  let batches = of_kind "batch_fetch" in
  check Alcotest.bool "batch_fetch events present" true (batches <> []);
  List.iter
    (fun j ->
      check Alcotest.bool "count >= 2" true (int_field "count" j >= 2);
      check Alcotest.bool "bytes > 0" true (int_field "bytes" j > 0))
    batches

(* QP occupancy rows in the Chrome trace: each inbound queue pair gets
   its own thread row with duration spans. *)
let test_chrome_trace_qp_rows () =
  let obs = full_sink () in
  let _, rt = P.run ~obs (Lazy.force chase) pressure_cfg in
  let tr = match O.Sink.trace obs with Some t -> t | None -> assert false in
  let s = O.Export.chrome_trace_string ~names:(R.Runtime.ds_name rt) tr in
  let j = J.parse s in
  let events =
    match Option.bind (J.member "traceEvents" j) J.to_list_opt with
    | Some l -> l
    | None -> []
  in
  let qp_spans =
    List.filter
      (fun e ->
        match (J.member "name" e, J.member "ph" e) with
        | (Some (J.Str "qp_busy"), Some (J.Str "X")) -> true
        | _ -> false)
      events
  in
  check Alcotest.bool "qp_busy spans present" true (qp_spans <> []);
  List.iter
    (fun e ->
      match J.member "tid" e with
      | Some (J.Int tid) ->
        check Alcotest.bool "qp span on a qp thread row" true (tid >= 100_000)
      | _ -> Alcotest.fail "qp span missing tid")
    qp_spans;
  (* And those rows are labelled. *)
  let labelled =
    List.exists
      (fun e ->
        match (J.member "name" e, J.member "ph" e, J.member "args" e) with
        | (Some (J.Str "thread_name"), Some (J.Str "M"), Some args) -> (
          match J.member "name" args with
          | Some (J.Str n) ->
            String.length n >= 2 && String.sub n 0 2 = "qp"
          | _ -> false)
        | _ -> false)
      events
  in
  check Alcotest.bool "qp thread row named" true labelled

(* Exporters must behave on a run that produced no events and no
   latencies at all (e.g. a pure-compute program). *)
let test_exporters_on_zero_event_run () =
  let tr = O.Trace.create ~capacity:16 in
  let s = O.Export.chrome_trace_string tr in
  let j = J.parse s in
  (match Option.bind (J.member "traceEvents" j) J.to_list_opt with
   | Some evs ->
     (* Only the process-name metadata record. *)
     check Alcotest.bool "only metadata" true (List.length evs <= 1)
   | None -> Alcotest.fail "no traceEvents");
  check Alcotest.string "empty jsonl" "" (O.Export.events_jsonl tr);
  let prof = O.Profile.create () in
  let names _ = "x" in
  ignore (Cards_util.Table.render (O.Export.latency_table prof));
  ignore (Cards_util.Table.render (O.Export.latency_percentiles_table ~names prof));
  let attr = O.Attribution.create () in
  check Alcotest.int "empty ledger total" 0 (O.Attribution.total attr);
  ignore (Cards_util.Table.render (O.Export.attribution_table ~names attr));
  ignore (Cards_util.Table.render (O.Export.attribution_sites_table ~names attr));
  ignore (Cards_util.Table.render (O.Export.profile_table ~names ~total:0 prof))

(* ---------- the bench regression gate ---------- *)

let snapshot cycles fetches =
  J.Obj
    [ ("experiments",
       J.List
         [ J.Obj
             [ ("tag", J.Str "pc-list-batched");
               ("cycles", J.Int cycles);
               ("fabric",
                J.Obj
                  [ ("fetches", J.Int fetches);
                    ("qp_queue_cycles", J.List [ J.Int 10; J.Int 20 ]) ]) ] ]) ]

let test_regress_clean_and_perturbed () =
  let base = snapshot 1_000_000 500 in
  (* Identical tree: zero violations even at zero tolerance. *)
  check Alcotest.int "unchanged snapshot passes" 0
    (List.length
       (O.Regress.compare_snapshots ~tolerance:0.0 ~baseline:base
          ~current:base ()));
  (* A 5% cycle regression breaks a 2% gate and names the metric. *)
  let worse = snapshot 1_050_000 500 in
  (match
     O.Regress.compare_snapshots ~tolerance:0.02 ~baseline:base ~current:worse ()
   with
   | [ v ] ->
     check Alcotest.string "experiment named" "pc-list-batched"
       v.O.Regress.v_experiment;
     check Alcotest.string "metric named" "cycles" v.O.Regress.v_metric;
     check (Alcotest.float 1e-9) "baseline value" 1_000_000.0
       v.O.Regress.v_baseline;
     (match v.O.Regress.v_observed with
      | Some obs -> check (Alcotest.float 1e-9) "observed value" 1_050_000.0 obs
      | None -> Alcotest.fail "observed missing");
     let msg = O.Regress.format_violation v in
     let has sub =
       let n = String.length msg and m = String.length sub in
       let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
       go 0
     in
     check Alcotest.bool "message names experiment" true (has "pc-list-batched");
     check Alcotest.bool "message names metric" true (has "cycles");
     check Alcotest.bool "message has baseline" true (has "1000000");
     check Alcotest.bool "message has observed" true (has "1050000")
   | vs -> Alcotest.failf "expected 1 violation, got %d" (List.length vs));
  (* The same 5% drift passes a 10% tolerance. *)
  check Alcotest.int "loose tolerance passes" 0
    (List.length
       (O.Regress.compare_snapshots ~tolerance:0.10 ~baseline:base
          ~current:worse ()));
  (* Fabric counters are gated too, including per-QP arrays. *)
  let fewer = snapshot 1_000_000 400 in
  (match
     O.Regress.compare_snapshots ~tolerance:0.02 ~baseline:base ~current:fewer ()
   with
   | [ v ] -> check Alcotest.string "fabric metric" "fabric.fetches" v.O.Regress.v_metric
   | vs -> Alcotest.failf "expected 1 fabric violation, got %d" (List.length vs));
  (* A vanished experiment is a violation, not a silent pass. *)
  let empty = J.Obj [ ("experiments", J.List []) ] in
  (match
     O.Regress.compare_snapshots ~tolerance:0.02 ~baseline:base ~current:empty ()
   with
   | [ v ] -> check Alcotest.bool "missing reported" true (v.O.Regress.v_observed = None)
   | vs -> Alcotest.failf "expected 1 missing violation, got %d" (List.length vs))

(* ---------- epoch metrics ---------- *)

let test_metrics_sampled () =
  let obs = O.Sink.create ~metrics_interval:50_000 () in
  let _, rt = P.run ~obs (Lazy.force chase) pressure_cfg in
  let m = match O.Sink.metrics obs with Some m -> m | None -> assert false in
  check Alcotest.bool "samples recorded" true (O.Metrics.n_samples m > 0);
  let samples = O.Metrics.samples m in
  (* Cycle stamps never decrease, and cumulative counters never
     decrease per structure. *)
  let last_cycle = ref 0 in
  let last_guards = Hashtbl.create 8 in
  List.iter
    (fun (s : O.Metrics.sample) ->
      check Alcotest.bool "cycles monotone" true (s.m_cycle >= !last_cycle);
      last_cycle := s.m_cycle;
      let prev =
        match Hashtbl.find_opt last_guards s.m_ds with Some g -> g | None -> 0
      in
      check Alcotest.bool "counters monotone" true (s.m_guards >= prev);
      Hashtbl.replace last_guards s.m_ds s.m_guards)
    samples;
  (* The number of live structures matches the report. *)
  let dss = List.length (R.Runtime.report rt) in
  let seen = Hashtbl.length last_guards in
  check Alcotest.int "every structure sampled" dss seen

let test_metrics_jsonl_parses () =
  let obs = O.Sink.create ~metrics_interval:50_000 () in
  let _ = P.run ~obs (Lazy.force chase) pressure_cfg in
  let m = match O.Sink.metrics obs with Some m -> m | None -> assert false in
  let lines =
    String.split_on_char '\n' (O.Export.metrics_jsonl m)
    |> List.filter (fun l -> l <> "")
  in
  check Alcotest.int "one line per sample" (O.Metrics.n_samples m)
    (List.length lines);
  List.iter (fun l -> ignore (J.parse l)) lines

(* ---------- json codec ---------- *)

let test_json_roundtrip () =
  let v =
    J.Obj
      [ ("a", J.Int 42); ("b", J.Str "x\"y\n\\z");
        ("c", J.List [ J.Null; J.Bool true; J.Float 1.5 ]);
        ("d", J.Obj [] ) ]
  in
  let s = J.to_string v in
  check Alcotest.bool "roundtrip equal" true (J.parse s = v)

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match J.parse s with
      | exception J.Parse_error _ -> ()
      | _ -> Alcotest.fail ("accepted garbage: " ^ s))
    [ "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2" ]

(* ---------- causal spans, critical path, flight recorder ---------- *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else String.sub haystack i nn = needle || go (i + 1)
  in
  go 0

(* Hand-built spans: the collector only checks id discipline, so unit
   tests can assemble precise graphs without a runtime behind them. *)
let mk_span col ?(kind = O.Span.Demand) ?(parent = -1) ?edge ?(ds = 1)
    ?(queued = 0) ?(proto = 0) ?(wire = 0) ?(retry = 0) ?(pf_wait = 0)
    ?(trap = 0) ?(issued = 0) ?complete ?fault () =
  let id = O.Span.fresh col in
  let stall = queued + proto + wire + retry + pf_wait + trap in
  let s =
    { O.Span.sp_id = id; sp_kind = kind; sp_parent = parent; sp_edge = edge;
      sp_ds = ds; sp_obj = id; sp_fn = "t"; sp_block = 0; sp_instr = 0;
      sp_issued = issued; sp_start = issued;
      sp_complete = (match complete with Some c -> c | None -> issued + stall);
      sp_queued = queued; sp_proto = proto; sp_wire = wire; sp_retry = retry;
      sp_pf_wait = pf_wait; sp_trap = trap; sp_qp = 0; sp_bytes = 64;
      sp_fault = fault }
  in
  O.Span.add col s;
  s

let test_span_sampling_deterministic () =
  (* Rate 1.0: every occasion; rate 0.5: exactly every other one, via
     the accumulator — no RNG, so the pattern is the same every run. *)
  let all = O.Span.create ~rate:1.0 () in
  for _ = 1 to 10 do
    check Alcotest.bool "rate 1.0 always samples" true (O.Span.sampled all)
  done;
  let none = O.Span.create ~rate:0.0 () in
  for _ = 1 to 10 do
    check Alcotest.bool "rate 0.0 never samples" false (O.Span.sampled none)
  done;
  let half = O.Span.create ~rate:0.5 () in
  let picks = List.init 8 (fun _ -> O.Span.sampled half) in
  check Alcotest.int "rate 0.5 samples half" 4
    (List.length (List.filter Fun.id picks));
  check (Alcotest.list Alcotest.bool) "alternating pattern"
    [ false; true; false; true; false; true; false; true ] picks

let test_span_inflight_registry () =
  let col = O.Span.create () in
  O.Span.note_inflight col ~ds:3 ~obj:17 ~span:42;
  check Alcotest.int "take returns the span" 42
    (O.Span.take_inflight col ~ds:3 ~obj:17);
  check Alcotest.int "take consumes" (-1)
    (O.Span.take_inflight col ~ds:3 ~obj:17);
  check Alcotest.int "absent key" (-1) (O.Span.take_inflight col ~ds:9 ~obj:9)

let test_span_well_formed_rejects_forward_edge () =
  let col = O.Span.create () in
  let a = mk_span col ~proto:10 () in
  let _b =
    mk_span col ~kind:O.Span.Retry ~parent:a.O.Span.sp_id
      ~edge:O.Span.E_retry ~retry:5 ()
  in
  check Alcotest.bool "backward edge ok" true (O.Span.well_formed col);
  (* A parent id at or above the child's is a graph bug. *)
  let bad = O.Span.create () in
  let c = mk_span bad ~proto:1 () in
  O.Span.add bad
    { c with O.Span.sp_id = c.O.Span.sp_id; sp_parent = c.O.Span.sp_id };
  check Alcotest.bool "self edge rejected" false (O.Span.well_formed bad)

let test_critical_path_synthetic_chain () =
  let col = O.Span.create () in
  (* Chain A: demand (100 proto) <- settle (50 pf-wait) = 150.
     Chain B: lone demand, 120 queued.  A must win. *)
  let a = mk_span col ~kind:O.Span.Prefetch ~proto:100 () in
  let s =
    mk_span col ~kind:O.Span.Pf_settle ~parent:a.O.Span.sp_id
      ~edge:O.Span.E_satisfy ~pf_wait:50 ~issued:100 ()
  in
  let _b = mk_span col ~queued:120 () in
  match O.Critical_path.analyze col with
  | None -> Alcotest.fail "no report"
  | Some r ->
    check Alcotest.int "chain stall" 150 r.O.Critical_path.r_chain_stall;
    check (Alcotest.list Alcotest.int) "chain ids root-first"
      [ a.O.Span.sp_id; s.O.Span.sp_id ]
      (List.map (fun sp -> sp.O.Span.sp_id) r.O.Critical_path.r_chain);
    check Alcotest.int "proto share" 100
      r.O.Critical_path.r_phases.O.Critical_path.cp_proto;
    check Alcotest.int "pf-wait share" 50
      r.O.Critical_path.r_phases.O.Critical_path.cp_pf_wait;
    check Alcotest.int "span count" 3 r.O.Critical_path.r_span_count;
    check Alcotest.int "last completion" 150 r.O.Critical_path.r_end

let test_recorder_ring_bound () =
  let rec_ = O.Recorder.create ~capacity:8 () in
  let col = O.Span.create () in
  O.Span.set_listener col (O.Recorder.add rec_);
  for _ = 1 to 100 do
    ignore (mk_span col ~proto:1 ())
  done;
  check Alcotest.int "ring bounded" 8 (O.Recorder.ring_length rec_);
  check Alcotest.int "nothing flagged" 0 (O.Recorder.flagged rec_);
  check Alcotest.int "nothing pinned" 0 (O.Recorder.pinned_count rec_)

let test_recorder_retains_flagged_chain () =
  let rec_ = O.Recorder.create ~capacity:4 () in
  let col = O.Span.create () in
  O.Span.set_listener col (O.Recorder.add rec_);
  (* Runtime order: the root id is allocated first but its span is
     added last (retries complete before the fetch they delayed), so
     the recorder must pin the retry now and the root on arrival. *)
  let root_id = O.Span.fresh col in
  let retry =
    mk_span col ~kind:O.Span.Retry ~parent:root_id ~edge:O.Span.E_retry
      ~retry:40 ~fault:"transient" ()
  in
  let root =
    { retry with
      O.Span.sp_id = root_id; sp_kind = O.Span.Escalated; sp_parent = -1;
      sp_edge = None; sp_retry = 0; sp_proto = 90; sp_fault = None }
  in
  O.Span.add col root;
  (* Flood the ring far past capacity: the flagged chain must survive. *)
  for _ = 1 to 50 do
    ignore (mk_span col ~proto:1 ())
  done;
  check Alcotest.int "ring still bounded" 4 (O.Recorder.ring_length rec_);
  check Alcotest.int "both flagged" 2 (O.Recorder.flagged rec_);
  check Alcotest.bool "chain retained in full" true
    (O.Recorder.chain_of rec_ retry = [ root; retry ]);
  (match O.Recorder.last_flagged rec_ with
   | Some s ->
     check Alcotest.int "last flagged is the escalation" root_id
       s.O.Span.sp_id
   | None -> Alcotest.fail "no flagged span");
  let report =
    O.Recorder.postmortem ~reason:"test escalation" ~degrade_level:3
      ~names:(fun _ -> "mylist") rec_
  in
  List.iter
    (fun needle ->
      check Alcotest.bool ("postmortem mentions " ^ needle) true
        (contains report needle))
    [ "test escalation"; "escalated"; "retry"; "transient"; "mylist";
      "level 3" ]

let test_sink_postmortem_one_shot () =
  let sink = O.Sink.create ~postmortem:true () in
  check Alcotest.bool "recorder present" true (O.Sink.recorder sink <> None);
  check Alcotest.bool "collector implied" true (O.Sink.spans sink <> None);
  check Alcotest.bool "armed once" true (O.Sink.take_postmortem sink);
  check Alcotest.bool "latch consumed" false (O.Sink.take_postmortem sink);
  let plain = O.Sink.create ~span_rate:1.0 () in
  check Alcotest.bool "not armed without --postmortem" false
    (O.Sink.take_postmortem plain)

let test_resilience_table_quiet_row () =
  let all_zero =
    O.Export.resilience_table ~retries:0 ~timeouts:0 ~escalations:0
      ~pf_failed:0 ~pf_suppressed:0 ~degrade_steps:0 ~recover_steps:0
      ~degrade_level:0 ()
  in
  let s = Cards_util.Table.render all_zero in
  check Alcotest.bool "quiet run says so" true
    (contains s "(no faults observed)");
  let busy =
    O.Export.resilience_table ~retries:3 ~timeouts:0 ~escalations:0
      ~pf_failed:0 ~pf_suppressed:0 ~degrade_steps:0 ~recover_steps:0
      ~degrade_level:0 ()
  in
  let s = Cards_util.Table.render busy in
  check Alcotest.bool "busy run does not" false
    (contains s "(no faults observed)")

let test_span_chrome_export_flow_events () =
  let col = O.Span.create () in
  let a = mk_span col ~kind:O.Span.Prefetch ~proto:10 () in
  ignore
    (mk_span col ~kind:O.Span.Pf_settle ~parent:a.O.Span.sp_id
       ~edge:O.Span.E_satisfy ~pf_wait:5 ~issued:10 ());
  let s = O.Export.spans_chrome_trace_string ~names:(fun _ -> "ds") col in
  let j = J.parse s in
  let events =
    match J.member "traceEvents" j with
    | Some v -> (match J.to_list_opt v with Some l -> l | None -> [])
    | None -> []
  in
  let phases ph =
    List.filter (fun e -> J.member "ph" e = Some (J.Str ph)) events
  in
  check Alcotest.int "one X per span" 2 (List.length (phases "X"));
  check Alcotest.int "flow start per edge" 1 (List.length (phases "s"));
  check Alcotest.int "flow finish per edge" 1 (List.length (phases "f"))

(* ---------- what-if virtual speedups ---------- *)

let wi_predict ~total col sc = O.Whatif.predict ~total col sc

let wi_scenario ?scope factors =
  O.Whatif.scenario_of_factors ~id:"t" ~label:"test" ?scope factors

let test_whatif_single_chain () =
  (* One demand span: queued 10, proto 100, wire 50.  The identity
     replay must reproduce the totals bit-for-bit; halving proto must
     save exactly 50 cycles. *)
  let col = O.Span.create () in
  ignore (mk_span col ~queued:10 ~proto:100 ~wire:50 ());
  let total = 1000 in
  let id = wi_predict ~total col O.Whatif.identity in
  check Alcotest.int "identity predicts baseline" total id.O.Whatif.p_cycles;
  check Alcotest.int "identity saves nothing" 0 id.O.Whatif.p_saved;
  check Alcotest.int "identity chain = span stall" 160
    id.O.Whatif.p_chain_stall;
  let half =
    wi_predict ~total col
      (wi_scenario { O.Whatif.unit_factors with O.Whatif.f_proto = 0.5 })
  in
  check Alcotest.int "proto x0.5 saves half the proto" 50
    half.O.Whatif.p_saved;
  check Alcotest.int "predicted cycles drop by the saving" (total - 50)
    half.O.Whatif.p_cycles;
  (* Scoping: the span is on ds 1, so a ds-2 scope changes nothing. *)
  let other =
    wi_predict ~total col
      (wi_scenario ~scope:(O.Whatif.Ds 2)
         { O.Whatif.unit_factors with O.Whatif.f_proto = 0.5 })
  in
  check Alcotest.int "other-structure scope saves nothing" 0
    other.O.Whatif.p_saved

let test_whatif_diamond_batch_members () =
  (* Batch (proto 30, wire 40) fanning into two E_member prefetches
     completing at cumulative-serialization offsets (50, 70), and a
     settle at access time 60 waiting 10 cycles for the second member.
     Free wire pulls the member's landing back to cycle 30, so the
     settle wait vanishes entirely. *)
  let col = O.Span.create () in
  let b = mk_span col ~kind:O.Span.Batch ~proto:30 ~wire:40 () in
  let _m1 =
    mk_span col ~kind:O.Span.Prefetch ~parent:b.O.Span.sp_id
      ~edge:O.Span.E_member ~complete:50 ()
  in
  let m2 =
    mk_span col ~kind:O.Span.Prefetch ~parent:b.O.Span.sp_id
      ~edge:O.Span.E_member ~complete:70 ()
  in
  ignore
    (mk_span col ~kind:O.Span.Pf_settle ~parent:m2.O.Span.sp_id
       ~edge:O.Span.E_satisfy ~pf_wait:10 ~issued:60 ());
  let total = 500 in
  let id = wi_predict ~total col O.Whatif.identity in
  check Alcotest.int "identity exact through member completions" total
    id.O.Whatif.p_cycles;
  let free_wire =
    wi_predict ~total col
      (wi_scenario { O.Whatif.unit_factors with O.Whatif.f_wire = 0.0 })
  in
  check Alcotest.int "free wire erases the settle wait" 10
    free_wire.O.Whatif.p_saved

let test_whatif_retry_chain () =
  (* Runtime order: the demand root's id is allocated before its retry
     children, but its span is added after them.  A fault-free fabric
     (retry x0) must recover exactly the summed retry cycles. *)
  let col = O.Span.create () in
  let root_id = O.Span.fresh col in
  let r1 =
    mk_span col ~kind:O.Span.Retry ~parent:root_id ~edge:O.Span.E_retry
      ~retry:40 ~fault:"transient" ()
  in
  ignore
    (mk_span col ~kind:O.Span.Retry ~parent:root_id ~edge:O.Span.E_retry
       ~retry:40 ~fault:"transient" ());
  O.Span.add col
    { r1 with
      O.Span.sp_id = root_id; sp_parent = -1; sp_edge = None;
      sp_kind = O.Span.Demand; sp_retry = 0; sp_proto = 100; sp_issued = 80;
      sp_start = 80; sp_complete = 180; sp_fault = None };
  let total = 400 in
  let id = wi_predict ~total col O.Whatif.identity in
  check Alcotest.int "identity exact across retries" total
    id.O.Whatif.p_cycles;
  let no_retry =
    wi_predict ~total col
      (wi_scenario { O.Whatif.unit_factors with O.Whatif.f_retry = 0.0 })
  in
  check Alcotest.int "retry x0 recovers both backoffs" 80
    no_retry.O.Whatif.p_saved

(* Property over real runs: for every config in a small matrix, the
   identity replay of the recorded span graph reproduces both the
   measured cycle count and the critical-path analyzer's chain cost
   exactly. *)
let test_whatif_identity_matches_real_runs () =
  List.iter
    (fun (qp, rate) ->
      let cfg =
        { pressure_cfg with
          R.Runtime.fabric_config =
            { pressure_cfg.R.Runtime.fabric_config with
              Cards_net.Fabric.qp_count = qp;
              faults =
                { Cards_net.Fabric.no_faults with
                  Cards_net.Fabric.fault_rate = rate; fault_seed = 11 } } }
      in
      let obs = O.Sink.create ~span_rate:1.0 () in
      let res, _ = P.run ~obs (Lazy.force chase) cfg in
      let col = Option.get (O.Sink.spans obs) in
      let id = wi_predict ~total:res.cycles col O.Whatif.identity in
      check Alcotest.int
        (Printf.sprintf "identity exact (qp %d, rate %.1f)" qp rate)
        res.cycles id.O.Whatif.p_cycles;
      match O.Critical_path.analyze col with
      | Some r ->
        check Alcotest.int
          (Printf.sprintf "chain cost matches analyzer (qp %d, rate %.1f)" qp
             rate)
          r.O.Critical_path.r_chain_stall id.O.Whatif.p_chain_stall
      | None -> Alcotest.fail "no spans recorded")
    [ (1, 0.0); (2, 0.0); (2, 0.2) ]

(* Differential: every executable catalog scenario re-runs the program
   with the runtime knob actually changed, and the perturbation is
   timing-only — outputs bit-identical; the identity scenario's re-run
   reproduces the whole result record. *)
let test_whatif_validation_runs_bit_identical () =
  let obs = O.Sink.create ~span_rate:1.0 () in
  let res, rt = P.run ~obs (Lazy.force chase) pressure_cfg in
  let col = Option.get (O.Sink.spans obs) in
  let scenarios = O.Whatif.catalog ~names:(R.Runtime.ds_name rt) col in
  check Alcotest.bool "catalog has per-structure scenarios" true
    (List.exists
       (fun (sc : O.Whatif.scenario) -> sc.sc_scope <> O.Whatif.Global)
       scenarios);
  List.iter
    (fun (sc : O.Whatif.scenario) ->
      match R.Runtime.whatif_config pressure_cfg sc.sc_exec with
      | None -> Alcotest.failf "scenario %s is not executable" sc.sc_id
      | Some cfg' ->
        let res', _ = P.run (Lazy.force chase) cfg' in
        check (Alcotest.list Alcotest.string)
          (sc.sc_id ^ ": outputs bit-identical") res.output res'.output;
        if sc.sc_id = "identity" then
          check Alcotest.bool "identity re-run fully identical" true
            (res' = res))
    scenarios

let test_spans_folded_lines () =
  let col = O.Span.create () in
  let a = mk_span col ~proto:100 () in
  ignore
    (mk_span col ~kind:O.Span.Retry ~parent:a.O.Span.sp_id
       ~edge:O.Span.E_retry ~retry:25 ());
  ignore
    (mk_span col ~kind:O.Span.Retry ~parent:a.O.Span.sp_id
       ~edge:O.Span.E_retry ~retry:25 ());
  let s = O.Export.spans_folded ~names:(fun _ -> "my list") col in
  let lines = String.split_on_char '\n' (String.trim s) in
  (* Two distinct stacks: the demand alone, and the (aggregated) retry
     frames under it. *)
  check Alcotest.int "two aggregated stacks" 2 (List.length lines);
  check Alcotest.bool "demand stack carries its stall" true
    (List.exists (fun l -> l = "demand:my_list:t@0.0 100") lines);
  check Alcotest.bool "retries aggregate under the demand" true
    (List.exists
       (fun l -> l = "demand:my_list:t@0.0;retry:my_list:t@0.0 50")
       lines)

let test_metrics_csv_shape () =
  let obs = full_sink () in
  ignore (P.run ~obs (Lazy.force chase) pressure_cfg);
  let m = Option.get (O.Sink.metrics obs) in
  let csv = O.Export.metrics_csv m in
  let lines = String.split_on_char '\n' (String.trim csv) in
  check Alcotest.int "header + one row per sample"
    (O.Metrics.n_samples m + 1)
    (List.length lines);
  let cols s = List.length (String.split_on_char ',' s) in
  let header = List.hd lines in
  check Alcotest.bool "fetched_bytes column present" true
    (contains header "fetched_bytes");
  List.iter
    (fun l -> check Alcotest.int "row arity matches header" (cols header)
        (cols l))
    lines

(* The zero-cost-off claim, measured: with no collector installed the
   guard paths must not allocate a single extra word.  Each loop is
   timed as the delta between N and 2N iterations, which cancels
   whatever boxing the measurement harness itself does. *)
let minor_words_per_iter f n =
  let delta k =
    let w0 = Gc.minor_words () in
    for _ = 1 to k do f () done;
    Gc.minor_words () -. w0
  in
  ignore (delta n);
  (* warm every lazy path first *)
  let d1 = delta n in
  let d2 = delta (2 * n) in
  (d2 -. d1) /. float_of_int n

let test_spans_off_allocation_free () =
  let mk_rt obs =
    let rt =
      R.Runtime.create ?obs
        { R.Runtime.default_config with
          policy = R.Policy.All_remotable; k = 0.0;
          local_bytes = 1024 * 1024; remotable_bytes = 512 * 1024;
          prefetch_mode = R.Runtime.Pf_none }
        [| R.Static_info.default ~sid:0 |]
    in
    let h = R.Runtime.ds_init rt ~sid:0 in
    let a = R.Runtime.ds_alloc rt ~handle:h ~size:4096 in
    R.Runtime.guard rt ~write:false a;
    (rt, a)
  in
  let n = 10_000 in
  (* [Gc.minor_words] itself boxes a float per probe; the N-vs-2N
     delta cancels it up to sub-word float noise, hence the epsilon. *)
  let eps = 0.01 in
  (* Unmanaged custody checks allocate nothing at all. *)
  let null_rt, _ = mk_rt None in
  let unmanaged =
    minor_words_per_iter (fun () -> R.Runtime.guard null_rt ~write:false 64) n
  in
  check Alcotest.bool "unmanaged guard allocates nothing" true
    (Float.abs unmanaged < eps);
  (* Managed guard hits: whatever the resident path allocates today, a
     sink without a span collector must add nothing to it. *)
  let base_rt, base_a = mk_rt None in
  let base =
    minor_words_per_iter
      (fun () -> R.Runtime.guard base_rt ~write:false base_a) n
  in
  let off_rt, off_a = mk_rt (Some (O.Sink.create ())) in
  let off =
    minor_words_per_iter
      (fun () -> R.Runtime.guard off_rt ~write:false off_a) n
  in
  check Alcotest.bool "span-less sink adds no allocation" true
    (Float.abs (off -. base) < eps);
  check Alcotest.bool "hit path near allocation-free" true (base <= 3.0)

let suite =
  [ Alcotest.test_case "attribution sums to total" `Quick
      test_attribution_sums_to_total;
    Alcotest.test_case "attribution balances when pinned" `Quick
      test_attribution_all_pinned_is_pure_compute_and_alloc;
    Alcotest.test_case "stall ledger exact" `Quick test_stall_attribution_exact;
    Alcotest.test_case "stall sites named" `Quick
      test_stall_attribution_sites_named;
    Alcotest.test_case "stall ledger exact across qp matrix" `Quick
      test_attribution_qp_matrix;
    Alcotest.test_case "chrome trace qp rows" `Quick test_chrome_trace_qp_rows;
    Alcotest.test_case "exporters on zero-event run" `Quick
      test_exporters_on_zero_event_run;
    Alcotest.test_case "regression gate" `Quick test_regress_clean_and_perturbed;
    Alcotest.test_case "full sink is cycle-identical" `Quick
      test_sink_off_bit_identical;
    Alcotest.test_case "ring keeps newest" `Quick test_ring_keeps_newest;
    Alcotest.test_case "ring under capacity" `Quick test_ring_under_capacity;
    Alcotest.test_case "chrome trace round-trips" `Quick
      test_chrome_trace_roundtrips;
    Alcotest.test_case "events jsonl parses" `Quick test_events_jsonl_parses;
    Alcotest.test_case "prefetch & batch events round-trip" `Quick
      test_prefetch_and_batch_events_roundtrip;
    Alcotest.test_case "profile table renders" `Quick
      test_profile_table_renders;
    Alcotest.test_case "metrics sampled" `Quick test_metrics_sampled;
    Alcotest.test_case "metrics jsonl parses" `Quick test_metrics_jsonl_parses;
    Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json rejects garbage" `Quick test_json_rejects_garbage;
    Alcotest.test_case "span sampling deterministic" `Quick
      test_span_sampling_deterministic;
    Alcotest.test_case "span inflight registry" `Quick
      test_span_inflight_registry;
    Alcotest.test_case "span well-formedness" `Quick
      test_span_well_formed_rejects_forward_edge;
    Alcotest.test_case "critical path on a synthetic chain" `Quick
      test_critical_path_synthetic_chain;
    Alcotest.test_case "recorder ring bounded" `Quick test_recorder_ring_bound;
    Alcotest.test_case "recorder retains flagged chain" `Quick
      test_recorder_retains_flagged_chain;
    Alcotest.test_case "postmortem latch one-shot" `Quick
      test_sink_postmortem_one_shot;
    Alcotest.test_case "resilience table quiet row" `Quick
      test_resilience_table_quiet_row;
    Alcotest.test_case "span chrome export flow events" `Quick
      test_span_chrome_export_flow_events;
    Alcotest.test_case "whatif single chain" `Quick test_whatif_single_chain;
    Alcotest.test_case "whatif diamond batch members" `Quick
      test_whatif_diamond_batch_members;
    Alcotest.test_case "whatif retry chain" `Quick test_whatif_retry_chain;
    Alcotest.test_case "whatif identity matches real runs" `Quick
      test_whatif_identity_matches_real_runs;
    Alcotest.test_case "whatif validation bit-identical" `Quick
      test_whatif_validation_runs_bit_identical;
    Alcotest.test_case "spans folded lines" `Quick test_spans_folded_lines;
    Alcotest.test_case "metrics csv shape" `Quick test_metrics_csv_shape;
    Alcotest.test_case "spans off allocation-free" `Quick
      test_spans_off_allocation_free ]
