(* Tests for the observability layer: the event ring, the
   cycle-attribution profiler's exactness invariant, epoch metrics,
   the exporters, and — critically — that observability never perturbs
   simulated time. *)

module O = Cards_obs
module R = Cards_runtime
module P = Cards.Pipeline
module W = Cards_workloads
module J = Cards_util.Json

let check = Alcotest.check

(* A pointer-chase under memory pressure: remote faults, queueing,
   prefetches and evictions all occur, so every bucket and event kind
   is exercised. *)
let chase =
  lazy
    (P.compile_source
       (W.Pointer_chase.source ~variant:"list" ~scale:2048 ~passes:2))

let pressure_cfg =
  { R.Runtime.default_config with
    policy = R.Policy.All_remotable;
    k = 0.0;
    local_bytes = 256 * 1024;
    remotable_bytes = 64 * 1024 }

let full_sink () =
  O.Sink.create ~trace_capacity:200_000 ~metrics_interval:100_000 ()

(* ---------- cycle attribution ---------- *)

let test_attribution_sums_to_total () =
  let res, rt = P.run (Lazy.force chase) pressure_cfg in
  let prof = R.Runtime.profile rt in
  check Alcotest.int "compute + Σ wall buckets = total cycles" res.cycles
    (O.Profile.attributed prof);
  (* The identity must not be vacuous: the run really faulted and the
     fault cycles really landed in per-structure buckets. *)
  let tot = R.Rt_stats.total (R.Runtime.stats rt) in
  check Alcotest.bool "remote faults occurred" true (tot.remote_faults > 0);
  let demand =
    List.fold_left
      (fun acc h ->
        let b = O.Profile.buckets prof h in
        acc + b.O.Profile.p_demand + b.O.Profile.p_queue)
      0 (O.Profile.handles prof)
  in
  check Alcotest.bool "demand/queue buckets non-empty" true (demand > 0);
  check Alcotest.bool "compute bucket non-empty" true
    (O.Profile.compute prof > 0);
  (* Fetch latencies were recorded for the faults. *)
  let hist_total = Array.fold_left ( + ) 0 (O.Profile.merged_hist prof) in
  check Alcotest.bool "latency histogram populated" true (hist_total > 0)

let test_attribution_all_pinned_is_pure_compute_and_alloc () =
  (* Everything pinned: no guards survive versioning's clean loops, no
     faults — attribution still balances, via compute + alloc alone. *)
  let res, rt = P.run (Lazy.force chase) R.Runtime.default_config in
  let prof = R.Runtime.profile rt in
  check Alcotest.int "attributed = total" res.cycles
    (O.Profile.attributed prof);
  List.iter
    (fun h ->
      let b = O.Profile.buckets prof h in
      check Alcotest.int "no demand stall when pinned" 0 b.O.Profile.p_demand;
      check Alcotest.int "no queueing when pinned" 0 b.O.Profile.p_queue)
    (O.Profile.handles prof)

(* ---------- observability does not perturb the simulation ---------- *)

let test_sink_off_bit_identical () =
  let bare, _ = P.run (Lazy.force chase) pressure_cfg in
  let obs = full_sink () in
  let traced, rt = P.run ~obs (Lazy.force chase) pressure_cfg in
  check Alcotest.int "cycles identical with full sink" bare.cycles
    traced.cycles;
  check Alcotest.int "instructions identical" bare.instructions
    traced.instructions;
  check (Alcotest.list Alcotest.string) "output identical" bare.output
    traced.output;
  (* And the sink actually observed the run. *)
  (match O.Sink.trace obs with
   | Some tr -> check Alcotest.bool "events captured" true (O.Trace.length tr > 0)
   | None -> Alcotest.fail "sink lost its trace");
  ignore rt

(* ---------- the event ring ---------- *)

let mk_ev i =
  O.Event.make ~cycle:i ~ds:1 ~obj:i O.Event.Guard_hit

let test_ring_keeps_newest () =
  let tr = O.Trace.create ~capacity:4 in
  for i = 0 to 9 do
    O.Trace.add tr (mk_ev i)
  done;
  check Alcotest.int "length capped" 4 (O.Trace.length tr);
  check Alcotest.int "dropped counted" 6 (O.Trace.dropped tr);
  let cycles = List.map (fun (e : O.Event.t) -> e.ev_cycle) (O.Trace.to_list tr) in
  check (Alcotest.list Alcotest.int) "newest retained, oldest first"
    [ 6; 7; 8; 9 ] cycles

let test_ring_under_capacity () =
  let tr = O.Trace.create ~capacity:8 in
  for i = 0 to 2 do
    O.Trace.add tr (mk_ev i)
  done;
  check Alcotest.int "length" 3 (O.Trace.length tr);
  check Alcotest.int "nothing dropped" 0 (O.Trace.dropped tr);
  let cycles = List.map (fun (e : O.Event.t) -> e.ev_cycle) (O.Trace.to_list tr) in
  check (Alcotest.list Alcotest.int) "insertion order" [ 0; 1; 2 ] cycles

(* ---------- exporters ---------- *)

let test_chrome_trace_roundtrips () =
  let obs = full_sink () in
  let _, rt = P.run ~obs (Lazy.force chase) pressure_cfg in
  let tr = match O.Sink.trace obs with Some t -> t | None -> assert false in
  let s = O.Export.chrome_trace_string ~names:(R.Runtime.ds_name rt) tr in
  let j = J.parse s in
  let events =
    match J.member "traceEvents" j with
    | Some v -> (match J.to_list_opt v with Some l -> l | None -> [])
    | None -> []
  in
  check Alcotest.bool "traceEvents non-empty" true (List.length events > 0);
  (* Every entry is an object with the mandatory trace_event fields. *)
  List.iter
    (fun e ->
      (match J.member "ph" e with
       | Some (J.Str ph) ->
         check Alcotest.bool "known phase" true
           (List.mem ph [ "B"; "E"; "X"; "i"; "M" ])
       | _ -> Alcotest.fail "event missing ph");
      (match J.member "pid" e with
       | Some (J.Int _) -> ()
       | _ -> Alcotest.fail "event missing pid");
      match J.member "ph" e with
      | Some (J.Str "X") -> begin
        (* Duration spans need a non-negative dur. *)
        match J.member "dur" e with
        | Some v -> begin
          match J.to_number_opt v with
          | Some d -> check Alcotest.bool "dur >= 0" true (d >= 0.0)
          | None -> Alcotest.fail "dur not a number"
        end
        | None -> Alcotest.fail "X event missing dur"
      end
      | _ -> ())
    events;
  (* B/E pairs on the interpreter thread must balance (a trap could
     legitimately truncate, but this run completes normally). *)
  let depth =
    List.fold_left
      (fun acc e ->
        match (J.member "ph" e, J.member "tid" e) with
        | (Some (J.Str "B"), Some (J.Int 0)) -> acc + 1
        | (Some (J.Str "E"), Some (J.Int 0)) -> acc - 1
        | _ -> acc)
      0 events
  in
  check Alcotest.int "call stack balanced" 0 depth

let test_events_jsonl_parses () =
  let obs = full_sink () in
  let _ = P.run ~obs (Lazy.force chase) pressure_cfg in
  let tr = match O.Sink.trace obs with Some t -> t | None -> assert false in
  let lines =
    String.split_on_char '\n' (O.Export.events_jsonl tr)
    |> List.filter (fun l -> l <> "")
  in
  check Alcotest.int "one line per event" (O.Trace.length tr)
    (List.length lines);
  List.iter
    (fun line ->
      let j = J.parse line in
      match (J.member "ev" j, J.member "cycle" j) with
      | (Some (J.Str _), Some (J.Int _)) -> ()
      | _ -> Alcotest.fail "event line missing fields")
    lines

let test_profile_table_renders () =
  let res, rt = P.run (Lazy.force chase) pressure_cfg in
  let s =
    Cards_util.Table.render
      (O.Export.profile_table ~names:(R.Runtime.ds_name rt) ~total:res.cycles
         (R.Runtime.profile rt))
  in
  check Alcotest.bool "has TOTAL row" true
    (String.length s > 0
     && (let re = "TOTAL" in
         let n = String.length s and m = String.length re in
         let rec go i = i + m <= n && (String.sub s i m = re || go (i + 1)) in
         go 0));
  (* Exact attribution means no (unattributed) row. *)
  let has sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "no unattributed row" false (has "(unattributed)")

(* ---------- corrected prefetch & batch event fields ---------- *)

let test_prefetch_and_batch_events_roundtrip () =
  let obs = full_sink () in
  let _ = P.run ~obs (Lazy.force chase) pressure_cfg in
  let tr = match O.Sink.trace obs with Some t -> t | None -> assert false in
  let lines =
    String.split_on_char '\n' (O.Export.events_jsonl tr)
    |> List.filter (fun l -> l <> "")
    |> List.map J.parse
  in
  let of_kind k =
    List.filter
      (fun j ->
        match J.member "ev" j with Some (J.Str s) -> s = k | _ -> false)
      lines
  in
  let int_field name j =
    match J.member name j with
    | Some (J.Int v) -> v
    | _ -> Alcotest.fail (Printf.sprintf "missing int field %S" name)
  in
  (* Prefetch_issue renders on the *target* structure's row and names
     its origin explicitly — a cross-structure prefetch must not land
     on the origin's row with the target's object id. *)
  let issues = of_kind "prefetch_issue" in
  check Alcotest.bool "prefetch_issue events present" true (issues <> []);
  List.iter
    (fun j ->
      check Alcotest.bool "target ds valid" true (int_field "ds" j >= 0);
      check Alcotest.bool "target obj valid" true (int_field "obj" j >= 0);
      check Alcotest.bool "origin_ds valid" true (int_field "origin_ds" j >= 0);
      check Alcotest.bool "origin_obj valid" true
        (int_field "origin_obj" j >= 0))
    issues;
  (* Batch_fetch events carry the coalesced object count and payload
     bytes; under pressure at least one real (multi-object) batch goes
     out. *)
  let batches = of_kind "batch_fetch" in
  check Alcotest.bool "batch_fetch events present" true (batches <> []);
  List.iter
    (fun j ->
      check Alcotest.bool "count >= 2" true (int_field "count" j >= 2);
      check Alcotest.bool "bytes > 0" true (int_field "bytes" j > 0))
    batches

(* ---------- epoch metrics ---------- *)

let test_metrics_sampled () =
  let obs = O.Sink.create ~metrics_interval:50_000 () in
  let _, rt = P.run ~obs (Lazy.force chase) pressure_cfg in
  let m = match O.Sink.metrics obs with Some m -> m | None -> assert false in
  check Alcotest.bool "samples recorded" true (O.Metrics.n_samples m > 0);
  let samples = O.Metrics.samples m in
  (* Cycle stamps never decrease, and cumulative counters never
     decrease per structure. *)
  let last_cycle = ref 0 in
  let last_guards = Hashtbl.create 8 in
  List.iter
    (fun (s : O.Metrics.sample) ->
      check Alcotest.bool "cycles monotone" true (s.m_cycle >= !last_cycle);
      last_cycle := s.m_cycle;
      let prev =
        match Hashtbl.find_opt last_guards s.m_ds with Some g -> g | None -> 0
      in
      check Alcotest.bool "counters monotone" true (s.m_guards >= prev);
      Hashtbl.replace last_guards s.m_ds s.m_guards)
    samples;
  (* The number of live structures matches the report. *)
  let dss = List.length (R.Runtime.report rt) in
  let seen = Hashtbl.length last_guards in
  check Alcotest.int "every structure sampled" dss seen

let test_metrics_jsonl_parses () =
  let obs = O.Sink.create ~metrics_interval:50_000 () in
  let _ = P.run ~obs (Lazy.force chase) pressure_cfg in
  let m = match O.Sink.metrics obs with Some m -> m | None -> assert false in
  let lines =
    String.split_on_char '\n' (O.Export.metrics_jsonl m)
    |> List.filter (fun l -> l <> "")
  in
  check Alcotest.int "one line per sample" (O.Metrics.n_samples m)
    (List.length lines);
  List.iter (fun l -> ignore (J.parse l)) lines

(* ---------- json codec ---------- *)

let test_json_roundtrip () =
  let v =
    J.Obj
      [ ("a", J.Int 42); ("b", J.Str "x\"y\n\\z");
        ("c", J.List [ J.Null; J.Bool true; J.Float 1.5 ]);
        ("d", J.Obj [] ) ]
  in
  let s = J.to_string v in
  check Alcotest.bool "roundtrip equal" true (J.parse s = v)

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match J.parse s with
      | exception J.Parse_error _ -> ()
      | _ -> Alcotest.fail ("accepted garbage: " ^ s))
    [ "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2" ]

let suite =
  [ Alcotest.test_case "attribution sums to total" `Quick
      test_attribution_sums_to_total;
    Alcotest.test_case "attribution balances when pinned" `Quick
      test_attribution_all_pinned_is_pure_compute_and_alloc;
    Alcotest.test_case "full sink is cycle-identical" `Quick
      test_sink_off_bit_identical;
    Alcotest.test_case "ring keeps newest" `Quick test_ring_keeps_newest;
    Alcotest.test_case "ring under capacity" `Quick test_ring_under_capacity;
    Alcotest.test_case "chrome trace round-trips" `Quick
      test_chrome_trace_roundtrips;
    Alcotest.test_case "events jsonl parses" `Quick test_events_jsonl_parses;
    Alcotest.test_case "prefetch & batch events round-trip" `Quick
      test_prefetch_and_batch_events_roundtrip;
    Alcotest.test_case "profile table renders" `Quick
      test_profile_table_renders;
    Alcotest.test_case "metrics sampled" `Quick test_metrics_sampled;
    Alcotest.test_case "metrics jsonl parses" `Quick test_metrics_jsonl_parses;
    Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json rejects garbage" `Quick test_json_rejects_garbage ]
