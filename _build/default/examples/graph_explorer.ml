(* BFS under a shrinking local-memory budget: watch the runtime demote
   pinned structures as they stop fitting, and how each policy degrades.

     dune exec examples/graph_explorer.exe *)

module R = Cards_runtime
module P = Cards.Pipeline
module W = Cards_workloads
module B = Cards_baselines
module T = Cards_util.Table

let () =
  let src = W.Bfs.source ~nodes:15000 ~edges:75000 ~sources:2 in
  let compiled = P.compile_source src in
  let prof = B.Mira.profile compiled in
  let wss = Array.fold_left ( + ) 0 prof.B.Mira.per_sid_bytes in
  Printf.printf
    "BFS: %d structures, working set %s\n\
     (edge arrays dominate; frontiers and visited flags are small but hot)\n"
    (Array.length compiled.infos)
    (T.fmt_bytes (float_of_int wss));
  let t =
    T.create ~title:"\nRuntime (Mcycles) as local memory shrinks"
      ~header:[ "local %"; "linear"; "max-use"; "all-remotable"; "demotions" ]
  in
  List.iter
    (fun pct ->
      let remot = wss / 16 in
      let local = (wss * pct / 100) + remot in
      let cycles policy k =
        let res, rt =
          P.run compiled
            { R.Runtime.default_config with
              policy; k; local_bytes = local; remotable_bytes = remot }
        in
        (res.cycles, (R.Rt_stats.total (R.Runtime.stats rt)).demotions)
      in
      let lin, lin_dem = cycles R.Policy.Linear 1.0 in
      let mu, _ = cycles R.Policy.Max_use 1.0 in
      let ar, _ = cycles R.Policy.All_remotable 0.0 in
      T.add_row t
        [ string_of_int pct ^ "%";
          Printf.sprintf "%.1f" (float_of_int lin /. 1e6);
          Printf.sprintf "%.1f" (float_of_int mu /. 1e6);
          Printf.sprintf "%.1f" (float_of_int ar /. 1e6);
          string_of_int lin_dem ])
    [ 100; 75; 50; 25 ];
  T.print t;
  print_endline
    "Demotions are the runtime overriding static pinning hints when a\n\
     structure outgrows the pinned budget (paper section 4.2): smaller\n\
     budgets mean more overridden hints and more guarded execution."
