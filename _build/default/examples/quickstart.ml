(* Quickstart: compile a MiniC program with the CaRDS pipeline and run
   it against a far-memory runtime.

     dune exec examples/quickstart.exe

   The program is the paper's Listing 1: two arrays created by the same
   helper, one hot and one cold.  We compile it, look at what the
   compiler discovered, then run it twice — once with enough pinned
   memory and once all-remote — and compare what the runtime saw. *)

module R = Cards_runtime
module P = Cards.Pipeline

let source =
  {|
int ARRAY_SIZE = 65536;
int NTIMES = 10;

double* alloc() {
  return malloc(ARRAY_SIZE * 8);
}

void set(double *ds, double val) {
  for (int j = 0; j < ARRAY_SIZE; j = j + 1) {
    ds[j] = val;
  }
}

void main() {
  double *ds1 = alloc();
  double *ds2 = alloc();
  set(ds1, 0.0);
  set(ds2, 1.0);
  for (int k = 0; k < NTIMES; k = k + 1) {
    set(ds2, 1.0 * k);
  }
  print_float(ds2[0]);
}
|}

let mb x = x * 1024 * 1024

let () =
  (* 1. Compile: DSA, pool allocation, guards, elimination, versioning. *)
  let compiled = P.compile_source source in
  Printf.printf "compiled: %d data structures, %d guards after elimination, %d loops versioned\n\n"
    (Array.length compiled.infos) compiled.static_guards compiled.versioned_loops;
  Array.iter
    (fun (i : R.Static_info.t) ->
      Printf.printf
        "  structure %-8s object=%-5d prefetch=%-7s max-use score=%d\n"
        i.name i.obj_size
        (R.Static_info.prefetch_class_name i.prefetch)
        i.score_use)
    compiled.infos;
  (* 2. Run with a pinned-friendly configuration. *)
  let run name cfg =
    let res, rt = P.run compiled cfg in
    let tot = R.Rt_stats.total (R.Runtime.stats rt) in
    Printf.printf
      "\n%-14s output=%-6s cycles=%-10s guards executed=%-9d remote faults=%d\n"
      name
      (String.concat "," res.output)
      (Cards_util.Table.fmt_cycles (float_of_int res.cycles))
      tot.guards tot.remote_faults
  in
  run "pinned (k=1)"
    { R.Runtime.default_config with
      policy = R.Policy.Linear; k = 1.0;
      local_bytes = mb 2; remotable_bytes = mb 1 / 4 };
  run "all-remotable"
    { R.Runtime.default_config with
      policy = R.Policy.All_remotable; k = 0.0;
      local_bytes = mb 2; remotable_bytes = mb 1 / 4 };
  print_endline
    "\nWith pinned memory the hot loops run the uninstrumented clean\n\
     version (zero guards); all-remotable pays a guard per access."
