examples/graph_explorer.mli:
