examples/quickstart.mli:
