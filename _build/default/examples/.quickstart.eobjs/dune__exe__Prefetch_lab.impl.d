examples/prefetch_lab.ml: Array Cards Cards_baselines Cards_runtime Cards_util Cards_workloads List Printf String Sys
