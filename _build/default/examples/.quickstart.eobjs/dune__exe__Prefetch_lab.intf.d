examples/prefetch_lab.mli:
