examples/quickstart.ml: Array Cards Cards_runtime Cards_util Printf String
