examples/taxi_analytics.mli:
