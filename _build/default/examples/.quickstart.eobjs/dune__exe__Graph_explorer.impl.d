examples/graph_explorer.ml: Array Cards Cards_baselines Cards_runtime Cards_util Cards_workloads List Printf
