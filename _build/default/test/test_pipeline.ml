(* End-to-end pipeline tests: compile + run every workload under many
   far-memory configurations and check (a) functional equivalence to
   the all-local run, (b) the qualitative performance relations the
   paper reports. *)

module R = Cards_runtime
module P = Cards.Pipeline
module W = Cards_workloads
module B = Cards_baselines

let check = Alcotest.check

let kb x = x * 1024

let cfg ?(policy = R.Policy.Linear) ?(k = 1.0) ?(local = kb 8192)
    ?(remot = kb 1024) () =
  { R.Runtime.default_config with
    policy; k; local_bytes = local; remotable_bytes = remot }

let small_workloads =
  [ ("listing1", W.Listing1.source ~elems:8192 ~ntimes:3);
    ("pc-array", W.Pointer_chase.source ~variant:"array" ~scale:4096 ~passes:2);
    ("pc-vector", W.Pointer_chase.source ~variant:"vector" ~scale:2048 ~passes:2);
    ("pc-list", W.Pointer_chase.source ~variant:"list" ~scale:2048 ~passes:2);
    ("pc-map", W.Pointer_chase.source ~variant:"map" ~scale:512 ~passes:2);
    ("pc-tree", W.Pointer_chase.source ~variant:"tree" ~scale:2048 ~passes:2);
    ("analytics", W.Analytics.source ~trips:4000 ~query_passes:1);
    ("ftfdapml", W.Ftfdapml.source ~cz:6 ~cym:16 ~cxm:16 ~steps:2);
    ("bfs", W.Bfs.source ~nodes:2000 ~edges:8000 ~sources:1) ]

(* ---------- functional equivalence ---------- *)

(* The far-memory configuration must never change program results:
   run each workload under a battery of policies and tight memories and
   compare against the guard-free all-local execution. *)
let test_output_equivalence (name, src) () =
  let c = P.compile_source src in
  let reference, _ = B.Noguard.run c in
  let configs =
    [ cfg ();
      cfg ~policy:R.Policy.All_remotable ~k:0.0 ();
      cfg ~policy:R.Policy.Max_use ~k:0.5 ();
      cfg ~policy:R.Policy.Max_reach ~k:0.5 ();
      cfg ~policy:(R.Policy.Random 13) ~k:0.5 ();
      (* Very tight memory: heavy eviction traffic. *)
      cfg ~policy:R.Policy.All_remotable ~k:0.0 ~local:(kb 256) ~remot:(kb 128) () ]
  in
  List.iteri
    (fun i c' ->
      let res, _ = P.run c c' in
      check (Alcotest.list Alcotest.string)
        (Printf.sprintf "%s config %d output" name i)
        reference.output res.output)
    configs;
  (* TrackFM compilation must agree too. *)
  let tfm = B.Trackfm.compile_source src in
  let tres, _ = B.Trackfm.run tfm ~local_bytes:(kb 512) in
  check (Alcotest.list Alcotest.string) (name ^ " trackfm output")
    reference.output tres.output;
  (* And Mira. *)
  let mres, _ = B.Mira.run c ~local_bytes:(kb 512) ~remotable_bytes:(kb 256) in
  check (Alcotest.list Alcotest.string) (name ^ " mira output") reference.output
    mres.output

let equivalence_tests =
  List.map
    (fun (name, src) ->
      ("outputs equal: " ^ name, `Quick, test_output_equivalence (name, src)))
    small_workloads

(* ---------- qualitative performance relations ---------- *)

let listing1_src = W.Listing1.source ~elems:32768 ~ntimes:8

let test_all_local_matches_plain () =
  (* With everything pinned, versioned clean loops should bring the
     instrumented build within a few percent of the guard-free one. *)
  let c = P.compile_source listing1_src in
  let plain, _ = B.Noguard.run c in
  let res, _ = P.run c (cfg ~policy:R.Policy.All_local ()) in
  let ratio = float_of_int res.cycles /. float_of_int plain.cycles in
  check Alcotest.bool
    (Printf.sprintf "all-local within 10%% of plain (ratio %.3f)" ratio) true
    (ratio < 1.10)

let test_all_remotable_is_slowest () =
  let c = P.compile_source listing1_src in
  let allrem, _ = P.run c (cfg ~policy:R.Policy.All_remotable ~k:0.0 ()) in
  let pinned, _ = P.run c (cfg ~policy:R.Policy.All_local ()) in
  check Alcotest.bool "conservative all-remotable much slower" true
    (allrem.cycles > 2 * pinned.cycles)

let test_fig4_max_use_beats_linear () =
  (* Paper Fig. 4: at k = 50% with two structures, Max Use localizes
     the hot ds2 while Linear wastes the slot on ds1 — ~2x. *)
  let c = P.compile_source listing1_src in
  (* Local memory fits exactly one of the two arrays pinned. *)
  let arr_bytes = 32768 * 8 in
  let local = arr_bytes + (arr_bytes / 2) and remot = arr_bytes / 4 in
  let linear, _ = P.run c (cfg ~policy:R.Policy.Linear ~k:0.5 ~local ~remot ()) in
  let maxuse, _ = P.run c (cfg ~policy:R.Policy.Max_use ~k:0.5 ~local ~remot ()) in
  let speedup = float_of_int linear.cycles /. float_of_int maxuse.cycles in
  check Alcotest.bool
    (Printf.sprintf "max-use >= 1.5x linear at k=50%% (got %.2fx)" speedup) true
    (speedup >= 1.5)

let test_guard_counts_cards_below_trackfm () =
  let src = W.Analytics.source ~trips:2000 ~query_passes:1 in
  let cards_c = P.compile_source src in
  let tfm_c = B.Trackfm.compile_source src in
  check Alcotest.bool "cards eliminates more guards statically" true
    (cards_c.static_guards <= tfm_c.static_guards);
  check Alcotest.bool "cards versioned some loops" true (cards_c.versioned_loops > 0);
  check Alcotest.int "trackfm never versions" 0 tfm_c.versioned_loops

let test_fig9_cards_beats_trackfm_on_chase () =
  (* Pointer-chasing workloads under memory pressure: CaRDS's per-class
     prefetchers + per-structure policies beat TrackFM (Fig. 9).
     Local memory is 75 % of each variant's working set with a quarter
     reserved as remotable cache — the proportions every Fig. 9 bench
     point uses. *)
  List.iter
    (fun (variant, scale, wss_kb) ->
      let src = W.Pointer_chase.source ~variant ~scale ~passes:2 in
      let cards_c = P.compile_source src in
      let tfm_c = B.Trackfm.compile_source src in
      let local = kb wss_kb * 75 / 100 in
      let remot = local / 4 in
      let cres, _ =
        P.run cards_c (cfg ~policy:R.Policy.Linear ~k:1.0 ~local ~remot ())
      in
      let tres, _ = B.Trackfm.run tfm_c ~local_bytes:local in
      let speedup = float_of_int tres.cycles /. float_of_int cres.cycles in
      check Alcotest.bool
        (Printf.sprintf "cards faster than trackfm on %s (%.2fx)" variant speedup)
        true (speedup > 1.0))
    [ ("list", 16384, 1228); ("map", 4096, 416); ("tree", 16384, 1536) ]

let test_mira_wins_with_ample_memory () =
  (* Fig. 8: as local memory grows, the profile-guided baseline pulls
     ahead of (or matches) size-oblivious CaRDS. *)
  let src = W.Analytics.source ~trips:4000 ~query_passes:1 in
  let c = P.compile_source src in
  let local = kb 512 and remot = kb 128 in
  let cres, _ = P.run c (cfg ~policy:R.Policy.Linear ~k:1.0 ~local ~remot ()) in
  let mres, _ = B.Mira.run c ~local_bytes:local ~remotable_bytes:remot in
  check Alcotest.bool "mira <= cards cycles" true (mres.cycles <= cres.cycles)

let test_versioning_pays () =
  (* Ablation: with versioning disabled, the fully-pinned run keeps
     paying custody checks in hot loops. *)
  let src = listing1_src in
  let with_v = P.compile_source src in
  let without_v =
    P.compile_source
      ~options:{ P.cards_options with versioning = false }
      src
  in
  let a, _ = P.run with_v (cfg ~policy:R.Policy.All_local ()) in
  let b, _ = P.run without_v (cfg ~policy:R.Policy.All_local ()) in
  check Alcotest.bool "versioning reduces cycles" true (a.cycles < b.cycles)

let test_guard_elim_pays () =
  (* Ablation: CaRDS-level elimination beats TrackFM-level on struct
     traffic. *)
  let src = W.Pointer_chase.source ~variant:"list" ~scale:2048 ~passes:2 in
  let cards_level = P.compile_source src in
  let tf_level =
    P.compile_source
      ~options:{ P.cards_options with guard_elim_level = Cards_transform.Guard_elim.Ltrackfm }
      src
  in
  check Alcotest.bool "fewer static guards at cards level" true
    (cards_level.static_guards <= tf_level.static_guards)

let test_determinism_across_runs () =
  let c = P.compile_source (W.Bfs.source ~nodes:1000 ~edges:4000 ~sources:1) in
  let conf = cfg ~policy:R.Policy.All_remotable ~k:0.0 ~local:(kb 256) ~remot:(kb 128) () in
  let a, _ = P.run c conf in
  let b, _ = P.run c conf in
  check Alcotest.int "cycle-exact determinism" a.cycles b.cycles

let test_static_table_sane () =
  let c = P.compile_source (W.Analytics.source ~trips:200 ~query_passes:1) in
  check Alcotest.int "analytics identifies 22 structures" 22 (Array.length c.infos);
  Array.iteri
    (fun i (inf : R.Static_info.t) ->
      check Alcotest.int "sids in order" i inf.sid;
      check Alcotest.bool "object size is a power of two" true
        (inf.obj_size land (inf.obj_size - 1) = 0);
      check Alcotest.bool "scores non-negative" true
        (inf.score_use >= 0 && inf.score_reach >= 0))
    c.infos

let suite =
  equivalence_tests
  @ [ ("all-local ~ plain", `Quick, test_all_local_matches_plain);
      ("all-remotable slowest", `Quick, test_all_remotable_is_slowest);
      ("fig4: max-use beats linear", `Quick, test_fig4_max_use_beats_linear);
      ("guard counts vs trackfm", `Quick, test_guard_counts_cards_below_trackfm);
      ("fig9: chase speedups", `Quick, test_fig9_cards_beats_trackfm_on_chase);
      ("fig8: mira with ample memory", `Quick, test_mira_wins_with_ample_memory);
      ("ablation: versioning", `Quick, test_versioning_pays);
      ("ablation: guard elim level", `Quick, test_guard_elim_pays);
      ("determinism", `Quick, test_determinism_across_runs);
      ("static table", `Quick, test_static_table_sane) ]
