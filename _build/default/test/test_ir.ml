(* Tests for the IR core: types, builder, verifier, printer. *)

module I = Cards_ir
open I

let check = Alcotest.check

(* ---------- Types ---------- *)

let test_sizes () =
  check Alcotest.int "i64" 8 (Types.size_of Types.I64);
  check Alcotest.int "f64" 8 (Types.size_of Types.F64);
  check Alcotest.int "ptr" 8 (Types.size_of (Types.Ptr Types.F64));
  let s = Types.Struct ("node", [| Types.I64; Types.F64; Types.Ptr Types.I64 |]) in
  check Alcotest.int "struct" 24 (Types.size_of s);
  check Alcotest.int "void" 0 (Types.size_of Types.Void)

let test_field_offsets () =
  let s = Types.Struct ("s", [| Types.I64; Types.F64; Types.Ptr Types.I64 |]) in
  check Alcotest.int "field 0" 0 (Types.field_offset s 0);
  check Alcotest.int "field 1" 8 (Types.field_offset s 1);
  check Alcotest.int "field 2" 16 (Types.field_offset s 2);
  check Alcotest.bool "field 1 type" true
    (Types.equal (Types.field_type s 1) Types.F64);
  Alcotest.check_raises "bad field"
    (Invalid_argument "Types.field_offset: field index out of range") (fun () ->
      ignore (Types.field_offset s 3))

let test_type_equal_ignores_names () =
  let a = Types.Struct ("a", [| Types.I64 |]) in
  let b = Types.Struct ("b", [| Types.I64 |]) in
  check Alcotest.bool "names ignored" true (Types.equal a b);
  check Alcotest.bool "fields matter" false
    (Types.equal a (Types.Struct ("a", [| Types.F64 |])))

let test_pointee () =
  check Alcotest.bool "pointee" true
    (Types.equal (Types.pointee (Types.Ptr Types.F64)) Types.F64);
  Alcotest.check_raises "non-pointer"
    (Invalid_argument "Types.pointee: not a pointer") (fun () ->
      ignore (Types.pointee Types.I64))

(* ---------- Builder ---------- *)

let test_builder_simple_function () =
  let b = Builder.create ~name:"add" ~params:[ ("x", Types.I64); ("y", Types.I64) ]
      ~ret:Types.I64 in
  let s = Builder.bin b Instr.Add (Builder.param b "x") (Builder.param b "y") in
  Builder.ret b (Some s);
  let f = Builder.finish b in
  check Alcotest.string "name" "add" f.Func.name;
  check Alcotest.int "arity" 2 (Func.arity f);
  check Alcotest.int "blocks" 1 (Array.length f.Func.blocks)

let test_builder_for_loop_shape () =
  let b = Builder.create ~name:"count" ~params:[] ~ret:Types.I64 in
  let acc = Builder.fresh b Types.I64 in
  Builder.emit b (Instr.Mov (acc, Instr.Imm 0L));
  Builder.build_for b ~init:(Instr.Imm 0L) ~limit:(Instr.Imm 10L) ~step:1
    (fun b _i ->
      Builder.emit b (Instr.Bin (acc, Instr.Add, Instr.Reg acc, Instr.Imm 1L)));
  Builder.ret b (Some (Instr.Reg acc));
  let f = Builder.finish b in
  (* entry + header + body + exit *)
  check Alcotest.int "four blocks" 4 (Array.length f.Func.blocks);
  (* the function verifies in a module *)
  let m = Irmod.add_func Irmod.empty f in
  check (Alcotest.list Alcotest.string) "no verify errors" []
    (List.map (fun (e : Verify.error) -> e.what) (Verify.check_module m))

let test_builder_unterminated_fails () =
  let b = Builder.create ~name:"oops" ~params:[] ~ret:Types.Void in
  ignore (Builder.new_block b);
  Builder.ret b None;
  Alcotest.check_raises "unterminated block"
    (Invalid_argument "Builder.finish: block L1 of oops not terminated") (fun () ->
      ignore (Builder.finish b))

let test_builder_double_seal_fails () =
  let b = Builder.create ~name:"seal" ~params:[] ~ret:Types.Void in
  Builder.ret b None;
  Alcotest.check_raises "emit after seal"
    (Invalid_argument "Builder.emit: block L0 of seal already sealed") (fun () ->
      Builder.emit b (Instr.Mov (0, Instr.Imm 0L)))

let test_builder_if () =
  let b = Builder.create ~name:"abs" ~params:[ ("x", Types.I64) ] ~ret:Types.I64 in
  let x = Builder.param b "x" in
  let out = Builder.fresh b Types.I64 in
  let c = Builder.cmp b Instr.Lt x (Instr.Imm 0L) in
  Builder.build_if b c
    (fun b ->
      let neg = Builder.bin b Instr.Sub (Instr.Imm 0L) x in
      Builder.emit b (Instr.Mov (out, neg)))
    (fun b -> Builder.emit b (Instr.Mov (out, x)));
  Builder.ret b (Some (Instr.Reg out));
  let f = Builder.finish b in
  let m = Irmod.add_func Irmod.empty f in
  Verify.check_exn m

(* ---------- Verify ---------- *)

let bad_func name blocks ~nregs =
  { Func.name; params = []; ret = Types.Void;
    reg_tys = Array.make nregs Types.I64; blocks }

let test_verify_catches_bad_target () =
  let f =
    bad_func "f" [| { Func.bid = 0; instrs = [||]; term = Instr.Br 7 } |] ~nregs:0
  in
  let errs = Verify.check_func (Irmod.add_func Irmod.empty f) f in
  check Alcotest.bool "branch error reported" true
    (List.exists (fun (e : Verify.error) ->
         e.what = "branch target L7 out of range") errs)

let test_verify_catches_bad_reg () =
  let f =
    bad_func "f"
      [| { Func.bid = 0;
           instrs = [| Instr.Mov (5, Instr.Imm 1L) |];
           term = Instr.Ret None } |]
      ~nregs:1
  in
  let errs = Verify.check_func (Irmod.add_func Irmod.empty f) f in
  check Alcotest.bool "register error" true
    (List.exists (fun (e : Verify.error) ->
         e.what = "defined register %r5 out of range") errs)

let test_verify_catches_unknown_call () =
  let f =
    bad_func "f"
      [| { Func.bid = 0;
           instrs = [| Instr.Call (None, "nope", []) |];
           term = Instr.Ret None } |]
      ~nregs:0
  in
  let errs = Verify.check_func (Irmod.add_func Irmod.empty f) f in
  check Alcotest.bool "unknown call" true
    (List.exists (fun (e : Verify.error) ->
         e.what = "call to unknown function nope") errs)

let test_verify_intrinsics_allowed () =
  let f =
    bad_func "f"
      [| { Func.bid = 0;
           instrs = [| Instr.Call (None, "print_int", [ Instr.Imm 1L ]) |];
           term = Instr.Ret None } |]
      ~nregs:0
  in
  check Alcotest.int "no errors" 0
    (List.length (Verify.check_func (Irmod.add_func Irmod.empty f) f))

let test_verify_arity () =
  let callee =
    { Func.name = "g"; params = [ (0, Types.I64) ]; ret = Types.Void;
      reg_tys = [| Types.I64 |];
      blocks = [| { Func.bid = 0; instrs = [||]; term = Instr.Ret None } |] }
  in
  let caller =
    bad_func "f"
      [| { Func.bid = 0;
           instrs = [| Instr.Call (None, "g", []) |];
           term = Instr.Ret None } |]
      ~nregs:0
  in
  let m = Irmod.add_func (Irmod.add_func Irmod.empty callee) caller in
  let errs = Verify.check_func m caller in
  check Alcotest.bool "arity mismatch" true
    (List.exists (fun (e : Verify.error) ->
         e.what = "call to g with 0 args (arity 1)") errs)

(* ---------- Func helpers ---------- *)

let test_predecessors () =
  let blocks =
    [| { Func.bid = 0; instrs = [||]; term = Instr.Cbr (Instr.Imm 1L, 1, 2) };
       { Func.bid = 1; instrs = [||]; term = Instr.Br 2 };
       { Func.bid = 2; instrs = [||]; term = Instr.Ret None } |]
  in
  let f = bad_func "f" blocks ~nregs:0 in
  let preds = Func.predecessors f in
  check (Alcotest.list Alcotest.int) "preds of 2" [ 0; 1 ] preds.(2);
  check (Alcotest.list Alcotest.int) "preds of 0" [] preds.(0)

(* ---------- Printer ---------- *)

let test_printer_contains () =
  let b = Builder.create ~name:"p" ~params:[ ("x", Types.I64) ] ~ret:Types.I64 in
  let s = Builder.bin b Instr.Add (Builder.param b "x") (Instr.Imm 1L) in
  Builder.ret b (Some s);
  let txt = Printer.func_to_string (Builder.finish b) in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "defines p" true (contains txt "define i64 @p(");
  check Alcotest.bool "has add" true (contains txt "add %r0, 1");
  check Alcotest.bool "has ret" true (contains txt "ret %r1")

(* ---------- Instr metadata ---------- *)

let test_instr_defs_uses () =
  let i = Instr.Store (Types.I64, Instr.Reg 3, Instr.Reg 4) in
  check Alcotest.bool "store defines nothing" true (Instr.defined_reg i = None);
  check Alcotest.int "store uses 2" 2 (List.length (Instr.used_values i));
  let g = Instr.Gep (7, Instr.Reg 1, Instr.Imm 8L, 8) in
  check Alcotest.bool "gep defines" true (Instr.defined_reg g = Some 7)

let test_map_values () =
  let i = Instr.Bin (0, Instr.Add, Instr.Reg 1, Instr.Reg 2) in
  let j =
    Instr.map_instr_values
      (function Instr.Reg r -> Instr.Reg (r + 10) | v -> v)
      i
  in
  match j with
  | Instr.Bin (0, Instr.Add, Instr.Reg 11, Instr.Reg 12) -> ()
  | _ -> Alcotest.fail "map_instr_values rewrote wrong"

let suite =
  [ ("type sizes", `Quick, test_sizes);
    ("field offsets", `Quick, test_field_offsets);
    ("type equality", `Quick, test_type_equal_ignores_names);
    ("pointee", `Quick, test_pointee);
    ("builder simple", `Quick, test_builder_simple_function);
    ("builder for loop", `Quick, test_builder_for_loop_shape);
    ("builder unterminated", `Quick, test_builder_unterminated_fails);
    ("builder double seal", `Quick, test_builder_double_seal_fails);
    ("builder if", `Quick, test_builder_if);
    ("verify bad target", `Quick, test_verify_catches_bad_target);
    ("verify bad reg", `Quick, test_verify_catches_bad_reg);
    ("verify unknown call", `Quick, test_verify_catches_unknown_call);
    ("verify intrinsics", `Quick, test_verify_intrinsics_allowed);
    ("verify arity", `Quick, test_verify_arity);
    ("predecessors", `Quick, test_predecessors);
    ("printer", `Quick, test_printer_contains);
    ("instr defs/uses", `Quick, test_instr_defs_uses);
    ("map values", `Quick, test_map_values) ]
