test/test_runtime.ml: Alcotest Array Cards_net Cards_runtime Cards_util Gen List QCheck QCheck_alcotest
