test/test_transform.ml: Alcotest Array Cards_analysis Cards_ir Cards_transform Cards_util Func Instr Irmod List Verify
