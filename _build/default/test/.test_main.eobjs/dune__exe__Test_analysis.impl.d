test/test_analysis.ml: Alcotest Array Cards_analysis Cards_ir Cards_util Func Instr Irmod List QCheck QCheck_alcotest String Types
