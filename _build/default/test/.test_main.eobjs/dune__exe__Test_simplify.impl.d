test/test_simplify.ml: Alcotest Array Builder Cards Cards_baselines Cards_interp Cards_ir Cards_transform Cards_workloads Func Instr Irmod List QCheck QCheck_alcotest Test_fuzz Types
