test/test_interp.ml: Alcotest Cards_interp Cards_ir Cards_runtime Cards_workloads
