test/test_baselines.ml: Alcotest Array Cards Cards_baselines Cards_runtime Cards_workloads List
