test/test_pipeline.ml: Alcotest Array Cards Cards_baselines Cards_runtime Cards_transform Cards_workloads List Printf
