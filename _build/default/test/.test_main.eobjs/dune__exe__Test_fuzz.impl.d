test/test_fuzz.ml: Alcotest Buffer Cards Cards_baselines Cards_runtime Cards_util List Printexc Printf QCheck QCheck_alcotest
