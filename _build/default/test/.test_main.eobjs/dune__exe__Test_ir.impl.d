test/test_ir.ml: Alcotest Array Builder Cards_ir Func Instr Irmod List Printer String Types Verify
