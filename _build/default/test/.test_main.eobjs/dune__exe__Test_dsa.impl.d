test/test_dsa.ml: Alcotest Array Cards_analysis Cards_ir List
