test/test_workloads.ml: Alcotest Array Cards Cards_baselines Cards_runtime Cards_workloads Float List
