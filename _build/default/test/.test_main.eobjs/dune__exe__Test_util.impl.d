test/test_util.ml: Alcotest Array Cards_util Float Gen Hashtbl Int List QCheck QCheck_alcotest Set String
