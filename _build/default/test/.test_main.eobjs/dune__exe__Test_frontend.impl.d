test/test_frontend.ml: Alcotest Cards_interp Cards_ir Cards_runtime List
