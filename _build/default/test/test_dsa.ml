(* Tests for the data-structure analysis: disjointness, context
   sensitivity, escape, the handle plan, shape facts, and instance
   attribution — mostly on the paper's own examples. *)

module I = Cards_ir
module A = Cards_analysis

let check = Alcotest.check

let analyze src =
  let m = I.Minic.compile src in
  (m, A.Dsa.analyze m)

let listing1 =
  {|int ARRAY_SIZE = 100;
    int NTIMES = 3;
    double* alloc() { return malloc(ARRAY_SIZE * 8); }
    void set(double *ds, double val) {
      for (int j = 0; j < ARRAY_SIZE; j = j + 1) { ds[j] = val; }
    }
    void main() {
      double *ds1 = alloc();
      double *ds2 = alloc();
      set(ds1, 0.0);
      set(ds2, 1.0);
      for (int k = 0; k < NTIMES; k = k + 1) { set(ds2, 1.0 * k); }
    }|}

(* ---------- disjointness & context sensitivity ---------- *)

let test_listing1_two_descriptors () =
  let _, dsa = analyze listing1 in
  check Alcotest.int "two disjoint structures" 2 (A.Dsa.n_descriptors dsa);
  match A.Dsa.descriptors dsa with
  | [ d0; d1 ] ->
    check Alcotest.string "both initialized in main" "main" d0.desc_init_func;
    check Alcotest.string "both initialized in main" "main" d1.desc_init_func;
    check Alcotest.bool "distinct nodes" true
      (A.Dsa.nodes_disjoint dsa d0.desc_node d1.desc_node);
    (* Both come from the same static malloc in alloc(). *)
    check Alcotest.bool "same alloc site" true
      (d0.desc_alloc_sites = d1.desc_alloc_sites)
  | _ -> Alcotest.fail "expected exactly two descriptors"

let test_listing1_shape_facts () =
  let _, dsa = analyze listing1 in
  List.iter
    (fun (d : A.Dsa.desc_info) ->
      check Alcotest.bool "strided" true d.desc_strided;
      check Alcotest.bool "not recursive" false d.desc_recursive;
      check Alcotest.int "element size 8" 8 d.desc_elem_size;
      check Alcotest.int "no pointer fields" 0 d.desc_ptr_fields)
    (A.Dsa.descriptors dsa)

let test_listing1_handle_plan () =
  let _, dsa = analyze listing1 in
  (* alloc's heap node escapes via ret: one handle parameter. *)
  check Alcotest.int "alloc takes one handle" 1
    (List.length (A.Dsa.argnodes dsa "alloc"));
  (* set only accesses, never allocates: no handles. *)
  check Alcotest.int "set takes no handle" 0
    (List.length (A.Dsa.argnodes dsa "set"));
  (* main owns both ds_inits; main never takes handles. *)
  check Alcotest.int "main inits two" 2 (List.length (A.Dsa.init_nodes dsa "main"));
  check Alcotest.int "main takes none" 0 (List.length (A.Dsa.argnodes dsa "main"))

let test_merged_when_aliased () =
  (* Conditional aliasing forces unification: one structure, not two. *)
  let _, dsa =
    analyze
      {|int c = 1;
        void main() {
          double *a = malloc(80);
          double *b = malloc(80);
          double *p = a;
          if (c > 0) { p = b; }
          p[0] = 1.0;
        }|}
  in
  check Alcotest.int "aliased mallocs merge" 1 (A.Dsa.n_descriptors dsa)

let test_distinct_without_aliasing () =
  let _, dsa =
    analyze
      {|void main() {
          double *a = malloc(80);
          double *b = malloc(80);
          a[0] = 1.0;
          b[0] = 2.0;
        }|}
  in
  check Alcotest.int "two structures" 2 (A.Dsa.n_descriptors dsa)

let test_store_links_structures () =
  (* Storing a pointer into another structure's field connects them but
     keeps them distinct nodes (field-linked, not unified). *)
  let _, dsa =
    analyze
      {|struct Holder { double *payload; }
        void main() {
          struct Holder *h = malloc(sizeof(struct Holder));
          double *d = malloc(80);
          h->payload = d;
          double *back = h->payload;
          back[0] = 1.0;
        }|}
  in
  check Alcotest.int "holder and payload distinct" 2 (A.Dsa.n_descriptors dsa)

(* ---------- recursive structures ---------- *)

let list_src =
  {|struct Node { int v; struct Node *next; }
    void main() {
      struct Node *head = null;
      for (int i = 0; i < 10; i = i + 1) {
        struct Node *n = malloc(sizeof(struct Node));
        n->v = i;
        n->next = head;
        head = n;
      }
      int acc = 0;
      struct Node *p = head;
      while (p != null) { acc = acc + p->v; p = p->next; }
      print_int(acc);
    }|}

let test_linked_list_is_recursive () =
  let _, dsa = analyze list_src in
  check Alcotest.int "one structure" 1 (A.Dsa.n_descriptors dsa);
  let d = List.hd (A.Dsa.descriptors dsa) in
  check Alcotest.bool "recursive" true d.desc_recursive;
  check Alcotest.int "one pointer field" 1 d.desc_ptr_fields;
  check Alcotest.bool "elem covers the node" true (d.desc_elem_size >= 16)

let tree_src =
  {|struct Tn { double v; struct Tn *l; struct Tn *r; }
    struct Tn *build(int depth) {
      if (depth == 0) { return null; }
      struct Tn *n = malloc(sizeof(struct Tn));
      n->v = 1.0;
      n->l = build(depth - 1);
      n->r = build(depth - 1);
      return n;
    }
    double total(struct Tn *n) {
      if (n == null) { return 0.0; }
      return n->v + total(n->l) + total(n->r);
    }
    void main() {
      struct Tn *t = build(4);
      print_float(total(t));
    }|}

let test_tree_two_pointer_fields () =
  let _, dsa = analyze tree_src in
  check Alcotest.int "one structure" 1 (A.Dsa.n_descriptors dsa);
  let d = List.hd (A.Dsa.descriptors dsa) in
  check Alcotest.bool "recursive" true d.desc_recursive;
  check Alcotest.int "two pointer fields" 2 d.desc_ptr_fields

let test_two_trees_distinct () =
  let _, dsa =
    analyze
      {|struct Tn { double v; struct Tn *l; struct Tn *r; }
        struct Tn *build(int depth) {
          if (depth == 0) { return null; }
          struct Tn *n = malloc(sizeof(struct Tn));
          n->v = 1.0;
          n->l = build(depth - 1);
          n->r = build(depth - 1);
          return n;
        }
        void main() {
          struct Tn *a = build(3);
          struct Tn *b = build(3);
          a->v = 2.0;
          b->v = 3.0;
        }|}
  in
  (* Two call sites of the same recursive builder: context sensitivity
     must keep the two trees apart. *)
  check Alcotest.int "two tree instances" 2 (A.Dsa.n_descriptors dsa)

(* ---------- globals & escape ---------- *)

let test_global_reachable_initialized_in_main () =
  let _, dsa =
    analyze
      {|double *g;
        void fill() { g = malloc(80); g[0] = 1.0; }
        void main() { fill(); g[1] = 2.0; }|}
  in
  check Alcotest.int "one structure" 1 (A.Dsa.n_descriptors dsa);
  let d = List.hd (A.Dsa.descriptors dsa) in
  (* Global-reachable: escapes fill, so its ds_init lands in main. *)
  check Alcotest.string "init in main" "main" d.desc_init_func;
  check Alcotest.int "fill takes the handle" 1
    (List.length (A.Dsa.argnodes dsa "fill"))

let test_local_temp_initialized_locally () =
  let _, dsa =
    analyze
      {|int work() {
          int *tmp = malloc(80);
          tmp[0] = 7;
          int r = tmp[0];
          free(tmp);
          return r;
        }
        void main() { print_int(work()); }|}
  in
  check Alcotest.int "one structure" 1 (A.Dsa.n_descriptors dsa);
  let d = List.hd (A.Dsa.descriptors dsa) in
  check Alcotest.string "init in work (non-escaping)" "work" d.desc_init_func;
  check Alcotest.int "work takes no handle" 0
    (List.length (A.Dsa.argnodes dsa "work"))

let test_value_is_managed () =
  let m, dsa = analyze listing1 in
  let set = I.Irmod.find_func m "set" in
  let param0 = fst (List.hd set.params) in
  check Alcotest.bool "set's ds param is managed" true
    (A.Dsa.value_is_managed dsa ~fname:"set" (I.Instr.Reg param0));
  check Alcotest.bool "immediates unmanaged" false
    (A.Dsa.value_is_managed dsa ~fname:"set" (I.Instr.Imm 3L));
  check Alcotest.bool "globals unmanaged" false
    (A.Dsa.value_is_managed dsa ~fname:"set" (I.Instr.GlobalAddr "ARRAY_SIZE"))

(* ---------- instance attribution ---------- *)

let test_instances_flow_into_callee () =
  let _, dsa = analyze listing1 in
  (* set is called with both instances: its accesses may touch both. *)
  check Alcotest.int "set touches both" 2
    (List.length (A.Dsa.func_instances dsa "set"));
  check Alcotest.int "main reaches both" 2
    (List.length (A.Dsa.func_instances dsa "main"))

let test_callsite_instances_are_context_sensitive () =
  let m, dsa = analyze listing1 in
  let main = I.Irmod.find_func m "main" in
  (* Collect per-call-site instance sets for calls to set. *)
  let sets = ref [] in
  I.Func.iter_instrs main (fun bid idx ins ->
      match ins with
      | I.Instr.Call (_, "set", _) ->
        sets := A.Dsa.callsite_instances dsa ~fname:"main" ~bid ~idx :: !sets
      | _ -> ());
  check Alcotest.int "three call sites" 3 (List.length !sets);
  (* Each call site names exactly one instance, and both instances
     appear across the sites. *)
  List.iter
    (fun s -> check Alcotest.int "single instance per site" 1 (List.length s))
    !sets;
  let all = List.sort_uniq compare (List.concat !sets) in
  check Alcotest.int "both instances covered" 2 (List.length all)

let test_scores_listing1 () =
  let m, dsa = analyze listing1 in
  let use = A.Scores.max_use m dsa in
  (* ds2 (the second init) is the hot one: Equation 1 must rank it
     above ds1 (paper Fig. 4). *)
  check Alcotest.bool "use score prefers ds2" true (use.(1) > use.(0))

let suite =
  [ ("listing1: two descriptors", `Quick, test_listing1_two_descriptors);
    ("listing1: shape facts", `Quick, test_listing1_shape_facts);
    ("listing1: handle plan", `Quick, test_listing1_handle_plan);
    ("aliased mallocs merge", `Quick, test_merged_when_aliased);
    ("independent mallocs stay apart", `Quick, test_distinct_without_aliasing);
    ("field links keep nodes distinct", `Quick, test_store_links_structures);
    ("linked list recursive", `Quick, test_linked_list_is_recursive);
    ("tree has two pointer fields", `Quick, test_tree_two_pointer_fields);
    ("two trees distinct", `Quick, test_two_trees_distinct);
    ("global-reachable inits in main", `Quick, test_global_reachable_initialized_in_main);
    ("local temp inits locally", `Quick, test_local_temp_initialized_locally);
    ("value_is_managed", `Quick, test_value_is_managed);
    ("instances flow into callees", `Quick, test_instances_flow_into_callee);
    ("call-site context sensitivity", `Quick, test_callsite_instances_are_context_sensitive);
    ("Equation-1 scores on Listing 1", `Quick, test_scores_listing1) ]
