(* Tests for the baseline systems: TrackFM, Mira, and the all-local
   upper bound. *)

module R = Cards_runtime
module P = Cards.Pipeline
module W = Cards_workloads
module B = Cards_baselines

let check = Alcotest.check

let kb x = x * 1024

let listing1 = W.Listing1.source ~elems:8192 ~ntimes:3

(* ---------- TrackFM ---------- *)

let test_trackfm_compiles_conservatively () =
  let c = B.Trackfm.compile_source listing1 in
  check Alcotest.int "no versioned loops" 0 c.versioned_loops;
  (* Its guard count is at least CaRDS's. *)
  let cards = P.compile_source listing1 in
  check Alcotest.bool "no fewer guards than CaRDS" true
    (c.static_guards >= cards.static_guards)

let test_trackfm_config () =
  let cfg = B.Trackfm.run_config ~local_bytes:(kb 512) ~remotable_bytes:(kb 512) in
  check Alcotest.bool "all-remotable" true (cfg.policy = R.Policy.All_remotable);
  check Alcotest.int "trackfm read guard" 462 cfg.cost.guard_local_read;
  check Alcotest.bool "stride-only prefetch" true
    (cfg.prefetch_mode = R.Runtime.Pf_stride_only)

let test_trackfm_pins_nothing () =
  let c = B.Trackfm.compile_source listing1 in
  let _, rt = B.Trackfm.run c ~local_bytes:(kb 512) in
  check Alcotest.int "no pinned bytes" 0 (R.Runtime.pinned_bytes rt);
  List.iter
    (fun (r : R.Runtime.ds_report) ->
      check Alcotest.bool "nothing pinned" false r.r_pinned)
    (R.Runtime.report rt)

(* ---------- Mira ---------- *)

let test_mira_profile_measures () =
  let c = P.compile_source listing1 in
  let p = B.Mira.profile c in
  check Alcotest.int "two structures profiled" 2 (Array.length p.per_sid_bytes);
  Array.iter
    (fun b -> check Alcotest.int "sizes measured" (8192 * 8) b)
    p.per_sid_bytes;
  (* ds2 is written NTIMES more: more accesses. *)
  check Alcotest.bool "ds2 hotter in the profile" true
    (p.per_sid_accesses.(1) > p.per_sid_accesses.(0));
  check Alcotest.bool "profiling cost recorded" true (p.profiling_cycles > 0)

let test_mira_knapsack_by_density () =
  let p =
    { B.Mira.per_sid_bytes = [| 100; 1000; 100 |];
      per_sid_accesses = [| 1000; 1000; 10 |];
      profiling_cycles = 0 }
  in
  (* Budget fits only the densest structure. *)
  let pinned = B.Mira.pinned_set p ~pinned_budget:150 in
  check Alcotest.bool "densest pinned" true pinned.(0);
  check Alcotest.bool "big one skipped" false pinned.(1);
  check Alcotest.bool "cold one does not fit the remaining budget" false pinned.(2);
  (* A bigger budget takes the big structure too. *)
  let pinned = B.Mira.pinned_set p ~pinned_budget:1200 in
  check Alcotest.bool "big one fits now" true pinned.(1)

let test_mira_never_overshoots () =
  let p =
    { B.Mira.per_sid_bytes = [| 600; 600; 600 |];
      per_sid_accesses = [| 30; 20; 10 |];
      profiling_cycles = 0 }
  in
  let pinned = B.Mira.pinned_set p ~pinned_budget:1000 in
  let total =
    Array.to_list pinned
    |> List.mapi (fun i b -> if b then p.per_sid_bytes.(i) else 0)
    |> List.fold_left ( + ) 0
  in
  check Alcotest.bool "within budget" true (total <= 1000)

let test_mira_picks_hot_structure () =
  let c = P.compile_source listing1 in
  let arr = 8192 * 8 in
  let p = B.Mira.profile c in
  (* Budget for exactly one array: must be ds2 (denser). *)
  let pinned = B.Mira.pinned_set p ~pinned_budget:(arr + 100) in
  check Alcotest.bool "hot ds2 pinned" true pinned.(1);
  check Alcotest.bool "cold ds1 not pinned" false pinned.(0)

let test_mira_beats_naive_linear () =
  let c = P.compile_source listing1 in
  let arr = 8192 * 8 in
  let local = arr * 3 / 2 and remot = arr / 4 in
  let lres, _ =
    P.run c
      { R.Runtime.default_config with
        policy = R.Policy.Linear; k = 0.5;
        local_bytes = local; remotable_bytes = remot }
  in
  let mres, _ = B.Mira.run c ~local_bytes:local ~remotable_bytes:remot in
  check Alcotest.bool "profile-guided beats naive linear" true
    (mres.cycles < lres.cycles)

(* ---------- all-local upper bound ---------- *)

let test_noguard_is_fastest () =
  let c = P.compile_source listing1 in
  let plain, _ = B.Noguard.run c in
  let any, _ =
    P.run c
      { R.Runtime.default_config with
        policy = R.Policy.Max_use; k = 0.5;
        local_bytes = kb 128; remotable_bytes = kb 32 }
  in
  check Alcotest.bool "upper bound" true (plain.cycles <= any.cycles)

let suite =
  [ ("trackfm conservative compile", `Quick, test_trackfm_compiles_conservatively);
    ("trackfm config", `Quick, test_trackfm_config);
    ("trackfm pins nothing", `Quick, test_trackfm_pins_nothing);
    ("mira profile", `Quick, test_mira_profile_measures);
    ("mira knapsack", `Quick, test_mira_knapsack_by_density);
    ("mira budget respected", `Quick, test_mira_never_overshoots);
    ("mira picks hot structure", `Quick, test_mira_picks_hot_structure);
    ("mira beats naive linear", `Quick, test_mira_beats_naive_linear);
    ("noguard upper bound", `Quick, test_noguard_is_fastest) ]
