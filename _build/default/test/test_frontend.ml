(* Tests for the MiniC frontend: lexer, parser, lowering, and the
   frontend+interpreter pair on small programs. *)

module I = Cards_ir
module R = Cards_runtime
module M = Cards_interp.Machine

let check = Alcotest.check

(* Run a MiniC program on a permissive runtime, return print output. *)
let run_src src =
  let m = I.Minic.compile src in
  let rt =
    R.Runtime.create
      { R.Runtime.default_config with
        policy = R.Policy.All_local;
        local_bytes = max_int / 2;
        remotable_bytes = 0 }
      [||]
  in
  (M.run m rt).output

let expect_output name src out () =
  check (Alcotest.list Alcotest.string) name out (run_src src)

let expect_syntax_error name src () =
  match I.Minic.compile src with
  | _ -> Alcotest.fail (name ^ ": expected a syntax error")
  | exception I.Ast.Syntax_error _ -> ()

(* ---------- lexer ---------- *)

let test_lexer_tokens () =
  let toks = I.Lexer.tokenize "int x = 42; // comment\n x->f <= 3.5 && !y" in
  let strs =
    List.map (fun (l : I.Lexer.lexed) -> I.Lexer.token_to_string l.tok) toks
  in
  check (Alcotest.list Alcotest.string) "tokens"
    [ "int"; "x"; "="; "42"; ";"; "x"; "->"; "f"; "<="; "3.5"; "&&"; "!"; "y";
      "<eof>" ]
    strs

let test_lexer_positions () =
  let toks = I.Lexer.tokenize "a\n  b" in
  match toks with
  | [ a; b; _eof ] ->
    check Alcotest.int "a line" 1 a.pos.line;
    check Alcotest.int "b line" 2 b.pos.line;
    check Alcotest.int "b col" 3 b.pos.col
  | _ -> Alcotest.fail "expected three tokens"

let test_lexer_block_comment () =
  let toks = I.Lexer.tokenize "a /* x \n y */ b" in
  check Alcotest.int "two idents + eof" 3 (List.length toks)

let test_lexer_unterminated_comment () =
  match I.Lexer.tokenize "a /* never closed" with
  | _ -> Alcotest.fail "expected error"
  | exception I.Ast.Syntax_error (_, msg) ->
    check Alcotest.string "message" "unterminated block comment" msg

let test_lexer_illegal_char () =
  match I.Lexer.tokenize "a $ b" with
  | _ -> Alcotest.fail "expected error"
  | exception I.Ast.Syntax_error (_, _) -> ()

(* ---------- parser ---------- *)

let test_parser_precedence () =
  (* 1 + 2 * 3 parses as 1 + (2 * 3): evaluate via the interpreter. *)
  expect_output "precedence" "void main() { print_int(1 + 2 * 3); }" [ "7" ] ()

let test_parser_associativity () =
  expect_output "left assoc" "void main() { print_int(10 - 3 - 2); }" [ "5" ] ()

let test_parser_unary () =
  expect_output "unary minus" "void main() { print_int(-3 + 1); }" [ "-2" ] ();
  expect_output "not" "void main() { print_int(!0 + !5); }" [ "1" ] ()

let test_parser_comparison_chain () =
  expect_output "cmp" "void main() { print_int(1 < 2); print_int(2 <= 1); }"
    [ "1"; "0" ] ()

let test_parser_error_position () =
  match I.Parser.parse "void main() { int x = ; }" with
  | _ -> Alcotest.fail "expected error"
  | exception I.Ast.Syntax_error (pos, _) ->
    check Alcotest.int "error line" 1 pos.line

let test_parser_missing_semi () =
  expect_syntax_error "missing semi" "void main() { int x = 1 }" ()

let test_parser_expr_string () =
  match (I.Parser.parse_expr_string "a[i] + b->f").I.Ast.e with
  | I.Ast.Ebin (I.Ast.Badd, { e = I.Ast.Eindex _; _ }, { e = I.Ast.Earrow _; _ }) ->
    ()
  | _ -> Alcotest.fail "wrong expression shape"

(* ---------- lowering & semantics ---------- *)

let test_arith_int = expect_output "int arith"
    "void main() { print_int(7 / 2); print_int(7 % 2); print_int(2 * 3 - 1); }"
    [ "3"; "1"; "5" ]

let test_arith_float = expect_output "float arith"
    "void main() { print_float(1.5 + 2.25); print_float(7.0 / 2.0); }"
    [ "3.75"; "3.5" ]

let test_mixed_conversion = expect_output "int->double promotion"
    "void main() { print_float(1 + 0.5); double x = 3; print_float(x); }"
    [ "1.5"; "3" ]

let test_globals = expect_output "globals"
    "int g = 5; double h = 0.5; void main() { g = g + 1; print_int(g); print_float(h); }"
    [ "6"; "0.5" ]

let test_if_else = expect_output "if/else"
    {|void main() {
        int x = 10;
        if (x > 5) { print_int(1); } else { print_int(0); }
        if (x < 5) { print_int(1); } else { print_int(0); }
      }|}
    [ "1"; "0" ]

let test_while_loop = expect_output "while"
    {|void main() {
        int i = 0;
        int acc = 0;
        while (i < 5) { acc = acc + i; i = i + 1; }
        print_int(acc);
      }|}
    [ "10" ]

let test_for_break_continue = expect_output "break/continue"
    {|void main() {
        int acc = 0;
        for (int i = 0; i < 100; i = i + 1) {
          if (i % 2 == 0) { continue; }
          if (i > 10) { break; }
          acc = acc + i;
        }
        print_int(acc);
      }|}
    [ "25" ]

let test_short_circuit = expect_output "short circuit does not evaluate rhs"
    {|int calls = 0;
      int bump() { calls = calls + 1; return 1; }
      void main() {
        int a = 0 && bump();
        int b = 1 || bump();
        print_int(calls);
        print_int(a + b);
      }|}
    [ "0"; "1" ]

let test_function_calls = expect_output "recursion (fib)"
    {|int fib(int n) {
        if (n < 2) { return n; }
        return fib(n - 1) + fib(n - 2);
      }
      void main() { print_int(fib(10)); }|}
    [ "55" ]

let test_mutual_recursion = expect_output "mutual recursion"
    {|int is_even(int n) { if (n == 0) { return 1; } return is_odd(n - 1); }
      int is_odd(int n) { if (n == 0) { return 0; } return is_even(n - 1); }
      void main() { print_int(is_even(10)); print_int(is_odd(10)); }|}
    [ "1"; "0" ]

let test_heap_array = expect_output "heap array"
    {|void main() {
        int *a = malloc(10 * 8);
        for (int i = 0; i < 10; i = i + 1) { a[i] = i * i; }
        print_int(a[7]);
      }|}
    [ "49" ]

let test_struct_fields = expect_output "struct fields"
    {|struct Point { int x; double y; }
      void main() {
        struct Point *p = malloc(sizeof(struct Point));
        p->x = 3;
        p->y = 1.5;
        print_int(p->x);
        print_float(p->y);
      }|}
    [ "3"; "1.5" ]

let test_linked_list = expect_output "linked list"
    {|struct Node { int v; struct Node *next; }
      void main() {
        struct Node *head = null;
        for (int i = 0; i < 5; i = i + 1) {
          struct Node *n = malloc(sizeof(struct Node));
          n->v = i;
          n->next = head;
          head = n;
        }
        int acc = 0;
        struct Node *p = head;
        while (p != null) { acc = acc + p->v; p = p->next; }
        print_int(acc);
      }|}
    [ "10" ]

let test_pointer_arith = expect_output "pointer arithmetic"
    {|void main() {
        int *a = malloc(5 * 8);
        for (int i = 0; i < 5; i = i + 1) { a[i] = 100 + i; }
        int *p = a + 2;
        print_int(*p);
        print_int(p[1]);
      }|}
    [ "102"; "103" ]

let test_double_pointer = expect_output "pointer to pointer"
    {|void main() {
        int *a = malloc(8);
        *a = 42;
        int **pp = malloc(8);
        *pp = a;
        int *b = *pp;
        print_int(*b);
      }|}
    [ "42" ]

let test_sizeof = expect_output "sizeof"
    {|struct S { int a; int b; int c; }
      void main() { print_int(sizeof(struct S)); print_int(sizeof(int)); print_int(sizeof(double*)); }|}
    [ "24"; "8"; "8" ]

let test_scoping = expect_output "block scoping"
    {|void main() {
        int x = 1;
        { int x = 2; print_int(x); }
        print_int(x);
      }|}
    [ "2"; "1" ]

(* ---------- type errors ---------- *)

let test_unknown_var = expect_syntax_error "unknown var"
    "void main() { print_int(nope); }"

let test_unknown_func = expect_syntax_error "unknown func"
    "void main() { whatever(1); }"

let test_bad_arity = expect_syntax_error "arity"
    "int f(int a) { return a; } void main() { print_int(f(1, 2)); }"

let test_struct_by_value = expect_syntax_error "struct by value"
    "struct S { int a; } void main() { struct S s; }"

let test_bad_field = expect_syntax_error "unknown field"
    {|struct S { int a; }
      void main() { struct S *s = malloc(8); s->b = 1; }|}

let test_arrow_on_int = expect_syntax_error "-> on int"
    "void main() { int x = 1; x->f = 2; }"

let test_redeclaration = expect_syntax_error "redeclaration"
    "void main() { int x = 1; int x = 2; }"

let test_break_outside_loop = expect_syntax_error "break outside loop"
    "void main() { break; }"

let test_rem_on_float = expect_syntax_error "% on float"
    "void main() { print_float(1.5 % 2.0); }"

let suite =
  [ ("lexer tokens", `Quick, test_lexer_tokens);
    ("lexer positions", `Quick, test_lexer_positions);
    ("lexer block comment", `Quick, test_lexer_block_comment);
    ("lexer unterminated comment", `Quick, test_lexer_unterminated_comment);
    ("lexer illegal char", `Quick, test_lexer_illegal_char);
    ("parser precedence", `Quick, test_parser_precedence);
    ("parser associativity", `Quick, test_parser_associativity);
    ("parser unary", `Quick, test_parser_unary);
    ("parser comparisons", `Quick, test_parser_comparison_chain);
    ("parser error position", `Quick, test_parser_error_position);
    ("parser missing semi", `Quick, test_parser_missing_semi);
    ("parse_expr_string", `Quick, test_parser_expr_string);
    ("int arithmetic", `Quick, test_arith_int);
    ("float arithmetic", `Quick, test_arith_float);
    ("mixed conversion", `Quick, test_mixed_conversion);
    ("globals", `Quick, test_globals);
    ("if/else", `Quick, test_if_else);
    ("while", `Quick, test_while_loop);
    ("break/continue", `Quick, test_for_break_continue);
    ("short circuit", `Quick, test_short_circuit);
    ("recursion", `Quick, test_function_calls);
    ("mutual recursion", `Quick, test_mutual_recursion);
    ("heap array", `Quick, test_heap_array);
    ("struct fields", `Quick, test_struct_fields);
    ("linked list", `Quick, test_linked_list);
    ("pointer arithmetic", `Quick, test_pointer_arith);
    ("double pointer", `Quick, test_double_pointer);
    ("sizeof", `Quick, test_sizeof);
    ("scoping", `Quick, test_scoping);
    ("err: unknown var", `Quick, test_unknown_var);
    ("err: unknown func", `Quick, test_unknown_func);
    ("err: arity", `Quick, test_bad_arity);
    ("err: struct by value", `Quick, test_struct_by_value);
    ("err: unknown field", `Quick, test_bad_field);
    ("err: arrow on int", `Quick, test_arrow_on_int);
    ("err: redeclaration", `Quick, test_redeclaration);
    ("err: break outside loop", `Quick, test_break_outside_loop);
    ("err: % on float", `Quick, test_rem_on_float) ]
