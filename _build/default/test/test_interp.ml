(* Tests for the IR interpreter: semantics, traps, costs, fuel. *)

module I = Cards_ir
module R = Cards_runtime
module M = Cards_interp.Machine

let check = Alcotest.check

let permissive_rt () =
  R.Runtime.create
    { R.Runtime.default_config with
      policy = R.Policy.All_local;
      local_bytes = max_int / 2;
      remotable_bytes = 0 }
    [||]

let run ?fuel src =
  let m = I.Minic.compile src in
  M.run ?fuel m (permissive_rt ())

let output ?fuel src = (run ?fuel src).output

(* ---------- arithmetic semantics ---------- *)

let test_int_ops () =
  check (Alcotest.list Alcotest.string) "ops"
    [ "13"; "-7"; "30"; "3"; "1" ]
    (output
       {|void main() {
           print_int(10 + 3);
           print_int(3 - 10);
           print_int(10 * 3);
           print_int(10 / 3);
           print_int(10 % 3);
         }|})

let test_float_ops () =
  check (Alcotest.list Alcotest.string) "float ops" [ "3.5"; "0.25"; "-1.5" ]
    (output
       {|void main() {
           print_float(1.75 * 2.0);
           print_float(1.0 / 4.0);
           print_float(0.5 - 2.0);
         }|})

let test_f2i_truncates () =
  check (Alcotest.list Alcotest.string) "truncation" [ "2"; "-2" ]
    (output
       {|void main() {
           int a = 2.9;
           int b = -2.9;
           print_int(a);
           print_int(b);
         }|})

let test_division_by_zero_traps () =
  match run "void main() { int z = 0; print_int(1 / z); }" with
  | _ -> Alcotest.fail "expected trap"
  | exception M.Trap msg -> check Alcotest.string "message" "division by zero" msg

let test_rem_by_zero_traps () =
  match run "void main() { int z = 0; print_int(1 % z); }" with
  | _ -> Alcotest.fail "expected trap"
  | exception M.Trap _ -> ()

let test_abort_traps () =
  match run "void main() { abort(); }" with
  | _ -> Alcotest.fail "expected trap"
  | exception M.Trap msg -> check Alcotest.string "message" "abort() called" msg

(* ---------- fuel ---------- *)

let test_fuel_stops_infinite_loop () =
  match run ~fuel:10_000 "void main() { while (1) { } }" with
  | _ -> Alcotest.fail "expected fuel trap"
  | exception M.Trap msg ->
    check Alcotest.string "message" "fuel exhausted (10000 instructions)" msg

let test_fuel_enough () =
  check (Alcotest.list Alcotest.string) "completes under fuel" [ "42" ]
    (output ~fuel:1_000_000 "void main() { print_int(42); }")

(* ---------- cycles & instruction counting ---------- *)

let test_cycles_monotone_in_work () =
  let small = run "void main() { for (int i = 0; i < 10; i = i + 1) { } }" in
  let big = run "void main() { for (int i = 0; i < 1000; i = i + 1) { } }" in
  check Alcotest.bool "more work, more cycles" true (big.cycles > small.cycles);
  check Alcotest.bool "more work, more instructions" true
    (big.instructions > small.instructions)

let test_clock_intrinsic () =
  let out =
    output
      {|void main() {
          int t0 = clock();
          for (int i = 0; i < 100; i = i + 1) { }
          int t1 = clock();
          if (t1 > t0) { print_int(1); } else { print_int(0); }
        }|}
  in
  check (Alcotest.list Alcotest.string) "clock advances" [ "1" ] out

let test_determinism () =
  let src = Cards_workloads.Bfs.source ~nodes:500 ~edges:2000 ~sources:1 in
  let a = run src and b = run src in
  check Alcotest.bool "same cycles" true (a.cycles = b.cycles);
  check (Alcotest.list Alcotest.string) "same output" a.output b.output

(* ---------- guard instructions under the machine ---------- *)

let test_run_function_entry () =
  let m =
    I.Minic.compile "int twice(int x) { return 2 * x; } void main() { }"
  in
  let res = M.run_function m (permissive_rt ()) "twice" [ 21 ] in
  check Alcotest.int "direct function call" 42 res.ret

let test_unknown_function_traps () =
  let m = I.Minic.compile "void main() { }" in
  match M.run_function m (permissive_rt ()) "nope" [] with
  | _ -> Alcotest.fail "expected trap"
  | exception M.Trap _ -> ()

let test_output_order () =
  check (Alcotest.list Alcotest.string) "print interleaving"
    [ "1"; "2.5"; "3" ]
    (output
       {|void main() {
           print_int(1);
           print_float(2.5);
           print_int(3);
         }|})

let suite =
  [ ("int ops", `Quick, test_int_ops);
    ("float ops", `Quick, test_float_ops);
    ("f2i truncates", `Quick, test_f2i_truncates);
    ("div by zero traps", `Quick, test_division_by_zero_traps);
    ("rem by zero traps", `Quick, test_rem_by_zero_traps);
    ("abort traps", `Quick, test_abort_traps);
    ("fuel stops runaway", `Quick, test_fuel_stops_infinite_loop);
    ("fuel generous", `Quick, test_fuel_enough);
    ("cycles monotone", `Quick, test_cycles_monotone_in_work);
    ("clock intrinsic", `Quick, test_clock_intrinsic);
    ("determinism", `Quick, test_determinism);
    ("run_function", `Quick, test_run_function_entry);
    ("unknown function traps", `Quick, test_unknown_function_traps);
    ("output order", `Quick, test_output_order) ]
