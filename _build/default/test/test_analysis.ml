(* Tests for CFG, dominators, natural loops, induction variables, and
   the call graph. *)

module I = Cards_ir
module A = Cards_analysis
open I

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* Build a function from a shape: an array of terminators. *)
let func_of_terms terms =
  { Func.name = "f"; params = []; ret = Types.Void; reg_tys = [| Types.I64 |];
    blocks =
      Array.mapi (fun i t -> { Func.bid = i; instrs = [||]; term = t }) terms }

(* A diamond: 0 -> 1,2 -> 3. *)
let diamond =
  func_of_terms
    [| Instr.Cbr (Instr.Reg 0, 1, 2); Instr.Br 3; Instr.Br 3; Instr.Ret None |]

(* A loop: 0 -> 1; 1 -> 2,3; 2 -> 1; 3 ret. *)
let simple_loop =
  func_of_terms
    [| Instr.Br 1; Instr.Cbr (Instr.Reg 0, 2, 3); Instr.Br 1; Instr.Ret None |]

let test_cfg_diamond () =
  let cfg = A.Cfg.of_func diamond in
  check (Alcotest.list Alcotest.int) "succs 0" [ 1; 2 ] (A.Cfg.succs cfg 0);
  check (Alcotest.list Alcotest.int) "preds 3" [ 1; 2 ] (A.Cfg.preds cfg 3);
  let rpo = A.Cfg.reverse_postorder cfg in
  check Alcotest.int "entry first in rpo" 0 rpo.(0);
  check Alcotest.int "all reachable" 4 (Array.length rpo)

let test_cfg_unreachable () =
  let f =
    func_of_terms [| Instr.Ret None; Instr.Br 0 (* unreachable *) |]
  in
  let cfg = A.Cfg.of_func f in
  check Alcotest.int "only entry reachable" 1
    (Array.length (A.Cfg.reverse_postorder cfg));
  check Alcotest.int "rpo_index of unreachable" (-1) (A.Cfg.rpo_index cfg).(1)

let test_dominators_diamond () =
  let cfg = A.Cfg.of_func diamond in
  let dom = A.Dominators.compute cfg in
  check Alcotest.bool "idom 1 = 0" true (A.Dominators.idom dom 1 = Some 0);
  check Alcotest.bool "idom 3 = 0" true (A.Dominators.idom dom 3 = Some 0);
  check Alcotest.bool "1 does not dominate 3" false (A.Dominators.dominates dom 1 3);
  check Alcotest.bool "0 dominates 3" true (A.Dominators.dominates dom 0 3);
  check Alcotest.bool "reflexive" true (A.Dominators.dominates dom 2 2);
  check Alcotest.int "depth of 3" 1 (A.Dominators.dominator_depth dom 3)

(* Property: on random CFGs, the entry dominates every reachable block,
   and idom(b) dominates b. *)
let random_cfg =
  QCheck.make
    ~print:(fun l -> String.concat ";" (List.map string_of_int l))
    QCheck.Gen.(
      sized_size (int_range 2 12) (fun n ->
          list_repeat (2 * n) (int_range 0 (n - 1)) >|= fun targets -> targets))

let cfg_of_targets targets =
  let n = max 2 (List.length targets / 2) in
  let tgt = Array.of_list targets in
  let term i =
    let a = tgt.(2 * i mod Array.length tgt) mod n in
    let b = tgt.((2 * i + 1) mod Array.length tgt) mod n in
    if i = n - 1 then Instr.Ret None else Instr.Cbr (Instr.Reg 0, a, b)
  in
  func_of_terms (Array.init n term)

let prop_entry_dominates_all =
  QCheck.Test.make ~name:"entry dominates every reachable block" ~count:200
    random_cfg
    (fun targets ->
      let f = cfg_of_targets targets in
      let cfg = A.Cfg.of_func f in
      let dom = A.Dominators.compute cfg in
      Array.for_all
        (fun b -> A.Dominators.dominates dom 0 b)
        (A.Cfg.reverse_postorder cfg))

let prop_idom_dominates =
  QCheck.Test.make ~name:"idom(b) strictly dominates b" ~count:200 random_cfg
    (fun targets ->
      let f = cfg_of_targets targets in
      let cfg = A.Cfg.of_func f in
      let dom = A.Dominators.compute cfg in
      Array.for_all
        (fun b ->
          match A.Dominators.idom dom b with
          | None -> b = 0
          | Some d -> d <> b && A.Dominators.dominates dom d b)
        (A.Cfg.reverse_postorder cfg))

let test_loops_simple () =
  let cfg = A.Cfg.of_func simple_loop in
  let dom = A.Dominators.compute cfg in
  let loops = A.Loops.compute cfg dom in
  let ls = A.Loops.loops loops in
  check Alcotest.int "one loop" 1 (Array.length ls);
  check Alcotest.int "header" 1 ls.(0).A.Loops.header;
  check (Alcotest.list Alcotest.int) "body" [ 1; 2 ]
    (Cards_util.Bitset.to_list ls.(0).A.Loops.body);
  check Alcotest.int "depth" 1 ls.(0).A.Loops.depth;
  check Alcotest.bool "preheader is 0" true
    (A.Loops.preheader cfg ls.(0) = Some 0)

let test_nested_loops () =
  (* 0 -> 1 (outer hdr); 1 -> 2,5; 2 -> 3 (inner hdr); 3 -> 3?,4... build:
     inner: 3 -> 3 or 4; 4 -> 1 (outer latch); 5 ret. *)
  let f =
    func_of_terms
      [| Instr.Br 1;
         Instr.Cbr (Instr.Reg 0, 2, 5);
         Instr.Br 3;
         Instr.Cbr (Instr.Reg 0, 3, 4);
         Instr.Br 1;
         Instr.Ret None |]
  in
  let cfg = A.Cfg.of_func f in
  let dom = A.Dominators.compute cfg in
  let loops = A.Loops.compute cfg dom in
  let ls = A.Loops.loops loops in
  check Alcotest.int "two loops" 2 (Array.length ls);
  let inner = ls.(if ls.(0).A.Loops.header = 3 then 0 else 1) in
  let outer = ls.(if ls.(0).A.Loops.header = 3 then 1 else 0) in
  check Alcotest.int "inner depth" 2 inner.A.Loops.depth;
  check Alcotest.int "outer depth" 1 outer.A.Loops.depth;
  check Alcotest.bool "inner's parent is outer" true
    (inner.A.Loops.parent = Some (if ls.(0).A.Loops.header = 3 then 1 else 0));
  check Alcotest.bool "block 3 innermost is inner" true
    (A.Loops.loop_of_block loops 3 = Some (if ls.(0).A.Loops.header = 3 then 0 else 1))

(* ---------- induction variables on lowered MiniC ---------- *)

let lowered_func src name =
  let m = I.Minic.compile src in
  (m, Irmod.find_func m name)

let test_indvars_on_for_loop () =
  let _, f =
    lowered_func
      {|void walk(double *a, int n) {
          for (int i = 0; i < n; i = i + 1) { a[i] = 1.0; }
        }|}
      "walk"
  in
  let cfg = A.Cfg.of_func f in
  let dom = A.Dominators.compute cfg in
  let loops = A.Loops.compute cfg dom in
  let iv = A.Indvars.compute cfg loops in
  check Alcotest.int "one loop" 1 (Array.length (A.Loops.loops loops));
  let ivs = A.Indvars.basic_ivs iv 0 in
  check Alcotest.bool "found an IV with step 1" true
    (List.exists (fun (v : A.Indvars.iv) -> v.step = 1) ivs);
  let sas = A.Indvars.strided_accesses iv 0 in
  check Alcotest.int "one strided access" 1 (List.length sas);
  let sa = List.hd sas in
  check Alcotest.int "stride is 8 bytes" 8 sa.A.Indvars.sa_stride;
  check Alcotest.bool "it is a store" true sa.A.Indvars.sa_is_store

let test_indvars_negative_step () =
  let _, f =
    lowered_func
      {|void back(double *a, int n) {
          for (int i = n - 1; i >= 0; i = i - 2) { a[i] = 0.0; }
        }|}
      "back"
  in
  let cfg = A.Cfg.of_func f in
  let dom = A.Dominators.compute cfg in
  let loops = A.Loops.compute cfg dom in
  let iv = A.Indvars.compute cfg loops in
  let ivs = A.Indvars.basic_ivs iv 0 in
  check Alcotest.bool "step -2 found" true
    (List.exists (fun (v : A.Indvars.iv) -> v.step = -2) ivs);
  let sas = A.Indvars.strided_accesses iv 0 in
  check Alcotest.bool "stride -16" true
    (List.exists (fun sa -> sa.A.Indvars.sa_stride = -16) sas)

let test_indvars_rejects_irregular () =
  let _, f =
    lowered_func
      {|void weird(int n) {
          int i = 0;
          while (i < n) {
            if (i % 2 == 0) { i = i + 1; } else { i = i + 3; }
          }
        }|}
      "weird"
  in
  let cfg = A.Cfg.of_func f in
  let dom = A.Dominators.compute cfg in
  let loops = A.Loops.compute cfg dom in
  let iv = A.Indvars.compute cfg loops in
  (* i has two defs in the loop: not a basic IV. *)
  Array.iteri
    (fun li _ ->
      check Alcotest.int "no IVs" 0 (List.length (A.Indvars.basic_ivs iv li)))
    (A.Loops.loops loops)

let test_loop_invariant () =
  let _, f =
    lowered_func
      {|void walk(double *a, int n) {
          for (int i = 0; i < n; i = i + 1) { a[i] = 1.0; }
        }|}
      "walk"
  in
  let cfg = A.Cfg.of_func f in
  let dom = A.Dominators.compute cfg in
  let loops = A.Loops.compute cfg dom in
  let loop = (A.Loops.loops loops).(0) in
  check Alcotest.bool "param a invariant" true
    (A.Indvars.loop_invariant cfg loop (Instr.Reg 0));
  check Alcotest.bool "imm invariant" true
    (A.Indvars.loop_invariant cfg loop (Instr.Imm 3L))

(* ---------- call graph ---------- *)

let callgraph_src =
  {|int leaf(int x) { return x + 1; }
    int mid(int x) { return leaf(x) + leaf(x + 1); }
    int r1(int x) { if (x == 0) { return 0; } return r2(x - 1); }
    int r2(int x) { return r1(x); }
    void main() { print_int(mid(1) + r1(3)); }|}

let test_callgraph_edges () =
  let m = I.Minic.compile callgraph_src in
  let cg = A.Callgraph.compute m in
  check (Alcotest.list Alcotest.string) "main calls" [ "mid"; "r1" ]
    (List.sort compare (A.Callgraph.callees cg "main"));
  check (Alcotest.list Alcotest.string) "leaf callers" [ "mid" ]
    (A.Callgraph.callers cg "leaf")

let test_callgraph_scc () =
  let m = I.Minic.compile callgraph_src in
  let cg = A.Callgraph.compute m in
  check Alcotest.bool "r1 ~ r2" true (A.Callgraph.same_scc cg "r1" "r2");
  check Alcotest.bool "r1 !~ main" false (A.Callgraph.same_scc cg "r1" "main");
  check (Alcotest.list Alcotest.string) "scc members"
    [ "r1"; "r2" ]
    (List.sort compare (A.Callgraph.scc_members cg (A.Callgraph.scc_of cg "r1")))

let test_callgraph_bottom_up () =
  let m = I.Minic.compile callgraph_src in
  let cg = A.Callgraph.compute m in
  let order = List.concat (A.Callgraph.bottom_up cg) in
  let pos f =
    let rec go i = function
      | [] -> -1
      | x :: rest -> if x = f then i else go (i + 1) rest
    in
    go 0 order
  in
  check Alcotest.bool "leaf before mid" true (pos "leaf" < pos "mid");
  check Alcotest.bool "mid before main" true (pos "mid" < pos "main")

let test_callgraph_metrics () =
  let m = I.Minic.compile callgraph_src in
  let cg = A.Callgraph.compute m in
  check Alcotest.int "chain(main)" 3 (A.Callgraph.chain_length cg "main");
  check Alcotest.int "chain(leaf)" 1 (A.Callgraph.chain_length cg "leaf");
  check Alcotest.int "depth(main)" 0 (A.Callgraph.depth_from_main cg "main");
  check Alcotest.int "depth(leaf)" 2 (A.Callgraph.depth_from_main cg "leaf");
  check (Alcotest.list Alcotest.string) "reachable from mid"
    [ "leaf"; "mid" ]
    (List.sort compare (A.Callgraph.reachable_from cg "mid"))

(* Natural-loop invariants on random CFGs: the header dominates every
   block of its loop, and back-edge sources are inside the body. *)
let prop_loop_invariants =
  QCheck.Test.make ~name:"natural loop invariants" ~count:200 random_cfg
    (fun targets ->
      let f = cfg_of_targets targets in
      let cfg = A.Cfg.of_func f in
      let dom = A.Dominators.compute cfg in
      let loops = A.Loops.compute cfg dom in
      Array.for_all
        (fun (l : A.Loops.loop) ->
          Cards_util.Bitset.mem l.body l.header
          && List.for_all (fun s -> Cards_util.Bitset.mem l.body s) l.back_edges
          && (let ok = ref true in
              Cards_util.Bitset.iter
                (fun b -> if not (A.Dominators.dominates dom l.header b) then ok := false)
                l.body;
              !ok))
        (A.Loops.loops loops))

let suite =
  [ ("cfg diamond", `Quick, test_cfg_diamond);
    ("cfg unreachable", `Quick, test_cfg_unreachable);
    ("dominators diamond", `Quick, test_dominators_diamond);
    ("loops simple", `Quick, test_loops_simple);
    ("loops nested", `Quick, test_nested_loops);
    ("indvars for-loop", `Quick, test_indvars_on_for_loop);
    ("indvars negative step", `Quick, test_indvars_negative_step);
    ("indvars irregular rejected", `Quick, test_indvars_rejects_irregular);
    ("loop invariance", `Quick, test_loop_invariant);
    ("callgraph edges", `Quick, test_callgraph_edges);
    ("callgraph scc", `Quick, test_callgraph_scc);
    ("callgraph bottom-up", `Quick, test_callgraph_bottom_up);
    ("callgraph metrics", `Quick, test_callgraph_metrics);
    qcheck prop_loop_invariants;
    qcheck prop_entry_dominates_all;
    qcheck prop_idom_dominates ]
