(* Workload-level tests: each benchmark program compiles, runs, is
   deterministic, and exposes the structure population the paper
   describes. *)

module R = Cards_runtime
module P = Cards.Pipeline
module W = Cards_workloads
module B = Cards_baselines

let check = Alcotest.check

let run_plain src =
  let c = P.compile_source src in
  let res, _ = B.Noguard.run c in
  (c, res)

(* ---------- listing 1 ---------- *)

let test_listing1_output () =
  let elems = 1000 and ntimes = 5 in
  let _, res = run_plain (W.Listing1.source ~elems ~ntimes) in
  check (Alcotest.list Alcotest.string) "checksums"
    (W.Listing1.expected_output ~elems ~ntimes) res.output

let test_listing1_structures () =
  let c, _ = run_plain (W.Listing1.source ~elems:100 ~ntimes:2) in
  check Alcotest.int "two structures" 2 (Array.length c.infos);
  Array.iter
    (fun (i : R.Static_info.t) ->
      check Alcotest.bool "stride-classified" true
        (i.prefetch = R.Static_info.Stride))
    c.infos

(* ---------- pointer-chase family ---------- *)

let test_chase_variants_agree () =
  (* All five variants compute the same element-wise sum (the checksum
     is the full sum of c over every pass): their printed outputs must
     agree exactly — a strong cross-validation of heap, frontend, and
     runtime correctness. *)
  let scale = 512 and passes = 2 in
  let outputs =
    List.map
      (fun v ->
        let _, res = run_plain (W.Pointer_chase.source ~variant:v ~scale ~passes) in
        (v, res.output))
      W.Pointer_chase.variants
  in
  match outputs with
  | (_, reference) :: rest ->
    List.iter
      (fun (v, out) ->
        check (Alcotest.list Alcotest.string) (v ^ " agrees with array") reference out)
      rest
  | [] -> assert false

let test_chase_unknown_variant () =
  Alcotest.check_raises "unknown variant"
    (Invalid_argument "Pointer_chase.source: unknown variant rope") (fun () ->
      ignore (W.Pointer_chase.source ~variant:"rope" ~scale:10 ~passes:1))

let test_chase_classes () =
  let class_of variant =
    let c = P.compile_source (W.Pointer_chase.source ~variant ~scale:256 ~passes:1) in
    Array.to_list c.infos
    |> List.map (fun (i : R.Static_info.t) ->
           R.Static_info.prefetch_class_name i.prefetch)
  in
  check Alcotest.bool "list has a jump-classified structure" true
    (List.mem "jump" (class_of "list"));
  check Alcotest.bool "tree has a greedy-classified structure" true
    (List.mem "greedy" (class_of "tree"));
  check Alcotest.bool "array structures are stride-classified" true
    (List.for_all (fun c -> c = "stride") (class_of "array"))

(* ---------- analytics ---------- *)

let test_analytics_structure_count () =
  (* The paper: "CaRDS identifies 22 disjoint data structures at
     compile time" for the analytics workload. *)
  let c, _ = run_plain (W.Analytics.source ~trips:500 ~query_passes:1) in
  check Alcotest.int "22 structures" 22 (Array.length c.infos)

let test_analytics_deterministic () =
  let src = W.Analytics.source ~trips:1000 ~query_passes:1 in
  let _, a = run_plain src in
  let _, b = run_plain src in
  check (Alcotest.list Alcotest.string) "deterministic output" a.output b.output

let test_analytics_passes_scale_output () =
  (* grand_total doubles with query passes (same queries, summed). *)
  let _, one = run_plain (W.Analytics.source ~trips:500 ~query_passes:1) in
  let _, two = run_plain (W.Analytics.source ~trips:500 ~query_passes:2) in
  match one.output, two.output with
  | [ t1; odd1 ], [ t2; odd2 ] ->
    check Alcotest.string "cold query unaffected" odd1 odd2;
    let f1 = float_of_string t1 and f2 = float_of_string t2 in
    check Alcotest.bool "total scales with passes" true
      (Float.abs (f2 -. (2.0 *. f1)) < 0.01 *. Float.abs f2)
  | _ -> Alcotest.fail "unexpected output shape"

(* ---------- ftfdapml ---------- *)

let test_ftfdapml_runs () =
  let c, res = run_plain (W.Ftfdapml.source ~cz:4 ~cym:8 ~cxm:8 ~steps:2) in
  (* Paper: 15 structures; we build 14 heap arrays (the two scratch
     rows share no allocation site with the fields). *)
  check Alcotest.bool "13..15 structures" true
    (let n = Array.length c.infos in
     n >= 13 && n <= 15);
  check Alcotest.int "prints one checksum" 1 (List.length res.output)

let test_ftfdapml_steps_change_field () =
  let _, a = run_plain (W.Ftfdapml.source ~cz:4 ~cym:8 ~cxm:8 ~steps:1) in
  let _, b = run_plain (W.Ftfdapml.source ~cz:4 ~cym:8 ~cxm:8 ~steps:3) in
  check Alcotest.bool "more steps, different field" true (a.output <> b.output)

(* ---------- bfs ---------- *)

let test_bfs_runs_and_counts () =
  let c, res = run_plain (W.Bfs.source ~nodes:500 ~edges:3000 ~sources:2) in
  check Alcotest.bool "many structures" true (Array.length c.infos >= 12);
  match res.output with
  | [ reached; scanned ] ->
    let reached = int_of_string reached and scanned = int_of_string scanned in
    (* Dense-ish random graph: most nodes reachable from each source. *)
    check Alcotest.bool "substantial reach" true (reached > 500);
    check Alcotest.bool "scanned bounded by sources*edges" true
      (scanned <= 2 * 3000)
  | _ -> Alcotest.fail "expected two output lines"

let test_bfs_empty_graphish () =
  (* Degenerate: almost no edges; BFS must still terminate. *)
  let _, res = run_plain (W.Bfs.source ~nodes:50 ~edges:1 ~sources:1) in
  check Alcotest.int "two lines" 2 (List.length res.output)

(* ---------- runability under far memory (spot check) ---------- *)

let test_workloads_under_pressure () =
  (* Every workload at a tight memory point: no traps, no wild
     pointers, outputs matching the all-local run. *)
  List.iter
    (fun src ->
      let c = P.compile_source src in
      let reference, _ = B.Noguard.run c in
      let res, _ =
        P.run c
          { R.Runtime.default_config with
            policy = R.Policy.Max_use; k = 0.5;
            local_bytes = 96 * 1024; remotable_bytes = 32 * 1024 }
      in
      check (Alcotest.list Alcotest.string) "output stable" reference.output
        res.output)
    [ W.Listing1.source ~elems:2000 ~ntimes:2;
      W.Ftfdapml.source ~cz:3 ~cym:6 ~cxm:6 ~steps:1;
      W.Bfs.source ~nodes:300 ~edges:1200 ~sources:1 ]

let suite =
  [ ("listing1 output", `Quick, test_listing1_output);
    ("listing1 structures", `Quick, test_listing1_structures);
    ("chase variants agree", `Quick, test_chase_variants_agree);
    ("chase unknown variant", `Quick, test_chase_unknown_variant);
    ("chase prefetch classes", `Quick, test_chase_classes);
    ("analytics: 22 structures", `Quick, test_analytics_structure_count);
    ("analytics deterministic", `Quick, test_analytics_deterministic);
    ("analytics scaling", `Quick, test_analytics_passes_scale_output);
    ("ftfdapml runs", `Quick, test_ftfdapml_runs);
    ("ftfdapml time steps", `Quick, test_ftfdapml_steps_change_field);
    ("bfs runs", `Quick, test_bfs_runs_and_counts);
    ("bfs degenerate", `Quick, test_bfs_empty_graphish);
    ("workloads under pressure", `Quick, test_workloads_under_pressure) ]
