(* Tests for the Simplify pass: constant folding, copy propagation,
   branch folding, DCE — plus differential checks that simplification
   never changes program outputs. *)

module I = Cards_ir
module T = Cards_transform
module P = Cards.Pipeline
module B = Cards_baselines
open I

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

let count_instrs (f : Func.t) =
  Func.fold_instrs f (fun acc _ _ _ -> acc + 1) 0

let simplify_src src =
  let m = I.Minic.compile src in
  (m, T.Simplify.run m)

let instr_count_module (m : Irmod.t) =
  List.fold_left (fun acc f -> acc + count_instrs f) 0 m.funcs

let run_with_options options src =
  let compiled = P.compile_source ~options src in
  let res, _ = B.Noguard.run compiled in
  res.output

(* ---------- folding ---------- *)

let test_constant_folding () =
  let b = Builder.create ~name:"main" ~params:[] ~ret:Types.Void in
  let x = Builder.bin b Instr.Mul (Instr.Imm 3L) (Instr.Imm 4L) in
  let y = Builder.bin b Instr.Add x (Instr.Imm 2L) in
  Builder.emit b (Instr.Call (None, "print_int", [ y ]));
  Builder.ret b None;
  let m = Irmod.add_func Irmod.empty (Builder.finish b) in
  let m' = T.Simplify.run m in
  let main = Irmod.find_func m' "main" in
  (* both arithmetic ops folded away; the call argument is Imm 14 *)
  let folded = ref false in
  Func.iter_instrs main (fun _ _ ins ->
      match ins with
      | Instr.Call (None, "print_int", [ Instr.Imm 14L ]) -> folded := true
      | _ -> ());
  check Alcotest.bool "argument folded to 14" true !folded;
  check Alcotest.int "only the call remains" 1 (count_instrs main)

let test_identities () =
  let b = Builder.create ~name:"main" ~params:[ ("x", Types.I64) ] ~ret:Types.I64 in
  let x = Builder.param b "x" in
  let a = Builder.bin b Instr.Add x (Instr.Imm 0L) in
  let c = Builder.bin b Instr.Mul a (Instr.Imm 1L) in
  Builder.ret b (Some c);
  let f = T.Simplify.run_func (Builder.finish b) in
  check Alcotest.int "identities erased" 0 (count_instrs f);
  match (Func.entry f).term with
  | Instr.Ret (Some (Instr.Reg r)) ->
    check Alcotest.bool "returns the parameter" true
      (List.exists (fun (pr, _) -> pr = r) f.params)
  | _ -> Alcotest.fail "expected ret of the parameter"

let test_mul_by_zero () =
  let b = Builder.create ~name:"main" ~params:[ ("x", Types.I64) ] ~ret:Types.I64 in
  let x = Builder.param b "x" in
  let z = Builder.bin b Instr.Mul x (Instr.Imm 0L) in
  Builder.ret b (Some z);
  let f = T.Simplify.run_func (Builder.finish b) in
  match (Func.entry f).term with
  | Instr.Ret (Some (Instr.Imm 0L)) -> ()
  | _ -> Alcotest.fail "x * 0 should fold to 0"

let test_division_by_zero_survives () =
  (* Simplify must not fold 1/0 into anything: the trap is observable
     behavior.  Copy propagation feeds the constant zero into the
     division, and folding must then leave it alone. *)
  let src = "void main() { int z = 0; print_int(1 / z); }" in
  let options = { P.cards_options with presimplify = true } in
  let compiled = P.compile_source ~options src in
  match B.Noguard.run compiled with
  | _ -> Alcotest.fail "expected a division-by-zero trap"
  | exception Cards_interp.Machine.Trap msg ->
    check Alcotest.string "trap preserved" "division by zero" msg

(* ---------- propagation + branch folding ---------- *)

let test_branch_folding () =
  let _, m' =
    simplify_src
      {|void main() {
          int flag = 1;
          if (flag == 1) { print_int(10); } else { print_int(20); }
        }|}
  in
  let main = Irmod.find_func m' "main" in
  (* the condition chain folds to a constant and the Cbr becomes Br *)
  let has_cbr =
    Array.exists
      (fun (b : Func.block) ->
        match b.term with Instr.Cbr _ -> true | _ -> false)
      main.blocks
  in
  check Alcotest.bool "conditional branch folded" false has_cbr

let test_propagation_respects_dominance () =
  (* x defined in one arm of a conditional must not be propagated into
     the join; this program's output would change if it were. *)
  let src =
    {|int flag;
      void main() {
        int x = 0;
        if (flag > 0) { x = 7; }
        print_int(x);
      }|}
  in
  let options = { P.cards_options with presimplify = true } in
  check (Alcotest.list Alcotest.string) "x stays 0 when flag is 0" [ "0" ]
    (run_with_options options src)

(* ---------- DCE ---------- *)

let test_dce_removes_dead_chain () =
  let _, m' =
    simplify_src
      {|void main() {
          int dead1 = 11;
          int dead2 = dead1 * 3;
          int dead3 = dead2 + dead1;
          print_int(5);
        }|}
  in
  let main = Irmod.find_func m' "main" in
  check Alcotest.int "only the print remains" 1 (count_instrs main);
  check Alcotest.bool "removals counted" true (T.Simplify.removed_last_run () > 0)

let test_dce_keeps_side_effects () =
  let _, m' =
    simplify_src
      {|int bump(int x) { print_int(x); return x + 1; }
        void main() {
          int unused = bump(1);
          print_int(2);
        }|}
  in
  let main = Irmod.find_func m' "main" in
  let calls =
    Func.fold_instrs main
      (fun acc _ _ ins -> match ins with Instr.Call _ -> acc + 1 | _ -> acc)
      0
  in
  check Alcotest.int "the call to bump survives" 2 calls

let test_simplified_module_verifies () =
  let _, m' = simplify_src (Cards_workloads.Bfs.source ~nodes:100 ~edges:300 ~sources:1) in
  I.Verify.check_exn m'

let test_simplify_shrinks_workloads () =
  let m, m' =
    simplify_src (Cards_workloads.Analytics.source ~trips:100 ~query_passes:1)
  in
  check Alcotest.bool "module got smaller" true
    (instr_count_module m' <= instr_count_module m)

(* ---------- differential: simplify never changes outputs ---------- *)

let prop_simplify_preserves_outputs =
  QCheck.Test.make ~name:"presimplify preserves program outputs" ~count:40
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let src = Test_fuzz.gen_program seed in
      let plain = run_with_options P.cards_options src in
      let simplified =
        run_with_options { P.cards_options with presimplify = true } src
      in
      plain = simplified)

let test_workloads_agree_with_simplify () =
  List.iter
    (fun src ->
      let a = run_with_options P.cards_options src in
      let b = run_with_options { P.cards_options with presimplify = true } src in
      check (Alcotest.list Alcotest.string) "same output" a b)
    [ Cards_workloads.Listing1.source ~elems:500 ~ntimes:2;
      Cards_workloads.Pointer_chase.source ~variant:"hash" ~scale:200 ~passes:1;
      Cards_workloads.Bfs.source ~nodes:200 ~edges:600 ~sources:1 ]

let prop_simplify_idempotent =
  QCheck.Test.make ~name:"Simplify.run is idempotent" ~count:30
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let m = I.Minic.compile (Test_fuzz.gen_program seed) in
      let once = T.Simplify.run m in
      let twice = T.Simplify.run once in
      I.Printer.module_to_string once = I.Printer.module_to_string twice)

let suite =
  [ ("constant folding", `Quick, test_constant_folding);
    ("identities", `Quick, test_identities);
    ("mul by zero", `Quick, test_mul_by_zero);
    ("div by zero survives", `Quick, test_division_by_zero_survives);
    ("branch folding", `Quick, test_branch_folding);
    ("propagation respects dominance", `Quick, test_propagation_respects_dominance);
    ("dce removes dead chain", `Quick, test_dce_removes_dead_chain);
    ("dce keeps side effects", `Quick, test_dce_keeps_side_effects);
    ("simplified module verifies", `Quick, test_simplified_module_verifies);
    ("simplify shrinks workloads", `Quick, test_simplify_shrinks_workloads);
    ("workloads agree", `Quick, test_workloads_agree_with_simplify);
    qcheck prop_simplify_preserves_outputs;
    qcheck prop_simplify_idempotent ]
