type t = {
  idom : int array;   (* -1 = none/unreachable; entry maps to itself *)
  depth : int array;
}

let compute cfg =
  let n = Cfg.nblocks cfg in
  let rpo = Cfg.reverse_postorder cfg in
  let rpo_idx = Cfg.rpo_index cfg in
  let idom = Array.make n (-1) in
  if n > 0 then begin
    idom.(0) <- 0;
    let intersect a b =
      let a = ref a and b = ref b in
      while !a <> !b do
        while rpo_idx.(!a) > rpo_idx.(!b) do a := idom.(!a) done;
        while rpo_idx.(!b) > rpo_idx.(!a) do b := idom.(!b) done
      done;
      !a
    in
    let changed = ref true in
    while !changed do
      changed := false;
      Array.iter
        (fun b ->
          if b <> 0 then begin
            let preds =
              List.filter (fun p -> rpo_idx.(p) >= 0) (Cfg.preds cfg b)
            in
            let processed = List.filter (fun p -> idom.(p) <> -1) preds in
            match processed with
            | [] -> ()
            | first :: rest ->
              let new_idom = List.fold_left intersect first rest in
              if idom.(b) <> new_idom then begin
                idom.(b) <- new_idom;
                changed := true
              end
          end)
        rpo
    done
  end;
  let depth = Array.make n (-1) in
  let rec depth_of b =
    if depth.(b) >= 0 then depth.(b)
    else if idom.(b) = -1 then -1
    else if b = 0 then begin depth.(b) <- 0; 0 end
    else begin
      let d = depth_of idom.(b) in
      let d = if d < 0 then -1 else d + 1 in
      depth.(b) <- d;
      d
    end
  in
  for b = 0 to n - 1 do
    ignore (depth_of b)
  done;
  { idom; depth }

let idom t b =
  if b = 0 then None
  else if t.idom.(b) = -1 then None
  else Some t.idom.(b)

let dominates t a b =
  if t.idom.(b) = -1 || t.idom.(a) = -1 then false
  else begin
    let rec walk x = if x = a then true else if x = 0 then a = 0 else walk t.idom.(x) in
    walk b
  end

let dominator_depth t b = t.depth.(b)
