module Instr = Cards_ir.Instr
module Func = Cards_ir.Func
module Irmod = Cards_ir.Irmod
module Types = Cards_ir.Types
module Vec = Cards_util.Vec
module ISet = Set.Make (Int)

type node = int

type desc_info = {
  desc_id : int;
  desc_init_func : string;
  desc_node : node;
  desc_elem_size : int;
  desc_recursive : bool;
  desc_ptr_fields : int;
  desc_strided : bool;
  desc_alloc_sites : (string * int * int) list;
}

type site = string * int * int

type t = {
  m : Irmod.t;
  (* node arena + union-find *)
  parent : int Vec.t;
  rank : int Vec.t;
  pointee : int option Vec.t;
  heap : bool Vec.t;
  glob : bool Vec.t;           (* global storage nodes (never cloned) *)
  sites : site list Vec.t;     (* contributing malloc sites *)
  scales : int list Vec.t;     (* gep scales with variable index *)
  field_offs : ISet.t Vec.t;   (* constant gep offsets accessed *)
  ptr_offs : ISet.t Vec.t;     (* constant offsets holding pointers *)
  strided : bool Vec.t;        (* loop-strided access observed *)
  (* per-function interface *)
  reg_nodes : (string, int array) Hashtbl.t;  (* -1 = untracked *)
  ret_nodes : (string, int) Hashtbl.t;
  global_nodes : (string, int) Hashtbl.t;
  malloc_tbl : (site, int) Hashtbl.t;
  clone_maps : (site, (int * int) list) Hashtbl.t; (* callee node -> caller node *)
  callsite_callee : (site, string) Hashtbl.t;
  mutable argnodes_tbl : (string, int list) Hashtbl.t;
  mutable initnodes_tbl : (string, (int * int) list) Hashtbl.t;
  bindings_tbl : (site, int list) Hashtbl.t;
  mutable descs : desc_info list;
  (* instance attribution *)
  node_desc_sets : (int, ISet.t) Hashtbl.t;
  access_tbl : (site, int list) Hashtbl.t;
  cs_inst_tbl : (site, int list) Hashtbl.t;
  cs_nodes_tbl : (site, int list * int list) Hashtbl.t;
  func_inst_tbl : (string, int list) Hashtbl.t;
}

(* ---------- arena primitives ---------- *)

let new_node t =
  let id = Vec.push t.parent 0 in
  Vec.set t.parent id id;
  ignore (Vec.push t.rank 0);
  ignore (Vec.push t.pointee None);
  ignore (Vec.push t.heap false);
  ignore (Vec.push t.glob false);
  ignore (Vec.push t.sites []);
  ignore (Vec.push t.scales []);
  ignore (Vec.push t.field_offs ISet.empty);
  ignore (Vec.push t.ptr_offs ISet.empty);
  ignore (Vec.push t.strided false);
  id

let rec find t n =
  let p = Vec.get t.parent n in
  if p = n then n
  else begin
    let root = find t p in
    Vec.set t.parent n root;
    root
  end

(* Steensgaard unification: merging two nodes also unifies their
   pointees, which is what collapses recursive structures (a list
   node's [next] field ends up pointing back at the node itself). *)
let rec unify t a b =
  let a = find t a and b = find t b in
  if a <> b then begin
    let w, l =
      if Vec.get t.rank a >= Vec.get t.rank b then (a, b) else (b, a)
    in
    Vec.set t.parent l w;
    if Vec.get t.rank w = Vec.get t.rank l then Vec.set t.rank w (Vec.get t.rank w + 1);
    Vec.set t.heap w (Vec.get t.heap w || Vec.get t.heap l);
    Vec.set t.glob w (Vec.get t.glob w || Vec.get t.glob l);
    Vec.set t.sites w (Vec.get t.sites w @ Vec.get t.sites l);
    Vec.set t.scales w (Vec.get t.scales w @ Vec.get t.scales l);
    Vec.set t.field_offs w (ISet.union (Vec.get t.field_offs w) (Vec.get t.field_offs l));
    Vec.set t.ptr_offs w (ISet.union (Vec.get t.ptr_offs w) (Vec.get t.ptr_offs l));
    Vec.set t.strided w (Vec.get t.strided w || Vec.get t.strided l);
    let pw = Vec.get t.pointee w and pl = Vec.get t.pointee l in
    Vec.set t.pointee l None;
    match pw, pl with
    | Some pw, Some pl -> unify t pw pl
    | None, Some p -> Vec.set t.pointee w (Some p)
    | Some _, None | None, None -> ()
  end

let pointee_of t n =
  let n = find t n in
  match Vec.get t.pointee n with
  | Some p -> find t p
  | None ->
    let p = new_node t in
    Vec.set t.pointee n (Some p);
    p

let pointee_opt t n =
  let n = find t n in
  Option.map (find t) (Vec.get t.pointee n)

(* ---------- per-function value -> node ---------- *)

let reg_array t (f : Func.t) =
  match Hashtbl.find_opt t.reg_nodes f.name with
  | Some a -> a
  | None ->
    let a = Array.make (Func.nregs f) (-1) in
    Hashtbl.replace t.reg_nodes f.name a;
    a

let obj_of_reg t f r =
  let a = reg_array t f in
  if a.(r) = -1 then a.(r) <- new_node t;
  find t a.(r)

let global_node t g =
  match Hashtbl.find_opt t.global_nodes g with
  | Some n -> find t n
  | None ->
    let n = new_node t in
    Vec.set t.glob n true;
    Hashtbl.replace t.global_nodes g n;
    n

let obj_of_value t f = function
  | Instr.Reg r -> Some (obj_of_reg t f r)
  | Instr.GlobalAddr g -> Some (global_node t g)
  | Instr.Imm _ | Instr.Fimm _ | Instr.Null -> None

let obj_of_value_opt t f = function
  | Instr.Reg r ->
    let a = reg_array t f in
    if a.(r) = -1 then None else Some (find t a.(r))
  | Instr.GlobalAddr g -> Some (global_node t g)
  | Instr.Imm _ | Instr.Fimm _ | Instr.Null -> None

let ret_node t (f : Func.t) =
  match Hashtbl.find_opt t.ret_nodes f.name with
  | Some n -> find t n
  | None ->
    let n = new_node t in
    Hashtbl.replace t.ret_nodes f.name n;
    n

(* ---------- reachability helpers ---------- *)

let reach_from t roots =
  let seen = Hashtbl.create 16 in
  let rec go n =
    let n = find t n in
    if not (Hashtbl.mem seen n) then begin
      Hashtbl.replace seen n ();
      match pointee_opt t n with Some p -> go p | None -> ()
    end
  in
  List.iter go roots;
  seen

let global_roots t = Hashtbl.fold (fun _ n acc -> n :: acc) t.global_nodes []

let interface_roots t (f : Func.t) =
  let a = reg_array t f in
  let params =
    List.filter_map
      (fun (r, _) -> if a.(r) = -1 then None else Some a.(r))
      f.params
  in
  let ret =
    match Hashtbl.find_opt t.ret_nodes f.name with Some n -> [ n ] | None -> []
  in
  params @ ret

(* ---------- cloning (context sensitivity) ---------- *)

(* Clone the callee's interface-reachable subgraph into fresh caller
   nodes; global-reachable nodes are shared, not cloned (Lattner–Adve).
   Returns the (callee node -> caller node) map as an assoc list. *)
let clone_callee t callee =
  let groots = reach_from t (global_roots t) in
  let memo = Hashtbl.create 16 in
  let rec cl n =
    let n = find t n in
    if Hashtbl.mem groots n then n
    else
      match Hashtbl.find_opt memo n with
      | Some c -> c
      | None ->
        let c = new_node t in
        Hashtbl.replace memo n c;
        Vec.set t.heap c (Vec.get t.heap n);
        Vec.set t.sites c (Vec.get t.sites n);
        Vec.set t.scales c (Vec.get t.scales n);
        Vec.set t.field_offs c (Vec.get t.field_offs n);
        Vec.set t.ptr_offs c (Vec.get t.ptr_offs n);
        Vec.set t.strided c (Vec.get t.strided n);
        (match pointee_opt t n with
         | Some p -> Vec.set t.pointee c (Some (cl p))
         | None -> ());
        c
  in
  List.iter (fun r -> ignore (cl r)) (interface_roots t callee);
  (* Also make sure every argnode of the callee is in the map (they are
     interface- or global-reachable by construction, but unifications
     may have detached the ret node if the callee has no pointers). *)
  (match Hashtbl.find_opt t.argnodes_tbl callee.Func.name with
   | Some args -> List.iter (fun n -> ignore (cl n)) args
   | None -> ());
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) memo []

let map_lookup t cmap n =
  let n = find t n in
  let rec go = function
    | [] -> None
    | (k, v) :: rest -> if find t k = n then Some (find t v) else go rest
  in
  match go cmap with
  | Some v -> Some v
  | None ->
    (* Global-reachable nodes are shared (identity). *)
    let groots = reach_from t (global_roots t) in
    if Hashtbl.mem groots n then Some n else None

(* ---------- constraint generation ---------- *)

let process_function t cg (f : Func.t) =
  let same_scc callee = Callgraph.same_scc cg f.name callee in
  (* Pre-create points-to nodes for every pointer-typed register, so a
     single flow-insensitive pass sees all operand nodes regardless of
     instruction order (e.g. [n->next = h] before [h]'s first real
     definition in a loop). *)
  Array.iteri
    (fun r ty -> if Types.is_pointer ty then ignore (obj_of_reg t f r))
    f.reg_tys;
  Func.iter_instrs f (fun bid idx ins ->
      match ins with
      | Instr.Mov (r, v) -> begin
        match obj_of_value_opt t f v with
        | Some n -> unify t (obj_of_reg t f r) n
        | None -> ()
      end
      | Instr.Bin (r, (Instr.Add | Instr.Sub), a, b) -> begin
        (* pointer arithmetic keeps you in the same object *)
        List.iter
          (fun v ->
            match obj_of_value_opt t f v with
            | Some n -> unify t (obj_of_reg t f r) n
            | None -> ())
          [ a; b ]
      end
      | Instr.Bin _ | Instr.Cmp _ | Instr.I2f _ | Instr.F2i _ -> ()
      | Instr.Gep (r, base, idxv, scale) -> begin
        match obj_of_value t f base with
        | Some n ->
          unify t (obj_of_reg t f r) n;
          let n = find t n in
          (match idxv with
           | Instr.Reg _ -> Vec.set t.scales n (scale :: Vec.get t.scales n)
           | Instr.Imm off when scale = 1 ->
             Vec.set t.field_offs n (ISet.add (Int64.to_int off) (Vec.get t.field_offs n))
           | Instr.Imm _ | Instr.Fimm _ | Instr.Null | Instr.GlobalAddr _ -> ())
        | None -> ()
      end
      | Instr.Load (r, ty, addr) -> begin
        match obj_of_value t f addr with
        | Some n ->
          if Types.is_pointer ty then unify t (obj_of_reg t f r) (pointee_of t n)
        | None -> ()
      end
      | Instr.Store (ty, addr, v) -> begin
        match obj_of_value t f addr with
        | Some n ->
          if Types.is_pointer ty then begin
            match obj_of_value_opt t f v with
            | Some vn -> unify t (pointee_of t n) vn
            | None -> ()
          end
        | None -> ()
      end
      | Instr.Malloc (r, _) | Instr.DsAlloc (r, _, _) ->
        let h =
          match Hashtbl.find_opt t.malloc_tbl (f.name, bid, idx) with
          | Some h -> find t h
          | None ->
            let h = new_node t in
            Vec.set t.heap h true;
            Vec.set t.sites h [ (f.name, bid, idx) ];
            Hashtbl.replace t.malloc_tbl (f.name, bid, idx) h;
            h
        in
        unify t (obj_of_reg t f r) h
      | Instr.Free _ -> ()
      | Instr.Call (ropt, callee_name, args) -> begin
        match Irmod.find_func_opt t.m callee_name with
        | None -> () (* intrinsic *)
        | Some callee ->
          Hashtbl.replace t.callsite_callee (f.name, bid, idx) callee_name;
          if same_scc callee_name then begin
            (* Recursive edge: share nodes directly (graph collapse). *)
            let ca = reg_array t callee in
            List.iteri
              (fun i (pr, pty) ->
                if Types.is_pointer pty || ca.(pr) <> -1 then begin
                  match obj_of_value_opt t f (List.nth args i) with
                  | Some an -> unify t (obj_of_reg t callee pr) an
                  | None -> ()
                end)
              callee.params;
            (match ropt with
             | Some r when Types.is_pointer callee.ret ->
               unify t (obj_of_reg t f r) (ret_node t callee)
             | Some _ | None -> ())
          end
          else begin
            let cmap = clone_callee t callee in
            Hashtbl.replace t.clone_maps (f.name, bid, idx) cmap;
            let ca = reg_array t callee in
            List.iteri
              (fun i (pr, pty) ->
                if Types.is_pointer pty && ca.(pr) <> -1 then begin
                  match map_lookup t cmap ca.(pr) with
                  | Some cloned -> begin
                    match obj_of_value t f (List.nth args i) with
                    | Some an -> unify t cloned an
                    | None -> ()
                  end
                  | None -> ()
                end)
              callee.params;
            (match ropt, Hashtbl.find_opt t.ret_nodes callee_name with
             | Some r, Some rn -> begin
               match map_lookup t cmap rn with
               | Some cloned -> unify t (obj_of_reg t f r) cloned
               | None -> ()
             end
             | _ -> ())
          end
      end
      | Instr.Guard _ | Instr.DsInit _ | Instr.LoopCheck _ | Instr.Prefetch _ -> ());
  (* Return constraint. *)
  Array.iter
    (fun (b : Func.block) ->
      match b.term with
      | Instr.Ret (Some v) when Types.is_pointer f.ret -> begin
        match obj_of_value_opt t f v with
        | Some n -> unify t (ret_node t f) n
        | None -> ()
      end
      | _ -> ())
    f.blocks

(* ---------- handle plan (Algorithm 1) ---------- *)

let compute_handle_plan t cg =
  let funcs = t.m.Irmod.funcs in
  let needs : (string, ISet.t) Hashtbl.t = Hashtbl.create 16 in
  let get_needs f = Option.value (Hashtbl.find_opt needs f) ~default:ISet.empty in
  let get_args f =
    Option.value (Hashtbl.find_opt t.argnodes_tbl f) ~default:[]
  in
  (* Iterate bottom-up; loop until stable to handle SCC recursion. *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun scc ->
        List.iter
          (fun fname ->
            let f = Irmod.find_func t.m fname in
            let acc = ref (get_needs fname) in
            Func.iter_instrs f (fun bid idx ins ->
                match ins with
                | Instr.Malloc _ | Instr.DsAlloc _ -> begin
                  match Hashtbl.find_opt t.malloc_tbl (fname, bid, idx) with
                  | Some n -> acc := ISet.add (find t n) !acc
                  | None -> ()
                end
                | Instr.Call (_, callee, _) when Irmod.has_func t.m callee -> begin
                  let cargs = get_args callee in
                  if cargs <> [] then begin
                    if Callgraph.same_scc cg fname callee then
                      List.iter (fun n -> acc := ISet.add (find t n) !acc) cargs
                    else begin
                      match Hashtbl.find_opt t.clone_maps (fname, bid, idx) with
                      | Some cmap ->
                        List.iter
                          (fun n ->
                            match map_lookup t cmap n with
                            | Some c -> acc := ISet.add (find t c) !acc
                            | None -> ())
                          cargs
                      | None -> ()
                    end
                  end
                end
                | _ -> ());
            if not (ISet.equal !acc (get_needs fname)) then begin
              Hashtbl.replace needs fname !acc;
              changed := true
            end;
            (* argnodes = escaping needed nodes (main never takes handles) *)
            let esc =
              reach_from t (interface_roots t f @ global_roots t)
            in
            let args =
              if fname = "main" then []
              else
                ISet.elements
                  (ISet.filter (fun n -> Hashtbl.mem esc (find t n)) !acc)
            in
            if args <> get_args fname then begin
              Hashtbl.replace t.argnodes_tbl fname args;
              changed := true
            end)
          scc)
      (Callgraph.bottom_up cg)
  done;
  (* Descriptors: nodes each function must ds_init. *)
  let next_desc = ref 0 in
  let descs = ref [] in
  List.iter
    (fun (f : Func.t) ->
      let fname = f.name in
      let needed = get_needs fname in
      let args = ISet.of_list (List.map (find t) (get_args fname)) in
      let inits =
        ISet.elements (ISet.filter (fun n -> not (ISet.mem n args)) needed)
      in
      let with_ids =
        List.map
          (fun n ->
            let id = !next_desc in
            incr next_desc;
            descs := (fname, n, id) :: !descs;
            (n, id))
          inits
      in
      Hashtbl.replace t.initnodes_tbl fname with_ids)
    funcs;
  List.rev !descs

(* Per-call-site caller nodes matching the callee's argnodes. *)
let compute_bindings t cg =
  Hashtbl.iter
    (fun cs callee ->
      let (fname, _, _) = cs in
      let cargs =
        Option.value (Hashtbl.find_opt t.argnodes_tbl callee) ~default:[]
      in
      let bind =
        if cargs = [] then []
        else if Callgraph.same_scc cg fname callee then
          List.map (find t) cargs
        else begin
          match Hashtbl.find_opt t.clone_maps cs with
          | Some cmap ->
            List.map
              (fun n ->
                match map_lookup t cmap n with
                | Some c -> find t c
                | None -> find t n)
              cargs
          | None -> List.map (find t) cargs
        end
      in
      Hashtbl.replace t.bindings_tbl cs bind)
    t.callsite_callee

(* ---------- shape facts (post pass) ---------- *)

(* Field-offset and strided-access attribution needs local def chains
   and loop structure, so it runs as a separate per-function pass. *)
let shape_pass t =
  List.iter
    (fun (f : Func.t) ->
      let cfg = Cfg.of_func f in
      let dom = Dominators.compute cfg in
      let loops = Loops.compute cfg dom in
      let iv = Indvars.compute cfg loops in
      (* Strided bases *)
      Array.iteri
        (fun li _ ->
          List.iter
            (fun (sa : Indvars.strided_access) ->
              match obj_of_value_opt t f sa.sa_base with
              | Some n -> Vec.set t.strided (find t n) true
              | None -> ())
            (Indvars.strided_accesses iv li))
        (Loops.loops loops);
      (* Pointer field offsets: find loads/stores of pointers whose
         address is a constant-offset GEP. *)
      let gep_def = Hashtbl.create 16 in
      Func.iter_instrs f (fun _ _ ins ->
          match ins with
          | Instr.Gep (r, base, Instr.Imm off, 1) ->
            Hashtbl.replace gep_def r (base, Int64.to_int off)
          | _ -> ());
      let record_ptr_access addr ty =
        if Types.is_pointer ty then begin
          let target =
            match addr with
            | Instr.Reg a -> begin
              match Hashtbl.find_opt gep_def a with
              | Some (base, off) -> Some (base, off)
              | None -> Some (addr, 0)
            end
            | _ -> Some (addr, 0)
          in
          match target with
          | Some (base, off) -> begin
            match obj_of_value_opt t f base with
            | Some n ->
              let n = find t n in
              Vec.set t.ptr_offs n (ISet.add off (Vec.get t.ptr_offs n))
            | None -> ()
          end
          | None -> ()
        end
      in
      Func.iter_instrs f (fun _ _ ins ->
          match ins with
          | Instr.Load (_, ty, addr) -> record_ptr_access addr ty
          | Instr.Store (ty, addr, _) -> record_ptr_access addr ty
          | _ -> ()))
    t.m.Irmod.funcs

(* Clones are made while walking bottom-up, *before* the shape pass
   runs and before callers add their own facts, so facts must be
   re-synchronized across every clone edge afterwards:
   - forward (callee -> caller clone): shape facts observed in the
     callee body (stride, element scales, pointer fields) describe the
     caller's instance too;
   - backward (caller clone -> callee): if any caller passes a heap
     object, the callee's incomplete node is heap for guard purposes
     (Lattner's "incomplete node" completion). *)
let propagate_clone_facts t =
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun _ cmap ->
        List.iter
          (fun (callee_n, caller_n) ->
            let a = find t callee_n and b = find t caller_n in
            if a <> b then begin
              let merge_into dst src =
                let h = Vec.get t.heap dst || Vec.get t.heap src in
                if h <> Vec.get t.heap dst then begin
                  Vec.set t.heap dst h; changed := true
                end;
                let s = Vec.get t.strided dst || Vec.get t.strided src in
                if s <> Vec.get t.strided dst then begin
                  Vec.set t.strided dst s; changed := true
                end;
                let fo = ISet.union (Vec.get t.field_offs dst) (Vec.get t.field_offs src) in
                if not (ISet.equal fo (Vec.get t.field_offs dst)) then begin
                  Vec.set t.field_offs dst fo; changed := true
                end;
                let po = ISet.union (Vec.get t.ptr_offs dst) (Vec.get t.ptr_offs src) in
                if not (ISet.equal po (Vec.get t.ptr_offs dst)) then begin
                  Vec.set t.ptr_offs dst po; changed := true
                end;
                let sc = List.sort_uniq compare (Vec.get t.scales dst @ Vec.get t.scales src) in
                if sc <> List.sort_uniq compare (Vec.get t.scales dst) then begin
                  Vec.set t.scales dst (Vec.get t.scales dst @ Vec.get t.scales src);
                  changed := true
                end
              in
              merge_into b a; (* forward: callee facts reach the caller clone *)
              merge_into a b  (* backward: caller facts complete the callee node *)
            end)
          cmap)
      t.clone_maps
  done

(* ---------- instance attribution ---------- *)

let desc_set t n =
  Option.value (Hashtbl.find_opt t.node_desc_sets (find t n)) ~default:ISet.empty

let add_descs t n s =
  let n = find t n in
  Hashtbl.replace t.node_desc_sets n (ISet.union (desc_set t n) s)

let compute_instance_sets t cg =
  (* Seed with init nodes. *)
  Hashtbl.iter
    (fun _ inits ->
      List.iter (fun (n, id) -> add_descs t n (ISet.singleton id)) inits)
    t.initnodes_tbl;
  (* Propagate caller -> callee through clone maps, callers first
     (descending Tarjan SCC ids).  Iterate to a fixpoint because a
     single pass can miss chains through shared global nodes. *)
  let order = List.rev (Callgraph.bottom_up cg) in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun scc ->
        List.iter
          (fun fname ->
            let f = Irmod.find_func t.m fname in
            Func.iter_instrs f (fun bid idx ins ->
                match ins with
                | Instr.Call _ -> begin
                  match Hashtbl.find_opt t.clone_maps (fname, bid, idx) with
                  | Some cmap ->
                    List.iter
                      (fun (callee_n, caller_n) ->
                        let s = desc_set t caller_n in
                        let old = desc_set t callee_n in
                        if not (ISet.subset s old) then begin
                          add_descs t callee_n s;
                          changed := true
                        end)
                      cmap
                  | None -> ()
                end
                | _ -> ()))
          scc)
      order
  done

(* Accessed-node summaries, bottom-up; [hidden] collects descriptor ids
   of callee-internal structures with no caller-side node. *)
let compute_access_summaries t cg =
  let anodes : (string, ISet.t) Hashtbl.t = Hashtbl.create 16 in
  let hidden : (string, ISet.t) Hashtbl.t = Hashtbl.create 16 in
  let get tbl f = Option.value (Hashtbl.find_opt tbl f) ~default:ISet.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun scc ->
        List.iter
          (fun fname ->
            let f = Irmod.find_func t.m fname in
            let an = ref (get anodes fname) in
            let hd = ref (get hidden fname) in
            Func.iter_instrs f (fun bid idx ins ->
                match ins with
                | Instr.Load (_, _, addr) | Instr.Store (_, addr, _) -> begin
                  match obj_of_value_opt t f addr with
                  | Some n when Vec.get t.heap (find t n) ->
                    an := ISet.add (find t n) !an
                  | _ -> ()
                end
                | Instr.Call (_, callee, _) when Irmod.has_func t.m callee -> begin
                  let cs = (fname, bid, idx) in
                  let callee_an = get anodes callee in
                  hd := ISet.union !hd (get hidden callee);
                  if Callgraph.same_scc cg fname callee then
                    an := ISet.union !an (ISet.map (find t) callee_an)
                  else begin
                    match Hashtbl.find_opt t.clone_maps cs with
                    | Some cmap ->
                      ISet.iter
                        (fun m ->
                          match map_lookup t cmap m with
                          | Some c -> an := ISet.add (find t c) !an
                          | None -> hd := ISet.union !hd (desc_set t m))
                        callee_an
                    | None -> ()
                  end
                end
                | _ -> ());
            if not (ISet.equal !an (get anodes fname)) then begin
              Hashtbl.replace anodes fname !an;
              changed := true
            end;
            if not (ISet.equal !hd (get hidden fname)) then begin
              Hashtbl.replace hidden fname !hd;
              changed := true
            end)
          scc)
      (Callgraph.bottom_up cg)
  done;
  (* Fill per-instruction tables. *)
  List.iter
    (fun (f : Func.t) ->
      let fname = f.name in
      Func.iter_instrs f (fun bid idx ins ->
          match ins with
          | Instr.Load (_, _, addr) | Instr.Store (_, addr, _) -> begin
            match obj_of_value_opt t f addr with
            | Some n ->
              Hashtbl.replace t.access_tbl (fname, bid, idx)
                (ISet.elements (desc_set t n))
            | None -> ()
          end
          | Instr.Call (_, callee, _) when Irmod.has_func t.m callee -> begin
            let cs = (fname, bid, idx) in
            let callee_an = get anodes callee in
            let caller_nodes = ref ISet.empty in
            let hid = ref (get hidden callee) in
            if Callgraph.same_scc cg fname callee then
              caller_nodes := ISet.map (find t) callee_an
            else begin
              match Hashtbl.find_opt t.clone_maps cs with
              | Some cmap ->
                ISet.iter
                  (fun m ->
                    match map_lookup t cmap m with
                    | Some c -> caller_nodes := ISet.add (find t c) !caller_nodes
                    | None -> hid := ISet.union !hid (desc_set t m))
                  callee_an
              | None -> ()
            end;
            let insts =
              ISet.fold
                (fun n acc -> ISet.union (desc_set t n) acc)
                !caller_nodes !hid
            in
            Hashtbl.replace t.cs_inst_tbl cs (ISet.elements insts);
            Hashtbl.replace t.cs_nodes_tbl cs
              (ISet.elements !caller_nodes, ISet.elements !hid)
          end
          | _ -> ());
      let own = get anodes fname in
      let insts =
        ISet.fold
          (fun n acc -> ISet.union (desc_set t n) acc)
          own (get hidden fname)
      in
      Hashtbl.replace t.func_inst_tbl fname (ISet.elements insts))
    t.m.Irmod.funcs

(* ---------- descriptor finalization ---------- *)

let pow2_ceil x =
  let rec go p = if p >= x then p else go (p * 2) in
  go 8

let mode_of = function
  | [] -> None
  | l ->
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun x ->
        Hashtbl.replace tbl x (1 + Option.value (Hashtbl.find_opt tbl x) ~default:0))
      l;
    let best = ref (List.hd l) and bestc = ref 0 in
    Hashtbl.iter
      (fun x c -> if c > !bestc then begin best := x; bestc := c end)
      tbl;
    Some !best

let is_recursive t n =
  let n = find t n in
  let rec walk seen m =
    match pointee_opt t m with
    | None -> false
    | Some p -> if p = n then true else if List.mem p seen then false else walk (p :: seen) p
  in
  walk [ n ] n

let finalize_descs t raw =
  List.map
    (fun (fname, n, id) ->
      let n = find t n in
      let scales = Vec.get t.scales n in
      let field_offs = Vec.get t.field_offs n in
      let ptr_offs = Vec.get t.ptr_offs n in
      let recursive = is_recursive t n in
      let elem =
        match mode_of scales with
        | Some s when s > 1 -> s
        | _ ->
          if not (ISet.is_empty field_offs) || not (ISet.is_empty ptr_offs) then begin
            let all = ISet.union field_offs ptr_offs in
            pow2_ceil (ISet.max_elt all + 8)
          end
          else 8
      in
      { desc_id = id;
        desc_init_func = fname;
        desc_node = n;
        desc_elem_size = elem;
        desc_recursive = recursive;
        desc_ptr_fields = ISet.cardinal ptr_offs;
        desc_strided = Vec.get t.strided n;
        desc_alloc_sites = Vec.get t.sites n })
    raw

(* ---------- driver ---------- *)

let analyze (m : Irmod.t) =
  let t =
    { m;
      parent = Vec.create (); rank = Vec.create (); pointee = Vec.create ();
      heap = Vec.create (); glob = Vec.create (); sites = Vec.create ();
      scales = Vec.create (); field_offs = Vec.create (); ptr_offs = Vec.create ();
      strided = Vec.create ();
      reg_nodes = Hashtbl.create 16; ret_nodes = Hashtbl.create 16;
      global_nodes = Hashtbl.create 16; malloc_tbl = Hashtbl.create 32;
      clone_maps = Hashtbl.create 32; callsite_callee = Hashtbl.create 32;
      argnodes_tbl = Hashtbl.create 16; initnodes_tbl = Hashtbl.create 16;
      bindings_tbl = Hashtbl.create 32; descs = [];
      node_desc_sets = Hashtbl.create 64;
      access_tbl = Hashtbl.create 256; cs_inst_tbl = Hashtbl.create 64;
      cs_nodes_tbl = Hashtbl.create 64; func_inst_tbl = Hashtbl.create 16 }
  in
  let cg = Callgraph.compute m in
  (* Pre-create pointer parameter nodes so recursive calls can unify. *)
  List.iter
    (fun (f : Func.t) ->
      List.iter
        (fun (r, ty) -> if Types.is_pointer ty then ignore (obj_of_reg t f r))
        f.params;
      if Types.is_pointer f.ret then ignore (ret_node t f))
    m.funcs;
  (* Bottom-up constraint generation with cloning. *)
  List.iter
    (fun scc ->
      List.iter
        (fun fname -> process_function t cg (Irmod.find_func m fname))
        scc)
    (Callgraph.bottom_up cg);
  shape_pass t;
  propagate_clone_facts t;
  let raw = compute_handle_plan t cg in
  compute_bindings t cg;
  compute_instance_sets t cg;
  compute_access_summaries t cg;
  t.descs <- finalize_descs t raw;
  t

(* ---------- queries ---------- *)

let canonical t n = find t n

let is_heap t n = Vec.get t.heap (find t n)

let node_of_value t ~fname v =
  match Irmod.find_func_opt t.m fname with
  | None -> None
  | Some f -> Option.map (find t) (obj_of_value_opt t f v)

let value_is_managed t ~fname v =
  match node_of_value t ~fname v with
  | Some n -> is_heap t n
  | None -> false

let nodes_disjoint t a b = find t a <> find t b

let escaping t ~fname n =
  match Irmod.find_func_opt t.m fname with
  | None -> false
  | Some f ->
    let esc = reach_from t (interface_roots t f @ global_roots t) in
    Hashtbl.mem esc (find t n)

let argnodes t fname =
  List.map (find t)
    (Option.value (Hashtbl.find_opt t.argnodes_tbl fname) ~default:[])

let init_nodes t fname =
  List.map
    (fun (n, id) -> (find t n, id))
    (Option.value (Hashtbl.find_opt t.initnodes_tbl fname) ~default:[])

let callsite_bindings t ~fname ~bid ~idx =
  List.map (find t)
    (Option.value (Hashtbl.find_opt t.bindings_tbl (fname, bid, idx)) ~default:[])

let malloc_node t ~fname ~bid ~idx =
  Option.map (find t) (Hashtbl.find_opt t.malloc_tbl (fname, bid, idx))

let descriptors t = t.descs

let n_descriptors t = List.length t.descs

let desc_info t id =
  match List.find_opt (fun d -> d.desc_id = id) t.descs with
  | Some d -> d
  | None -> invalid_arg (Printf.sprintf "Dsa.desc_info: no descriptor %d" id)

let access_instances t ~fname ~bid ~idx =
  Option.value (Hashtbl.find_opt t.access_tbl (fname, bid, idx)) ~default:[]

let callsite_instances t ~fname ~bid ~idx =
  Option.value (Hashtbl.find_opt t.cs_inst_tbl (fname, bid, idx)) ~default:[]

let func_instances t fname =
  Option.value (Hashtbl.find_opt t.func_inst_tbl fname) ~default:[]

let node_descs t n = ISet.elements (desc_set t n)

let callsite_accessed_nodes t ~fname ~bid ~idx =
  Option.value (Hashtbl.find_opt t.cs_nodes_tbl (fname, bid, idx)) ~default:([], [])
