(** Induction-variable and strided-access analysis.

    This is the analysis that TrackFM-style prefetching relies on
    exclusively (§5.2: "TrackFM relies only on induction variables for
    prefetching"), and one ingredient of CaRDS's per-data-structure
    prefetch classification.

    A {e basic induction variable} is a register with exactly one
    update inside the loop, of the form [iv <- iv + c] (directly, or
    via the lowered [t <- iv + c; iv <- t] pattern).  A {e strided
    access} is a load/store through [gep base, iv x scale] where [base]
    is loop-invariant. *)

type iv = { ivreg : Cards_ir.Instr.reg; step : int }

type strided_access = {
  sa_bid : int;                 (** block containing the access *)
  sa_idx : int;                 (** instruction index in the block *)
  sa_base : Cards_ir.Instr.value;  (** loop-invariant base pointer *)
  sa_stride : int;              (** bytes advanced per iteration *)
  sa_is_store : bool;
}

type t

val compute : Cfg.t -> Loops.t -> t

val basic_ivs : t -> int -> iv list
(** Basic induction variables of loop [li]. *)

val is_iv : t -> int -> Cards_ir.Instr.reg -> bool

val strided_accesses : t -> int -> strided_access list
(** Strided memory accesses of loop [li]. *)

val loop_invariant : Cfg.t -> Loops.loop -> Cards_ir.Instr.value -> bool
(** Conservative loop-invariance: immediates, globals' addresses, and
    registers with no definition inside the loop. *)
